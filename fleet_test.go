package distscroll_test

import (
	"fmt"
	"testing"
	"time"

	distscroll "github.com/hcilab/distscroll"
)

func TestNewFleetValidation(t *testing.T) {
	if _, err := distscroll.NewFleet(0, distscroll.WithEntries(10)); err == nil {
		t.Fatal("zero-device fleet accepted")
	}
	if _, err := distscroll.NewFleet(2); err == nil {
		t.Fatal("fleet without a menu accepted")
	}
	if _, err := distscroll.NewFleet(2, distscroll.WithEntries(1)); err == nil {
		t.Fatal("bad option not surfaced")
	}
}

func TestFleetRunAllReport(t *testing.T) {
	f, err := distscroll.NewFleet(6, distscroll.WithEntries(12), distscroll.WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 6 {
		t.Fatalf("size %d", f.Size())
	}
	scrolls := make([]int, f.Size())
	var selected []string
	f.OnScroll(func(device int, e distscroll.Event) { scrolls[device]++ })
	f.OnSelect(func(device int, e distscroll.Event) {
		selected = append(selected, fmt.Sprintf("%d:%s", device, e.Entry))
	})
	rep, err := f.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Devices) != 6 {
		t.Fatalf("device reports: %d", len(rep.Devices))
	}
	for i, dr := range rep.Devices {
		if dr.Err != nil {
			t.Fatalf("device %d: %v", i, dr.Err)
		}
		if dr.Events == 0 || dr.Sent == 0 {
			t.Fatalf("device %d report empty: %+v", i, dr)
		}
		if scrolls[i] == 0 {
			t.Fatalf("device %d scroll handler never fired", i)
		}
	}
	// The default workload ends by selecting the middle entry (index 5 of
	// 12, title "Entry 06").
	if len(selected) != 6 {
		t.Fatalf("selections: %v", selected)
	}
	for i, s := range selected {
		if want := fmt.Sprintf("%d:Entry 06", i); s != want {
			t.Fatalf("selection %q, want %q", s, want)
		}
	}
	if rep.Frames == 0 || rep.Events == 0 || rep.FramesPerSecond <= 0 {
		t.Fatalf("aggregate report: %+v", rep)
	}
	if rep.Delivered > rep.Frames {
		t.Fatalf("delivered %d > sent %d", rep.Delivered, rep.Frames)
	}
}

func TestFleetHandlerReplayDeterministic(t *testing.T) {
	run := func() []string {
		f, err := distscroll.NewFleet(4, distscroll.WithEntries(10), distscroll.WithSeed(33))
		if err != nil {
			t.Fatal(err)
		}
		var trace []string
		f.OnScroll(func(device int, e distscroll.Event) {
			trace = append(trace, fmt.Sprintf("%d:%d@%d", device, e.Index, e.At/time.Microsecond))
		})
		if _, err := f.RunAll(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no scroll events replayed")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace[%d] differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestWithDeviceIDSingleDevice(t *testing.T) {
	dev, err := distscroll.New(
		distscroll.WithEntries(10),
		distscroll.WithDeviceID(7),
		distscroll.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	var scrolls int
	dev.OnScroll(func(distscroll.Event) { scrolls++ })
	target, err := dev.DistanceForEntry(8)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetDistance(target)
	if err := dev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The single-device host accepts tagged frames: the id changes the
	// wire format, not the behaviour.
	if scrolls == 0 {
		t.Fatal("no scroll events with a device id set")
	}
	if dev.Internal().Host.Stats().Decoded == 0 {
		t.Fatal("no frames decoded")
	}
}

func TestGlideToStopsExactlyAtTarget(t *testing.T) {
	dev, err := distscroll.New(distscroll.WithEntries(10), distscroll.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	dev.SetDistance(20)
	if err := dev.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// A duration that is not a multiple of the 10 ms sampling step: the
	// final callback must still land exactly on the end of the motion and
	// pin the distance to the target.
	dev.GlideTo(8, 123*time.Millisecond)
	if err := dev.Run(123 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := dev.Distance(); got != 8 {
		t.Fatalf("distance after glide = %v, want exactly 8", got)
	}
	// No stray trajectory callbacks may fire after the motion ended.
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := dev.Distance(); got != 8 {
		t.Fatalf("distance drifted to %v after glide completed", got)
	}
}

func TestGlideToZeroDurationJumps(t *testing.T) {
	dev, err := distscroll.New(distscroll.WithEntries(10), distscroll.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	dev.GlideTo(14, 0)
	if err := dev.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := dev.Distance(); got != 14 {
		t.Fatalf("distance = %v, want 14", got)
	}
}
