package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultScript(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "top display:") || !strings.Contains(s, "DistScroll dbg") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestRunAllMenus(t *testing.T) {
	for _, m := range []string{"phone", "lab", "stock", "flat:15"} {
		var out bytes.Buffer
		if err := run([]string{"-menu", m, "-script", "d10 w500 show"}, &out); err != nil {
			t.Fatalf("menu %s: %v", m, err)
		}
		if !strings.Contains(out.String(), "top display:") {
			t.Fatalf("menu %s output:\n%s", m, out.String())
		}
	}
}

func TestRunTraceMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-trace", "-script", "g6 w1500 show"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scroll") {
		t.Fatalf("trace output missing events:\n%s", out.String())
	}
}

func TestRunScriptFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "script.txt")
	if err := os.WriteFile(path, []byte("d8 w300 show select w300 show"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-f", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "top display:") != 2 {
		t.Fatalf("expected two snapshots:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-menu", "bogus"}, &out); err == nil {
		t.Fatal("bogus menu accepted")
	}
	if err := run([]string{"-script", "frobnicate"}, &out); err == nil {
		t.Fatal("bogus action accepted")
	}
	if err := run([]string{"-script", "dxyz"}, &out); err == nil {
		t.Fatal("bad distance accepted")
	}
	if err := run([]string{"-menu", "flat:x"}, &out); err == nil {
		t.Fatal("bad flat size accepted")
	}
	if err := run([]string{"-f", "/nonexistent/script"}, &out); err == nil {
		t.Fatal("missing script file accepted")
	}
}

func TestMenuFromJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "menu.json")
	src := `{"title":"Jukebox","children":[{"title":"Rock"},{"title":"Jazz"},{"title":"Folk"}]}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-menujson", path, "-script", "d4 w1000 show"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Jazz") {
		t.Fatalf("custom menu not shown:\n%s", out.String())
	}
	// Broken JSON fails cleanly.
	if err := os.WriteFile(path, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-menujson", path}, &out); err == nil {
		t.Fatal("broken menu json accepted")
	}
}

func TestRecordAndReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session.json")
	var out bytes.Buffer
	err := run([]string{"-record", path, "-script", "g6 w1000 select w500"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace:") {
		t.Fatalf("no trace summary:\n%s", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-replay", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replayed") || !strings.Contains(out.String(), "top display:") {
		t.Fatalf("replay output:\n%s", out.String())
	}
}

func TestLiveMode(t *testing.T) {
	var out bytes.Buffer
	// 120 ms wall at 50x = ~6 s of virtual interaction.
	if err := run([]string{"-live", "120ms", "-speed", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "live session:") {
		t.Fatalf("no live summary:\n%s", s)
	}
	if !strings.Contains(s, "scroll") {
		t.Fatalf("no live scroll events:\n%s", s)
	}
}

func TestReplayMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-replay", "/nonexistent/trace.json"}, &out); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestBackAndSelectActions(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-menu", "phone", "-script", "d4 w1000 select w500 show back w500 show"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// d4 puts the cursor on the last entry (towards = down); selecting
	// enters or selects it, back returns.
	if strings.Count(out.String(), "path: Phone") < 1 {
		t.Fatalf("output:\n%s", out.String())
	}
}
