// Command distscroll-sim runs an interactive (scripted) simulated
// DistScroll session and prints both device displays after every action —
// the closest thing to holding the prototype of paper Figure 1.
//
// The script is a whitespace-separated action list, from a file or -script:
//
//	d<cm>    set the device-to-body distance, e.g. d12.5
//	g<cm>    glide smoothly to a distance over 1 s, e.g. g6
//	w<ms>    wait virtual time, e.g. w500
//	select   press the select (thumb) button
//	back     press the back button
//	show     print both displays
//
// Example:
//
//	distscroll-sim -menu phone -script "g6 w2000 show select w500 show"
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	distscroll "github.com/hcilab/distscroll"
	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distscroll-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("distscroll-sim", flag.ContinueOnError)
	var (
		menuName = fs.String("menu", "phone", "menu fixture: phone, lab, stock, or flat:<n>")
		menuJSON = fs.String("menujson", "", "load the menu from a JSON file instead")
		script   = fs.String("script", "g6 w2000 show select w500 show", "action script")
		file     = fs.String("f", "", "read the script from a file instead")
		seed     = fs.Uint64("seed", 1, "random seed")
		traceOn  = fs.Bool("trace", false, "print every host event")
		record   = fs.String("record", "", "record the session trace to this JSON file")
		replay   = fs.String("replay", "", "replay a recorded trace instead of running the script")
		live     = fs.Duration("live", 0, "run live against the wall clock for this long (demo mode)")
		speed    = fs.Float64("speed", 1, "virtual-to-wall time ratio in live mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var root *distscroll.Item
	if *menuJSON != "" {
		f, err := os.Open(*menuJSON)
		if err != nil {
			return fmt.Errorf("open menu json: %w", err)
		}
		root, err = distscroll.MenuFromJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		var err error
		root, err = pickMenu(*menuName)
		if err != nil {
			return err
		}
	}
	dev, err := distscroll.New(distscroll.WithMenu(root), distscroll.WithSeed(*seed))
	if err != nil {
		return err
	}
	defer dev.Close()

	if *traceOn {
		log := func(e distscroll.Event) {
			fmt.Fprintf(stdout, "[%8s] %-6s index=%d %s\n",
				e.At.Truncate(time.Millisecond), e.Kind, e.Index, e.Entry)
		}
		dev.OnScroll(log)
		dev.OnSelect(log)
		dev.OnLevel(log)
	}

	var rec *trace.Recorder
	if *record != "" {
		rec, err = trace.Record(dev.Internal(), "distscroll-sim", *seed, 20*time.Millisecond)
		if err != nil {
			return err
		}
	}

	switch {
	case *live > 0:
		if err := runLive(dev, *live, *speed, stdout); err != nil {
			return err
		}
	case *replay != "":
		if err := runReplay(dev, *replay, stdout); err != nil {
			return err
		}
	default:
		text := *script
		if *file != "" {
			data, err := os.ReadFile(*file)
			if err != nil {
				return fmt.Errorf("read script: %w", err)
			}
			text = string(data)
		}
		for _, action := range strings.Fields(text) {
			if err := apply(dev, action, stdout); err != nil {
				return fmt.Errorf("action %q: %w", action, err)
			}
		}
	}

	// Drain any in-flight radio traffic.
	if err := dev.Run(200 * time.Millisecond); err != nil {
		return err
	}
	if rec != nil {
		tr := rec.Stop()
		f, err := os.Create(*record)
		if err != nil {
			return fmt.Errorf("create trace file: %w", err)
		}
		defer f.Close()
		if err := tr.Save(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace: %d samples, %d events -> %s\n",
			len(tr.Samples), len(tr.Events), *record)
	}
	return nil
}

// runLive demonstrates wall-clock operation: a sinusoidal hand motion is
// scheduled on the device's virtual clock, and a realtime runner drives it
// against real time, printing host events as they arrive.
func runLive(dev *distscroll.Device, dur time.Duration, speed float64, stdout io.Writer) error {
	inner := dev.Internal()
	// The oscillation runs on the virtual clock, so it executes on the
	// runner's goroutine — no cross-goroutine device access.
	inner.Scheduler.Every(20*time.Millisecond, func(at time.Duration) {
		inner.SetDistance(17 + 11*math.Sin(at.Seconds()*0.9))
	})
	runner, err := core.NewRealtimeRunner(inner, speed, 256)
	if err != nil {
		return err
	}
	if err := runner.Start(); err != nil {
		return err
	}
	deadline := time.After(dur)
	events := 0
loop:
	for {
		select {
		case e, ok := <-runner.Events():
			if !ok {
				break loop
			}
			events++
			if e.Kind == rf.MsgScroll || e.Kind == rf.MsgSelect {
				fmt.Fprintf(stdout, "[live %8s] %-6s index=%d\n",
					e.HostTime.Truncate(time.Millisecond), e.Kind, e.Index)
			}
		case <-deadline:
			break loop
		}
	}
	if err := runner.Stop(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "live session: %s virtual in %s wall (%.0fx), %d host events, %d dropped\n",
		dev.Now().Truncate(time.Millisecond), dur, speed, events, runner.Dropped())
	return nil
}

// runReplay loads a recorded trace and plays its distance signal into the
// device, then prints the displays.
func runReplay(dev *distscroll.Device, path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		return err
	}
	end, err := trace.Replay(tr, dev.Internal())
	if err != nil {
		return err
	}
	if err := dev.Run(end - dev.Now() + 200*time.Millisecond); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "replayed %q: %d samples over %s\n", tr.Name, len(tr.Samples), tr.Duration())
	return apply(dev, "show", stdout)
}

func pickMenu(name string) (*distscroll.Item, error) {
	switch {
	case name == "phone":
		return distscroll.PhoneMenu(), nil
	case name == "lab":
		return distscroll.LabProtocolMenu(), nil
	case name == "stock":
		return distscroll.StocktakingMenu(), nil
	case strings.HasPrefix(name, "flat:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "flat:"))
		if err != nil {
			return nil, fmt.Errorf("flat menu size: %w", err)
		}
		return distscroll.NumberedList(n), nil
	default:
		return nil, fmt.Errorf("unknown menu %q (phone, lab, stock, flat:<n>)", name)
	}
}

func apply(dev *distscroll.Device, action string, stdout io.Writer) error {
	switch {
	case strings.HasPrefix(action, "d"):
		cm, err := strconv.ParseFloat(action[1:], 64)
		if err != nil {
			return err
		}
		dev.SetDistance(cm)
		return dev.Run(100 * time.Millisecond)
	case strings.HasPrefix(action, "g"):
		cm, err := strconv.ParseFloat(action[1:], 64)
		if err != nil {
			return err
		}
		dev.GlideTo(cm, time.Second)
		return dev.Run(1200 * time.Millisecond)
	case strings.HasPrefix(action, "w"):
		ms, err := strconv.Atoi(action[1:])
		if err != nil {
			return err
		}
		return dev.Run(time.Duration(ms) * time.Millisecond)
	case action == "select":
		dev.PressSelect()
		return dev.Run(300 * time.Millisecond)
	case action == "back":
		dev.PressBack()
		return dev.Run(300 * time.Millisecond)
	case action == "show":
		fmt.Fprintf(stdout, "t=%-10s distance=%.1fcm  path: %s\n",
			dev.Now().Truncate(time.Millisecond), dev.Distance(), dev.Path())
		fmt.Fprintln(stdout, "top display:")
		fmt.Fprintln(stdout, dev.TopDisplay())
		fmt.Fprintln(stdout, "bottom display:")
		fmt.Fprintln(stdout, dev.BottomDisplay())
		return nil
	default:
		return fmt.Errorf("unknown action")
	}
}
