package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlashSyntheticImage(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version", "9.9.9", "-size", "1024"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `installed version: "9.9.9"`) {
		t.Fatalf("output:\n%s", s)
	}
	if !strings.Contains(s, "verified OK") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestFlashCodeFile(t *testing.T) {
	dir := t.TempDir()
	codePath := filepath.Join(dir, "fw.bin")
	if err := os.WriteFile(codePath, bytes.Repeat([]byte{0x42}, 512), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-code", codePath, "-version", "1.0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"1.0"`) {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestFlashHexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	hexPath := filepath.Join(dir, "image.hex")
	var out bytes.Buffer
	// First produce a hex file from a synthetic image.
	if err := run([]string{"-version", "2.0", "-size", "256", "-o", hexPath}, &out); err != nil {
		t.Fatal(err)
	}
	// Then flash from that hex file.
	out.Reset()
	if err := run([]string{"-hex", hexPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"2.0"`) {
		t.Fatalf("hex flash output:\n%s", out.String())
	}
}

func TestFlashErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-code", "/nonexistent/fw.bin"}, &out); err == nil {
		t.Fatal("missing code file accepted")
	}
	if err := run([]string{"-hex", "/nonexistent/image.hex"}, &out); err == nil {
		t.Fatal("missing hex file accepted")
	}
	long := strings.Repeat("v", 64)
	if err := run([]string{"-version", long, "-size", "64"}, &out); err == nil {
		t.Fatal("oversized version accepted")
	}
}
