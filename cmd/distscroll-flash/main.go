// Command distscroll-flash simulates a firmware download into the
// DistScroll through the Smart-Its serial/programmer connector (paper
// Section 4.1: the connectors were elongated "to allow an opening of the
// device for battery changes and code downloads").
//
// Usage:
//
//	distscroll-flash -version 1.2.0 -code firmware.bin
//	distscroll-flash -version 1.2.0 -size 4096   # synthetic image
//	distscroll-flash -hex image.hex -o dump.hex  # round-trip an Intel HEX file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/hcilab/distscroll/internal/serial"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/smartits"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distscroll-flash:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("distscroll-flash", flag.ContinueOnError)
	var (
		version  = fs.String("version", "dev", "version string to embed")
		codePath = fs.String("code", "", "raw firmware code file to flash")
		size     = fs.Int("size", 2048, "synthetic image size when no -code is given")
		hexPath  = fs.String("hex", "", "flash an existing Intel HEX image instead")
		outPath  = fs.String("o", "", "also write the downloaded image as Intel HEX")
		seed     = fs.Uint64("seed", 1, "board seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Build or load the image.
	var img *serial.Image
	switch {
	case *hexPath != "":
		f, err := os.Open(*hexPath)
		if err != nil {
			return fmt.Errorf("open hex: %w", err)
		}
		defer f.Close()
		img, err = serial.DecodeHex(f)
		if err != nil {
			return err
		}
	case *codePath != "":
		code, err := os.ReadFile(*codePath)
		if err != nil {
			return fmt.Errorf("read code: %w", err)
		}
		img, err = serial.BuildImage(code, *version)
		if err != nil {
			return err
		}
	default:
		code := make([]byte, *size)
		rng := sim.NewRand(*seed)
		for i := range code {
			code[i] = byte(rng.Intn(256))
		}
		var err error
		img, err = serial.BuildImage(code, *version)
		if err != nil {
			return err
		}
	}

	// Assemble the board and download through the connector.
	board, err := smartits.Assemble(smartits.DefaultConfig(), sim.NewRand(*seed))
	if err != nil {
		return err
	}
	prog, err := board.AttachProgrammer()
	if err != nil {
		return err
	}
	records, err := prog.Download(img)
	if err != nil {
		return err
	}
	if err := serial.Verify(board.Flash, img); err != nil {
		return err
	}
	installed, err := board.FirmwareVersion()
	if err != nil {
		return err
	}

	tx, rx := board.SerialHost.Stats()
	fmt.Fprintf(stdout, "downloaded %d bytes in %d records (%d tx / %d rx bytes on the wire, %.2f s at %d baud)\n",
		img.Size(), records, tx, rx,
		board.SerialHost.WireTime().Seconds(), board.SerialHost.Baud())
	fmt.Fprintf(stdout, "verified OK; installed version: %q; max page wear: %d erase cycles\n",
		installed, board.Flash.MaxEraseCycles())

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPath, err)
		}
		defer f.Close()
		if err := img.EncodeHex(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "image written to %s\n", *outPath)
	}
	return nil
}
