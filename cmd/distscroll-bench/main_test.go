package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "F3,F4", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "F3") || !strings.Contains(s, "F4") {
		t.Fatalf("report:\n%s", s)
	}
	if !strings.Contains(s, "fit_r2") {
		t.Fatalf("missing metrics:\n%s", s)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "Z9"}, &out); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.txt")
	var out bytes.Buffer
	if err := run([]string{"-run", "F3", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Hardware inventory") {
		t.Fatalf("file report:\n%s", data)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-run", "F3", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	trials, err := os.ReadFile(filepath.Join(dir, "trials.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trials), "P01") || !strings.Contains(string(trials), "wrong_selection") {
		t.Fatalf("trials.csv:\n%.200s", trials)
	}
	conds, err := os.ReadFile(filepath.Join(dir, "conditions.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"distscroll", "hybrid", "winter", "throughput_bps"} {
		if !strings.Contains(string(conds), want) {
			t.Fatalf("conditions.csv missing %q:\n%.300s", want, conds)
		}
	}
}

func TestRunCaseInsensitiveIDs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "f3"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestFleetMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fleet", "5", "-seed", "4", "-workers", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "fleet report (5 devices, seed 4)") {
		t.Fatalf("report header:\n%s", s)
	}
	// One table row per device plus the aggregate lines.
	for _, want := range []string{"frames sent", "decode throughput"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	if got := strings.Count(s, "\n"); got < 5+5 {
		t.Fatalf("report too short (%d lines):\n%s", got, s)
	}
}

func TestFleetModeWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.txt")
	var out bytes.Buffer
	if err := run([]string{"-fleet", "2", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fleet report (2 devices") {
		t.Fatalf("file report:\n%s", data)
	}
}

func TestFleetMetricsOut(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	var out bytes.Buffer
	if err := run([]string{"-fleet", "6", "-seed", "2", "-metrics-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep telemetryReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%.300s", err, data)
	}
	if rep.Devices != 6 || len(rep.PerDevice) != 6 {
		t.Fatalf("device counts: %+v", rep)
	}
	var delivered uint64
	for _, d := range rep.PerDevice {
		if d.Sent == 0 {
			t.Fatalf("device %d sent no frames", d.Device)
		}
		if d.Sent != d.Delivered+d.Lost+d.Corrupted {
			t.Fatalf("device %d loss accounting: %+v", d.Device, d)
		}
		delivered += d.Delivered
	}
	if rep.Metrics == nil {
		t.Fatal("no metrics snapshot in report")
	}
	// Acceptance: the e2e latency histogram holds exactly one observation
	// per delivered frame.
	lat, ok := rep.Metrics.Histogram("hub_e2e_latency_ms")
	if !ok {
		t.Fatal("no e2e latency histogram")
	}
	if lat.Count != delivered {
		t.Fatalf("latency observations %d != delivered frames %d", lat.Count, delivered)
	}
	var bucketSum uint64
	for _, c := range lat.Counts {
		bucketSum += c
	}
	if bucketSum != delivered {
		t.Fatalf("bucket counts sum %d != delivered frames %d", bucketSum, delivered)
	}
}

func TestFleetMetricsExposition(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fleet", "3", "-seed", "8", "-metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Telemetry (Prometheus exposition)",
		"# TYPE rf_frames_sent_total counter",
		"hub_e2e_latency_ms_bucket",
		`hub_e2e_latency_ms_count{device="1"}`,
		"fw_cycles_total",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%.2000s", want, s)
		}
	}
}

func TestScaleMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-devices", "500", "-seed", "3", "-scale-duration", "1s"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "scale sweep (seed 3") || !strings.Contains(s, "rt_factor") {
		t.Fatalf("scale report:\n%s", s)
	}
	if !strings.Contains(s, "      500") {
		t.Fatalf("missing 500-device row:\n%s", s)
	}
}

func TestScaleSweepList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "100,200", "-scale-duration", "500ms"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "      100") || !strings.Contains(s, "      200") {
		t.Fatalf("sweep rows missing:\n%s", s)
	}
}

func TestScaleValidationRejectsBadDevices(t *testing.T) {
	for _, args := range [][]string{
		{"-devices", "0"},
		{"-devices", "-3"},
		{"-scale", "100,0"},
		{"-scale", "abc"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

func TestScaleWarnsOnExcessWorkers(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-devices", "2", "-workers", "9", "-scale-duration", "100ms"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "warning: -workers 9 exceeds -devices 2") {
		t.Fatalf("no worker warning:\n%s", out.String())
	}
}

func TestScaleJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real wall-clock benchmarks")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_5.json")
	var out bytes.Buffer
	if err := run([]string{"-scale-json", path, "-scale", "300", "-scale-duration", "1s"}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc scaleBaseline
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("baseline not JSON: %v\n%.300s", err, data)
	}
	rows := scaleWorkerRows(0)
	if doc.PR != 5 || len(doc.Scale) != len(rows) {
		t.Fatalf("baseline shape: %+v", doc)
	}
	for i, p := range doc.Scale {
		if p.Devices != 300 || p.Workers != rows[i] {
			t.Fatalf("scale row %d: want 300 devices x %d worker(s), got %+v", i, rows[i], p)
		}
	}
	if doc.After[0].Name != "SchedulerWheel" || doc.After[0].AllocsPerOp != 0 {
		t.Fatalf("wheel hot path not allocation-free in baseline: %+v", doc.After)
	}
	if doc.Scale[0].RealTimeFactor <= 1 {
		t.Fatalf("300 devices slower than real time: %+v", doc.Scale[0])
	}
}

func TestBenchCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real wall-clock benchmarks")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.csv")
	var out bytes.Buffer
	if err := run([]string{"-bench-csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "HubDemux,") || !strings.Contains(s, "HubDemuxInstrumented,") {
		t.Fatalf("bench.csv:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 || lines[0] != "benchmark,iterations,ns_per_op,overhead_pct" {
		t.Fatalf("bench.csv shape:\n%s", s)
	}
}
