package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "F3,F4", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "F3") || !strings.Contains(s, "F4") {
		t.Fatalf("report:\n%s", s)
	}
	if !strings.Contains(s, "fit_r2") {
		t.Fatalf("missing metrics:\n%s", s)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "Z9"}, &out); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.txt")
	var out bytes.Buffer
	if err := run([]string{"-run", "F3", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Hardware inventory") {
		t.Fatalf("file report:\n%s", data)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-run", "F3", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	trials, err := os.ReadFile(filepath.Join(dir, "trials.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trials), "P01") || !strings.Contains(string(trials), "wrong_selection") {
		t.Fatalf("trials.csv:\n%.200s", trials)
	}
	conds, err := os.ReadFile(filepath.Join(dir, "conditions.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"distscroll", "hybrid", "winter", "throughput_bps"} {
		if !strings.Contains(string(conds), want) {
			t.Fatalf("conditions.csv missing %q:\n%.300s", want, conds)
		}
	}
}

func TestRunCaseInsensitiveIDs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "f3"}, &out); err != nil {
		t.Fatal(err)
	}
}
