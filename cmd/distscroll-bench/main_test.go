package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "F3,F4", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "F3") || !strings.Contains(s, "F4") {
		t.Fatalf("report:\n%s", s)
	}
	if !strings.Contains(s, "fit_r2") {
		t.Fatalf("missing metrics:\n%s", s)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "Z9"}, &out); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.txt")
	var out bytes.Buffer
	if err := run([]string{"-run", "F3", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Hardware inventory") {
		t.Fatalf("file report:\n%s", data)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-run", "F3", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	trials, err := os.ReadFile(filepath.Join(dir, "trials.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trials), "P01") || !strings.Contains(string(trials), "wrong_selection") {
		t.Fatalf("trials.csv:\n%.200s", trials)
	}
	conds, err := os.ReadFile(filepath.Join(dir, "conditions.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"distscroll", "hybrid", "winter", "throughput_bps"} {
		if !strings.Contains(string(conds), want) {
			t.Fatalf("conditions.csv missing %q:\n%.300s", want, conds)
		}
	}
}

func TestRunCaseInsensitiveIDs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "f3"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestFleetMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fleet", "5", "-seed", "4", "-workers", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "fleet report (5 devices, seed 4)") {
		t.Fatalf("report header:\n%s", s)
	}
	// One table row per device plus the aggregate lines.
	for _, want := range []string{"frames sent", "decode throughput"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	if got := strings.Count(s, "\n"); got < 5+5 {
		t.Fatalf("report too short (%d lines):\n%s", got, s)
	}
}

func TestFleetModeWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.txt")
	var out bytes.Buffer
	if err := run([]string{"-fleet", "2", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fleet report (2 devices") {
		t.Fatalf("file report:\n%s", data)
	}
}
