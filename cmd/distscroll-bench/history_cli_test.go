package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/history"
)

// TestScaleHistoryOut pins the -history-* flags end to end on the scale
// path: the run samples while live and the final JSON replay file decodes
// with the canonical series present.
func TestScaleHistoryOut(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.json")
	var out bytes.Buffer
	if err := run([]string{
		"-devices", "400", "-seed", "3", "-scale-duration", "2s",
		"-history-windows", "64", "-history-interval", "50ms", "-history-out", path,
	}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "history: sampling telemetry every 50ms, retaining 64 windows") {
		t.Fatalf("no history banner in:\n%s", s)
	}
	if !strings.Contains(s, "wrote telemetry history") {
		t.Fatalf("no history-out line in:\n%s", s)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc history.Result
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("history-out not JSON: %v\n%.300s", err, data)
	}
	if doc.Capacity != 64 || doc.Count == 0 {
		t.Fatalf("history shape: capacity=%d count=%d", doc.Capacity, doc.Count)
	}
	// The close-path final sample guarantees the end-of-run totals landed.
	sd, ok := doc.Series["sim_devices"]
	if !ok {
		t.Fatalf("history missing sim_devices; have %d series", len(doc.Series))
	}
	if n := len(sd.Values); n == 0 || sd.Values[n-1] != 400 {
		t.Fatalf("sim_devices history = %v", sd.Values)
	}
	if _, ok := doc.Series["hub_e2e_latency_ms"]; !ok {
		t.Fatal("history missing the latency digest series")
	}
}

// TestServeHistoryEndpoints boots -serve with the ops plane and history on
// ephemeral ports and scrapes /api/history and /dash over real HTTP.
func TestServeHistoryEndpoints(t *testing.T) {
	out := &syncBuf{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-serve", "127.0.0.1:0", "-serve-for", "3s",
			"-ops-listen", "127.0.0.1:0",
			"-history-windows", "32", "-history-interval", "50ms",
		}, out)
	}()

	listenRe := regexp.MustCompile(`ops plane listening on (\S+) \([^)]*api/history[^)]*\)`)
	var url string
	deadline := time.Now().Add(5 * time.Second)
	for url == "" && time.Now().Before(deadline) {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if url == "" {
		t.Fatalf("ops plane never announced history endpoints:\n%s", out.String())
	}

	get := func(u string) (int, string) {
		t.Helper()
		resp, err := http.Get(u)
		if err != nil {
			t.Fatalf("GET %s: %v", u, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	code, body := get(url + "/api/history?k=8")
	if code != http.StatusOK {
		t.Fatalf("/api/history = %d:\n%.300s", code, body)
	}
	var doc history.Result
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/api/history not JSON: %v\n%.300s", err, body)
	}
	if doc.Capacity != 32 {
		t.Fatalf("capacity = %d, want 32", doc.Capacity)
	}
	code, body = get(url + "/dash")
	if code != http.StatusOK || !strings.Contains(body, "<svg") {
		t.Fatalf("/dash = %d, svg=%v", code, strings.Contains(body, "<svg"))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestHistoryFlagValidation pins the rejections of history flag misuse.
func TestHistoryFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-devices", "100", "-history-windows", "0"}, "-history-windows must be at least 1"},
		{[]string{"-devices", "100", "-history-interval", "-1s"}, "-history-interval must be positive"},
		{[]string{"-history-out", "x.json"}, "require a live run"},
		{[]string{"-history-windows", "16", "-run", "F3"}, "require a live run"},
		{[]string{"-scale-json", "x.json", "-history-out", "y.json"}, "-scale-json is the batch baseline writer"},
	} {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil {
			t.Fatalf("%v accepted", tc.args)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%v: error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}
