package main

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/hubnet"
	"github.com/hcilab/distscroll/internal/rf"
)

// TestServeConnectFlagValidation pins the rejection of networked-hub flag
// combinations that would silently ignore a flag: -serve runs no
// simulation, -connect is meaningless without one, and the simulation
// shaping flags cannot cross the process boundary.
func TestServeConnectFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-serve", "127.0.0.1:0", "-connect", "127.0.0.1:9"}, "mutually exclusive"},
		{[]string{"-serve", "127.0.0.1:0", "-fleet", "4"}, "ingest server only"},
		{[]string{"-serve", "127.0.0.1:0", "-devices", "100"}, "ingest server only"},
		{[]string{"-serve", "127.0.0.1:0", "-bench-csv", "b.csv"}, "do not apply to -serve"},
		{[]string{"-serve", "127.0.0.1:0", "-run", "F3"}, "-serve does not run one"},
		{[]string{"-serve", "127.0.0.1:0", "-o", "report.txt"}, "-serve does not run one"},
		{[]string{"-serve", "127.0.0.1:0", "-loss", "0.1"}, "they do not apply to -serve"},
		{[]string{"-serve", "127.0.0.1:0", "-reliable"}, "they do not apply to -serve"},
		{[]string{"-serve", "127.0.0.1:0", "-workers", "4"}, "does not apply to -serve"},
		{[]string{"-serve", "127.0.0.1:0", "-metrics"}, "scrape the server live"},
		{[]string{"-serve", "127.0.0.1:0", "-hub-shards", "0"}, "-hub-shards must be at least 1"},
		{[]string{"-hub-shards", "4"}, "configures the -serve ingest server"},
		{[]string{"-serve-for", "5s"}, "bounds a -serve run"},
		{[]string{"-serve", "127.0.0.1:0", "-saturate"}, "measures from the client side"},
		{[]string{"-ring-slots", "128"}, "tune the -serve ingest server"},
		{[]string{"-ingest-pipeline=false"}, "tune the -serve ingest server"},
		{[]string{"-serve", "127.0.0.1:0", "-ring-slots", "0"}, "-ring-slots must be at least 1"},
		{[]string{"-serve", "127.0.0.1:0", "-ring-batch", "0"}, "-ring-batch must be at least 1"},
		{[]string{"-serve", "127.0.0.1:0", "-ring-policy", "shed"}, "must be block or drop"},
		{[]string{"-saturate", "-fleet", "2"}, "cannot be combined with -fleet or the scale flags"},
		{[]string{"-saturate", "-bench-json", "x.json"}, "run them one at a time"},
		{[]string{"-saturate", "-metrics"}, "ingest throughput only"},
		{[]string{"-saturate", "-run", "F3"}, "-saturate does not run it"},
		{[]string{"-conns", "4"}, "parameterise a -saturate run"},
		{[]string{"-saturate-json", "x.json"}, "parameterise a -saturate run"},
		{[]string{"-saturate", "-conns", "0"}, "counts must be at least 1"},
		{[]string{"-saturate", "-conns", "128"}, "would leave some idle"},
		{[]string{"-saturate", "-saturate-duration", "3s"}, "load generator"},
		{[]string{"-saturate", "-connect", "127.0.0.1:9", "-saturate-json", "x.json"}, "cannot measure it"},
		{[]string{"-saturate", "-connect", "127.0.0.1:9", "-saturate-shards", "2"}, "picks its own shard count"},
		{[]string{"-saturate", "-connect", "127.0.0.1:9", "-conns", "1,2"}, "single load-generator connection count"},
		{[]string{"-connect", "127.0.0.1:9"}, "combine it with -fleet, -devices, -scale or -saturate"},
		{[]string{"-connect", "127.0.0.1:9", "-devices", "100", "-scale-json", "x.json"}, "cannot stream to -connect"},
		{[]string{"-connect", "127.0.0.1:9", "-fleet", "4", "-reliable"}, "acks cannot cross the -connect byte stream"},
		{[]string{"-fleet", "2", "-run", "F3"}, "-run selects experiments"},
		{[]string{"-fleet", "2", "-csv", "out"}, "cannot be combined with -fleet"},
		{[]string{"-devices", "100", "-o", "report.txt"}, "the scale path prints to stdout only"},
		{[]string{"-devices", "100", "-bench-csv", "b.csv"}, "cannot be combined with the scale flags"},
		{[]string{"-workers", "4"}, "bounds a -fleet or scale run"},
		{[]string{"-fleet", "2", "-burst-len", "3"}, "set -burst > 0 as well"},
		{[]string{"-fleet", "2", "-ack-loss", "0.1"}, "add -reliable"},
		{[]string{"-loss", "0.1"}, "-loss shapes the simulated link"},
	} {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil {
			t.Fatalf("%v accepted", tc.args)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%v: error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}

// TestConnectFleetEndToEnd points a -fleet run at a live ingest server: the
// CLI must announce the forwarding, the report must defer host accounting
// to the server, and the server must decode every device's frames.
func TestConnectFleetEndToEnd(t *testing.T) {
	srv, err := hubnet.Serve("127.0.0.1:0", hubnet.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out bytes.Buffer
	if err := run([]string{"-fleet", "4", "-connect", srv.Addr().String()}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hubnet: forwarding frames to", "frames forwarded to"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// run() has returned and closed the stream, but the server drains it
	// asynchronously: wait for every device's frames to land.
	gw := srv.Gateway()
	deadline := time.Now().Add(5 * time.Second)
	for gw.Stats().Devices < 4 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	hs := gw.Stats()
	if hs.Devices != 4 || hs.Decoded == 0 || hs.BadFrames != 0 {
		t.Fatalf("server accounting after fleet run: %+v", hs)
	}
}

// TestConnectScaleEndToEnd points a -devices scale run at a live ingest
// server: one stream per worker, every emitted frame decodable server-side.
func TestConnectScaleEndToEnd(t *testing.T) {
	srv, err := hubnet.Serve("127.0.0.1:0", hubnet.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out bytes.Buffer
	args := []string{"-devices", "40", "-workers", "4", "-seed", "9",
		"-scale-duration", "300ms", "-connect", srv.Addr().String()}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hubnet: streaming frames to") {
		t.Fatalf("output missing streaming banner:\n%s", out.String())
	}
	gw := srv.Gateway()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if gw.Stats().Decoded > 0 && gw.NetStats().ConnsTotal >= 4 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	ns, hs := gw.NetStats(), gw.Stats()
	if hs.Decoded == 0 || hs.BadFrames != 0 {
		t.Fatalf("server decoded %d frames (%d bad) from the scale run", hs.Decoded, hs.BadFrames)
	}
	if ns.ConnsTotal != 4 {
		t.Fatalf("scale run opened %d connections, want one per worker (4)", ns.ConnsTotal)
	}
}

// syncBuf is a writer safe to read while runServe writes from a goroutine.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}
func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeRunSummary drives the -serve path end to end through run(): boot
// on an ephemeral port, feed it frames from three devices over one
// connection, and check the deadline-bounded server prints per-shard
// accounting that matches what was sent.
func TestServeRunSummary(t *testing.T) {
	out := &syncBuf{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-serve", "127.0.0.1:0", "-hub-shards", "2", "-serve-for", "2s"}, out)
	}()

	addrRe := regexp.MustCompile(`serving frame ingest on (\S+) \(2 shard\(s\)\)`)
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("server never announced its address:\n%s", out.String())
	}

	conn, err := hubnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for dev := uint32(1); dev <= 3; dev++ {
		for seq := 0; seq < 5; seq++ {
			p, err := (rf.Message{Kind: rf.MsgScroll, Device: dev, Seq: uint16(seq), AtMillis: uint32(seq) * 40}).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if err := conn.Forward(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"15 frames (0 bad",
		"hub: 3 device(s), 15 frames decoded",
		"shard 0:",
		"shard 1:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("serve summary missing %q:\n%s", want, got)
		}
	}
}
