package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScaleMetricsExposition pins the PR-6 gap closed: -devices (the scale
// path) honours -metrics and dumps the merged canonical names.
func TestScaleMetricsExposition(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-devices", "400", "-seed", "5", "-scale-duration", "2s", "-metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Telemetry (Prometheus exposition)",
		"# TYPE rf_frames_sent_total counter",
		"# TYPE fw_cycles_total counter",
		"# TYPE arq_retransmits_total counter",
		"hub_e2e_latency_ms_bucket",
		"sim_ticks_per_second",
		"sim_devices 400",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%.3000s", want, s)
		}
	}
}

func TestScaleMetricsOut(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scale.json")
	var out bytes.Buffer
	if err := run([]string{"-devices", "300", "-seed", "2", "-scale-duration", "1s", "-metrics-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep scaleTelemetryReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%.300s", err, data)
	}
	if rep.Result.Devices != 300 || rep.Result.Frames == 0 {
		t.Fatalf("result shape: %+v", rep.Result)
	}
	if rep.Metrics == nil {
		t.Fatal("no metrics snapshot")
	}
	if rep.Metrics.Counters["fw_cycles_total"] != rep.Result.Ticks {
		t.Fatalf("fw_cycles_total %d != ticks %d",
			rep.Metrics.Counters["fw_cycles_total"], rep.Result.Ticks)
	}
	lat, ok := rep.Metrics.Histogram("hub_e2e_latency_ms")
	if !ok || lat.Count != rep.Result.Frames {
		t.Fatalf("latency histogram: ok=%v count=%d frames=%d", ok, lat.Count, rep.Result.Frames)
	}
}

// TestFlagComboValidation pins the rejection of flag combinations that
// previously either silently did nothing or make no sense.
func TestFlagComboValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-fleet", "4", "-devices", "100"}, "-fleet cannot be combined"},
		{[]string{"-fleet", "4", "-scale", "100"}, "-fleet cannot be combined"},
		{[]string{"-devices", "100", "-reliable"}, "the scale path models loss via -loss"},
		{[]string{"-scale", "100", "-burst", "0.1"}, "the scale path models loss via -loss"},
		{[]string{"-devices", "100", "-ack-loss", "0.1"}, "the scale path models loss via -loss"},
		{[]string{"-ops-listen", "127.0.0.1:0"}, "require a live run"},
		{[]string{"-slo-stall", "5s"}, "require a live run"},
		{[]string{"-slo-p99", "50", "-run", "F3"}, "require a live run"},
		{[]string{"-scale", "100,200", "-metrics", "-scale-duration", "1s"}, "single-point scale run"},
		{[]string{"-scale-json", "x.json", "-metrics"}, "-scale-json is the batch baseline writer"},
		{[]string{"-scale-json", "x.json", "-ops-listen", "127.0.0.1:0"}, "-scale-json is the batch baseline writer"},
	} {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil {
			t.Fatalf("%v accepted", tc.args)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%v: error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}

// TestScaleLossFlag pins -loss reaching the scale path: a lossless run has
// zero retransmits, the default 1% has some.
func TestScaleLossFlag(t *testing.T) {
	dir := t.TempDir()
	lossless := filepath.Join(dir, "lossless.json")
	var out bytes.Buffer
	if err := run([]string{"-devices", "200", "-seed", "4", "-scale-duration", "2s", "-loss", "0", "-metrics-out", lossless}, &out); err != nil {
		t.Fatal(err)
	}
	var rep scaleTelemetryReport
	data, _ := os.ReadFile(lossless)
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Result.Lost != 0 || rep.Result.Retransmits != 0 {
		t.Fatalf("-loss 0 still lost frames: %+v", rep.Result)
	}
}

// TestOpsListenServesLiveRun boots a scale run with the ops plane on an
// ephemeral port and scrapes /metrics and /healthz over real HTTP.
func TestOpsListenServesLiveRun(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-devices", "500", "-seed", "6", "-scale-duration", "2s",
		"-ops-listen", "127.0.0.1:0", "-slo-stall", "30s",
	}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	marker := "ops plane listening on "
	i := strings.Index(s, marker)
	if i < 0 {
		t.Fatalf("no listen line in:\n%s", s)
	}
	url := strings.Fields(s[i+len(marker):])[0]

	// The run has finished but the registry retains the final merged
	// state; the collector contract says a post-run scrape reads totals.
	// (Server is closed after run(); re-serve via handler is covered in
	// internal/ops — here we only check the CLI printed a usable URL and
	// the run stayed healthy.)
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatalf("ops server still listening after run returned")
	}
	if strings.Contains(s, "slo watchdog:") {
		t.Fatalf("healthy run reported breaches:\n%s", s)
	}
}

// TestFleetOpsPlane runs the session fleet with the watchdog attached: a
// short healthy run must end with no breaches recorded.
func TestFleetOpsPlane(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{
		"-fleet", "4", "-seed", "2",
		"-slo-stall", "30s", "-slo-p99", "100000",
	}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "slo watchdog:") {
		t.Fatalf("healthy fleet run reported breaches:\n%s", out.String())
	}
}
