package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/participant"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/study"
	"github.com/hcilab/distscroll/internal/technique"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// writeCSVs exports the raw data behind the E2 user study (per-trial) and
// the E3 technique comparison (per-condition) for external analysis.
func writeCSVs(dir string, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("csv dir: %w", err)
	}
	if err := writeTrials(filepath.Join(dir, "trials.csv"), seed); err != nil {
		return err
	}
	return writeConditions(filepath.Join(dir, "conditions.csv"), seed)
}

func writeTrials(path string, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()

	for pid := 0; pid < 12; pid++ {
		pseed := seed + uint64(pid)*101
		rng := sim.NewRand(pseed)
		specs := study.GenerateTrials(10, []int{1, 2, 4, 8}, 5, rng)
		res, err := study.RunSession(study.SessionConfig{
			Seed:        pseed,
			Participant: participant.DefaultConfig(),
			Entries:     10,
			Trials:      specs,
		})
		if err != nil {
			return fmt.Errorf("session P%02d: %w", pid+1, err)
		}
		if err := study.WriteTrialsCSV(f, fmt.Sprintf("P%02d", pid+1), res.Results); err != nil {
			return err
		}
	}
	return nil
}

func writeConditions(path string, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()

	rng := sim.NewRand(seed)
	var results []study.ConditionResult
	for _, glove := range []hand.Glove{hand.BareHand(), hand.WinterGlove()} {
		techs := []technique.Technique{
			technique.NewDistScroll(),
			technique.NewTilt(),
			technique.NewButtonRepeat(),
			technique.NewWheel(),
			technique.NewStylus(),
			technique.NewHybrid(),
		}
		for _, tech := range techs {
			res, err := study.RunCondition(study.Condition{
				Technique:  tech,
				Glove:      glove,
				Entries:    20,
				Amplitudes: []int{1, 2, 4, 8, 16},
				Reps:       40,
			}, rng.Split())
			if err != nil {
				return fmt.Errorf("condition %s/%s: %w", tech.Name(), glove.Name, err)
			}
			results = append(results, res)
		}
	}
	return study.WriteConditionsCSV(f, results)
}

// benchHubDemux measures the hub's frame-decode-and-route hot path over a
// 64-device round-robin, with or without a telemetry registry attached —
// the same workload as the repository's BenchmarkHubDemux.
func benchHubDemux(reg *telemetry.Registry) testing.BenchmarkResult {
	const devices = 64
	frames := make([][]byte, devices)
	for i := range frames {
		m := rf.Message{
			Device: uint32(i + 1), Kind: rf.MsgScroll,
			Seq: 1, AtMillis: 40, Index: int16(i % 10),
		}
		payload, err := m.MarshalBinary()
		if err != nil {
			panic(err)
		}
		frames[i] = payload
	}
	return testing.Benchmark(func(b *testing.B) {
		hub := core.NewHubWithMetrics(false, reg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hub.Handle(frames[i%devices], time.Duration(i)*time.Millisecond)
		}
	})
}

// writeBenchCSV benchmarks the hub demux path plain and instrumented and
// records both, plus the relative overhead, as CSV. The telemetry design
// budget is <10% on this path.
func writeBenchCSV(path string) error {
	plain := benchHubDemux(nil)
	instrumented := benchHubDemux(telemetry.New())
	p := float64(plain.NsPerOp())
	i := float64(instrumented.NsPerOp())
	overhead := 0.0
	if p > 0 {
		overhead = (i - p) / p * 100
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench csv: %w", err)
	}
	defer f.Close()
	fmt.Fprintln(f, "benchmark,iterations,ns_per_op,overhead_pct")
	fmt.Fprintf(f, "HubDemux,%d,%.2f,\n", plain.N, p)
	fmt.Fprintf(f, "HubDemuxInstrumented,%d,%.2f,%.2f\n", instrumented.N, i, overhead)
	return nil
}
