package main

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/participant"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/study"
	"github.com/hcilab/distscroll/internal/technique"
)

// writeCSVs exports the raw data behind the E2 user study (per-trial) and
// the E3 technique comparison (per-condition) for external analysis.
func writeCSVs(dir string, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("csv dir: %w", err)
	}
	if err := writeTrials(filepath.Join(dir, "trials.csv"), seed); err != nil {
		return err
	}
	return writeConditions(filepath.Join(dir, "conditions.csv"), seed)
}

func writeTrials(path string, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()

	for pid := 0; pid < 12; pid++ {
		pseed := seed + uint64(pid)*101
		rng := sim.NewRand(pseed)
		specs := study.GenerateTrials(10, []int{1, 2, 4, 8}, 5, rng)
		res, err := study.RunSession(study.SessionConfig{
			Seed:        pseed,
			Participant: participant.DefaultConfig(),
			Entries:     10,
			Trials:      specs,
		})
		if err != nil {
			return fmt.Errorf("session P%02d: %w", pid+1, err)
		}
		if err := study.WriteTrialsCSV(f, fmt.Sprintf("P%02d", pid+1), res.Results); err != nil {
			return err
		}
	}
	return nil
}

func writeConditions(path string, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()

	rng := sim.NewRand(seed)
	var results []study.ConditionResult
	for _, glove := range []hand.Glove{hand.BareHand(), hand.WinterGlove()} {
		techs := []technique.Technique{
			technique.NewDistScroll(),
			technique.NewTilt(),
			technique.NewButtonRepeat(),
			technique.NewWheel(),
			technique.NewStylus(),
			technique.NewHybrid(),
		}
		for _, tech := range techs {
			res, err := study.RunCondition(study.Condition{
				Technique:  tech,
				Glove:      glove,
				Entries:    20,
				Amplitudes: []int{1, 2, 4, 8, 16},
				Reps:       40,
			}, rng.Split())
			if err != nil {
				return fmt.Errorf("condition %s/%s: %w", tech.Name(), glove.Name, err)
			}
			results = append(results, res)
		}
	}
	return study.WriteConditionsCSV(f, results)
}
