package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/fleet"
	"github.com/hcilab/distscroll/internal/hubnet"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// This file implements -devices / -scale / -scale-json: the devices-vs-
// throughput scaling harness over the struct-of-arrays fleet path
// (fleet.RunScale) and the BENCH_<pr>.json baseline that pins the
// timing-wheel scheduler against the heap reference on the same machine.

// defaultScaleSweep is the -scale-json curve when no -scale list is given:
// three decades up to the million-device target.
var defaultScaleSweep = []int{1_000, 10_000, 100_000, 1_000_000}

// parseScaleList parses "-scale 1000,10000,..." into device counts.
func parseScaleList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-scale: %q is not a device count", part)
		}
		if n < 1 {
			return nil, fmt.Errorf("-scale: device counts must be at least 1, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// defaultScaleLoss is the modelled per-frame loss when -loss is not given.
const defaultScaleLoss = 0.01

// runScalePoint simulates one device count on the scale path. A negative
// loss takes the stock model loss; reg, when non-nil, receives the live
// striped telemetry; connect, when non-empty, streams every emitted frame
// to a hubnet server over one TCP connection per worker, flushed once per
// stripe sweep. Slab slot s maps to wire device id s+1, matching the
// session fleet's numbering.
func runScalePoint(devices int, seed uint64, workers int, dur time.Duration, loss float64, reg *telemetry.Registry, connect string) (fleet.ScaleResult, error) {
	if loss < 0 {
		loss = defaultScaleLoss
	}
	cfg := fleet.ScaleConfig{
		Devices:  devices,
		Seed:     seed,
		Workers:  workers,
		Duration: dur,
		LossProb: loss,
		Metrics:  reg,
	}
	if connect != "" {
		cfg.Emit = func(worker, lo, hi int) (*fleet.StripeSink, error) {
			conn, err := hubnet.Dial(connect)
			if err != nil {
				return nil, err
			}
			sender := hubnet.NewFrameSender(conn, 1)
			return &fleet.StripeSink{
				Emit:  sender.Emit,
				Flush: sender.Flush,
				Close: func() error {
					err := sender.Flush()
					if cerr := conn.Close(); err == nil {
						err = cerr
					}
					return err
				},
			}, nil
		}
	}
	return fleet.RunScale(cfg)
}

// scaleSweepOpts parameterises -devices/-scale runs, including the live
// ops plane and the telemetry outputs that used to be fleet-only.
type scaleSweepOpts struct {
	sweep      []int
	seed       uint64
	workers    int
	dur        time.Duration
	loss       float64
	metrics    bool
	metricsOut string
	connect    string
	ops        opsOpts
}

// runScaleSweep prints the devices-vs-throughput table for -devices/-scale.
// Single-point runs may attach telemetry (-metrics/-metrics-out) and the
// ops plane (-ops-listen, -slo-*); run() rejects the unsupported combos.
func runScaleSweep(o scaleSweepOpts, stdout io.Writer) error {
	var reg *telemetry.Registry
	if o.metrics || o.metricsOut != "" || o.ops.enabled() {
		reg = telemetry.New()
	}
	var opsSummary strings.Builder
	var plane *opsPlane
	if o.ops.enabled() {
		var err error
		plane, err = startOpsPlane(o.ops, reg, nil, telemetry.MetricSimVirtualSeconds, stdout)
		if err != nil {
			return err
		}
		defer plane.close(io.Discard)
	}

	fmt.Fprintf(stdout, "DistScroll scale sweep (seed %d, %s virtual per device)\n", o.seed, o.dur)
	fmt.Fprintf(stdout, "%s\n", strings.Repeat("=", 76))
	fmt.Fprintf(stdout, "%9s %8s %12s %12s %14s %12s\n",
		"devices", "workers", "wall_s", "ticks/s", "rt_factor", "frames")
	if o.connect != "" {
		fmt.Fprintf(stdout, "hubnet: streaming frames to %s (one connection per worker)\n", o.connect)
	}
	var last fleet.ScaleResult
	for _, n := range o.sweep {
		res, err := runScalePoint(n, o.seed, o.workers, o.dur, o.loss, reg, o.connect)
		if err != nil {
			return err
		}
		last = res
		fmt.Fprintf(stdout, "%9d %8d %12.3f %12.0f %14.0f %12d\n",
			res.Devices, res.Workers, res.WallSeconds, res.TicksPerSecond,
			res.RealTimeFactor, res.Frames)
	}
	if plane != nil {
		plane.close(&opsSummary)
		if _, err := io.WriteString(stdout, opsSummary.String()); err != nil {
			return err
		}
	}

	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	if o.metrics {
		fmt.Fprintf(stdout, "\nTelemetry (Prometheus exposition)\n%s\n", strings.Repeat("-", 76))
		if lat, ok := snap.Histogram(telemetry.MetricHubE2ELatency); ok {
			fmt.Fprintf(stdout, "# e2e latency: p50=%.2fms p90=%.2fms p99=%.2fms over %d frames\n",
				lat.P50, lat.P90, lat.P99, lat.Count)
		}
		if err := snap.WritePrometheus(stdout); err != nil {
			return err
		}
	}
	if o.metricsOut != "" {
		if err := writeScaleTelemetryJSON(o.metricsOut, o.seed, last, snap); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote telemetry report to %s\n", o.metricsOut)
	}
	return nil
}

// scaleTelemetryReport is the scale-mode -metrics-out document: the run's
// throughput summary plus the merged metrics snapshot.
type scaleTelemetryReport struct {
	Seed    uint64              `json:"seed"`
	Result  fleet.ScaleResult   `json:"result"`
	Metrics *telemetry.Snapshot `json:"metrics"`
}

func writeScaleTelemetryJSON(path string, seed uint64, res fleet.ScaleResult, snap *telemetry.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry report: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(scaleTelemetryReport{Seed: seed, Result: res, Metrics: snap}); err != nil {
		return fmt.Errorf("telemetry report: %w", err)
	}
	return nil
}

// benchWheelScheduler and benchHeapScheduler measure the schedule+dispatch
// hot path of each implementation live, like the hub benchmarks in
// benchjson.go: same machine, same process, same workload.
func benchEventScheduler(s sim.EventScheduler) testing.BenchmarkResult {
	fn := func(time.Duration) {}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.After(40*time.Millisecond, fn)
			s.After(41*time.Millisecond, fn)
			s.After(200*time.Millisecond, fn)
			s.Step()
			s.Step()
			s.Step()
		}
	})
}

// scalePoint is one device count's record on the scaling curve.
type scalePoint struct {
	Devices        int     `json:"devices"`
	Workers        int     `json:"workers"`
	VirtualSeconds float64 `json:"virtualSeconds"`
	WallSeconds    float64 `json:"wallSeconds"`
	RealTimeFactor float64 `json:"realTimeFactor"`
	TicksPerSecond float64 `json:"ticksPerSecond"`
	Frames         uint64  `json:"frames"`
	Switches       uint64  `json:"switches"`
}

// scaleBaseline is the BENCH_<pr>.json document for the scale refactor:
// the scheduler micro-comparison (heap before, wheel after) plus the
// devices-vs-throughput curve.
type scaleBaseline struct {
	PR         int    `json:"pr"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Before/After mirror BENCH_4.json: the heap scheduler measured live
	// as the before, the timing wheel as the after.
	Before []benchEntry `json:"before"`
	After  []benchEntry `json:"after"`
	// SchedulerSpeedup is heap ns/op divided by wheel ns/op.
	SchedulerSpeedup float64 `json:"schedulerSpeedup"`
	// Scale is the devices-vs-throughput curve; RealTimeFactor > 1 means
	// the whole fleet simulated faster than real time.
	Scale []scalePoint `json:"scale"`
}

// scaleWorkerRows picks the worker counts each device point runs at: the
// explicit -workers value when given, otherwise a small ladder (serial,
// one extra, the full machine) so the baseline records how the striped
// path scales with workers, not just one pool size.
func scaleWorkerRows(workers int) []int {
	if workers > 0 {
		return []int{workers}
	}
	rows := []int{1}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		if w > rows[len(rows)-1] {
			rows = append(rows, w)
		}
	}
	return rows
}

// writeScaleJSON measures the schedulers and the scaling curve — one row
// per device count per worker count — and writes the machine-readable
// baseline.
func writeScaleJSON(path string, sweep []int, seed uint64, workers int, dur time.Duration, loss float64, stdout io.Writer) error {
	heap := benchEventScheduler(sim.NewHeapScheduler(sim.NewClock(0)))
	wheel := benchEventScheduler(sim.NewScheduler(sim.NewClock(0)))

	doc := scaleBaseline{
		PR:         5,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Before:     []benchEntry{toEntry("SchedulerHeap", heap)},
		After:      []benchEntry{toEntry("SchedulerWheel", wheel)},
	}
	if ns := doc.After[0].NsPerOp; ns > 0 {
		doc.SchedulerSpeedup = doc.Before[0].NsPerOp / ns
	}
	for _, n := range sweep {
		for _, w := range scaleWorkerRows(workers) {
			res, err := runScalePoint(n, seed, w, dur, loss, nil, "")
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "scale %d devices x %d worker(s): %.0fx real time (%.0f ticks/s)\n",
				res.Devices, res.Workers, res.RealTimeFactor, res.TicksPerSecond)
			doc.Scale = append(doc.Scale, scalePoint{
				Devices:        res.Devices,
				Workers:        res.Workers,
				VirtualSeconds: res.VirtualSeconds,
				WallSeconds:    res.WallSeconds,
				RealTimeFactor: res.RealTimeFactor,
				TicksPerSecond: res.TicksPerSecond,
				Frames:         res.Frames,
				Switches:       res.Switches,
			})
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("scale json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("scale json: %w", err)
	}
	return nil
}
