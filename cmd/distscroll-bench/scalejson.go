package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/fleet"
	"github.com/hcilab/distscroll/internal/sim"
)

// This file implements -devices / -scale / -scale-json: the devices-vs-
// throughput scaling harness over the struct-of-arrays fleet path
// (fleet.RunScale) and the BENCH_<pr>.json baseline that pins the
// timing-wheel scheduler against the heap reference on the same machine.

// defaultScaleSweep is the -scale-json curve when no -scale list is given:
// three decades up to the million-device target.
var defaultScaleSweep = []int{1_000, 10_000, 100_000, 1_000_000}

// parseScaleList parses "-scale 1000,10000,..." into device counts.
func parseScaleList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-scale: %q is not a device count", part)
		}
		if n < 1 {
			return nil, fmt.Errorf("-scale: device counts must be at least 1, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// runScalePoint simulates one device count on the scale path.
func runScalePoint(devices int, seed uint64, workers int, dur time.Duration) (fleet.ScaleResult, error) {
	return fleet.RunScale(fleet.ScaleConfig{
		Devices:  devices,
		Seed:     seed,
		Workers:  workers,
		Duration: dur,
		LossProb: 0.01,
	})
}

// runScaleSweep prints the devices-vs-throughput table for -devices/-scale.
func runScaleSweep(sweep []int, seed uint64, workers int, dur time.Duration, stdout io.Writer) error {
	fmt.Fprintf(stdout, "DistScroll scale sweep (seed %d, %s virtual per device)\n", seed, dur)
	fmt.Fprintf(stdout, "%s\n", strings.Repeat("=", 76))
	fmt.Fprintf(stdout, "%9s %8s %12s %12s %14s %12s\n",
		"devices", "workers", "wall_s", "ticks/s", "rt_factor", "frames")
	for _, n := range sweep {
		res, err := runScalePoint(n, seed, workers, dur)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%9d %8d %12.3f %12.0f %14.0f %12d\n",
			res.Devices, res.Workers, res.WallSeconds, res.TicksPerSecond,
			res.RealTimeFactor, res.Frames)
	}
	return nil
}

// benchWheelScheduler and benchHeapScheduler measure the schedule+dispatch
// hot path of each implementation live, like the hub benchmarks in
// benchjson.go: same machine, same process, same workload.
func benchEventScheduler(s sim.EventScheduler) testing.BenchmarkResult {
	fn := func(time.Duration) {}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.After(40*time.Millisecond, fn)
			s.After(41*time.Millisecond, fn)
			s.After(200*time.Millisecond, fn)
			s.Step()
			s.Step()
			s.Step()
		}
	})
}

// scalePoint is one device count's record on the scaling curve.
type scalePoint struct {
	Devices        int     `json:"devices"`
	Workers        int     `json:"workers"`
	VirtualSeconds float64 `json:"virtualSeconds"`
	WallSeconds    float64 `json:"wallSeconds"`
	RealTimeFactor float64 `json:"realTimeFactor"`
	TicksPerSecond float64 `json:"ticksPerSecond"`
	Frames         uint64  `json:"frames"`
	Switches       uint64  `json:"switches"`
}

// scaleBaseline is the BENCH_<pr>.json document for the scale refactor:
// the scheduler micro-comparison (heap before, wheel after) plus the
// devices-vs-throughput curve.
type scaleBaseline struct {
	PR         int    `json:"pr"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Before/After mirror BENCH_4.json: the heap scheduler measured live
	// as the before, the timing wheel as the after.
	Before []benchEntry `json:"before"`
	After  []benchEntry `json:"after"`
	// SchedulerSpeedup is heap ns/op divided by wheel ns/op.
	SchedulerSpeedup float64 `json:"schedulerSpeedup"`
	// Scale is the devices-vs-throughput curve; RealTimeFactor > 1 means
	// the whole fleet simulated faster than real time.
	Scale []scalePoint `json:"scale"`
}

// writeScaleJSON measures the schedulers and the scaling curve and writes
// the machine-readable baseline.
func writeScaleJSON(path string, sweep []int, seed uint64, workers int, dur time.Duration, stdout io.Writer) error {
	heap := benchEventScheduler(sim.NewHeapScheduler(sim.NewClock(0)))
	wheel := benchEventScheduler(sim.NewScheduler(sim.NewClock(0)))

	doc := scaleBaseline{
		PR:         5,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Before:     []benchEntry{toEntry("SchedulerHeap", heap)},
		After:      []benchEntry{toEntry("SchedulerWheel", wheel)},
	}
	if ns := doc.After[0].NsPerOp; ns > 0 {
		doc.SchedulerSpeedup = doc.Before[0].NsPerOp / ns
	}
	for _, n := range sweep {
		res, err := runScalePoint(n, seed, workers, dur)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "scale %d devices: %.0fx real time (%.0f ticks/s)\n",
			res.Devices, res.RealTimeFactor, res.TicksPerSecond)
		doc.Scale = append(doc.Scale, scalePoint{
			Devices:        res.Devices,
			Workers:        res.Workers,
			VirtualSeconds: res.VirtualSeconds,
			WallSeconds:    res.WallSeconds,
			RealTimeFactor: res.RealTimeFactor,
			TicksPerSecond: res.TicksPerSecond,
			Frames:         res.Frames,
			Switches:       res.Switches,
		})
	}

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("scale json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("scale json: %w", err)
	}
	return nil
}
