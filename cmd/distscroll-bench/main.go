// Command distscroll-bench regenerates every figure and experiment of the
// DistScroll paper reproduction (see DESIGN.md Section 4) and prints the
// resulting charts, tables and metrics.
//
// Usage:
//
//	distscroll-bench                 # run everything
//	distscroll-bench -run F4,E3      # run selected experiments
//	distscroll-bench -seed 42        # change the master seed
//	distscroll-bench -o report.txt   # also write the report to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/hcilab/distscroll/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distscroll-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("distscroll-bench", flag.ContinueOnError)
	var (
		runList = fs.String("run", "", "comma-separated experiment ids (default: all)")
		seed    = fs.Uint64("seed", 1, "master random seed")
		outPath = fs.String("o", "", "also write the report to this file")
		csvDir  = fs.String("csv", "", "write raw study CSVs (trials, conditions) into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, *seed); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote trials.csv and conditions.csv to %s\n", *csvDir)
	}

	var runners []experiments.Runner
	if *runList == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			r, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: F1-F5, E1-E6, A1-A3)", id)
			}
			runners = append(runners, r)
		}
	}

	var report strings.Builder
	fmt.Fprintf(&report, "DistScroll reproduction report (seed %d)\n", *seed)
	fmt.Fprintf(&report, "%s\n\n", strings.Repeat("=", 60))
	for _, r := range runners {
		rep, err := r.Run(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		report.WriteString(rep.String())
		report.WriteString("\n")
	}

	if _, err := io.WriteString(stdout, report.String()); err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report.String()), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}
