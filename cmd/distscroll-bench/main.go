// Command distscroll-bench regenerates every figure and experiment of the
// DistScroll paper reproduction (see DESIGN.md Section 4) and prints the
// resulting charts, tables and metrics.
//
// Usage:
//
//	distscroll-bench                 # run everything
//	distscroll-bench -run F4,E3      # run selected experiments
//	distscroll-bench -seed 42        # change the master seed
//	distscroll-bench -o report.txt   # also write the report to a file
//	distscroll-bench -fleet 64       # simulate a 64-device fleet instead
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/hcilab/distscroll/internal/experiments"
	"github.com/hcilab/distscroll/internal/fleet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distscroll-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("distscroll-bench", flag.ContinueOnError)
	var (
		runList  = fs.String("run", "", "comma-separated experiment ids (default: all)")
		seed     = fs.Uint64("seed", 1, "master random seed")
		outPath  = fs.String("o", "", "also write the report to this file")
		csvDir   = fs.String("csv", "", "write raw study CSVs (trials, conditions) into this directory")
		fleetN   = fs.Int("fleet", 0, "simulate a fleet of N devices against one hub instead of the experiments")
		fleetWrk = fs.Int("workers", 0, "bound on concurrently simulating fleet devices (0 = one goroutine per device)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *fleetN > 0 {
		return runFleet(*fleetN, *fleetWrk, *seed, *outPath, stdout)
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, *seed); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote trials.csv and conditions.csv to %s\n", *csvDir)
	}

	var runners []experiments.Runner
	if *runList == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			r, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: F1-F5, E1-E6, A1-A3)", id)
			}
			runners = append(runners, r)
		}
	}

	var report strings.Builder
	fmt.Fprintf(&report, "DistScroll reproduction report (seed %d)\n", *seed)
	fmt.Fprintf(&report, "%s\n\n", strings.Repeat("=", 60))
	for _, r := range runners {
		rep, err := r.Run(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		report.WriteString(rep.String())
		report.WriteString("\n")
	}

	if _, err := io.WriteString(stdout, report.String()); err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report.String()), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}

// runFleet simulates n devices concurrently against one hub and prints the
// per-device and aggregate accounting.
func runFleet(n, workers int, seed uint64, outPath string, stdout io.Writer) error {
	r, err := fleet.New(fleet.Config{Devices: n, Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	results, err := r.RunAll()
	if err != nil {
		return err
	}

	var report strings.Builder
	fmt.Fprintf(&report, "DistScroll fleet report (%d devices, seed %d)\n", n, seed)
	fmt.Fprintf(&report, "%s\n", strings.Repeat("=", 60))
	fmt.Fprintf(&report, "%6s %8s %10s %8s %8s %8s\n",
		"device", "sent", "delivered", "lost", "events", "missed")
	for _, res := range results {
		fmt.Fprintf(&report, "%6d %8d %10d %8d %8d %8d\n",
			res.Device, res.Link.Sent, res.Link.Delivered, res.Link.Lost,
			res.Host.Events, res.Host.MissedSeq)
	}
	tot := r.Total(results)
	fmt.Fprintf(&report, "%s\n", strings.Repeat("-", 60))
	fmt.Fprintf(&report, "frames sent %d, delivered %d, lost %d, corrupted %d, events %d, seq gaps %d\n",
		tot.Sent, tot.Delivered, tot.Lost, tot.Corrupted, tot.Events, tot.MissedSeq)
	fmt.Fprintf(&report, "virtual time %.1f s, decode throughput %.1f frames/s\n",
		tot.VirtualSeconds, tot.FramesPerSecond)

	if _, err := io.WriteString(stdout, report.String()); err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(report.String()), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}
