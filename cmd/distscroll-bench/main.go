// Command distscroll-bench regenerates every figure and experiment of the
// DistScroll paper reproduction (see DESIGN.md Section 4) and prints the
// resulting charts, tables and metrics.
//
// Usage:
//
//	distscroll-bench                 # run everything
//	distscroll-bench -run F4,E3      # run selected experiments
//	distscroll-bench -seed 42        # change the master seed
//	distscroll-bench -o report.txt   # also write the report to a file
//	distscroll-bench -fleet 64       # simulate a 64-device fleet instead
//	distscroll-bench -fleet 64 -metrics              # + Prometheus dump
//	distscroll-bench -fleet 64 -metrics-out rep.json # + JSON telemetry
//	distscroll-bench -fleet 64 -reliable -loss 0.05  # ARQ on a 5%-loss link
//	distscroll-bench -bench-csv bench.csv            # demux overhead CSV
//	distscroll-bench -bench-json BENCH_4.json        # perf baseline, old vs new hub
//	distscroll-bench -devices 100000 -ops-listen 127.0.0.1:9100  # live /metrics
//	distscroll-bench -devices 100000 -slo-stall 10s  # watchdog on the scale run
//	distscroll-bench -devices 100000 -ops-listen 127.0.0.1:9100 -history-windows 300  # /api/history + /dash
//	distscroll-bench -devices 100000 -history-out hist.json      # history replay file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/experiments"
	"github.com/hcilab/distscroll/internal/fleet"
	"github.com/hcilab/distscroll/internal/history"
	"github.com/hcilab/distscroll/internal/hubnet"
	"github.com/hcilab/distscroll/internal/ops"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distscroll-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("distscroll-bench", flag.ContinueOnError)
	// Usage and parse errors go to stdout so the help text is part of the
	// tool's pinned, testable output.
	fs.SetOutput(stdout)
	var (
		runList   = fs.String("run", "", "comma-separated experiment ids (default: all)")
		seed      = fs.Uint64("seed", 1, "master random seed")
		outPath   = fs.String("o", "", "also write the report to this file")
		csvDir    = fs.String("csv", "", "write raw study CSVs (trials, conditions) into this directory")
		fleetN    = fs.Int("fleet", 0, "simulate a fleet of N devices against one hub instead of the experiments")
		fleetWrk  = fs.Int("workers", 0, "bound on concurrently simulating fleet devices (0 = one goroutine per device)")
		devicesN  = fs.Int("devices", 0, "simulate N struct-of-arrays scale devices (timing-wheel stripes) and print the throughput summary")
		scaleList = fs.String("scale", "", "comma-separated device counts for a scale sweep (e.g. 1000,10000,100000)")
		scaleJSON = fs.String("scale-json", "", "run the scale sweep plus wheel-vs-heap scheduler benchmarks and write the JSON scaling baseline (BENCH_5.json) to this file")
		scaleDur  = fs.Duration("scale-duration", 10*time.Second, "virtual time each scale device simulates")
		metrics   = fs.Bool("metrics", false, "instrument the fleet and append a Prometheus-format metrics dump to the report")
		metOut    = fs.String("metrics-out", "", "write a JSON telemetry report (per-device counters, latency histograms) to this file")
		benchCSV  = fs.String("bench-csv", "", "measure the hub demux hot path plain vs instrumented and write the overhead CSV to this file")
		benchJSON = fs.String("bench-json", "", "measure the frame pipeline and hub demux (lock-free vs a mutex-hub replica) and write the JSON perf baseline to this file")
		reliable  = fs.Bool("reliable", false, "wrap every fleet device's RF channel in the ARQ retransmission layer (guaranteed in-order delivery)")
		loss      = fs.Float64("loss", -1, "override the fleet link loss probability (default: the model's stock loss)")
		burst     = fs.Float64("burst", 0, "per-frame probability of a burst dropping several consecutive frames")
		burstLen  = fs.Int("burst-len", 0, "frames dropped per burst (0 = model default)")
		ackLoss   = fs.Float64("ack-loss", 0, "loss probability of the reliable-mode ack back-channel")
		traceOut  = fs.String("trace-out", "", "record frame-level causal spans and write a Perfetto/Chrome trace JSON to this file (open in ui.perfetto.dev)")
		flightRec = fs.Bool("flight-recorder", false, "bounded per-device trace rings: anomalies (abandoned frames, seq gaps, SLO breaches) dump the last events to stderr")
		traceSLO  = fs.Duration("trace-slo", 0, "end-to-end latency SLO; a frame exceeding it raises a flight-recorder anomaly (0 = off)")
		opsListen = fs.String("ops-listen", "", "serve the live ops plane (/metrics, /vars, /healthz, /debug/pprof) on this address during a -fleet or scale run (e.g. 127.0.0.1:9100; port 0 picks one)")
		sloP99    = fs.Float64("slo-p99", 0, "SLO watchdog: breach when the windowed e2e latency p99 exceeds this many milliseconds (0 = off)")
		sloMinFPS = fs.Float64("slo-min-fps", 0, "SLO watchdog: breach when decoded frames per second drop below this floor (0 = off)")
		sloStall  = fs.Duration("slo-stall", 0, "SLO watchdog: breach when the run's progress clock stops advancing for this long (0 = off)")
		sloEvery  = fs.Duration("slo-interval", time.Second, "SLO watchdog evaluation interval")
		histWin   = fs.Int("history-windows", 0, "retain a rolling telemetry history of this many sampling windows (0 = default 120); served at /api/history and the /dash dashboard with -ops-listen, attached to SLO breaches as pre/post forensics")
		histEvery = fs.Duration("history-interval", time.Second, "telemetry history sampling interval")
		histOut   = fs.String("history-out", "", "write the retained telemetry history as JSON to this file when the run ends (implies history)")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
		rtTrace   = fs.String("runtime-trace", "", "write a Go runtime execution trace of the run to this file (go tool trace)")
		serveAddr = fs.String("serve", "", "run the networked hub: accept frame-ingest connections on this address (e.g. 127.0.0.1:9200; port 0 picks one) instead of simulating")
		serveFor  = fs.Duration("serve-for", 0, "with -serve: stop after this long (0 = serve until SIGINT/SIGTERM)")
		hubShards = fs.Int("hub-shards", 0, "with -serve: number of hub shards; frames route by device id modulo the shard count (default 1)")
		connect   = fs.String("connect", "", "stream the run's frames to a hubnet server at this address instead of the in-process hub (-fleet forwards each device's frames; -devices/-scale export one stream per worker; -saturate blasts load-generator connections)")
		saturate  = fs.Bool("saturate", false, "measure the ingest saturation grid (PR-8 replica vs direct vs pipelined consume) in process, or, with -connect, blast frames at a -serve process as a load generator")
		satJSON   = fs.String("saturate-json", "", "with -saturate: also write the machine-readable throughput baseline (BENCH_6.json) to this file")
		connsStr  = fs.String("conns", "", "comma-separated concurrent-connection counts for the -saturate grid (default 1,8); with -connect, the single load-generator connection count")
		satShards = fs.String("saturate-shards", "", "comma-separated shard counts for the -saturate grid (default 1,4)")
		satDur    = fs.Duration("saturate-duration", 5*time.Second, "with -saturate -connect: how long the load generator streams frames")
		ingestPL  = fs.Bool("ingest-pipeline", true, "with -serve: hand decoded frames to per-shard ring workers in batches (false = direct per-frame consume on the connection goroutine)")
		ringSlots = fs.Int("ring-slots", 0, "with -serve: per-shard ring capacity in batches (0 = default 256)")
		ringBatch = fs.Int("ring-batch", 0, "with -serve: frames per ring hand-off batch (0 = default 64)")
		ringFull  = fs.String("ring-policy", "block", "with -serve: what a full shard ring does to its producer — block (lossless backpressure) or drop (shed batches, count them)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	// Scale-flag validation: a silent zero-device run would report an empty
	// curve, so reject it loudly; an over-provisioned worker pool is legal
	// but wasteful, so warn.
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	devicesSet := set["devices"]
	if devicesSet && *devicesN < 1 {
		return fmt.Errorf("-devices must be at least 1, got %d", *devicesN)
	}
	sweep, err := parseScaleList(*scaleList)
	if err != nil {
		return err
	}
	connsList, err := parseCountList("-conns", *connsStr, []int{1, 8})
	if err != nil {
		return err
	}
	shardsList, err := parseCountList("-saturate-shards", *satShards, []int{1, 4})
	if err != nil {
		return err
	}
	for _, n := range connsList {
		if n > saturateDevices {
			return fmt.Errorf("-conns: the saturation workload carries %d devices; %d connections would leave some idle", saturateDevices, n)
		}
	}
	if devicesSet && *fleetWrk > *devicesN {
		fmt.Fprintf(stdout, "warning: -workers %d exceeds -devices %d; extra workers will idle\n", *fleetWrk, *devicesN)
	}

	scaleMode := devicesSet || len(sweep) > 0 || *scaleJSON != ""
	sloSet := *sloP99 > 0 || *sloMinFPS > 0 || *sloStall > 0
	histSet := set["history-windows"] || set["history-interval"] || *histOut != ""
	if set["history-windows"] && *histWin < 1 {
		return fmt.Errorf("-history-windows must be at least 1, got %d", *histWin)
	}
	if *histEvery <= 0 {
		return fmt.Errorf("-history-interval must be positive, got %v", *histEvery)
	}
	opsSet := *opsListen != "" || sloSet || histSet
	metricsSet := *metrics || *metOut != ""
	if scaleMode && *fleetN > 0 {
		return fmt.Errorf("-fleet cannot be combined with the scale flags (-devices/-scale/-scale-json); pick one path")
	}
	if scaleMode && (*reliable || *burst > 0 || *burstLen > 0 || *ackLoss > 0) {
		return fmt.Errorf("-reliable/-burst/-burst-len/-ack-loss shape the session fleet's link; the scale path models loss via -loss only")
	}
	if opsSet && !scaleMode && *fleetN <= 0 && *serveAddr == "" {
		return fmt.Errorf("-ops-listen, -slo-* and -history-* flags require a live run (-fleet, -devices, -scale or -serve)")
	}
	if *scaleJSON != "" && (metricsSet || opsSet) {
		return fmt.Errorf("-scale-json is the batch baseline writer; -metrics, -metrics-out, -ops-listen, -slo-* and -history-* need -devices or -scale")
	}
	if (*traceOut != "" || *flightRec || *traceSLO > 0) && *fleetN <= 0 {
		return fmt.Errorf("tracing flags (-trace-out, -flight-recorder, -trace-slo) require -fleet")
	}

	// Flag-combination validation, networked-hub and experiment-path edition:
	// every combination that would silently ignore a flag errors instead.
	simMode := *fleetN > 0 || scaleMode
	benchMode := *benchCSV != "" || *benchJSON != ""
	serveSet := *serveAddr != ""
	connectSet := *connect != ""
	switch {
	case serveSet && connectSet:
		return fmt.Errorf("-serve and -connect are mutually exclusive; run the server in one process and point a second process at it")
	case serveSet && simMode:
		return fmt.Errorf("-serve runs the ingest server only; simulate in a second process with -connect")
	case serveSet && benchMode:
		return fmt.Errorf("-bench-csv/-bench-json measure in-process baselines; they do not apply to -serve")
	case serveSet && *saturate:
		return fmt.Errorf("-saturate measures from the client side; run -serve in one process and -saturate -connect in another")
	case serveSet && (set["run"] || *csvDir != "" || *outPath != ""):
		return fmt.Errorf("-run/-csv/-o belong to a simulation run; -serve does not run one")
	case serveSet && (*reliable || set["loss"] || *burst > 0 || *burstLen > 0 || *ackLoss > 0):
		return fmt.Errorf("-reliable/-loss/-burst/-burst-len/-ack-loss shape a simulated link; they do not apply to -serve")
	case serveSet && set["workers"]:
		return fmt.Errorf("-workers bounds simulation concurrency; it does not apply to -serve")
	case serveSet && metricsSet:
		return fmt.Errorf("-metrics/-metrics-out report a simulation; scrape the server live via -ops-listen instead")
	case !serveSet && set["hub-shards"]:
		return fmt.Errorf("-hub-shards configures the -serve ingest server")
	case !serveSet && set["serve-for"]:
		return fmt.Errorf("-serve-for bounds a -serve run")
	case set["hub-shards"] && *hubShards < 1:
		return fmt.Errorf("-hub-shards must be at least 1, got %d", *hubShards)
	case !serveSet && (set["ingest-pipeline"] || set["ring-slots"] || set["ring-batch"] || set["ring-policy"]):
		return fmt.Errorf("-ingest-pipeline and -ring-* tune the -serve ingest server")
	case set["ring-slots"] && *ringSlots < 1:
		return fmt.Errorf("-ring-slots must be at least 1, got %d", *ringSlots)
	case set["ring-batch"] && *ringBatch < 1:
		return fmt.Errorf("-ring-batch must be at least 1, got %d", *ringBatch)
	case *ringFull != "block" && *ringFull != "drop":
		return fmt.Errorf("-ring-policy must be block or drop, got %q", *ringFull)
	case connectSet && !simMode && !*saturate:
		return fmt.Errorf("-connect streams a simulation's frames; combine it with -fleet, -devices, -scale or -saturate")
	case connectSet && *scaleJSON != "":
		return fmt.Errorf("-scale-json measures the in-process baseline; it cannot stream to -connect")
	case connectSet && *reliable:
		return fmt.Errorf("-reliable needs the in-process ack loop; acks cannot cross the -connect byte stream")
	}
	switch {
	case *saturate && benchMode:
		return fmt.Errorf("-saturate and -bench-csv/-bench-json are separate baseline writers; run them one at a time")
	case *saturate && simMode:
		return fmt.Errorf("-saturate runs its own ingest workload; it cannot be combined with -fleet or the scale flags")
	case *saturate && (set["run"] || *csvDir != "" || *outPath != ""):
		return fmt.Errorf("-run/-csv/-o belong to the experiment path; -saturate does not run it")
	case *saturate && metricsSet:
		return fmt.Errorf("-metrics/-metrics-out report a simulation; -saturate measures ingest throughput only")
	case !*saturate && (set["conns"] || set["saturate-shards"] || set["saturate-duration"] || *satJSON != ""):
		return fmt.Errorf("-conns/-saturate-shards/-saturate-duration/-saturate-json parameterise a -saturate run")
	case *satJSON != "" && connectSet:
		return fmt.Errorf("-saturate-json writes the in-process grid baseline; the -connect load generator cannot measure it")
	case *saturate && connectSet && set["saturate-shards"]:
		return fmt.Errorf("-saturate-shards sizes the in-process grid; the -serve process picks its own shard count")
	case *saturate && connectSet && set["conns"] && len(connsList) > 1:
		return fmt.Errorf("-conns with -connect takes a single load-generator connection count, got %d values", len(connsList))
	case *saturate && !connectSet && set["saturate-duration"]:
		return fmt.Errorf("-saturate-duration bounds the -connect load generator; the in-process grid is iteration-timed")
	case scaleMode && benchMode:
		return fmt.Errorf("-bench-csv/-bench-json measure the demux and pipeline baselines; they cannot be combined with the scale flags")
	case simMode && set["run"]:
		return fmt.Errorf("-run selects experiments; it cannot be combined with -fleet or the scale flags")
	case simMode && *csvDir != "":
		return fmt.Errorf("-csv writes the experiment path's study CSVs; it cannot be combined with -fleet or the scale flags")
	case scaleMode && *outPath != "":
		return fmt.Errorf("-o writes the experiment or fleet report; the scale path prints to stdout only")
	case set["workers"] && !simMode:
		return fmt.Errorf("-workers bounds a -fleet or scale run")
	case *burstLen > 0 && *burst <= 0:
		return fmt.Errorf("-burst-len sets the length of -burst bursts; set -burst > 0 as well")
	case *ackLoss > 0 && !*reliable:
		return fmt.Errorf("-ack-loss drops acks on the -reliable back-channel; add -reliable")
	case set["loss"] && !simMode:
		return fmt.Errorf("-loss shapes the simulated link; combine it with -fleet, -devices or -scale")
	}

	// One ops-plane parameter block serves every live-run path.
	opsFlags := opsOpts{
		listen:       *opsListen,
		p99:          *sloP99,
		minFPS:       *sloMinFPS,
		stall:        *sloStall,
		interval:     *sloEvery,
		history:      histSet,
		histWindows:  *histWin,
		histInterval: *histEvery,
		histOut:      *histOut,
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *rtTrace != "" {
		f, err := os.Create(*rtTrace)
		if err != nil {
			return fmt.Errorf("runtime-trace: %w", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("runtime-trace: %w", err)
		}
		defer trace.Stop()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "distscroll-bench: memprofile:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "distscroll-bench: memprofile:", err)
			}
		}()
	}

	if serveSet {
		shards := *hubShards
		if shards < 1 {
			shards = 1
		}
		onFull := hubnet.BlockOnFull
		if *ringFull == "drop" {
			onFull = hubnet.DropOnFull
		}
		return runServe(serveOpts{
			addr:      *serveAddr,
			shards:    shards,
			dur:       *serveFor,
			pipeline:  *ingestPL,
			ringSlots: *ringSlots,
			ringBatch: *ringBatch,
			onFull:    onFull,
			ops:       opsFlags,
		}, stdout)
	}

	if *saturate {
		if connectSet {
			conns := 2
			if set["conns"] {
				conns = connsList[0]
			}
			return runSaturateLoad(loadGenOpts{addr: *connect, conns: conns, dur: *satDur}, stdout)
		}
		return runSaturate(saturateOpts{connsList: connsList, shardsList: shardsList, jsonPath: *satJSON}, stdout)
	}

	if *benchCSV != "" {
		if err := writeBenchCSV(*benchCSV); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote demux overhead benchmarks to %s\n", *benchCSV)
		if *fleetN <= 0 && *benchJSON == "" {
			return nil
		}
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote perf baseline to %s\n", *benchJSON)
		if *fleetN <= 0 {
			return nil
		}
	}

	if *scaleJSON != "" {
		if len(sweep) == 0 {
			sweep = defaultScaleSweep
		}
		if err := writeScaleJSON(*scaleJSON, sweep, *seed, *fleetWrk, *scaleDur, *loss, stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote scaling baseline to %s\n", *scaleJSON)
		return nil
	}
	if scaleMode {
		if devicesSet {
			sweep = append([]int{*devicesN}, sweep...)
		}
		if metricsSet && len(sweep) > 1 {
			return fmt.Errorf("-metrics/-metrics-out merge one run's telemetry; use a single-point scale run (-devices N), not a %d-point sweep", len(sweep))
		}
		return runScaleSweep(scaleSweepOpts{
			sweep:      sweep,
			seed:       *seed,
			workers:    *fleetWrk,
			dur:        *scaleDur,
			loss:       *loss,
			metrics:    *metrics,
			metricsOut: *metOut,
			connect:    *connect,
			ops:        opsFlags,
		}, stdout)
	}

	if *fleetN > 0 {
		return runFleet(fleetOpts{
			devices:    *fleetN,
			workers:    *fleetWrk,
			seed:       *seed,
			outPath:    *outPath,
			metrics:    *metrics,
			metricsOut: *metOut,
			reliable:   *reliable,
			loss:       *loss,
			burst:      *burst,
			burstLen:   *burstLen,
			ackLoss:    *ackLoss,
			traceOut:   *traceOut,
			flightRec:  *flightRec,
			traceSLO:   *traceSLO,
			connect:    *connect,
			ops:        opsFlags,
		}, stdout)
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, *seed); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote trials.csv and conditions.csv to %s\n", *csvDir)
	}

	var runners []experiments.Runner
	if *runList == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			r, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: F1-F5, E1-E6, A1-A3)", id)
			}
			runners = append(runners, r)
		}
	}

	var report strings.Builder
	fmt.Fprintf(&report, "DistScroll reproduction report (seed %d)\n", *seed)
	fmt.Fprintf(&report, "%s\n\n", strings.Repeat("=", 60))
	for _, r := range runners {
		rep, err := r.Run(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		report.WriteString(rep.String())
		report.WriteString("\n")
	}

	if _, err := io.WriteString(stdout, report.String()); err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report.String()), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}

// fleetOpts parameterises a fleet invocation.
type fleetOpts struct {
	devices, workers int
	seed             uint64
	outPath          string
	metrics          bool
	metricsOut       string
	reliable         bool
	loss             float64
	burst            float64
	burstLen         int
	ackLoss          float64
	traceOut         string
	flightRec        bool
	traceSLO         time.Duration
	connect          string
	ops              opsOpts
}

// opsOpts carries the live-ops-plane flags (-ops-listen, -slo-*,
// -history-*).
type opsOpts struct {
	listen       string
	p99          float64
	minFPS       float64
	stall        time.Duration
	interval     time.Duration
	history      bool
	histWindows  int
	histInterval time.Duration
	histOut      string
}

// enabled reports whether any ops-plane feature was requested.
func (o opsOpts) enabled() bool {
	return o.listen != "" || o.p99 > 0 || o.minFPS > 0 || o.stall > 0 || o.history
}

// opsPlane bundles the running server, watchdog and history sampler of one
// invocation.
type opsPlane struct {
	srv     *ops.Server
	wd      *ops.Watchdog
	hist    *history.Store
	histOut string
}

// startOpsPlane starts the history sampler, the watchdog and (if
// requested) the HTTP server. stallClock names the series whose
// advancement proves the run is alive: sim_virtual_seconds on the scale
// path, hub_frames_decoded_total for the session fleet.
func startOpsPlane(o opsOpts, reg *telemetry.Registry, tracer *tracing.Tracer, stallClock string, stdout io.Writer) (*opsPlane, error) {
	var hist *history.Store
	if o.history {
		var err error
		hist, err = history.Start(history.Config{
			Registry: reg,
			Windows:  o.histWindows,
			Interval: o.histInterval,
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "history: sampling telemetry every %v, retaining %d windows\n",
			hist.Interval(), hist.Windows())
	}
	if hist != nil && tracer == nil && (o.p99 > 0 || o.minFPS > 0 || o.stall > 0) {
		// Breach forensics dump through a flight recorder; a run without
		// its own tracer gets a small bounded one so the pre/post table
		// still lands on stderr.
		tracer = tracing.New(tracing.Config{Bounded: true, Capacity: 64, DumpTo: os.Stderr})
	}
	wd := ops.StartWatchdog(ops.WatchdogConfig{
		Registry:        reg,
		Interval:        o.interval,
		LatencyMaxP99Ms: o.p99,
		StallGauge:      stallClock,
		StallAfter:      o.stall,
		MinRate:         minRateRules(o.minFPS),
		Tracer:          tracer,
		History:         hist,
		OnBreach: func(b ops.Breach) {
			fmt.Fprintf(os.Stderr, "slo watchdog: %s\n", b)
		},
	})
	p := &opsPlane{wd: wd, hist: hist, histOut: o.histOut}
	if o.listen != "" {
		srv, err := ops.Serve(o.listen, ops.Config{Registry: reg, Watchdog: wd, History: hist})
		if err != nil {
			wd.Stop()
			hist.Stop()
			return nil, err
		}
		p.srv = srv
		endpoints := "metrics, vars, healthz, debug/pprof"
		if hist != nil {
			endpoints += ", api/history, dash"
		}
		fmt.Fprintf(stdout, "ops plane listening on %s (%s)\n", srv.URL(), endpoints)
	}
	return p, nil
}

func minRateRules(minFPS float64) map[string]float64 {
	if minFPS <= 0 {
		return nil
	}
	return map[string]float64{telemetry.MetricHubDecoded: minFPS}
}

// close stops the watchdog before the server so /healthz never serves a
// half-stopped state, flushes the history store, and reports the verdict.
func (p *opsPlane) close(report io.Writer) {
	if p == nil {
		return
	}
	p.wd.Stop()
	if p.hist != nil {
		// One final sample so the end-of-run counters make the history,
		// then stop (which also flushes pending breach forensics).
		p.hist.Sample()
	}
	p.hist.Stop()
	p.srv.Close()
	if breaches := p.wd.Breaches(); len(breaches) > 0 {
		fmt.Fprintf(report, "slo watchdog: %d breach(es); first: %s\n", len(breaches), breaches[0])
	}
	if p.hist != nil && p.histOut != "" {
		path := p.histOut
		p.histOut = "" // close runs twice (explicit + deferred); write once
		if err := writeHistoryJSON(path, p.hist); err != nil {
			fmt.Fprintf(os.Stderr, "distscroll-bench: history-out: %v\n", err)
		} else {
			fmt.Fprintf(report, "wrote telemetry history (%d windows captured) to %s\n",
				p.hist.Captured(), path)
		}
	}
}

// writeHistoryJSON dumps the full retained history as the /api/history
// JSON document.
func writeHistoryJSON(path string, st *history.Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := st.WriteJSON(f, history.Query{}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runFleet simulates n devices concurrently against one hub and prints the
// per-device and aggregate accounting, optionally with full telemetry.
func runFleet(o fleetOpts, stdout io.Writer) error {
	cfg := fleet.Config{Devices: o.devices, Seed: o.seed, Workers: o.workers, Reliable: o.reliable}
	if o.loss >= 0 || o.burst > 0 || o.ackLoss > 0 {
		cfg.Core = core.DefaultConfig()
		if o.loss >= 0 {
			cfg.Core.Link.LossProb = o.loss
		}
		cfg.Core.Link.BurstLossProb = o.burst
		cfg.Core.Link.BurstLossLen = o.burstLen
		cfg.Core.Link.AckLossProb = o.ackLoss
	}
	var tracer *tracing.Tracer
	if o.traceOut != "" || o.flightRec || o.traceSLO > 0 {
		tcfg := tracing.Config{SLO: o.traceSLO}
		if o.flightRec || o.traceSLO > 0 {
			// Anomalies (abandoned frames, seq gaps, SLO breaches) dump
			// their trailing events to stderr.
			tcfg.DumpTo = os.Stderr
		}
		if o.flightRec {
			// Flight-recorder mode: small bounded rings so the trace
			// footprint stays cache-resident even for large fleets.
			// Without it, retain everything for a complete export.
			tcfg.Bounded = true
			tcfg.Capacity = 512
		}
		tracer = tracing.New(tcfg)
		cfg.Tracing = tracer
	}
	var reg *telemetry.Registry
	if o.metrics || o.metricsOut != "" || o.ops.enabled() {
		reg = telemetry.New()
		cfg.Metrics = reg
	}
	if o.metrics || o.metricsOut != "" {
		// Heartbeat progress on stderr while the run is in flight.
		cfg.ReportEvery = 2 * time.Second
		cfg.OnReport = func(s *telemetry.Snapshot) {
			fmt.Fprintf(os.Stderr, "fleet: %d frames decoded, %d sent\n",
				s.Counters[telemetry.MetricHubDecoded], s.Counters[telemetry.MetricRFSent])
		}
	}
	var opsSummary strings.Builder
	var plane *opsPlane
	if o.ops.enabled() {
		// The session fleet has no virtual-time gauge; decoded frames are
		// its liveness clock.
		var err error
		plane, err = startOpsPlane(o.ops, reg, tracer, telemetry.MetricHubDecoded, stdout)
		if err != nil {
			return err
		}
		// Repeated close is safe; the deferred one covers error returns.
		defer plane.close(io.Discard)
	}
	var remote *hubnet.Remote
	if o.connect != "" {
		conn, err := hubnet.Dial(o.connect)
		if err != nil {
			return fmt.Errorf("connect %s: %w", o.connect, err)
		}
		defer conn.Close()
		remote = hubnet.NewRemote(conn)
		cfg.Hub = remote
		fmt.Fprintf(stdout, "hubnet: forwarding frames to %s\n", o.connect)
	}
	r, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	results, err := r.RunAll()
	if err != nil {
		return err
	}
	if remote != nil {
		if err := remote.Err(); err != nil {
			return fmt.Errorf("hubnet stream to %s: %w", o.connect, err)
		}
	}
	if plane != nil {
		plane.close(&opsSummary)
	}

	var report strings.Builder
	fmt.Fprintf(&report, "DistScroll fleet report (%d devices, seed %d)\n", o.devices, o.seed)
	fmt.Fprintf(&report, "%s\n", strings.Repeat("=", 76))
	fmt.Fprintf(&report, "%6s %8s %10s %8s %8s %8s %6s %6s\n",
		"device", "sent", "delivered", "lost", "events", "missed", "dup", "reord")
	for _, res := range results {
		fmt.Fprintf(&report, "%6d %8d %10d %8d %8d %8d %6d %6d\n",
			res.Device, res.Link.Sent, res.Link.Delivered, res.Link.Lost,
			res.Host.Events, res.Host.MissedSeq, res.Host.Duplicates, res.Host.Reordered)
	}
	tot := r.Total(results)
	fmt.Fprintf(&report, "%s\n", strings.Repeat("-", 76))
	fmt.Fprintf(&report, "frames sent %d, delivered %d, lost %d, corrupted %d, events %d, seq gaps %d\n",
		tot.Sent, tot.Delivered, tot.Lost, tot.Corrupted, tot.Events, tot.MissedSeq)
	if o.reliable {
		fmt.Fprintf(&report, "reliable: retransmits %d, timeouts %d, queue drops %d, acks sent %d (lost %d), stale %d, resyncs %d\n",
			tot.Retransmits, tot.Timeouts, tot.QueueDrops, tot.AcksSent, tot.AcksLost, tot.Stale, tot.Resyncs)
	}
	fmt.Fprintf(&report, "virtual time %.1f s, decode throughput %.1f frames/s\n",
		tot.VirtualSeconds, tot.FramesPerSecond)
	if remote != nil {
		fmt.Fprintf(&report, "frames forwarded to %s; host-side accounting (events, seq gaps) lives in the serving process\n", o.connect)
	}
	report.WriteString(opsSummary.String())

	var snap *telemetry.Snapshot
	if reg != nil {
		snap = reg.Snapshot()
	}
	if o.metrics {
		fmt.Fprintf(&report, "\nTelemetry (Prometheus exposition)\n%s\n", strings.Repeat("-", 76))
		if lat, ok := snap.Histogram(telemetry.MetricHubE2ELatency); ok {
			fmt.Fprintf(&report, "# e2e latency: p50=%.2fms p90=%.2fms p99=%.2fms over %d frames\n",
				lat.P50, lat.P90, lat.P99, lat.Count)
		}
		if err := snap.WritePrometheus(&report); err != nil {
			return err
		}
	}
	if o.metricsOut != "" {
		if err := writeTelemetryJSON(o.metricsOut, o.seed, results, tot, snap); err != nil {
			return err
		}
		fmt.Fprintf(&report, "wrote telemetry report to %s\n", o.metricsOut)
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		meta := map[string]any{
			"tool":    "distscroll-bench",
			"devices": o.devices,
			"seed":    o.seed,
			"decoded": tot.Decoded,
		}
		if err := tracer.WritePerfetto(f, meta); err != nil {
			f.Close()
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Fprintf(&report, "wrote Perfetto trace to %s (open in ui.perfetto.dev)\n", o.traceOut)
	}
	if tracer != nil && tracer.Dumps() > 0 {
		fmt.Fprintf(&report, "flight recorder: %d anomaly dump(s) written to stderr\n", tracer.Dumps())
	}

	if _, err := io.WriteString(stdout, report.String()); err != nil {
		return err
	}
	if o.outPath != "" {
		if err := os.WriteFile(o.outPath, []byte(report.String()), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}

// deviceCounters is one device's frame accounting in the JSON report.
type deviceCounters struct {
	Device     uint32 `json:"device"`
	Sent       uint64 `json:"sent"`
	Delivered  uint64 `json:"delivered"`
	Lost       uint64 `json:"lost"`
	Corrupted  uint64 `json:"corrupted"`
	Events     uint64 `json:"events"`
	MissedSeq  uint64 `json:"missedSeq"`
	Duplicates uint64 `json:"duplicates"`
	Reordered  uint64 `json:"reordered"`
	// Reliable-delivery counters, zero without -reliable.
	Retransmits uint64 `json:"retransmits,omitempty"`
	AcksSent    uint64 `json:"acksSent,omitempty"`
	AcksLost    uint64 `json:"acksLost,omitempty"`
}

// telemetryReport is the -metrics-out document: per-device counters, fleet
// totals and the full metrics snapshot with latency histograms.
type telemetryReport struct {
	Devices   int                 `json:"devices"`
	Seed      uint64              `json:"seed"`
	PerDevice []deviceCounters    `json:"perDevice"`
	Totals    fleet.Totals        `json:"totals"`
	Metrics   *telemetry.Snapshot `json:"metrics"`
}

func writeTelemetryJSON(path string, seed uint64, results []fleet.Result, tot fleet.Totals, snap *telemetry.Snapshot) error {
	rep := telemetryReport{
		Devices: len(results),
		Seed:    seed,
		Totals:  tot,
		Metrics: snap,
	}
	for _, res := range results {
		rep.PerDevice = append(rep.PerDevice, deviceCounters{
			Device:      res.Device,
			Sent:        res.Link.Sent,
			Delivered:   res.Link.Delivered,
			Lost:        res.Link.Lost,
			Corrupted:   res.Link.Corrupted,
			Events:      res.Host.Events,
			MissedSeq:   res.Host.MissedSeq,
			Duplicates:  res.Host.Duplicates,
			Reordered:   res.Host.Reordered,
			Retransmits: res.ARQ.Retransmits,
			AcksSent:    res.Acks.AcksSent,
			AcksLost:    res.Acks.AcksLost,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry report: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("telemetry report: %w", err)
	}
	return nil
}
