package main

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hcilab/distscroll/internal/hubnet"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// This file implements -serve: the networked hub. The process listens for
// frame-ingest connections, demultiplexes the stream across hub shards,
// and (with -ops-listen) exposes the per-shard hub_* and net_* series
// live. A second distscroll-bench process points -connect at it.

// serveOpts parameterises a -serve invocation.
type serveOpts struct {
	addr      string
	shards    int
	dur       time.Duration
	pipeline  bool
	ringSlots int
	ringBatch int
	onFull    hubnet.FullPolicy
	ops       opsOpts
}

// runServe serves frame ingest until the -serve-for deadline or an
// interrupt, then prints the gateway's accounting.
func runServe(o serveOpts, stdout io.Writer) error {
	reg := telemetry.New()
	srv, err := hubnet.Serve(o.addr, hubnet.Config{
		Shards:      o.shards,
		Registry:    reg,
		Pipeline:    o.pipeline,
		RingSlots:   o.ringSlots,
		BatchFrames: o.ringBatch,
		OnFull:      o.onFull,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(stdout, "hubnet: serving frame ingest on %s (%d shard(s))\n",
		srv.Addr(), srv.Gateway().Shards())
	if o.pipeline {
		policy := "block"
		if o.onFull == hubnet.DropOnFull {
			policy = "drop"
		}
		slots, batch := o.ringSlots, o.ringBatch
		if slots <= 0 {
			slots = hubnet.DefaultRingSlots
		}
		if batch <= 0 {
			batch = hubnet.DefaultBatchFrames
		}
		fmt.Fprintf(stdout, "hubnet: ingest pipeline on (%d ring slot(s) x %d-frame batches per shard, %s on full)\n",
			slots, batch, policy)
	}

	var opsSummary strings.Builder
	var plane *opsPlane
	if o.ops.enabled() {
		// Ingested frames are the server's liveness clock: the stall rule
		// falls back to the counter when no gauge carries the name.
		plane, err = startOpsPlane(o.ops, reg, nil, telemetry.MetricNetFrames, stdout)
		if err != nil {
			return err
		}
		defer plane.close(io.Discard)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	var deadline <-chan time.Time
	if o.dur > 0 {
		t := time.NewTimer(o.dur)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case <-sig:
		fmt.Fprintln(stdout, "hubnet: interrupted, draining")
	case <-deadline:
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if plane != nil {
		plane.close(&opsSummary)
	}

	gw := srv.Gateway()
	ns := gw.NetStats()
	hs := gw.Stats()
	fmt.Fprintf(stdout, "net: %d conn(s) (%d still open), %d bytes in, %d frames (%d bad, %d short reads, %d resync bytes)\n",
		ns.ConnsTotal, ns.ConnsOpen, ns.BytesRead, ns.Frames, ns.BadFrames, ns.ShortReads, ns.Resyncs)
	if gw.Pipelined() {
		fmt.Fprintf(stdout, "pipeline: %d ring batch(es), %d stall(s), %d dropped\n",
			ns.RingBatches, ns.RingStalls, ns.RingDropped)
	}
	fmt.Fprintf(stdout, "hub: %d device(s), %d frames decoded, %d events, %d seq gaps\n",
		hs.Devices, hs.Decoded, hs.Events, hs.MissedSeq)
	for i, st := range gw.ShardStats() {
		fmt.Fprintf(stdout, "  shard %d: %d device(s), %d decoded\n", i, st.Devices, st.Decoded)
	}
	_, err = io.WriteString(stdout, opsSummary.String())
	return err
}
