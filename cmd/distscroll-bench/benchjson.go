package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/tracing"
)

// This file implements -bench-json: the machine-readable perf baseline
// (BENCH_<pr>.json) behind the zero-allocation frame pipeline. To keep the
// before/after comparison honest across machines, the "before" numbers are
// not copied out of an old report — the tool carries a faithful replica of
// the pre-refactor mutex hub (global lock around the session map, per-
// session lock around the counters) and measures it live, on the same
// hardware, in the same process, against the same frames as the current
// lock-free hub.

// mutexHub replicates the original Hub demux path: every Handle takes one
// global mutex to route the frame, then the session's own mutex to account
// it. Under 64 concurrent devices all of them serialise here.
type mutexHub struct {
	mu       sync.Mutex
	sessions map[uint32]*mutexSession
}

type mutexSession struct {
	mu                         sync.Mutex
	decoded, events            uint64
	missedSeq, dups, reordered uint64
	lastSeq                    uint16
	haveSeq                    bool
}

func newMutexHub() *mutexHub {
	return &mutexHub{sessions: make(map[uint32]*mutexSession)}
}

func (h *mutexHub) session(id uint32) *mutexSession {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[id]
	if !ok {
		s = &mutexSession{}
		h.sessions[id] = s
	}
	return s
}

func (h *mutexHub) handle(payload []byte, at time.Duration) {
	var m rf.Message
	if err := m.UnmarshalBinary(payload); err != nil {
		return
	}
	h.mu.Lock()
	s, ok := h.sessions[m.Device]
	if !ok {
		s = &mutexSession{}
		h.sessions[m.Device] = s
	}
	h.mu.Unlock()
	s.mu.Lock()
	s.decoded++
	if s.haveSeq {
		switch gap := m.Seq - s.lastSeq; {
		case gap == 0:
			s.dups++
		case gap == 1:
		case gap < 0x8000:
			s.missedSeq += uint64(gap - 1)
		default:
			s.reordered++
		}
	}
	s.lastSeq = m.Seq
	s.haveSeq = true
	s.events++
	s.mu.Unlock()
}

// benchFrames builds one marshalled v1 frame per device.
func benchFrames(devices int) [][]byte {
	frames := make([][]byte, devices)
	for i := range frames {
		m := rf.Message{
			Device: uint32(i + 1), Kind: rf.MsgScroll,
			Seq: 1, AtMillis: 40, Index: int16(i % 10),
		}
		payload, err := m.MarshalBinary()
		if err != nil {
			panic(err)
		}
		frames[i] = payload
	}
	return frames
}

// parallelism returns the SetParallelism factor that yields one goroutine
// per simulated device regardless of GOMAXPROCS.
func parallelism(devices int) int {
	gm := runtime.GOMAXPROCS(0)
	if gm >= devices {
		return 1
	}
	return (devices + gm - 1) / gm
}

const benchDevices = 64

func benchMutexHubSerial() testing.BenchmarkResult {
	frames := benchFrames(benchDevices)
	return testing.Benchmark(func(b *testing.B) {
		hub := newMutexHub()
		for i := range frames {
			hub.session(uint32(i + 1))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hub.handle(frames[i%benchDevices], time.Duration(i)*time.Millisecond)
		}
	})
}

func benchMutexHubParallel() testing.BenchmarkResult {
	frames := benchFrames(benchDevices)
	return testing.Benchmark(func(b *testing.B) {
		hub := newMutexHub()
		for i := range frames {
			hub.session(uint32(i + 1))
		}
		b.SetParallelism(parallelism(benchDevices))
		var next atomic.Uint32
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			id := next.Add(1)
			frame := frames[(id-1)%benchDevices]
			at := time.Duration(id) * time.Millisecond
			for pb.Next() {
				hub.handle(frame, at)
			}
		})
	})
}

func benchHubSerial() testing.BenchmarkResult {
	frames := benchFrames(benchDevices)
	return testing.Benchmark(func(b *testing.B) {
		hub := core.NewHub(false)
		for i := range frames {
			hub.Session(uint32(i + 1))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hub.Handle(frames[i%benchDevices], time.Duration(i)*time.Millisecond)
		}
	})
}

func benchHubParallel() testing.BenchmarkResult {
	frames := benchFrames(benchDevices)
	return testing.Benchmark(func(b *testing.B) {
		hub := core.NewHub(false)
		for i := range frames {
			hub.Session(uint32(i + 1))
		}
		b.SetParallelism(parallelism(benchDevices))
		var next atomic.Uint32
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			id := next.Add(1)
			frame := frames[(id-1)%benchDevices]
			at := time.Duration(id) * time.Millisecond
			for pb.Next() {
				hub.Handle(frame, at)
			}
		})
	})
}

// benchHubSerialTraced is benchHubSerial with a per-device flight recorder
// attached: every frame additionally records one hub.demux span event into
// a bounded ring. Small rings keep the trace footprint cache-resident (see
// DESIGN.md §10); the budget is ≤5% over the plain serial demux.
func benchHubSerialTraced() testing.BenchmarkResult {
	frames := benchFrames(benchDevices)
	return testing.Benchmark(func(b *testing.B) {
		hub := core.NewHub(false)
		tracer := tracing.New(tracing.Config{Capacity: 128, Bounded: true})
		for i := range frames {
			id := uint32(i + 1)
			hub.Session(id).AttachTracer(tracer.NewRecorder("bench", id))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hub.Handle(frames[i%benchDevices], time.Duration(i)*time.Millisecond)
		}
	})
}

func benchFrameRoundTrip() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		msg := rf.Message{Device: 9, Kind: rf.MsgScroll, Seq: 7, AtMillis: 1234, Index: 3}
		dec := rf.NewDecoder()
		payload := make([]byte, 0, 64)
		frame := make([]byte, 0, 64)
		sink := func(p []byte) {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			msg.Seq = uint16(i)
			payload = msg.AppendBinary(payload[:0])
			var err error
			frame, err = rf.AppendEncode(frame[:0], payload)
			if err != nil {
				b.Fatal(err)
			}
			dec.FeedFunc(frame, sink)
		}
	})
}

// benchEntry is one benchmark's record in the JSON baseline.
type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

func toEntry(name string, r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchBaseline is the BENCH_<pr>.json document.
type benchBaseline struct {
	PR         int          `json:"pr"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Devices    int          `json:"devices"`
	Before     []benchEntry `json:"before"` // live mutex-hub replica
	After      []benchEntry `json:"after"`  // current lock-free pipeline
	// SpeedupSerial/SpeedupParallel are mutex-replica ns/op divided by
	// lock-free ns/op on the same machine and workload.
	SpeedupSerial   float64 `json:"speedupSerial"`
	SpeedupParallel float64 `json:"speedupParallel"`
	// TracedOverhead is traced-demux ns/op divided by plain ns/op, same
	// machine and workload; the design budget is ≤ 1.05.
	TracedOverhead float64 `json:"tracedOverhead"`
}

// writeBenchJSON measures the demux and frame pipeline old vs new and
// writes the machine-readable baseline.
func writeBenchJSON(path string) error {
	oldSerial := benchMutexHubSerial()
	oldParallel := benchMutexHubParallel()
	newSerial := benchHubSerial()
	newParallel := benchHubParallel()
	newTraced := benchHubSerialTraced()
	roundTrip := benchFrameRoundTrip()

	doc := benchBaseline{
		PR:         4,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Devices:    benchDevices,
		Before: []benchEntry{
			toEntry("MutexHubDemux", oldSerial),
			toEntry("MutexHubDemuxParallel", oldParallel),
		},
		After: []benchEntry{
			toEntry("HubDemux", newSerial),
			toEntry("HubDemuxParallel", newParallel),
			toEntry("HubDemuxTraced", newTraced),
			toEntry("FrameRoundTrip", roundTrip),
		},
	}
	if ns := doc.After[0].NsPerOp; ns > 0 {
		doc.SpeedupSerial = doc.Before[0].NsPerOp / ns
		doc.TracedOverhead = doc.After[2].NsPerOp / ns
	}
	if ns := doc.After[1].NsPerOp; ns > 0 {
		doc.SpeedupParallel = doc.Before[1].NsPerOp / ns
	}

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	return nil
}
