package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report_seed1.txt from current output")

// TestGoldenReportSeed1 pins the full seed-1 experiment report against the
// repo's report_seed1.txt. The report is the paper-reproduction artifact —
// every figure and table — so any behavioural drift in the simulation
// shows up here as a diff. Refresh intentionally with:
//
//	go test ./cmd/distscroll-bench -run TestGoldenReportSeed1 -update
func TestGoldenReportSeed1(t *testing.T) {
	golden := filepath.Join("..", "..", "report_seed1.txt")

	var out bytes.Buffer
	if err := run([]string{"-seed", "1"}, &out); err != nil {
		t.Fatal(err)
	}

	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, out.Len())
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		got, exp := out.Bytes(), want
		// Point at the first divergent line so the failure is actionable
		// without diffing 400 lines by hand.
		line, gl, wl := firstDiffLine(got, exp)
		t.Fatalf("seed-1 report drifted from report_seed1.txt at line %d:\n  golden: %q\n  got:    %q\n"+
			"intentional change? refresh with: go test ./cmd/distscroll-bench -run TestGoldenReportSeed1 -update",
			line, wl, gl)
	}
}

// TestGoldenHelpOutput pins the -h flag listing against testdata/help.txt,
// so every new flag (e.g. the -devices/-scale/-scale-json scale harness) is
// a deliberate, reviewed addition to the CLI surface. Refresh with:
//
//	go test ./cmd/distscroll-bench -run TestGoldenHelpOutput -update
func TestGoldenHelpOutput(t *testing.T) {
	golden := filepath.Join("testdata", "help.txt")

	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("-h errored: %v", err)
	}
	for _, flagName := range []string{"-devices", "-scale", "-scale-json", "-scale-duration",
		"-saturate", "-saturate-json", "-conns", "-ingest-pipeline", "-ring-slots", "-ring-batch", "-ring-policy"} {
		if !bytes.Contains(out.Bytes(), []byte(flagName)) {
			t.Fatalf("help output missing %s:\n%s", flagName, out.String())
		}
	}

	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, out.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		line, gl, wl := firstDiffLine(out.Bytes(), want)
		t.Fatalf("help output drifted from testdata/help.txt at line %d:\n  golden: %q\n  got:    %q\n"+
			"intentional change? refresh with: go test ./cmd/distscroll-bench -run TestGoldenHelpOutput -update",
			line, wl, gl)
	}
}

// firstDiffLine returns the 1-based line number of the first differing line
// plus the two lines themselves.
func firstDiffLine(got, want []byte) (int, string, string) {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(g[i], w[i]) {
			return i + 1, string(g[i]), string(w[i])
		}
	}
	return n + 1, "", ""
}
