package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestSaturateCRCMatchesTable pins the replica's local bitwise CRC
// against the shipping table-driven codec: if the copies ever diverge the
// replica would reject every frame and the "before" column would measure
// an idle loop.
func TestSaturateCRCMatchesTable(t *testing.T) {
	if got := saturateCRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("check vector: got %#04x, want 0x29B1", got)
	}
	streams, err := saturateStreams(1)
	if err != nil {
		t.Fatal(err)
	}
	in := &pr8IngestProbe{}
	in.feedAll(t, streams[0])
	if in.frames != saturateDevices*saturateRounds {
		t.Fatalf("replica decoded %d frames, want %d", in.frames, saturateDevices*saturateRounds)
	}
}

// pr8IngestProbe counts the frames the replica scanner accepts without a
// gateway behind it.
type pr8IngestProbe struct{ frames int }

func (p *pr8IngestProbe) feedAll(t *testing.T, stream []byte) {
	t.Helper()
	// Reuse the replica's framing logic by scanning the stream the same
	// way: every frame must pass the bitwise CRC.
	pos := 0
	for pos+5 <= len(stream) {
		if stream[pos] != 0xAA || stream[pos+1] != 0x55 {
			t.Fatalf("stream lost sync at %d", pos)
		}
		n := int(stream[pos+2])
		body := stream[pos+2 : pos+3+n]
		want := uint16(stream[pos+3+n])<<8 | uint16(stream[pos+4+n])
		if saturateCRC16(body) != want {
			t.Fatalf("bitwise CRC rejects frame at %d", pos)
		}
		p.frames++
		pos += 5 + n
	}
	if pos != len(stream) {
		t.Fatalf("stream has %d trailing bytes", len(stream)-pos)
	}
}

// TestSaturateGridJSON runs the smallest in-process grid end to end
// through run() and checks the BENCH_6.json shape: all three modes
// present, allocation-free steady state, and the modern paths faster
// than the PR-8 replica.
func TestSaturateGridJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real wall-clock benchmarks")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_6.json")
	var out bytes.Buffer
	if err := run([]string{"-saturate", "-conns", "2", "-saturate-shards", "2", "-saturate-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc saturateBaseline
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("baseline not JSON: %v\n%.300s", err, data)
	}
	if doc.PR != 6 || len(doc.Grid) != len(saturateModes) {
		t.Fatalf("baseline shape: %+v", doc)
	}
	for i, e := range doc.Grid {
		if e.Mode != saturateModes[i] || e.Conns != 2 || e.Shards != 2 {
			t.Fatalf("grid cell %d: %+v", i, e)
		}
		if e.AllocsPerOp != 0 {
			t.Fatalf("%s ingest allocates %d/op at steady state", e.Mode, e.AllocsPerOp)
		}
		if e.NsPerFrame <= 0 || e.FramesPerSecond <= 0 {
			t.Fatalf("grid cell %d unmeasured: %+v", i, e)
		}
	}
	if doc.SpeedupPipeline < 1.5 {
		t.Fatalf("pipeline speedup %.2fx vs the PR-8 replica, want >= 1.5x", doc.SpeedupPipeline)
	}
}

// TestSaturateLoadAgainstServe is the load generator's end-to-end test:
// a pipelined -serve process in one goroutine, -saturate -connect in
// another, and the server's post-run summary must account for exactly the
// frames the generator reports, with ring batches proving the pipeline
// carried them.
func TestSaturateLoadAgainstServe(t *testing.T) {
	srvOut := &syncBuf{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-serve", "127.0.0.1:0", "-hub-shards", "2", "-serve-for", "3s"}, srvOut)
	}()
	addrRe := regexp.MustCompile(`serving frame ingest on (\S+) \(2 shard\(s\)\)`)
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		if m := addrRe.FindStringSubmatch(srvOut.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("server never announced its address:\n%s", srvOut.String())
	}
	if !strings.Contains(srvOut.String(), "ingest pipeline on") {
		t.Fatalf("-serve default did not enable the pipeline:\n%s", srvOut.String())
	}

	var genOut bytes.Buffer
	if err := run([]string{"-saturate", "-connect", addr, "-conns", "2", "-saturate-duration", "300ms"}, &genOut); err != nil {
		t.Fatal(err)
	}
	sentRe := regexp.MustCompile(`streamed (\d+) frames`)
	m := sentRe.FindStringSubmatch(genOut.String())
	if m == nil {
		t.Fatalf("load generator reported nothing:\n%s", genOut.String())
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := srvOut.String()
	if !strings.Contains(got, m[1]+" frames (0 bad") {
		t.Fatalf("server summary does not account for the %s streamed frames:\n%s", m[1], got)
	}
	if !regexp.MustCompile(`pipeline: [1-9]\d* ring batch\(es\)`).MatchString(got) {
		t.Fatalf("no ring batches in the pipeline summary:\n%s", got)
	}
}
