package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/hubnet"
	"github.com/hcilab/distscroll/internal/rf"
)

// This file implements -saturate: the ingest-tier throughput baseline
// (BENCH_6.json) behind the shard-ring pipeline. Like -bench-json, the
// "before" is not a number copied out of an old report — the tool carries
// a faithful replica of the PR-8 ingest hot path (bit-at-a-time CRC,
// per-frame edge-counter atomics, per-frame direct consume on the
// connection goroutine) and measures it live against the current direct
// and pipelined paths, same machine, same process, same byte streams.
//
// With -connect the same flag turns into a network load generator: each
// connection blasts freshly encoded frames at a -serve process for
// -saturate-duration, which is what the CI saturate-smoke job uses to put
// real bytes through the pipeline while scraping net_ring_* live.

// The grid workload mirrors BenchmarkHubnetSaturate: 64 devices split
// across the connections in disjoint ranges, 8 frames per device per op.
const (
	saturateDevices = 64
	saturateRounds  = 8
)

// saturateCRC16 is a local copy of the bit-at-a-time CRC-16/CCITT-FALSE
// every pre-PR-9 revision of internal/rf shipped — the definitional
// reference the table-driven codec replaced. The replica must pay this
// cost per byte or the "before" would be flattered.
func saturateCRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// pr8Ingest replicates one connection's PR-8 ingest state: an inline
// frame scanner with the bitwise CRC, one edge-counter atomic add per
// frame, and a synchronous per-frame Consume into a direct gateway. Not
// safe for concurrent use — one stream, one feeder, like the original.
type pr8Ingest struct {
	gw     *hubnet.Gateway
	frames *atomic.Uint64
	bad    *atomic.Uint64
	buf    []byte
}

func (in *pr8Ingest) feed(data []byte) {
	in.buf = append(in.buf, data...)
	pos := 0
	for {
		start := -1
		for i := pos; i+1 < len(in.buf); i++ {
			if in.buf[i] == 0xAA && in.buf[i+1] == 0x55 {
				start = i
				break
			}
		}
		if start < 0 {
			break
		}
		pos = start
		if len(in.buf)-pos < 3 {
			break
		}
		n := int(in.buf[pos+2])
		total := 3 + n + 2
		if len(in.buf)-pos < total {
			break
		}
		body := in.buf[pos+2 : pos+3+n]
		wantCRC := binary.BigEndian.Uint16(in.buf[pos+3+n : pos+total])
		if saturateCRC16(body) != wantCRC {
			pos += 2
			continue
		}
		in.frames.Add(1) // per-frame edge accounting, the PR-8 shape
		var m rf.Message
		if !m.Decode(in.buf[pos+3 : pos+3+n]) {
			in.bad.Add(1)
		} else {
			in.gw.Consume(m, 0)
		}
		pos += total
	}
	if pos > 0 {
		n := copy(in.buf, in.buf[pos:])
		in.buf = in.buf[:n]
	}
}

// saturateStreams builds one clean wire stream per connection: disjoint
// contiguous device ranges, one frame per device per round, seq counting
// up — the exact workload BenchmarkHubnetSaturate feeds.
func saturateStreams(conns int) ([][]byte, error) {
	streams := make([][]byte, conns)
	payload := make([]byte, 0, 64)
	for c := range streams {
		lo, hi := c*saturateDevices/conns+1, (c+1)*saturateDevices/conns
		for seq := 0; seq < saturateRounds; seq++ {
			for dev := lo; dev <= hi; dev++ {
				msg := rf.Message{Device: uint32(dev), Kind: rf.MsgScroll, Seq: uint16(seq), AtMillis: uint32(seq) * 40}
				payload = msg.AppendBinary(payload[:0])
				var err error
				streams[c], err = rf.AppendEncode(streams[c], payload)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return streams, nil
}

// saturateEntry is one grid cell: a mode at a connection and shard count.
type saturateEntry struct {
	Mode            string  `json:"mode"` // pr8-replica | direct | pipeline
	Conns           int     `json:"conns"`
	Shards          int     `json:"shards"`
	Iterations      int     `json:"iterations"`
	NsPerFrame      float64 `json:"nsPerFrame"`
	FramesPerSecond float64 `json:"framesPerSecond"`
	AllocsPerOp     int64   `json:"allocsPerOp"`
}

// saturateCell measures one cell live: `conns` long-lived feeder
// goroutines (each its own ingest state, its own device range — what
// serveConn does minus the socket) driven by channel tokens so the timed
// loop measures ingest, not goroutine churn. One op pushes every stream
// through once and drains the rings.
func saturateCell(mode string, conns, shards int) (saturateEntry, error) {
	streams, err := saturateStreams(conns)
	if err != nil {
		return saturateEntry{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		gw := hubnet.NewGateway(hubnet.Config{Shards: shards, Pipeline: mode == "pipeline"})
		defer gw.Close()
		var edgeFrames, edgeBad atomic.Uint64
		feeds := make([]func([]byte), conns)
		for c := range feeds {
			if mode == "pr8-replica" {
				in := &pr8Ingest{gw: gw, frames: &edgeFrames, bad: &edgeBad}
				feeds[c] = in.feed
			} else {
				feeds[c] = gw.NewIngest(nil).Feed
			}
		}
		starts := make([]chan struct{}, conns)
		fed := make(chan struct{}, conns)
		for c := range feeds {
			feeds[c](streams[c]) // warm-up: sessions + scratch buffers
			starts[c] = make(chan struct{})
			go func(c int) {
				for range starts[c] {
					feeds[c](streams[c])
					fed <- struct{}{}
				}
			}(c)
		}
		defer func() {
			for _, ch := range starts {
				close(ch)
			}
		}()
		gw.Drain()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ch := range starts {
				ch <- struct{}{}
			}
			for range feeds {
				<-fed
			}
			gw.Drain()
		}
	})
	frames := uint64(saturateDevices*saturateRounds) * uint64(r.N)
	nsPerFrame := float64(r.T.Nanoseconds()) / float64(frames)
	return saturateEntry{
		Mode:            mode,
		Conns:           conns,
		Shards:          shards,
		Iterations:      r.N,
		NsPerFrame:      nsPerFrame,
		FramesPerSecond: 1e9 / nsPerFrame,
		AllocsPerOp:     r.AllocsPerOp(),
	}, nil
}

// saturateBaseline is the BENCH_6.json document: the full mode × conns ×
// shards grid plus the headline speedups at the grid's deepest cell.
type saturateBaseline struct {
	PR         int             `json:"pr"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Devices    int             `json:"devices"`
	Rounds     int             `json:"rounds"`
	Grid       []saturateEntry `json:"grid"`
	// SpeedupDirect/SpeedupPipeline divide the PR-8 replica's ns/frame by
	// the direct and pipelined paths' at the highest conns × shards cell,
	// same machine and workload.
	SpeedupDirect   float64 `json:"speedupDirect"`
	SpeedupPipeline float64 `json:"speedupPipeline"`
}

// saturateModes orders the grid's ingest paths oldest first.
var saturateModes = []string{"pr8-replica", "direct", "pipeline"}

// parseCountList parses a "-conns 1,4,8"-style flag into positive counts,
// or returns the default when the flag was not given.
func parseCountList(name, s string, def []int) ([]int, error) {
	if s == "" {
		return def, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("%s: %q is not a count", name, part)
		}
		if n < 1 {
			return nil, fmt.Errorf("%s: counts must be at least 1, got %d", name, n)
		}
		out = append(out, n)
	}
	return out, nil
}

// saturateOpts parameterises the in-process -saturate grid.
type saturateOpts struct {
	connsList  []int
	shardsList []int
	jsonPath   string
}

// runSaturate measures the grid and prints the frames/s table; with
// -saturate-json it also writes the machine-readable baseline.
func runSaturate(o saturateOpts, stdout io.Writer) error {
	fmt.Fprintf(stdout, "DistScroll ingest saturation grid (%d devices × %d rounds per op)\n",
		saturateDevices, saturateRounds)
	fmt.Fprintf(stdout, "%7s %6s %12s %12s %14s %10s\n",
		"shards", "conns", "mode", "ns/frame", "frames/s", "allocs/op")
	doc := saturateBaseline{
		PR:         6,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Devices:    saturateDevices,
		Rounds:     saturateRounds,
	}
	for _, shards := range o.shardsList {
		for _, conns := range o.connsList {
			for _, mode := range saturateModes {
				e, err := saturateCell(mode, conns, shards)
				if err != nil {
					return err
				}
				doc.Grid = append(doc.Grid, e)
				fmt.Fprintf(stdout, "%7d %6d %12s %12.1f %14.0f %10d\n",
					e.Shards, e.Conns, e.Mode, e.NsPerFrame, e.FramesPerSecond, e.AllocsPerOp)
			}
		}
	}
	// Headline speedups: the deepest cell is the last conns × shards pair,
	// whose three modes sit at the tail of the grid.
	tail := doc.Grid[len(doc.Grid)-len(saturateModes):]
	if ns := tail[1].NsPerFrame; ns > 0 {
		doc.SpeedupDirect = tail[0].NsPerFrame / ns
	}
	if ns := tail[2].NsPerFrame; ns > 0 {
		doc.SpeedupPipeline = tail[0].NsPerFrame / ns
	}
	fmt.Fprintf(stdout, "speedup vs PR-8 replica at %d conn(s) × %d shard(s): direct %.2fx, pipeline %.2fx\n",
		tail[0].Conns, tail[0].Shards, doc.SpeedupDirect, doc.SpeedupPipeline)

	if o.jsonPath == "" {
		return nil
	}
	f, err := os.Create(o.jsonPath)
	if err != nil {
		return fmt.Errorf("saturate json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("saturate json: %w", err)
	}
	fmt.Fprintf(stdout, "wrote saturation baseline to %s\n", o.jsonPath)
	return nil
}

// loadGenOpts parameterises -saturate -connect: the network load
// generator the CI saturate-smoke job points at a -serve process.
type loadGenOpts struct {
	addr  string
	conns int
	dur   time.Duration
}

// loadGenRoundsPerFlush bounds the deadline-check cadence: each
// connection encodes this many rounds per SendEncoded, so one flush
// carries roundsPerFlush × itsDevices frames (~30 KB at 16 devices).
const loadGenRoundsPerFlush = 64

// runSaturateLoad blasts frames at a hubnet server from `conns`
// connections over disjoint device ranges for the configured duration.
// Frames are re-encoded per lap with monotonically increasing sequence
// numbers, so the server sees clean in-order streams, not replays.
func runSaturateLoad(o loadGenOpts, stdout io.Writer) error {
	fmt.Fprintf(stdout, "saturate: %d connection(s) -> %s for %s\n", o.conns, o.addr, o.dur)
	var wg sync.WaitGroup
	var sent atomic.Uint64
	errs := make([]error, o.conns)
	start := time.Now()
	deadline := start.Add(o.dur)
	for c := 0; c < o.conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := hubnet.Dial(o.addr)
			if err != nil {
				errs[c] = err
				return
			}
			defer conn.Close()
			lo, hi := c*saturateDevices/o.conns+1, (c+1)*saturateDevices/o.conns
			buf := make([]byte, 0, 64<<10)
			payload := make([]byte, 0, 64)
			seq := 0
			for time.Now().Before(deadline) {
				buf = buf[:0]
				n := 0
				for r := 0; r < loadGenRoundsPerFlush; r++ {
					for dev := lo; dev <= hi; dev++ {
						msg := rf.Message{Device: uint32(dev), Kind: rf.MsgScroll, Seq: uint16(seq), AtMillis: uint32(seq) * 40}
						payload = msg.AppendBinary(payload[:0])
						buf, err = rf.AppendEncode(buf, payload)
						if err != nil {
							errs[c] = err
							return
						}
						n++
					}
					seq++
				}
				if err := conn.SendEncoded(buf, n); err != nil {
					errs[c] = err
					return
				}
				sent.Add(uint64(n))
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("saturate load: %w", err)
		}
	}
	elapsed := time.Since(start).Seconds()
	fmt.Fprintf(stdout, "saturate: streamed %d frames in %.1fs (%.0f frames/s)\n",
		sent.Load(), elapsed, float64(sent.Load())/elapsed)
	return nil
}
