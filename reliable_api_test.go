package distscroll

import (
	"testing"
	"time"
)

func TestWithLinkFaultsValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"burst prob", WithLinkFaults(1.5, 0, 0)},
		{"ack loss", WithLinkFaults(0, 0, -0.2)},
		{"burst len", WithLinkFaults(0.1, -1, 0)},
	} {
		if _, err := New(WithEntries(4), tc.opt); err == nil {
			t.Errorf("%s: invalid option accepted", tc.name)
		}
	}
}

// TestFleetReliableDelivery runs the public reliable path end to end: a
// fleet on a lossy, bursty channel with ARQ must report zero missed frames
// while the reliability counters show the repair actually happened.
func TestFleetReliableDelivery(t *testing.T) {
	f, err := NewFleet(8,
		WithEntries(12),
		WithSeed(5),
		WithRadioLink(0.05, 4*time.Millisecond),
		WithLinkFaults(0.01, 4, 0.05),
		WithReliableDelivery(),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissedFrames != 0 {
		t.Fatalf("missed %d frames under reliable delivery", rep.MissedFrames)
	}
	if rep.Lost == 0 {
		t.Fatal("lossy fleet lost nothing — reliability untested")
	}
	if rep.Retransmits == 0 || rep.AcksSent == 0 {
		t.Fatalf("reliability counters flat: retransmits %d, acks %d", rep.Retransmits, rep.AcksSent)
	}
	var devRetransmits uint64
	for _, d := range rep.Devices {
		devRetransmits += d.Retransmits
	}
	if devRetransmits != rep.Retransmits {
		t.Fatalf("per-device retransmits %d != aggregate %d", devRetransmits, rep.Retransmits)
	}
}

// TestFleetUnreliableStillLossy pins the default: without
// WithReliableDelivery the same channel shows gaps.
func TestFleetUnreliableStillLossy(t *testing.T) {
	f, err := NewFleet(8,
		WithEntries(12),
		WithSeed(5),
		WithRadioLink(0.05, 4*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissedFrames == 0 {
		t.Fatal("5%-loss fleet reported no missed frames")
	}
	if rep.Retransmits != 0 {
		t.Fatalf("retransmits %d without reliable delivery", rep.Retransmits)
	}
}
