package distscroll_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	distscroll "github.com/hcilab/distscroll"
)

// get fetches an ops endpoint and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestFleetOpsServer(t *testing.T) {
	f, err := distscroll.NewFleet(4,
		distscroll.WithEntries(10),
		distscroll.WithSeed(7),
		distscroll.WithOpsServer("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.CloseOps()

	url := f.OpsURL()
	if !strings.HasPrefix(url, "http://127.0.0.1:") {
		t.Fatalf("OpsURL = %q", url)
	}

	// The plane is scrapeable before the run: registry exists (implied by
	// WithOpsServer), counters are simply zero.
	if code, _ := get(t, url+"/healthz"); code != http.StatusOK {
		t.Fatalf("pre-run /healthz = %d", code)
	}

	if _, err := f.RunAll(); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"fw_cycles_total", "rf_frames_sent_total", "hub_frames_decoded_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%.2000s", want, body)
		}
	}

	code, body = get(t, url+"/vars")
	if code != http.StatusOK {
		t.Fatalf("/vars = %d", code)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/vars not JSON: %v\n%.500s", err, body)
	}
	if snap.Counters["fw_cycles_total"] == 0 {
		t.Fatalf("no cycles after run: %v", snap.Counters)
	}

	if !f.Healthy() {
		t.Fatalf("fleet without SLO rules reports unhealthy")
	}
	if err := f.CloseOps(); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseOps(); err != nil {
		t.Fatalf("second CloseOps: %v", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still listening after CloseOps")
	}
}

func TestFleetSLOWatchdogHealthyRun(t *testing.T) {
	f, err := distscroll.NewFleet(4,
		distscroll.WithEntries(10),
		distscroll.WithSeed(3),
		distscroll.WithOpsServer("127.0.0.1:0"),
		distscroll.WithSLOWatchdog(distscroll.SLO{
			LatencyP99: time.Hour,
			StallAfter: time.Hour,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.CloseOps()
	if _, err := f.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !f.Healthy() {
		t.Fatalf("healthy run breached: %v", f.SLOBreaches())
	}
	if code, _ := get(t, f.OpsURL()+"/healthz"); code != http.StatusOK {
		t.Fatalf("post-run /healthz = %d", code)
	}
	if got := f.SLOBreaches(); len(got) != 0 {
		t.Fatalf("breaches on healthy run: %v", got)
	}
}

func TestOpsOptionValidation(t *testing.T) {
	// Device constructor rejects the fleet-only ops options.
	if _, err := distscroll.New(distscroll.WithEntries(10), distscroll.WithOpsServer("127.0.0.1:0")); err == nil {
		t.Fatal("New accepted WithOpsServer")
	}
	if _, err := distscroll.New(distscroll.WithEntries(10), distscroll.WithSLOWatchdog(distscroll.SLO{StallAfter: time.Second})); err == nil {
		t.Fatal("New accepted WithSLOWatchdog")
	}
	// Empty address and empty rule set are configuration errors.
	if _, err := distscroll.NewFleet(2, distscroll.WithEntries(10), distscroll.WithOpsServer("")); err == nil {
		t.Fatal("empty ops address accepted")
	}
	if _, err := distscroll.NewFleet(2, distscroll.WithEntries(10), distscroll.WithSLOWatchdog(distscroll.SLO{})); err == nil {
		t.Fatal("ruleless SLO accepted")
	}
}

func TestFleetWatchdogWithoutServer(t *testing.T) {
	// WithSLOWatchdog alone still records breaches via Healthy/SLOBreaches.
	f, err := distscroll.NewFleet(2,
		distscroll.WithEntries(10),
		distscroll.WithSeed(1),
		distscroll.WithSLOWatchdog(distscroll.SLO{StallAfter: time.Hour}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if f.OpsURL() != "" {
		t.Fatalf("OpsURL without server = %q", f.OpsURL())
	}
	if _, err := f.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !f.Healthy() {
		t.Fatalf("healthy run breached: %v", f.SLOBreaches())
	}
	if err := f.CloseOps(); err != nil {
		t.Fatal(err)
	}
}
