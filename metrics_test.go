package distscroll

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestWithMetricsSingleDevice(t *testing.T) {
	m := NewMetrics()
	dev, err := New(WithEntries(10), WithSeed(3), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	dev.Close()
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}

	s := m.Snapshot()
	if s.Counters["fw_cycles_total"] == 0 {
		t.Fatal("no firmware cycles recorded")
	}
	sent, delivered, _ := dev.LinkStats()
	if got := s.Counters["rf_frames_sent_total"]; got != sent {
		t.Fatalf("rf sent %d != link stats %d", got, sent)
	}
	lat, ok := s.Histogram("hub_e2e_latency_ms")
	if !ok || lat.Count != delivered {
		t.Fatalf("latency count %d, want %d delivered", lat.Count, delivered)
	}
	if lat.P50 <= 0 {
		t.Fatalf("p50 %g, want > 0", lat.P50)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["fw_cycles_total"] != s.Counters["fw_cycles_total"] {
		t.Fatal("JSON round trip lost counters")
	}

	buf.Reset()
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hub_e2e_latency_ms_bucket") {
		t.Fatalf("exposition missing latency buckets:\n%s", buf.String())
	}
}

func TestWithMetricsFleetReport(t *testing.T) {
	m := NewMetrics()
	f, err := NewFleet(4, WithEntries(8), WithSeed(11), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil {
		t.Fatal("fleet report has no telemetry snapshot")
	}
	if got := rep.Telemetry.Counters["rf_frames_sent_total"]; got != rep.Frames {
		t.Fatalf("telemetry sent %d != report frames %d", got, rep.Frames)
	}
	lat, ok := rep.Telemetry.Histogram("hub_e2e_latency_ms")
	if !ok || lat.Count != rep.Delivered {
		t.Fatalf("latency count %d, want %d delivered", lat.Count, rep.Delivered)
	}
	// Every device contributed a per-device series.
	for id := uint32(1); id <= 4; id++ {
		if _, ok := rep.Telemetry.Histogram(`hub_e2e_latency_ms{device="` + string(rune('0'+id)) + `"}`); !ok {
			t.Fatalf("no latency series for device %d", id)
		}
	}

	// A fleet without metrics reports none.
	f2, err := NewFleet(2, WithEntries(8))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := f2.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Telemetry != nil {
		t.Fatal("uninstrumented fleet produced telemetry")
	}
}

func TestWithMetricsRejectsNil(t *testing.T) {
	if _, err := New(WithEntries(5), WithMetrics(nil)); err == nil {
		t.Fatal("nil metrics accepted")
	}
}
