package distscroll

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// runFleetPair runs the same seeded fleet workload twice — once in-process
// and once through the loopback networked hub — capturing the report and
// the replayed handler event order for each.
func runFleetPair(t *testing.T, shards int, opts ...Option) (direct, looped FleetReport, devents, levents []string) {
	t.Helper()
	run := func(extra ...Option) (FleetReport, []string) {
		f, err := NewFleet(16, append(append([]Option(nil), opts...), extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		var seen []string
		f.OnScroll(func(device int, e Event) {
			seen = append(seen, fmt.Sprintf("scroll/%d/%d/%d", device, e.Index, e.At/time.Microsecond))
		})
		f.OnSelect(func(device int, e Event) {
			seen = append(seen, fmt.Sprintf("select/%d/%d", device, e.Index))
		})
		rep, err := f.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		return rep, seen
	}
	direct, devents = run()
	looped, levents = run(WithLoopbackHub(shards))
	return direct, looped, devents, levents
}

// TestFleetNetworkedIdentical pins the public-API transparency guarantee of
// WithLoopbackHub: encoding every frame onto the wire format, stream-decoding
// it and routing it across hub shards must not change a single byte of the
// run — same report, same handler replay, same ordering.
func TestFleetNetworkedIdentical(t *testing.T) {
	direct, looped, devents, levents := runFleetPair(t, 4,
		WithEntries(12), WithSeed(12345))
	if !reflect.DeepEqual(direct, looped) {
		t.Fatalf("loopback hub changed the run:\ndirect %+v\nlooped %+v", direct, looped)
	}
	if !reflect.DeepEqual(devents, levents) {
		t.Fatalf("loopback hub changed the handler replay:\ndirect %v\nlooped %v", devents, levents)
	}
	if len(devents) == 0 {
		t.Fatal("workload replayed no events; the comparison is vacuous")
	}
	if direct.Events == 0 || direct.Frames == 0 {
		t.Fatalf("empty run: %+v", direct)
	}
}

// TestFleetNetworkedIdenticalUnderFaults repeats the transparency check with
// a lossy channel and reliable delivery, where retransmissions, acks and
// skip notices all cross the (virtual) network too.
func TestFleetNetworkedIdenticalUnderFaults(t *testing.T) {
	direct, looped, devents, levents := runFleetPair(t, 3,
		WithEntries(10), WithSeed(777),
		WithRadioLink(0.15, 2*time.Millisecond),
		WithLinkFaults(0.05, 3, 0.1),
		WithReliableDelivery())
	if !reflect.DeepEqual(direct, looped) {
		t.Fatalf("loopback hub changed the lossy run:\ndirect %+v\nlooped %+v", direct, looped)
	}
	if !reflect.DeepEqual(devents, levents) {
		t.Fatalf("loopback hub changed the lossy handler replay")
	}
	if direct.Retransmits == 0 {
		t.Fatal("lossy reliable run retransmitted nothing; the test exercised nothing")
	}
}
