package participant

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/sim"
)

func newPair(t *testing.T, seed uint64, root *menu.Node, pcfg Config) (*core.Device, *Participant) {
	t.Helper()
	dcfg := core.DefaultConfig()
	dcfg.Seed = seed
	dev, err := core.NewDevice(dcfg, root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Stop)
	p, err := New(pcfg, dev, sim.NewRand(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Detach)
	return dev, p
}

func TestSelectEntryCompletes(t *testing.T) {
	dev, p := newPair(t, 1, menu.FlatMenu(10), DefaultConfig())
	res, err := p.SelectEntry(6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("trial time %v", res.Time)
	}
	if res.Discovery <= 0 {
		t.Fatal("first trial should include a discovery sweep")
	}
	// The selection was confirmed by the device (possibly with errors).
	if dev.Menu.Selections() != 1 {
		t.Fatalf("selections = %d", dev.Menu.Selections())
	}
	if p.Trials() != 1 {
		t.Fatalf("trials = %d", p.Trials())
	}
}

func TestSecondTrialHasNoDiscovery(t *testing.T) {
	_, p := newPair(t, 2, menu.FlatMenu(10), DefaultConfig())
	if _, err := p.SelectEntry(3); err != nil {
		t.Fatal(err)
	}
	res, err := p.SelectEntry(8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Discovery != 0 {
		t.Fatalf("second trial discovery %v", res.Discovery)
	}
}

func TestTargetOutOfRange(t *testing.T) {
	_, p := newPair(t, 3, menu.FlatMenu(5), DefaultConfig())
	if _, err := p.SelectEntry(9); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestLearningReducesEndpointScale(t *testing.T) {
	_, p := newPair(t, 4, menu.FlatMenu(10), DefaultConfig())
	before := p.EndpointScale()
	for i := 0; i < 8; i++ {
		if _, err := p.SelectEntry(i % 10); err != nil {
			t.Fatal(err)
		}
	}
	after := p.EndpointScale()
	if after >= before {
		t.Fatalf("endpoint scale did not fall: %.3f -> %.3f", before, after)
	}
	if after < p.cfg.LearningFloor {
		t.Fatalf("scale %f below floor", after)
	}
}

func TestLearningReducesErrors(t *testing.T) {
	// Aggregate over several participants: early trials err more often
	// than late trials — the paper's "nearly errorless" after learning.
	var earlyErr, lateErr, earlyN, lateN int
	for seed := uint64(0); seed < 8; seed++ {
		cfg := DefaultConfig()
		cfg.DiscoverySweep = false
		_, p := newPair(t, 100+seed, menu.FlatMenu(12), cfg)
		rng := sim.NewRand(seed)
		for trial := 0; trial < 14; trial++ {
			res, err := p.SelectEntry(rng.Intn(12))
			if err != nil {
				t.Fatal(err)
			}
			if trial < 4 {
				earlyN++
				if res.Errored() {
					earlyErr++
				}
			} else if trial >= 10 {
				lateN++
				if res.Errored() {
					lateErr++
				}
			}
		}
	}
	earlyRate := float64(earlyErr) / float64(earlyN)
	lateRate := float64(lateErr) / float64(lateN)
	if lateRate >= earlyRate {
		t.Fatalf("late error rate %.2f should be below early %.2f", lateRate, earlyRate)
	}
	if lateRate > 0.45 {
		t.Fatalf("practised users should be nearly errorless, got %.2f", lateRate)
	}
}

func TestNavigateToDescends(t *testing.T) {
	dev, p := newPair(t, 5, menu.PhoneMenu(), DefaultConfig())
	// Settings (3) -> Tones (0) -> Ringing tone (0).
	results, err := p.NavigateTo([]int{3, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results: %d", len(results))
	}
	// After the final leaf selection we remain in Tones.
	if dev.Menu.Level().Title != "Tones" {
		t.Fatalf("level %q", dev.Menu.Level().Title)
	}
	if dev.Menu.Selections() != 1 {
		t.Fatalf("selections = %d", dev.Menu.Selections())
	}
}

func TestGlovedParticipantStillWorks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Glove = hand.WinterGlove()
	cfg.DiscoverySweep = false
	_, p := newPair(t, 6, menu.FlatMenu(8), cfg)
	ok := 0
	for i := 0; i < 6; i++ {
		res, err := p.SelectEntry((i * 3) % 8)
		if err != nil {
			t.Fatal(err)
		}
		if !res.WrongSelection {
			ok++
		}
	}
	// Gloves cost corrections, not task failure: most trials still land.
	if ok < 4 {
		t.Fatalf("gloved participant succeeded only %d/6 trials", ok)
	}
}

func TestDetachStopsDrivingDevice(t *testing.T) {
	dev, p := newPair(t, 7, menu.FlatMenu(10), DefaultConfig())
	if _, err := p.SelectEntry(5); err != nil {
		t.Fatal(err)
	}
	p.Detach()
	dev.SetDistance(28)
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// The hand no longer overwrites the distance.
	if dev.Distance() < 27 {
		t.Fatalf("distance %v still driven after detach", dev.Distance())
	}
}

func TestHandAccessor(t *testing.T) {
	_, p := newPair(t, 8, menu.FlatMenu(5), DefaultConfig())
	h := p.Hand()
	if h == nil {
		t.Fatal("nil hand")
	}
	if h.Glove().Name != "bare" {
		t.Fatalf("glove %q", h.Glove().Name)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), nil, sim.NewRand(1)); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestTrialResultErrored(t *testing.T) {
	if (TrialResult{}).Errored() {
		t.Fatal("clean trial marked errored")
	}
	if !(TrialResult{Corrections: 1}).Errored() {
		t.Fatal("correction not counted as error")
	}
	if !(TrialResult{WrongSelection: true}).Errored() {
		t.Fatal("wrong selection not counted as error")
	}
}
