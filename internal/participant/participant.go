// Package participant simulates a study participant operating the full
// DistScroll device: perceive the display, plan a movement, execute it with
// the hand model, verify, correct, and press the select button. It turns
// the paper's qualitative initial user study (Section 6) into repeatable
// quantitative trials.
package participant

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/sim"
)

// Config shapes a participant.
type Config struct {
	Profile hand.Profile
	Glove   hand.Glove
	// ReactionTime is the perceive-and-plan latency before each movement.
	ReactionTime time.Duration
	// VerifyTime is the dwell needed to read the display after arriving.
	VerifyTime time.Duration
	// LearningTau is the trial constant of the endpoint-noise decay:
	// scale = floor + (1-floor)·exp(-trials/tau). The paper observed that
	// "shortly after knowing the relation between menu entry selection and
	// distance, all users were able to nearly errorless use the device".
	LearningTau float64
	// LearningFloor is the asymptotic endpoint scale for a practised user.
	LearningFloor float64
	// MaxCorrections bounds corrective submovements per trial.
	MaxCorrections int
	// DiscoverySweep, when set, prepends a first-trial exploration sweep
	// across the range ("the manner of operation was promptly discovered").
	DiscoverySweep bool
}

// DefaultConfig is an average novice participant.
func DefaultConfig() Config {
	return Config{
		Profile:        hand.DefaultProfile(),
		Glove:          hand.BareHand(),
		ReactionTime:   300 * time.Millisecond,
		VerifyTime:     250 * time.Millisecond,
		LearningTau:    4,
		LearningFloor:  0.35,
		MaxCorrections: 6,
		DiscoverySweep: true,
	}
}

// TrialResult records one selection trial.
type TrialResult struct {
	Target      int
	Time        time.Duration
	Corrections int
	// WrongSelection is true when the select button fired on a different
	// entry than the target.
	WrongSelection bool
	// Discovery is the exploration overhead included in Time (first trial
	// only).
	Discovery time.Duration
}

// Errored reports whether the trial had any error (wrong selection or at
// least one correction).
func (r TrialResult) Errored() bool { return r.WrongSelection || r.Corrections > 0 }

// Participant operates a device.
type Participant struct {
	cfg    Config
	dev    *core.Device
	hand   *hand.Hand
	rng    *sim.Rand
	trials int

	updateCancel func()
}

// ErrNoProgress is returned when a trial exhausts its correction budget
// without reaching the target.
var ErrNoProgress = errors.New("participant: correction budget exhausted")

// New attaches a participant to a device. The participant takes over the
// device's distance input: every 10 ms of virtual time the hand position is
// written to the board.
func New(cfg Config, dev *core.Device, rng *sim.Rand) (*Participant, error) {
	if dev == nil {
		return nil, errors.New("participant: device is required")
	}
	if cfg.LearningTau <= 0 {
		cfg.LearningTau = DefaultConfig().LearningTau
	}
	if cfg.LearningFloor <= 0 || cfg.LearningFloor > 1 {
		cfg.LearningFloor = DefaultConfig().LearningFloor
	}
	if cfg.MaxCorrections <= 0 {
		cfg.MaxCorrections = DefaultConfig().MaxCorrections
	}
	var handRng *sim.Rand
	if rng != nil {
		handRng = rng.Split()
	}
	p := &Participant{
		cfg:  cfg,
		dev:  dev,
		hand: hand.New(cfg.Profile, cfg.Glove, dev.Distance(), handRng),
		rng:  rng,
	}
	p.updateCancel = dev.Scheduler.Every(10*time.Millisecond, func(at time.Duration) {
		dev.SetDistance(p.hand.Position(at))
	})
	p.applyLearning()
	return p, nil
}

// Detach stops driving the device distance.
func (p *Participant) Detach() {
	if p.updateCancel != nil {
		p.updateCancel()
		p.updateCancel = nil
	}
}

// Hand exposes the hand model (scenario scripting).
func (p *Participant) Hand() *hand.Hand { return p.hand }

// Trials returns the number of completed trials.
func (p *Participant) Trials() int { return p.trials }

// EndpointScale returns the current learning-adjusted endpoint noise scale.
func (p *Participant) EndpointScale() float64 {
	return p.cfg.LearningFloor + (1-p.cfg.LearningFloor)*math.Exp(-float64(p.trials)/p.cfg.LearningTau)
}

func (p *Participant) applyLearning() {
	p.hand.SetEndpointScale(p.EndpointScale())
}

// run advances the device simulation to the given absolute virtual time.
func (p *Participant) run(until time.Duration) error {
	d := until - p.dev.Clock.Now()
	if d <= 0 {
		return nil
	}
	return p.dev.Run(d)
}

// wait advances the simulation by d.
func (p *Participant) wait(d time.Duration) error {
	return p.run(p.dev.Clock.Now() + d)
}

// SelectEntry performs one full selection trial: scroll the cursor to the
// target entry of the current level and press select. It returns the trial
// result even on a wrong selection; only simulation faults return an error.
func (p *Participant) SelectEntry(target int) (TrialResult, error) {
	res := TrialResult{Target: target}
	start := p.dev.Clock.Now()

	if target < 0 || target >= p.dev.Menu.Len() {
		return res, fmt.Errorf("participant: target %d out of range [0,%d)", target, p.dev.Menu.Len())
	}

	// First contact: sweep the device through the range to discover the
	// distance→selection relation.
	if p.cfg.DiscoverySweep && p.trials == 0 {
		dStart := p.dev.Clock.Now()
		if err := p.discover(); err != nil {
			return res, err
		}
		res.Discovery = p.dev.Clock.Now() - dStart
	}

	// Perceive and plan.
	if err := p.wait(p.cfg.ReactionTime); err != nil {
		return res, err
	}

	targetDist, err := p.dev.DistanceForEntry(target)
	if err != nil {
		return res, fmt.Errorf("participant: %w", err)
	}
	w := p.dev.Mapper().EntryWidthCm()

	// Primary movement.
	done, _ := p.hand.MoveTo(targetDist, w, p.dev.Clock.Now())
	if err := p.run(done); err != nil {
		return res, err
	}
	if err := p.wait(p.cfg.VerifyTime); err != nil {
		return res, err
	}

	// Verify-and-correct loop.
	for p.dev.Cursor() != target {
		if res.Corrections >= p.cfg.MaxCorrections {
			// Give up and select whatever is under the cursor — the
			// realistic failure mode the study counts as an error.
			break
		}
		res.Corrections++
		done, _ := p.hand.Nudge(targetDist, w, p.dev.Clock.Now())
		if err := p.run(done); err != nil {
			return res, err
		}
		if err := p.wait(p.cfg.VerifyTime); err != nil {
			return res, err
		}
	}

	// Select with the thumb.
	selectedAt := p.dev.Cursor()
	p.dev.PressSelect()
	if err := p.wait(150 * time.Millisecond); err != nil {
		return res, err
	}
	res.WrongSelection = selectedAt != target

	res.Time = p.dev.Clock.Now() - start
	p.trials++
	p.applyLearning()
	return res, nil
}

// discover sweeps the hand from far to near and back, as first-time users
// did when handed the device.
func (p *Participant) discover() error {
	cfgRange := [2]float64{28, 6}
	for _, target := range cfgRange {
		done, _ := p.hand.MoveTo(target, 4, p.dev.Clock.Now())
		if err := p.run(done); err != nil {
			return err
		}
		if err := p.wait(300 * time.Millisecond); err != nil {
			return err
		}
	}
	return nil
}

// ReturnToRoot presses the back button until the menu is at the root
// level again (bounded by the tree depth).
func (p *Participant) ReturnToRoot() error {
	for guard := 0; p.dev.Menu.Depth() > 0 && guard < 16; guard++ {
		p.dev.PressBack()
		if err := p.wait(400 * time.Millisecond); err != nil {
			return err
		}
	}
	if p.dev.Menu.Depth() != 0 {
		return fmt.Errorf("participant: stuck at depth %d", p.dev.Menu.Depth())
	}
	return nil
}

// NavigateTo descends a path of entry indices from the current level,
// selecting one entry per level (entering submenus along the way). It
// returns the per-level trial results.
func (p *Participant) NavigateTo(path []int) ([]TrialResult, error) {
	results := make([]TrialResult, 0, len(path))
	for depth, idx := range path {
		r, err := p.SelectEntry(idx)
		if err != nil {
			return results, fmt.Errorf("participant: level %d: %w", depth, err)
		}
		results = append(results, r)
		// Allow the firmware to process the level change.
		if err := p.wait(100 * time.Millisecond); err != nil {
			return results, err
		}
	}
	return results, nil
}
