package display

import (
	"errors"
	"strings"
	"testing"
)

func TestSetLineAndRender(t *testing.T) {
	d := New()
	if err := d.SetLine(0, "> Messages"); err != nil {
		t.Fatal(err)
	}
	if err := d.SetLine(1, "  Contacts"); err != nil {
		t.Fatal(err)
	}
	out := d.Render()
	if !strings.Contains(out, "> Messages") || !strings.Contains(out, "  Contacts") {
		t.Fatalf("render:\n%s", out)
	}
	if d.Line(0) != "> Messages" {
		t.Fatalf("Line(0) = %q", d.Line(0))
	}
}

func TestSetLineTruncatesToPanelWidth(t *testing.T) {
	d := New()
	long := strings.Repeat("x", TextCols+10)
	if err := d.SetLine(2, long); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Line(2)); got != TextCols {
		t.Fatalf("line length = %d, want %d", got, TextCols)
	}
}

func TestSetLineBounds(t *testing.T) {
	d := New()
	if err := d.SetLine(-1, "x"); !errors.Is(err, ErrBounds) {
		t.Fatalf("row -1: %v", err)
	}
	if err := d.SetLine(TextLines, "x"); !errors.Is(err, ErrBounds) {
		t.Fatalf("row %d: %v", TextLines, err)
	}
	if d.Line(99) != "" {
		t.Fatal("out-of-range Line should be empty")
	}
}

func TestRasterisationLightsPixels(t *testing.T) {
	d := New()
	if d.LitPixels() != 0 {
		t.Fatal("fresh panel should be dark")
	}
	if err := d.SetLine(0, "AB"); err != nil {
		t.Fatal(err)
	}
	lit := d.LitPixels()
	if lit == 0 {
		t.Fatal("text did not light pixels")
	}
	// Spaces light nothing extra.
	if err := d.SetLine(1, "   "); err != nil {
		t.Fatal(err)
	}
	if d.LitPixels() != lit {
		t.Fatal("spaces lit pixels")
	}
	// Overwriting with blank clears the band.
	if err := d.SetLine(0, ""); err != nil {
		t.Fatal(err)
	}
	if d.LitPixels() != 0 {
		t.Fatal("clearing a line left pixels lit")
	}
}

func TestClear(t *testing.T) {
	d := New()
	if err := d.SetLine(0, "hello"); err != nil {
		t.Fatal(err)
	}
	d.Clear()
	if d.LitPixels() != 0 || d.Line(0) != "" {
		t.Fatal("Clear left state behind")
	}
}

func TestI2CProtocol(t *testing.T) {
	d := New()
	// Set a line through the wire protocol.
	cmd := append([]byte{CmdSetLine, 1}, "Inbox"...)
	if err := d.WriteBytes(cmd); err != nil {
		t.Fatal(err)
	}
	if d.Line(1) != "Inbox" {
		t.Fatalf("Line(1) = %q", d.Line(1))
	}
	// Contrast.
	if err := d.WriteBytes([]byte{CmdContrast, 50}); err != nil {
		t.Fatal(err)
	}
	if d.Contrast() != 50 {
		t.Fatalf("contrast = %d", d.Contrast())
	}
	// Invert.
	if err := d.WriteBytes([]byte{CmdInvert, 1}); err != nil {
		t.Fatal(err)
	}
	if !d.Inverted() {
		t.Fatal("invert failed")
	}
	// Pixel.
	if err := d.WriteBytes([]byte{CmdSetPixel, 10, 10, 1}); err != nil {
		t.Fatal(err)
	}
	if !d.Pixel(10, 10) {
		t.Fatal("pixel not set")
	}
	// Clear.
	if err := d.WriteBytes([]byte{CmdClear}); err != nil {
		t.Fatal(err)
	}
	if d.Line(1) != "" {
		t.Fatal("clear over wire failed")
	}
}

func TestI2CProtocolErrors(t *testing.T) {
	d := New()
	if err := d.WriteBytes(nil); !errors.Is(err, ErrShortCommand) {
		t.Fatalf("empty write: %v", err)
	}
	if err := d.WriteBytes([]byte{0xEE}); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("bad opcode: %v", err)
	}
	if err := d.WriteBytes([]byte{CmdSetLine}); !errors.Is(err, ErrShortCommand) {
		t.Fatalf("short set-line: %v", err)
	}
	if err := d.WriteBytes([]byte{CmdSetPixel, 200, 0, 1}); !errors.Is(err, ErrBounds) {
		t.Fatalf("pixel out of bounds: %v", err)
	}
	if _, err := d.ReadBytes(1); err == nil {
		t.Fatal("read without register select should fail")
	}
}

func TestStatusRead(t *testing.T) {
	d := New()
	d.SetContrast(40)
	if err := d.WriteBytes([]byte{CmdStatus}); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBytes(4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 40 || got[2] != TextLines || got[3] != TextCols {
		t.Fatalf("status = %v", got)
	}
}

func TestContrastClamp(t *testing.T) {
	d := New()
	d.SetContrast(200)
	if d.Contrast() != 63 {
		t.Fatalf("contrast = %d, want clamped 63", d.Contrast())
	}
}

func TestFramesCounter(t *testing.T) {
	d := New()
	before := d.Frames()
	if err := d.WriteBytes([]byte{CmdClear}); err != nil {
		t.Fatal(err)
	}
	if d.Frames() != before+1 {
		t.Fatal("frame counter did not advance")
	}
}

func TestPixelBounds(t *testing.T) {
	d := New()
	if err := d.SetPixel(WidthPx, 0, true); !errors.Is(err, ErrBounds) {
		t.Fatalf("x out of bounds: %v", err)
	}
	if d.Pixel(-1, -1) {
		t.Fatal("out-of-range pixel read true")
	}
}

func TestRenderShape(t *testing.T) {
	d := New()
	out := d.Render()
	lines := strings.Split(out, "\n")
	if len(lines) != TextLines+2 {
		t.Fatalf("render has %d lines, want %d", len(lines), TextLines+2)
	}
	for _, l := range lines[1 : TextLines+1] {
		if len(l) != TextCols+2 {
			t.Fatalf("row width %d, want %d: %q", len(l), TextCols+2, l)
		}
	}
}
