// Package display models the Barton BT96040 chip-on-glass LCD used twice in
// the DistScroll prototype (paper Section 4.4): 96×40 pixels, five lines of
// text in text mode, driven over the I2C bus, with contrast adjusted by a
// potentiometer.
package display

import (
	"errors"
	"fmt"
	"strings"
)

// Panel geometry.
const (
	// WidthPx and HeightPx are the pixel dimensions of the panel.
	WidthPx  = 96
	HeightPx = 40
	// TextLines is the number of text rows in text mode (paper: "5 lines
	// in text mode").
	TextLines = 5
	// TextCols is the number of characters per row with the 6×8 font.
	TextCols = WidthPx / 6
	// GlyphW and GlyphH are the font cell dimensions.
	GlyphW = 6
	GlyphH = 8
)

// I2C command opcodes understood by the controller.
const (
	CmdClear    byte = 0x01 // clear the framebuffer
	CmdSetLine  byte = 0x02 // CmdSetLine, row, text... : write a text row
	CmdContrast byte = 0x03 // CmdContrast, level      : set contrast 0..63
	CmdInvert   byte = 0x04 // CmdInvert, 0|1          : invert the panel
	CmdSetPixel byte = 0x05 // CmdSetPixel, x, y, 0|1  : set one pixel
	CmdStatus   byte = 0x06 // select status for the next read
)

// Command errors.
var (
	// ErrBadCommand is returned for an unknown opcode.
	ErrBadCommand = errors.New("display: unknown command")
	// ErrShortCommand is returned when a command is missing operands.
	ErrShortCommand = errors.New("display: short command")
	// ErrBounds is returned for out-of-range coordinates.
	ErrBounds = errors.New("display: out of bounds")
)

// Display is one BT96040 panel. It implements i2c.Slave.
type Display struct {
	pixels   [HeightPx][WidthPx]bool
	lines    [TextLines]string
	contrast byte
	inverted bool
	frames   uint64 // completed update transactions
	readSel  byte
}

// New returns a cleared panel at mid contrast.
func New() *Display {
	return &Display{contrast: 32}
}

// WriteBytes implements the I2C slave write protocol.
func (d *Display) WriteBytes(data []byte) error {
	if len(data) == 0 {
		return ErrShortCommand
	}
	op, rest := data[0], data[1:]
	switch op {
	case CmdClear:
		d.Clear()
	case CmdSetLine:
		if len(rest) < 1 {
			return fmt.Errorf("%w: set-line needs a row", ErrShortCommand)
		}
		return d.SetLine(int(rest[0]), string(rest[1:]))
	case CmdContrast:
		if len(rest) < 1 {
			return fmt.Errorf("%w: contrast needs a level", ErrShortCommand)
		}
		d.SetContrast(rest[0])
	case CmdInvert:
		if len(rest) < 1 {
			return fmt.Errorf("%w: invert needs a flag", ErrShortCommand)
		}
		d.inverted = rest[0] != 0
	case CmdSetPixel:
		if len(rest) < 3 {
			return fmt.Errorf("%w: set-pixel needs x,y,v", ErrShortCommand)
		}
		return d.SetPixel(int(rest[0]), int(rest[1]), rest[2] != 0)
	case CmdStatus:
		d.readSel = CmdStatus
	default:
		return fmt.Errorf("%w: %#x", ErrBadCommand, op)
	}
	d.frames++
	return nil
}

// ReadBytes implements the I2C slave read protocol. After a CmdStatus write
// it returns [contrast, inverted, lines, cols].
func (d *Display) ReadBytes(n int) ([]byte, error) {
	if d.readSel != CmdStatus {
		return nil, fmt.Errorf("display: no read register selected")
	}
	status := []byte{d.contrast, boolByte(d.inverted), TextLines, TextCols}
	if n > len(status) {
		n = len(status)
	}
	return status[:n], nil
}

// Clear blanks the framebuffer and all text lines.
func (d *Display) Clear() {
	d.pixels = [HeightPx][WidthPx]bool{}
	d.lines = [TextLines]string{}
}

// SetLine writes a text row (truncated to the panel width) and rasterises
// it into the framebuffer with a 6×8 block font.
func (d *Display) SetLine(row int, text string) error {
	if row < 0 || row >= TextLines {
		return fmt.Errorf("%w: row %d", ErrBounds, row)
	}
	if len(text) > TextCols {
		text = text[:TextCols]
	}
	d.lines[row] = text
	d.rasterizeLine(row)
	return nil
}

// Line returns the text of a row, or "" when out of range.
func (d *Display) Line(row int) string {
	if row < 0 || row >= TextLines {
		return ""
	}
	return d.lines[row]
}

// Lines returns a copy of all text rows.
func (d *Display) Lines() []string {
	out := make([]string, TextLines)
	copy(out, d.lines[:])
	return out
}

// SetContrast sets the contrast level (clamped to 0..63). On the hardware
// this is the potentiometer next to the add-on board connector.
func (d *Display) SetContrast(level byte) {
	if level > 63 {
		level = 63
	}
	d.contrast = level
}

// Contrast returns the contrast level.
func (d *Display) Contrast() byte { return d.contrast }

// Inverted reports whether the panel is inverted.
func (d *Display) Inverted() bool { return d.inverted }

// Frames reports the number of completed update transactions; tests use it
// to assert that the firmware only redraws on change.
func (d *Display) Frames() uint64 { return d.frames }

// SetPixel sets one framebuffer pixel.
func (d *Display) SetPixel(x, y int, on bool) error {
	if x < 0 || x >= WidthPx || y < 0 || y >= HeightPx {
		return fmt.Errorf("%w: (%d,%d)", ErrBounds, x, y)
	}
	d.pixels[y][x] = on
	return nil
}

// Pixel reads one framebuffer pixel; out-of-range reads are off.
func (d *Display) Pixel(x, y int) bool {
	if x < 0 || x >= WidthPx || y < 0 || y >= HeightPx {
		return false
	}
	return d.pixels[y][x]
}

// LitPixels counts lit pixels; a cheap proxy for render coverage in tests.
func (d *Display) LitPixels() int {
	n := 0
	for y := 0; y < HeightPx; y++ {
		for x := 0; x < WidthPx; x++ {
			if d.pixels[y][x] {
				n++
			}
		}
	}
	return n
}

// Render returns a human-readable view of the panel text, framed, as the
// cmd/distscroll-sim tool prints it.
func (d *Display) Render() string {
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", TextCols) + "+\n")
	for _, line := range d.lines {
		fmt.Fprintf(&b, "|%-*s|\n", TextCols, line)
	}
	b.WriteString("+" + strings.Repeat("-", TextCols) + "+")
	return b.String()
}

// rasterizeLine draws the row's text into the framebuffer. The font is a
// simplified block font: any non-space character lights the glyph cell
// interior, which is enough for coverage-style assertions.
func (d *Display) rasterizeLine(row int) {
	top := row * GlyphH
	// Clear the band first.
	for y := top; y < top+GlyphH && y < HeightPx; y++ {
		for x := 0; x < WidthPx; x++ {
			d.pixels[y][x] = false
		}
	}
	for col, ch := range d.lines[row] {
		if ch == ' ' || col >= TextCols {
			continue
		}
		left := col * GlyphW
		for dy := 1; dy < GlyphH-1; dy++ {
			for dx := 1; dx < GlyphW-1; dx++ {
				y, x := top+dy, left+dx
				if y < HeightPx && x < WidthPx {
					d.pixels[y][x] = true
				}
			}
		}
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
