// Package adc models the 10-bit successive-approximation analog-to-digital
// converter of the Microchip PIC 18F452, which digitises the GP2D120 and
// ADXL311 outputs at the Smart-Its input ports (paper Figure 4: "measured
// analog voltage at Smart-Its input port").
package adc

import (
	"fmt"

	"github.com/hcilab/distscroll/internal/sim"
)

// Converter characteristics.
const (
	// Bits is the converter resolution.
	Bits = 10
	// MaxCode is the largest output code.
	MaxCode = 1<<Bits - 1
	// DefaultVref is the default positive reference voltage.
	DefaultVref = 5.0
)

// Source is an analog signal the converter can sample.
type Source func() float64

// Converter is a multi-channel 10-bit ADC.
type Converter struct {
	vref     float64
	channels []Source
	rng      *sim.Rand
	// offsetLSB and gainErr model static converter error (datasheet:
	// < ±1 LSB integral error for the PIC 18F452 module).
	offsetLSB float64
	gainErr   float64
	samples   uint64
}

// New returns a converter with the given reference voltage and channel
// count. rng may be nil to disable sampling noise.
func New(vref float64, channels int, rng *sim.Rand) (*Converter, error) {
	if vref <= 0 {
		return nil, fmt.Errorf("adc: vref must be positive, got %g", vref)
	}
	if channels <= 0 {
		return nil, fmt.Errorf("adc: need at least one channel, got %d", channels)
	}
	c := &Converter{
		vref:     vref,
		channels: make([]Source, channels),
		rng:      rng,
	}
	if rng != nil {
		c.offsetLSB = rng.Uniform(-0.5, 0.5)
		c.gainErr = rng.Uniform(-0.001, 0.001)
	}
	return c, nil
}

// Connect attaches an analog source to a channel.
func (c *Converter) Connect(channel int, src Source) error {
	if channel < 0 || channel >= len(c.channels) {
		return fmt.Errorf("adc: channel %d out of range [0,%d)", channel, len(c.channels))
	}
	c.channels[channel] = src
	return nil
}

// Channels reports the number of channels.
func (c *Converter) Channels() int { return len(c.channels) }

// Samples reports how many conversions have been performed.
func (c *Converter) Samples() uint64 { return c.samples }

// Vref returns the reference voltage.
func (c *Converter) Vref() float64 { return c.vref }

// Read performs one conversion on the given channel and returns the 10-bit
// code. An unconnected channel reads as a floating input near zero.
func (c *Converter) Read(channel int) (uint16, error) {
	if channel < 0 || channel >= len(c.channels) {
		return 0, fmt.Errorf("adc: channel %d out of range [0,%d)", channel, len(c.channels))
	}
	c.samples++
	v := 0.0
	if src := c.channels[channel]; src != nil {
		v = src()
	}
	code := v / c.vref * float64(MaxCode)
	code *= 1 + c.gainErr
	code += c.offsetLSB
	if c.rng != nil {
		// ±0.5 LSB quantisation/thermal noise.
		code += c.rng.Uniform(-0.5, 0.5)
	}
	if code < 0 {
		code = 0
	}
	if code > MaxCode {
		code = MaxCode
	}
	return uint16(code), nil
}

// Voltage converts a code back to volts using the reference.
func (c *Converter) Voltage(code uint16) float64 {
	return float64(code) / float64(MaxCode) * c.vref
}
