package adc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hcilab/distscroll/internal/sim"
)

func TestConvertKnownVoltages(t *testing.T) {
	c, err := New(5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		volts float64
		want  uint16
	}{
		{0, 0},
		{5, MaxCode},
		{2.5, MaxCode / 2},
	}
	for _, tc := range cases {
		v := tc.volts
		if err := c.Connect(0, func() float64 { return v }); err != nil {
			t.Fatal(err)
		}
		code, err := c.Read(0)
		if err != nil {
			t.Fatal(err)
		}
		if int(code) != int(tc.want) && int(code) != int(tc.want)+1 && int(code)+1 != int(tc.want) {
			t.Errorf("Convert(%gV) = %d, want ~%d", tc.volts, code, tc.want)
		}
	}
}

func TestQuantisationErrorBounded(t *testing.T) {
	c, err := New(5, 1, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	var src float64
	if err := c.Connect(0, func() float64 { return src }); err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		src = float64(raw%5000) / 1000 // 0..5V
		code, err := c.Read(0)
		if err != nil {
			return false
		}
		back := c.Voltage(code)
		// 10-bit LSB is ~4.9 mV; allow 3 LSB for offset+gain+noise.
		return math.Abs(back-src) < 3*5.0/float64(MaxCode)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestClamping(t *testing.T) {
	c, err := New(5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(0, func() float64 { return 12 }); err != nil {
		t.Fatal(err)
	}
	code, err := c.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if code != MaxCode {
		t.Fatalf("over-range code = %d, want %d", code, MaxCode)
	}
	if err := c.Connect(0, func() float64 { return -3 }); err != nil {
		t.Fatal(err)
	}
	code, err = c.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("under-range code = %d, want 0", code)
	}
}

func TestUnconnectedChannelReadsNearZero(t *testing.T) {
	c, err := New(5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	code, err := c.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if code > 2 {
		t.Fatalf("floating channel code = %d", code)
	}
}

func TestChannelBounds(t *testing.T) {
	c, err := New(5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(2); err == nil {
		t.Fatal("want out-of-range read error")
	}
	if _, err := c.Read(-1); err == nil {
		t.Fatal("want negative-channel read error")
	}
	if err := c.Connect(5, func() float64 { return 0 }); err == nil {
		t.Fatal("want out-of-range connect error")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New(0, 1, nil); err == nil {
		t.Fatal("want vref error")
	}
	if _, err := New(5, 0, nil); err == nil {
		t.Fatal("want channels error")
	}
}

func TestSampleCounter(t *testing.T) {
	c, err := New(5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := c.Read(0); err != nil {
			t.Fatal(err)
		}
	}
	if c.Samples() != 7 {
		t.Fatalf("samples = %d, want 7", c.Samples())
	}
}

func TestMonotoneCodes(t *testing.T) {
	c, err := New(5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var src float64
	if err := c.Connect(0, func() float64 { return src }); err != nil {
		t.Fatal(err)
	}
	last := uint16(0)
	for v := 0.0; v <= 5.0; v += 0.01 {
		src = v
		code, err := c.Read(0)
		if err != nil {
			t.Fatal(err)
		}
		if code < last {
			t.Fatalf("codes not monotone: %d after %d at %.2fV", code, last, v)
		}
		last = code
	}
}
