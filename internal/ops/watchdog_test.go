package ops

import (
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

func snapWith(counters map[string]uint64) *telemetry.Snapshot {
	s := telemetry.NewSnapshot()
	for k, v := range counters {
		s.AddCounter(k, v)
	}
	return s
}

func TestEvaluateMinRate(t *testing.T) {
	cfg := WatchdogConfig{MinRate: map[string]float64{"hub_events_total": 10}}
	prev := snapWith(map[string]uint64{"hub_events_total": 100})

	// 50 events over 2 s = 25/s: healthy.
	cur := snapWith(map[string]uint64{"hub_events_total": 150})
	if got := Evaluate(cfg, prev, cur, 2*time.Second); len(got) != 0 {
		t.Fatalf("healthy rate breached: %v", got)
	}

	// 10 events over 2 s = 5/s: drained.
	cur = snapWith(map[string]uint64{"hub_events_total": 110})
	got := Evaluate(cfg, prev, cur, 2*time.Second)
	if len(got) != 1 || got[0].Rule != "min-rate" || got[0].Value != 5 {
		t.Fatalf("drain not detected: %v", got)
	}
}

func TestEvaluateLatencyP99(t *testing.T) {
	mk := func(fast, slow int) *telemetry.Snapshot {
		h := telemetry.NewLocalHistogram(telemetry.LatencyBucketsMs)
		for i := 0; i < fast; i++ {
			h.Observe(8)
		}
		for i := 0; i < slow; i++ {
			h.Observe(600)
		}
		s := telemetry.NewSnapshot()
		s.MergeHistogram(telemetry.MetricHubE2ELatency, h.Snapshot())
		return s
	}
	cfg := WatchdogConfig{LatencyMaxP99Ms: 100}

	// All-fast window: clean.
	if got := Evaluate(cfg, telemetry.NewSnapshot(), mk(100, 0), time.Second); len(got) != 0 {
		t.Fatalf("fast window breached: %v", got)
	}

	// The *window* is what matters: prev holds 1000 fast frames, the new
	// window adds 100 slow ones. Cumulative p99 looks fine; the delta must
	// not.
	prev := mk(1000, 0)
	cur := mk(1000, 100)
	got := Evaluate(cfg, prev, cur, time.Second)
	if len(got) != 1 || got[0].Rule != "latency-p99" {
		t.Fatalf("windowed tail regression missed: %v", got)
	}
	if got[0].Value <= 100 {
		t.Fatalf("breach p99 %.1f not above limit", got[0].Value)
	}

	// An idle window (no new observations) is not a latency breach.
	if got := Evaluate(cfg, cur, cur, time.Second); len(got) != 0 {
		t.Fatalf("idle window breached latency: %v", got)
	}
}

func TestEvaluateZeroWindow(t *testing.T) {
	cfg := WatchdogConfig{MinRate: map[string]float64{"x": 1}}
	if got := Evaluate(cfg, telemetry.NewSnapshot(), telemetry.NewSnapshot(), 0); got != nil {
		t.Fatalf("zero-dt window evaluated: %v", got)
	}
}

func TestDeltaHist(t *testing.T) {
	h := telemetry.NewLocalHistogram([]float64{1, 2, 4})
	h.Observe(1)
	a := h.Snapshot()
	h.Observe(3)
	h.Observe(3)
	b := h.Snapshot()

	d, ok := deltaHist(a, b)
	if !ok || d.Count != 2 || d.Counts[2] != 2 || d.Counts[0] != 0 {
		t.Fatalf("delta wrong: ok=%v %+v", ok, d)
	}
	// Empty prev passes cur through.
	if d, ok := deltaHist(telemetry.HistogramSnapshot{}, b); !ok || d.Count != b.Count {
		t.Fatalf("empty-prev delta wrong: ok=%v %+v", ok, d)
	}
	// Regressed counters (registry swapped) refuse rather than underflow.
	if _, ok := deltaHist(b, a); ok {
		t.Fatal("regressed histogram accepted")
	}
}

func TestWatchdogStallDetection(t *testing.T) {
	reg := telemetry.New()
	reg.Gauge(telemetry.MetricSimVirtualSeconds).Set(1)
	done := make(chan struct{})
	var once bool
	w := StartWatchdog(WatchdogConfig{
		Registry:   reg,
		Interval:   5 * time.Millisecond,
		StallAfter: 25 * time.Millisecond,
		OnBreach: func(Breach) {
			if !once {
				once = true
				close(done)
			}
		},
	})
	defer w.Stop()

	// Keep the clock moving for a while: no breach may fire.
	for i := 0; i < 10; i++ {
		reg.Gauge(telemetry.MetricSimVirtualSeconds).Set(float64(i + 2))
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case <-done:
		t.Fatalf("advancing clock reported as stalled: %v", w.Breaches())
	default:
	}

	// Now freeze it: the stall rule must fire.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("frozen clock never reported")
	}
	w.Stop()
	breaches := w.Breaches()
	if breaches[0].Rule != "stall" || breaches[0].Metric != telemetry.MetricSimVirtualSeconds {
		t.Fatalf("wrong breach: %+v", breaches[0])
	}
	if w.Healthy() {
		t.Fatal("watchdog still healthy after stall breach")
	}
}

// TestWatchdogFiresFlightRecorder pins the PR-5 integration: a breach must
// produce a bounded flight-recorder dump through the watchdog's own
// recorder.
func TestWatchdogFiresFlightRecorder(t *testing.T) {
	var dump strings.Builder
	tracer := tracing.New(tracing.Config{Capacity: 64, Bounded: true, DumpTo: &dump})
	reg := telemetry.New()
	done := make(chan struct{})
	var once bool
	w := StartWatchdog(WatchdogConfig{
		Registry: reg,
		Interval: 5 * time.Millisecond,
		MinRate:  map[string]float64{telemetry.MetricHubEvents: 100},
		Tracer:   tracer,
		OnBreach: func(Breach) {
			if !once {
				once = true
				close(done)
			}
		},
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("drained registry never breached")
	}
	w.Stop()
	if tracer.Dumps() == 0 {
		t.Fatal("breach did not fire the flight recorder")
	}
	if out := dump.String(); !strings.Contains(out, "slo-watchdog") || !strings.Contains(out, "min-rate") {
		t.Fatalf("dump missing watchdog context:\n%s", out)
	}
	bs := w.Breaches()
	if len(bs) == 0 || bs[0].Limit != 100 {
		t.Fatalf("breach list wrong: %v", bs)
	}
}

func TestWatchdogNilAndNoop(t *testing.T) {
	var w *Watchdog
	if !w.Healthy() || w.Breaches() != nil {
		t.Fatal("nil watchdog must be healthy and empty")
	}
	w.Stop() // must not panic
	if StartWatchdog(WatchdogConfig{}) != nil {
		t.Fatal("rule-less config started a watchdog")
	}
	if StartWatchdog(WatchdogConfig{Registry: telemetry.New()}) != nil {
		t.Fatal("rule-less config with registry started a watchdog")
	}
}
