// Package ops is the live operations plane of the DistScroll reproduction:
// a dependency-free HTTP server that exposes a running fleet's telemetry
// registry while the run is in flight. The paper measures DistScroll after
// the fact; a service pushing a million simulated devices needs to be
// watchable *during* the run — scrape progress, spot a stall, pull a
// profile — without stopping it.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition of a registry snapshot
//	/vars          the same snapshot as indented JSON
//	/healthz       200 while the SLO watchdog is clean, 503 with the
//	               breach list as JSON once it fires (always 200 without one)
//	/api/history   retained telemetry history as JSON (?k=, ?series=, ?prefix=)
//	/dash          self-contained live HTML+SVG dashboard over /api/history
//	/debug/pprof/  the standard Go profiling endpoints
//
// Every scrape takes one registry snapshot: counters are atomics and the
// scale path's shard collector reads only published copies, so scraping
// never blocks a tick loop. Overhead is bounded by snapshot cost times
// scrape rate, not by fleet size per request beyond the merge itself.
package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hcilab/distscroll/internal/history"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// Config wires a server to its data sources.
type Config struct {
	// Registry is scraped on every /metrics and /vars request.
	Registry *telemetry.Registry
	// Watchdog, when set, drives /healthz: 503 once it has breached.
	Watchdog *Watchdog
	// History, when set, serves /api/history and feeds /dash.
	History *history.Store
}

// Server is a running ops HTTP server.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	wd   atomic.Pointer[Watchdog]
	hist atomic.Pointer[history.Store]

	// Close is idempotent: concurrent and repeated closes collapse to
	// one srv.Close, every caller seeing its error.
	closeOnce sync.Once
	closeErr  error
}

// Serve starts the ops plane on addr (host:port; port 0 picks a free one)
// and returns once the listener is bound, so the reported Addr is always
// scrapeable. The HTTP loop runs on its own goroutine until Close.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln}
	if cfg.Watchdog != nil {
		s.wd.Store(cfg.Watchdog)
	}
	if cfg.History != nil {
		s.hist.Store(cfg.History)
	}
	s.srv = &http.Server{
		// /healthz and /api/history read their sources through the server
		// so SetWatchdog/SetHistory can attach them after the listener is
		// already up (a fleet binds its port at construction, its watchdog
		// at run start).
		Handler:           handler(cfg.Registry, s.wd.Load, s.hist.Load),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// SetWatchdog points /healthz at w (nil detaches, making the endpoint
// always healthy). Safe while serving and safe on nil.
func (s *Server) SetWatchdog(w *Watchdog) {
	if s == nil {
		return
	}
	s.wd.Store(w)
}

// SetHistory points /api/history and /dash at st (nil detaches). Safe
// while serving and safe on nil.
func (s *Server) SetHistory(st *history.Store) {
	if s == nil {
		return
	}
	s.hist.Store(st)
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the listener and the HTTP loop. Safe on nil, idempotent,
// and safe against concurrent callers and in-flight scrapes: every call
// returns the first close's result.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() { s.closeErr = s.srv.Close() })
	return s.closeErr
}

// Handler builds the ops mux without binding a listener — the unit-test
// and embedding entry point.
func Handler(cfg Config) http.Handler {
	return handler(cfg.Registry,
		func() *Watchdog { return cfg.Watchdog },
		func() *history.Store { return cfg.History })
}

// healthzBody is the /healthz 503 JSON schema.
type healthzBody struct {
	Status   string   `json:"status"`
	Breaches []Breach `json:"breaches"`
}

// handler is the mux over a registry plus watchdog and history accessors
// (read per request, so a served fleet can attach them late).
func handler(reg *telemetry.Registry, watchdog func() *Watchdog, hist func() *history.Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "distscroll ops plane\n\n"+
			"/metrics       Prometheus exposition\n"+
			"/vars          JSON snapshot\n"+
			"/healthz       SLO watchdog state\n"+
			"/api/history   retained telemetry history (JSON)\n"+
			"/dash          live dashboard\n"+
			"/debug/pprof/  Go profiling\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.Snapshot().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		wd := watchdog()
		if wd.Healthy() {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, "ok\n")
			return
		}
		// Breached: structured JSON so tooling gets the rule, metric,
		// value, limit, and window without parsing prose.
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(healthzBody{Status: "slo breach", Breaches: wd.Breaches()}) //nolint:errcheck
	})
	mux.HandleFunc("/api/history", func(w http.ResponseWriter, r *http.Request) {
		st := hist()
		if st == nil {
			http.Error(w, "history disabled (enable WithHistory / -history-windows)", http.StatusNotFound)
			return
		}
		var q history.Query
		if v := r.URL.Query().Get("k"); v != "" {
			k, err := strconv.Atoi(v)
			if err != nil || k < 0 {
				http.Error(w, "k must be a non-negative integer", http.StatusBadRequest)
				return
			}
			q.LastK = k
		}
		if v := r.URL.Query().Get("series"); v != "" {
			q.Series = strings.Split(v, ",")
		}
		if v := r.URL.Query().Get("prefix"); v != "" {
			q.Prefixes = strings.Split(v, ",")
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		st.WriteJSON(w, q) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/dash", func(w http.ResponseWriter, _ *http.Request) {
		if hist() == nil {
			http.Error(w, "history disabled (enable WithHistory / -history-windows)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, dashHTML) //nolint:errcheck
	})
	// net/http/pprof self-registers on DefaultServeMux at import; wire its
	// handlers onto this private mux instead so the ops port is the only
	// place they appear.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
