// Package ops is the live operations plane of the DistScroll reproduction:
// a dependency-free HTTP server that exposes a running fleet's telemetry
// registry while the run is in flight. The paper measures DistScroll after
// the fact; a service pushing a million simulated devices needs to be
// watchable *during* the run — scrape progress, spot a stall, pull a
// profile — without stopping it.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition of a registry snapshot
//	/vars          the same snapshot as indented JSON
//	/healthz       200 while the SLO watchdog is clean, 503 with the
//	               breach list once it fires (or always 200 without one)
//	/debug/pprof/  the standard Go profiling endpoints
//
// Every scrape takes one registry snapshot: counters are atomics and the
// scale path's shard collector reads only published copies, so scraping
// never blocks a tick loop. Overhead is bounded by snapshot cost times
// scrape rate, not by fleet size per request beyond the merge itself.
package ops

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"github.com/hcilab/distscroll/internal/telemetry"
)

// Config wires a server to its data sources.
type Config struct {
	// Registry is scraped on every /metrics and /vars request.
	Registry *telemetry.Registry
	// Watchdog, when set, drives /healthz: 503 once it has breached.
	Watchdog *Watchdog
}

// Server is a running ops HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
	wd  atomic.Pointer[Watchdog]
}

// Serve starts the ops plane on addr (host:port; port 0 picks a free one)
// and returns once the listener is bound, so the reported Addr is always
// scrapeable. The HTTP loop runs on its own goroutine until Close.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln}
	if cfg.Watchdog != nil {
		s.wd.Store(cfg.Watchdog)
	}
	s.srv = &http.Server{
		// /healthz reads the watchdog through the server so SetWatchdog
		// can attach one after the listener is already up (a fleet binds
		// its port at construction, its watchdog at run start).
		Handler:           handler(cfg.Registry, s.wd.Load),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// SetWatchdog points /healthz at w (nil detaches, making the endpoint
// always healthy). Safe while serving and safe on nil.
func (s *Server) SetWatchdog(w *Watchdog) {
	if s == nil {
		return
	}
	s.wd.Store(w)
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the listener and the HTTP loop. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Handler builds the ops mux without binding a listener — the unit-test
// and embedding entry point.
func Handler(cfg Config) http.Handler {
	return handler(cfg.Registry, func() *Watchdog { return cfg.Watchdog })
}

// handler is the mux over a registry and a watchdog accessor (read per
// request, so a served fleet can attach its watchdog late).
func handler(reg *telemetry.Registry, watchdog func() *Watchdog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "distscroll ops plane\n\n"+
			"/metrics       Prometheus exposition\n"+
			"/vars          JSON snapshot\n"+
			"/healthz       SLO watchdog state\n"+
			"/debug/pprof/  Go profiling\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.Snapshot().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		wd := watchdog()
		if wd.Healthy() {
			fmt.Fprint(w, "ok\n")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, "slo breach\n")
		for _, b := range wd.Breaches() {
			fmt.Fprintf(w, "%s\n", b)
		}
	})
	// net/http/pprof self-registers on DefaultServeMux at import; wire its
	// handlers onto this private mux instead so the ops port is the only
	// place they appear.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
