package ops

import (
	"fmt"
	"sync"
	"time"

	"github.com/hcilab/distscroll/internal/history"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

// Breach is one SLO violation observed by the watchdog. The JSON shape
// is the /healthz 503 body schema.
type Breach struct {
	// Rule names the rule that fired: "min-rate", "latency-p99", "stall".
	Rule string `json:"rule"`
	// Metric is the series the rule evaluated.
	Metric string `json:"metric"`
	// Value is the observed quantity, Limit the configured threshold
	// (units depend on the rule: per-second rate, milliseconds, seconds).
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
	// WindowSeconds is the evaluation window the rule fired over.
	WindowSeconds float64 `json:"window"`
	// AtMillis is the breach detection time (unix milliseconds).
	AtMillis int64 `json:"atMillis"`
	// History is the breach's pre/post forensics capture, attached
	// asynchronously once the history store (WatchdogConfig.History) has
	// sampled the post-breach tail. Excluded from the /healthz body —
	// fetch it from /api/history or the flight-recorder dump.
	History *history.Forensics `json:"-"`
}

// String renders the breach for /healthz and log lines.
func (b Breach) String() string {
	return fmt.Sprintf("%s: %s %.3g (limit %.3g)", b.Rule, b.Metric, b.Value, b.Limit)
}

// WatchdogConfig parameterises an SLO watchdog.
type WatchdogConfig struct {
	// Registry is snapshotted every Interval; rules evaluate the deltas
	// between consecutive snapshots (windowed, so a long healthy history
	// cannot mask a current outage).
	Registry *telemetry.Registry
	// Interval is the evaluation period (default 1 s).
	Interval time.Duration

	// MinRate maps counter names to their minimum healthy per-second
	// rate-of-change. A window where delta/dt drops below the floor is a
	// drain (the pipeline stopped producing).
	MinRate map[string]float64

	// LatencyMaxP99Ms, when > 0, breaches if the named histogram's p99
	// over the window exceeds it. LatencyMetric defaults to
	// hub_e2e_latency_ms. Windows with no observations are skipped —
	// absence of traffic is MinRate's job.
	LatencyMetric   string
	LatencyMaxP99Ms float64

	// StallAfter, when > 0, breaches if the StallGauge (default
	// sim_virtual_seconds) fails to advance for that long of wall time —
	// the stuck-clock detector for a wedged worker. A name with no gauge
	// falls back to the counter of the same name, so progress counters
	// (e.g. hub_frames_decoded_total) work as stall clocks too.
	StallGauge string
	StallAfter time.Duration

	// Now supplies the watchdog's clock (default time.Now). Injectable so
	// rule windows are testable without sleeping, and so a harness driving
	// virtual time can window on its own monotonic source. Go time.Time
	// carries a monotonic reading, so windows are immune to wall-clock
	// steps either way.
	Now func() time.Time

	// OnBreach is called for every breach as it is detected (watchdog
	// goroutine; keep it fast).
	OnBreach func(Breach)
	// Tracer, when set, receives a flight-recorder anomaly per breach:
	// the watchdog owns its own recorder, so the dump machinery's
	// single-writer contract holds, and the bounded dump triggers exactly
	// as it does for in-pipeline anomalies.
	Tracer *tracing.Tracer

	// History, when set, latches a marker on the telemetry history
	// timeline per breach and schedules a forensics capture: the store
	// keeps sampling a post-breach tail, then the pre/post capture is
	// attached to the Breach record and — with Tracer — dumped through
	// the flight recorder as a history table.
	History *history.Store
	// PostBreachWindows is the post-breach tail length in history
	// windows (<= 0 takes history.DefaultPostWindows).
	PostBreachWindows int
}

// Watchdog evaluates SLO rules over windowed snapshot deltas on a
// wall-clock loop. Health is latched: once any rule fires the watchdog
// stays unhealthy (and /healthz stays 503) so a flapping breach cannot
// hide from a slow scraper.
type Watchdog struct {
	cfg      WatchdogConfig
	recorder *tracing.Recorder
	// forensics is a second, dedicated recorder for the asynchronous
	// history-table dumps: those fire on the history store's sampler
	// goroutine (or its Stop caller), never on the watchdog goroutine,
	// so sharing `recorder` would break the single-writer contract.
	forensics *tracing.Recorder
	now       func() time.Time
	start     time.Time

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu       sync.Mutex
	breaches []Breach

	// Evaluation-window state (watchdog goroutine only).
	prev *telemetry.Snapshot
	last time.Time

	// Stall tracking (watchdog goroutine only): stallFor accumulates
	// observed evaluation windows since the stall clock last moved. It is
	// credited per window, clamped (see step), so a single stretched wall
	// gap — a GC pause, a suspended CI runner — cannot alone exceed
	// StallAfter while the run is healthy.
	stallVal float64
	stallFor time.Duration
}

// maxBreaches bounds the retained breach list; /healthz needs the shape of
// the failure, not an unbounded log.
const maxBreaches = 32

// StartWatchdog begins evaluating cfg's rules until Stop. Returns nil (a
// no-op watchdog that is always healthy) when cfg.Registry is nil or no
// rule is configured.
func StartWatchdog(cfg WatchdogConfig) *Watchdog {
	w := newWatchdog(cfg)
	if w == nil {
		return nil
	}
	go w.loop()
	return w
}

// newWatchdog validates the config and builds a watchdog without starting
// its loop. Tests drive evaluation windows directly through step, so rule
// timing is exercised against the injectable clock instead of real sleeps.
func newWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Registry == nil {
		return nil
	}
	if len(cfg.MinRate) == 0 && cfg.LatencyMaxP99Ms <= 0 && cfg.StallAfter <= 0 {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.LatencyMetric == "" {
		cfg.LatencyMetric = telemetry.MetricHubE2ELatency
	}
	if cfg.StallGauge == "" {
		cfg.StallGauge = telemetry.MetricSimVirtualSeconds
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	w := &Watchdog{
		cfg:  cfg,
		now:  cfg.Now,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	w.start = w.now()
	if cfg.Tracer != nil {
		w.recorder = cfg.Tracer.NewRecorder("slo-watchdog", 0)
		if cfg.History != nil {
			w.forensics = cfg.Tracer.NewRecorder("slo-forensics", 0)
		}
	}
	w.prev = cfg.Registry.Snapshot()
	w.last = w.start
	w.stallVal = stallValue(w.prev, cfg.StallGauge)
	return w
}

func (w *Watchdog) loop() {
	defer close(w.done)
	ticker := time.NewTicker(w.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.step()
		}
	}
}

// step runs one evaluation window against the injectable clock. A window
// stretched far beyond the configured interval means the watchdog goroutine
// (or the whole process — a GC pause, a suspended CI runner) was starved of
// wall time, not that the pipeline drained: counter deltas over such a
// window measure the scheduler, not the model, so the rate/latency rules
// skip it, and the stall accumulator is credited at most 2× Interval so one
// giant gap cannot alone latch a stuck-clock breach on a healthy run. A
// frozen clock yields dt <= 0, which evaluates nothing and accumulates
// nothing — wall time that did not observably pass cannot count as stall
// time.
func (w *Watchdog) step() {
	now := w.now()
	cur := w.cfg.Registry.Snapshot()
	dt := now.Sub(w.last)
	window := dt
	if max := 2 * w.cfg.Interval; window > max {
		window = max
	} else {
		for _, b := range Evaluate(w.cfg, w.prev, cur, dt) {
			w.report(b)
		}
	}
	if b, ok := w.checkStall(cur, window); ok {
		w.report(b)
	}
	w.prev, w.last = cur, now
}

// checkStall tracks the stall gauge across windows: any change resets the
// accumulator; StallAfter of accumulated observed window time without one
// is a breach.
func (w *Watchdog) checkStall(cur *telemetry.Snapshot, window time.Duration) (Breach, bool) {
	if w.cfg.StallAfter <= 0 {
		return Breach{}, false
	}
	v := stallValue(cur, w.cfg.StallGauge)
	if v != w.stallVal {
		w.stallVal = v
		w.stallFor = 0
		return Breach{}, false
	}
	if window > 0 {
		w.stallFor += window
	}
	if w.stallFor < w.cfg.StallAfter {
		return Breach{}, false
	}
	stuck := w.stallFor
	w.stallFor = 0 // re-arm so a persistent stall fires once per StallAfter
	return Breach{
		Rule:          "stall",
		Metric:        w.cfg.StallGauge,
		Value:         stuck.Seconds(),
		Limit:         w.cfg.StallAfter.Seconds(),
		WindowSeconds: stuck.Seconds(),
	}, true
}

// stallValue reads the stall clock: the named gauge, or the counter of the
// same name when no such gauge exists.
func stallValue(s *telemetry.Snapshot, name string) float64 {
	if v, ok := s.Gauges[name]; ok {
		return v
	}
	return float64(s.Counters[name])
}

// Evaluate runs the windowed rules (min-rate, latency-p99) over a pair of
// snapshots dt apart and returns every breach. Pure: no watchdog state, so
// rule semantics are unit-testable without a clock. Stall detection needs
// cross-window memory and lives in the watchdog loop.
func Evaluate(cfg WatchdogConfig, prev, cur *telemetry.Snapshot, dt time.Duration) []Breach {
	var out []Breach
	if dt <= 0 {
		return nil
	}
	for name, floor := range cfg.MinRate {
		delta := float64(cur.Counters[name] - prev.Counters[name])
		rate := delta / dt.Seconds()
		if rate < floor {
			out = append(out, Breach{Rule: "min-rate", Metric: name, Value: rate, Limit: floor, WindowSeconds: dt.Seconds()})
		}
	}
	if cfg.LatencyMaxP99Ms > 0 {
		name := cfg.LatencyMetric
		if name == "" {
			name = telemetry.MetricHubE2ELatency
		}
		ch, ok := cur.Histogram(name)
		if ok {
			ph, _ := prev.Histogram(name)
			if d, ok := deltaHist(ph, ch); ok && d.Count > 0 {
				if p99 := d.Quantile(0.99); p99 > cfg.LatencyMaxP99Ms {
					out = append(out, Breach{Rule: "latency-p99", Metric: name, Value: p99, Limit: cfg.LatencyMaxP99Ms, WindowSeconds: dt.Seconds()})
				}
			}
		}
	}
	return out
}

// deltaHist subtracts prev's bucket counts from cur's, yielding the
// histogram of just this window. An empty prev passes cur through; a shape
// mismatch or a counter regression (registry replaced mid-flight) reports
// not-ok rather than inventing negative buckets.
func deltaHist(prev, cur telemetry.HistogramSnapshot) (telemetry.HistogramSnapshot, bool) {
	if len(prev.Counts) == 0 {
		return cur, true
	}
	if len(prev.Counts) != len(cur.Counts) || prev.Count > cur.Count {
		return telemetry.HistogramSnapshot{}, false
	}
	d := telemetry.HistogramSnapshot{
		Bounds: cur.Bounds,
		Counts: make([]uint64, len(cur.Counts)),
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
	}
	for i := range cur.Counts {
		if cur.Counts[i] < prev.Counts[i] {
			return telemetry.HistogramSnapshot{}, false
		}
		d.Counts[i] = cur.Counts[i] - prev.Counts[i]
	}
	return d, true
}

// report latches unhealthy, records the breach, marks the history
// timeline (scheduling the forensics capture), notifies OnBreach, and
// fires the flight recorder.
func (w *Watchdog) report(b Breach) {
	b.AtMillis = w.now().UnixMilli()
	w.mu.Lock()
	idx := -1
	if len(w.breaches) < maxBreaches {
		idx = len(w.breaches)
		w.breaches = append(w.breaches, b)
	}
	w.mu.Unlock()
	if w.cfg.History != nil {
		mark := history.BreachMark{
			Rule: b.Rule, Metric: b.Metric, Value: b.Value, Limit: b.Limit, AtMillis: b.AtMillis,
		}
		w.cfg.History.MarkBreach(mark, w.cfg.PostBreachWindows, func(f *history.Forensics) {
			w.attachForensics(idx, f)
		})
	}
	if w.recorder != nil {
		at := w.now().Sub(w.start)
		w.recorder.Anomaly(tracing.HopSessionSLO, 0, at,
			clampU32(b.Value), clampU32(b.Limit), b.String())
	}
	if w.cfg.OnBreach != nil {
		w.cfg.OnBreach(b)
	}
}

// attachForensics lands a completed history capture on its breach record
// and dumps the pre/post table through the flight recorder. Runs on the
// history store's goroutine via the MarkBreach callback.
func (w *Watchdog) attachForensics(idx int, f *history.Forensics) {
	if f == nil {
		return
	}
	if idx >= 0 {
		w.mu.Lock()
		if idx < len(w.breaches) {
			w.breaches[idx].History = f
		}
		w.mu.Unlock()
	}
	if w.forensics != nil {
		at := w.now().Sub(w.start)
		reason := fmt.Sprintf("%s: %s pre/post-breach history (window %d)",
			f.Mark.Rule, f.Mark.Metric, f.Mark.Window)
		w.forensics.AnomalyNote(tracing.HopSessionSLO, 0, at,
			clampU32(f.Mark.Value), clampU32(f.Mark.Limit), reason, f.WriteTable)
	}
}

func clampU32(v float64) uint32 {
	if v < 0 {
		return 0
	}
	if v > float64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(v)
}

// Healthy reports whether no rule has fired. A nil watchdog is healthy.
func (w *Watchdog) Healthy() bool {
	if w == nil {
		return true
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.breaches) == 0
}

// Breaches returns the recorded breaches in detection order.
func (w *Watchdog) Breaches() []Breach {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Breach(nil), w.breaches...)
}

// Stop halts the evaluation loop and waits for it. Safe on nil and safe to
// call twice.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}
