package ops

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/history"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// These are the regression tests for the watchdog wall-clock bugfix: rule
// windows are measured on the injectable clock, evaluation windows stretched
// far beyond the interval are discounted, and wall time that did not
// observably pass accumulates no stall credit. Each test drives evaluation
// directly through newWatchdog + step, so no real sleeping is involved.

// fakeClock is an injectable watchdog clock the test advances by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func stepN(w *Watchdog, c *fakeClock, n int, d time.Duration) {
	for i := 0; i < n; i++ {
		c.advance(d)
		w.step()
	}
}

// TestWatchdogFrozenClockIsNotAStall freezes the injected clock entirely:
// windows where no wall time observably passed must accumulate no stall
// credit and evaluate no rate rules, no matter how often the loop fires.
// Before the fix a wall-clock step backwards (NTP, suspended laptop) could
// produce such windows against time.Now and latch a spurious breach.
func TestWatchdogFrozenClockIsNotAStall(t *testing.T) {
	reg := telemetry.New()
	reg.Gauge(telemetry.MetricSimVirtualSeconds).Set(1)
	clk := newFakeClock()
	w := newWatchdog(WatchdogConfig{
		Registry:   reg,
		Interval:   time.Second,
		StallAfter: 3 * time.Second,
		MinRate:    map[string]float64{telemetry.MetricHubEvents: 100},
		Now:        clk.now,
	})
	if w == nil {
		t.Fatal("watchdog did not start")
	}
	// 100 evaluation passes, zero elapsed time, idle registry: the stall
	// accumulator and the min-rate rule must both stay quiet.
	stepN(w, clk, 100, 0)
	if !w.Healthy() {
		t.Fatalf("frozen clock latched a breach: %v", w.Breaches())
	}
}

// TestWatchdogGiantWallGapDiscounted suspends the process (one evaluation
// window of an hour) over a healthy run: per-second rates computed over the
// gap would look drained and the stall accumulator would overshoot
// StallAfter in one hop, so the stretched window must be skipped by the
// windowed rules and credited at most 2×Interval of stall time.
func TestWatchdogGiantWallGapDiscounted(t *testing.T) {
	reg := telemetry.New()
	reg.Gauge(telemetry.MetricSimVirtualSeconds).Set(1)
	clk := newFakeClock()
	w := newWatchdog(WatchdogConfig{
		Registry:   reg,
		Interval:   time.Second,
		StallAfter: 10 * time.Second,
		MinRate:    map[string]float64{telemetry.MetricHubEvents: 100},
		Now:        clk.now,
	})

	// Healthy cadence: 150 events and one gauge tick per 1 s window.
	virt := 1.0
	tick := func(n int) {
		for i := 0; i < n; i++ {
			reg.Counter(telemetry.MetricHubEvents).Add(150)
			virt++
			reg.Gauge(telemetry.MetricSimVirtualSeconds).Set(virt)
			clk.advance(time.Second)
			w.step()
		}
	}
	tick(5)
	if !w.Healthy() {
		t.Fatalf("healthy cadence breached: %v", w.Breaches())
	}

	// The runner is suspended for an hour mid-window; the counters and the
	// gauge did not move. 150 events / 3600 s is far below the floor, but
	// the window measured the scheduler, not the pipeline.
	clk.advance(time.Hour)
	w.step()
	if !w.Healthy() {
		t.Fatalf("one suspended window latched a breach: %v", w.Breaches())
	}
	// Back to the healthy cadence: the gap credited at most 2 s of stall, so
	// even several idle-gauge windows later the 10 s budget has room — but
	// the run resumes advancing, which resets the accumulator anyway.
	tick(5)
	if !w.Healthy() {
		t.Fatalf("post-gap cadence breached: %v", w.Breaches())
	}
}

// TestWatchdogGenuineStallStillFires is the other half of the gap
// discounting: a real stall — wall time passing one interval at a time with
// a frozen stall clock — must still accumulate and breach, and the
// accumulator must re-arm so a persistent stall fires again.
func TestWatchdogGenuineStallStillFires(t *testing.T) {
	reg := telemetry.New()
	reg.Gauge(telemetry.MetricSimVirtualSeconds).Set(1)
	clk := newFakeClock()
	w := newWatchdog(WatchdogConfig{
		Registry:   reg,
		Interval:   time.Second,
		StallAfter: 3 * time.Second,
		Now:        clk.now,
	})
	stepN(w, clk, 2, time.Second)
	if !w.Healthy() {
		t.Fatalf("breached before StallAfter elapsed: %v", w.Breaches())
	}
	stepN(w, clk, 1, time.Second)
	bs := w.Breaches()
	if len(bs) != 1 || bs[0].Rule != "stall" || bs[0].Metric != telemetry.MetricSimVirtualSeconds {
		t.Fatalf("genuine stall not detected: %v", bs)
	}
	if bs[0].Value < 3 {
		t.Fatalf("stall breach reports %.1f s stuck, want >= 3", bs[0].Value)
	}
	// Still stuck: the re-armed accumulator fires again after another budget.
	stepN(w, clk, 3, time.Second)
	if got := len(w.Breaches()); got != 2 {
		t.Fatalf("persistent stall fired %d times over two budgets, want 2", got)
	}
	// Progress clears the accumulator: no further breaches while advancing.
	reg.Gauge(telemetry.MetricSimVirtualSeconds).Set(2)
	stepN(w, clk, 2, time.Second)
	reg.Gauge(telemetry.MetricSimVirtualSeconds).Set(3)
	stepN(w, clk, 2, time.Second)
	if got := len(w.Breaches()); got != 2 {
		t.Fatalf("advancing clock accrued breaches: %v", w.Breaches())
	}
}

// TestHealthzImmuneToWallClockSteps wires an injected-clock watchdog into
// the ops handler and walks the clock through a freeze and a giant step over
// a healthy run: /healthz must stay 200 throughout, and must flip to 503
// only for a genuine stall.
func TestHealthzImmuneToWallClockSteps(t *testing.T) {
	reg := telemetry.New()
	reg.Gauge(telemetry.MetricSimVirtualSeconds).Set(1)
	clk := newFakeClock()
	w := newWatchdog(WatchdogConfig{
		Registry:   reg,
		Interval:   time.Second,
		StallAfter: 3 * time.Second,
		Now:        clk.now,
	})
	h := handler(reg, func() *Watchdog { return w }, func() *history.Store { return nil })
	health := func() int {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		return rr.Code
	}

	stepN(w, clk, 10, 0)   // frozen wall clock
	clk.advance(time.Hour) // giant step
	w.step()
	if got := health(); got != http.StatusOK {
		t.Fatalf("/healthz = %d after clock chaos on a healthy run, want 200", got)
	}
	stepN(w, clk, 3, time.Second) // genuine stall
	if got := health(); got != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d after a genuine stall, want 503", got)
	}
}
