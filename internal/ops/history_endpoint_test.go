package ops

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/history"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

// histClock advances one second per sample so rates are exact.
func histClock() func() time.Time {
	t := time.UnixMilli(1_700_000_000_000)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func newHistStore(t *testing.T, reg *telemetry.Registry) *history.Store {
	t.Helper()
	st, err := history.New(history.Config{Registry: reg, Windows: 16, Interval: time.Second, Now: histClock()})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHandlerHistoryDisabled(t *testing.T) {
	h := Handler(Config{Registry: telemetry.New()})
	if code, body := getBody(t, h, "/api/history"); code != http.StatusNotFound || !strings.Contains(body, "history disabled") {
		t.Fatalf("/api/history without a store: %d %q", code, body)
	}
	if code, _ := getBody(t, h, "/dash"); code != http.StatusNotFound {
		t.Fatalf("/dash without a store: %d", code)
	}
}

func TestHandlerHistoryQuery(t *testing.T) {
	reg := telemetry.New()
	c := reg.Counter(telemetry.MetricHubDecoded)
	st := newHistStore(t, reg)
	for i := 0; i < 5; i++ {
		c.Add(100)
		st.Sample()
	}
	h := Handler(Config{Registry: reg, History: st})

	code, body := getBody(t, h, "/api/history")
	if code != http.StatusOK {
		t.Fatalf("/api/history status %d", code)
	}
	var res history.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("/api/history not JSON: %v\n%s", err, body)
	}
	if res.Count != 5 || len(res.Times) != 5 {
		t.Fatalf("count=%d times=%d", res.Count, len(res.Times))
	}
	sd, ok := res.Series[telemetry.MetricHubDecoded]
	if !ok || sd.Kind != "counter" || len(sd.Values) != 5 {
		t.Fatalf("series: %+v", res.Series)
	}
	// First-sight window is 0, then 100/s.
	if sd.Values[0] != 0 || sd.Values[4] != 100 {
		t.Fatalf("rates %v", sd.Values)
	}

	// k and series selection.
	code, body = getBody(t, h, "/api/history?k=2&series="+telemetry.MetricHubDecoded)
	if code != http.StatusOK {
		t.Fatalf("filtered status %d", code)
	}
	res = history.Result{}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 2 || len(res.Series) != 1 || res.Start != 3 {
		t.Fatalf("filtered: start=%d times=%d series=%d", res.Start, len(res.Times), len(res.Series))
	}

	// Prefix selection and bad-k rejection.
	if code, _ := getBody(t, h, "/api/history?prefix=nomatch_"); code != http.StatusOK {
		t.Fatalf("prefix query status %d", code)
	}
	if code, _ := getBody(t, h, "/api/history?k=-1"); code != http.StatusBadRequest {
		t.Fatalf("negative k accepted: %d", code)
	}
	if code, _ := getBody(t, h, "/api/history?k=zzz"); code != http.StatusBadRequest {
		t.Fatalf("non-numeric k accepted: %d", code)
	}
}

// TestHandlerDash asserts the dashboard is served self-contained: valid
// HTML, inline script and styles, no external asset references.
func TestHandlerDash(t *testing.T) {
	reg := telemetry.New()
	st := newHistStore(t, reg)
	code, body := getBody(t, Handler(Config{Registry: reg, History: st}), "/dash")
	if code != http.StatusOK {
		t.Fatalf("/dash status %d", code)
	}
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "/api/history", "<style>", "<script>"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/dash missing %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "src=\"//", "@import", "url("} {
		if strings.Contains(body, banned) {
			t.Fatalf("/dash references an external asset (%q)", banned)
		}
	}
}

// TestHealthzBreachJSON pins the satellite contract: the 503 body is
// structured JSON carrying rule, metric, value, limit, and window.
func TestHealthzBreachJSON(t *testing.T) {
	w := &Watchdog{}
	w.breaches = append(w.breaches, Breach{
		Rule: "latency-p99", Metric: "hub_e2e_latency_ms",
		Value: 80, Limit: 50, WindowSeconds: 1.5, AtMillis: 1234,
	})
	code, body := getBody(t, Handler(Config{Registry: telemetry.New(), Watchdog: w}), "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("breached /healthz status %d", code)
	}
	var got healthzBody
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("breached /healthz body is not JSON: %v\n%s", err, body)
	}
	if got.Status != "slo breach" || len(got.Breaches) != 1 {
		t.Fatalf("body %+v", got)
	}
	b := got.Breaches[0]
	if b.Rule != "latency-p99" || b.Metric != "hub_e2e_latency_ms" ||
		b.Value != 80 || b.Limit != 50 || b.WindowSeconds != 1.5 || b.AtMillis != 1234 {
		t.Fatalf("breach fields %+v", b)
	}

	// Healthy body stays the plain-text "ok" contract scripts rely on.
	code, body = getBody(t, Handler(Config{Registry: telemetry.New()}), "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthy /healthz: %d %q", code, body)
	}
}

// TestWatchdogBreachForensics drives the full tentpole pipeline by hand:
// a min-rate breach marks the history timeline, the post-breach tail
// completes, the capture lands on the Breach record, and the flight
// recorder dumps the pre/post table through the dedicated forensics
// recorder.
func TestWatchdogBreachForensics(t *testing.T) {
	reg := telemetry.New()
	c := reg.Counter(telemetry.MetricHubDecoded)
	c.Add(100)

	var dump strings.Builder
	tracer := tracing.New(tracing.Config{Capacity: 64, Bounded: true, DumpTo: &dump})
	st := newHistStore(t, reg)
	clk := newFakeClock()
	w := newWatchdog(WatchdogConfig{
		Registry:          reg,
		Interval:          time.Second,
		MinRate:           map[string]float64{telemetry.MetricHubDecoded: 1000},
		Now:               clk.now,
		Tracer:            tracer,
		History:           st,
		PostBreachWindows: 2,
	})
	if w == nil {
		t.Fatal("watchdog not built")
	}

	st.Sample() // pre-breach history
	clk.advance(time.Second)
	w.step() // counter did not move fast enough: min-rate breach

	bs := w.Breaches()
	if len(bs) != 1 || bs[0].Rule != "min-rate" {
		t.Fatalf("breaches %+v", bs)
	}
	if bs[0].History != nil {
		t.Fatal("forensics attached before the post-breach tail completed")
	}
	if bs[0].WindowSeconds != 1 {
		t.Fatalf("breach window %g, want 1", bs[0].WindowSeconds)
	}

	st.Sample()
	st.Sample() // tail complete: forensics fire on the sampler's goroutine

	bs = w.Breaches()
	if bs[0].History == nil {
		t.Fatal("forensics never attached to the breach record")
	}
	if _, ok := bs[0].History.Series[telemetry.MetricHubDecoded]; !ok {
		t.Fatalf("capture missing the breach metric: %+v", bs[0].History.Series)
	}

	out := dump.String()
	for _, want := range []string{"FLIGHT RECORDER", "slo-watchdog", "slo-forensics", "pre/post-breach history", "<- breach"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}

	// The marker is on the query timeline for the dashboard.
	res := st.Query(history.Query{})
	if len(res.Breaches) != 1 || res.Breaches[0].Rule != "min-rate" {
		t.Fatalf("history breach markers %+v", res.Breaches)
	}
}

// TestWatchdogForensicsFlushOnStop covers the run-ends-inside-the-tail
// path: Store.Stop flushes the pending capture so the dump still fires.
func TestWatchdogForensicsFlushOnStop(t *testing.T) {
	reg := telemetry.New()
	var dump strings.Builder
	tracer := tracing.New(tracing.Config{Capacity: 64, Bounded: true, DumpTo: &dump})
	st := newHistStore(t, reg)
	clk := newFakeClock()
	w := newWatchdog(WatchdogConfig{
		Registry: reg,
		Interval: time.Second,
		MinRate:  map[string]float64{telemetry.MetricHubDecoded: 1000},
		Now:      clk.now,
		Tracer:   tracer,
		History:  st,
	})
	st.Sample()
	clk.advance(time.Second)
	w.step()
	st.Stop() // run over before the tail: capture flushes now
	if bs := w.Breaches(); len(bs) == 0 || bs[0].History == nil {
		t.Fatal("Stop did not flush the pending forensics capture")
	}
	if !strings.Contains(dump.String(), "pre/post-breach history") {
		t.Fatalf("no forensics dump after flush:\n%s", dump.String())
	}
}
