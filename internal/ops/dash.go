package ops

// dashHTML is the /dash live dashboard: a single self-contained page
// (inline CSS + JS, zero external assets) that polls /api/history and
// /healthz and renders sparkline strips per series, grouped by subsystem
// prefix, with SLO breach markers on every strip. Counters plot their
// windowed rate, gauges their raw samples, histograms their per-window
// p99. Colors are role tokens declared once in :root-scoped custom
// properties (light and dark steps of the same validated palette);
// breach markers use the reserved status-critical color and always carry
// an icon + label, never color alone.
const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>distscroll ops · history</title>
<style>
  .viz-root {
    color-scheme: light;
    --page:           #f9f9f7;
    --surface-1:      #fcfcfb;
    --text-primary:   #0b0b0b;
    --text-secondary: #52514e;
    --text-muted:     #898781;
    --gridline:       #e1e0d9;
    --baseline:       #c3c2b7;
    --series-1:       #2a78d6;
    --critical:       #d03b3b;
    --good:           #0ca30c;
    --border:         rgba(11,11,11,0.10);
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --page:           #0d0d0d;
      --surface-1:      #1a1a19;
      --text-primary:   #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted:     #898781;
      --gridline:       #2c2c2a;
      --baseline:       #383835;
      --series-1:       #3987e5;
      --critical:       #d03b3b;
      --good:           #0ca30c;
      --border:         rgba(255,255,255,0.10);
    }
  }
  .viz-root {
    margin: 0; padding: 20px;
    background: var(--page); color: var(--text-primary);
    font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
    font-size: 14px;
  }
  h1 { font-size: 16px; font-weight: 600; margin: 0 0 2px; }
  .sub { color: var(--text-muted); font-size: 12px; margin-bottom: 16px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 10px; margin-bottom: 18px; }
  .tile {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 6px; padding: 10px 14px; min-width: 110px;
  }
  .tile .k { color: var(--text-muted); font-size: 11px; }
  .tile .v { font-size: 20px; font-weight: 600; margin-top: 2px; }
  .tile .v.bad { color: var(--critical); }
  .tile .v.good { color: var(--good); }
  .group {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 6px; padding: 8px 14px 10px; margin-bottom: 14px;
  }
  .group h2 {
    font-size: 12px; font-weight: 600; color: var(--text-secondary);
    text-transform: uppercase; letter-spacing: 0.04em; margin: 4px 0 6px;
  }
  .row { display: flex; align-items: center; gap: 10px; padding: 3px 0; }
  .row .name {
    flex: 0 0 280px; color: var(--text-secondary); font-size: 12px;
    overflow: hidden; text-overflow: ellipsis; white-space: nowrap;
  }
  .row .name.shard { padding-left: 16px; color: var(--text-muted); }
  .row .val {
    flex: 0 0 110px; text-align: right; font-variant-numeric: tabular-nums;
    color: var(--text-primary); font-size: 12px;
  }
  .row svg { flex: 1 1 auto; display: block; min-width: 120px; }
  .row .range {
    flex: 0 0 130px; color: var(--text-muted); font-size: 11px;
    font-variant-numeric: tabular-nums; text-align: left;
  }
  .breaches { margin-top: 4px; }
  .breaches .b {
    color: var(--text-primary); font-size: 12px; padding: 2px 0;
    font-variant-numeric: tabular-nums;
  }
  .breaches .b .icon { color: var(--critical); font-weight: 700; }
  #tip {
    position: fixed; display: none; pointer-events: none; z-index: 10;
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 4px; padding: 4px 8px; font-size: 11px;
    color: var(--text-primary); font-variant-numeric: tabular-nums;
    box-shadow: 0 2px 8px rgba(0,0,0,0.25);
  }
  #tip .t { color: var(--text-muted); }
  .empty { color: var(--text-muted); padding: 12px 0; }
</style>
</head>
<body class="viz-root">
<h1>distscroll ops &middot; telemetry history</h1>
<div class="sub" id="meta">connecting&hellip;</div>
<div class="tiles" id="tiles"></div>
<div id="groups"></div>
<div id="tip"></div>
<script>
(function () {
  "use strict";
  var PREFIXES = ["fw_", "rf_", "arq_", "hub_", "net_", "sim_"];
  var SPARK_W = 600, SPARK_H = 34, PAD = 2;
  var tip = document.getElementById("tip");
  var last = null;

  function fmt(v) {
    if (!isFinite(v)) return "0";
    var a = Math.abs(v);
    if (a >= 1e9) return (v / 1e9).toFixed(2) + "G";
    if (a >= 1e6) return (v / 1e6).toFixed(2) + "M";
    if (a >= 1e3) return (v / 1e3).toFixed(1) + "k";
    if (a >= 100 || v === Math.round(v)) return v.toFixed(0);
    return v.toFixed(2);
  }

  function groupOf(name) {
    for (var i = 0; i < PREFIXES.length; i++) {
      if (name.indexOf(PREFIXES[i]) === 0) return PREFIXES[i];
    }
    return "other";
  }

  // seriesValues picks the plotted column: rates/samples for scalars,
  // the per-window p99 for histograms.
  function seriesValues(sd) {
    if (sd.kind === "histogram") return { vals: sd.p99 || [], label: " p99" };
    return { vals: sd.values || [], label: "" };
  }

  function sparkline(vals, breachIdx) {
    var n = vals.length;
    var svg = '<svg viewBox="0 0 ' + SPARK_W + ' ' + SPARK_H + '" preserveAspectRatio="none" height="' + SPARK_H + '">';
    svg += '<line x1="0" y1="' + (SPARK_H - 1) + '" x2="' + SPARK_W + '" y2="' + (SPARK_H - 1) + '" stroke="var(--baseline)" stroke-width="1"/>';
    if (n > 1) {
      var min = Infinity, max = -Infinity, i;
      for (i = 0; i < n; i++) { if (vals[i] < min) min = vals[i]; if (vals[i] > max) max = vals[i]; }
      if (!isFinite(min)) { min = 0; max = 1; }
      if (max === min) max = min + 1;
      var pts = "";
      for (i = 0; i < n; i++) {
        var x = (i / (n - 1)) * (SPARK_W - 2 * PAD) + PAD;
        var y = SPARK_H - PAD - ((vals[i] - min) / (max - min)) * (SPARK_H - 2 * PAD);
        pts += (i ? " " : "") + x.toFixed(1) + "," + y.toFixed(1);
      }
      for (i = 0; i < breachIdx.length; i++) {
        var bx = (breachIdx[i] / (n - 1)) * (SPARK_W - 2 * PAD) + PAD;
        svg += '<line x1="' + bx.toFixed(1) + '" y1="0" x2="' + bx.toFixed(1) + '" y2="' + SPARK_H + '" stroke="var(--critical)" stroke-width="1.5"/>';
      }
      svg += '<polyline fill="none" stroke="var(--series-1)" stroke-width="1.5" points="' + pts + '"/>';
    }
    svg += "</svg>";
    return svg;
  }

  function rangeText(vals) {
    if (!vals.length) return "";
    var min = Infinity, max = -Infinity;
    for (var i = 0; i < vals.length; i++) { if (vals[i] < min) min = vals[i]; if (vals[i] > max) max = vals[i]; }
    return fmt(min) + " – " + fmt(max);
  }

  function tile(k, v, cls) {
    return '<div class="tile"><div class="k">' + k + '</div><div class="v ' + (cls || "") + '">' + v + "</div></div>";
  }

  function lastOf(res, name) {
    var sd = res.series[name];
    if (!sd) return null;
    var vv = seriesValues(sd).vals;
    return vv.length ? vv[vv.length - 1] : null;
  }

  function render(res, health) {
    last = res;
    var names = Object.keys(res.series).sort();
    document.getElementById("meta").textContent =
      res.times.length + " windows retained (capacity " + res.capacity + ", " +
      res.intervalSeconds + "s each, " + res.count + " captured) · polling /api/history every 2s";

    var tiles = "";
    if (health !== null) {
      tiles += tile("healthz", health ? "ok" : "503 breach", health ? "good" : "bad");
    }
    var devices = lastOf(res, "sim_devices");
    if (devices !== null) tiles += tile("devices", fmt(devices));
    var tps = lastOf(res, "sim_ticks_per_second");
    if (tps !== null) tiles += tile("ticks/s", fmt(tps));
    var dec = lastOf(res, "hub_frames_decoded_total");
    if (dec !== null) tiles += tile("decoded/s", fmt(dec));
    var lat = res.series["hub_e2e_latency_ms"];
    if (lat && lat.p99 && lat.p99.length) tiles += tile("e2e p99", fmt(lat.p99[lat.p99.length - 1]) + " ms");
    var nb = (res.breaches || []).length;
    tiles += tile("breaches", String(nb), nb ? "bad" : "");
    document.getElementById("tiles").innerHTML = tiles;

    // Breach markers land on every strip at their window index.
    var breachIdx = [];
    var bs = res.breaches || [];
    for (var i = 0; i < bs.length; i++) {
      var off = bs[i].window - res.start;
      if (off >= 0 && off < res.times.length) breachIdx.push(off);
    }

    var groups = {};
    for (i = 0; i < names.length; i++) {
      var g = groupOf(names[i]);
      (groups[g] = groups[g] || []).push(names[i]);
    }
    var order = PREFIXES.concat(["other"]);
    var html = "";
    for (i = 0; i < order.length; i++) {
      var members = groups[order[i]];
      if (!members) continue;
      html += '<div class="group"><h2>' + (order[i] === "other" ? "other" : order[i] + "*") + "</h2>";
      for (var j = 0; j < members.length; j++) {
        var name = members[j];
        var sd = res.series[name];
        var sv = seriesValues(sd);
        var cur = sv.vals.length ? sv.vals[sv.vals.length - 1] : 0;
        var shard = name.indexOf("{shard=") >= 0;
        html += '<div class="row">' +
          '<div class="name' + (shard ? " shard" : "") + '" title="' + name + '">' + name + sv.label + "</div>" +
          '<div class="val">' + fmt(cur) + "</div>" +
          '<div class="plot" data-name="' + encodeURIComponent(name) + '">' + sparkline(sv.vals, breachIdx) + "</div>" +
          '<div class="range">' + rangeText(sv.vals) + "</div>" +
          "</div>";
      }
      html += "</div>";
    }
    if (bs.length) {
      html += '<div class="group"><h2>SLO breaches</h2><div class="breaches">';
      for (i = 0; i < bs.length; i++) {
        var when = new Date(bs[i].atMillis).toLocaleTimeString();
        html += '<div class="b"><span class="icon">&#9888; breach</span> ' + when + " · " +
          bs[i].rule + " on " + bs[i].metric + ": " + fmt(bs[i].value) +
          " (limit " + fmt(bs[i].limit) + ", window " + bs[i].window + ")</div>";
      }
      html += "</div></div>";
    }
    if (!names.length) html = '<div class="empty">no series retained yet &mdash; waiting for the first sample window</div>';
    document.getElementById("groups").innerHTML = html;
  }

  // Hover layer: crosshair value readout per sparkline.
  document.addEventListener("mousemove", function (ev) {
    var plot = ev.target.closest ? ev.target.closest(".plot") : null;
    if (!plot || !last) { tip.style.display = "none"; return; }
    var name = decodeURIComponent(plot.getAttribute("data-name"));
    var sd = last.series[name];
    if (!sd) { tip.style.display = "none"; return; }
    var vals = seriesValues(sd).vals;
    if (!vals.length) { tip.style.display = "none"; return; }
    var rect = plot.getBoundingClientRect();
    var frac = Math.min(1, Math.max(0, (ev.clientX - rect.left) / rect.width));
    var idx = Math.round(frac * (vals.length - 1));
    var when = last.times[idx] ? new Date(last.times[idx]).toLocaleTimeString() : "";
    tip.innerHTML = '<span class="t">' + when + "</span> &middot; " + fmt(vals[idx]);
    tip.style.display = "block";
    tip.style.left = (ev.clientX + 12) + "px";
    tip.style.top = (ev.clientY + 12) + "px";
  });

  function poll() {
    var health = null;
    fetch("/healthz").then(function (r) { health = r.ok; }).catch(function () {}).then(function () {
      return fetch("/api/history?k=180");
    }).then(function (r) { return r.json(); }).then(function (res) {
      render(res, health);
    }).catch(function (err) {
      document.getElementById("meta").textContent = "poll failed: " + err;
    });
  }
  poll();
  setInterval(poll, 2000);
})();
</script>
</body>
</html>
`
