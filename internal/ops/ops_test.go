package ops

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/telemetry"
)

func getBody(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestHandlerMetrics(t *testing.T) {
	reg := telemetry.New()
	reg.Counter(telemetry.MetricFwCycles).Add(42)
	reg.Gauge(telemetry.MetricSimDevices).Set(7)
	h := Handler(Config{Registry: reg})

	code, body := getBody(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "fw_cycles_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "sim_devices 7") {
		t.Fatalf("/metrics missing gauge:\n%s", body)
	}
}

func TestHandlerVars(t *testing.T) {
	reg := telemetry.New()
	reg.Counter(telemetry.MetricHubEvents).Add(9)
	code, body := getBody(t, Handler(Config{Registry: reg}), "/vars")
	if code != http.StatusOK {
		t.Fatalf("/vars status %d", code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/vars not JSON: %v\n%s", err, body)
	}
	if snap.Counters[telemetry.MetricHubEvents] != 9 {
		t.Fatalf("/vars counters wrong: %+v", snap.Counters)
	}
}

func TestHandlerHealthz(t *testing.T) {
	// Without a watchdog /healthz is always ok.
	code, body := getBody(t, Handler(Config{Registry: telemetry.New()}), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("watchdog-less /healthz: %d %q", code, body)
	}

	// A latched breach flips it to 503 and lists the failure.
	w := &Watchdog{}
	w.breaches = append(w.breaches, Breach{Rule: "min-rate", Metric: "hub_events_total", Value: 0, Limit: 10})
	code, body = getBody(t, Handler(Config{Registry: telemetry.New(), Watchdog: w}), "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("breached /healthz status %d", code)
	}
	if !strings.Contains(body, "min-rate") || !strings.Contains(body, "hub_events_total") {
		t.Fatalf("breached /healthz body %q", body)
	}
}

func TestHandlerIndexAndPprof(t *testing.T) {
	h := Handler(Config{Registry: telemetry.New()})
	code, body := getBody(t, h, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, _ := getBody(t, h, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d", code)
	}
	code, body = getBody(t, h, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
}

// TestServeScrapesLiveRegistry runs the real server end to end: bind port
// 0, scrape over TCP, watch a counter move between scrapes.
func TestServeScrapesLiveRegistry(t *testing.T) {
	reg := telemetry.New()
	reg.Counter(telemetry.MetricHubEvents).Add(1)
	srv, err := Serve("127.0.0.1:0", Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	scrape := func() string {
		resp, err := http.Get(srv.URL() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := scrape(); !strings.Contains(body, "hub_events_total 1") {
		t.Fatalf("first scrape:\n%s", body)
	}
	reg.Counter(telemetry.MetricHubEvents).Add(5)
	if body := scrape(); !strings.Contains(body, "hub_events_total 6") {
		t.Fatalf("second scrape did not see live mutation:\n%s", body)
	}
}

func TestServeNilServerAccessors(t *testing.T) {
	var s *Server
	if s.Addr() != "" || s.URL() != "" || s.Close() != nil {
		t.Fatal("nil server accessors must be inert")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", Config{}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// Watchdog-to-healthz integration: a registry whose counters never move
// breaches the min-rate rule and flips the endpoint.
func TestWatchdogFlipsHealthz(t *testing.T) {
	reg := telemetry.New()
	w := StartWatchdog(WatchdogConfig{
		Registry: reg,
		Interval: 5 * time.Millisecond,
		MinRate:  map[string]float64{telemetry.MetricHubEvents: 1000},
	})
	defer w.Stop()
	h := Handler(Config{Registry: reg, Watchdog: w})
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, _ := getBody(t, h, "/healthz")
		if code == http.StatusServiceUnavailable {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("/healthz never flipped on a drained pipeline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
