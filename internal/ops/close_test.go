package ops

import (
	"io"
	"net/http"
	"sync"
	"testing"

	"github.com/hcilab/distscroll/internal/telemetry"
)

// TestServerCloseIdempotent pins the close-hardening satellite: repeated
// and concurrent closes are one close, all callers seeing the same
// result.
func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	first := srv.Close()
	for i := 0; i < 3; i++ {
		if got := srv.Close(); got != first {
			t.Fatalf("close #%d returned %v, first returned %v", i+2, got, first)
		}
	}

	srv2, err := Serve("127.0.0.1:0", Config{Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv2.Close()
		}()
	}
	wg.Wait()
}

// TestServerCloseDuringScrapes races live scrapes against Close under
// the race detector: in-flight handlers must finish or fail cleanly, and
// the server must shut down without a double-close or handler panic.
func TestServerCloseDuringScrapes(t *testing.T) {
	reg := telemetry.New()
	reg.Counter(telemetry.MetricHubEvents).Add(1)
	srv, err := Serve("127.0.0.1:0", Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	url := srv.URL()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 50; j++ {
				resp, err := http.Get(url + "/metrics")
				if err != nil {
					return // listener gone: expected once Close lands
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		srv.Close()
	}()
	close(start)
	wg.Wait()
	if err := srv.Close(); err != srv.Close() {
		t.Fatal("close result not stable after the race")
	}
}
