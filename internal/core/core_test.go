package core

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
)

func newDev(t *testing.T, root *menu.Node) *Device {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 5
	d, err := NewDevice(cfg, root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

func TestDeviceAssembles(t *testing.T) {
	d := newDev(t, menu.PhoneMenu())
	if err := d.Board.SelfCheck(); err != nil {
		t.Fatalf("self-check: %v", err)
	}
}

func TestScrollEventsReachHost(t *testing.T) {
	d := newDev(t, menu.FlatMenu(10))
	var got []Event
	d.Host.OnScroll(func(e Event) { got = append(got, e) })
	dist, err := d.DistanceForEntry(8)
	if err != nil {
		t.Fatal(err)
	}
	d.SetDistance(dist)
	if err := d.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Cursor() != 8 {
		t.Fatalf("cursor %d", d.Cursor())
	}
	if len(got) == 0 {
		t.Fatal("no host scroll events")
	}
	last := got[len(got)-1]
	if last.Index != 8 {
		t.Fatalf("last scroll index %d", last.Index)
	}
	if last.HostTime <= last.DeviceTime {
		t.Fatalf("host time %v should trail device time %v (radio latency)", last.HostTime, last.DeviceTime)
	}
}

func TestSelectEventCarriesButton(t *testing.T) {
	d := newDev(t, menu.FlatMenu(6))
	var sel []Event
	d.Host.OnSelect(func(e Event) { sel = append(sel, e) })
	dist, err := d.DistanceForEntry(4)
	if err != nil {
		t.Fatal(err)
	}
	d.SetDistance(dist)
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	d.PressSelect()
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0].Index != 4 || sel[0].Button == 0 {
		t.Fatalf("select events: %+v", sel)
	}
}

func TestStateEventsCarryDebugInfo(t *testing.T) {
	d := newDev(t, menu.FlatMenu(6))
	var states []Event
	d.Host.OnState(func(e Event) { states = append(states, e) })
	if err := d.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 {
		t.Fatal("no state telemetry")
	}
	if states[len(states)-1].Voltage <= 0 {
		t.Fatalf("state voltage: %+v", states[len(states)-1])
	}
}

func TestEventLogRetained(t *testing.T) {
	d := newDev(t, menu.FlatMenu(10))
	d.SetDistance(6)
	if err := d.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	evs := d.Host.Events()
	if len(evs) == 0 {
		t.Fatal("log empty")
	}
	d.Host.ResetLog()
	if len(d.Host.Events()) != 0 {
		t.Fatal("log not cleared")
	}
}

func TestHostSeqGapCounting(t *testing.T) {
	h := NewHost(false)
	mk := func(seq uint16) []byte {
		m := rf.Message{Kind: rf.MsgHeartbeat, Seq: seq}
		b, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	h.Handle(mk(0), 0)
	h.Handle(mk(1), 0)
	h.Handle(mk(5), 0) // 3 missing
	if got := h.Stats().MissedSeq; got != 3 {
		t.Fatalf("missed = %d, want 3", got)
	}
}

func TestHostBadFrame(t *testing.T) {
	h := NewHost(false)
	h.Handle([]byte{1, 2}, 0)
	if h.Stats().BadFrames != 1 {
		t.Fatal("bad frame not counted")
	}
}

func TestStopHaltsFirmware(t *testing.T) {
	d := newDev(t, menu.FlatMenu(10))
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	cycles := d.Firmware.Stats().Cycles
	d.Stop()
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Firmware.Stats().Cycles != cycles {
		t.Fatal("firmware still cycling after Stop")
	}
}

func TestRadiolessDevice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Radio = false
	cfg.Seed = 2
	d, err := NewDevice(cfg, menu.FlatMenu(5))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if d.Link != nil {
		t.Fatal("link present despite Radio=false")
	}
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Host.Stats().Events != 0 {
		t.Fatal("host received events without a radio")
	}
}

func TestDeterministicEventStream(t *testing.T) {
	run := func() uint64 {
		cfg := DefaultConfig()
		cfg.Seed = 77
		d, err := NewDevice(cfg, menu.FlatMenu(12))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Stop()
		d.SetDistance(25)
		if err := d.Run(500 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		d.SetDistance(7)
		if err := d.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		return d.Host.Stats().Events
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("event counts differ: %d vs %d", a, b)
	}
}

func TestAccessorsAndTap(t *testing.T) {
	d := newDev(t, menu.PhoneMenu())
	var levels, tapped int
	d.Host.OnLevel(func(Event) { levels++ })
	d.Host.Tap(func(Event) { tapped++ })

	d.SetDistance(12)
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Distance() != 12 {
		t.Fatalf("distance %v", d.Distance())
	}
	if d.Err() != nil {
		t.Fatalf("err %v", d.Err())
	}
	if d.Mapper() == nil {
		t.Fatal("nil mapper")
	}
	if d.TopDisplay() == "" || d.BottomDisplay() == "" {
		t.Fatal("empty display render")
	}
	if tapped == 0 {
		t.Fatal("tap observer not invoked")
	}
	d.PressSelect()
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if levels == 0 {
		t.Fatal("level handler not invoked")
	}
}

func TestPressBackNavigatesUp(t *testing.T) {
	d := newDev(t, menu.PhoneMenu())
	dist, err := d.DistanceForEntry(0)
	if err != nil {
		t.Fatal(err)
	}
	d.SetDistance(dist)
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	d.PressSelect()
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Menu.Depth() != 1 {
		t.Fatalf("depth %d", d.Menu.Depth())
	}
	// The hand is still at the root-level distance; the rebuilt 5-entry
	// mapper will move the cursor, which is fine. Press back.
	d.PressBack()
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Menu.Depth() != 0 {
		t.Fatalf("depth after back %d", d.Menu.Depth())
	}
}
