package core

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/telemetry"
)

// TestSlabObservedStreamsUnperturbed pins the non-perturbation contract of
// the latency model: ticking with a histogram attached must leave every
// counter identical to a plain run, because the modelled latency draws
// hash (slot, seq) instead of consuming the device RNG stream.
func TestSlabObservedStreamsUnperturbed(t *testing.T) {
	cfg := SlabConfig{Devices: 200, Seed: 5, LossProb: 0.1}
	plain, err := NewStateSlab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := NewStateSlab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lat := telemetry.NewLocalHistogram(telemetry.LatencyBucketsMs)
	at := time.Duration(0)
	for i := 0; i < 100; i++ {
		at += 40 * time.Millisecond
		plain.TickStripe(0, plain.Len(), at)
		observed.TickStripeObserved(0, observed.Len(), at, lat)
	}
	pt, ot := plain.Totals(0, plain.Len()), observed.Totals(0, observed.Len())
	if pt != ot {
		t.Fatalf("observation perturbed the simulation:\nplain %+v\nobserved %+v", pt, ot)
	}
	h := lat.Snapshot()
	if h.Count != ot.Sent {
		t.Fatalf("latency observations %d, want one per sent frame (%d)", h.Count, ot.Sent)
	}
	// Every modelled latency is an exact multiple of 0.5 ms, so the sum is
	// exactly representable and twice it must be an integer.
	if twice := 2 * h.Sum; twice != float64(uint64(twice)) {
		t.Fatalf("latency sum %v is not a multiple of 0.5 ms — merge determinism broken", h.Sum)
	}
}

// TestSlabLatencyMergeGroupingIndependent pins the float-exactness that
// makes shard merging worker-count independent: observing the same frames
// grouped into different shards must produce bit-identical merged sums.
func TestSlabLatencyMergeGroupingIndependent(t *testing.T) {
	cfg := SlabConfig{Devices: 120, Seed: 9, LossProb: 0.2}
	run := func(stripes []int) telemetry.HistogramSnapshot {
		slab, err := NewStateSlab(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hists := make([]*telemetry.LocalHistogram, len(stripes))
		for i := range hists {
			hists[i] = telemetry.NewLocalHistogram(telemetry.LatencyBucketsMs)
		}
		at := time.Duration(0)
		for tick := 0; tick < 50; tick++ {
			at += 40 * time.Millisecond
			lo := 0
			for i, hi := range stripes {
				slab.TickStripeObserved(lo, hi, at, hists[i])
				lo = hi
			}
		}
		var merged telemetry.HistogramSnapshot
		s := telemetry.NewSnapshot()
		for _, h := range hists {
			s.MergeHistogram("lat", h.Snapshot())
		}
		merged, _ = s.Histogram("lat")
		return merged
	}
	one := run([]int{120})
	four := run([]int{30, 60, 90, 120})
	if one.Sum != four.Sum || one.Count != four.Count {
		t.Fatalf("merged histogram depends on stripe grouping:\n1 stripe  sum=%v count=%d\n4 stripes sum=%v count=%d",
			one.Sum, one.Count, four.Sum, four.Count)
	}
}

// TestSlabTotalsContribute pins the canonical-name mapping that makes a
// scale run comparable with a session run in one scrape.
func TestSlabTotalsContribute(t *testing.T) {
	tot := SlabTotals{Sent: 100, Delivered: 100, Lost: 7, Retransmits: 7, Switches: 100, Outstanding: 3}
	s := telemetry.NewSnapshot()
	tot.Contribute(s)
	want := map[string]uint64{
		telemetry.MetricFwScrollEvents:   100,
		telemetry.MetricFwFramesSent:     100,
		telemetry.MetricFwIslandSwitches: 100,
		telemetry.MetricRFSent:           107, // first copies + retransmits
		telemetry.MetricRFLost:           7,
		telemetry.MetricRFDelivered:      100,
		telemetry.MetricARQEnqueued:      100,
		telemetry.MetricARQAcked:         100,
		telemetry.MetricARQRetransmits:   7,
		telemetry.MetricHubDecoded:       100,
		telemetry.MetricHubEvents:        100,
	}
	for name, v := range want {
		if got := s.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if len(s.Counters) != len(want) {
		t.Errorf("Contribute wrote %d counters, want %d", len(s.Counters), len(want))
	}
}
