package core

import (
	"sort"
	"sync"
	"time"

	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// HubStats aggregates receive activity across every device a hub serves.
type HubStats struct {
	// Devices is the number of known device sessions.
	Devices int
	// Decoded, Events, MissedSeq, Duplicates, Reordered, Stale, AheadDrops
	// and Resyncs sum the per-device session counters.
	Decoded    uint64
	Events     uint64
	MissedSeq  uint64
	Duplicates uint64
	Reordered  uint64
	Stale      uint64
	AheadDrops uint64
	Resyncs    uint64
	// BadFrames counts payloads that failed to decode; they carry no
	// readable device id, so they are attributed to the hub itself.
	BadFrames uint64
}

// Hub is the fleet-capable host side: it decodes incoming frames once and
// demultiplexes them by device id onto per-device Sessions. Sessions are
// created on demand, so an unknown device showing up on the air gets its
// own accounting rather than polluting another device's. Legacy v0 frames
// (no device field) land on the device-0 session.
//
// A hub is safe for concurrent use by many device goroutines; frames from
// any single device must arrive in order.
type Hub struct {
	keepLogs bool
	metrics  *telemetry.Registry

	mu        sync.Mutex
	sessions  map[uint32]*Session
	order     []uint32 // ids in registration order, for deterministic iteration
	badFrames uint64
}

// NewHub returns an empty hub. With keepLogs set every session retains its
// event log (see Session.Events).
func NewHub(keepLogs bool) *Hub {
	return NewHubWithMetrics(keepLogs, nil)
}

// NewHubWithMetrics returns a hub whose sessions record per-device receive
// counters and end-to-end latency histograms into the registry. The hub
// registers one pull collector: snapshots read the session counters under
// their own locks, so the demux hot path pays nothing beyond the per-frame
// latency bucket increment. A nil registry yields a plain hub.
func NewHubWithMetrics(keepLogs bool, reg *telemetry.Registry) *Hub {
	h := &Hub{keepLogs: keepLogs, metrics: reg, sessions: make(map[uint32]*Session)}
	if reg != nil {
		reg.RegisterCollector(h.collect)
	}
	return h
}

// collect contributes every session's counters, the per-device and
// aggregate latency histograms, and the hub-level gauges to a snapshot.
func (h *Hub) collect(snap *telemetry.Snapshot) {
	h.mu.Lock()
	sessions := make([]*Session, 0, len(h.order))
	for _, id := range h.order {
		sessions = append(sessions, h.sessions[id])
	}
	bad := h.badFrames
	h.mu.Unlock()
	snap.SetGauge(telemetry.MetricHubDevices, float64(len(sessions)))
	snap.AddCounter(telemetry.MetricHubBadFrames, bad)
	for _, s := range sessions {
		collectSession(s, snap)
	}
}

// Session returns the session for the given device id, creating it if the
// device is new. Use it to register per-device handlers before a run.
func (h *Hub) Session(id uint32) *Session {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sessionLocked(id)
}

func (h *Hub) sessionLocked(id uint32) *Session {
	if s, ok := h.sessions[id]; ok {
		return s
	}
	s := NewSession(id, h.keepLogs)
	if h.metrics != nil {
		s.attachMetrics(h.metrics)
	}
	h.sessions[id] = s
	h.order = append(h.order, id)
	return s
}

// Lookup returns the session for a device id without creating one.
func (h *Hub) Lookup(id uint32) (*Session, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[id]
	return s, ok
}

// Devices returns the known device ids in registration order.
func (h *Hub) Devices() []uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint32, len(h.order))
	copy(out, h.order)
	return out
}

// Handle is the shared rf link sink: it decodes one payload and routes it
// to the sending device's session. Many device links may point here.
func (h *Hub) Handle(payload []byte, at time.Duration) {
	var m rf.Message
	if err := m.UnmarshalBinary(payload); err != nil {
		h.mu.Lock()
		h.badFrames++
		h.mu.Unlock()
		return
	}
	h.mu.Lock()
	s := h.sessionLocked(m.Device)
	h.mu.Unlock()
	// Session state is touched outside the hub lock: one device's frames
	// never block another device's.
	s.Consume(m, at)
}

// Stats aggregates the per-device session counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	sessions := make([]*Session, 0, len(h.order))
	for _, id := range h.order {
		sessions = append(sessions, h.sessions[id])
	}
	agg := HubStats{Devices: len(sessions), BadFrames: h.badFrames}
	h.mu.Unlock()
	for _, s := range sessions {
		st := s.Stats()
		agg.Decoded += st.Decoded
		agg.Events += st.Events
		agg.MissedSeq += st.MissedSeq
		agg.Duplicates += st.Duplicates
		agg.Reordered += st.Reordered
		agg.Stale += st.Stale
		agg.AheadDrops += st.AheadDrops
		agg.Resyncs += st.Resyncs
		agg.BadFrames += st.BadFrames
	}
	return agg
}

// DeviceStats returns one device's receive counters.
func (h *Hub) DeviceStats(id uint32) (HostStats, bool) {
	s, ok := h.Lookup(id)
	if !ok {
		return HostStats{}, false
	}
	return s.Stats(), true
}

// PerDeviceStats returns every device's counters keyed by id, with the ids
// sorted ascending for stable reporting.
func (h *Hub) PerDeviceStats() ([]uint32, map[uint32]HostStats) {
	ids := h.Devices()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make(map[uint32]HostStats, len(ids))
	for _, id := range ids {
		if st, ok := h.DeviceStats(id); ok {
			out[id] = st
		}
	}
	return ids, out
}
