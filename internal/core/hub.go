package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// HubStats aggregates receive activity across every device a hub serves.
type HubStats struct {
	// Devices is the number of known device sessions.
	Devices int
	// Decoded, Events, MissedSeq, Duplicates, Reordered, Stale, AheadDrops
	// and Resyncs sum the per-device session counters.
	Decoded    uint64
	Events     uint64
	MissedSeq  uint64
	Duplicates uint64
	Reordered  uint64
	Stale      uint64
	AheadDrops uint64
	Resyncs    uint64
	// BadFrames counts payloads that failed to decode; they carry no
	// readable device id, so they are attributed to the hub itself.
	BadFrames uint64
}

// denseLimit bounds the dense (array-indexed) part of the session table.
// Fleet ids are small and sequential (1..n), so almost every lookup is one
// bounds check and one slice index; ids above the limit fall back to a map
// so a stray 32-bit id cannot balloon the array.
const denseLimit = 1 << 20

// sessionTable is one immutable snapshot of the hub's device→session
// routing state. Lookups go through an atomic pointer load, so the demux
// hot path never takes a lock; registration builds a fresh table and swaps
// it in (read-mostly copy-on-write — sessions are created once per device
// and then live for the whole run).
type sessionTable struct {
	dense  []*Session          // ids < len(dense), nil when unregistered
	sparse map[uint32]*Session // ids >= denseLimit (rare)
}

// lookup returns the session for a device id, or nil.
func (t *sessionTable) lookup(id uint32) *Session {
	if id < uint32(len(t.dense)) {
		return t.dense[id]
	}
	if t.sparse == nil {
		return nil
	}
	return t.sparse[id]
}

var emptyTable = &sessionTable{}

// Hub is the fleet-capable host side: it decodes incoming frames once and
// demultiplexes them by device id onto per-device Sessions. Sessions are
// created on demand, so an unknown device showing up on the air gets its
// own accounting rather than polluting another device's. Legacy v0 frames
// (no device field) land on the device-0 session.
//
// A hub is safe for concurrent use by many device goroutines; frames from
// any single device must arrive in order. The steady-state demux path is
// contention-free: an atomic table load, a slice index and the per-device
// session state — no global lock, so 64 device goroutines demux without
// serialising, and a corrupt-frame storm only touches an atomic counter.
type Hub struct {
	keepLogs bool
	metrics  *telemetry.Registry

	table     atomic.Pointer[sessionTable]
	badFrames atomic.Uint64

	mu    sync.Mutex // guards table swaps and the registration order
	order []uint32   // ids in registration order, for deterministic iteration
}

// NewHub returns an empty hub. With keepLogs set every session retains its
// event log (see Session.Events).
func NewHub(keepLogs bool) *Hub {
	return NewHubWithMetrics(keepLogs, nil)
}

// NewHubWithMetrics returns a hub whose sessions record per-device receive
// counters and end-to-end latency histograms into the registry. The hub
// registers one pull collector: snapshots read the session counters as
// atomics, so the demux hot path pays nothing beyond the per-frame
// latency bucket increment. A nil registry yields a plain hub.
func NewHubWithMetrics(keepLogs bool, reg *telemetry.Registry) *Hub {
	h := &Hub{keepLogs: keepLogs, metrics: reg}
	h.table.Store(emptyTable)
	if reg != nil {
		reg.RegisterCollector(h.collect)
	}
	return h
}

// NewHubDetached returns a hub whose sessions are instrumented against the
// registry exactly like NewHubWithMetrics, but which does NOT register its
// own pull collector. The networked gateway uses it for hub shards: each
// shard's sessions still record per-device counters and latency histograms,
// while the gateway registers one collector of its own that aggregates
// every shard via Collect — a per-shard collector would overwrite the
// hub_devices gauge with the last shard's count instead of the fleet total.
func NewHubDetached(keepLogs bool, reg *telemetry.Registry) *Hub {
	h := &Hub{keepLogs: keepLogs, metrics: reg}
	h.table.Store(emptyTable)
	return h
}

// sessions returns every session in registration order.
func (h *Hub) sessionsInOrder() []*Session {
	h.mu.Lock()
	t := h.table.Load()
	out := make([]*Session, 0, len(h.order))
	for _, id := range h.order {
		out = append(out, t.lookup(id))
	}
	h.mu.Unlock()
	return out
}

// collect contributes every session's counters, the per-device and
// aggregate latency histograms, and the hub-level gauges to a snapshot.
func (h *Hub) collect(snap *telemetry.Snapshot) {
	snap.SetGauge(telemetry.MetricHubDevices, float64(h.Collect(snap)))
}

// Collect contributes every session's counters, the per-device and
// aggregate latency histograms, and the hub-level bad-frame counter to a
// snapshot, returning the session count. Unlike the registered collector it
// does not set the hub_devices gauge, so several hubs (the gateway's
// shards) can fold into one snapshot additively and the caller sets the
// gauge once from the sum.
func (h *Hub) Collect(snap *telemetry.Snapshot) int {
	sessions := h.sessionsInOrder()
	snap.AddCounter(telemetry.MetricHubBadFrames, h.badFrames.Load())
	for _, s := range sessions {
		collectSession(s, snap)
	}
	return len(sessions)
}

// Session returns the session for the given device id, creating it if the
// device is new. Use it to register per-device handlers before a run.
func (h *Hub) Session(id uint32) *Session {
	if s := h.table.Load().lookup(id); s != nil {
		return s
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// Re-check under the lock: another goroutine may have registered the
	// device between our lookup and the lock.
	cur := h.table.Load()
	if s := cur.lookup(id); s != nil {
		return s
	}
	s := NewSession(id, h.keepLogs)
	if h.metrics != nil {
		s.attachMetrics(h.metrics)
	}
	next := &sessionTable{}
	if id < denseLimit {
		n := len(cur.dense)
		for n <= int(id) {
			if n == 0 {
				n = 8
			} else {
				n *= 2
			}
		}
		next.dense = make([]*Session, n)
		copy(next.dense, cur.dense)
		next.dense[id] = s
		next.sparse = cur.sparse
	} else {
		next.dense = cur.dense
		next.sparse = make(map[uint32]*Session, len(cur.sparse)+1)
		for k, v := range cur.sparse {
			next.sparse[k] = v
		}
		next.sparse[id] = s
	}
	h.table.Store(next)
	h.order = append(h.order, id)
	return s
}

// Lookup returns the session for a device id without creating one.
func (h *Hub) Lookup(id uint32) (*Session, bool) {
	s := h.table.Load().lookup(id)
	return s, s != nil
}

// Devices returns the known device ids in registration order.
func (h *Hub) Devices() []uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint32, len(h.order))
	copy(out, h.order)
	return out
}

// Handle is the shared rf link sink: it decodes one payload and routes it
// to the sending device's session. Many device links may point here. The
// payload is fully decoded before returning, so it may alias a transport's
// reusable buffer; the steady-state path performs no allocation and takes
// no lock.
func (h *Hub) Handle(payload []byte, at time.Duration) {
	var m rf.Message
	if !m.Decode(payload) {
		h.badFrames.Add(1)
		return
	}
	h.Consume(m, at)
}

// Consume routes an already-decoded message to the sending device's
// session — the decode-once entry point for ingest paths (the networked
// gateway) that decoded the frame at the wire edge. Same concurrency
// contract as Handle.
func (h *Hub) Consume(m rf.Message, at time.Duration) {
	s := h.table.Load().lookup(m.Device)
	if s == nil {
		s = h.Session(m.Device)
	}
	// Session state is touched without any hub lock: one device's frames
	// never block another device's.
	s.Consume(m, at)
}

// ConsumeBatch routes a batch of already-decoded messages at one timestamp.
// It is the single-writer drain path for a pipelined ingest tier: the
// routing table is loaded once per batch instead of once per message, and is
// only re-loaded after an unknown device forces a registration. The optional
// pre hook runs before each message is consumed, with the resolved session —
// the gateway uses it to record the ingest trace hop without a second table
// lookup. Same concurrency contract as Consume: frames from any single
// device must arrive in order (here, within and across batches).
func (h *Hub) ConsumeBatch(ms []rf.Message, at time.Duration, pre func(*Session, rf.Message)) {
	t := h.table.Load()
	for _, m := range ms {
		s := t.lookup(m.Device)
		if s == nil {
			s = h.Session(m.Device)
			t = h.table.Load()
		}
		if pre != nil {
			pre(s, m)
		}
		s.Consume(m, at)
	}
}

// Stats aggregates the per-device session counters.
func (h *Hub) Stats() HubStats {
	sessions := h.sessionsInOrder()
	agg := HubStats{Devices: len(sessions), BadFrames: h.badFrames.Load()}
	for _, s := range sessions {
		st := s.Stats()
		agg.Decoded += st.Decoded
		agg.Events += st.Events
		agg.MissedSeq += st.MissedSeq
		agg.Duplicates += st.Duplicates
		agg.Reordered += st.Reordered
		agg.Stale += st.Stale
		agg.AheadDrops += st.AheadDrops
		agg.Resyncs += st.Resyncs
		agg.BadFrames += st.BadFrames
	}
	return agg
}

// DeviceStats returns one device's receive counters.
func (h *Hub) DeviceStats(id uint32) (HostStats, bool) {
	s, ok := h.Lookup(id)
	if !ok {
		return HostStats{}, false
	}
	return s.Stats(), true
}

// PerDeviceStats returns every device's counters keyed by id, with the ids
// sorted ascending for stable reporting.
func (h *Hub) PerDeviceStats() ([]uint32, map[uint32]HostStats) {
	ids := h.Devices()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make(map[uint32]HostStats, len(ids))
	for _, id := range ids {
		if st, ok := h.DeviceStats(id); ok {
			out[id] = st
		}
	}
	return ids, out
}
