package core

import (
	"sync"
	"time"

	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// Session is the host-side receive state for ONE device: sequence-number
// accounting, the retained event log and the registered handlers. A Hub
// owns one session per device id; the single-device Host is a thin wrapper
// around one session.
//
// A session is safe for concurrent use, but frames for one device must
// arrive in order (in the simulator they do: each device's link delivers on
// that device's scheduler).
type Session struct {
	device uint32

	mu       sync.Mutex
	onScroll func(Event)
	onSelect func(Event)
	onLevel  func(Event)
	onState  func(Event)
	taps     []func(Event)

	stats   HostStats
	lastSeq uint16
	haveSeq bool
	events  []Event // retained log for tests, replay and the study harness
	keepLog bool

	// Reliable (ARQ) receive state. With reliable set, frames are admitted
	// strictly in sequence order starting at seq 0, every frame is answered
	// with a cumulative ack through ackFn, and retransmit duplicates are
	// dropped. When the sender abandons frames (queue overflow or retry
	// budget) it announces the hole with an explicit rf.MsgSkip notice
	// occupying the abandoned range, so the receiver advances past gaps
	// with certainty instead of inferring them from retransmission
	// patterns — an inference that go-back-N makes unsound, since a
	// repeated ahead frame may simply be a twice-lost window base.
	reliable bool
	ackFn    func(cum uint16)
	awaitSeq uint16

	// lat records per-frame end-to-end pipeline latency (device stamp →
	// host arrival, milliseconds). It is a LocalHistogram synchronised by
	// s.mu — which Consume already holds — so the instrumented hot path
	// pays only the bucket increment, no extra atomics. Nil when the
	// session is uninstrumented; Observe on nil is a no-op.
	lat *telemetry.LocalHistogram
	// dispatch records handler+tap dispatch wall time. It is only sampled
	// when a handler or tap is actually registered.
	dispatch *telemetry.Histogram
}

// NewSession returns a session for the given device id. With keepLog set
// every event is retained and retrievable via Events.
func NewSession(device uint32, keepLog bool) *Session {
	return &Session{device: device, keepLog: keepLog}
}

// Device returns the device id this session tracks.
func (s *Session) Device() uint32 { return s.device }

// EnableReliable switches the session into reliable (ARQ) receive mode:
// frames are admitted strictly in sequence order starting at seq 0 (the
// firmware's initial sequence number) and every frame — accepted or dropped
// — is answered by passing the cumulative ack to ack, which typically feeds
// an rf.ReverseLink. Call before any frame flows.
func (s *Session) EnableReliable(ack func(cum uint16)) {
	s.mu.Lock()
	s.reliable = true
	s.ackFn = ack
	s.awaitSeq = 0
	s.mu.Unlock()
}

// admitLocked decides whether a reliable-mode frame enters the pipeline.
// Caller holds s.mu. It returns false for frames that must be dropped
// (stale retransmits, ahead-of-sequence arrivals); either way the caller
// re-acks the cumulative position afterwards.
func (s *Session) admitLocked(seq uint16) bool {
	switch {
	case seq == s.awaitSeq:
		// In order: the common case.
	case seq-s.awaitSeq >= 0x8000:
		// Already consumed — a retransmit whose ack was lost or late. The
		// re-ack the caller sends repairs the sender's view.
		s.stats.Stale++
		return false
	default:
		// Ahead of sequence: a predecessor is still in flight (or lost and
		// awaiting retransmission — go-back-N resends it before this frame)
		// or was abandoned, in which case the sender's MsgSkip notice
		// precedes this frame in the stream. Either way, defer: the stream
		// is seq-contiguous by construction, so the awaited position always
		// arrives eventually. Never guess.
		s.stats.AheadDrops++
		return false
	}
	s.awaitSeq = seq + 1
	s.lastSeq = seq
	s.haveSeq = true
	return true
}

// consumeSkipLocked admits a sender abandonment notice: the sender dropped
// the count consecutive sequence numbers ending at m.Seq (queue overflow or
// retry budget) and will never transmit them. Caller holds s.mu; the caller
// re-acks the cumulative position afterwards either way.
func (s *Session) consumeSkipLocked(m rf.Message) {
	count := uint16(m.Index)
	if count == 0 || count >= 0x8000 {
		// A skip covering half the sequence space (or nothing) is
		// malformed — no wrapping comparison can place it.
		s.stats.BadFrames++
		return
	}
	last := m.Seq
	first := last - count + 1
	switch {
	case last-s.awaitSeq >= 0x8000:
		// The whole range is already behind us — a retransmitted notice
		// whose ack was lost. The re-ack repairs the sender's view.
		s.stats.Stale++
	case s.awaitSeq-first >= 0x8000:
		// The notice is ahead of sequence: frames before the hole are still
		// in flight. Go-back-N resends them first; defer.
		s.stats.AheadDrops++
	default:
		// awaitSeq falls inside [first, last]: everything up to and
		// including last is abandoned. Advance past the hole, counting the
		// loss exactly.
		s.stats.MissedSeq += uint64(last - s.awaitSeq + 1)
		s.stats.Resyncs++
		s.awaitSeq = last + 1
	}
}

// attachMetrics equips the session with a latency histogram and a shared
// dispatch-time histogram from the registry. Call before frames flow.
func (s *Session) attachMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.lat = telemetry.NewLocalHistogram(telemetry.LatencyBucketsMs)
	s.dispatch = reg.Histogram(telemetry.MetricHubDispatch, telemetry.DispatchBucketsSec)
	s.mu.Unlock()
}

// latencySnapshot returns the end-to-end latency histogram, or false when
// the session is uninstrumented.
func (s *Session) latencySnapshot() (telemetry.HistogramSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lat == nil {
		return telemetry.HistogramSnapshot{}, false
	}
	return s.lat.Snapshot(), true
}

// collectSession contributes one session's receive counters and latency
// histogram to a telemetry snapshot, under both the per-device series and
// the fleet aggregate. Shared by the Hub collector and instrumented Hosts.
func collectSession(s *Session, snap *telemetry.Snapshot) {
	st := s.Stats()
	snap.AddCounter(telemetry.MetricHubDecoded, st.Decoded)
	snap.AddCounter(telemetry.MetricHubEvents, st.Events)
	snap.AddCounter(telemetry.MetricHubBadFrames, st.BadFrames)
	snap.AddCounter(telemetry.MetricHubSeqGaps, st.MissedSeq)
	snap.AddCounter(telemetry.MetricHubDuplicates, st.Duplicates)
	snap.AddCounter(telemetry.MetricHubReordered, st.Reordered)
	snap.AddCounter(telemetry.MetricHubStale, st.Stale)
	snap.AddCounter(telemetry.MetricHubAheadDrops, st.AheadDrops)
	snap.AddCounter(telemetry.MetricHubResyncs, st.Resyncs)
	if h, ok := s.latencySnapshot(); ok {
		snap.MergeHistogram(telemetry.DeviceLatencyName(s.Device()), h)
		snap.MergeHistogram(telemetry.MetricHubE2ELatency, h)
	}
}

// OnScroll registers the scroll handler.
func (s *Session) OnScroll(fn func(Event)) { s.mu.Lock(); s.onScroll = fn; s.mu.Unlock() }

// OnSelect registers the selection handler.
func (s *Session) OnSelect(fn func(Event)) { s.mu.Lock(); s.onSelect = fn; s.mu.Unlock() }

// OnLevel registers the level-change handler.
func (s *Session) OnLevel(fn func(Event)) { s.mu.Lock(); s.onLevel = fn; s.mu.Unlock() }

// OnState registers the debug-state handler.
func (s *Session) OnState(fn func(Event)) { s.mu.Lock(); s.onState = fn; s.mu.Unlock() }

// Tap registers an additional observer invoked for every decoded event,
// independent of the per-kind handlers (used by trace recorders).
func (s *Session) Tap(fn func(Event)) { s.mu.Lock(); s.taps = append(s.taps, fn); s.mu.Unlock() }

// Stats returns the session statistics.
func (s *Session) Stats() HostStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Events returns the retained event log (empty unless keepLog).
func (s *Session) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// ResetLog clears the retained event log.
func (s *Session) ResetLog() {
	s.mu.Lock()
	s.events = s.events[:0]
	s.mu.Unlock()
}

// Handle decodes one raw payload and consumes it. It is a valid rf link
// sink for a device wired directly to this session.
func (s *Session) Handle(payload []byte, at time.Duration) {
	var m rf.Message
	if err := m.UnmarshalBinary(payload); err != nil {
		s.mu.Lock()
		s.stats.BadFrames++
		s.mu.Unlock()
		return
	}
	s.Consume(m, at)
}

// Consume processes one already-decoded message: sequence accounting, event
// log and handler dispatch. The Hub routes decoded messages here so the
// payload is only unmarshalled once per frame.
func (s *Session) Consume(m rf.Message, at time.Duration) {
	s.mu.Lock()
	s.stats.Decoded++
	var ack func(cum uint16)
	var cum uint16
	if s.reliable {
		if m.Kind == rf.MsgSkip {
			// A sender abandonment notice advances the sequence position
			// but carries no event; ack the new position and stop.
			s.consumeSkipLocked(m)
			ack, cum = s.ackFn, s.awaitSeq-1
			s.mu.Unlock()
			if ack != nil {
				ack(cum)
			}
			return
		}
		admitted := s.admitLocked(m.Seq)
		ack, cum = s.ackFn, s.awaitSeq-1
		if !admitted {
			s.mu.Unlock()
			if ack != nil {
				ack(cum)
			}
			return
		}
	} else if s.haveSeq {
		// Wrapping diff: a gap below 0x8000 is frames lost on air; at or
		// above it the frame is a late reordering, not a loss.
		switch gap := m.Seq - s.lastSeq; {
		case gap == 0:
			s.stats.Duplicates++
		case gap == 1:
			// In order.
		case gap < 0x8000:
			s.stats.MissedSeq += uint64(gap - 1)
		default:
			s.stats.Reordered++
		}
	}
	s.lastSeq = m.Seq
	s.haveSeq = true
	if s.lat != nil {
		const perMs = 1.0 / float64(time.Millisecond)
		s.lat.Observe(float64(at-m.Timestamp()) * perMs)
	}

	ev := Event{
		Kind:       m.Kind,
		Device:     m.Device,
		Index:      int(m.Index),
		Button:     m.Button,
		DeviceTime: m.Timestamp(),
		HostTime:   at,
		Voltage:    float64(m.VoltageMV) / 1000,
		Island:     int(m.Island),
	}
	s.stats.Events++
	if s.keepLog {
		s.events = append(s.events, ev)
	}
	taps := s.taps
	dispatch := s.dispatch
	var handler func(Event)
	switch m.Kind {
	case rf.MsgScroll:
		handler = s.onScroll
	case rf.MsgSelect:
		handler = s.onSelect
	case rf.MsgLevel:
		handler = s.onLevel
	case rf.MsgState:
		handler = s.onState
	}
	s.mu.Unlock()

	// The cumulative ack goes out after the lock is released: the ack path
	// (ReverseLink → ARQ) runs on the sending device's scheduler and must
	// not re-enter session state under our mutex.
	if ack != nil {
		ack(cum)
	}

	// Handlers run outside the lock so they may call back into the
	// session (Stats, Events) without deadlocking. Dispatch time is only
	// sampled when there is something to dispatch to, so the bare demux
	// path never touches the wall clock.
	if handler == nil && len(taps) == 0 {
		return
	}
	var start time.Time
	if dispatch != nil {
		start = time.Now()
	}
	for _, tap := range taps {
		tap(ev)
	}
	if handler != nil {
		handler(ev)
	}
	if dispatch != nil {
		dispatch.Observe(time.Since(start).Seconds())
	}
}
