package core

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

// Session is the host-side receive state for ONE device: sequence-number
// accounting, the retained event log and the registered handlers. A Hub
// owns one session per device id; the single-device Host is a thin wrapper
// around one session.
//
// The receive path is lock-free in the steady state: counters are atomic
// (so telemetry reporters may snapshot a running fleet), the sequence state
// is single-writer (frames for one device must arrive in order, delivered
// by that device's goroutine — in the simulator they are: each device's
// link delivers on that device's scheduler), and handler registration is a
// read-mostly copy-on-write snapshot. Only the retained event log and the
// latency histogram take the session mutex, and only when enabled.
type Session struct {
	device  uint32
	keepLog bool

	// handlers is the copy-on-write snapshot of the registered callbacks;
	// Consume loads it once per frame without locking.
	handlers atomic.Pointer[sessionHandlers]

	stats sessionCounters

	// Single-writer receive state: only the goroutine delivering this
	// device's frames touches these, so they need no synchronisation.
	lastSeq uint16
	haveSeq bool

	// Reliable (ARQ) receive state. With reliable set, frames are admitted
	// strictly in sequence order starting at seq 0, every frame is answered
	// with a cumulative ack through ackFn, and retransmit duplicates are
	// dropped. When the sender abandons frames (queue overflow or retry
	// budget) it announces the hole with an explicit rf.MsgSkip notice
	// occupying the abandoned range, so the receiver advances past gaps
	// with certainty instead of inferring them from retransmission
	// patterns — an inference that go-back-N makes unsound, since a
	// repeated ahead frame may simply be a twice-lost window base.
	// Configured before frames flow (EnableReliable), then read-only on the
	// receive path.
	reliable bool
	ackFn    func(cum uint16)
	awaitSeq uint16

	// trace is the per-device flight recorder, written by the same
	// single-writer goroutine as the sequence state. The demux hot path
	// records exactly ONE hub.demux event per frame (the session outcome is
	// packed into Arg2, so there is no second store); traceSLO caches the
	// tracer's latency objective so the SLO check costs one branch. Both
	// are configured before frames flow (AttachTracer), then read-only.
	trace    *tracing.Recorder
	traceSLO time.Duration

	// mu guards the retained event log, handler registration writes and the
	// latency histogram. The bare demux path (no log, no metrics) never
	// takes it.
	mu     sync.Mutex
	events []Event // retained log for tests, replay and the study harness

	// lat records per-frame end-to-end pipeline latency (device stamp →
	// host arrival, milliseconds). It is a LocalHistogram synchronised by
	// s.mu, so the instrumented hot path pays one short critical section
	// for the bucket increment. Nil when the session is uninstrumented,
	// which costs a single predictable branch.
	lat *telemetry.LocalHistogram
	// dispatch records handler+tap dispatch wall time. It is only sampled
	// when a handler or tap is actually registered.
	dispatch *telemetry.Histogram
}

// sessionHandlers is one immutable registration snapshot.
type sessionHandlers struct {
	onScroll func(Event)
	onSelect func(Event)
	onLevel  func(Event)
	onState  func(Event)
	taps     []func(Event)
}

// forKind returns the per-kind handler.
func (h *sessionHandlers) forKind(k rf.MsgKind) func(Event) {
	switch k {
	case rf.MsgScroll:
		return h.onScroll
	case rf.MsgSelect:
		return h.onSelect
	case rf.MsgLevel:
		return h.onLevel
	case rf.MsgState:
		return h.onState
	}
	return nil
}

// sessionCounters are the session's receive counters. They are atomic so a
// telemetry reporter may snapshot a running fleet from another goroutine;
// the receive path itself is single-goroutine per device, so every add is
// uncontended.
type sessionCounters struct {
	decoded, badFrames               atomic.Uint64
	missedSeq, duplicates, reordered atomic.Uint64
	stale, aheadDrops, resyncs       atomic.Uint64
	// dropped counts decoded frames that did not become events (reliable-mode
	// skip notices, stale retransmits, ahead-of-sequence arrivals). Events is
	// derived as decoded - dropped, so the in-order hot path pays exactly one
	// atomic add per frame instead of two; only the rare drop paths pay a
	// second.
	dropped atomic.Uint64
}

func (c *sessionCounters) stats() HostStats {
	// Load dropped before decoded: every dropped increment is preceded by a
	// decoded increment, so this order can only under-count drops, keeping
	// the derived Events non-negative. A mid-run snapshot may transiently
	// over-count Events by the frames in flight between the two loads;
	// quiescent reads are exact.
	dropped := c.dropped.Load()
	decoded := c.decoded.Load()
	return HostStats{
		Events:     decoded - dropped,
		Decoded:    decoded,
		BadFrames:  c.badFrames.Load(),
		MissedSeq:  c.missedSeq.Load(),
		Duplicates: c.duplicates.Load(),
		Reordered:  c.reordered.Load(),
		Stale:      c.stale.Load(),
		AheadDrops: c.aheadDrops.Load(),
		Resyncs:    c.resyncs.Load(),
	}
}

// NewSession returns a session for the given device id. With keepLog set
// every event is retained and retrievable via Events.
func NewSession(device uint32, keepLog bool) *Session {
	return &Session{device: device, keepLog: keepLog}
}

// Device returns the device id this session tracks.
func (s *Session) Device() uint32 { return s.device }

// EnableReliable switches the session into reliable (ARQ) receive mode:
// frames are admitted strictly in sequence order starting at seq 0 (the
// firmware's initial sequence number) and every frame — accepted or dropped
// — is answered by passing the cumulative ack to ack, which typically feeds
// an rf.ReverseLink. Call before any frame flows.
func (s *Session) EnableReliable(ack func(cum uint16)) {
	s.reliable = true
	s.ackFn = ack
	s.awaitSeq = 0
}

// AttachTracer equips the session with a per-device flight recorder: every
// demuxed frame records one hub.demux span event carrying its origin tick
// and admission outcome, and a frame whose end-to-end latency exceeds the
// tracer's SLO raises an anomaly. Call before frames flow; a nil recorder
// disables tracing.
func (s *Session) AttachTracer(r *tracing.Recorder) {
	s.trace = r
	s.traceSLO = r.SLO()
}

// Tracer returns the attached flight recorder, nil when tracing is off.
// Ingest paths in front of the session (the networked gateway) use it to
// record their own hop on the same per-device recorder, preserving the
// single-writer contract: whoever delivers a device's frames is the only
// writer of its recorder.
func (s *Session) Tracer() *tracing.Recorder { return s.trace }

// AwaitSeq returns the next sequence number the reliable receive state
// expects — after a full drain it equals the sender's total sequenced
// frames, which is the invariant the fleet's post-drain gap audit checks.
func (s *Session) AwaitSeq() uint16 { return s.awaitSeq }

// admit decides whether a reliable-mode frame enters the pipeline. It
// returns false for frames that must be dropped (stale retransmits,
// ahead-of-sequence arrivals); either way the caller re-acks the cumulative
// position afterwards.
func (s *Session) admit(seq uint16) bool {
	switch {
	case seq == s.awaitSeq:
		// In order: the common case.
	case seq-s.awaitSeq >= 0x8000:
		// Already consumed — a retransmit whose ack was lost or late. The
		// re-ack the caller sends repairs the sender's view.
		s.stats.stale.Add(1)
		return false
	default:
		// Ahead of sequence: a predecessor is still in flight (or lost and
		// awaiting retransmission — go-back-N resends it before this frame)
		// or was abandoned, in which case the sender's MsgSkip notice
		// precedes this frame in the stream. Either way, defer: the stream
		// is seq-contiguous by construction, so the awaited position always
		// arrives eventually. Never guess.
		s.stats.aheadDrops.Add(1)
		return false
	}
	s.awaitSeq = seq + 1
	s.lastSeq = seq
	s.haveSeq = true
	return true
}

// consumeSkip admits a sender abandonment notice: the sender dropped the
// count consecutive sequence numbers ending at m.Seq (queue overflow or
// retry budget) and will never transmit them. The caller re-acks the
// cumulative position afterwards either way. The returned outcome is the
// trace classification of the notice.
func (s *Session) consumeSkip(m rf.Message) tracing.Outcome {
	count := uint16(m.Index)
	if count == 0 || count >= 0x8000 {
		// A skip covering half the sequence space (or nothing) is
		// malformed — no wrapping comparison can place it.
		s.stats.badFrames.Add(1)
		return tracing.OutcomeResync
	}
	last := m.Seq
	first := last - count + 1
	switch {
	case last-s.awaitSeq >= 0x8000:
		// The whole range is already behind us — a retransmitted notice
		// whose ack was lost. The re-ack repairs the sender's view.
		s.stats.stale.Add(1)
		return tracing.OutcomeStale
	case s.awaitSeq-first >= 0x8000:
		// The notice is ahead of sequence: frames before the hole are still
		// in flight. Go-back-N resends them first; defer.
		s.stats.aheadDrops.Add(1)
		return tracing.OutcomeAhead
	default:
		// awaitSeq falls inside [first, last]: everything up to and
		// including last is abandoned. Advance past the hole, counting the
		// loss exactly.
		s.stats.missedSeq.Add(uint64(last - s.awaitSeq + 1))
		s.stats.resyncs.Add(1)
		s.awaitSeq = last + 1
		return tracing.OutcomeResync
	}
}

// attachMetrics equips the session with a latency histogram and a shared
// dispatch-time histogram from the registry. Call before frames flow.
func (s *Session) attachMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.lat = telemetry.NewLocalHistogram(telemetry.LatencyBucketsMs)
	s.dispatch = reg.Histogram(telemetry.MetricHubDispatch, telemetry.DispatchBucketsSec)
	s.mu.Unlock()
}

// latencySnapshot returns the end-to-end latency histogram, or false when
// the session is uninstrumented.
func (s *Session) latencySnapshot() (telemetry.HistogramSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lat == nil {
		return telemetry.HistogramSnapshot{}, false
	}
	return s.lat.Snapshot(), true
}

// collectSession contributes one session's receive counters and latency
// histogram to a telemetry snapshot, under both the per-device series and
// the fleet aggregate. Shared by the Hub collector and instrumented Hosts.
func collectSession(s *Session, snap *telemetry.Snapshot) {
	st := s.Stats()
	snap.AddCounter(telemetry.MetricHubDecoded, st.Decoded)
	snap.AddCounter(telemetry.MetricHubEvents, st.Events)
	snap.AddCounter(telemetry.MetricHubBadFrames, st.BadFrames)
	snap.AddCounter(telemetry.MetricHubSeqGaps, st.MissedSeq)
	snap.AddCounter(telemetry.MetricHubDuplicates, st.Duplicates)
	snap.AddCounter(telemetry.MetricHubReordered, st.Reordered)
	snap.AddCounter(telemetry.MetricHubStale, st.Stale)
	snap.AddCounter(telemetry.MetricHubAheadDrops, st.AheadDrops)
	snap.AddCounter(telemetry.MetricHubResyncs, st.Resyncs)
	if h, ok := s.latencySnapshot(); ok {
		snap.MergeHistogram(telemetry.DeviceLatencyName(s.Device()), h)
		snap.MergeHistogram(telemetry.MetricHubE2ELatency, h)
	}
}

// updateHandlers applies one registration change as a copy-on-write swap.
func (s *Session) updateHandlers(mut func(*sessionHandlers)) {
	s.mu.Lock()
	next := &sessionHandlers{}
	if cur := s.handlers.Load(); cur != nil {
		*next = *cur
		next.taps = append([]func(Event){}, cur.taps...)
	}
	mut(next)
	s.handlers.Store(next)
	s.mu.Unlock()
}

// OnScroll registers the scroll handler.
func (s *Session) OnScroll(fn func(Event)) {
	s.updateHandlers(func(h *sessionHandlers) { h.onScroll = fn })
}

// OnSelect registers the selection handler.
func (s *Session) OnSelect(fn func(Event)) {
	s.updateHandlers(func(h *sessionHandlers) { h.onSelect = fn })
}

// OnLevel registers the level-change handler.
func (s *Session) OnLevel(fn func(Event)) {
	s.updateHandlers(func(h *sessionHandlers) { h.onLevel = fn })
}

// OnState registers the debug-state handler.
func (s *Session) OnState(fn func(Event)) {
	s.updateHandlers(func(h *sessionHandlers) { h.onState = fn })
}

// Tap registers an additional observer invoked for every decoded event,
// independent of the per-kind handlers (used by trace recorders).
func (s *Session) Tap(fn func(Event)) {
	s.updateHandlers(func(h *sessionHandlers) { h.taps = append(h.taps, fn) })
}

// Stats returns the session statistics.
func (s *Session) Stats() HostStats { return s.stats.stats() }

// Events returns the retained event log (empty unless keepLog).
func (s *Session) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// ResetLog clears the retained event log.
func (s *Session) ResetLog() {
	s.mu.Lock()
	s.events = s.events[:0]
	s.mu.Unlock()
}

// Handle decodes one raw payload and consumes it. It is a valid rf link
// sink for a device wired directly to this session. The payload is fully
// decoded before returning, so it may alias a transport's reusable buffer.
func (s *Session) Handle(payload []byte, at time.Duration) {
	var m rf.Message
	if !m.Decode(payload) {
		s.stats.badFrames.Add(1)
		return
	}
	s.Consume(m, at)
}

// Consume processes one already-decoded message: sequence accounting, event
// log and handler dispatch. The Hub routes decoded messages here so the
// payload is only unmarshalled once per frame. The steady-state path — no
// event log, no metrics, no handlers — touches only atomic counters and
// single-writer fields: no locks, no allocations.
func (s *Session) Consume(m rf.Message, at time.Duration) {
	s.stats.decoded.Add(1)
	outcome := tracing.OutcomeAdmit
	if s.reliable {
		if m.Kind == rf.MsgSkip {
			// A sender abandonment notice advances the sequence position
			// but carries no event; ack the new position and stop.
			outcome = s.consumeSkip(m)
			s.stats.dropped.Add(1)
			s.trace.Record(tracing.HopHubDemux, m.Seq, at, m.AtMillis,
				tracing.PackDemux(outcome, uint8(m.Kind)))
			if s.ackFn != nil {
				s.ackFn(s.awaitSeq - 1)
			}
			return
		}
		admitted := s.admit(m.Seq)
		if !admitted {
			s.stats.dropped.Add(1)
			if s.trace != nil {
				// admit left awaitSeq untouched on the drop path, so the
				// same wrapping compare it used reconstructs the verdict.
				outcome = tracing.OutcomeAhead
				if m.Seq-s.awaitSeq >= 0x8000 {
					outcome = tracing.OutcomeStale
				}
				s.trace.Record(tracing.HopHubDemux, m.Seq, at, m.AtMillis,
					tracing.PackDemux(outcome, uint8(m.Kind)))
			}
			if s.ackFn != nil {
				s.ackFn(s.awaitSeq - 1)
			}
			return
		}
	} else if s.haveSeq {
		// Wrapping diff: a gap below 0x8000 is frames lost on air; at or
		// above it the frame is a late reordering, not a loss.
		switch gap := m.Seq - s.lastSeq; {
		case gap == 0:
			s.stats.duplicates.Add(1)
			outcome = tracing.OutcomeDuplicate
		case gap == 1:
			// In order.
		case gap < 0x8000:
			s.stats.missedSeq.Add(uint64(gap - 1))
		default:
			s.stats.reordered.Add(1)
			outcome = tracing.OutcomeReordered
		}
	}
	s.lastSeq = m.Seq
	s.haveSeq = true
	if tr := s.trace; tr != nil {
		tr.Record(tracing.HopHubDemux, m.Seq, at, m.AtMillis,
			tracing.PackDemux(outcome, uint8(m.Kind)))
		if slo := s.traceSLO; slo > 0 {
			if lat := at - m.Timestamp(); lat > slo {
				tr.Anomaly(tracing.HopSessionSLO, m.Seq, at,
					uint32(lat/time.Millisecond), 0, "e2e latency above SLO")
			}
		}
	}
	if s.lat != nil {
		const perMs = 1.0 / float64(time.Millisecond)
		s.mu.Lock()
		s.lat.Observe(float64(at-m.Timestamp()) * perMs)
		s.mu.Unlock()
	}

	// The cumulative ack goes out before dispatch, mirroring its pre-event
	// position on the wire: the ack path (ReverseLink → ARQ) runs on the
	// sending device's scheduler and holds no session lock.
	if s.reliable && s.ackFn != nil {
		s.ackFn(s.awaitSeq - 1)
	}

	h := s.handlers.Load()
	var handler func(Event)
	var taps []func(Event)
	if h != nil {
		handler = h.forKind(m.Kind)
		taps = h.taps
	}
	if !s.keepLog && handler == nil && len(taps) == 0 {
		// Bare demux: nobody consumes the event, so it is never built.
		return
	}

	ev := Event{
		Kind:       m.Kind,
		Device:     m.Device,
		Index:      int(m.Index),
		Button:     m.Button,
		DeviceTime: m.Timestamp(),
		HostTime:   at,
		Voltage:    float64(m.VoltageMV) / 1000,
		Island:     int(m.Island),
	}
	if s.keepLog {
		s.mu.Lock()
		s.events = append(s.events, ev)
		s.mu.Unlock()
	}

	// Handlers run outside any lock so they may call back into the
	// session (Stats, Events) without deadlocking. Dispatch time is only
	// sampled when there is something to dispatch to, so the bare demux
	// path never touches the wall clock.
	if handler == nil && len(taps) == 0 {
		return
	}
	dispatch := s.dispatch
	var start time.Time
	if dispatch != nil {
		start = time.Now()
	}
	for _, tap := range taps {
		tap(ev)
	}
	if handler != nil {
		handler(ev)
	}
	if dispatch != nil {
		dispatch.Observe(time.Since(start).Seconds())
	}
}
