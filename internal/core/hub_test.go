package core

import (
	"sync"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/rf"
)

func frame(t *testing.T, dev uint32, seq uint16, kind rf.MsgKind) []byte {
	t.Helper()
	m := rf.Message{Kind: kind, Device: dev, Seq: seq}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHubDemuxByDevice(t *testing.T) {
	h := NewHub(true)
	var got1, got2 []Event
	h.Session(1).OnScroll(func(e Event) { got1 = append(got1, e) })
	h.Session(2).OnScroll(func(e Event) { got2 = append(got2, e) })

	// Interleave two devices' frames on the shared sink.
	h.Handle(frame(t, 1, 0, rf.MsgScroll), 10*time.Millisecond)
	h.Handle(frame(t, 2, 0, rf.MsgScroll), 11*time.Millisecond)
	h.Handle(frame(t, 1, 1, rf.MsgScroll), 12*time.Millisecond)
	h.Handle(frame(t, 2, 1, rf.MsgScroll), 13*time.Millisecond)
	h.Handle(frame(t, 1, 2, rf.MsgScroll), 14*time.Millisecond)

	if len(got1) != 3 || len(got2) != 2 {
		t.Fatalf("handler counts: dev1=%d dev2=%d", len(got1), len(got2))
	}
	for _, e := range got1 {
		if e.Device != 1 {
			t.Fatalf("device 1 event tagged %d", e.Device)
		}
	}
	st1, ok := h.DeviceStats(1)
	if !ok || st1.Events != 3 {
		t.Fatalf("dev1 stats: %+v ok=%v", st1, ok)
	}
	st2, ok := h.DeviceStats(2)
	if !ok || st2.Events != 2 {
		t.Fatalf("dev2 stats: %+v ok=%v", st2, ok)
	}
}

func TestHubAttributesSeqGapsPerDevice(t *testing.T) {
	h := NewHub(false)
	// Device 1 delivers a contiguous stream; device 2 loses three frames.
	// Interleaving must not cross-contaminate the sequence accounting.
	h.Handle(frame(t, 1, 0, rf.MsgHeartbeat), 0)
	h.Handle(frame(t, 2, 0, rf.MsgHeartbeat), 0)
	h.Handle(frame(t, 1, 1, rf.MsgHeartbeat), 0)
	h.Handle(frame(t, 2, 4, rf.MsgHeartbeat), 0) // seq 1..3 lost on air
	h.Handle(frame(t, 1, 2, rf.MsgHeartbeat), 0)

	st1, _ := h.DeviceStats(1)
	st2, _ := h.DeviceStats(2)
	if st1.MissedSeq != 0 {
		t.Fatalf("dev1 missed = %d, want 0", st1.MissedSeq)
	}
	if st2.MissedSeq != 3 {
		t.Fatalf("dev2 missed = %d, want 3", st2.MissedSeq)
	}
	agg := h.Stats()
	if agg.Devices != 2 || agg.MissedSeq != 3 || agg.Decoded != 5 {
		t.Fatalf("aggregate: %+v", agg)
	}
}

func TestHubRoutesLegacyV0FramesToDeviceZero(t *testing.T) {
	h := NewHub(true)
	m := rf.Message{Kind: rf.MsgScroll, Seq: 0, Index: 4}
	v0, err := m.MarshalBinaryV0()
	if err != nil {
		t.Fatal(err)
	}
	h.Handle(v0, 0)
	s, ok := h.Lookup(0)
	if !ok {
		t.Fatal("no session for legacy device 0")
	}
	evs := s.Events()
	if len(evs) != 1 || evs[0].Index != 4 || evs[0].Device != 0 {
		t.Fatalf("legacy events: %+v", evs)
	}
}

func TestHubCountsUndecodableFrames(t *testing.T) {
	h := NewHub(false)
	h.Handle([]byte{1, 2, 3}, 0)
	if st := h.Stats(); st.BadFrames != 1 || st.Devices != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHubAutoCreatesUnknownDevice(t *testing.T) {
	h := NewHub(false)
	h.Handle(frame(t, 77, 0, rf.MsgHeartbeat), 0)
	devs := h.Devices()
	if len(devs) != 1 || devs[0] != 77 {
		t.Fatalf("devices: %v", devs)
	}
}

func TestHubConcurrentHandleIsSafe(t *testing.T) {
	h := NewHub(true)
	const devices = 16
	const framesPerDevice = 200
	// Pre-register so Devices() order is deterministic, and pre-marshal
	// the frames on the test goroutine (t.Fatal is not goroutine-safe).
	streams := make([][][]byte, devices)
	for id := uint32(1); id <= devices; id++ {
		h.Session(id)
		for seq := 0; seq < framesPerDevice; seq++ {
			streams[id-1] = append(streams[id-1], frame(t, id, uint16(seq), rf.MsgHeartbeat))
		}
	}
	var wg sync.WaitGroup
	for _, stream := range streams {
		wg.Add(1)
		go func(stream [][]byte) {
			defer wg.Done()
			for seq, f := range stream {
				h.Handle(f, time.Duration(seq)*time.Millisecond)
			}
		}(stream)
	}
	wg.Wait()
	agg := h.Stats()
	if agg.Devices != devices || agg.Decoded != devices*framesPerDevice || agg.MissedSeq != 0 {
		t.Fatalf("aggregate: %+v", agg)
	}
	for _, id := range h.Devices() {
		st, _ := h.DeviceStats(id)
		if st.Events != framesPerDevice {
			t.Fatalf("device %d events = %d", id, st.Events)
		}
	}
}

// TestHubConsumeBatchMatchesSequentialConsume pins the batch drain path
// equivalent to message-at-a-time Consume: identical per-device accounting,
// sessions auto-created mid-batch, and the pre hook fired once per message
// with the session the message actually routed to.
func TestHubConsumeBatchMatchesSequentialConsume(t *testing.T) {
	mkBatch := func() []rf.Message {
		var ms []rf.Message
		// Interleave three devices, one of them (77) unknown until mid-batch,
		// with a seq gap on device 2 to exercise the loss accounting.
		for seq := uint16(0); seq < 4; seq++ {
			ms = append(ms, rf.Message{Kind: rf.MsgScroll, Device: 1, Seq: seq})
			if seq != 1 && seq != 2 { // device 2 drops seq 1..2
				ms = append(ms, rf.Message{Kind: rf.MsgHeartbeat, Device: 2, Seq: seq})
			}
			if seq >= 2 {
				ms = append(ms, rf.Message{Kind: rf.MsgScroll, Device: 77, Seq: seq - 2})
			}
		}
		return ms
	}

	batched, sequential := NewHub(false), NewHub(false)
	batched.Session(1) // device 1 known up front; 2 and 77 created on demand
	sequential.Session(1)

	var preCalls int
	ms := mkBatch()
	batched.ConsumeBatch(ms, 5*time.Millisecond, func(s *Session, m rf.Message) {
		if s == nil || s.Device() != m.Device {
			t.Errorf("pre hook: session %v for message device %d", s, m.Device)
		}
		preCalls++
	})
	for _, m := range mkBatch() {
		sequential.Consume(m, 5*time.Millisecond)
	}

	if preCalls != len(ms) {
		t.Fatalf("pre hook ran %d times for %d messages", preCalls, len(ms))
	}
	if got, want := batched.Stats(), sequential.Stats(); got != want {
		t.Fatalf("batch stats %+v, sequential %+v", got, want)
	}
	for _, id := range []uint32{1, 2, 77} {
		got, ok1 := batched.DeviceStats(id)
		want, ok2 := sequential.DeviceStats(id)
		if !ok1 || !ok2 || got != want {
			t.Fatalf("device %d: batch %+v (%v), sequential %+v (%v)", id, got, ok1, want, ok2)
		}
	}
	if st, _ := batched.DeviceStats(2); st.MissedSeq != 2 {
		t.Fatalf("device 2 missed = %d, want 2", st.MissedSeq)
	}
}

func TestPerDeviceStatsSorted(t *testing.T) {
	h := NewHub(false)
	h.Handle(frame(t, 9, 0, rf.MsgHeartbeat), 0)
	h.Handle(frame(t, 3, 0, rf.MsgHeartbeat), 0)
	ids, stats := h.PerDeviceStats()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 9 {
		t.Fatalf("ids: %v", ids)
	}
	if stats[3].Decoded != 1 || stats[9].Decoded != 1 {
		t.Fatalf("stats: %v", stats)
	}
}
