package core

import (
	"fmt"
	"time"

	"github.com/hcilab/distscroll/internal/buttons"
	"github.com/hcilab/distscroll/internal/firmware"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/mapping"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/smartits"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

// Config assembles a complete system.
type Config struct {
	Seed uint64
	// DeviceID identifies this device on the wire (frame v1) so a Hub can
	// demultiplex a fleet. Zero is the conventional single-device id.
	DeviceID uint32
	Board    smartits.Config
	Firmware firmware.Config
	Link     rf.LinkConfig
	// Radio disables the RF link when false (bench-only devices).
	Radio bool
	// KeepEventLog retains every host event for inspection.
	KeepEventLog bool
	// Sink overrides where the link delivers decoded payloads. Nil keeps
	// the classic single-device wiring (the device's own Host); a fleet
	// passes the shared Hub's Handle.
	Sink func(payload []byte, at time.Duration)
	// Transport, when set, builds the device→host channel instead of the
	// default lossy rf.Link — e.g. an rf.Pipe for an ideal in-process
	// channel, or a real network backend.
	Transport func(sched sim.EventScheduler, rng *sim.Rand, sink func(payload []byte, at time.Duration)) (rf.Transport, error)
	// Scheduler, when set, builds the event scheduler driving this device
	// instead of the default timing-wheel sim.Scheduler — e.g.
	// sim.NewHeapScheduler for the reference implementation. The fleet
	// differential test uses this hook to prove the two produce
	// byte-identical results.
	Scheduler func(clock *sim.Clock) sim.EventScheduler
	// Reliable wraps the device→host channel in the ARQ retransmission
	// layer and opens the host→device ack back-channel (rf.ReverseLink),
	// guaranteeing in-order delivery across a lossy link. For the classic
	// single-device wiring the device's own Host is switched into reliable
	// receive mode automatically; a fleet wires the shared Hub's sessions
	// instead (see fleet.New). Ignored without a radio.
	Reliable bool
	// ARQ tunes the reliable-delivery layer; zero fields take defaults.
	// Only meaningful with Reliable set.
	ARQ rf.ARQConfig
	// Metrics, when set, instruments the assembled device: the firmware
	// and link register pull collectors, and — for the classic wiring
	// where the device's own Host consumes frames — the host records
	// receive counters and end-to-end latency. Nil costs nothing.
	Metrics *telemetry.Registry
	// Tracing, when set, equips the device with a per-device flight
	// recorder threaded through every pipeline stage (firmware, ARQ, link,
	// and — for the classic wiring — the device's own Host session). A
	// fleet attaches its hub sessions to the same recorder instead, since
	// one device's whole pipeline runs on its scheduler goroutine. Nil
	// costs a predictable branch per hop.
	Tracing *tracing.Tracer
}

// DefaultConfig is the prototype system.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Board:        smartits.DefaultConfig(),
		Firmware:     firmware.DefaultConfig(),
		Link:         rf.DefaultLinkConfig(),
		Radio:        true,
		KeepEventLog: true,
	}
}

// Device is the assembled DistScroll: board, firmware, radio and host
// driver sharing one virtual clock.
type Device struct {
	cfg Config

	Clock     *sim.Clock
	Scheduler sim.EventScheduler
	Rand      *sim.Rand
	Board     *smartits.Board
	Firmware  *firmware.Firmware
	// Transport is the device→host channel; Link is the same object when
	// the transport is the default lossy RF model, nil otherwise.
	Transport rf.Transport
	Link      *rf.Link
	// ARQ and Reverse are the reliable-delivery sender and the ack
	// back-channel; nil unless the device was assembled with
	// Config.Reliable.
	ARQ     *rf.ARQ
	Reverse *rf.ReverseLink
	Host    *Host
	Menu    *menu.Menu
	// Trace is the device's flight recorder (nil unless Config.Tracing):
	// every pipeline stage of this device records onto it, and a fleet
	// attaches the hub session for this device to it too.
	Trace *tracing.Recorder

	tickCancel func()
	stepErr    error
}

// NewDevice assembles a device navigating the given menu tree root.
func NewDevice(cfg Config, root *menu.Node) (*Device, error) {
	rng := sim.NewRand(cfg.Seed)
	clock := sim.NewClock(0)
	var sched sim.EventScheduler
	if cfg.Scheduler != nil {
		sched = cfg.Scheduler(clock)
	} else {
		sched = sim.NewScheduler(clock)
	}

	board, err := smartits.Assemble(cfg.Board, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m, err := menu.New(root)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	d := &Device{
		cfg:       cfg,
		Clock:     clock,
		Scheduler: sched,
		Rand:      rng,
		Board:     board,
		Menu:      m,
	}
	if cfg.Tracing != nil {
		d.Trace = cfg.Tracing.NewRecorder(fmt.Sprintf("device-%d", cfg.DeviceID), cfg.DeviceID)
	}
	if cfg.Metrics != nil && cfg.Sink == nil {
		// Classic wiring: this device's own Host consumes the frames, so
		// it owns the receive-side instrumentation. In a fleet the shared
		// Hub does, and the per-device Host stays plain.
		d.Host = NewHostWithMetrics(cfg.KeepEventLog, cfg.Metrics)
	} else {
		d.Host = NewHost(cfg.KeepEventLog)
	}
	if d.Trace != nil && cfg.Sink == nil {
		// Classic wiring: this device's own Host session demuxes the
		// frames, so it records the hub.demux leg of the trace. A fleet's
		// shared hub sessions are attached by fleet.New instead.
		d.Host.AttachTracer(d.Trace)
	}

	sink := cfg.Sink
	if sink == nil {
		sink = d.Host.Handle
	}
	var tx firmware.Sender
	if cfg.Radio {
		linkRNG := rng.Split()
		if cfg.Transport != nil {
			tr, err := cfg.Transport(sched, linkRNG, sink)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			d.Transport = tr
			if l, ok := tr.(*rf.Link); ok {
				d.Link = l
			}
			tx = tr
		} else {
			link, err := rf.NewLink(cfg.Link, sched, linkRNG, sink)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			d.Link = link
			d.Transport = link
			tx = link
		}
		if d.Link != nil {
			d.Link.SetTracer(d.Trace)
		}
		if cfg.Reliable {
			// The ARQ wraps the channel and the ReverseLink closes the ack
			// loop. Both draw from their own derived random streams, taken
			// after the link's, so a non-reliable assembly sees exactly the
			// same streams as before.
			arq, err := rf.NewARQ(cfg.ARQ, sched, rng.Split(), tx)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			rev, err := rf.NewReverseLink(cfg.Link, sched, rng.Split(), arq.HandleAck)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			arq.SetTracer(d.Trace)
			d.ARQ = arq
			d.Reverse = rev
			tx = arq
			if cfg.Sink == nil {
				// Classic wiring: this device's own Host receives the
				// stream, so it also emits the acks. Fleet hubs wire their
				// sessions through Device.Reverse instead.
				devID := cfg.DeviceID
				d.Host.EnableReliable(func(cum uint16) { rev.SendAck(devID, cum) })
			}
		}
	}

	cfg.Firmware.DeviceID = cfg.DeviceID
	cfg.Firmware.Trace = d.Trace
	fw, err := firmware.New(cfg.Firmware, board, m, tx)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	d.Firmware = fw
	if cfg.Metrics != nil {
		cfg.Metrics.RegisterCollector(fw.Collect)
		if d.Link != nil {
			cfg.Metrics.RegisterCollector(d.Link.Collect)
		}
		if d.ARQ != nil {
			cfg.Metrics.RegisterCollector(d.ARQ.Collect)
		}
		if d.Reverse != nil {
			cfg.Metrics.RegisterCollector(d.Reverse.Collect)
		}
	}

	// Drive the firmware loop on the scheduler. The period is asked from
	// the firmware after every cycle so power-save can slow the cadence.
	active := true
	var tick func(at time.Duration)
	tick = func(at time.Duration) {
		if !active || d.stepErr != nil {
			return
		}
		if err := fw.Step(at); err != nil {
			d.stepErr = err
			sched.Stop()
			return
		}
		sched.At(at+fw.TickPeriod(), tick)
	}
	sched.After(fw.TickPeriod(), tick)
	d.tickCancel = func() { active = false }
	return d, nil
}

// Run advances the simulation by d of virtual time, executing firmware
// cycles and radio deliveries in order. It returns any firmware error.
func (d *Device) Run(dur time.Duration) error {
	horizon := d.Clock.Now() + dur
	if err := d.Scheduler.Run(horizon); err != nil && d.stepErr == nil {
		return err
	}
	return d.stepErr
}

// Stop cancels the firmware tick; after Stop, Run drains only pending
// radio deliveries.
func (d *Device) Stop() {
	if d.tickCancel != nil {
		d.tickCancel()
		d.tickCancel = nil
	}
}

// Err returns the first firmware error, if any.
func (d *Device) Err() error { return d.stepErr }

// SetDistance positions the device at the given body distance in cm —
// the environment hook the hand model drives.
func (d *Device) SetDistance(cm float64) { d.Board.SetDistance(cm) }

// Distance returns the current physical distance.
func (d *Device) Distance() float64 { return d.Board.Distance() }

// GlideTo schedules a smooth minimum-jerk motion from the current distance
// to target cm over the given duration. A single self-rescheduling callback
// samples the trajectory every 10 ms and stops exactly at the end of the
// motion, where the trajectory pins the distance to the target.
//
// Each callback fires one nanosecond ahead of its nominal grid instant but
// applies the position computed at that instant: the trajectory models a
// continuously moving hand, so a sensor sample landing exactly on a glide
// grid point must observe the hand's position at that instant — not the
// previous step's — regardless of scheduler insertion order.
func (d *Device) GlideTo(targetCm float64, over time.Duration) {
	start := d.Clock.Now()
	if over <= 0 {
		d.Scheduler.At(start, func(time.Duration) { d.SetDistance(targetCm) })
		return
	}
	traj := hand.NewMinJerk(d.Distance(), targetCm, start, over)
	end := start + over
	const step = 10 * time.Millisecond
	const lead = time.Nanosecond
	nominal := start + step
	if nominal > end {
		nominal = end
	}
	var move func(time.Duration)
	move = func(time.Duration) {
		at := nominal
		d.SetDistance(traj.Position(at))
		if at >= end {
			return
		}
		nominal += step
		if nominal > end {
			nominal = end
		}
		d.Scheduler.At(nominal-lead, move)
	}
	d.Scheduler.At(nominal-lead, move)
}

// PressSelect taps the select (thumb) button, advancing virtual time past
// the debounce so the press registers on the next firmware cycle. The
// assignment is read live from the firmware, which may have mirrored the
// roles for a left-handed grip.
func (d *Device) PressSelect() {
	d.tap(d.Firmware.SelectButton(), buttons.TopRight)
}

// PressBack taps the back button.
func (d *Device) PressBack() {
	d.tap(d.Firmware.BackButton(), buttons.LeftUpper)
}

func (d *Device) tap(id, fallback buttons.ID) {
	if id == 0 {
		id = fallback
	}
	now := d.Clock.Now()
	d.Board.Pad.Set(id, true, now)
	release := now + buttons.DefaultDebounce + 40*time.Millisecond
	d.Scheduler.At(release, func(at time.Duration) {
		d.Board.Pad.Set(id, false, at)
	})
}

// Cursor returns the current menu cursor index.
func (d *Device) Cursor() int { return d.Menu.Cursor() }

// Mapper returns the active island mapper.
func (d *Device) Mapper() *mapping.Mapper { return d.Firmware.Mapper() }

// DistanceForEntry returns the physical distance that selects the given
// entry of the current level.
func (d *Device) DistanceForEntry(index int) (float64, error) {
	return d.Firmware.Mapper().DistanceFor(index)
}

// TopDisplay returns the rendered top display.
func (d *Device) TopDisplay() string { return d.Board.Top.Render() }

// BottomDisplay returns the rendered bottom (debug) display.
func (d *Device) BottomDisplay() string { return d.Board.Bottom.Render() }
