package core

import (
	"testing"

	"github.com/hcilab/distscroll/internal/rf"
)

// feed pushes a heartbeat with the given sequence number through the host.
func feed(t *testing.T, h *Host, seq uint16) {
	t.Helper()
	m := rf.Message{Kind: rf.MsgHeartbeat, Seq: seq}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	h.Handle(b, 0)
}

func TestHostSeqWrapWithoutLoss(t *testing.T) {
	h := NewHost(false)
	// A contiguous stream across the uint16 wrap must not count any loss:
	// 0xFFFE → 0xFFFF → 0x0000 → 0x0001.
	for _, seq := range []uint16{0xFFFE, 0xFFFF, 0x0000, 0x0001} {
		feed(t, h, seq)
	}
	if st := h.Stats(); st.MissedSeq != 0 || st.Decoded != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHostSeqGapAcrossWrap(t *testing.T) {
	h := NewHost(false)
	// 0xFFFF followed by 0x0002 skips 0x0000 and 0x0001: the wrapping
	// difference is 3, so 2 frames were lost on air.
	feed(t, h, 0xFFFF)
	feed(t, h, 0x0002)
	if got := h.Stats().MissedSeq; got != 2 {
		t.Fatalf("missed = %d, want 2", got)
	}
}

func TestHostSeqDuplicateNotCountedAsLoss(t *testing.T) {
	h := NewHost(false)
	feed(t, h, 5)
	feed(t, h, 5) // duplicate: gap == 0
	st := h.Stats()
	if st.MissedSeq != 0 {
		t.Fatalf("missed = %d, want 0", st.MissedSeq)
	}
	// The duplicate is still decoded and dispatched; deduplication is an
	// application concern.
	if st.Decoded != 2 || st.Events != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHostSeqReorderNotCountedAsLoss(t *testing.T) {
	h := NewHost(false)
	// A frame arriving one step late produces a backwards gap of 0xFFFF,
	// which is >= 0x8000: the heuristic treats it as reordering, not as
	// 65534 lost frames.
	feed(t, h, 5)
	feed(t, h, 4)
	if got := h.Stats().MissedSeq; got != 0 {
		t.Fatalf("missed = %d, want 0", got)
	}
	// After the late frame, the next in-order frame looks like a gap of 2
	// from seq 4; that is the price of the stateless heuristic.
	feed(t, h, 6)
	if got := h.Stats().MissedSeq; got != 1 {
		t.Fatalf("missed after recovery = %d, want 1", got)
	}
}

func TestHostSeqGapHeuristicBoundary(t *testing.T) {
	// gap == 0x7FFF is the largest treated as loss (0x7FFE frames missed);
	// gap == 0x8000 flips to the reordering interpretation.
	h := NewHost(false)
	feed(t, h, 0)
	feed(t, h, 0x7FFF)
	if got := h.Stats().MissedSeq; got != 0x7FFE {
		t.Fatalf("missed = %#x, want 0x7FFE", got)
	}

	h = NewHost(false)
	feed(t, h, 0)
	feed(t, h, 0x8000)
	if got := h.Stats().MissedSeq; got != 0 {
		t.Fatalf("missed = %d, want 0 at the reorder boundary", got)
	}
}

func TestHostAcceptsAnyDeviceID(t *testing.T) {
	// The single-device Host does no demultiplexing: frames from a tagged
	// device must still be decoded and dispatched.
	h := NewHost(true)
	m := rf.Message{Kind: rf.MsgScroll, Device: 7, Seq: 0, Index: 2}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	h.OnScroll(func(e Event) { got = append(got, e) })
	h.Handle(b, 0)
	if len(got) != 1 || got[0].Device != 7 || got[0].Index != 2 {
		t.Fatalf("events: %+v", got)
	}
}
