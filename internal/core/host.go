// Package core assembles the complete DistScroll system: the Smart-Its
// board, the firmware loop, the RF link and the host-side driver that
// decodes telemetry into application events. This is the paper's primary
// contribution wired together — "a self contained interaction device that
// can be wirelessly linked to a PC" (Section 3.2).
//
// The host side is layered for fleets of devices: a Session holds the
// per-device receive state (sequence accounting, event log, handlers), a
// Hub demultiplexes frames from many devices onto their sessions, and Host
// remains the one-device convenience wrapper the rest of the repository
// uses.
package core

import (
	"time"

	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// Event is a host-side application event decoded from device telemetry.
type Event struct {
	Kind rf.MsgKind
	// Device is the sending device's wire id (0 for legacy v0 frames and
	// unconfigured single devices).
	Device uint32
	// Index is the entry index (scroll/select) or depth (level).
	Index int
	// Button is the button id on select events.
	Button byte
	// DeviceTime is the firmware timestamp, HostTime the arrival time.
	DeviceTime time.Duration
	HostTime   time.Duration
	// Voltage and Island carry debug state on MsgState events.
	Voltage float64
	Island  int
}

// HostStats counts host-side receive activity.
type HostStats struct {
	Events    uint64
	Decoded   uint64
	BadFrames uint64
	// MissedSeq counts sequence-number gaps, i.e. frames lost on air.
	MissedSeq uint64
	// Duplicates counts frames that repeated the previous sequence number.
	Duplicates uint64
	// Reordered counts frames arriving with an older sequence number (a
	// wrapping gap of 0x8000 or more), which are late, not lost.
	Reordered uint64
	// Stale, AheadDrops and Resyncs only move in reliable (ARQ) mode:
	// Stale counts retransmit duplicates of already-consumed frames,
	// AheadDrops frames deferred because a predecessor was still in flight,
	// and Resyncs sender-announced skip notices (rf.MsgSkip) admitted past
	// holes the sender permanently abandoned (each admitted skip also adds
	// the hole's width to MissedSeq).
	Stale      uint64
	AheadDrops uint64
	Resyncs    uint64
}

// Host is the PC side of a single-device link: a thin wrapper around one
// Session that decodes payloads and dispatches typed events to registered
// handlers. It accepts frames from any device id — demultiplexing is the
// Hub's job.
type Host struct {
	*Session
}

// NewHost returns a host driver. With keepLog set every event is retained
// and retrievable via Events.
func NewHost(keepLog bool) *Host {
	return NewHostWithMetrics(keepLog, nil)
}

// NewHostWithMetrics returns a host driver that contributes its receive
// counters and an end-to-end latency histogram to the registry. A nil
// registry yields a plain uninstrumented host.
func NewHostWithMetrics(keepLog bool, reg *telemetry.Registry) *Host {
	s := NewSession(0, keepLog)
	if reg != nil {
		s.attachMetrics(reg)
		reg.RegisterCollector(func(snap *telemetry.Snapshot) {
			collectSession(s, snap)
		})
	}
	return &Host{Session: s}
}
