// Package core assembles the complete DistScroll system: the Smart-Its
// board, the firmware loop, the RF link and the host-side driver that
// decodes telemetry into application events. This is the paper's primary
// contribution wired together — "a self contained interaction device that
// can be wirelessly linked to a PC" (Section 3.2).
package core

import (
	"time"

	"github.com/hcilab/distscroll/internal/rf"
)

// Event is a host-side application event decoded from device telemetry.
type Event struct {
	Kind rf.MsgKind
	// Index is the entry index (scroll/select) or depth (level).
	Index int
	// Button is the button id on select events.
	Button byte
	// DeviceTime is the firmware timestamp, HostTime the arrival time.
	DeviceTime time.Duration
	HostTime   time.Duration
	// Voltage and Island carry debug state on MsgState events.
	Voltage float64
	Island  int
}

// HostStats counts host-side receive activity.
type HostStats struct {
	Events    uint64
	Decoded   uint64
	BadFrames uint64
	// MissedSeq counts sequence-number gaps, i.e. frames lost on air.
	MissedSeq uint64
}

// Host is the PC side of the link: it decodes payloads and dispatches
// typed events to registered handlers.
type Host struct {
	onScroll func(Event)
	onSelect func(Event)
	onLevel  func(Event)
	onState  func(Event)
	taps     []func(Event)

	stats   HostStats
	lastSeq uint16
	haveSeq bool
	events  []Event // retained log for tests and the study harness
	keepLog bool
}

// NewHost returns a host driver. With keepLog set every event is retained
// and retrievable via Events.
func NewHost(keepLog bool) *Host {
	return &Host{keepLog: keepLog}
}

// OnScroll registers the scroll handler.
func (h *Host) OnScroll(fn func(Event)) { h.onScroll = fn }

// OnSelect registers the selection handler.
func (h *Host) OnSelect(fn func(Event)) { h.onSelect = fn }

// OnLevel registers the level-change handler.
func (h *Host) OnLevel(fn func(Event)) { h.onLevel = fn }

// OnState registers the debug-state handler.
func (h *Host) OnState(fn func(Event)) { h.onState = fn }

// Tap registers an additional observer invoked for every decoded event,
// independent of the per-kind handlers (used by trace recorders).
func (h *Host) Tap(fn func(Event)) { h.taps = append(h.taps, fn) }

// Stats returns the host statistics.
func (h *Host) Stats() HostStats { return h.stats }

// Events returns the retained event log (empty unless keepLog).
func (h *Host) Events() []Event {
	out := make([]Event, len(h.events))
	copy(out, h.events)
	return out
}

// ResetLog clears the retained event log.
func (h *Host) ResetLog() { h.events = h.events[:0] }

// Handle is the rf.Link sink: it decodes one payload.
func (h *Host) Handle(payload []byte, at time.Duration) {
	var m rf.Message
	if err := m.UnmarshalBinary(payload); err != nil {
		h.stats.BadFrames++
		return
	}
	h.stats.Decoded++
	if h.haveSeq {
		if gap := m.Seq - h.lastSeq; gap > 1 && gap < 0x8000 {
			h.stats.MissedSeq += uint64(gap - 1)
		}
	}
	h.lastSeq = m.Seq
	h.haveSeq = true

	ev := Event{
		Kind:       m.Kind,
		Index:      int(m.Index),
		Button:     m.Button,
		DeviceTime: m.Timestamp(),
		HostTime:   at,
		Voltage:    float64(m.VoltageMV) / 1000,
		Island:     int(m.Island),
	}
	h.stats.Events++
	if h.keepLog {
		h.events = append(h.events, ev)
	}
	for _, tap := range h.taps {
		tap(ev)
	}
	switch m.Kind {
	case rf.MsgScroll:
		if h.onScroll != nil {
			h.onScroll(ev)
		}
	case rf.MsgSelect:
		if h.onSelect != nil {
			h.onSelect(ev)
		}
	case rf.MsgLevel:
		if h.onLevel != nil {
			h.onLevel(ev)
		}
	case rf.MsgState:
		if h.onState != nil {
			h.onState(ev)
		}
	}
}
