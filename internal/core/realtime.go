package core

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// RealtimeRunner drives a Device's virtual clock against the wall clock so
// interactive front-ends (GUIs, demos) can use the simulation live. It is
// the only concurrent component in the library and follows the managed-
// worker pattern: Start spawns one goroutine, Stop signals it and waits.
//
// Host events are forwarded into a buffered channel; if the consumer lags
// behind, events are dropped and counted rather than blocking the clock.
type RealtimeRunner struct {
	dev *Device
	// speed is the virtual-to-wall time ratio (2 = twice real time).
	speed float64
	// slice is the virtual time advanced per wakeup.
	slice time.Duration

	events  chan Event
	cmds    chan func(*Device)
	stop    chan struct{}
	done    chan struct{}
	started bool
	// closed marks the events channel as closed; the host tap keeps
	// firing if the caller runs the device after Stop, and must not send.
	closed  bool
	mu      sync.Mutex
	dropped uint64
	runErr  error
}

// Runner errors.
var (
	// ErrAlreadyStarted is returned by a second Start.
	ErrAlreadyStarted = errors.New("core: runner already started")
	// ErrNotStarted is returned by Stop before Start.
	ErrNotStarted = errors.New("core: runner not started")
)

// NewRealtimeRunner wraps a device. speed <= 0 defaults to 1 (real time);
// buffer is the event channel capacity (default 64).
func NewRealtimeRunner(dev *Device, speed float64, buffer int) (*RealtimeRunner, error) {
	if dev == nil {
		return nil, errors.New("core: runner needs a device")
	}
	if speed <= 0 {
		speed = 1
	}
	if buffer <= 0 {
		buffer = 64
	}
	r := &RealtimeRunner{
		dev:    dev,
		speed:  speed,
		slice:  20 * time.Millisecond,
		events: make(chan Event, buffer),
		cmds:   make(chan func(*Device), 16),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	dev.Host.Tap(func(e Event) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			r.dropped++
			return
		}
		select {
		case r.events <- e:
		default:
			r.dropped++
		}
	})
	return r, nil
}

// Events returns the live event stream. It is closed by Stop.
func (r *RealtimeRunner) Events() <-chan Event { return r.events }

// Dropped reports events discarded because the consumer lagged.
func (r *RealtimeRunner) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Do schedules a device mutation (SetDistance, PressSelect, ...) onto the
// runner goroutine — the only safe way to touch the device while the
// runner is live. It blocks when the command queue is full and returns
// false if the runner has stopped.
func (r *RealtimeRunner) Do(fn func(*Device)) bool {
	// A stopped runner refuses deterministically even when the command
	// queue has space.
	select {
	case <-r.done:
		return false
	default:
	}
	select {
	case r.cmds <- fn:
		return true
	case <-r.done:
		return false
	}
}

// Start launches the clock-driving goroutine.
func (r *RealtimeRunner) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return ErrAlreadyStarted
	}
	r.started = true

	go func() {
		defer close(r.done)
		defer func() {
			r.mu.Lock()
			r.closed = true
			r.mu.Unlock()
			close(r.events)
		}()
		wall := time.Duration(float64(r.slice) / r.speed)
		ticker := time.NewTicker(wall)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case fn := <-r.cmds:
				// Device mutations run on this goroutine only: the
				// Device itself is single-threaded by design.
				fn(r.dev)
			case <-ticker.C:
				// The device's Run executes firmware cycles, radio
				// deliveries and (via the tap) event forwarding.
				if err := r.dev.Run(r.slice); err != nil {
					r.mu.Lock()
					r.runErr = fmt.Errorf("core: realtime run: %w", err)
					r.mu.Unlock()
					return
				}
			}
		}
	}()
	return nil
}

// Stop signals the goroutine, waits for it to exit and returns any run
// error. Safe to call once; a second call returns ErrNotStarted.
func (r *RealtimeRunner) Stop() error {
	r.mu.Lock()
	if !r.started {
		r.mu.Unlock()
		return ErrNotStarted
	}
	r.started = false
	r.mu.Unlock()

	close(r.stop)
	<-r.done

	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runErr
}
