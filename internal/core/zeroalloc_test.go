package core_test

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/tracing"
)

// TestHubHandleZeroAlloc enforces the demux fast path's zero-allocation
// contract: with metrics off, no event log and no handlers (the unreliable
// fleet-scale configuration), routing a decoded frame to its session must
// not allocate — not for the message, not for an Event, not for a lock.
func TestHubHandleZeroAlloc(t *testing.T) {
	hub := core.NewHub(false)
	m := rf.Message{Device: 3, Kind: rf.MsgScroll, Seq: 1, AtMillis: 40, Index: 2}
	payload, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	hub.Session(3) // pre-register so the measurement sees steady state
	at := 5 * time.Millisecond
	if n := testing.AllocsPerRun(1000, func() {
		hub.Handle(payload, at)
		at += time.Millisecond
	}); n != 0 {
		t.Fatalf("Hub.Handle: %v allocs/op, want 0", n)
	}
	if st := hub.Stats(); st.Decoded != 1001 || st.BadFrames != 0 {
		t.Fatalf("hub stats after run: %+v", st)
	}
}

// TestHubHandleTracedZeroAlloc extends the contract to the traced demux
// path: with a flight recorder attached (bounded ring, pre-allocated),
// recording the per-frame hub.demux span event must stay allocation-free —
// tracing is admissible on the hot path or it is useless in production.
func TestHubHandleTracedZeroAlloc(t *testing.T) {
	hub := core.NewHub(false)
	m := rf.Message{Device: 3, Kind: rf.MsgScroll, Seq: 1, AtMillis: 40, Index: 2}
	payload, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	tracer := tracing.New(tracing.Config{Capacity: 1024, Bounded: true})
	rec := tracer.NewRecorder("dev-3", 3)
	hub.Session(3).AttachTracer(rec)
	at := 5 * time.Millisecond
	if n := testing.AllocsPerRun(1000, func() {
		hub.Handle(payload, at)
		at += time.Millisecond
	}); n != 0 {
		t.Fatalf("Hub.Handle traced: %v allocs/op, want 0", n)
	}
	if rec.Total() != 1001 {
		t.Fatalf("recorded %d demux events, want 1001", rec.Total())
	}
}

// TestHubHandleBadFrameZeroAlloc checks the corrupt-frame path too: a storm
// of undecodable payloads should cost one atomic increment each, nothing
// more.
func TestHubHandleBadFrameZeroAlloc(t *testing.T) {
	hub := core.NewHub(false)
	junk := []byte{0x01, 0x02}
	if n := testing.AllocsPerRun(1000, func() {
		hub.Handle(junk, 0)
	}); n != 0 {
		t.Fatalf("Hub.Handle(bad frame): %v allocs/op, want 0", n)
	}
	if st := hub.Stats(); st.BadFrames != 1001 {
		t.Fatalf("bad frames = %d, want 1001", st.BadFrames)
	}
}
