package core

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// feedAt pushes a frame with the given sequence number and origin
// timestamp through a sink at the given arrival time.
func feedAt(t *testing.T, sink func([]byte, time.Duration), device uint32, seq uint16, origin, at time.Duration) {
	t.Helper()
	m := rf.Message{
		Kind:     rf.MsgHeartbeat,
		Device:   device,
		Seq:      seq,
		AtMillis: uint32(origin / time.Millisecond),
	}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sink(b, at)
}

func TestSessionCountsDuplicatesAndReorders(t *testing.T) {
	h := NewHost(false)
	feed(t, h, 5)
	feed(t, h, 5) // duplicate
	feed(t, h, 6)
	feed(t, h, 5) // one step late: reordering, not loss
	st := h.Stats()
	if st.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", st.Duplicates)
	}
	if st.Reordered != 1 {
		t.Fatalf("reordered = %d, want 1", st.Reordered)
	}
	if st.MissedSeq != 0 {
		t.Fatalf("missed = %d, want 0", st.MissedSeq)
	}
}

func TestHubMetricsRecordPerDeviceLatency(t *testing.T) {
	reg := telemetry.New()
	hub := NewHubWithMetrics(false, reg)
	// Device 3: two frames at 5 ms and 7 ms of pipeline latency; device 9:
	// one frame at 40 ms.
	feedAt(t, hub.Handle, 3, 0, 100*time.Millisecond, 105*time.Millisecond)
	feedAt(t, hub.Handle, 3, 1, 200*time.Millisecond, 207*time.Millisecond)
	feedAt(t, hub.Handle, 9, 0, 300*time.Millisecond, 340*time.Millisecond)

	s := reg.Snapshot()
	if got := s.Counters[telemetry.MetricHubDecoded]; got != 3 {
		t.Fatalf("decoded = %d, want 3", got)
	}
	if got := s.Gauges[telemetry.MetricHubDevices]; got != 2 {
		t.Fatalf("devices gauge = %g, want 2", got)
	}
	agg, ok := s.Histogram(telemetry.MetricHubE2ELatency)
	if !ok || agg.Count != 3 {
		t.Fatalf("aggregate latency: ok=%v %+v", ok, agg)
	}
	d3, ok := s.Histogram(telemetry.DeviceLatencyName(3))
	if !ok || d3.Count != 2 {
		t.Fatalf("device 3 latency: ok=%v %+v", ok, d3)
	}
	// 5 ms and 7 ms, so the recorded sum pins the unit conversion.
	if d3.Sum != 12 {
		t.Fatalf("device 3 latency sum = %g ms, want 12", d3.Sum)
	}
	d9, ok := s.Histogram(telemetry.DeviceLatencyName(9))
	if !ok || d9.Count != 1 || d9.Sum != 40 {
		t.Fatalf("device 9 latency: ok=%v %+v", ok, d9)
	}
	// The aggregate is the merge of the per-device series.
	if agg.Sum != d3.Sum+d9.Sum {
		t.Fatalf("aggregate sum %g != %g + %g", agg.Sum, d3.Sum, d9.Sum)
	}
}

func TestHubMetricsCountBadFramesAndGaps(t *testing.T) {
	reg := telemetry.New()
	hub := NewHubWithMetrics(false, reg)
	hub.Handle([]byte{0x01, 0x02}, 0) // undecodable
	feedAt(t, hub.Handle, 1, 0, 0, 0)
	feedAt(t, hub.Handle, 1, 3, 0, 0) // skips seq 1 and 2
	s := reg.Snapshot()
	if got := s.Counters[telemetry.MetricHubBadFrames]; got != 1 {
		t.Fatalf("bad frames = %d, want 1", got)
	}
	if got := s.Counters[telemetry.MetricHubSeqGaps]; got != 2 {
		t.Fatalf("seq gaps = %d, want 2", got)
	}
}

func TestHostWithMetricsCollects(t *testing.T) {
	reg := telemetry.New()
	h := NewHostWithMetrics(false, reg)
	feedAt(t, h.Handle, 0, 0, 10*time.Millisecond, 13*time.Millisecond)
	s := reg.Snapshot()
	if got := s.Counters[telemetry.MetricHubDecoded]; got != 1 {
		t.Fatalf("decoded = %d, want 1", got)
	}
	lat, ok := s.Histogram(telemetry.MetricHubE2ELatency)
	if !ok || lat.Count != 1 || lat.Sum != 3 {
		t.Fatalf("latency: ok=%v %+v", ok, lat)
	}
}

// TestDeviceMetricsEndToEnd runs a full simulated device with a registry
// attached and checks the firmware, link and host layers all reported, and
// that every delivered frame carries a latency observation.
func TestDeviceMetricsEndToEnd(t *testing.T) {
	reg := telemetry.New()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	dev, err := NewDevice(cfg, menu.FlatMenu(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	dev.Stop()
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if s.Counters[telemetry.MetricFwCycles] == 0 {
		t.Fatal("firmware cycles not collected")
	}
	if s.Counters[telemetry.MetricFwADCReads] == 0 {
		t.Fatal("ADC reads not collected")
	}
	sent := s.Counters[telemetry.MetricRFSent]
	if sent == 0 {
		t.Fatal("rf sent not collected")
	}
	delivered := s.Counters[telemetry.MetricRFDelivered]
	lost := s.Counters[telemetry.MetricRFLost]
	corrupted := s.Counters[telemetry.MetricRFCorrupted]
	if sent != delivered+lost+corrupted {
		t.Fatalf("loss accounting: sent %d != delivered %d + lost %d + corrupted %d",
			sent, delivered, lost, corrupted)
	}
	if got := s.Counters[telemetry.MetricHubDecoded]; got != delivered {
		t.Fatalf("decoded %d != delivered %d", got, delivered)
	}
	lat, ok := s.Histogram(telemetry.MetricHubE2ELatency)
	if !ok {
		t.Fatal("no latency histogram")
	}
	if lat.Count != delivered {
		t.Fatalf("latency observations %d != delivered frames %d", lat.Count, delivered)
	}
	// The modelled link adds 4-6 ms plus serialisation; every observation
	// must land in a positive bucket well under a second.
	if lat.Sum <= 0 || lat.Sum/float64(lat.Count) > 1000 {
		t.Fatalf("implausible mean latency %g ms", lat.Sum/float64(lat.Count))
	}
}

// TestMetricsDoNotPerturbSimulation pins the zero-interference contract:
// an instrumented run produces the identical event stream to a plain one.
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	run := func(reg *telemetry.Registry) []Event {
		cfg := DefaultConfig()
		cfg.Seed = 7
		cfg.Metrics = reg
		dev, err := NewDevice(cfg, menu.FlatMenu(10))
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		dev.Stop()
		if err := dev.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		return dev.Host.Events()
	}
	plain := run(nil)
	instrumented := run(telemetry.New())
	if len(plain) != len(instrumented) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(instrumented))
	}
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, plain[i], instrumented[i])
		}
	}
}
