package core

import (
	"errors"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
)

func TestRealtimeRunnerDeliversEvents(t *testing.T) {
	d := newDev(t, menu.FlatMenu(10))
	// 200x real time: ~2 s of virtual interaction in ~10 ms wall time.
	r, err := NewRealtimeRunner(d, 200, 128)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := d.DistanceForEntry(7)
	if err != nil {
		t.Fatal(err)
	}
	// Setting the distance before Start is safe (no goroutine yet).
	d.SetDistance(dist)

	if err := r.Start(); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	sawScroll := false
	for !sawScroll {
		select {
		case e, ok := <-r.Events():
			if !ok {
				t.Fatal("event channel closed early")
			}
			if e.Kind == rf.MsgScroll && e.Index == 7 {
				sawScroll = true
			}
		case <-deadline:
			t.Fatal("no scroll event within deadline")
		}
	}
	if err := r.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// Channel closes after Stop.
	for range r.Events() {
		// drain
	}
	if d.Clock.Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestRealtimeRunnerLifecycle(t *testing.T) {
	d := newDev(t, menu.FlatMenu(5))
	r, err := NewRealtimeRunner(d, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("stop before start: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("double start: %v", err)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("double stop: %v", err)
	}
}

func TestRealtimeRunnerDropsWhenConsumerLags(t *testing.T) {
	d := newDev(t, menu.FlatMenu(20))
	r, err := NewRealtimeRunner(d, 500, 1) // tiny buffer, nobody reading
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	// Sweep the device to generate a burst of telemetry, mutating it only
	// through the runner's command queue.
	if !r.Do(func(dev *Device) { dev.SetDistance(6) }) {
		t.Fatal("Do rejected while running")
	}
	time.Sleep(50 * time.Millisecond)
	if !r.Do(func(dev *Device) { dev.SetDistance(28) }) {
		t.Fatal("Do rejected while running")
	}
	time.Sleep(50 * time.Millisecond)
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if r.Do(func(*Device) {}) {
		t.Fatal("Do accepted after stop")
	}
	if r.Dropped() == 0 {
		t.Fatal("expected drops with an unread 1-slot buffer")
	}
}

func TestRealtimeRunnerValidation(t *testing.T) {
	if _, err := NewRealtimeRunner(nil, 1, 1); err == nil {
		t.Fatal("nil device accepted")
	}
}
