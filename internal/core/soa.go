package core

import (
	"fmt"
	"time"

	"github.com/hcilab/distscroll/internal/adc"
	"github.com/hcilab/distscroll/internal/firmware"
	"github.com/hcilab/distscroll/internal/gp2d120"
	"github.com/hcilab/distscroll/internal/mapping"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// StateSlab is the struct-of-arrays layout for the million-device scale
// path: the hot per-device state of the firmware loop — RNG walk, filter
// window, island hysteresis, seq counter, ARQ window bookkeeping and link
// accounting — packed into contiguous arrays indexed by fleet slot, so one
// worker advancing a stripe of devices walks memory linearly instead of
// chasing a *Device graph per device.
//
// The slab models the same pipeline the full Device runs — minimum-jerk-ish
// glides over the physical range, GP2D120 sampling with noise, 10-bit ADC
// quantisation, median3+EMA filtering, island mapping with hysteresis, and
// frame emission with loss/retransmit accounting — but trades exact model
// parity for density: a slab device costs ~120 bytes where a full Device
// costs tens of kilobytes. The full path remains the reference for
// behavioural studies; the slab is the load generator that makes scale
// claims measurable (see fleet.RunScale and DESIGN.md §11).
//
// Determinism: every per-device value is derived at construction from
// (seed, slot) alone, and Tick touches only slot-local state plus shared
// read-only tables, so results are a pure function of the seed and the
// device count — independent of how devices are striped across workers.
type StateSlab struct {
	n int

	// rng is the per-device xoshiro256** state, 4 words per device, the
	// same generator as sim.Rand so streams have the same quality.
	rng []uint64

	// Median3 window (3 taps) + fill count, then the EMA value; emaInit
	// doubles as the filter's warm-up flag.
	win     []float64
	winN    []uint8
	ema     []float64
	emaInit []uint8

	// Hand-motion state: a glide-dwell-retarget loop over the island
	// centres, the scripted workload of fleet scripts in array form.
	dist   []float64 // current physical distance, cm
	target []float64 // glide target, cm
	step   []float64 // per-tick glide speed, cm (sign-less)
	dwell  []int16   // ticks left to dwell at the current target

	// cur is the hysteresis state: index into islands (sorted ascending by
	// voltage), -1 when between islands.
	cur []int16

	// Per-device wire accounting: seq is the next frame sequence number;
	// outstanding/ackPend are the ARQ window bookkeeping (frames on the
	// air last tick are acked this tick); the counters mirror LinkStats.
	seq         []uint16
	outstanding []uint16
	ackPend     []uint16
	sent        []uint32
	delivered   []uint32
	lost        []uint32
	retransmits []uint32
	switches    []uint32 // island switches = scroll events emitted

	// Shared read-only tables: the island map and the sensor
	// characteristic, built once for the whole slab.
	islands  []mapping.Island
	hyst     float64
	sensor   *gp2d120.Sensor
	noiseSD  float64
	lossProb float64

	dwellTicks int16
}

// SlabConfig parameterises a StateSlab.
type SlabConfig struct {
	// Devices is the slab size.
	Devices int
	// Seed derives every per-device stream; same seed, same results.
	Seed uint64
	// Entries is the number of menu entries to map the range onto
	// (default 12, the flat fleet menu).
	Entries int
	// LossProb is the per-frame loss probability of the modelled link
	// (default: the rf default link's loss).
	LossProb float64
	// DwellTicks is how many ticks a device holds a reached target before
	// gliding to the next one (default 8, ~300 ms at the 40 ms tick).
	DwellTicks int
}

// NewStateSlab builds the packed per-device state for n devices in one
// batched pass — no per-device allocation beyond the shared arrays.
func NewStateSlab(cfg SlabConfig) (*StateSlab, error) {
	n := cfg.Devices
	if n < 1 {
		return nil, fmt.Errorf("core: slab needs at least 1 device, got %d", n)
	}
	entries := cfg.Entries
	if entries <= 0 {
		entries = 12
	}
	if cfg.DwellTicks <= 0 {
		cfg.DwellTicks = 8
	}
	sensorCfg := gp2d120.DefaultConfig()
	sensor, err := gp2d120.New(sensorCfg, gp2d120.DefaultSurface(), nil)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	mapper, err := mapping.New(mapping.DefaultConfig(entries), sensor.Ideal)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	s := &StateSlab{
		n:           n,
		rng:         make([]uint64, 4*n),
		win:         make([]float64, 3*n),
		winN:        make([]uint8, n),
		ema:         make([]float64, n),
		emaInit:     make([]uint8, n),
		dist:        make([]float64, n),
		target:      make([]float64, n),
		step:        make([]float64, n),
		dwell:       make([]int16, n),
		cur:         make([]int16, n),
		seq:         make([]uint16, n),
		outstanding: make([]uint16, n),
		ackPend:     make([]uint16, n),
		sent:        make([]uint32, n),
		delivered:   make([]uint32, n),
		lost:        make([]uint32, n),
		retransmits: make([]uint32, n),
		switches:    make([]uint32, n),
		islands:     mapper.Islands(),
		hyst:        mapper.Config().Hysteresis,
		sensor:      sensor,
		noiseSD:     sensorCfg.NoiseSD,
		lossProb:    cfg.LossProb,
		dwellTicks:  int16(cfg.DwellTicks),
	}

	for i := 0; i < n; i++ {
		// Seed the device stream from (seed, slot) with splitmix64 — the
		// same spreader sim.NewRand uses — so a device's behaviour depends
		// only on its slot, never on construction or striping order.
		x := cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
		for w := 0; w < 4; w++ {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			s.rng[4*i+w] = z ^ (z >> 31)
		}
		s.cur[i] = -1
		s.dist[i] = s.islandCenter(s.nextU64(i))
		s.target[i] = s.islandCenter(s.nextU64(i))
		// Glide speeds span roughly the scripted fleet glides: the full
		// 26 cm range over 350-700 ms at the 40 ms tick.
		s.step[i] = 1.5 + 1.5*u64ToFloat(s.nextU64(i))
		s.dwell[i] = int16(s.nextU64(i) % uint64(cfg.DwellTicks))
	}
	return s, nil
}

// Len returns the slab size.
func (s *StateSlab) Len() int { return s.n }

// nextU64 advances device i's packed xoshiro256** state (the sim.Rand walk
// on slab storage).
func (s *StateSlab) nextU64(i int) uint64 {
	st := s.rng[4*i : 4*i+4 : 4*i+4]
	result := ((st[1]*5)<<7 | (st[1]*5)>>57) * 9
	t := st[1] << 17
	st[2] ^= st[0]
	st[3] ^= st[1]
	st[1] ^= st[2]
	st[0] ^= st[3]
	st[2] ^= t
	st[3] = (st[3] << 45) | (st[3] >> 19)
	return result
}

func u64ToFloat(u uint64) float64 { return float64(u>>11) / (1 << 53) }

// islandCenter maps a random draw to a random island's physical centre.
func (s *StateSlab) islandCenter(u uint64) float64 {
	return s.islands[u%uint64(len(s.islands))].DistanceCm
}

// approxNorm returns a cheap approximately normal deviate with unit
// standard deviation (Irwin-Hall of four uniforms). The scale path trades
// the exact Box-Muller tail for a branch- and transcendental-free kernel;
// the filter eats the difference.
func (s *StateSlab) approxNorm(i int) float64 {
	sum := u64ToFloat(s.nextU64(i)) + u64ToFloat(s.nextU64(i)) +
		u64ToFloat(s.nextU64(i)) + u64ToFloat(s.nextU64(i))
	return (sum - 2) * 1.7320508075688772 // sqrt(12/4): unit variance
}

// FrameEmitter receives one emitted scale frame: the device slot, the
// frame's wire sequence number, the island index it reports and the sweep's
// virtual timestamp in milliseconds. Emission consumes no device RNG and
// mutates no slab state, so a run with an emitter attached ticks through
// random walks bit-identical to a plain run — the networked scale path uses
// it to marshal real v1 frames onto a TCP connection.
type FrameEmitter func(slot int, seq uint16, island int16, atMillis uint32)

// Tick advances one device through one firmware cycle: motion, sample,
// quantise, filter, map, emit. It allocates nothing.
func (s *StateSlab) Tick(i int) { s.tick(i, nil, nil, 0) }

// tick is Tick with an optional latency accumulator and frame emitter:
// every emitted frame bins its modelled end-to-end latency and/or is handed
// to emit. Nil hooks cost one predictable branch per frame, keeping the
// uninstrumented path identical.
func (s *StateSlab) tick(i int, bins *latencyBins, emit FrameEmitter, atMillis uint32) {
	// Hand motion: dwell at a reached target, then glide to the next.
	d := s.dist[i]
	switch {
	case s.dwell[i] > 0:
		s.dwell[i]--
	default:
		delta := s.target[i] - d
		step := s.step[i]
		if delta <= step && delta >= -step {
			d = s.target[i]
			s.dwell[i] = s.dwellTicks
			s.target[i] = s.islandCenter(s.nextU64(i))
		} else if delta > 0 {
			d += step
		} else {
			d -= step
		}
		s.dist[i] = d
	}

	// Sample the characteristic with sensor noise, then quantise through
	// the 10-bit ADC exactly like the board does.
	v := s.sensor.Sample(d) + s.noiseSD*s.approxNorm(i)
	if v < 0 {
		v = 0
	}
	code := int(v / adc.DefaultVref * float64(adc.MaxCode+1)) // truncating ADC
	if code > adc.MaxCode {
		code = adc.MaxCode
	}
	v = float64(code) * adc.DefaultVref / float64(adc.MaxCode+1)

	// Median3 window, then EMA — the firmware's MedianEMA default.
	w := s.win[3*i : 3*i+3 : 3*i+3]
	if s.winN[i] < 3 {
		w[s.winN[i]] = v
		s.winN[i]++
		// Warm-up: pass the raw sample through until the window fills.
	} else {
		w[0], w[1], w[2] = w[1], w[2], v
		v = median3(w[0], w[1], w[2])
	}
	if s.emaInit[i] == 0 {
		s.ema[i] = v
		s.emaInit[i] = 1
	} else {
		s.ema[i] += firmware.DefaultEMAAlpha * (v - s.ema[i])
	}
	v = s.ema[i]

	// Acks for last tick's frames arrive before this tick's mapping, so
	// the window drains one tick behind the sends.
	if s.ackPend[i] > 0 {
		s.outstanding[i] -= s.ackPend[i]
		s.ackPend[i] = 0
	}

	// Island mapping with hysteresis (mapping.Mapper.Map in array form).
	idx := s.mapVoltage(i, v)
	if idx >= 0 && idx != int(s.cur[i]) {
		s.cur[i] = int16(idx)
		s.switches[i]++
		s.emitFrame(i, bins, emit, atMillis)
	} else if idx >= 0 {
		s.cur[i] = int16(idx)
	}
}

// mapVoltage returns the islands index (ascending-voltage order) selected
// by v, honouring the hysteresis of the device's current island, or -1.
func (s *StateSlab) mapVoltage(i int, v float64) int {
	if c := s.cur[i]; c >= 0 {
		is := &s.islands[c]
		h := s.hyst * (is.Hi - is.Lo) / 2
		if v >= is.Lo-h && v <= is.Hi+h {
			return int(c)
		}
	}
	lo, hi := 0, len(s.islands)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		is := &s.islands[mid]
		switch {
		case v < is.Lo:
			hi = mid - 1
		case v > is.Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// emitFrame accounts one scroll frame through the modelled reliable link:
// a lost first copy is retransmitted and delivered (the ARQ guarantee),
// and the window bookkeeping records it on the air until next tick's ack.
// With a latency accumulator attached it also bins the frame's modelled
// end-to-end latency.
func (s *StateSlab) emitFrame(i int, bins *latencyBins, emit FrameEmitter, atMillis uint32) {
	s.seq[i]++
	s.sent[i]++
	s.outstanding[i]++
	s.ackPend[i]++
	lost := s.lossProb > 0 && u64ToFloat(s.nextU64(i)) < s.lossProb
	if lost {
		s.lost[i]++
		s.retransmits[i]++
	}
	s.delivered[i]++
	if bins != nil {
		bins[s.latencyBin(i, lost)]++
	}
	if emit != nil {
		// One call per frame regardless of modelled loss: the slab models a
		// reliable link, so every frame is (eventually) delivered exactly
		// once — the emitter carries the post-ARQ stream.
		emit(i, s.seq[i], s.cur[i], atMillis)
	}
}

// latencyBins accumulates a sweep's modelled latency observations. The
// model produces only 16 distinct values (8 hash bins × delivered-first-
// try / retransmitted), so the per-frame instrumentation cost is a single
// array increment; TickStripeObserved flushes the bins into the real
// histogram once per stripe sweep.
type latencyBins [16]uint64

// flush drains the bins into lat and zeroes them.
func (b *latencyBins) flush(lat *telemetry.LocalHistogram) {
	for k, n := range b {
		if n != 0 {
			lat.ObserveN(binLatencyMs(k), n)
			b[k] = 0
		}
	}
}

// binLatencyMs is bin k's modelled end-to-end latency in ms.
func binLatencyMs(k int) float64 {
	ms := 8.0 + float64(k&7)*0.5
	if k >= 8 {
		ms += 50
	}
	return ms
}

// latencyBin derives a frame's modelled latency bin from a hash of
// (slot, seq) rather than from the device RNG stream, so instrumented and
// plain runs tick through identical random walks. The base (bins 0-7,
// 8-11.5 ms in 0.5 ms steps) models the firmware path — one 40 ms cycle's
// worth of sampling plus RF and hub time; a lost first copy (bins 8-15)
// adds a 50 ms retransmit round trip. Every value is an exact multiple of
// 0.5 ms, so float64 partial sums are exact and histogram merges are
// independent of stripe grouping.
func (s *StateSlab) latencyBin(i int, lost bool) int {
	z := (uint64(i)<<16 | uint64(s.seq[i])) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	k := int(z & 7)
	if lost {
		k |= 8
	}
	return k
}

// TickStripe advances the contiguous device range [lo, hi) through one
// firmware cycle. It is the batched per-wheel-turn unit of work: one
// scheduler event per stripe, not one per device.
func (s *StateSlab) TickStripe(lo, hi int, _ time.Duration) {
	for i := lo; i < hi; i++ {
		s.tick(i, nil, nil, 0)
	}
}

// TickStripeEmit is TickStripe with a frame emitter: every frame the stripe
// emits is handed to emit stamped with the sweep's virtual time. The caller
// (one RunScale worker per stripe) owns emit exclusively during the tick.
func (s *StateSlab) TickStripeEmit(lo, hi int, at time.Duration, emit FrameEmitter) {
	atMillis := uint32(at / time.Millisecond)
	for i := lo; i < hi; i++ {
		s.tick(i, nil, emit, atMillis)
	}
}

// TickStripeObserved is TickStripe with a caller-synchronised latency
// histogram: each emitted frame in the stripe bins its modelled end-to-end
// latency into a stack accumulator, flushed into lat once per sweep. The
// caller (one RunScale worker per stripe) owns lat exclusively during the
// tick, so no synchronisation happens on this path and it still allocates
// nothing.
func (s *StateSlab) TickStripeObserved(lo, hi int, _ time.Duration, lat *telemetry.LocalHistogram) {
	var bins latencyBins
	for i := lo; i < hi; i++ {
		s.tick(i, &bins, nil, 0)
	}
	bins.flush(lat)
}

// TickStripeObservedEmit combines TickStripeObserved and TickStripeEmit:
// latency binning and frame emission in one sweep.
func (s *StateSlab) TickStripeObservedEmit(lo, hi int, at time.Duration, lat *telemetry.LocalHistogram, emit FrameEmitter) {
	atMillis := uint32(at / time.Millisecond)
	var bins latencyBins
	for i := lo; i < hi; i++ {
		s.tick(i, &bins, emit, atMillis)
	}
	bins.flush(lat)
}

// SlabTotals aggregates slab counters (see fleet.RunScale).
type SlabTotals struct {
	Sent        uint64
	Delivered   uint64
	Lost        uint64
	Retransmits uint64
	Switches    uint64
	Outstanding uint64
	MaxWindow   uint16
}

// Totals sums the per-device accounting over [lo, hi); pass 0, Len() for
// the whole slab.
func (s *StateSlab) Totals(lo, hi int) SlabTotals {
	var t SlabTotals
	for i := lo; i < hi; i++ {
		t.Sent += uint64(s.sent[i])
		t.Delivered += uint64(s.delivered[i])
		t.Lost += uint64(s.lost[i])
		t.Retransmits += uint64(s.retransmits[i])
		t.Switches += uint64(s.switches[i])
		t.Outstanding += uint64(s.outstanding[i])
		if s.outstanding[i] > t.MaxWindow {
			t.MaxWindow = s.outstanding[i]
		}
	}
	return t
}

// Contribute folds the totals into a telemetry snapshot under the same
// canonical names the session-based pipeline uses, so a scale run and a
// session run are comparable in one scrape. The slab models firmware,
// link and hub as one fused loop, so several layers share source counters:
// every island switch is one scroll event, one firmware frame, and (plus
// retransmits) one copy on the air; the ARQ guarantee delivers each frame
// exactly once to the hub.
func (t SlabTotals) Contribute(s *telemetry.Snapshot) {
	s.AddCounter(telemetry.MetricFwScrollEvents, t.Switches)
	s.AddCounter(telemetry.MetricFwFramesSent, t.Sent)
	s.AddCounter(telemetry.MetricFwIslandSwitches, t.Switches)
	s.AddCounter(telemetry.MetricRFSent, t.Sent+t.Retransmits)
	s.AddCounter(telemetry.MetricRFLost, t.Lost)
	s.AddCounter(telemetry.MetricRFDelivered, t.Delivered)
	s.AddCounter(telemetry.MetricARQEnqueued, t.Sent)
	s.AddCounter(telemetry.MetricARQAcked, t.Delivered)
	s.AddCounter(telemetry.MetricARQRetransmits, t.Retransmits)
	s.AddCounter(telemetry.MetricHubDecoded, t.Delivered)
	s.AddCounter(telemetry.MetricHubEvents, t.Delivered)
}

func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
