package core

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/sim"
)

func consumeSeq(s *Session, seq uint16) {
	s.Consume(rf.Message{Kind: rf.MsgScroll, Device: 1, Seq: seq}, 0)
}

// TestSessionReliableInOrder checks the common path: in-order frames are all
// admitted and each one is answered with a cumulative ack.
func TestSessionReliableInOrder(t *testing.T) {
	s := NewSession(1, false)
	var acks []uint16
	s.EnableReliable(func(cum uint16) { acks = append(acks, cum) })
	for seq := uint16(0); seq < 4; seq++ {
		consumeSeq(s, seq)
	}
	st := s.Stats()
	if st.Events != 4 || st.MissedSeq != 0 || st.Stale != 0 || st.AheadDrops != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(acks) != 4 || acks[0] != 0 || acks[3] != 3 {
		t.Fatalf("acks: %v", acks)
	}
}

// TestSessionReliableStaleAhead walks the two drop paths: ahead-of-sequence
// frames are deferred no matter how often they repeat — go-back-N can lose
// the window base twice while a later frame survives twice, so repetition
// proves nothing about the sender's base — and a late retransmit of an
// admitted frame is dropped as stale, with every frame re-acked either way.
func TestSessionReliableStaleAhead(t *testing.T) {
	s := NewSession(1, false)
	var acks []uint16
	s.EnableReliable(func(cum uint16) { acks = append(acks, cum) })

	consumeSeq(s, 0) // admitted, ack 0
	consumeSeq(s, 2) // ahead of awaited 1: deferred, re-ack 0
	consumeSeq(s, 2) // the same ahead frame again: still deferred, no guessing
	st := s.Stats()
	if st.AheadDrops != 2 || st.Resyncs != 0 || st.MissedSeq != 0 || st.Events != 1 {
		t.Fatalf("after repeated ahead frame: %+v", st)
	}
	if acks[len(acks)-1] != 0 {
		t.Fatalf("ahead frames not re-acked at 0: %v", acks)
	}

	// The missing frame finally gets through; the stream resumes losslessly.
	consumeSeq(s, 1)
	consumeSeq(s, 2)
	if st := s.Stats(); st.Events != 3 || st.MissedSeq != 0 {
		t.Fatalf("after recovery: %+v", st)
	}
	if acks[len(acks)-1] != 2 {
		t.Fatalf("recovery not acked at 2: %v", acks)
	}

	// A late retransmit of an already-admitted frame is stale.
	consumeSeq(s, 1)
	st = s.Stats()
	if st.Stale != 1 || st.Events != 3 {
		t.Fatalf("after stale frame: %+v", st)
	}
	if acks[len(acks)-1] != 2 {
		t.Fatalf("stale frame not re-acked at 2: %v", acks)
	}
}

func consumeSkip(s *Session, last, count uint16) {
	s.Consume(rf.Message{Kind: rf.MsgSkip, Device: 1, Seq: last, Index: int16(count)}, 0)
}

// TestSessionReliableSkipAdmission covers the sender abandonment notice: an
// in-range MsgSkip advances the stream past the hole with an exact loss
// count and no event, a retransmitted notice is stale, a notice ahead of
// sequence is deferred, and malformed counts are rejected.
func TestSessionReliableSkipAdmission(t *testing.T) {
	s := NewSession(1, false)
	var acks []uint16
	s.EnableReliable(func(cum uint16) { acks = append(acks, cum) })

	consumeSeq(s, 0) // admitted, ack 0

	// The sender abandoned seqs 1..3.
	consumeSkip(s, 3, 3)
	st := s.Stats()
	if st.Resyncs != 1 || st.MissedSeq != 3 || st.Events != 1 {
		t.Fatalf("after skip: %+v", st)
	}
	if acks[len(acks)-1] != 3 {
		t.Fatalf("skip not acked at 3: %v", acks)
	}

	// A retransmitted copy of the same notice is stale.
	consumeSkip(s, 3, 3)
	if st := s.Stats(); st.Stale != 1 || st.Resyncs != 1 || st.MissedSeq != 3 {
		t.Fatalf("after stale skip: %+v", st)
	}

	// A notice whose range starts beyond the awaited position (frame 4 is
	// still in flight) is deferred like any ahead frame.
	consumeSkip(s, 6, 2) // covers 5..6, awaited is 4
	if st := s.Stats(); st.AheadDrops != 1 || st.MissedSeq != 3 {
		t.Fatalf("after ahead skip: %+v", st)
	}
	if acks[len(acks)-1] != 3 {
		t.Fatalf("ahead skip not re-acked at 3: %v", acks)
	}

	// Counts no wrapping comparison can place are rejected outright.
	consumeSkip(s, 10, 0)
	consumeSkip(s, 10, 0x8000)
	if st := s.Stats(); st.BadFrames != 2 || st.MissedSeq != 3 {
		t.Fatalf("after malformed skips: %+v", st)
	}

	// The stream resumes in order right after the admitted hole.
	consumeSeq(s, 4)
	if st := s.Stats(); st.Events != 2 || st.MissedSeq != 3 {
		t.Fatalf("after resume: %+v", st)
	}
}

// TestSessionReliableInitialReAck checks the edge before any frame is
// admitted: a dropped first frame re-acks 0xFFFF, the wrapping "nothing
// acked yet" position, which no in-flight frame matches.
func TestSessionReliableInitialReAck(t *testing.T) {
	s := NewSession(1, false)
	var acks []uint16
	s.EnableReliable(func(cum uint16) { acks = append(acks, cum) })
	consumeSeq(s, 5) // ahead of awaited 0
	if len(acks) != 1 || acks[0] != 0xFFFF {
		t.Fatalf("initial re-ack: %v", acks)
	}
	if st := s.Stats(); st.Events != 0 || st.AheadDrops != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSessionNoReorderOnJitteryLink is the regression test for
// jitter-induced reordering at the system level: a single well-formed,
// loss-free link with jitter far wider than the frame spacing must deliver
// in order, so the legacy session accounting sees no reordering and no gaps.
func TestSessionNoReorderOnJitteryLink(t *testing.T) {
	cfg := rf.LinkConfig{Latency: 4 * time.Millisecond, Jitter: 40 * time.Millisecond, BitrateBPS: 19200}
	sched := sim.NewScheduler(sim.NewClock(0))
	s := NewSession(1, false)
	link, err := rf.NewLink(cfg, sched, sim.NewRand(13), s.Handle)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for seq := uint16(0); seq < n; seq++ {
		p, err := rf.Message{Kind: rf.MsgScroll, Device: 1, Seq: seq}.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := link.SendTagged(p, rf.PayloadV1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Events != n {
		t.Fatalf("events %d, want %d", st.Events, n)
	}
	if st.Reordered != 0 || st.MissedSeq != 0 || st.Duplicates != 0 {
		t.Fatalf("jitter perturbed the stream: %+v", st)
	}
}

// TestDeviceReliableSingle runs the classic single-device wiring with
// reliability enabled on a lossy link: the device's own host emits the acks
// and the event stream must arrive gapless.
func TestDeviceReliableSingle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 21
	cfg.Link.LossProb = 0.05
	cfg.Link.BurstLossProb = 0.01
	cfg.Link.BurstLossLen = 3
	cfg.Link.AckLossProb = 0.05
	cfg.Reliable = true
	dev, err := NewDevice(cfg, menu.FlatMenu(12))
	if err != nil {
		t.Fatal(err)
	}
	if dev.ARQ == nil || dev.Reverse == nil {
		t.Fatal("reliable assembly missing ARQ or reverse link")
	}
	if err := dev.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	dev.GlideTo(25, 400*time.Millisecond)
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	dev.GlideTo(6, 400*time.Millisecond)
	if err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	dev.Stop()
	for i := 0; i < 40 && dev.ARQ.Outstanding() > 0; i++ {
		if err := dev.Run(250 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if dev.ARQ.Outstanding() != 0 {
		t.Fatalf("outstanding %d after drain", dev.ARQ.Outstanding())
	}
	st := dev.Host.Stats()
	if st.MissedSeq != 0 {
		t.Fatalf("gaps under ARQ: %+v", st)
	}
	if st.Events == 0 {
		t.Fatal("no events delivered")
	}
	if lost := dev.Link.Stats().Lost; lost == 0 {
		t.Fatal("lossy config lost nothing — test exercises no repair")
	}
	if dev.ARQ.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions on a lossy link")
	}
}
