package smartits

import (
	"fmt"

	"github.com/hcilab/distscroll/internal/serial"
)

// This file wires the base board's serial/programmer connector (paper
// Figure 3: "the base Smart-Its board with serial and programmer
// connector", elongated with ribbon cable for code downloads) to the
// microcontroller's flash.

// AttachProgrammer powers up the programming path: it creates the flash
// array (if absent), the serial pair and the device-resident bootloader,
// and returns the host-side port plus a programmer bound to it. Call once
// per programming session.
func (b *Board) AttachProgrammer() (*serial.Programmer, error) {
	if b.Flash == nil {
		b.Flash = serial.NewFlash()
	}
	host, dev := serial.Pair(38_400)
	bl, err := serial.NewBootloader(dev, b.Flash)
	if err != nil {
		return nil, fmt.Errorf("smartits: %w", err)
	}
	b.Bootloader = bl
	b.SerialHost = host
	prog, err := serial.NewProgrammer(host, bl.Service)
	if err != nil {
		return nil, fmt.Errorf("smartits: %w", err)
	}
	return prog, nil
}

// FirmwareVersion reads the version string embedded in flash, or "" when
// no image was downloaded.
func (b *Board) FirmwareVersion() (string, error) {
	if b.Flash == nil {
		return "", nil
	}
	v, err := serial.InstalledVersion(b.Flash)
	if err != nil {
		return "", fmt.Errorf("smartits: %w", err)
	}
	return v, nil
}

// DownloadFirmware is the convenience path the maintainer uses: build an
// image from code+version, stream it through the bootloader and verify.
func (b *Board) DownloadFirmware(code []byte, version string) error {
	img, err := serial.BuildImage(code, version)
	if err != nil {
		return fmt.Errorf("smartits: %w", err)
	}
	prog, err := b.AttachProgrammer()
	if err != nil {
		return err
	}
	if _, err := prog.Download(img); err != nil {
		return fmt.Errorf("smartits: download: %w", err)
	}
	if err := serial.Verify(b.Flash, img); err != nil {
		return fmt.Errorf("smartits: %w", err)
	}
	return nil
}
