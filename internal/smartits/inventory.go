package smartits

import (
	"fmt"
	"strings"
)

// Component is one entry of the hardware inventory (paper Figure 3 shows
// the open device; this is the bill of materials with power accounting).
type Component struct {
	Ref       string // figure-3 reference where applicable
	Name      string
	Board     string  // "base" or "add-on"
	CurrentMA float64 // typical supply current
}

// Inventory returns the bill of materials of the assembled board.
func (b *Board) Inventory() []Component {
	inv := []Component{
		{Ref: "3", Name: "PIC 18F452 microcontroller", Board: "base", CurrentMA: 12},
		{Ref: "", Name: "RF transceiver module", Board: "base", CurrentMA: 18},
		{Ref: "", Name: "serial / programmer connector", Board: "base", CurrentMA: 0},
		{Ref: "2", Name: "add-on board connector (ribbon elongated)", Board: "base", CurrentMA: 0},
		{Ref: "5", Name: "Sharp GP2D120 distance sensor", Board: "add-on", CurrentMA: 33},
		{Ref: "", Name: "ADXL311JE acceleration sensor", Board: "add-on", CurrentMA: 0.4},
		{Ref: "", Name: "Barton BT96040 display (top)", Board: "add-on", CurrentMA: 1.5},
		{Ref: "", Name: "Barton BT96040 display (bottom)", Board: "add-on", CurrentMA: 1.5},
		{Ref: "4", Name: "contrast potentiometer", Board: "add-on", CurrentMA: 0.1},
		{Ref: "4", Name: "9 V block battery", Board: "case", CurrentMA: 0},
	}
	if b.Sensor2 != nil {
		inv = append(inv, Component{
			Ref: "1", Name: "Sharp GP2D120 distance sensor (second, unused)",
			Board: "add-on", CurrentMA: 33,
		})
	}
	for _, id := range b.Pad.Layout().Buttons {
		inv = append(inv, Component{
			Name: "push button " + id.String(), Board: "case", CurrentMA: 0,
		})
	}
	return inv
}

// TotalCurrentMA sums the typical supply current of every component.
func (b *Board) TotalCurrentMA() float64 {
	total := 0.0
	for _, c := range b.Inventory() {
		total += c.CurrentMA
	}
	return total
}

// BatteryLifeHours estimates runtime on the 9 V block (≈550 mAh alkaline).
func (b *Board) BatteryLifeHours() float64 {
	draw := b.TotalCurrentMA()
	if draw <= 0 {
		return 0
	}
	return 550 / draw
}

// BatteryLifeHoursAtDuty estimates runtime when the distance sensors run
// at the given sensing duty factor (power-save firmware): the IR emitters
// only burn current while sampling.
func (b *Board) BatteryLifeHoursAtDuty(duty float64) float64 {
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	sensorMA := 0.0
	otherMA := 0.0
	for _, c := range b.Inventory() {
		if strings.Contains(c.Name, "GP2D120") {
			sensorMA += c.CurrentMA
		} else {
			otherMA += c.CurrentMA
		}
	}
	draw := otherMA + sensorMA*duty
	if draw <= 0 {
		return 0
	}
	return 550 / draw
}

// InventoryReport renders the bill of materials as a table.
func (b *Board) InventoryReport() string {
	var s strings.Builder
	fmt.Fprintf(&s, "%-4s %-48s %-7s %8s\n", "ref", "component", "board", "mA")
	for _, c := range b.Inventory() {
		fmt.Fprintf(&s, "%-4s %-48s %-7s %8.1f\n", c.Ref, c.Name, c.Board, c.CurrentMA)
	}
	fmt.Fprintf(&s, "total draw %.1f mA, est. battery life %.1f h\n",
		b.TotalCurrentMA(), b.BatteryLifeHours())
	return s.String()
}
