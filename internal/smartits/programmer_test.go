package smartits

import (
	"bytes"
	"testing"

	"github.com/hcilab/distscroll/internal/serial"
	"github.com/hcilab/distscroll/internal/sim"
)

func TestDownloadFirmwareEndToEnd(t *testing.T) {
	b, err := Assemble(DefaultConfig(), sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.FirmwareVersion()
	if err != nil {
		t.Fatal(err)
	}
	if v != "" {
		t.Fatalf("fresh board has version %q", v)
	}
	code := bytes.Repeat([]byte{0xDE, 0xAD}, 400)
	if err := b.DownloadFirmware(code, "distscroll-0.9"); err != nil {
		t.Fatal(err)
	}
	v, err = b.FirmwareVersion()
	if err != nil {
		t.Fatal(err)
	}
	if v != "distscroll-0.9" {
		t.Fatalf("version %q", v)
	}
	if b.Bootloader.Records() == 0 {
		t.Fatal("bootloader saw no records")
	}
	// Code actually landed in flash.
	got := make([]byte, len(code))
	if err := b.Flash.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, code) {
		t.Fatal("flash contents mismatch")
	}
}

func TestFirmwareUpgradeBumpsVersionAndWear(t *testing.T) {
	b, err := Assemble(DefaultConfig(), sim.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DownloadFirmware([]byte("first build"), "v1.0"); err != nil {
		t.Fatal(err)
	}
	if err := b.DownloadFirmware([]byte("second build with fixes"), "v1.1"); err != nil {
		t.Fatal(err)
	}
	v, err := b.FirmwareVersion()
	if err != nil {
		t.Fatal(err)
	}
	if v != "v1.1" {
		t.Fatalf("version %q", v)
	}
	if b.Flash.MaxEraseCycles() < 2 {
		t.Fatalf("wear %d, want >= 2 after an upgrade", b.Flash.MaxEraseCycles())
	}
}

func TestDownloadFirmwareValidation(t *testing.T) {
	b, err := Assemble(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DownloadFirmware(make([]byte, serial.VersionAddr+1), "v"); err == nil {
		t.Fatal("oversized image accepted")
	}
}
