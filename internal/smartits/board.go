// Package smartits models the Smart-Its prototyping platform (Gellersen et
// al., IEEE Pervasive 2004) on which the DistScroll is built: a base board
// carrying the PIC 18F452 microcontroller, RF module, serial/programmer
// connector and analog input ports, plus an add-on board carrying the two
// displays, the distance sensor wiring, the acceleration sensor and the
// contrast potentiometer (paper Figures 2 and 3).
package smartits

import (
	"errors"
	"fmt"

	"github.com/hcilab/distscroll/internal/adc"
	"github.com/hcilab/distscroll/internal/adxl311"
	"github.com/hcilab/distscroll/internal/buttons"
	"github.com/hcilab/distscroll/internal/display"
	"github.com/hcilab/distscroll/internal/gp2d120"
	"github.com/hcilab/distscroll/internal/i2c"
	"github.com/hcilab/distscroll/internal/serial"
	"github.com/hcilab/distscroll/internal/sim"
)

// PIC 18F452 resource envelope (paper Section 4: "8 bit microcontroller
// with 32 kbytes of flash memory and 1.5 kbytes RAM").
const (
	FlashBytes = 32 * 1024
	RAMBytes   = 1536
	// CPUMHz is the instruction clock of the Smart-Its configuration.
	CPUMHz = 10
)

// ADC channel assignments on the add-on board connector.
const (
	ChanDistance  = 0 // GP2D120 output (the black cables of Figure 3)
	ChanAccelX    = 1
	ChanAccelY    = 2
	ChanBattery   = 3
	ChanDistance2 = 4 // second GP2D120 (fitted, unused by the prototype)
	NumChannels   = 5
)

// I2C addresses of the two displays.
const (
	AddrTopDisplay    = 0x3C
	AddrBottomDisplay = 0x3D
)

// ErrNotAssembled is returned when using a board before Assemble.
var ErrNotAssembled = errors.New("smartits: board not assembled")

// Config selects the board variant.
type Config struct {
	Sensor  gp2d120.Config
	Surface gp2d120.Surface
	Layout  buttons.Layout
	// SecondSensor mirrors the prototype, which "comprises two distance
	// sensors (only one is used in our experiments so far)".
	SecondSensor bool
	// BatteryVolts is the 9 V block battery level.
	BatteryVolts float64
}

// DefaultConfig is the prototype as built.
func DefaultConfig() Config {
	return Config{
		Sensor:       gp2d120.DefaultConfig(),
		Surface:      gp2d120.DefaultSurface(),
		Layout:       buttons.PrototypeLayout(),
		SecondSensor: true,
		BatteryVolts: 9.0,
	}
}

// Board is the assembled Smart-Its base + add-on board pair.
type Board struct {
	cfg Config

	Sensor  *gp2d120.Sensor
	Sensor2 *gp2d120.Sensor // fitted but unused, as in the prototype
	Accel   *adxl311.Accel
	ADC     *adc.Converter
	Bus     *i2c.Bus
	Top     *display.Display
	Bottom  *display.Display
	Pad     *buttons.Pad

	// Programming path (serial/programmer connector of Figure 3); nil
	// until AttachProgrammer or DownloadFirmware is used.
	Flash      *serial.Flash
	Bootloader *serial.Bootloader
	SerialHost *serial.Port

	// distanceCm is the physical distance between the sensor face and the
	// user's body; the environment (hand model) drives it.
	distanceCm float64
	battery    float64
	contrast   byte // potentiometer position 0..63
}

// Assemble builds and wires a board. rng may be nil for a fully
// deterministic board.
func Assemble(cfg Config, rng *sim.Rand) (*Board, error) {
	if cfg.BatteryVolts <= 0 {
		cfg.BatteryVolts = 9.0
	}
	var sensorRng, sensor2Rng, accelRng, adcRng *sim.Rand
	if rng != nil {
		sensorRng = rng.Split()
		sensor2Rng = rng.Split()
		accelRng = rng.Split()
		adcRng = rng.Split()
	}

	sensor, err := gp2d120.New(cfg.Sensor, cfg.Surface, sensorRng)
	if err != nil {
		return nil, fmt.Errorf("smartits: sensor: %w", err)
	}
	b := &Board{
		cfg:        cfg,
		Sensor:     sensor,
		Accel:      adxl311.New(accelRng),
		Bus:        i2c.NewBus(0),
		Top:        display.New(),
		Bottom:     display.New(),
		Pad:        buttons.NewPad(cfg.Layout),
		distanceCm: 15, // comfortable mid-range hold
		battery:    cfg.BatteryVolts,
		contrast:   32,
	}
	if cfg.SecondSensor {
		s2, err := gp2d120.New(cfg.Sensor, cfg.Surface, sensor2Rng)
		if err != nil {
			return nil, fmt.Errorf("smartits: second sensor: %w", err)
		}
		b.Sensor2 = s2
	}

	conv, err := adc.New(adc.DefaultVref, NumChannels, adcRng)
	if err != nil {
		return nil, fmt.Errorf("smartits: adc: %w", err)
	}
	b.ADC = conv
	wiring := []struct {
		ch  int
		src adc.Source
	}{
		{ChanDistance, func() float64 { return b.Sensor.Sample(b.distanceCm) }},
		{ChanAccelX, b.Accel.VoltageX},
		{ChanAccelY, b.Accel.VoltageY},
		{ChanBattery, func() float64 { return b.battery / 2 }}, // divider
	}
	for _, w := range wiring {
		if err := conv.Connect(w.ch, w.src); err != nil {
			return nil, fmt.Errorf("smartits: wire channel %d: %w", w.ch, err)
		}
	}
	if b.Sensor2 != nil {
		// The second sensor looks at the same scene with independent
		// noise — the dual-sensor firmware mode averages the two.
		err := conv.Connect(ChanDistance2, func() float64 { return b.Sensor2.Sample(b.distanceCm) })
		if err != nil {
			return nil, fmt.Errorf("smartits: wire channel %d: %w", ChanDistance2, err)
		}
	}

	if err := b.Bus.Attach(AddrTopDisplay, b.Top); err != nil {
		return nil, fmt.Errorf("smartits: top display: %w", err)
	}
	if err := b.Bus.Attach(AddrBottomDisplay, b.Bottom); err != nil {
		return nil, fmt.Errorf("smartits: bottom display: %w", err)
	}
	return b, nil
}

// SetDistance sets the physical sensor-to-body distance in cm.
func (b *Board) SetDistance(cm float64) {
	if cm < 0 {
		cm = 0
	}
	b.distanceCm = cm
}

// Distance returns the current physical distance in cm.
func (b *Board) Distance() float64 { return b.distanceCm }

// SetContrastPot turns the contrast potentiometer (0..63) and propagates it
// to both displays over I2C, like the trimmer next to the connector.
func (b *Board) SetContrastPot(level byte) error {
	b.contrast = level
	for _, addr := range []byte{AddrTopDisplay, AddrBottomDisplay} {
		if err := b.Bus.Write(addr, []byte{display.CmdContrast, level}); err != nil {
			return fmt.Errorf("smartits: contrast: %w", err)
		}
	}
	return nil
}

// Battery returns the battery voltage.
func (b *Board) Battery() float64 { return b.battery }

// DrainBattery lowers the battery voltage by dv (for long-session tests).
func (b *Board) DrainBattery(dv float64) {
	b.battery -= dv
	if b.battery < 0 {
		b.battery = 0
	}
}

// SelfCheck verifies the Figure-2 topology: every component must be
// reachable over its bus or channel. It returns the first wiring fault.
func (b *Board) SelfCheck() error {
	if b.ADC == nil || b.Bus == nil {
		return ErrNotAssembled
	}
	for ch := 0; ch < NumChannels; ch++ {
		if _, err := b.ADC.Read(ch); err != nil {
			return fmt.Errorf("smartits: self-check adc channel %d: %w", ch, err)
		}
	}
	for _, addr := range []byte{AddrTopDisplay, AddrBottomDisplay} {
		if !b.Bus.Probe(addr) {
			return fmt.Errorf("smartits: self-check: no display at %#x", addr)
		}
		if err := b.Bus.Write(addr, []byte{display.CmdStatus}); err != nil {
			return fmt.Errorf("smartits: self-check: %w", err)
		}
		if _, err := b.Bus.Read(addr, 4); err != nil {
			return fmt.Errorf("smartits: self-check: %w", err)
		}
	}
	if len(b.Pad.Layout().Buttons) == 0 {
		return errors.New("smartits: self-check: no buttons")
	}
	return nil
}
