package smartits

import (
	"strings"
	"testing"

	"github.com/hcilab/distscroll/internal/buttons"
	"github.com/hcilab/distscroll/internal/sim"
)

func assemble(t *testing.T) *Board {
	t.Helper()
	b, err := Assemble(DefaultConfig(), sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAssembleAndSelfCheck(t *testing.T) {
	b := assemble(t)
	if err := b.SelfCheck(); err != nil {
		t.Fatalf("self-check: %v", err)
	}
}

func TestDistanceChannelTracksPhysicalDistance(t *testing.T) {
	b := assemble(t)
	read := func() float64 {
		code, err := b.ADC.Read(ChanDistance)
		if err != nil {
			t.Fatal(err)
		}
		return b.ADC.Voltage(code)
	}
	b.SetDistance(5)
	near := read()
	b.SetDistance(28)
	far := read()
	if near <= far {
		t.Fatalf("voltage should fall with distance: near=%.3f far=%.3f", near, far)
	}
}

func TestSetDistanceClampsNegative(t *testing.T) {
	b := assemble(t)
	b.SetDistance(-5)
	if b.Distance() != 0 {
		t.Fatalf("distance = %v", b.Distance())
	}
}

func TestBatteryChannel(t *testing.T) {
	b := assemble(t)
	code, err := b.ADC.Read(ChanBattery)
	if err != nil {
		t.Fatal(err)
	}
	// 9 V through the divider = 4.5 V at the pin.
	v := b.ADC.Voltage(code)
	if v < 4.3 || v > 4.7 {
		t.Fatalf("battery pin = %.2f V", v)
	}
	b.DrainBattery(3)
	if b.Battery() != 6 {
		t.Fatalf("battery = %v", b.Battery())
	}
	b.DrainBattery(100)
	if b.Battery() != 0 {
		t.Fatal("battery went negative")
	}
}

func TestContrastPotPropagates(t *testing.T) {
	b := assemble(t)
	if err := b.SetContrastPot(55); err != nil {
		t.Fatal(err)
	}
	if b.Top.Contrast() != 55 || b.Bottom.Contrast() != 55 {
		t.Fatalf("contrast: top=%d bottom=%d", b.Top.Contrast(), b.Bottom.Contrast())
	}
}

func TestSecondSensorFitted(t *testing.T) {
	b := assemble(t)
	if b.Sensor2 == nil {
		t.Fatal("prototype config should fit the second (unused) sensor")
	}
	cfg := DefaultConfig()
	cfg.SecondSensor = false
	b2, err := Assemble(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Sensor2 != nil {
		t.Fatal("second sensor fitted despite config")
	}
}

func TestAccelerometerWired(t *testing.T) {
	b := assemble(t)
	code, err := b.ADC.Read(ChanAccelX)
	if err != nil {
		t.Fatal(err)
	}
	v := b.ADC.Voltage(code)
	// Flat orientation: zero-g output ~1.5 V.
	if v < 1.3 || v > 1.7 {
		t.Fatalf("accel X pin = %.2f V", v)
	}
}

func TestInventoryAndPower(t *testing.T) {
	b := assemble(t)
	inv := b.Inventory()
	if len(inv) < 10 {
		t.Fatalf("inventory has %d components", len(inv))
	}
	names := make(map[string]bool, len(inv))
	for _, c := range inv {
		names[c.Name] = true
	}
	for _, want := range []string{
		"PIC 18F452 microcontroller",
		"Sharp GP2D120 distance sensor",
		"Barton BT96040 display (top)",
		"ADXL311JE acceleration sensor",
	} {
		if !names[want] {
			t.Errorf("inventory missing %q", want)
		}
	}
	if b.TotalCurrentMA() <= 50 {
		t.Fatalf("total draw %.1f mA implausibly low", b.TotalCurrentMA())
	}
	if h := b.BatteryLifeHours(); h <= 0 || h > 24 {
		t.Fatalf("battery life %.1f h implausible", h)
	}
	rep := b.InventoryReport()
	if !strings.Contains(rep, "total draw") {
		t.Fatalf("report:\n%s", rep)
	}
}

func TestButtonsWiredPerLayout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = buttons.SingleLargeButtonLayout()
	b, err := Assemble(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Pad.Layout().Buttons); got != 1 {
		t.Fatalf("buttons = %d", got)
	}
	// Inventory follows the layout.
	count := 0
	for _, c := range b.Inventory() {
		if strings.HasPrefix(c.Name, "push button") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("inventory lists %d buttons", count)
	}
}

func TestDeterministicAssembly(t *testing.T) {
	read := func() uint16 {
		b, err := Assemble(DefaultConfig(), sim.NewRand(7))
		if err != nil {
			t.Fatal(err)
		}
		b.SetDistance(12)
		code, err := b.ADC.Read(ChanDistance)
		if err != nil {
			t.Fatal(err)
		}
		return code
	}
	if read() != read() {
		t.Fatal("same seed produced different readings")
	}
}
