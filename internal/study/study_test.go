package study

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/participant"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/technique"
)

func TestGenerateTrialsDistances(t *testing.T) {
	rng := sim.NewRand(1)
	amps := []int{1, 2, 4}
	specs := GenerateTrials(20, amps, 5, rng)
	if len(specs) != 15 {
		t.Fatalf("trials = %d, want 15", len(specs))
	}
	counts := map[int]int{}
	for _, s := range specs {
		if s.Target < 0 || s.Target >= 20 {
			t.Fatalf("target %d out of range", s.Target)
		}
		counts[s.Distance]++
	}
	for _, a := range amps {
		if counts[a] == 0 {
			t.Errorf("amplitude %d never generated: %v", a, counts)
		}
	}
}

func TestGenerateTrialsClampsAmplitude(t *testing.T) {
	rng := sim.NewRand(2)
	specs := GenerateTrials(5, []int{40}, 3, rng)
	for _, s := range specs {
		if s.Distance >= 5 || s.Distance == 0 {
			t.Fatalf("distance %d invalid for 5 entries", s.Distance)
		}
	}
	if GenerateTrials(1, []int{1}, 1, rng) != nil {
		t.Fatal("degenerate list should produce no trials")
	}
}

func TestRunSessionSmall(t *testing.T) {
	rng := sim.NewRand(3)
	cfg := SessionConfig{
		Seed:        3,
		Participant: participant.DefaultConfig(),
		Entries:     10,
		Trials:      GenerateTrials(10, []int{1, 3}, 2, rng),
	}
	res, err := RunSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("results = %d", len(res.Results))
	}
	if res.Duration <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.HostStats.Events == 0 {
		t.Fatal("no telemetry captured")
	}
	times := res.Times()
	if len(times) != 4 || times[0] <= 0 {
		t.Fatalf("times: %v", times)
	}
	if r := res.ErrorRate(); r < 0 || r > 1 {
		t.Fatalf("error rate %v", r)
	}
}

func TestRunSessionWithHierarchicalMenu(t *testing.T) {
	rng := sim.NewRand(4)
	cfg := SessionConfig{
		Seed:        4,
		Participant: participant.DefaultConfig(),
		Menu:        menu.PhoneMenu(),
		Trials:      GenerateTrials(6, []int{1, 2}, 1, rng),
	}
	res, err := RunSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("results = %d", len(res.Results))
	}
}

func TestRunConditionAnalyzable(t *testing.T) {
	cond := Condition{
		Technique:  technique.NewDistScroll(),
		Glove:      hand.BareHand(),
		Entries:    20,
		Amplitudes: []int{1, 2, 4, 8},
		Reps:       10,
	}
	res, err := RunCondition(cond, sim.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "distscroll" || res.Glove != "bare" {
		t.Fatalf("labels: %+v", res)
	}
	if res.Analysis.Fit.Slope <= 0 {
		t.Fatalf("slope %v should be positive (Fitts)", res.Analysis.Fit.Slope)
	}
	if res.MeanMT.N != 40 {
		t.Fatalf("n = %d", res.MeanMT.N)
	}
}

func TestRunConditionDefaults(t *testing.T) {
	cond := Condition{Technique: technique.NewWheel(), Glove: hand.BareHand()}
	if _, err := RunCondition(cond, sim.NewRand(6)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTrialsCSV(t *testing.T) {
	results := []participant.TrialResult{
		{Target: 3, Time: 1500e6, Corrections: 1},
		{Target: 7, Time: 900e6, WrongSelection: true},
	}
	var buf bytes.Buffer
	if err := WriteTrialsCSV(&buf, "P01", results); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[0][0] != "participant" {
		t.Fatalf("header: %v", records[0])
	}
	if records[1][0] != "P01" || records[2][6] != "true" {
		t.Fatalf("rows: %v", records[1:])
	}
}

func TestWriteConditionsCSV(t *testing.T) {
	cond := Condition{Technique: technique.NewTilt(), Glove: hand.WinterGlove(), Entries: 20, Reps: 5}
	res, err := RunCondition(cond, sim.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteConditionsCSV(&buf, []ConditionResult{res}); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[1][0] != "tilt" || records[1][1] != "winter" {
		t.Fatalf("csv: %v", records)
	}
}

func TestConditionTable(t *testing.T) {
	cond := Condition{Technique: technique.NewStylus(), Glove: hand.BareHand(), Entries: 20, Reps: 5}
	res, err := RunCondition(cond, sim.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	table := ConditionTable([]ConditionResult{res})
	if !strings.Contains(table, "stylus") || !strings.Contains(table, "technique") {
		t.Fatalf("table:\n%s", table)
	}
}
