package study

import (
	"fmt"

	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/sim"
)

// This file provides the experimental-design tooling of a proper HCI
// study: balanced Latin squares for counterbalancing condition order
// across participants, and hierarchical task generation over real menu
// trees (the paper's study used the fictive phone menu, not flat lists).

// LatinSquare returns an n×n balanced Latin square (for even n) or a
// cyclic Latin square (odd n): row p is the condition order for
// participant p, guaranteeing each condition appears in each position
// equally often.
func LatinSquare(n int) ([][]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("study: latin square size %d", n)
	}
	sq := make([][]int, n)
	for p := 0; p < n; p++ {
		row := make([]int, n)
		// Williams design: 0, 1, n-1, 2, n-2, ... shifted by p.
		seq := make([]int, n)
		seq[0] = 0
		lo, hi := 1, n-1
		for i := 1; i < n; i++ {
			if i%2 == 1 {
				seq[i] = lo
				lo++
			} else {
				seq[i] = hi
				hi--
			}
		}
		for i, v := range seq {
			row[i] = (v + p) % n
		}
		sq[p] = row
	}
	return sq, nil
}

// IsLatinSquare verifies the defining property: every value appears
// exactly once per row and once per column.
func IsLatinSquare(sq [][]int) bool {
	n := len(sq)
	for _, row := range sq {
		if len(row) != n {
			return false
		}
	}
	for i := 0; i < n; i++ {
		rowSeen := make([]bool, n)
		colSeen := make([]bool, n)
		for j := 0; j < n; j++ {
			r := sq[i][j]
			c := sq[j][i]
			if r < 0 || r >= n || rowSeen[r] {
				return false
			}
			if c < 0 || c >= n || colSeen[c] {
				return false
			}
			rowSeen[r] = true
			colSeen[c] = true
		}
	}
	return true
}

// LeafPath is one hierarchical task: the per-level entry indices from the
// root to a leaf, plus the leaf's title for reporting.
type LeafPath struct {
	Indices []int
	Title   string
}

// GenerateLeafPaths returns n tasks drawn uniformly from the leaves of a
// menu tree, never repeating the same leaf twice in a row.
func GenerateLeafPaths(root *menu.Node, n int, rng *sim.Rand) ([]LeafPath, error) {
	if root == nil || len(root.Children) == 0 {
		return nil, fmt.Errorf("study: menu has no entries")
	}
	var leaves []LeafPath
	var walk func(node *menu.Node, path []int)
	walk = func(node *menu.Node, path []int) {
		for i, c := range node.Children {
			p := append(append([]int(nil), path...), i)
			if c.IsLeaf() {
				leaves = append(leaves, LeafPath{Indices: p, Title: c.Title})
			} else {
				walk(c, p)
			}
		}
	}
	walk(root, nil)
	if len(leaves) == 0 {
		return nil, fmt.Errorf("study: menu has no leaves")
	}

	out := make([]LeafPath, 0, n)
	last := -1
	for len(out) < n {
		i := rng.Intn(len(leaves))
		if i == last && len(leaves) > 1 {
			continue
		}
		out = append(out, leaves[i])
		last = i
	}
	return out, nil
}
