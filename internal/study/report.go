package study

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/hcilab/distscroll/internal/participant"
)

// WriteTrialsCSV writes per-trial session results as CSV.
func WriteTrialsCSV(w io.Writer, participantID string, results []participant.TrialResult) error {
	cw := csv.NewWriter(w)
	header := []string{"participant", "trial", "target", "time_s", "discovery_s", "corrections", "wrong_selection"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("study: csv: %w", err)
	}
	for i, r := range results {
		rec := []string{
			participantID,
			strconv.Itoa(i + 1),
			strconv.Itoa(r.Target),
			strconv.FormatFloat(r.Time.Seconds(), 'f', 3, 64),
			strconv.FormatFloat(r.Discovery.Seconds(), 'f', 3, 64),
			strconv.Itoa(r.Corrections),
			strconv.FormatBool(r.WrongSelection),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("study: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("study: csv: %w", err)
	}
	return nil
}

// WriteConditionsCSV writes technique-condition aggregates as CSV.
func WriteConditionsCSV(w io.Writer, conds []ConditionResult) error {
	cw := csv.NewWriter(w)
	header := []string{"technique", "glove", "fitts_a_s", "fitts_b_s_per_bit", "r2", "throughput_bps", "error_rate", "mean_mt_s", "n"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("study: csv: %w", err)
	}
	for _, c := range conds {
		rec := []string{
			c.Name,
			c.Glove,
			strconv.FormatFloat(c.Analysis.Fit.Intercept, 'f', 4, 64),
			strconv.FormatFloat(c.Analysis.Fit.Slope, 'f', 4, 64),
			strconv.FormatFloat(c.Analysis.Fit.R2, 'f', 4, 64),
			strconv.FormatFloat(c.Analysis.Throughput, 'f', 3, 64),
			strconv.FormatFloat(c.Analysis.ErrorRate, 'f', 4, 64),
			strconv.FormatFloat(c.MeanMT.Mean, 'f', 3, 64),
			strconv.Itoa(c.Analysis.N),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("study: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("study: csv: %w", err)
	}
	return nil
}

// ConditionTable renders condition results as an aligned text table.
func ConditionTable(conds []ConditionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %10s %10s %8s %8s %8s\n",
		"technique", "glove", "meanMT(s)", "TP(bit/s)", "err%", "slope", "R2")
	for _, c := range conds {
		fmt.Fprintf(&b, "%-12s %-8s %10.3f %10.2f %8.1f %8.3f %8.3f\n",
			c.Name, c.Glove, c.MeanMT.Mean, c.Analysis.Throughput,
			100*c.Analysis.ErrorRate, c.Analysis.Fit.Slope, c.Analysis.Fit.R2)
	}
	return b.String()
}
