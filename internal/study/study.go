// Package study is the experiment harness: it generates balanced trial
// sets, runs full-device user-study sessions and kinematic technique
// conditions, aggregates the metrics, and writes CSV — the quantitative
// re-run of the paper's Section 6 study and Section 7 open questions.
package study

import (
	"fmt"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/fitts"
	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/participant"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/stats"
	"github.com/hcilab/distscroll/internal/technique"
)

// TrialSpec is one planned selection trial.
type TrialSpec struct {
	Target   int
	Distance int // entries between the previous cursor and the target
}

// GenerateTrials produces a target sequence over a list of n entries whose
// successive cursor distances cycle through the given amplitude set — the
// balanced-amplitude design of Fitts experiments (Hinckley et al. 2002).
func GenerateTrials(n int, amplitudes []int, reps int, rng *sim.Rand) []TrialSpec {
	if n < 2 {
		return nil
	}
	if len(amplitudes) == 0 {
		amplitudes = []int{1, 2, 4}
	}
	specs := make([]TrialSpec, 0, len(amplitudes)*reps)
	cursor := 0
	for r := 0; r < reps; r++ {
		order := rng.Perm(len(amplitudes))
		for _, ai := range order {
			amp := amplitudes[ai]
			if amp >= n {
				amp = n - 1
			}
			target := cursor + amp
			if target >= n || (rng.Bool(0.5) && cursor-amp >= 0) {
				target = cursor - amp
			}
			if target < 0 {
				target = cursor + amp
			}
			if target >= n {
				target = n - 1
			}
			if target == cursor {
				target = (cursor + 1) % n
			}
			d := target - cursor
			if d < 0 {
				d = -d
			}
			specs = append(specs, TrialSpec{Target: target, Distance: d})
			cursor = target
		}
	}
	return specs
}

// SessionConfig configures one participant session on the full device.
type SessionConfig struct {
	Seed        uint64
	Device      core.Config
	Participant participant.Config
	// Menu builds the navigated tree; nil uses a flat list of Entries.
	Menu    *menu.Node
	Entries int
	Trials  []TrialSpec
}

// SessionResult is the outcome of one participant session.
type SessionResult struct {
	Results []participant.TrialResult
	// Device diagnostics.
	HostStats core.HostStats
	Duration  time.Duration
}

// ErrorRate returns the fraction of trials with any error.
func (s SessionResult) ErrorRate() float64 {
	if len(s.Results) == 0 {
		return 0
	}
	errs := 0
	for _, r := range s.Results {
		if r.Errored() {
			errs++
		}
	}
	return float64(errs) / float64(len(s.Results))
}

// Times returns the per-trial completion times in seconds, excluding
// first-trial discovery overhead.
func (s SessionResult) Times() []float64 {
	out := make([]float64, 0, len(s.Results))
	for _, r := range s.Results {
		out = append(out, (r.Time - r.Discovery).Seconds())
	}
	return out
}

// RunSession executes one full-device participant session.
func RunSession(cfg SessionConfig) (SessionResult, error) {
	root := cfg.Menu
	if root == nil {
		n := cfg.Entries
		if n < 2 {
			n = 10
		}
		root = menu.FlatMenu(n)
	}
	devCfg := cfg.Device
	if devCfg.Seed == 0 {
		devCfg = core.DefaultConfig()
	}
	devCfg.Seed = cfg.Seed
	dev, err := core.NewDevice(devCfg, root)
	if err != nil {
		return SessionResult{}, fmt.Errorf("study: %w", err)
	}
	defer dev.Stop()

	rng := sim.NewRand(cfg.Seed ^ 0xabcdef)
	p, err := participant.New(cfg.Participant, dev, rng)
	if err != nil {
		return SessionResult{}, fmt.Errorf("study: %w", err)
	}
	defer p.Detach()

	res := SessionResult{Results: make([]participant.TrialResult, 0, len(cfg.Trials))}
	for i, spec := range cfg.Trials {
		r, err := p.SelectEntry(spec.Target)
		if err != nil {
			return res, fmt.Errorf("study: trial %d: %w", i, err)
		}
		res.Results = append(res.Results, r)
	}
	res.HostStats = dev.Host.Stats()
	res.Duration = dev.Clock.Now()
	return res, nil
}

// Condition is one technique × glove cell of the comparison experiment.
type Condition struct {
	Technique technique.Technique
	Glove     hand.Glove
	// Entries is the list length; Amplitudes the distance set; Reps the
	// repetitions per amplitude.
	Entries    int
	Amplitudes []int
	Reps       int
}

// ConditionResult aggregates one cell.
type ConditionResult struct {
	Name     string
	Glove    string
	Analysis fitts.Analysis
	MeanMT   stats.Summary
}

// RunCondition executes one technique condition and analyses it.
func RunCondition(c Condition, rng *sim.Rand) (ConditionResult, error) {
	if c.Entries < 2 {
		c.Entries = 20
	}
	if c.Reps < 1 {
		c.Reps = 10
	}
	if len(c.Amplitudes) == 0 {
		c.Amplitudes = []int{1, 2, 4, 8, 16}
	}
	obs := make([]fitts.Observation, 0, len(c.Amplitudes)*c.Reps)
	times := make([]float64, 0, cap(obs))
	for r := 0; r < c.Reps; r++ {
		for _, amp := range c.Amplitudes {
			if amp >= c.Entries {
				continue
			}
			tr := technique.Trial{
				DistanceEntries: amp,
				TotalEntries:    c.Entries,
				Glove:           c.Glove,
			}
			result := c.Technique.Acquire(tr, rng)
			obs = append(obs, fitts.Observation{
				D:   float64(amp),
				W:   1, // one entry wide in task space
				MT:  result.MT,
				Err: result.Err,
			})
			times = append(times, result.MT.Seconds())
		}
	}
	an, err := fitts.Analyze(obs)
	if err != nil {
		return ConditionResult{}, fmt.Errorf("study: condition %s/%s: %w", c.Technique.Name(), c.Glove.Name, err)
	}
	return ConditionResult{
		Name:     c.Technique.Name(),
		Glove:    c.Glove.Name,
		Analysis: an,
		MeanMT:   stats.Summarize(times),
	}, nil
}
