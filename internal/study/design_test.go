package study

import (
	"testing"
	"testing/quick"

	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/sim"
)

func TestLatinSquareProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%10) + 1
		sq, err := LatinSquare(n)
		if err != nil {
			return false
		}
		return IsLatinSquare(sq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLatinSquareBalancedFirstPositions(t *testing.T) {
	sq, err := LatinSquare(4)
	if err != nil {
		t.Fatal(err)
	}
	// Each condition leads exactly once across the 4 participants.
	seen := make(map[int]int)
	for _, row := range sq {
		seen[row[0]]++
	}
	for c := 0; c < 4; c++ {
		if seen[c] != 1 {
			t.Fatalf("condition %d leads %d times: %v", c, seen[c], sq)
		}
	}
}

func TestLatinSquareValidation(t *testing.T) {
	if _, err := LatinSquare(0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if IsLatinSquare([][]int{{0, 1}, {0, 1}}) {
		t.Fatal("repeated column accepted")
	}
	if IsLatinSquare([][]int{{0, 1}}) {
		t.Fatal("ragged square accepted")
	}
}

func TestGenerateLeafPaths(t *testing.T) {
	rng := sim.NewRand(1)
	paths, err := GenerateLeafPaths(menu.PhoneMenu(), 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 20 {
		t.Fatalf("paths = %d", len(paths))
	}
	for i, p := range paths {
		if len(p.Indices) == 0 || p.Title == "" {
			t.Fatalf("path %d malformed: %+v", i, p)
		}
		if i > 0 && p.Title == paths[i-1].Title && len(paths) > 1 {
			// Allowed only if the menu had one leaf, which it does not.
			t.Fatalf("repeated consecutive leaf %q", p.Title)
		}
	}
	// Each path resolves to a real leaf.
	for _, p := range paths {
		node := menu.PhoneMenu()
		for _, idx := range p.Indices {
			if idx < 0 || idx >= len(node.Children) {
				t.Fatalf("path %v leaves the tree", p.Indices)
			}
			node = node.Children[idx]
		}
		if !node.IsLeaf() || node.Title != p.Title {
			t.Fatalf("path %v resolves to %q, want leaf %q", p.Indices, node.Title, p.Title)
		}
	}
}

func TestGenerateLeafPathsValidation(t *testing.T) {
	rng := sim.NewRand(2)
	if _, err := GenerateLeafPaths(nil, 5, rng); err == nil {
		t.Fatal("nil root accepted")
	}
	if _, err := GenerateLeafPaths(menu.Leaf("only"), 5, rng); err == nil {
		t.Fatal("leaf root accepted")
	}
}
