package rf

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
)

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %#04x, want 0x29B1", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	dec := NewDecoder()
	f := func(payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		frame, err := Encode(payload)
		if err != nil {
			return false
		}
		got := dec.Feed(frame)
		if len(got) != 1 || len(got[0]) != len(payload) {
			return false
		}
		for i := range payload {
			if got[0][i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeTooLarge(t *testing.T) {
	if _, err := Encode(make([]byte, MaxPayload+1)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversized payload: %v", err)
	}
}

func TestDecoderResyncOnGarbage(t *testing.T) {
	dec := NewDecoder()
	frame, err := Encode([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	stream := append([]byte{0x01, 0x02, 0xAA, 0x03}, frame...) // noise incl. a lone sync byte
	got := dec.Feed(stream)
	if len(got) != 1 || string(got[0]) != "hello" {
		t.Fatalf("decoded %v", got)
	}
	if dec.Stats().Resyncs == 0 {
		t.Fatal("resync bytes not counted")
	}
}

func TestDecoderRejectsCorruptFrame(t *testing.T) {
	dec := NewDecoder()
	frame, err := Encode([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	frame[5] ^= 0xFF
	if got := dec.Feed(frame); len(got) != 0 {
		t.Fatalf("corrupt frame decoded: %v", got)
	}
	if dec.Stats().CRCErrors != 1 {
		t.Fatalf("crc errors = %d", dec.Stats().CRCErrors)
	}
	// The decoder must recover for the next good frame.
	good, err := Encode([]byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Feed(good); len(got) != 1 || string(got[0]) != "ok" {
		t.Fatalf("decoder stuck after corruption: %v", got)
	}
}

func TestDecoderHandlesFragmentation(t *testing.T) {
	dec := NewDecoder()
	frame, err := Encode([]byte("fragmented payload"))
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	for i := range frame {
		got = append(got, dec.Feed(frame[i:i+1])...)
	}
	if len(got) != 1 || string(got[0]) != "fragmented payload" {
		t.Fatalf("fragmented decode: %v", got)
	}
}

func TestDecoderBackToBackFrames(t *testing.T) {
	dec := NewDecoder()
	var stream []byte
	for _, s := range []string{"one", "two", "three"} {
		frame, err := Encode([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, frame...)
	}
	got := dec.Feed(stream)
	if len(got) != 3 || string(got[2]) != "three" {
		t.Fatalf("batch decode: %v", got)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	f := func(kind byte, seq uint16, at uint32, idx int16, mv uint16, isle int16, btn, ctx byte) bool {
		m := Message{
			Kind: MsgKind(kind), Seq: seq, AtMillis: at,
			Index: idx, VoltageMV: mv, Island: isle, Button: btn, Context: ctx,
		}
		data, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		var back Message
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return back == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageUnmarshalShort(t *testing.T) {
	var m Message
	if err := m.UnmarshalBinary([]byte{1, 2}); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("short unmarshal: %v", err)
	}
}

func TestMsgKindString(t *testing.T) {
	for _, k := range []MsgKind{MsgScroll, MsgSelect, MsgLevel, MsgState, MsgHeartbeat, MsgKind(42)} {
		if k.String() == "" {
			t.Fatalf("empty name for %d", k)
		}
	}
}

func newTestLink(t *testing.T, cfg LinkConfig, rng *sim.Rand) (*Link, sim.EventScheduler, *[][]byte) {
	t.Helper()
	sched := sim.NewScheduler(sim.NewClock(0))
	var rx [][]byte
	link, err := NewLink(cfg, sched, rng, func(p []byte, _ time.Duration) {
		rx = append(rx, append([]byte(nil), p...))
	})
	if err != nil {
		t.Fatal(err)
	}
	return link, sched, &rx
}

func TestLinkDeliversInOrder(t *testing.T) {
	cfg := LinkConfig{Latency: 5 * time.Millisecond, BitrateBPS: 19200}
	link, sched, rx := newTestLink(t, cfg, nil)
	for _, s := range []string{"a", "bb", "ccc"} {
		if _, err := link.Send([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(*rx) != 3 || string((*rx)[0]) != "a" || string((*rx)[2]) != "ccc" {
		t.Fatalf("rx = %v", *rx)
	}
	st := link.Stats()
	if st.Sent != 3 || st.Delivered != 3 || st.Lost != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLinkLatencyRespected(t *testing.T) {
	cfg := LinkConfig{Latency: 50 * time.Millisecond}
	sched := sim.NewScheduler(sim.NewClock(0))
	var arrival time.Duration
	link, err := NewLink(cfg, sched, nil, func(_ []byte, at time.Duration) { arrival = at })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if arrival < 50*time.Millisecond {
		t.Fatalf("arrival %v before latency", arrival)
	}
}

func TestLinkLossRate(t *testing.T) {
	cfg := LinkConfig{LossProb: 0.5}
	link, sched, rx := newTestLink(t, cfg, sim.NewRand(1))
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := link.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	got := float64(len(*rx)) / n
	if got < 0.45 || got > 0.55 {
		t.Fatalf("delivery rate %.3f, want ~0.5", got)
	}
	st := link.Stats()
	if st.Lost+st.Delivered+st.Corrupted < n-10 {
		t.Fatalf("accounting hole: %+v", st)
	}
}

func TestLinkCorruptionDroppedByCRC(t *testing.T) {
	cfg := LinkConfig{CorruptProb: 1}
	link, sched, rx := newTestLink(t, cfg, sim.NewRand(2))
	for i := 0; i < 50; i++ {
		if _, err := link.Send([]byte("abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(*rx) != 0 {
		t.Fatalf("corrupt frames delivered: %d", len(*rx))
	}
	if link.DecoderStats().CRCErrors == 0 {
		t.Fatal("no CRC errors recorded")
	}
}

func TestLinkBitrateSerialises(t *testing.T) {
	// At 1000 bps a ~12-byte frame takes ~120 ms on air; two frames must
	// not arrive together.
	cfg := LinkConfig{BitrateBPS: 1000}
	sched := sim.NewScheduler(sim.NewClock(0))
	var arrivals []time.Duration
	link, err := NewLink(cfg, sched, nil, func(_ []byte, at time.Duration) {
		arrivals = append(arrivals, at)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.Send([]byte("0123456")); err != nil {
		t.Fatal(err)
	}
	if _, err := link.Send([]byte("0123456")); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals: %v", arrivals)
	}
	gap := arrivals[1] - arrivals[0]
	if gap < 100*time.Millisecond {
		t.Fatalf("frames not serialised: gap %v", gap)
	}
}

func TestLinkValidation(t *testing.T) {
	sched := sim.NewScheduler(sim.NewClock(0))
	sink := func([]byte, time.Duration) {}
	if _, err := NewLink(LinkConfig{}, nil, nil, sink); err == nil {
		t.Fatal("want scheduler error")
	}
	if _, err := NewLink(LinkConfig{}, sched, nil, nil); err == nil {
		t.Fatal("want sink error")
	}
	if _, err := NewLink(LinkConfig{LossProb: 2}, sched, nil, sink); err == nil {
		t.Fatal("want probability error")
	}
}
