package rf

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
)

// realKind maps an arbitrary byte onto the firmware's kind range so
// property inputs look like real telemetry (a v0 first byte is always a
// small kind value, never the v1 magic).
func realKind(b byte) MsgKind { return MsgKind(b%5) + MsgScroll }

func TestMessageV1RoundTripCarriesDevice(t *testing.T) {
	f := func(kind byte, dev uint32, seq uint16, at uint32, idx int16, mv uint16, isle int16, btn, ctx byte) bool {
		m := Message{
			Kind: realKind(kind), Device: dev, Seq: seq, AtMillis: at,
			Index: idx, VoltageMV: mv, Island: isle, Button: btn, Context: ctx,
		}
		data, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		if len(data) != msgLenV1 || data[0] != verMagicV1 {
			return false
		}
		var back Message
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return back == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageV0BackCompatDecode(t *testing.T) {
	f := func(kind byte, seq uint16, at uint32, idx int16, mv uint16, isle int16, btn, ctx byte) bool {
		m := Message{
			Kind: realKind(kind), Seq: seq, AtMillis: at,
			Index: idx, VoltageMV: mv, Island: isle, Button: btn, Context: ctx,
		}
		data, err := m.MarshalBinaryV0()
		if err != nil {
			return false
		}
		if len(data) != msgLenV0 {
			return false
		}
		var back Message
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		// A legacy frame carries no device id: it must decode to device 0
		// even if the decoder previously saw a v1 frame.
		return back == m && back.Device == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageV0DecodeResetsStaleDevice(t *testing.T) {
	v1 := Message{Kind: MsgScroll, Device: 42, Seq: 7}
	data1, err := v1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v0 := Message{Kind: MsgHeartbeat, Seq: 8}
	data0, err := v0.MarshalBinaryV0()
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := m.UnmarshalBinary(data1); err != nil {
		t.Fatal(err)
	}
	if m.Device != 42 {
		t.Fatalf("device = %d, want 42", m.Device)
	}
	if err := m.UnmarshalBinary(data0); err != nil {
		t.Fatal(err)
	}
	if m.Device != 0 {
		t.Fatalf("v0 decode kept stale device %d", m.Device)
	}
}

func TestMessageTruncatedPayloads(t *testing.T) {
	m := Message{Kind: MsgScroll, Device: 9, Seq: 3}
	v1, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v0, err := m.MarshalBinaryV0()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{},
		v1[:1],          // just the magic
		v1[:msgLenV1-1], // one byte short of a v1 frame
		v0[:msgLenV0-1], // one byte short of a v0 frame
		{verMagicV1, 1, 2},
	}
	for i, data := range cases {
		var back Message
		if err := back.UnmarshalBinary(data); !errors.Is(err, ErrShortMessage) {
			t.Fatalf("case %d (%d bytes): err = %v, want ErrShortMessage", i, len(data), err)
		}
	}
}

func TestPipeDeliversLosslessly(t *testing.T) {
	sched := sim.NewScheduler(sim.NewClock(0))
	var got [][]byte
	var arrivals []time.Duration
	pipe, err := NewPipe(sched, 3*time.Millisecond, func(p []byte, at time.Duration) {
		got = append(got, append([]byte(nil), p...))
		arrivals = append(arrivals, at)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"a", "bb", "ccc"} {
		if _, err := pipe.Send([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[2]) != "ccc" {
		t.Fatalf("rx = %q", got)
	}
	if arrivals[0] != 3*time.Millisecond {
		t.Fatalf("arrival %v, want 3ms", arrivals[0])
	}
	st := pipe.Stats()
	if st.Sent != 3 || st.Delivered != 3 || st.Lost != 0 || st.Corrupted != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPipeValidation(t *testing.T) {
	sched := sim.NewScheduler(sim.NewClock(0))
	sink := func([]byte, time.Duration) {}
	if _, err := NewPipe(nil, 0, sink); err == nil {
		t.Fatal("want scheduler error")
	}
	if _, err := NewPipe(sched, 0, nil); err == nil {
		t.Fatal("want sink error")
	}
	if _, err := NewPipe(sched, -time.Millisecond, sink); err == nil {
		t.Fatal("want latency error")
	}
}
