package rf

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
)

// TestLinkMeanDelayIsLatency is the regression test for the jitter-centring
// fix: the per-frame delay used to be Latency + Uniform(0, 2*Jitter), whose
// mean is Latency + Jitter — contradicting the documented model. Jitter is
// now centred on Latency, so the empirical mean delay must match Latency.
func TestLinkMeanDelayIsLatency(t *testing.T) {
	cfg := LinkConfig{Latency: 4 * time.Millisecond, Jitter: 2 * time.Millisecond}
	sched := sim.NewScheduler(sim.NewClock(0))
	link, err := NewLink(cfg, sched, sim.NewRand(7), func([]byte, time.Duration) {})
	if err != nil {
		t.Fatal(err)
	}
	// Space the sends far enough apart that the FIFO arrival clamp never
	// binds; each delay sample is then an independent jitter draw.
	const n = 3000
	const spacing = 10 * time.Millisecond
	var sum time.Duration
	for i := 0; i < n; i++ {
		if err := sched.Run(time.Duration(i) * spacing); err != nil {
			t.Fatal(err)
		}
		now := sched.Clock().Now()
		arrive, err := link.Send([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		sum += arrive - now
	}
	mean := sum / n
	// The standard error over 3000 uniform ±2 ms draws is ~21 µs; a 200 µs
	// tolerance is far outside noise but catches the old +Jitter bias (2 ms).
	if diff := mean - cfg.Latency; diff < -200*time.Microsecond || diff > 200*time.Microsecond {
		t.Fatalf("mean delay %v, want %v ± 200µs", mean, cfg.Latency)
	}
}

// TestLinkArrivalsMonotonic is the regression test for jitter-induced
// reordering: back-to-back frames whose later send draws a smaller jitter
// must not overtake earlier ones — per-link delivery is FIFO.
func TestLinkArrivalsMonotonic(t *testing.T) {
	// Jitter far wider than the ~13 ms on-air frame time, so without the
	// arrival clamp adjacent frames would routinely swap.
	cfg := LinkConfig{Latency: 4 * time.Millisecond, Jitter: 40 * time.Millisecond, BitrateBPS: 19200}
	sched := sim.NewScheduler(sim.NewClock(0))
	var arrivals []time.Duration
	link, err := NewLink(cfg, sched, sim.NewRand(3), func(_ []byte, at time.Duration) {
		arrivals = append(arrivals, at)
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := link.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != n {
		t.Fatalf("delivered %d of %d", len(arrivals), n)
	}
	for i := 1; i < n; i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatalf("arrival %d (%v) before arrival %d (%v)", i, arrivals[i], i-1, arrivals[i-1])
		}
	}
}

// TestSentVersionSplitAdversarialV0 is the regression test for the version
// sniffing bug: the v0/v1 sent split used to trust payload[0] == magic, so a
// legacy v0 payload whose kind byte happened to be 0xD5 was miscounted as
// v1. VersionOf now also requires the v1 length, and version-aware senders
// tag explicitly.
func TestSentVersionSplitAdversarialV0(t *testing.T) {
	link, sched, _ := newTestLink(t, LinkConfig{}, nil)
	adversarial, err := Message{Kind: MsgKind(verMagicV1), Seq: 9}.MarshalBinaryV0()
	if err != nil {
		t.Fatal(err)
	}
	if adversarial[0] != verMagicV1 {
		t.Fatal("test payload does not start with the magic byte")
	}
	if _, err := link.Send(adversarial); err != nil {
		t.Fatal(err)
	}
	v1, err := Message{Kind: MsgScroll, Device: 2}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.SendTagged(v1, PayloadV1); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	st := link.Stats()
	if st.SentV0 != 1 || st.SentV1 != 1 {
		t.Fatalf("version split v0=%d v1=%d, want 1/1", st.SentV0, st.SentV1)
	}
}

func TestVersionOfAndPayloadSeq(t *testing.T) {
	v1, _ := Message{Kind: MsgScroll, Device: 7, Seq: 0x1234}.MarshalBinary()
	if VersionOf(v1) != PayloadV1 {
		t.Fatal("v1 payload not recognised")
	}
	if seq, ok := PayloadSeq(v1); !ok || seq != 0x1234 {
		t.Fatalf("v1 seq = %#x, %v", seq, ok)
	}
	v0, _ := Message{Kind: MsgSelect, Seq: 0xBEEF}.MarshalBinaryV0()
	if VersionOf(v0) != PayloadV0 {
		t.Fatal("v0 payload not recognised")
	}
	if seq, ok := PayloadSeq(v0); !ok || seq != 0xBEEF {
		t.Fatalf("v0 seq = %#x, %v", seq, ok)
	}
	// A v0 payload starting with the magic byte must still be v0: it is too
	// short to be a v1 payload.
	adv, _ := Message{Kind: MsgKind(verMagicV1), Seq: 0x0102}.MarshalBinaryV0()
	if VersionOf(adv) != PayloadV0 {
		t.Fatal("adversarial v0 payload misclassified as v1")
	}
	if seq, ok := PayloadSeq(adv); !ok || seq != 0x0102 {
		t.Fatalf("adversarial v0 seq = %#x, %v", seq, ok)
	}
	if _, ok := PayloadSeq([]byte{1, 2}); ok {
		t.Fatal("seq extracted from a payload too short to carry one")
	}
}

// TestLinkBurstLoss exercises the burst fault model: a burst drops exactly
// BurstLossLen consecutive frames and the drops are accounted as both Lost
// and BurstLost.
func TestLinkBurstLoss(t *testing.T) {
	cfg := LinkConfig{BurstLossProb: 0.02, BurstLossLen: 5}
	link, sched, rx := newTestLink(t, cfg, sim.NewRand(11))
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := link.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	st := link.Stats()
	if st.BurstLost == 0 {
		t.Fatal("no burst losses recorded")
	}
	if st.BurstLost != st.Lost {
		t.Fatalf("burst-only config: BurstLost %d != Lost %d", st.BurstLost, st.Lost)
	}
	if st.BurstLost%uint64(cfg.BurstLossLen) != 0 {
		t.Fatalf("burst losses %d not a multiple of the burst length %d", st.BurstLost, cfg.BurstLossLen)
	}
	if got := uint64(len(*rx)) + st.Lost; got != n {
		t.Fatalf("accounting: delivered %d + lost %d != %d", len(*rx), st.Lost, n)
	}
}

func TestLinkValidatesFaultProbabilities(t *testing.T) {
	sched := sim.NewScheduler(sim.NewClock(0))
	sink := func([]byte, time.Duration) {}
	if _, err := NewLink(LinkConfig{BurstLossProb: 1.5}, sched, nil, sink); err == nil {
		t.Fatal("want burst probability error")
	}
	if _, err := NewLink(LinkConfig{AckLossProb: -0.1}, sched, nil, sink); err == nil {
		t.Fatal("want ack loss probability error")
	}
}
