package rf

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

// This file is the reliable-delivery (ARQ) layer on top of the lossy RF
// channel model. The paper's device is "wirelessly linked to a PC"
// (Section 3.2) over a Smart-Its class radio that loses and corrupts
// frames; without repair a dropped MsgSelect silently loses a user's menu
// selection. The ARQ turns the channel into a guaranteed in-order stream:
//
//   - ARQ is the device-side sender: a bounded in-flight window plus a
//     bounded backlog queue, a go-back-N retransmit timer on the oldest
//     unacked frame with exponential backoff and jitter, and a drop-oldest
//     overflow policy so a stalled channel degrades gracefully instead of
//     growing without bound. Abandoned frames (overflow or retry budget)
//     are never silently skipped: a MsgSkip filler takes over their
//     sequence range, so the stream the receiver sees stays contiguous.
//   - ReverseLink is the host→device ack back-channel carrying MsgAck
//     control messages (ordinary v1 frames), itself lossy (AckLossProb)
//     with the same latency/jitter model as the forward path.
//   - The receiver (core.Session in reliable mode) admits frames strictly
//     in sequence order and answers every frame with a cumulative ack.
//
// Everything runs on the owning device's scheduler, so a reliable device
// remains a pure function of its seed.

// ARQConfig parameterises the reliable-delivery layer. Zero fields take the
// defaults below.
type ARQConfig struct {
	// Window bounds how many frames may be in flight (sent, unacked) at
	// once. Default 8.
	Window int
	// Queue bounds the backlog of frames waiting for a window slot. When it
	// overflows the OLDEST queued payloads are abandoned (and counted) and
	// collapse into a single MsgSkip filler announcing the hole, trading a
	// bounded, receiver-visible gap for bounded memory — graceful
	// degradation under sustained overload. Default 64.
	Queue int
	// RTO is the initial retransmit timeout, measured from the estimated
	// transmit completion of the newest in-flight frame. Default 60ms
	// (comfortably above one 19.2 kbit/s frame time plus a round trip).
	RTO time.Duration
	// MaxRTO caps the exponential backoff. Default 1s.
	MaxRTO time.Duration
	// Backoff multiplies RTO after every timeout without progress.
	// Default 2.
	Backoff float64
	// JitterFrac randomises each timeout by Uniform(0, JitterFrac*RTO) so a
	// fleet's retransmissions do not synchronise. Default 0.2.
	JitterFrac float64
	// MaxRetries bounds per-frame transmit attempts; a frame exceeding it
	// is abandoned (and counted) and replaced in place by a MsgSkip filler
	// so the stream stays contiguous. <= 0 means retry forever, which is
	// the default: delivery is guaranteed as long as the channel ever lets
	// a frame through.
	MaxRetries int
}

// withDefaults fills zero fields.
func (c ARQConfig) withDefaults() ARQConfig {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.RTO <= 0 {
		c.RTO = 60 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = time.Second
	}
	if c.Backoff < 1 {
		c.Backoff = 2
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	} else if c.JitterFrac == 0 {
		c.JitterFrac = 0.2
	}
	return c
}

// ARQStats counts reliable-delivery activity.
type ARQStats struct {
	// Enqueued counts payloads handed to Send; Acked the frames confirmed
	// by a cumulative ack.
	Enqueued uint64
	Acked    uint64
	// Retransmits counts extra transmissions beyond each frame's first;
	// Timeouts the retransmit timer firings that found unacked frames.
	Retransmits uint64
	Timeouts    uint64
	// AcksReceived counts acks that reached the device; DupAcks the subset
	// that confirmed nothing new; BadAcks reverse-channel payloads that
	// failed to parse as MsgAck.
	AcksReceived uint64
	DupAcks      uint64
	BadAcks      uint64
	// QueueDrops counts payloads abandoned by the drop-oldest overflow
	// policy; RetryDrops payloads that exhausted MaxRetries. Both kinds are
	// announced to the receiver with MsgSkip fillers.
	QueueDrops uint64
	RetryDrops uint64
}

// arqCounters are atomic so a telemetry reporter may snapshot a running
// fleet from another goroutine.
type arqCounters struct {
	enqueued, acked, retransmits, timeouts atomic.Uint64
	acksReceived, dupAcks, badAcks         atomic.Uint64
	queueDrops, retryDrops                 atomic.Uint64
}

func (c *arqCounters) stats() ARQStats {
	return ARQStats{
		Enqueued:     c.enqueued.Load(),
		Acked:        c.acked.Load(),
		Retransmits:  c.retransmits.Load(),
		Timeouts:     c.timeouts.Load(),
		AcksReceived: c.acksReceived.Load(),
		DupAcks:      c.dupAcks.Load(),
		BadAcks:      c.badAcks.Load(),
		QueueDrops:   c.queueDrops.Load(),
		RetryDrops:   c.retryDrops.Load(),
	}
}

// arqFrame is one payload tracked by the sender. A skip frame is a filler
// the sender substitutes for abandoned payloads: it occupies their sequence
// range so the stream stays contiguous, and carries a MsgSkip notice telling
// the receiver to advance past the hole (skipCount seqs ending at seq).
type arqFrame struct {
	seq uint16
	ver PayloadVersion
	// device is extracted once at enqueue (PayloadDevice), so converting the
	// frame into a skip filler never needs to re-parse the payload — a
	// sequenced payload that does not round-trip through Message must still
	// get a filler, or the receiver waits on its seq forever.
	device    uint32
	payload   []byte
	attempts  int
	skip      bool
	skipCount uint16
}

// ARQ is the device-side reliable sender wrapping an inner Transport
// (usually the lossy *Link). It implements Transport and VersionedSender,
// so it slots in wherever the firmware expects a plain channel. It is
// single-goroutine like the rest of a device: Send, HandleAck and the timer
// callbacks all run on the device's scheduler.
type ARQ struct {
	cfg   ARQConfig
	sched sim.EventScheduler
	rng   *sim.Rand
	tx    Transport
	cnt   arqCounters
	trace *tracing.Recorder

	inflight []*arqFrame // oldest first, len <= cfg.Window
	queue    []*arqFrame // backlog, len <= cfg.Queue
	rto      time.Duration
	gen      int // retransmit-timer generation; bumping it disarms old timers
	// lastTxEnd is the estimated completion time of the newest transmission,
	// so the timeout covers radio serialisation of a full window.
	lastTxEnd time.Duration
}

// NewARQ wraps an inner transport in a reliable sender. rng may be nil, in
// which case timeouts are not jittered.
func NewARQ(cfg ARQConfig, sched sim.EventScheduler, rng *sim.Rand, tx Transport) (*ARQ, error) {
	if sched == nil {
		return nil, fmt.Errorf("rf: arq: scheduler is required")
	}
	if tx == nil {
		return nil, fmt.Errorf("rf: arq: inner transport is required")
	}
	cfg = cfg.withDefaults()
	return &ARQ{cfg: cfg, sched: sched, rng: rng, tx: tx, rto: cfg.RTO}, nil
}

// Stats returns the reliable-delivery counters.
func (a *ARQ) Stats() ARQStats { return a.cnt.stats() }

// SetTracer attaches a per-device flight recorder. The sender records
// arq.enqueue/arq.tx/arq.retx/arq.ack span events on it and raises
// anomalies (with a post-mortem dump naming the abandoned seq range) when
// the retry budget or backlog policy gives a frame up. A nil recorder
// disables tracing.
func (a *ARQ) SetTracer(r *tracing.Recorder) { a.trace = r }

// Outstanding reports how many frames are still unconfirmed (in flight or
// queued). A fleet drains a reliable device until this reaches zero.
func (a *ARQ) Outstanding() int { return len(a.inflight) + len(a.queue) }

// Collect contributes the ARQ counters to a telemetry snapshot.
func (a *ARQ) Collect(s *telemetry.Snapshot) {
	st := a.Stats()
	s.AddCounter(telemetry.MetricARQEnqueued, st.Enqueued)
	s.AddCounter(telemetry.MetricARQAcked, st.Acked)
	s.AddCounter(telemetry.MetricARQRetransmits, st.Retransmits)
	s.AddCounter(telemetry.MetricARQTimeouts, st.Timeouts)
	s.AddCounter(telemetry.MetricARQAcksReceived, st.AcksReceived)
	s.AddCounter(telemetry.MetricARQDupAcks, st.DupAcks)
	s.AddCounter(telemetry.MetricARQQueueDrops, st.QueueDrops)
	s.AddCounter(telemetry.MetricARQRetryDrops, st.RetryDrops)
}

// Send enqueues a payload for reliable delivery, classifying its version
// with VersionOf.
func (a *ARQ) Send(payload []byte) (time.Duration, error) {
	return a.SendTagged(payload, VersionOf(payload))
}

// SendTagged enqueues a payload whose wire-format version the caller knows.
// Payloads too short to carry a sequence number bypass the ARQ and go out
// unreliably — there is nothing to match an ack against.
func (a *ARQ) SendTagged(payload []byte, ver PayloadVersion) (time.Duration, error) {
	seq, ok := PayloadSeq(payload)
	if !ok {
		return a.rawSend(payload, ver)
	}
	a.cnt.enqueued.Add(1)
	a.trace.Record(tracing.HopArqEnqueue, seq, a.sched.Clock().Now(),
		uint32(len(a.inflight)+len(a.queue)), 0)
	fr := &arqFrame{seq: seq, ver: ver, device: PayloadDevice(payload),
		payload: append([]byte(nil), payload...)}
	if len(a.inflight) < a.cfg.Window {
		wasEmpty := len(a.inflight) == 0
		a.inflight = append(a.inflight, fr)
		at, err := a.transmit(fr)
		if wasEmpty {
			a.armTimer()
		}
		return at, err
	}
	// Drop-oldest overflow: the stalest backlog payloads are abandoned so
	// fresh input keeps flowing, but their sequence numbers are not simply
	// skipped — they collapse into one skip filler that announces the hole
	// to the receiver, so the stream stays contiguous and the receiver
	// advances past the gap with certainty.
	for len(a.queue) >= a.cfg.Queue {
		// The merge head is the first element that is not already a filler at
		// the widest range a skip notice can represent (half the sequence
		// space). A maxed filler is immutable: widening it once clamped used
		// to slide its end seq forward while the count stayed put, silently
		// shrinking the announced range from the front — the receiver then
		// classified the notice as ahead of its cursor and stalled forever.
		// Maxed fillers are instead left in place (a frame of overshoot per
		// 32767 drops) and merging continues behind them.
		h := 0
		for h < len(a.queue) && a.queue[h].skip && a.queue[h].skipCount >= 0x7fff {
			h++
		}
		if h >= a.cfg.Queue {
			// The whole budget is maxed fillers; nothing can be collapsed.
			a.queue = append(a.queue, fr)
			return a.sched.Clock().Now(), nil
		}
		head := a.queue[h]
		switch {
		case head.skip && len(a.queue) > h+1:
			// Extend the filler over the oldest real payload, freeing a slot.
			// The h-scan guarantees head is below the clamp, and fillers only
			// ever form a prefix of the queue, so queue[h+1] is a real frame
			// covering exactly one seq.
			head.seq = a.queue[h+1].seq
			head.skipCount++
			a.queue = append(a.queue[:h+1], a.queue[h+2:]...)
			a.cnt.queueDrops.Add(1)
			a.trace.Record(tracing.HopArqOverflow, head.seq, a.sched.Clock().Now(),
				uint32(head.skipCount), 0)
			a.refreshSkip(head)
		case !head.skip:
			// Abandon the oldest payload in place; the next loop pass merges
			// its successor into the filler and frees the slot.
			a.toSkip(head)
			a.cnt.queueDrops.Add(1)
			a.trace.Record(tracing.HopArqOverflow, head.seq, a.sched.Clock().Now(),
				uint32(head.skipCount), 0)
		default:
			// The queue is a single filler already; admit the new frame with
			// one slot of transient overshoot rather than dropping it.
			a.queue = append(a.queue, fr)
			return a.sched.Clock().Now(), nil
		}
	}
	a.queue = append(a.queue, fr)
	return a.sched.Clock().Now(), nil
}

// toSkip converts a tracked frame into a skip filler covering its own
// sequence number. It never fails: the frame entered the window because
// PayloadSeq found a sequence number, so that seq MUST be announced to the
// receiver even when the payload does not round-trip through Message — a
// silently dropped seq is a phantom gap the reliable receiver waits on
// forever. The device id was captured at enqueue for exactly this case.
func (a *ARQ) toSkip(fr *arqFrame) {
	fr.skip, fr.skipCount, fr.attempts = true, 1, 0
	a.refreshSkip(fr)
}

// refreshSkip rebuilds a filler's MsgSkip payload from its current range.
func (a *ARQ) refreshSkip(fr *arqFrame) {
	fr.payload = buildSkip(fr.device, fr.seq, fr.skipCount, fr.ver,
		uint32(a.sched.Clock().Now()/time.Millisecond))
}

// buildSkip marshals a MsgSkip notice covering count seqs ending at last.
func buildSkip(device uint32, last, count uint16, ver PayloadVersion, atMillis uint32) []byte {
	m := Message{Kind: MsgSkip, Device: device, Seq: last, Index: int16(count), AtMillis: atMillis}
	if ver == PayloadV0 {
		p, _ := m.MarshalBinaryV0()
		return p
	}
	p, _ := m.MarshalBinary()
	return p
}

// rawSend bypasses reliability for unsequenced payloads.
func (a *ARQ) rawSend(payload []byte, ver PayloadVersion) (time.Duration, error) {
	if vs, ok := a.tx.(VersionedSender); ok {
		return vs.SendTagged(payload, ver)
	}
	return a.tx.Send(payload)
}

// transmit pushes one tracked frame into the inner channel.
func (a *ARQ) transmit(fr *arqFrame) (time.Duration, error) {
	fr.attempts++
	if fr.attempts > 1 {
		a.cnt.retransmits.Add(1)
		a.trace.Record(tracing.HopArqRetx, fr.seq, a.sched.Clock().Now(),
			uint32(fr.attempts), 0)
	} else {
		a.trace.Record(tracing.HopArqTx, fr.seq, a.sched.Clock().Now(), 1, 0)
	}
	at, err := a.rawSend(fr.payload, fr.ver)
	if err == nil && at > a.lastTxEnd {
		a.lastTxEnd = at
	}
	return at, err
}

// armTimer schedules the retransmit timeout for the current window,
// invalidating any previously armed timer. No-op when nothing is in flight.
func (a *ARQ) armTimer() {
	a.gen++
	if len(a.inflight) == 0 {
		return
	}
	d := a.rto
	if a.cfg.JitterFrac > 0 && a.rng != nil {
		d += time.Duration(a.rng.Uniform(0, a.cfg.JitterFrac*float64(d)))
	}
	deadline := a.lastTxEnd + d
	if now := a.sched.Clock().Now(); deadline < now {
		deadline = now + d
	}
	g := a.gen
	a.sched.At(deadline, func(at time.Duration) { a.onTimer(g) })
}

// onTimer fires the retransmit timeout: every in-flight frame is resent
// oldest-first (go-back-N — with FIFO link delivery the receiver accepts
// the whole window in order once the base gets through), the timeout backs
// off exponentially, and frames out of retries are abandoned.
func (a *ARQ) onTimer(gen int) {
	if gen != a.gen || len(a.inflight) == 0 {
		return
	}
	a.cnt.timeouts.Add(1)
	kept := a.inflight[:0]
	var dropFirst, dropLast uint16
	dropped := 0
	for _, fr := range a.inflight {
		if a.cfg.MaxRetries > 0 && !fr.skip && fr.attempts >= a.cfg.MaxRetries {
			// Out of retries: the payload is abandoned, but its sequence
			// number must still reach the receiver — replace it with a skip
			// filler (fillers are exempt from the budget; they are the
			// mechanism that keeps the stream coherent after giving up).
			a.cnt.retryDrops.Add(1)
			if dropped == 0 {
				dropFirst = fr.seq
			}
			dropLast = fr.seq
			dropped++
			a.toSkip(fr)
		}
		a.transmit(fr)
		kept = append(kept, fr)
	}
	a.inflight = kept
	if dropped > 0 && a.trace != nil {
		// One anomaly covers the whole pass: the flight-recorder dump names
		// the exact abandoned seq range so a post-mortem can correlate it
		// with the receiver's resync. The span is computed in wrapping
		// uint16 arithmetic so a window straddling 0xFFFF→0 reports its true
		// width instead of an inverted (negative-looking) range.
		a.trace.Anomaly(tracing.HopArqExhausted, dropLast, a.sched.Clock().Now(),
			uint32(dropped), 0,
			fmt.Sprintf("retry budget exhausted: seqs %d..%d abandoned (span %d) after %d attempts",
				dropFirst, dropLast, dropLast-dropFirst+1, a.cfg.MaxRetries))
	}
	a.promote()
	a.rto = time.Duration(float64(a.rto) * a.cfg.Backoff)
	if a.rto > a.cfg.MaxRTO {
		a.rto = a.cfg.MaxRTO
	}
	a.armTimer()
}

// promote moves backlog frames into free window slots and transmits them.
func (a *ARQ) promote() {
	for len(a.inflight) < a.cfg.Window && len(a.queue) > 0 {
		fr := a.queue[0]
		a.queue = a.queue[1:]
		a.inflight = append(a.inflight, fr)
		a.transmit(fr)
	}
}

// HandleAck is the ReverseLink sink: it parses one MsgAck payload and
// slides the window past every frame the cumulative ack covers. Progress
// resets the backoff; an ack confirming nothing counts as a duplicate.
func (a *ARQ) HandleAck(payload []byte, at time.Duration) {
	var m Message
	if !m.Decode(payload) || m.Kind != MsgAck {
		a.cnt.badAcks.Add(1)
		return
	}
	a.cnt.acksReceived.Add(1)
	progressed := false
	confirmed := uint32(0)
	for len(a.inflight) > 0 && seqLE(a.inflight[0].seq, m.Seq) {
		a.inflight = a.inflight[1:]
		a.cnt.acked.Add(1)
		confirmed++
		progressed = true
	}
	a.trace.Record(tracing.HopArqAck, m.Seq, at, confirmed, 0)
	if !progressed {
		a.cnt.dupAcks.Add(1)
		return
	}
	a.rto = a.cfg.RTO
	a.promote()
	a.armTimer()
}

// ReverseStats counts ack back-channel activity.
type ReverseStats struct {
	AcksSent      uint64
	AcksLost      uint64
	AcksDelivered uint64
}

type reverseCounters struct {
	sent, lost, delivered atomic.Uint64
}

// ReverseLink is the host→device ack back-channel, making the RF channel
// bidirectional. It carries MsgAck control messages as ordinary framed v1
// payloads, models loss (LinkConfig.AckLossProb) and the same centred
// latency jitter as the forward path, and keeps per-link delivery FIFO. It
// is driven by the owning device's scheduler: in the simulator the host's
// ack emission happens inside that device's delivery callback, so the whole
// round trip stays on one virtual clock.
type ReverseLink struct {
	cfg   LinkConfig
	sched sim.EventScheduler
	rng   *sim.Rand
	dec   *Decoder
	sink  func(payload []byte, at time.Duration)
	cnt   reverseCounters

	lastArrive time.Duration
	// onPayload / deliverAt: persistent decoder callback and the arrival
	// time of the ack being decoded, mirroring Link's zero-copy delivery.
	onPayload func(payload []byte)
	deliverAt time.Duration
}

// NewReverseLink returns an ack back-channel delivering decoded ack
// payloads to sink (usually ARQ.HandleAck). Loss uses cfg.AckLossProb;
// latency and jitter are shared with the forward configuration. rng may be
// nil for an ideal reverse channel.
func NewReverseLink(cfg LinkConfig, sched sim.EventScheduler, rng *sim.Rand, sink func(payload []byte, at time.Duration)) (*ReverseLink, error) {
	if sched == nil {
		return nil, fmt.Errorf("rf: reverse link: scheduler is required")
	}
	if sink == nil {
		return nil, fmt.Errorf("rf: reverse link: sink is required")
	}
	if cfg.AckLossProb < 0 || cfg.AckLossProb > 1 {
		return nil, fmt.Errorf("rf: reverse link: AckLossProb must be in [0,1]")
	}
	r := &ReverseLink{cfg: cfg, sched: sched, rng: rng, dec: NewDecoder(), sink: sink}
	r.onPayload = func(p []byte) {
		r.cnt.delivered.Add(1)
		r.sink(p, r.deliverAt)
	}
	return r, nil
}

// Stats returns the back-channel counters.
func (r *ReverseLink) Stats() ReverseStats {
	return ReverseStats{
		AcksSent:      r.cnt.sent.Load(),
		AcksLost:      r.cnt.lost.Load(),
		AcksDelivered: r.cnt.delivered.Load(),
	}
}

// Collect contributes the back-channel counters to a telemetry snapshot.
func (r *ReverseLink) Collect(s *telemetry.Snapshot) {
	st := r.Stats()
	s.AddCounter(telemetry.MetricRFAcksSent, st.AcksSent)
	s.AddCounter(telemetry.MetricRFAcksLost, st.AcksLost)
	s.AddCounter(telemetry.MetricRFAcksDelivered, st.AcksDelivered)
}

// SendAck transmits one cumulative acknowledgement for the given device:
// every frame with sequence number <= cum (wrapping) has been delivered in
// order.
func (r *ReverseLink) SendAck(device uint32, cum uint16) {
	now := r.sched.Clock().Now()
	m := Message{Kind: MsgAck, Device: device, Seq: cum, AtMillis: uint32(now / time.Millisecond)}
	// The payload scratch stays on the stack; only the framed copy — which
	// must survive until the scheduled delivery — is heap-allocated.
	var pbuf [32]byte
	frame, err := Encode(m.AppendBinary(pbuf[:0]))
	if err != nil {
		return
	}
	r.cnt.sent.Add(1)

	delay := r.cfg.Latency
	if r.rng != nil && r.cfg.Jitter > 0 {
		delay += time.Duration(r.rng.Uniform(-float64(r.cfg.Jitter), float64(r.cfg.Jitter)))
		if delay < 0 {
			delay = 0
		}
	}
	arrive := now + delay
	if arrive < r.lastArrive {
		arrive = r.lastArrive
	}
	r.lastArrive = arrive

	if r.rng != nil && r.rng.Bool(r.cfg.AckLossProb) {
		r.cnt.lost.Add(1)
		return
	}
	r.sched.At(arrive, func(at time.Duration) {
		r.deliverAt = at
		r.dec.FeedFunc(frame, r.onPayload)
	})
}
