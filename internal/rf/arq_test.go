package rf

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
)

// scriptTx is a Transport whose loss pattern the test controls exactly: the
// i-th Send (0-based, counting every transmission including retransmits) is
// dropped when drop[i] is set. Delivery is FIFO with a fixed latency.
type scriptTx struct {
	sched   sim.EventScheduler
	sink    func(payload []byte, at time.Duration)
	latency time.Duration
	drop    map[int]bool
	sends   int
}

func (s *scriptTx) Send(payload []byte) (time.Duration, error) {
	i := s.sends
	s.sends++
	arrive := s.sched.Clock().Now() + s.latency
	if s.drop[i] {
		return arrive, nil
	}
	cp := append([]byte(nil), payload...)
	s.sched.At(arrive, func(at time.Duration) { s.sink(cp, at) })
	return arrive, nil
}

// reliableLoop wires a full device↔host round trip inside the rf package:
// ARQ → scriptTx → in-order receiver → ReverseLink → ARQ.HandleAck. dropAcks
// drops the i-th ack before it reaches the reverse link.
type reliableLoop struct {
	t     *testing.T
	sched sim.EventScheduler
	arq   *ARQ
	tx    *scriptTx
	rev   *ReverseLink

	await    uint16
	got      []uint16
	skipped  uint64
	ackN     int
	dropAcks map[int]bool
}

func newReliableLoop(t *testing.T, cfg ARQConfig, drop, dropAcks map[int]bool) *reliableLoop {
	t.Helper()
	l := &reliableLoop{t: t, sched: sim.NewScheduler(sim.NewClock(0)), dropAcks: dropAcks}
	l.tx = &scriptTx{sched: l.sched, latency: 2 * time.Millisecond, drop: drop, sink: l.receive}
	arq, err := NewARQ(cfg, l.sched, sim.NewRand(5), l.tx)
	if err != nil {
		t.Fatal(err)
	}
	l.arq = arq
	rev, err := NewReverseLink(LinkConfig{Latency: 2 * time.Millisecond}, l.sched, nil, arq.HandleAck)
	if err != nil {
		t.Fatal(err)
	}
	l.rev = rev
	return l
}

func (l *reliableLoop) receive(payload []byte, at time.Duration) {
	var m Message
	if err := m.UnmarshalBinary(payload); err != nil {
		l.t.Fatalf("receiver: %v", err)
	}
	if m.Kind == MsgSkip {
		// Sender abandonment notice: admit when the awaited position falls
		// inside the announced range, mirroring core.Session.
		count := uint16(m.Index)
		first := m.Seq - count + 1
		if m.Seq-l.await < 0x8000 && l.await-first < 0x8000 {
			l.skipped += uint64(m.Seq - l.await + 1)
			l.await = m.Seq + 1
		}
	} else if m.Seq == l.await {
		l.got = append(l.got, m.Seq)
		l.await++
	}
	i := l.ackN
	l.ackN++
	if l.dropAcks[i] {
		return
	}
	l.rev.SendAck(m.Device, l.await-1)
}

func (l *reliableLoop) send(seqs ...uint16) {
	l.t.Helper()
	for _, seq := range seqs {
		p, err := Message{Kind: MsgScroll, Device: 1, Seq: seq}.MarshalBinary()
		if err != nil {
			l.t.Fatal(err)
		}
		if _, err := l.arq.SendTagged(p, PayloadV1); err != nil {
			l.t.Fatal(err)
		}
	}
}

func (l *reliableLoop) run(d time.Duration) {
	l.t.Helper()
	if err := l.sched.Run(l.sched.Clock().Now() + d); err != nil {
		l.t.Fatal(err)
	}
}

// TestARQRetransmitsLostFrame drops the first transmission of the first
// frame; the timeout must retransmit it and the receiver must end up with
// the full in-order stream.
func TestARQRetransmitsLostFrame(t *testing.T) {
	l := newReliableLoop(t, ARQConfig{}, map[int]bool{0: true}, nil)
	l.send(0, 1, 2, 3, 4)
	l.run(5 * time.Second)
	if len(l.got) != 5 {
		t.Fatalf("received %v, want seq 0..4", l.got)
	}
	for i, seq := range l.got {
		if seq != uint16(i) {
			t.Fatalf("out of order: %v", l.got)
		}
	}
	st := l.arq.Stats()
	if st.Retransmits == 0 || st.Timeouts == 0 {
		t.Fatalf("no retransmission recorded: %+v", st)
	}
	if l.arq.Outstanding() != 0 {
		t.Fatalf("outstanding %d after drain", l.arq.Outstanding())
	}
	if st.Acked != 5 {
		t.Fatalf("acked %d, want 5", st.Acked)
	}
}

// TestARQAckLossRecovery drops every ack of the first delivery round — a
// single surviving cumulative ack would repair earlier losses — so the
// sender must retransmit frames the receiver already has; the receiver
// discards the duplicates and re-acks until an ack lands.
func TestARQAckLossRecovery(t *testing.T) {
	l := newReliableLoop(t, ARQConfig{}, nil, map[int]bool{0: true, 1: true, 2: true})
	l.send(0, 1, 2)
	l.run(5 * time.Second)
	if len(l.got) != 3 {
		t.Fatalf("received %v, want seq 0..2", l.got)
	}
	st := l.arq.Stats()
	if st.Retransmits == 0 {
		t.Fatal("ack loss caused no retransmission")
	}
	if l.arq.Outstanding() != 0 {
		t.Fatalf("outstanding %d after drain", l.arq.Outstanding())
	}
}

// TestARQWindowAndQueueBounds checks that in-flight transmissions never
// exceed the window, the backlog never exceeds the queue bound, and overflow
// collapses the oldest queued payloads into one skip filler.
func TestARQWindowAndQueueBounds(t *testing.T) {
	// Drop everything: nothing is ever acked, so the window stays full.
	drop := make(map[int]bool)
	for i := 0; i < 10_000; i++ {
		drop[i] = true
	}
	l := newReliableLoop(t, ARQConfig{Window: 2, Queue: 4}, drop, nil)
	seqs := make([]uint16, 10)
	for i := range seqs {
		seqs[i] = uint16(i)
	}
	l.send(seqs...)
	if got := l.arq.Outstanding(); got != 2+4 {
		t.Fatalf("outstanding %d, want window+queue = 6", got)
	}
	st := l.arq.Stats()
	// 10 sent, 2 in flight, 4 queue slots of which one is the filler
	// covering the 5 abandoned payloads (seqs 2..6): queue [skip(2..6),7,8,9].
	if st.QueueDrops != 5 {
		t.Fatalf("queue drops %d, want 5 (10 sent - 2 window - 3 data slots)", st.QueueDrops)
	}
	if st.Enqueued != 10 {
		t.Fatalf("enqueued %d, want 10", st.Enqueued)
	}
}

// TestARQSkipAnnouncesAbandonment runs queue overflow end to end: the
// payloads sacrificed by drop-oldest must reach the receiver as one MsgSkip
// filler, so the stream advances past the hole with an exact loss count and
// the surviving frames still arrive.
func TestARQSkipAnnouncesAbandonment(t *testing.T) {
	// Ideal channel; window 1 serialises delivery so the burst of sends
	// overflows the 2-slot queue before anything is acked.
	l := newReliableLoop(t, ARQConfig{Window: 1, Queue: 2}, nil, nil)
	l.send(0, 1, 2, 3, 4, 5)
	l.run(5 * time.Second)
	st := l.arq.Stats()
	if st.QueueDrops != 4 {
		t.Fatalf("queue drops %d, want 4 (seqs 1..4 abandoned)", st.QueueDrops)
	}
	if l.skipped != 4 {
		t.Fatalf("receiver skipped %d seqs, want 4", l.skipped)
	}
	if len(l.got) != 2 || l.got[0] != 0 || l.got[1] != 5 {
		t.Fatalf("received %v, want [0 5]", l.got)
	}
	if l.arq.Outstanding() != 0 {
		t.Fatalf("outstanding %d after drain", l.arq.Outstanding())
	}
}

// TestARQRetryBudget bounds per-frame attempts: frames out of retries are
// abandoned (counted) and replaced by skip fillers, which are exempt from
// the budget — so when the channel heals the receiver learns about the hole
// and the stream continues instead of stalling on a silent gap.
func TestARQRetryBudget(t *testing.T) {
	// Dead through the data frames' whole budget (3 frames × 3 attempts)
	// and the fillers' first transmission, then healed.
	drop := make(map[int]bool)
	for i := 0; i < 12; i++ {
		drop[i] = true
	}
	l := newReliableLoop(t, ARQConfig{MaxRetries: 3, RTO: 10 * time.Millisecond, MaxRTO: 20 * time.Millisecond}, drop, nil)
	l.send(0, 1, 2)
	l.run(10 * time.Second)
	st := l.arq.Stats()
	if st.RetryDrops != 3 {
		t.Fatalf("retry drops %d, want 3", st.RetryDrops)
	}
	if l.arq.Outstanding() != 0 {
		t.Fatalf("outstanding %d after the channel healed", l.arq.Outstanding())
	}
	if l.skipped != 3 {
		t.Fatalf("receiver skipped %d seqs, want 3", l.skipped)
	}
	if st.Timeouts < 3 {
		t.Fatalf("timeouts %d, want >= 3", st.Timeouts)
	}
	// The stream is live again: a fresh frame goes straight through.
	l.send(3)
	l.run(time.Second)
	if len(l.got) != 1 || l.got[0] != 3 {
		t.Fatalf("received %v after recovery, want [3]", l.got)
	}
}

// TestARQDuplicateAcks counts acks that confirm nothing new.
func TestARQDuplicateAcks(t *testing.T) {
	sched := sim.NewScheduler(sim.NewClock(0))
	tx := &scriptTx{sched: sched, sink: func([]byte, time.Duration) {}}
	arq, err := NewARQ(ARQConfig{}, sched, nil, tx)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Message{Kind: MsgScroll, Device: 1, Seq: 0}.MarshalBinary()
	if _, err := arq.SendTagged(p, PayloadV1); err != nil {
		t.Fatal(err)
	}
	ack, _ := Message{Kind: MsgAck, Device: 1, Seq: 0}.MarshalBinary()
	arq.HandleAck(ack, 0)
	arq.HandleAck(ack, 0)
	st := arq.Stats()
	if st.Acked != 1 || st.DupAcks != 1 || st.AcksReceived != 2 {
		t.Fatalf("ack accounting: %+v", st)
	}
	// A non-ack payload on the reverse channel is rejected.
	bogus, _ := Message{Kind: MsgScroll, Device: 1, Seq: 1}.MarshalBinary()
	arq.HandleAck(bogus, 0)
	if arq.Stats().BadAcks != 1 {
		t.Fatalf("bad acks: %+v", arq.Stats())
	}
}

// TestARQPassthroughUnsequenced sends a payload too short to carry a
// sequence number; it must bypass reliability untracked.
func TestARQPassthroughUnsequenced(t *testing.T) {
	sched := sim.NewScheduler(sim.NewClock(0))
	var delivered int
	tx := &scriptTx{sched: sched, sink: func([]byte, time.Duration) { delivered++ }}
	arq, err := NewARQ(ARQConfig{}, sched, nil, tx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arq.Send([]byte{0x01}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}
	st := arq.Stats()
	if st.Enqueued != 0 || arq.Outstanding() != 0 {
		t.Fatalf("unsequenced payload tracked: %+v, outstanding %d", st, arq.Outstanding())
	}
}

// TestReverseLinkLossAndFIFO drops acks probabilistically and keeps the
// surviving deliveries FIFO.
func TestReverseLinkLossAndFIFO(t *testing.T) {
	sched := sim.NewScheduler(sim.NewClock(0))
	var arrivals []time.Duration
	rev, err := NewReverseLink(
		LinkConfig{Latency: 4 * time.Millisecond, Jitter: 40 * time.Millisecond, AckLossProb: 0.3},
		sched, sim.NewRand(9),
		func(_ []byte, at time.Duration) { arrivals = append(arrivals, at) },
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		rev.SendAck(1, uint16(i))
	}
	if err := sched.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	st := rev.Stats()
	if st.AcksSent != n || st.AcksLost == 0 || st.AcksDelivered != st.AcksSent-st.AcksLost {
		t.Fatalf("reverse accounting: %+v", st)
	}
	rate := float64(st.AcksLost) / n
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("ack loss rate %.2f, want ~0.3", rate)
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatalf("ack %d overtook ack %d", i, i-1)
		}
	}
}
