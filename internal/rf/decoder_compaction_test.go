package rf

import (
	"testing"

	"github.com/hcilab/distscroll/internal/sim"
)

// TestDecoderBufferBoundedOverLongStream is the buffer-compaction soak: it
// streams several megabytes of framed traffic with interleaved garbage
// through one decoder in tiny 1–7 byte chunks — the worst chunking for an
// incremental parser, since nearly every feed leaves a partial frame
// buffered — and asserts that (a) every frame is recovered in order and
// (b) the internal scratch buffer's capacity stays bounded by one maximum
// frame plus the chunk size, i.e. compaction actually reclaims consumed
// bytes instead of letting the backing array grow with the stream.
func TestDecoderBufferBoundedOverLongStream(t *testing.T) {
	rng := sim.NewRand(1)

	// Build the stream: frames with varied payload sizes, separated every
	// few frames by random garbage that must be resynced past. Garbage is
	// drawn without 0xAA so it cannot fake a sync prefix and eat the next
	// real frame's header.
	var stream []byte
	var want []uint32 // per-frame first-4-byte checksum, in order
	frames := 0
	for len(stream) < 4<<20 {
		size := 1 + rng.Intn(MaxPayload)
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(rng.Intn(256))
		}
		var err error
		stream, err = AppendEncode(stream, payload)
		if err != nil {
			t.Fatal(err)
		}
		sum := uint32(0)
		for i := 0; i < 4 && i < len(payload); i++ {
			sum = sum<<8 | uint32(payload[i])
		}
		want = append(want, sum^uint32(size))
		frames++
		if frames%5 == 0 {
			for g := rng.Intn(20); g > 0; g-- {
				b := byte(rng.Intn(255))
				if b == sync0 {
					b = 0
				}
				stream = append(stream, b)
			}
		}
	}

	d := NewDecoder()
	got := 0
	maxCap := 0
	fn := func(p []byte) {
		sum := uint32(0)
		for i := 0; i < 4 && i < len(p); i++ {
			sum = sum<<8 | uint32(p[i])
		}
		if got < len(want) && sum^uint32(len(p)) != want[got] {
			t.Fatalf("frame %d: payload mismatch", got)
		}
		got++
	}
	const maxChunk = 7
	for off := 0; off < len(stream); {
		n := 1 + rng.Intn(maxChunk)
		if off+n > len(stream) {
			n = len(stream) - off
		}
		d.FeedFunc(stream[off:off+n], fn)
		off += n
		if c := cap(d.buf); c > maxCap {
			maxCap = c
		}
	}

	if got != frames {
		t.Fatalf("recovered %d frames, want %d", got, frames)
	}
	// The scratch can hold at most one incomplete frame plus one fed chunk;
	// append's growth policy may round that up, but never to anything that
	// scales with the multi-megabyte stream.
	const bound = 2 * (maxFrame + maxChunk)
	if maxCap > bound {
		t.Fatalf("decoder buffer grew to %d bytes (bound %d): compaction is not reclaiming consumed bytes", maxCap, bound)
	}
	t.Logf("stream %d bytes, %d frames, peak scratch capacity %d bytes", len(stream), frames, maxCap)
}

// TestFeedReturnsStableCopies pins the legacy Feed contract: returned
// payloads are owned by the caller and survive later feeds that recycle the
// decoder's internal buffer (which FeedFunc payloads explicitly do not).
func TestFeedReturnsStableCopies(t *testing.T) {
	d := NewDecoder()
	first, err := Encode([]byte{0x11, 0x22, 0x33})
	if err != nil {
		t.Fatal(err)
	}
	out := d.Feed(first)
	if len(out) != 1 {
		t.Fatalf("got %d payloads, want 1", len(out))
	}
	snapshot := append([]byte(nil), out[0]...)

	// Overwrite the decoder scratch with different traffic.
	second, err := Encode([]byte{0xEE, 0xDD, 0xCC})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		d.Feed(second)
	}

	if string(out[0]) != string(snapshot) {
		t.Fatalf("Feed payload mutated by later feeds: %x, want %x", out[0], snapshot)
	}
}
