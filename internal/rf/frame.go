// Package rf models the wireless link between the self-contained DistScroll
// device and a PC. The paper's research approach (Section 3.2) chose a
// "self contained interaction device that can be wirelessly linked to a PC";
// this package provides the framing, integrity checking and channel model
// for that link, plus the telemetry messages the firmware emits.
package rf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame format:
//
//	0xAA 0x55  sync
//	len        payload length (1 byte, <= MaxPayload)
//	payload    len bytes
//	crc        CRC-16/CCITT-FALSE over len+payload, big endian
const (
	sync0 = 0xAA
	sync1 = 0x55
	// MaxPayload is the largest payload a frame can carry.
	MaxPayload = 255
	// Overhead is the per-frame byte overhead (sync + len + crc).
	Overhead = 5
	// maxFrame is the largest complete frame on the wire.
	maxFrame = MaxPayload + Overhead
)

// Framing errors.
var (
	// ErrPayloadTooLarge is returned when encoding an oversized payload.
	ErrPayloadTooLarge = errors.New("rf: payload too large")
	// ErrBadCRC is surfaced in decoder statistics when a frame fails its
	// integrity check.
	ErrBadCRC = errors.New("rf: bad crc")
)

// crcTable is the byte-at-a-time lookup table for CRC-16/CCITT-FALSE:
// entry i is the CRC state transition for a high byte of i. It turns the
// 8-iteration bit loop per byte into one load and two shifts, which is what
// takes the frame codec from ~350ns of CRC per 25-byte frame down to ~20ns
// — the single largest cost on the ingest tier's decode path.
var crcTable = func() (t [256]uint16) {
	for i := range t {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}()

// CRC16 computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) using the
// byte-wise lookup table. crc16Bitwise is the definitional reference; the
// two are pinned identical over the full input space by TestCRC16TableMatchesBitwise.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}

// crc16Bitwise is the bit-at-a-time reference implementation of
// CRC-16/CCITT-FALSE — the codec every earlier revision of this package
// shipped. It is kept as the differential-test oracle for the table-driven
// CRC16 and as the honest "before" for ingest throughput baselines.
func crc16Bitwise(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// AppendEncode appends the framed payload to dst and returns the extended
// slice. It is the allocation-free sibling of Encode: a transmitter that
// keeps a per-device scratch buffer (`buf = AppendEncode(buf[:0], p)`) pays
// nothing per frame once the buffer has warmed up. On error dst is returned
// unchanged.
func AppendEncode(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(payload))
	}
	base := len(dst)
	dst = append(dst, sync0, sync1, byte(len(payload)))
	dst = append(dst, payload...)
	crc := CRC16(dst[base+2:]) // over len + payload
	return binary.BigEndian.AppendUint16(dst, crc), nil
}

// Encode wraps a payload into a freshly allocated frame.
func Encode(payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(payload))
	}
	frame, err := AppendEncode(make([]byte, 0, len(payload)+Overhead), payload)
	if err != nil {
		return nil, err
	}
	return frame, nil
}

// DecoderStats counts decoder outcomes.
type DecoderStats struct {
	Frames    uint64 // good frames delivered
	CRCErrors uint64
	Resyncs   uint64 // bytes skipped hunting for sync
}

// Decoder is an incremental frame decoder: feed it bytes in any chunking
// and it emits complete, CRC-verified payloads. Corrupt frames are dropped
// and the decoder re-synchronises on the next sync pattern.
//
// The internal buffer is a reusable scratch: leftover bytes are compacted to
// the front of the backing array after every feed, so its capacity is
// bounded by one maximum frame plus the largest chunk ever fed, and the
// steady state allocates nothing.
type Decoder struct {
	buf   []byte // unscanned bytes; always starts at the backing array front
	stats DecoderStats
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Stats returns the decoder statistics.
func (d *Decoder) Stats() DecoderStats { return d.stats }

// Buffered reports how many unconsumed bytes the decoder is holding — the
// tail of a frame split across reads. Network ingest paths use it to count
// short reads (reads that ended mid-frame).
func (d *Decoder) Buffered() int { return len(d.buf) }

// Feed consumes raw link bytes and returns any complete payloads. Every
// returned payload is a stable copy owned by the caller: it never aliases
// the decoder's internal buffer and survives any number of further feeds.
// Hot paths that can live with the stricter aliasing contract should use
// FeedFunc, which skips the copies.
func (d *Decoder) Feed(data []byte) [][]byte {
	var out [][]byte
	d.FeedFunc(data, func(p []byte) {
		out = append(out, append([]byte(nil), p...))
	})
	return out
}

// FeedFunc consumes raw link bytes and invokes fn once per complete,
// CRC-verified payload, in stream order. It is the zero-allocation receive
// path: the payload slice aliases the decoder's internal scratch buffer and
// is only valid for the duration of the callback — fn must fully consume or
// copy it before returning, and must not feed this decoder reentrantly.
// Use Feed to receive stable copies instead.
func (d *Decoder) FeedFunc(data []byte, fn func(payload []byte)) {
	d.buf = append(d.buf, data...)
	pos := 0 // scan cursor; bytes before pos are consumed
	for {
		// Hunt for sync.
		start := -1
		for i := pos; i+1 < len(d.buf); i++ {
			if d.buf[i] == sync0 && d.buf[i+1] == sync1 {
				start = i
				break
			}
		}
		if start < 0 {
			// Drop everything except at most one trailing byte (a possible
			// first sync byte).
			if n := len(d.buf); n-pos > 1 {
				d.stats.Resyncs += uint64(n - 1 - pos)
				pos = n - 1
			}
			break
		}
		if start > pos {
			d.stats.Resyncs += uint64(start - pos)
			pos = start
		}
		if len(d.buf)-pos < 3 {
			break
		}
		n := int(d.buf[pos+2])
		total := 3 + n + 2
		if len(d.buf)-pos < total {
			break
		}
		body := d.buf[pos+2 : pos+3+n]
		wantCRC := binary.BigEndian.Uint16(d.buf[pos+3+n : pos+total])
		if CRC16(body) != wantCRC {
			d.stats.CRCErrors++
			// Skip the bogus sync and rescan.
			pos += 2
			continue
		}
		d.stats.Frames++
		fn(d.buf[pos+3 : pos+3+n : pos+3+n])
		pos += total
	}
	// Compact: slide the unconsumed tail to the front so the backing array
	// is reused on the next feed instead of growing without bound.
	if pos > 0 {
		n := copy(d.buf, d.buf[pos:])
		d.buf = d.buf[:n]
	}
}
