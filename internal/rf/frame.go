// Package rf models the wireless link between the self-contained DistScroll
// device and a PC. The paper's research approach (Section 3.2) chose a
// "self contained interaction device that can be wirelessly linked to a PC";
// this package provides the framing, integrity checking and channel model
// for that link, plus the telemetry messages the firmware emits.
package rf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame format:
//
//	0xAA 0x55  sync
//	len        payload length (1 byte, <= MaxPayload)
//	payload    len bytes
//	crc        CRC-16/CCITT-FALSE over len+payload, big endian
const (
	sync0 = 0xAA
	sync1 = 0x55
	// MaxPayload is the largest payload a frame can carry.
	MaxPayload = 255
	// Overhead is the per-frame byte overhead (sync + len + crc).
	Overhead = 5
)

// Framing errors.
var (
	// ErrPayloadTooLarge is returned when encoding an oversized payload.
	ErrPayloadTooLarge = errors.New("rf: payload too large")
	// ErrBadCRC is surfaced in decoder statistics when a frame fails its
	// integrity check.
	ErrBadCRC = errors.New("rf: bad crc")
)

// CRC16 computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Encode wraps a payload into a frame.
func Encode(payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(payload))
	}
	frame := make([]byte, 0, len(payload)+Overhead)
	frame = append(frame, sync0, sync1, byte(len(payload)))
	frame = append(frame, payload...)
	crc := CRC16(frame[2:]) // over len + payload
	frame = binary.BigEndian.AppendUint16(frame, crc)
	return frame, nil
}

// DecoderStats counts decoder outcomes.
type DecoderStats struct {
	Frames    uint64 // good frames delivered
	CRCErrors uint64
	Resyncs   uint64 // bytes skipped hunting for sync
}

// Decoder is an incremental frame decoder: feed it bytes in any chunking
// and it emits complete, CRC-verified payloads. Corrupt frames are dropped
// and the decoder re-synchronises on the next sync pattern.
type Decoder struct {
	buf   []byte
	stats DecoderStats
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Stats returns the decoder statistics.
func (d *Decoder) Stats() DecoderStats { return d.stats }

// Feed consumes raw link bytes and returns any complete payloads.
func (d *Decoder) Feed(data []byte) [][]byte {
	d.buf = append(d.buf, data...)
	var out [][]byte
	for {
		// Hunt for sync.
		start := -1
		for i := 0; i+1 < len(d.buf); i++ {
			if d.buf[i] == sync0 && d.buf[i+1] == sync1 {
				start = i
				break
			}
		}
		if start < 0 {
			// Keep at most one byte (a possible first sync byte).
			if n := len(d.buf); n > 1 {
				d.stats.Resyncs += uint64(n - 1)
				d.buf = d.buf[n-1:]
			}
			return out
		}
		if start > 0 {
			d.stats.Resyncs += uint64(start)
			d.buf = d.buf[start:]
		}
		if len(d.buf) < 3 {
			return out
		}
		n := int(d.buf[2])
		total := 3 + n + 2
		if len(d.buf) < total {
			return out
		}
		body := d.buf[2 : 3+n]
		wantCRC := binary.BigEndian.Uint16(d.buf[3+n : total])
		if CRC16(body) != wantCRC {
			d.stats.CRCErrors++
			// Skip the bogus sync and rescan.
			d.buf = d.buf[2:]
			continue
		}
		payload := make([]byte, n)
		copy(payload, d.buf[3:3+n])
		out = append(out, payload)
		d.stats.Frames++
		d.buf = d.buf[total:]
	}
}
