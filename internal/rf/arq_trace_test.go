package rf

import (
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/tracing"
)

// TestARQTraceSpans checks the sender-side span events: a lost-then-
// retransmitted frame must leave arq.enqueue → arq.tx → arq.retx → arq.ack
// in the flight recorder, in causal order.
func TestARQTraceSpans(t *testing.T) {
	tr := tracing.New(tracing.Config{Capacity: 256, Bounded: true})
	rec := tr.NewRecorder("dev-1", 1)
	l := newReliableLoop(t, ARQConfig{}, map[int]bool{0: true}, nil)
	l.arq.SetTracer(rec)
	l.send(0, 1, 2)
	l.run(5 * time.Second)

	var order []tracing.Hop
	seen := map[tracing.Hop]int{}
	for _, e := range rec.Events() {
		order = append(order, e.Hop())
		seen[e.Hop()]++
	}
	if seen[tracing.HopArqEnqueue] != 3 {
		t.Fatalf("arq.enqueue events = %d, want 3 (events: %v)", seen[tracing.HopArqEnqueue], order)
	}
	if seen[tracing.HopArqTx] != 3 {
		t.Fatalf("arq.tx events = %d, want 3", seen[tracing.HopArqTx])
	}
	if seen[tracing.HopArqRetx] == 0 {
		t.Fatalf("no arq.retx event after a dropped first transmission (events: %v)", order)
	}
	if seen[tracing.HopArqAck] == 0 {
		t.Fatalf("no arq.ack event (events: %v)", order)
	}
	// Causality within the buffer: first enqueue precedes first tx precedes
	// first retx.
	first := func(h tracing.Hop) int {
		for i, e := range rec.Events() {
			if e.Hop() == h {
				return i
			}
		}
		return -1
	}
	if !(first(tracing.HopArqEnqueue) < first(tracing.HopArqTx) &&
		first(tracing.HopArqTx) < first(tracing.HopArqRetx)) {
		t.Fatalf("span order violated: %v", order)
	}
}

// TestARQRetryExhaustionDump induces retry-budget exhaustion and checks the
// automatic flight-recorder dump names the abandoned seq range — the
// post-mortem contract: the operator reads WHICH frames died, not just a
// counter.
func TestARQRetryExhaustionDump(t *testing.T) {
	var dump strings.Builder
	tr := tracing.New(tracing.Config{Capacity: 64, Bounded: true, DumpTo: &dump})
	rec := tr.NewRecorder("dev-1", 1)

	// Dead through the data frames' whole budget, then healed (mirrors
	// TestARQRetryBudget): seqs 0..2 exhaust 3 attempts each.
	drop := make(map[int]bool)
	for i := 0; i < 12; i++ {
		drop[i] = true
	}
	l := newReliableLoop(t, ARQConfig{MaxRetries: 3, RTO: 10 * time.Millisecond, MaxRTO: 20 * time.Millisecond}, drop, nil)
	l.arq.SetTracer(rec)
	l.send(0, 1, 2)
	l.run(10 * time.Second)

	if st := l.arq.Stats(); st.RetryDrops != 3 {
		t.Fatalf("retry drops %d, want 3", st.RetryDrops)
	}
	out := dump.String()
	if !strings.Contains(out, "retry budget exhausted") {
		t.Fatalf("dump does not name the anomaly:\n%s", out)
	}
	if !strings.Contains(out, "seqs 0..2 abandoned") {
		t.Fatalf("dump does not name the abandoned seq range 0..2:\n%s", out)
	}
	if !strings.Contains(out, "arq.retry_exhausted") {
		t.Fatalf("dump does not show the arq.retry_exhausted event:\n%s", out)
	}
	if tr.Dumps() == 0 {
		t.Fatal("no automatic dump fired")
	}
}

// TestARQOverflowTraceEvents checks backlog-overflow abandonment records
// arq.overflow flight-recorder events alongside the QueueDrops counter.
func TestARQOverflowTraceEvents(t *testing.T) {
	tr := tracing.New(tracing.Config{Capacity: 64, Bounded: true})
	rec := tr.NewRecorder("dev-1", 1)
	l := newReliableLoop(t, ARQConfig{Window: 1, Queue: 2}, nil, nil)
	l.arq.SetTracer(rec)
	l.send(0, 1, 2, 3, 4, 5)
	l.run(5 * time.Second)

	st := l.arq.Stats()
	overflow := 0
	for _, e := range rec.Events() {
		if e.Hop() == tracing.HopArqOverflow {
			overflow++
		}
	}
	if overflow == 0 || uint64(overflow) != st.QueueDrops {
		t.Fatalf("arq.overflow events = %d, QueueDrops counter = %d — must match", overflow, st.QueueDrops)
	}
}

// TestLinkTraceDeliverAndDrop drives frames through a lossy Link and checks
// every frame lands in the recorder as exactly one link.deliver or
// link.drop, matching the link counters.
func TestLinkTraceDeliverAndDrop(t *testing.T) {
	tr := tracing.New(tracing.Config{Capacity: 4096, Bounded: true})
	rec := tr.NewRecorder("dev-1", 1)
	sched := sim.NewScheduler(sim.NewClock(0))
	delivered := 0
	link, err := NewLink(LinkConfig{LossProb: 0.3, Latency: time.Millisecond},
		sched, sim.NewRand(7), func([]byte, time.Duration) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	link.SetTracer(rec)
	const frames = 200
	for i := 0; i < frames; i++ {
		p, err := (Message{Kind: MsgScroll, Device: 1, Seq: uint16(i)}).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := link.SendTagged(p, PayloadV1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Run(sched.Clock().Now() + 5*time.Second); err != nil {
		t.Fatal(err)
	}

	st := link.Stats()
	var deliverEv, dropEv uint64
	for _, e := range rec.Events() {
		switch e.Hop() {
		case tracing.HopLinkDeliver:
			deliverEv++
		case tracing.HopLinkDrop:
			dropEv++
		}
	}
	if deliverEv != st.Delivered {
		t.Fatalf("link.deliver events = %d, Delivered counter = %d", deliverEv, st.Delivered)
	}
	if dropEv != st.Lost {
		t.Fatalf("link.drop events = %d, Lost counter = %d", dropEv, st.Lost)
	}
	if dropEv == 0 {
		t.Fatal("loss model produced no drops at 30% loss over 200 frames")
	}
}
