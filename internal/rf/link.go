package rf

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

// LinkConfig parameterises the channel model.
type LinkConfig struct {
	// LossProb is the per-frame probability of complete loss.
	LossProb float64
	// CorruptProb is the per-frame probability of a single-byte flip,
	// which the decoder must reject by CRC.
	CorruptProb float64
	// Latency is the base propagation+stack delay.
	Latency time.Duration
	// Jitter is the half-width of the uniform latency jitter: the per-frame
	// delay is Latency + Uniform(-Jitter, +Jitter), clamped to be >= 0, so
	// the mean delay stays Latency.
	Jitter time.Duration
	// BitrateBPS limits throughput; <= 0 means unlimited. The prototype's
	// Smart-Its RF module runs at 19.2 kbit/s class rates.
	BitrateBPS int
	// BurstLossProb is the per-frame probability of entering a loss burst:
	// the frame and the next BurstLossLen-1 frames are dropped in a row,
	// modelling shadowing and interference hits rather than independent
	// per-frame noise. Zero disables burst faults.
	BurstLossProb float64
	// BurstLossLen is the number of consecutive frames a burst drops.
	// Values < 1 default to 4 when bursts are enabled.
	BurstLossLen int
	// AckLossProb is the loss probability of the host→device ack
	// back-channel (ReverseLink). It only matters for reliable (ARQ)
	// assemblies; the forward data path ignores it.
	AckLossProb float64
}

// DefaultLinkConfig is a clean short-range indoor link.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		LossProb:    0.002,
		CorruptProb: 0.002,
		Latency:     4 * time.Millisecond,
		Jitter:      2 * time.Millisecond,
		BitrateBPS:  19_200,
	}
}

// LinkStats counts channel activity.
type LinkStats struct {
	Sent      uint64
	Lost      uint64
	Corrupted uint64
	Delivered uint64
	// SentV0 and SentV1 split Sent by payload wire-format version (legacy
	// device-less v0 vs the fleet's device-tagged v1).
	SentV0 uint64
	SentV1 uint64
	// BurstLost is the subset of Lost dropped by burst faults.
	BurstLost uint64
}

// linkCounters are the Link's internal counters. They are atomic so a
// telemetry reporter may snapshot a link mid-run from another goroutine
// while the owning device goroutine keeps transmitting.
type linkCounters struct {
	sent, lost, corrupted, delivered atomic.Uint64
	sentV0, sentV1, burstLost        atomic.Uint64
}

func (c *linkCounters) stats() LinkStats {
	return LinkStats{
		Sent:      c.sent.Load(),
		Lost:      c.lost.Load(),
		Corrupted: c.corrupted.Load(),
		Delivered: c.delivered.Load(),
		SentV0:    c.sentV0.Load(),
		SentV1:    c.sentV1.Load(),
		BurstLost: c.burstLost.Load(),
	}
}

// Link is a unidirectional device→host channel that delivers framed
// payloads to a Decoder after a modelled delay, loss and corruption.
// Delivery is driven by the shared scheduler so time is virtual.
type Link struct {
	cfg   LinkConfig
	sched sim.EventScheduler
	rng   *sim.Rand
	dec   *Decoder
	sink  func(payload []byte, at time.Duration)
	cnt   linkCounters
	trace *tracing.Recorder
	// onPayload is the persistent decoder callback (built once so delivery
	// does not allocate a closure per frame); deliverAt carries the arrival
	// time of the frame currently being decoded. Both are only touched from
	// scheduler callbacks, which run serially on the owning device.
	onPayload func(payload []byte)
	deliverAt time.Duration
	// busyUntil models the half-duplex serialisation of the radio.
	busyUntil time.Duration
	// lastArrive makes per-link delivery times monotonic: jitter may draw a
	// smaller delay for a later frame, but frames on one link must not
	// overtake each other (Session documents "frames for one device must
	// arrive in order").
	lastArrive time.Duration
	// burstLeft counts the remaining frames of an active loss burst.
	burstLeft int
}

// NewLink returns a link delivering decoded payloads to sink. rng may be
// nil for an ideal channel.
//
// Delivered payload slices alias the link's decoder buffer and are only
// valid for the duration of the sink call: a sink that retains payload
// bytes must copy them. Every in-tree sink (Hub.Handle, Session.Handle,
// ARQ.HandleAck) decodes synchronously and retains nothing.
func NewLink(cfg LinkConfig, sched sim.EventScheduler, rng *sim.Rand, sink func(payload []byte, at time.Duration)) (*Link, error) {
	if sched == nil {
		return nil, fmt.Errorf("rf: scheduler is required")
	}
	if sink == nil {
		return nil, fmt.Errorf("rf: sink is required")
	}
	if cfg.LossProb < 0 || cfg.LossProb > 1 || cfg.CorruptProb < 0 || cfg.CorruptProb > 1 ||
		cfg.BurstLossProb < 0 || cfg.BurstLossProb > 1 || cfg.AckLossProb < 0 || cfg.AckLossProb > 1 {
		return nil, fmt.Errorf("rf: probabilities must be in [0,1]")
	}
	if cfg.BurstLossProb > 0 && cfg.BurstLossLen < 1 {
		cfg.BurstLossLen = 4
	}
	l := &Link{cfg: cfg, sched: sched, rng: rng, dec: NewDecoder(), sink: sink}
	l.onPayload = func(p []byte) {
		l.cnt.delivered.Add(1)
		if l.trace != nil {
			if seq, ok := PayloadSeq(p); ok {
				l.trace.Record(tracing.HopLinkDeliver, seq, l.deliverAt, 0, 0)
			}
		}
		l.sink(p, l.deliverAt)
	}
	return l, nil
}

// Stats returns the channel statistics.
func (l *Link) Stats() LinkStats { return l.cnt.stats() }

// SetTracer attaches a per-device flight recorder: the link records
// link.deliver for every CRC-clean frame handed to the sink and link.drop
// for frames the channel loses. A nil recorder disables tracing.
func (l *Link) SetTracer(r *tracing.Recorder) { l.trace = r }

// Collect contributes the link counters to a telemetry snapshot. Many
// links (one per fleet device) collect into the same fleet-wide names.
func (l *Link) Collect(s *telemetry.Snapshot) {
	st := l.Stats()
	s.AddCounter(telemetry.MetricRFSent, st.Sent)
	s.AddCounter(telemetry.MetricRFSentV0, st.SentV0)
	s.AddCounter(telemetry.MetricRFSentV1, st.SentV1)
	s.AddCounter(telemetry.MetricRFLost, st.Lost)
	s.AddCounter(telemetry.MetricRFBurstLost, st.BurstLost)
	s.AddCounter(telemetry.MetricRFCorrupted, st.Corrupted)
	s.AddCounter(telemetry.MetricRFDelivered, st.Delivered)
}

// DecoderStats returns the receive-side decoder statistics.
func (l *Link) DecoderStats() DecoderStats { return l.dec.Stats() }

// Send frames and transmits a payload, classifying its wire-format version
// with VersionOf. Returns the time at which delivery (or silent loss)
// completes.
func (l *Link) Send(payload []byte) (time.Duration, error) {
	return l.SendTagged(payload, VersionOf(payload))
}

// SendTagged frames and transmits a payload whose wire-format version the
// caller knows. Senders that marshalled the payload themselves (the
// firmware, the ARQ layer) pass the version explicitly so the sent-by-
// version split cannot be fooled by payload bytes that merely look like a
// version magic.
func (l *Link) SendTagged(payload []byte, ver PayloadVersion) (time.Duration, error) {
	frame, err := Encode(payload)
	if err != nil {
		return 0, fmt.Errorf("rf: send: %w", err)
	}
	l.cnt.sent.Add(1)
	if ver == PayloadV1 {
		l.cnt.sentV1.Add(1)
	} else {
		l.cnt.sentV0.Add(1)
	}

	now := l.sched.Clock().Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	txTime := time.Duration(0)
	if l.cfg.BitrateBPS > 0 {
		bits := float64(len(frame) * 10) // 8N1 framing on the air interface
		txTime = time.Duration(bits / float64(l.cfg.BitrateBPS) * float64(time.Second))
	}
	l.busyUntil = start + txTime

	// Jitter is centred on Latency (half-width cfg.Jitter) so the mean
	// delay is exactly cfg.Latency; the draw happens for lost frames too so
	// the random stream does not depend on the loss outcome.
	delay := l.cfg.Latency
	if l.rng != nil && l.cfg.Jitter > 0 {
		delay += time.Duration(l.rng.Uniform(-float64(l.cfg.Jitter), float64(l.cfg.Jitter)))
		if delay < 0 {
			delay = 0
		}
	}
	arrive := l.busyUntil + delay
	// A later frame that drew a smaller jitter must not overtake an earlier
	// one: clamp to the previous frame's arrival so per-link delivery is
	// FIFO, as Session's in-order contract requires.
	if arrive < l.lastArrive {
		arrive = l.lastArrive
	}
	l.lastArrive = arrive

	if lost, burst := l.drawLoss(); lost {
		if l.trace != nil {
			if seq, ok := PayloadSeq(payload); ok {
				var b uint32
				if burst {
					b = 1
				}
				l.trace.Record(tracing.HopLinkDrop, seq, arrive, b, 0)
			}
		}
		return arrive, nil
	}
	if l.rng != nil && l.rng.Bool(l.cfg.CorruptProb) && len(frame) > 3 {
		// Encode handed us a private frame, so the flip happens in place.
		l.cnt.corrupted.Add(1)
		i := 3 + l.rng.Intn(len(frame)-3)
		frame[i] ^= 1 << uint(l.rng.Intn(8))
	}

	l.sched.At(arrive, func(at time.Duration) {
		// The zero-copy decode path: payloads handed to the sink alias the
		// decoder scratch, valid only inside the callback (see NewLink).
		l.deliverAt = at
		l.dec.FeedFunc(frame, l.onPayload)
	})
	return arrive, nil
}

// drawLoss applies the loss model to one frame: an active burst swallows it
// unconditionally, otherwise a fresh burst may start, otherwise the
// independent per-frame loss probability applies. The second return
// distinguishes burst loss for the trace.
func (l *Link) drawLoss() (lost, burst bool) {
	if l.rng == nil {
		return false, false
	}
	if l.burstLeft > 0 {
		l.burstLeft--
		l.cnt.lost.Add(1)
		l.cnt.burstLost.Add(1)
		return true, true
	}
	if l.cfg.BurstLossProb > 0 && l.rng.Bool(l.cfg.BurstLossProb) {
		l.burstLeft = l.cfg.BurstLossLen - 1
		l.cnt.lost.Add(1)
		l.cnt.burstLost.Add(1)
		return true, true
	}
	if l.rng.Bool(l.cfg.LossProb) {
		l.cnt.lost.Add(1)
		return true, false
	}
	return false, false
}
