package rf

import (
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/tracing"
)

// These are the regression tests for the ARQ bugfix sweep: each pins a bug
// that previously stalled the reliable stream (a phantom gap the receiver
// waits on forever) or corrupted the post-mortem record.

// TestARQRetryExhaustionAcrossWrap abandons a retry-exhausted window that
// straddles the 0xFFFF→0 sequence wrap. The receiver must advance past the
// hole with zero phantom gaps, and the anomaly dump must report the true
// (wrapping) span instead of an inverted range: before the fix the span was
// computed in non-wrapping arithmetic, so a window of four frames at the
// wrap reported a span of -65532.
func TestARQRetryExhaustionAcrossWrap(t *testing.T) {
	var dump strings.Builder
	tr := tracing.New(tracing.Config{Capacity: 128, Bounded: true, DumpTo: &dump})
	rec := tr.NewRecorder("dev-1", 1)

	// Dead through the four data frames' whole budget (4 frames × 3
	// attempts), then healed so the skip fillers get through.
	drop := make(map[int]bool)
	for i := 0; i < 12; i++ {
		drop[i] = true
	}
	l := newReliableLoop(t, ARQConfig{MaxRetries: 3, RTO: 10 * time.Millisecond, MaxRTO: 20 * time.Millisecond}, drop, nil)
	l.arq.SetTracer(rec)
	l.await = 0xFFFE
	l.send(0xFFFE, 0xFFFF, 0, 1)
	l.run(10 * time.Second)

	if st := l.arq.Stats(); st.RetryDrops != 4 {
		t.Fatalf("retry drops %d, want 4", st.RetryDrops)
	}
	if l.skipped != 4 {
		t.Fatalf("receiver skipped %d seqs across the wrap, want 4", l.skipped)
	}
	if l.await != 2 {
		t.Fatalf("receiver awaits seq %d, want 2 (past the wrapped hole)", l.await)
	}
	if l.arq.Outstanding() != 0 {
		t.Fatalf("outstanding %d after drain", l.arq.Outstanding())
	}
	// The stream is live again on the far side of the wrap.
	l.send(2)
	l.run(time.Second)
	if len(l.got) != 1 || l.got[0] != 2 {
		t.Fatalf("received %v after recovery, want [2]", l.got)
	}
	out := dump.String()
	if !strings.Contains(out, "seqs 65534..1 abandoned (span 4)") {
		t.Fatalf("anomaly dump does not report the wrapping span 65534..1 (span 4):\n%s", out)
	}
}

// TestARQSkipClampNoLivelock floods a tiny backlog with more abandonments
// than one MsgSkip notice can represent (Index is int16, so a filler clamps
// at 0x7fff covered seqs). Before the fix, widening a clamped filler slid
// its end seq forward while the count stayed put, silently shrinking the
// announced range from the front — the receiver classified the notice as
// ahead of its cursor and stalled forever. The fixed merge leaves maxed
// fillers immutable and continues collapsing behind them, so the receiver
// must drain the entire 33k-seq stream.
func TestARQSkipClampNoLivelock(t *testing.T) {
	// Ideal channel; window 1 serialises delivery, so every send after the
	// first lands in the 2-slot queue before anything is acked and the
	// drop-oldest policy does all the collapsing synchronously.
	const total = 33_000 // > 0x7fff + window + queue: forces a second filler
	l := newReliableLoop(t, ARQConfig{Window: 1, Queue: 2}, nil, nil)
	for seq := 0; seq < total; seq++ {
		p, err := (Message{Kind: MsgScroll, Device: 1, Seq: uint16(seq)}).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.arq.SendTagged(p, PayloadV1); err != nil {
			t.Fatal(err)
		}
	}
	l.run(time.Minute)

	st := l.arq.Stats()
	if st.QueueDrops <= 0x7fff {
		t.Fatalf("queue drops %d, want > 32767 — the clamp never engaged", st.QueueDrops)
	}
	if l.skipped != st.QueueDrops {
		t.Fatalf("receiver skipped %d seqs, sender abandoned %d — the stream has a phantom gap", l.skipped, st.QueueDrops)
	}
	if got := l.skipped + uint64(len(l.got)); got != total {
		t.Fatalf("receiver accounted for %d of %d seqs", got, total)
	}
	if l.await != uint16(total) {
		t.Fatalf("receiver awaits seq %d, want %d — it stalled mid-stream", l.await, uint16(total))
	}
	if l.arq.Outstanding() != 0 {
		t.Fatalf("outstanding %d after drain", l.arq.Outstanding())
	}
}

// TestARQAdversarialPayloadSkip abandons a payload that PayloadSeq can
// sequence but Message.Decode rejects: a v0-length payload whose first byte
// happens to be the v1 version magic. Before the fix, converting such a
// frame into a skip filler re-parsed the payload, failed, and silently
// dropped the seq — a phantom gap the receiver waited on forever. The fix
// captures the device id at enqueue, so the filler is built unconditionally.
func TestARQAdversarialPayloadSkip(t *testing.T) {
	// 15 bytes (v0 length) starting with 0xD5: VersionOf classifies it v0
	// (too short for v1), so PayloadSeq reads a valid seq 0 from bytes 1..2,
	// but Decode refuses it (magic byte with a short body).
	adversarial := make([]byte, msgLenV0)
	adversarial[0] = verMagicV1
	var m Message
	if m.Decode(adversarial) {
		t.Fatal("adversarial payload unexpectedly decodes; the test premise is gone")
	}
	if seq, ok := PayloadSeq(adversarial); !ok || seq != 0 {
		t.Fatalf("PayloadSeq = %d,%v, want 0,true", seq, ok)
	}

	// Dead through the adversarial frame's whole budget, then healed.
	drop := map[int]bool{0: true, 1: true, 2: true}
	l := newReliableLoop(t, ARQConfig{MaxRetries: 3, RTO: 10 * time.Millisecond, MaxRTO: 20 * time.Millisecond}, drop, nil)
	if _, err := l.arq.SendTagged(adversarial, PayloadV0); err != nil {
		t.Fatal(err)
	}
	l.run(5 * time.Second)

	if st := l.arq.Stats(); st.RetryDrops != 1 {
		t.Fatalf("retry drops %d, want 1", st.RetryDrops)
	}
	if l.skipped != 1 {
		t.Fatalf("receiver skipped %d seqs, want 1 — the abandoned seq was never announced", l.skipped)
	}
	if l.arq.Outstanding() != 0 {
		t.Fatalf("outstanding %d: the unparseable frame is stuck in the window", l.arq.Outstanding())
	}
	// Seq 0's hole is closed; the well-formed successors flow normally.
	l.send(1, 2)
	l.run(time.Second)
	if len(l.got) != 2 || l.got[0] != 1 || l.got[1] != 2 {
		t.Fatalf("received %v after recovery, want [1 2]", l.got)
	}
}

// TestARQSkipFillerPreservesVersion checks an abandoned v0 payload is
// announced with a v0 skip notice (and v1 with v1): the filler must stay in
// the stream's wire dialect or a legacy receiver cannot parse its own loss
// notice.
func TestARQSkipFillerPreservesVersion(t *testing.T) {
	sched := sim.NewScheduler(sim.NewClock(0))
	var frames [][]byte
	tx := &scriptTx{sched: sched, sink: func(p []byte, _ time.Duration) {
		frames = append(frames, append([]byte(nil), p...))
	}}
	// Window 1, queue 1: the second send overflows immediately.
	arq, err := NewARQ(ARQConfig{Window: 1, Queue: 1}, sched, nil, tx)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 3; seq++ {
		p, _ := (Message{Kind: MsgScroll, Device: 0, Seq: uint16(seq)}).MarshalBinaryV0()
		if _, err := arq.SendTagged(p, PayloadV0); err != nil {
			t.Fatal(err)
		}
	}
	if arq.Stats().QueueDrops == 0 {
		t.Fatal("no overflow; the filler was never built")
	}
	// Ack the in-flight seq 0 so the backlog (filler first) promotes onto
	// the wire, then drain the deliveries.
	ack, _ := (Message{Kind: MsgAck, Device: 0, Seq: 0}).MarshalBinary()
	arq.HandleAck(ack, sched.Clock().Now())
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	skips := 0
	for _, p := range frames {
		var m Message
		if !m.Decode(p) {
			t.Fatalf("undecodable frame on the wire: % x", p)
		}
		if m.Kind != MsgSkip {
			continue
		}
		skips++
		if VersionOf(p) != PayloadV0 {
			t.Fatalf("v0 stream's skip filler went out as version %d", VersionOf(p))
		}
	}
	if skips == 0 {
		t.Fatal("no skip filler transmitted")
	}
}
