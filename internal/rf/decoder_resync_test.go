package rf

import (
	"bytes"
	"fmt"
	"testing"
)

// encodeSeq returns n framed payloads "p0".."pN" plus the raw payloads.
func encodeSeq(t *testing.T, n int) (frames [][]byte, payloads [][]byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("p%02d", i))
		f, err := Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
		payloads = append(payloads, p)
	}
	return frames, payloads
}

// feedAll pushes every stream chunk through the decoder and collects the
// decoded payloads.
func feedAll(dec *Decoder, chunks ...[]byte) [][]byte {
	var got [][]byte
	for _, c := range chunks {
		got = append(got, dec.Feed(c)...)
	}
	return got
}

// TestDecoderResyncCorruptSyncBytes corrupts each of the two sync bytes of a
// frame in a longer stream; the decoder must drop only that frame and decode
// every following one.
func TestDecoderResyncCorruptSyncBytes(t *testing.T) {
	for _, idx := range []int{0, 1} {
		dec := NewDecoder()
		frames, payloads := encodeSeq(t, 5)
		frames[2] = append([]byte(nil), frames[2]...)
		frames[2][idx] ^= 0xFF // break sync0 or sync1
		got := feedAll(dec, bytes.Join(frames, nil))
		// Frame 2 is lost; depending on where the scan lands, the decoder
		// may also consume into frame 3, but it must recover by frame 4.
		if len(got) < 3 {
			t.Fatalf("sync byte %d: recovered only %d frames", idx, len(got))
		}
		last := got[len(got)-1]
		if !bytes.Equal(last, payloads[4]) {
			t.Fatalf("sync byte %d: last decoded %q, want %q", idx, last, payloads[4])
		}
	}
}

// TestDecoderResyncCorruptLenByte corrupts a length byte upward, which makes
// the decoder swallow the following good frames while it waits for the
// phantom long frame. The CRC check must fail, the decoder must rescan
// inside its buffer, and the stream must flow again.
func TestDecoderResyncCorruptLenByte(t *testing.T) {
	dec := NewDecoder()
	frames, payloads := encodeSeq(t, 40)
	bad := append([]byte(nil), frames[0]...)
	bad[2] = MaxPayload // inflate the length field far beyond the real frame
	stream := bytes.Join(append([][]byte{bad}, frames[1:]...), nil)
	got := feedAll(dec, stream)
	if len(got) == 0 {
		t.Fatal("decoder never recovered from a corrupted length byte")
	}
	last := got[len(got)-1]
	if !bytes.Equal(last, payloads[len(payloads)-1]) {
		t.Fatalf("last decoded %q, want %q", last, payloads[len(payloads)-1])
	}
	if dec.Stats().CRCErrors == 0 {
		t.Fatal("phantom frame passed CRC")
	}
}

// TestDecoderResyncMidStreamGarbage interleaves bursts of garbage — which
// include stray sync bytes — between good frames. Every good frame must
// still decode.
func TestDecoderResyncMidStreamGarbage(t *testing.T) {
	dec := NewDecoder()
	frames, payloads := encodeSeq(t, 6)
	garbage := []byte{0x00, 0xAA, 0x55, 0x03, 0xFF, 0xAA, 0x7E, 0x55}
	var chunks [][]byte
	for _, f := range frames {
		chunks = append(chunks, garbage, f)
	}
	got := feedAll(dec, chunks...)
	// Garbage containing a plausible sync+len prefix may swallow the next
	// real frame before the CRC rejects it; the decoder must still deliver
	// most of the stream and end in sync.
	if len(got) < len(frames)/2 {
		t.Fatalf("recovered only %d of %d frames", len(got), len(frames))
	}
	if !bytes.Equal(got[len(got)-1], payloads[len(payloads)-1]) {
		t.Fatalf("last decoded %q, want %q", got[len(got)-1], payloads[len(payloads)-1])
	}
	if dec.Stats().Resyncs == 0 {
		t.Fatal("garbage consumed without resync accounting")
	}
}

// TestDecoderByteAtATimeUnderCorruption drip-feeds a corrupted stream one
// byte at a time — the worst-case framing path.
func TestDecoderByteAtATimeUnderCorruption(t *testing.T) {
	dec := NewDecoder()
	frames, payloads := encodeSeq(t, 4)
	frames[1] = append([]byte(nil), frames[1]...)
	frames[1][4] ^= 0x10 // flip a payload bit: CRC must reject
	stream := bytes.Join(frames, nil)
	var got [][]byte
	for i := range stream {
		got = append(got, dec.Feed(stream[i:i+1])...)
	}
	if len(got) < 2 {
		t.Fatalf("recovered %d frames", len(got))
	}
	if !bytes.Equal(got[len(got)-1], payloads[3]) {
		t.Fatalf("last decoded %q, want %q", got[len(got)-1], payloads[3])
	}
	if dec.Stats().CRCErrors == 0 {
		t.Fatal("corruption not caught by CRC")
	}
}
