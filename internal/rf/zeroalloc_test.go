package rf

import (
	"testing"
)

// The zero-allocation contracts of the frame pipeline, enforced as tests so
// a regression fails CI rather than silently costing a fleet host one
// garbage-collected allocation per frame. testing.AllocsPerRun reports the
// average allocations of steady-state calls; the scratch buffers warm up
// before measurement.

func testMessage() Message {
	return Message{
		Kind:      MsgScroll,
		Device:    7,
		Seq:       42,
		AtMillis:  1234,
		Index:     5,
		VoltageMV: 1800,
		Island:    2,
		Button:    1,
		Context:   3,
	}
}

func TestAppendBinaryZeroAlloc(t *testing.T) {
	m := testMessage()
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(1000, func() {
		buf = m.AppendBinary(buf[:0])
	}); n != 0 {
		t.Fatalf("Message.AppendBinary: %v allocs/op, want 0", n)
	}
}

func TestAppendEncodeZeroAlloc(t *testing.T) {
	payload := testMessage().AppendBinary(nil)
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = AppendEncode(buf[:0], payload)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AppendEncode: %v allocs/op, want 0", n)
	}
}

func TestFeedFuncZeroAlloc(t *testing.T) {
	frame, err := Encode(testMessage().AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder()
	got := 0
	fn := func(p []byte) { got++ }
	// Warm the decoder's internal buffer before measuring.
	d.FeedFunc(frame, fn)
	got = 0
	if n := testing.AllocsPerRun(1000, func() {
		d.FeedFunc(frame, fn)
	}); n != 0 {
		t.Fatalf("Decoder.FeedFunc: %v allocs/op, want 0", n)
	}
	if got != 1000+1 {
		t.Fatalf("decoded %d frames, want %d", got, 1001)
	}
}

// TestEncodeAppendEncodeEquivalent pins the append-style encoder to the
// allocating one byte for byte, including the error path leaving dst
// untouched.
func TestEncodeAppendEncodeEquivalent(t *testing.T) {
	payloads := [][]byte{
		{0x01},
		testMessage().AppendBinary(nil),
		make([]byte, MaxPayload),
	}
	for _, p := range payloads {
		want, err := Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendEncode([]byte{0xEE}, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1+len(want) || got[0] != 0xEE || string(got[1:]) != string(want) {
			t.Fatalf("AppendEncode mismatch for %d-byte payload", len(p))
		}
	}
	dst := []byte{1, 2, 3}
	out, err := AppendEncode(dst, make([]byte, MaxPayload+1))
	if err == nil {
		t.Fatal("AppendEncode accepted oversize payload")
	}
	if len(out) != 3 {
		t.Fatalf("error path must leave dst unchanged, got len %d", len(out))
	}
}
