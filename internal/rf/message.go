package rf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// MsgKind identifies a telemetry message type.
type MsgKind byte

// Telemetry message kinds emitted by the DistScroll firmware.
const (
	// MsgScroll reports that the distance mapping moved the cursor to a
	// new entry index.
	MsgScroll MsgKind = iota + 1
	// MsgSelect reports a button selection of the current entry.
	MsgSelect
	// MsgLevel reports that the menu level changed (enter / back).
	MsgLevel
	// MsgState is the periodic debug state shown on the bottom display.
	MsgState
	// MsgHeartbeat is a keep-alive.
	MsgHeartbeat
)

// String returns the message kind name.
func (k MsgKind) String() string {
	switch k {
	case MsgScroll:
		return "scroll"
	case MsgSelect:
		return "select"
	case MsgLevel:
		return "level"
	case MsgState:
		return "state"
	case MsgHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("msg(%d)", byte(k))
	}
}

// Message is a decoded telemetry message.
type Message struct {
	Kind MsgKind
	// Seq is a wrapping sequence number, used to measure loss.
	Seq uint16
	// At is the firmware timestamp (virtual milliseconds, wrapping).
	AtMillis uint32

	// Index is the entry index for MsgScroll/MsgSelect, the depth for
	// MsgLevel.
	Index int16
	// Voltage is the filtered sensor voltage in millivolts (MsgState).
	VoltageMV uint16
	// Island is the active island index, -1 when between islands (MsgState).
	Island int16
	// Button is the button id for MsgSelect.
	Button byte
	// Context is the encoded orientation/context byte (MsgState); see
	// the context package for the encoding.
	Context byte
}

// ErrShortMessage is returned when decoding a truncated payload.
var ErrShortMessage = errors.New("rf: short message")

const msgLen = 1 + 2 + 4 + 2 + 2 + 2 + 1 + 1

// MarshalBinary encodes the message into a fixed-size payload.
func (m Message) MarshalBinary() ([]byte, error) {
	buf := make([]byte, msgLen)
	buf[0] = byte(m.Kind)
	binary.BigEndian.PutUint16(buf[1:], m.Seq)
	binary.BigEndian.PutUint32(buf[3:], m.AtMillis)
	binary.BigEndian.PutUint16(buf[7:], uint16(m.Index))
	binary.BigEndian.PutUint16(buf[9:], m.VoltageMV)
	binary.BigEndian.PutUint16(buf[11:], uint16(m.Island))
	buf[13] = m.Button
	buf[14] = m.Context
	return buf, nil
}

// UnmarshalBinary decodes a payload produced by MarshalBinary.
func (m *Message) UnmarshalBinary(data []byte) error {
	if len(data) < msgLen {
		return fmt.Errorf("%w: %d bytes, want %d", ErrShortMessage, len(data), msgLen)
	}
	m.Kind = MsgKind(data[0])
	m.Seq = binary.BigEndian.Uint16(data[1:])
	m.AtMillis = binary.BigEndian.Uint32(data[3:])
	m.Index = int16(binary.BigEndian.Uint16(data[7:]))
	m.VoltageMV = binary.BigEndian.Uint16(data[9:])
	m.Island = int16(binary.BigEndian.Uint16(data[11:]))
	m.Button = data[13]
	m.Context = data[14]
	return nil
}

// Timestamp converts the firmware millisecond counter to a duration.
func (m Message) Timestamp() time.Duration {
	return time.Duration(m.AtMillis) * time.Millisecond
}
