package rf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// MsgKind identifies a telemetry message type.
type MsgKind byte

// Telemetry message kinds emitted by the DistScroll firmware.
const (
	// MsgScroll reports that the distance mapping moved the cursor to a
	// new entry index.
	MsgScroll MsgKind = iota + 1
	// MsgSelect reports a button selection of the current entry.
	MsgSelect
	// MsgLevel reports that the menu level changed (enter / back).
	MsgLevel
	// MsgState is the periodic debug state shown on the bottom display.
	MsgState
	// MsgHeartbeat is a keep-alive.
	MsgHeartbeat
	// MsgAck is the host→device cumulative acknowledgement of the reliable
	// (ARQ) stream: Seq is the highest sequence number such that every frame
	// up to and including it has been delivered in order. It travels on the
	// ReverseLink, never device→host.
	MsgAck
	// MsgSkip is the reliable sender's abandonment notice: Seq is the last
	// and Index the count of consecutive sequence numbers the sender has
	// dropped (queue overflow or retry budget) and will never transmit. It
	// is injected into the stream at the hole's position, so the sequence
	// space stays contiguous and the receiver advances past the hole with
	// certainty instead of guessing from retransmission patterns.
	MsgSkip
)

// String returns the message kind name.
func (k MsgKind) String() string {
	switch k {
	case MsgScroll:
		return "scroll"
	case MsgSelect:
		return "select"
	case MsgLevel:
		return "level"
	case MsgState:
		return "state"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgAck:
		return "ack"
	case MsgSkip:
		return "skip"
	default:
		return fmt.Sprintf("msg(%d)", byte(k))
	}
}

// Message is a decoded telemetry message.
type Message struct {
	Kind MsgKind
	// Device identifies the sending DistScroll when a host serves a fleet
	// of them. Zero is the conventional single-device id; it is also what
	// legacy v0 frames (which carry no device field) decode to.
	Device uint32
	// Seq is a wrapping sequence number, used to measure loss.
	Seq uint16
	// At is the firmware timestamp (virtual milliseconds, wrapping).
	AtMillis uint32

	// Index is the entry index for MsgScroll/MsgSelect, the depth for
	// MsgLevel.
	Index int16
	// Voltage is the filtered sensor voltage in millivolts (MsgState).
	VoltageMV uint16
	// Island is the active island index, -1 when between islands (MsgState).
	Island int16
	// Button is the button id for MsgSelect.
	Button byte
	// Context is the encoded orientation/context byte (MsgState); see
	// the context package for the encoding.
	Context byte
}

// ErrShortMessage is returned when decoding a truncated payload.
var ErrShortMessage = errors.New("rf: short message")

// Wire formats. The original (v0) payload starts directly with the kind
// byte and carries no device id; the current (v1) payload is prefixed with
// a version magic and a big-endian uint32 device id so a host hub can
// demultiplex a fleet of devices sharing one receiver. The magic byte is
// chosen well outside the valid kind range (1..7), so the two versions can
// be told apart from the first payload byte — for well-formed traffic. An
// adversarial v0 payload may still start with the magic byte, which is why
// VersionOf also checks the payload length and why senders that know their
// version pass it explicitly (VersionedSender).
const (
	// verMagicV1 marks a version-1 payload. It never collides with a v0
	// payload, whose first byte is a MsgKind.
	verMagicV1 = 0xD5

	msgLenV0 = 1 + 2 + 4 + 2 + 2 + 2 + 1 + 1
	msgLenV1 = 1 + 4 + msgLenV0
)

// PayloadVersion identifies the wire-format version of a telemetry payload.
type PayloadVersion uint8

// Payload wire-format versions.
const (
	// PayloadV0 is the legacy device-less layout.
	PayloadV0 PayloadVersion = 0
	// PayloadV1 is the fleet layout: version magic + device id + v0 body.
	PayloadV1 PayloadVersion = 1
)

// VersionOf classifies a payload's wire-format version. Unlike a bare
// first-byte sniff, it also requires a v1 payload to be long enough to carry
// the v1 header, so a legacy v0 payload whose first byte happens to equal
// the version magic is still classified as v0. Senders that marshalled the
// payload themselves should pass the version explicitly instead (see
// VersionedSender); VersionOf is the best-effort fallback for opaque
// payloads.
func VersionOf(payload []byte) PayloadVersion {
	if len(payload) >= msgLenV1 && payload[0] == verMagicV1 {
		return PayloadV1
	}
	return PayloadV0
}

// PayloadSeq extracts the wrapping sequence number from a marshalled
// telemetry payload without decoding the whole message. It reports false
// for payloads too short to carry one. The ARQ layer uses it to match
// cumulative acks against in-flight frames.
func PayloadSeq(payload []byte) (uint16, bool) {
	switch VersionOf(payload) {
	case PayloadV1:
		return binary.BigEndian.Uint16(payload[6:8]), true
	default:
		if len(payload) >= msgLenV0 {
			return binary.BigEndian.Uint16(payload[1:3]), true
		}
		return 0, false
	}
}

// PayloadDevice extracts the device id from a marshalled telemetry payload
// without decoding the whole message. Legacy v0 payloads carry no device
// field and report the conventional zero id, as does anything too short to
// classify — the result is best-effort routing information, never a parse.
func PayloadDevice(payload []byte) uint32 {
	if VersionOf(payload) == PayloadV1 {
		return binary.BigEndian.Uint32(payload[1:5])
	}
	return 0
}

// seqLE reports a <= b in wrapping uint16 sequence space: the distance from
// a forward to b is less than half the space.
func seqLE(a, b uint16) bool { return b-a < 0x8000 }

// AppendBinary appends the fixed-size v1 wire encoding of m to dst and
// returns the extended slice. It is the allocation-free sibling of
// MarshalBinary: a transmitter that keeps a per-device scratch buffer
// (`buf = m.AppendBinary(buf[:0])`) pays nothing per message once the
// buffer has warmed up.
func (m Message) AppendBinary(dst []byte) []byte {
	dst = grow(dst, msgLenV1)
	buf := dst[len(dst)-msgLenV1:]
	buf[0] = verMagicV1
	binary.BigEndian.PutUint32(buf[1:], m.Device)
	m.putV0Body(buf[5:])
	return dst
}

// grow extends dst by n bytes, reusing capacity when it suffices.
func grow(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst[:len(dst)+n]
	}
	out := make([]byte, len(dst)+n, 2*(len(dst)+n))
	copy(out, dst)
	return out
}

// MarshalBinary encodes the message into a fixed-size v1 payload carrying
// the device id.
func (m Message) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, msgLenV1)), nil
}

// MarshalBinaryV0 encodes the message in the legacy v0 layout, which has no
// version marker and no device id. It exists for compatibility tests and
// for talking to pre-fleet firmware images.
func (m Message) MarshalBinaryV0() ([]byte, error) {
	buf := make([]byte, msgLenV0)
	m.putV0Body(buf)
	return buf, nil
}

func (m Message) putV0Body(buf []byte) {
	buf[0] = byte(m.Kind)
	binary.BigEndian.PutUint16(buf[1:], m.Seq)
	binary.BigEndian.PutUint32(buf[3:], m.AtMillis)
	binary.BigEndian.PutUint16(buf[7:], uint16(m.Index))
	binary.BigEndian.PutUint16(buf[9:], m.VoltageMV)
	binary.BigEndian.PutUint16(buf[11:], uint16(m.Island))
	buf[13] = m.Button
	buf[14] = m.Context
}

// UnmarshalBinary decodes a payload produced by MarshalBinary or
// MarshalBinaryV0, selecting the version from the first byte. Legacy v0
// payloads decode with Device zero.
func (m *Message) UnmarshalBinary(data []byte) error {
	if m.Decode(data) {
		return nil
	}
	if len(data) >= 1 && data[0] == verMagicV1 {
		return fmt.Errorf("%w: %d bytes, want %d (v1)", ErrShortMessage, len(data), msgLenV1)
	}
	return fmt.Errorf("%w: %d bytes, want %d", ErrShortMessage, len(data), msgLenV0)
}

// Decode is the allocation-free sibling of UnmarshalBinary: it decodes a
// payload in place and reports whether it was well formed, without
// constructing an error value. Demux hot paths use it so a storm of corrupt
// frames costs an atomic counter increment per frame, not a garbage-
// collected error each.
func (m *Message) Decode(data []byte) bool {
	if len(data) >= 1 && data[0] == verMagicV1 {
		if len(data) < msgLenV1 {
			return false
		}
		m.Device = binary.BigEndian.Uint32(data[1:])
		m.getV0Body(data[5:])
		return true
	}
	if len(data) < msgLenV0 {
		return false
	}
	m.Device = 0
	m.getV0Body(data)
	return true
}

func (m *Message) getV0Body(data []byte) {
	m.Kind = MsgKind(data[0])
	m.Seq = binary.BigEndian.Uint16(data[1:])
	m.AtMillis = binary.BigEndian.Uint32(data[3:])
	m.Index = int16(binary.BigEndian.Uint16(data[7:]))
	m.VoltageMV = binary.BigEndian.Uint16(data[9:])
	m.Island = int16(binary.BigEndian.Uint16(data[11:]))
	m.Button = data[13]
	m.Context = data[14]
}

// Timestamp converts the firmware millisecond counter to a duration.
func (m Message) Timestamp() time.Duration {
	return time.Duration(m.AtMillis) * time.Millisecond
}
