package rf

import (
	"fmt"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
)

// Transport is the device→host channel abstraction: anything that can carry
// one telemetry payload towards the host side. The lossy RF channel model
// (*Link) is the default implementation; *Pipe is an ideal in-process
// channel; real network backends plug in behind the same interface.
//
// Send returns the virtual time at which the transmission completes
// (delivery, or silent loss for lossy transports).
//
// Ownership: the payload belongs to the caller and is only valid for the
// duration of the Send/SendTagged call. A transport that needs the bytes
// later (queueing, retransmission, deferred delivery) must copy them —
// *Pipe and *ARQ do. This lets senders marshal into a reusable scratch
// buffer and transmit allocation-free (see Message.AppendBinary).
type Transport interface {
	Send(payload []byte) (time.Duration, error)
}

// VersionedSender is implemented by transports that can account the payload
// wire-format version the caller passes explicitly, instead of sniffing it
// out of the payload bytes (which an adversarial v0 payload can fool).
type VersionedSender interface {
	SendTagged(payload []byte, ver PayloadVersion) (time.Duration, error)
}

var (
	_ Transport       = (*Link)(nil)
	_ Transport       = (*Pipe)(nil)
	_ Transport       = (*ARQ)(nil)
	_ VersionedSender = (*Link)(nil)
	_ VersionedSender = (*ARQ)(nil)
)

// Pipe is an ideal, lossless Transport: every payload is delivered intact
// to the sink after a fixed latency, driven by the shared scheduler so time
// stays virtual. It isolates host-side behaviour from channel effects in
// fleet scenarios and serves as the template for non-RF backends.
type Pipe struct {
	sched   sim.EventScheduler
	latency time.Duration
	sink    func(payload []byte, at time.Duration)
	stats   LinkStats
}

// NewPipe returns an ideal transport delivering payloads to sink after the
// given latency.
func NewPipe(sched sim.EventScheduler, latency time.Duration, sink func(payload []byte, at time.Duration)) (*Pipe, error) {
	if sched == nil {
		return nil, fmt.Errorf("rf: scheduler is required")
	}
	if sink == nil {
		return nil, fmt.Errorf("rf: sink is required")
	}
	if latency < 0 {
		return nil, fmt.Errorf("rf: negative latency")
	}
	return &Pipe{sched: sched, latency: latency, sink: sink}, nil
}

// Stats returns the channel statistics. A pipe never loses or corrupts, so
// Delivered always tracks Sent once pending deliveries have drained.
func (p *Pipe) Stats() LinkStats { return p.stats }

// Send schedules delivery of one payload.
func (p *Pipe) Send(payload []byte) (time.Duration, error) {
	p.stats.Sent++
	arrive := p.sched.Clock().Now() + p.latency
	cp := append([]byte(nil), payload...)
	p.sched.At(arrive, func(at time.Duration) {
		p.stats.Delivered++
		p.sink(cp, at)
	})
	return arrive, nil
}
