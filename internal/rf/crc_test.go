package rf

import (
	"math/rand"
	"testing"
)

// TestCRC16TableMatchesBitwise pins the table-driven CRC16 byte-identical
// to the bit-at-a-time reference over known vectors, every single-byte
// input, and randomized buffers up to a full frame. The wire format cannot
// tolerate even one diverging polynomial step: a mismatch would make every
// frame encoded by one implementation fail the other's integrity check.
func TestCRC16TableMatchesBitwise(t *testing.T) {
	// CRC-16/CCITT-FALSE check value: "123456789" -> 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16(check vector) = %#04x, want 0x29b1", got)
	}
	if got := crc16Bitwise([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("crc16Bitwise(check vector) = %#04x, want 0x29b1", got)
	}
	if got, want := CRC16(nil), crc16Bitwise(nil); got != want {
		t.Fatalf("empty input: table %#04x, bitwise %#04x", got, want)
	}
	for b := 0; b < 256; b++ {
		in := []byte{byte(b)}
		if got, want := CRC16(in), crc16Bitwise(in); got != want {
			t.Fatalf("single byte %#02x: table %#04x, bitwise %#04x", b, got, want)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		buf := make([]byte, 1+rng.Intn(maxFrame))
		rng.Read(buf)
		if got, want := CRC16(buf), crc16Bitwise(buf); got != want {
			t.Fatalf("trial %d (%d bytes): table %#04x, bitwise %#04x", trial, len(buf), got, want)
		}
	}
}

// TestCRC16RejectsEveryBitFlip checks the integrity property end to end on
// the fast path: any single-bit corruption of a framed payload must change
// the CRC (CCITT-FALSE detects all single-bit errors).
func TestCRC16RejectsEveryBitFlip(t *testing.T) {
	body := []byte{16, 0xD1, 0, 0, 0, 9, 0, 7, 0, 0, 4, 0xD2, 0, 3, 0, 1, 2}
	want := CRC16(body)
	for i := range body {
		for bit := 0; bit < 8; bit++ {
			body[i] ^= 1 << bit
			if CRC16(body) == want {
				t.Fatalf("bit flip at byte %d bit %d not detected", i, bit)
			}
			body[i] ^= 1 << bit
		}
	}
}
