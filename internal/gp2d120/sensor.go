// Package gp2d120 models the Sharp GP2D120 infrared triangulation distance
// sensor used as the integral input component of the DistScroll prototype
// (paper Section 4.2, Figures 4 and 5).
//
// The model reproduces the behaviours the interaction technique depends on:
//
//   - a hyperbolic, non-linear analog output voltage over the usable range
//     of roughly 4–30 cm (the paper: "its measurement range fits perfectly
//     for the predicted normal usage of the DistScroll device of about 4 to
//     30 cm");
//   - output *rises* as the object approaches and *falls* as it moves away;
//   - the fold-back ambiguity below ~4 cm, where "the values decline again"
//     so approach and retreat cannot be distinguished;
//   - near-invariance to object colour/reflectivity, with an optional
//     structured-reflection outlier mode for "reflective surfaces with clear
//     boundaries" (the paper's stated failure case);
//   - the far cut-off beyond which "no measurement can be made".
package gp2d120

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/hcilab/distscroll/internal/sim"
)

// Physical limits of the modelled sensor, in centimetres.
const (
	// PeakDistanceCm is where the output voltage peaks; below it the
	// characteristic folds back (datasheet: ~3 cm).
	PeakDistanceCm = 3.0
	// MinUsableCm is the near edge of the monotone usable range (paper: 4 cm).
	MinUsableCm = 4.0
	// MaxUsableCm is the far edge of the usable range (paper: 30 cm).
	MaxUsableCm = 30.0
	// CutoffCm is where the sensor stops returning a meaningful measurement.
	CutoffCm = 40.0
	// FloorVolts is the output level beyond the cutoff.
	FloorVolts = 0.25
)

// Default characteristic parameters for V(d) = a/(d+b) + c, chosen to match
// the GP2D120 datasheet curve (≈2.9 V at 4 cm falling to ≈0.4 V at 30 cm).
const (
	DefaultA = 13.0
	DefaultB = 0.42
	DefaultC = 0.04
)

// ErrOutOfRange is returned by Distance inversion when the voltage cannot
// correspond to a distance inside the monotone usable range.
var ErrOutOfRange = errors.New("gp2d120: voltage outside usable range")

// Surface describes the object in front of the sensor. The paper verified
// the characteristic "in different light conditions and with different
// clothing"; reflectivity has only a small effect, which this captures.
type Surface struct {
	// Reflectivity scales the returned signal slightly. 1.0 is the grey
	// reference card; clothing falls in roughly [0.92, 1.08].
	Reflectivity float64
	// Structured marks surfaces with sharp reflective boundaries, which
	// can scatter the emitted spot and produce spurious readings.
	Structured bool
	// OutlierProb is the per-sample probability of a spurious reading when
	// Structured is set.
	OutlierProb float64
}

// DefaultSurface is ordinary matte clothing.
func DefaultSurface() Surface {
	return Surface{Reflectivity: 1.0}
}

// Config parameterises a sensor instance.
type Config struct {
	// A, B, C are the characteristic parameters of V(d) = A/(d+B) + C.
	A, B, C float64
	// NoiseSD is the RMS output noise in volts (datasheet-ish: ~10 mV).
	NoiseSD float64
	// AmbientOffset is a constant voltage offset from ambient IR light.
	AmbientOffset float64
}

// DefaultConfig returns the datasheet-matched configuration.
func DefaultConfig() Config {
	return Config{A: DefaultA, B: DefaultB, C: DefaultC, NoiseSD: 0.010}
}

// charTable is the precomputed characteristic of one (A, B, C) parameter
// set: the hyperbolic branch V(d) = A/(d+B) + C sampled on a uniform grid
// over [PeakDistanceCm, CutoffCm] for linear interpolation, plus the
// derived constants every sample would otherwise recompute. Only the
// smooth hyperbola is tabulated — the fold-back below the peak is exactly
// linear and the floor beyond the cutoff is constant, so interpolating
// across either boundary would only add error. Tables are shared across
// sensors with the same parameters, so a fleet of thousands of identical
// devices pays for one table.
type charTable struct {
	nodes []float64 // V at PeakDistanceCm + i*charStep
	peak  float64   // V at the peak, the fold-back branch's top
	vNear float64   // V at MinUsableCm, Distance's upper bound
	vFar  float64   // V at CutoffCm, Distance's lower bound
}

// charStep is the table grid spacing in cm. The hyperbola's curvature is
// largest at the peak (|V”| = 2A/(d+B)^3 ≈ 0.65 V/cm² for the default
// parameters), so the linear-interpolation error is bounded by
// |V”|·step²/8 ≈ 3.1e-7 V — three orders of magnitude below the 10-bit
// ADC step of ~3.2 mV. TestTableMatchesExact asserts the bound.
const charStep = 1.0 / 512

// tableCacheMu guards tableCache, the shared (A, B, C) → table map.
var (
	tableCacheMu sync.Mutex
	tableCache   = map[[3]float64]*charTable{}
)

// tableFor returns the shared characteristic table for a parameter set,
// building it on first use.
func tableFor(a, b, c float64) *charTable {
	key := [3]float64{a, b, c}
	tableCacheMu.Lock()
	defer tableCacheMu.Unlock()
	if t, ok := tableCache[key]; ok {
		return t
	}
	n := int(math.Ceil((CutoffCm-PeakDistanceCm)/charStep)) + 1
	t := &charTable{
		nodes: make([]float64, n),
		peak:  a/(PeakDistanceCm+b) + c,
		vNear: a/(MinUsableCm+b) + c,
		vFar:  a/(CutoffCm+b) + c,
	}
	for i := range t.nodes {
		d := PeakDistanceCm + float64(i)*charStep
		if d > CutoffCm {
			d = CutoffCm
		}
		t.nodes[i] = a/(d+b) + c
	}
	tableCache[key] = t
	return t
}

// lookup evaluates the characteristic at distance d (cm) from the table:
// exact on the linear fold-back and floor branches, linearly interpolated
// on the hyperbola. It is the division-and-allocation-free fast path
// behind Sample; Ideal remains the exact reference curve.
func (t *charTable) lookup(d float64) float64 {
	switch {
	case d <= 0:
		return 0
	case d < PeakDistanceCm:
		return t.peak * (d / PeakDistanceCm)
	case d > CutoffCm:
		return FloorVolts
	}
	x := (d - PeakDistanceCm) / charStep
	i := int(x)
	if i >= len(t.nodes)-1 {
		return t.nodes[len(t.nodes)-1]
	}
	frac := x - float64(i)
	return t.nodes[i] + frac*(t.nodes[i+1]-t.nodes[i])
}

// Sensor is a GP2D120 instance.
type Sensor struct {
	cfg     Config
	surface Surface
	rng     *sim.Rand
	// tab is the shared precomputed characteristic; gain caches
	// weakGain(surface.Reflectivity), which costs a math.Log to derive.
	// Together they make Sample free of transcendental calls and divisions
	// on the non-outlier path.
	tab  *charTable
	gain float64
}

// New returns a sensor with the given configuration, surface and random
// source. rng may be nil for a noiseless, deterministic sensor.
func New(cfg Config, surface Surface, rng *sim.Rand) (*Sensor, error) {
	if cfg.A <= 0 || cfg.B < 0 {
		return nil, fmt.Errorf("gp2d120: invalid characteristic a=%g b=%g", cfg.A, cfg.B)
	}
	if surface.Reflectivity <= 0 {
		return nil, fmt.Errorf("gp2d120: reflectivity must be positive, got %g", surface.Reflectivity)
	}
	return &Sensor{
		cfg:     cfg,
		surface: surface,
		rng:     rng,
		tab:     tableFor(cfg.A, cfg.B, cfg.C),
		gain:    weakGain(surface.Reflectivity),
	}, nil
}

// Default returns a sensor with datasheet parameters, the default surface
// and the given random source.
func Default(rng *sim.Rand) *Sensor {
	s, err := New(DefaultConfig(), DefaultSurface(), rng)
	if err != nil {
		// DefaultConfig is valid by construction.
		panic(err)
	}
	return s
}

// SetSurface changes the object in front of the sensor.
func (s *Sensor) SetSurface(surface Surface) {
	s.surface = surface
	s.gain = weakGain(surface.Reflectivity)
}

// Surface returns the current surface.
func (s *Sensor) Surface() Surface { return s.surface }

// Ideal returns the noiseless characteristic voltage at distance d (cm),
// including the fold-back below the peak and the far cut-off. This is the
// "idealized curve" of paper Figure 4.
func (s *Sensor) Ideal(d float64) float64 {
	switch {
	case d <= 0:
		return 0
	case d < PeakDistanceCm:
		// Fold-back branch: roughly linear rise from near zero at contact
		// to the peak value, so the value "declines again" as the device
		// moves below 4 cm — and declines much faster than the far branch,
		// which the paper notes advanced users can exploit.
		peak := s.cfg.A/(PeakDistanceCm+s.cfg.B) + s.cfg.C
		return peak * (d / PeakDistanceCm)
	case d > CutoffCm:
		return FloorVolts
	default:
		return s.cfg.A/(d+s.cfg.B) + s.cfg.C
	}
}

// Sample returns one noisy analog reading at distance d (cm), applying
// surface reflectivity, ambient offset, Gaussian noise and (for structured
// surfaces) spurious outliers. Output is clamped to [0, 3.3] V, the
// sensor's output swing.
func (s *Sensor) Sample(d float64) float64 {
	v := s.tab.lookup(d)
	// Reflectivity has a weak effect on the triangulated signal; model it
	// as a small gain on the distance-dependent part. The gain is cached at
	// construction/SetSurface time, so the per-sample cost is one multiply.
	v = (v-s.cfg.C)*s.gain + s.cfg.C
	v += s.cfg.AmbientOffset
	if s.rng != nil {
		if s.surface.Structured && s.rng.Bool(s.surface.OutlierProb) {
			// A scattered spot reads as a random in-range voltage.
			v = s.rng.Uniform(FloorVolts, 3.0)
		} else {
			v += s.rng.Norm(0, s.cfg.NoiseSD)
		}
	}
	return clamp(v, 0, 3.3)
}

// Distance inverts the monotone branch of the characteristic: given a
// voltage it returns the distance in [MinUsableCm, CutoffCm]. It returns
// ErrOutOfRange for voltages above the 4 cm value (ambiguous fold-back
// region) or below the cutoff floor.
func (s *Sensor) Distance(v float64) (float64, error) {
	// The range bounds are precomputed in the shared characteristic table.
	if v > s.tab.vNear || v < s.tab.vFar {
		return 0, fmt.Errorf("%w: %.3f V not in [%.3f, %.3f]", ErrOutOfRange, v, s.tab.vFar, s.tab.vNear)
	}
	return s.cfg.A/(v-s.cfg.C) - s.cfg.B, nil
}

// InRange reports whether distance d lies in the monotone usable range the
// paper designs for.
func (s *Sensor) InRange(d float64) bool {
	return d >= MinUsableCm && d <= MaxUsableCm
}

// Config returns the sensor configuration.
func (s *Sensor) Config() Config { return s.cfg }

// weakGain compresses the reflectivity effect: a ±8% reflectivity change
// moves the signal by only about ±1.5%, matching "the color (the
// reflectivity) of the object in front of the sensor does nearly not
// matter".
func weakGain(reflectivity float64) float64 {
	return 1 + 0.2*math.Log(reflectivity)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
