package gp2d120

import (
	"testing"

	"github.com/hcilab/distscroll/internal/sim"
)

func TestDefaultSensor(t *testing.T) {
	s := Default(sim.NewRand(1))
	if s == nil {
		t.Fatal("nil sensor")
	}
	if got := s.Config(); got.A != DefaultA || got.B != DefaultB || got.C != DefaultC {
		t.Fatalf("config %+v", got)
	}
	if got := s.Surface(); got.Reflectivity != 1.0 {
		t.Fatalf("surface %+v", got)
	}
}

func TestSetSurfaceTakesEffect(t *testing.T) {
	s := Default(nil)
	before := s.Sample(15)
	s.SetSurface(Surface{Reflectivity: 1.08})
	after := s.Sample(15)
	if before == after {
		t.Fatal("surface change had no effect")
	}
	if got := s.Surface().Reflectivity; got != 1.08 {
		t.Fatalf("reflectivity %v", got)
	}
}
