package gp2d120

import (
	"math"
	"testing"
)

// TestTableMatchesExact bounds the precomputed-characteristic error against
// the exact curve: the table must track Ideal to well under a microvolt —
// three orders of magnitude below the 10-bit ADC step (~3.2 mV) — so the
// lookup cannot change any quantised reading. It sweeps off-grid points
// (including the branch boundaries at the peak and the cutoff, where a
// careless table would interpolate across a discontinuity in slope).
func TestTableMatchesExact(t *testing.T) {
	s, err := New(DefaultConfig(), DefaultSurface(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const bound = 1e-6 // volts
	worst := 0.0
	// An irrational-ish step ensures the sweep lands between grid nodes.
	for d := -1.0; d <= CutoffCm+5; d += 0.0137 {
		exact := s.Ideal(d)
		got := s.tab.lookup(d)
		if diff := math.Abs(got - exact); diff > worst {
			worst = diff
			if diff > bound {
				t.Fatalf("lookup(%g) = %.9f, exact %.9f, |diff| %.3g > %g", d, got, exact, diff, bound)
			}
		}
	}
	// The branch boundaries themselves.
	for _, d := range []float64{0, PeakDistanceCm, MinUsableCm, MaxUsableCm, CutoffCm, math.Nextafter(CutoffCm, 100)} {
		exact := s.Ideal(d)
		got := s.tab.lookup(d)
		if diff := math.Abs(got - exact); diff > bound {
			t.Fatalf("lookup(%g) = %.9f, exact %.9f, |diff| %.3g > %g", d, got, exact, diff, bound)
		}
	}
	t.Logf("worst |table - exact| over sweep: %.3g V", worst)
}

// TestTableSharedAcrossSensors checks that sensors with identical
// characteristic parameters share one table (the fleet-memory property)
// and that differing parameters do not.
func TestTableSharedAcrossSensors(t *testing.T) {
	a, err := New(DefaultConfig(), DefaultSurface(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(DefaultConfig(), Surface{Reflectivity: 1.05}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.tab != b.tab {
		t.Fatal("sensors with identical characteristics should share one table")
	}
	cfg := DefaultConfig()
	cfg.A = 12.5
	c, err := New(cfg, DefaultSurface(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.tab == a.tab {
		t.Fatal("sensors with different characteristics must not share a table")
	}
}

// TestCachedGainTracksSurface checks that SetSurface refreshes the cached
// reflectivity gain so Sample sees the new surface immediately.
func TestCachedGainTracksSurface(t *testing.T) {
	s, err := New(Config{A: DefaultA, B: DefaultB, C: DefaultC}, DefaultSurface(), nil)
	if err != nil {
		t.Fatal(err)
	}
	base := s.Sample(10)
	s.SetSurface(Surface{Reflectivity: 1.08})
	brighter := s.Sample(10)
	if brighter <= base {
		t.Fatalf("higher reflectivity should raise the reading: %.6f vs %.6f", brighter, base)
	}
	want := (s.Ideal(10)-DefaultC)*weakGain(1.08) + DefaultC
	if diff := math.Abs(brighter - want); diff > 1e-5 {
		t.Fatalf("sample after SetSurface = %.9f, want %.9f (cached gain stale?)", brighter, want)
	}
}
