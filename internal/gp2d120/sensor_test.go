package gp2d120

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/hcilab/distscroll/internal/sim"
)

func noiseless(t *testing.T) *Sensor {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NoiseSD = 0
	s, err := New(cfg, DefaultSurface(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIdealMatchesDatasheetAnchors(t *testing.T) {
	s := noiseless(t)
	// The GP2D120 reads roughly 2.9 V at 4 cm and 0.45 V at 30 cm.
	v4 := s.Ideal(4)
	v30 := s.Ideal(30)
	if v4 < 2.5 || v4 > 3.2 {
		t.Fatalf("V(4cm) = %.3f, want ~2.9", v4)
	}
	if v30 < 0.3 || v30 > 0.6 {
		t.Fatalf("V(30cm) = %.3f, want ~0.45", v30)
	}
}

func TestIdealStrictlyDecreasingOverUsableRange(t *testing.T) {
	s := noiseless(t)
	f := func(raw uint16) bool {
		// Two distances in [4,30], ordered.
		d1 := MinUsableCm + float64(raw%1000)/1000*(MaxUsableCm-MinUsableCm)
		d2 := d1 + 0.25
		if d2 > MaxUsableCm {
			return true
		}
		return s.Ideal(d1) > s.Ideal(d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldbackBelowPeak(t *testing.T) {
	s := noiseless(t)
	// Below the peak the values decline again as the device gets closer —
	// the paper's <4 cm ambiguity.
	if !(s.Ideal(1) < s.Ideal(2) && s.Ideal(2) < s.Ideal(PeakDistanceCm)) {
		t.Fatalf("fold-back not increasing towards peak: V(1)=%.3f V(2)=%.3f V(3)=%.3f",
			s.Ideal(1), s.Ideal(2), s.Ideal(PeakDistanceCm))
	}
	if s.Ideal(0) != 0 {
		t.Fatalf("V(0) = %.3f, want 0", s.Ideal(0))
	}
}

func TestFoldbackFasterThanFarBranch(t *testing.T) {
	s := noiseless(t)
	// "the much faster declining sensor values between 0 and 4 cms" —
	// advanced users exploit this. Compare |dV/dd| on both branches.
	nearSlope := (s.Ideal(PeakDistanceCm) - s.Ideal(1)) / (PeakDistanceCm - 1)
	farSlope := (s.Ideal(10) - s.Ideal(12)) / 2
	if nearSlope <= farSlope {
		t.Fatalf("fold-back slope %.3f should exceed mid-range slope %.3f", nearSlope, farSlope)
	}
}

func TestAmbiguity(t *testing.T) {
	s := noiseless(t)
	// A fold-back voltage equals some far-branch voltage: the sensor alone
	// cannot distinguish them.
	vNearSide := s.Ideal(1.0)
	if vNearSide <= 0 {
		t.Fatal("fold-back voltage should be positive")
	}
	d, err := s.Distance(vNearSide)
	if err != nil {
		t.Fatalf("inverting fold-back voltage: %v", err)
	}
	if d < MinUsableCm {
		t.Fatalf("inversion returned %f, should land on the far branch", d)
	}
}

func TestCutoffFloor(t *testing.T) {
	s := noiseless(t)
	if v := s.Ideal(50); v != FloorVolts {
		t.Fatalf("V(50cm) = %.3f, want floor %.3f", v, FloorVolts)
	}
}

func TestDistanceInversionRoundTrip(t *testing.T) {
	s := noiseless(t)
	f := func(raw uint16) bool {
		d := MinUsableCm + float64(raw%1000)/1000*(MaxUsableCm-MinUsableCm)
		v := s.Ideal(d)
		got, err := s.Distance(v)
		if err != nil {
			return false
		}
		return math.Abs(got-d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceOutOfRange(t *testing.T) {
	s := noiseless(t)
	if _, err := s.Distance(3.3); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("too-high voltage: err = %v", err)
	}
	if _, err := s.Distance(0.01); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("too-low voltage: err = %v", err)
	}
}

func TestSampleNoiseMagnitude(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(cfg, DefaultSurface(), sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	ideal := s.Ideal(15)
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Sample(15)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-ideal) > 0.005 {
		t.Fatalf("sample mean %.4f vs ideal %.4f", mean, ideal)
	}
	if math.Abs(sd-cfg.NoiseSD) > 0.003 {
		t.Fatalf("sample sd %.4f vs configured %.4f", sd, cfg.NoiseSD)
	}
}

func TestReflectivityNearlyDoesNotMatter(t *testing.T) {
	// The paper: "the color (the reflectivity) of the object in front of
	// the sensor does nearly not matter."
	cfg := DefaultConfig()
	cfg.NoiseSD = 0
	dark, err := New(cfg, Surface{Reflectivity: 0.92}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bright, err := New(cfg, Surface{Reflectivity: 1.08}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vd, vb := dark.Sample(15), bright.Sample(15)
	rel := math.Abs(vd-vb) / vb
	if rel > 0.05 {
		t.Fatalf("reflectivity swing changed reading by %.1f%%, want <5%%", 100*rel)
	}
	if vd == vb {
		t.Fatal("reflectivity should have a small but nonzero effect")
	}
}

func TestStructuredSurfaceOutliers(t *testing.T) {
	// "Potentially problematic could be reflective surfaces with clear
	// boundaries" — outliers must appear at roughly the configured rate.
	cfg := DefaultConfig()
	s, err := New(cfg, Surface{Reflectivity: 1, Structured: true, OutlierProb: 0.2}, sim.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	ideal := s.Ideal(15)
	outliers := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if math.Abs(s.Sample(15)-ideal) > 0.2 {
			outliers++
		}
	}
	rate := float64(outliers) / n
	if rate < 0.1 || rate > 0.3 {
		t.Fatalf("outlier rate = %.3f, want ~0.2", rate)
	}
}

func TestSampleClamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AmbientOffset = 10 // absurd ambient light
	s, err := New(cfg, DefaultSurface(), sim.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v := s.Sample(15); v < 0 || v > 3.3 {
			t.Fatalf("sample %v outside output swing", v)
		}
	}
}

func TestInRange(t *testing.T) {
	s := noiseless(t)
	cases := []struct {
		d    float64
		want bool
	}{{3.9, false}, {4, true}, {17, true}, {30, true}, {30.1, false}}
	for _, c := range cases {
		if got := s.InRange(c.d); got != c.want {
			t.Errorf("InRange(%g) = %t, want %t", c.d, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.A = -1
	if _, err := New(bad, DefaultSurface(), nil); err == nil {
		t.Fatal("want error for invalid characteristic")
	}
	if _, err := New(DefaultConfig(), Surface{Reflectivity: 0}, nil); err == nil {
		t.Fatal("want error for zero reflectivity")
	}
}
