package hubnet

import (
	"runtime"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/tracing"
)

// Default pipeline sizing: 256 batches of 64 frames bounds one shard's
// in-flight backlog at 16k messages (~500 KB of copied message structs)
// while amortising ring traffic to one hand-off per ~64 frames. Exported
// so operator tooling can report the effective configuration.
const (
	DefaultRingSlots   = 256
	DefaultBatchFrames = 64
)

// startPipeline builds one ring and starts one worker goroutine per
// shard. Each worker owns its shard outright from here on: session
// consume, the ingest trace hop and the shard frame tally all run
// single-writer on the worker, so the hot path's cross-core traffic
// shrinks to the ring hand-off itself.
func (g *Gateway) startPipeline(cfg Config) {
	slots, batch := cfg.RingSlots, cfg.BatchFrames
	if slots <= 0 {
		slots = DefaultRingSlots
	}
	if batch <= 0 {
		batch = DefaultBatchFrames
	}
	g.pipeline = true
	g.batchFrames = batch
	g.blockOnFull = cfg.OnFull == BlockOnFull
	g.done = make(chan struct{})
	g.rings = make([]*ring, len(g.shards))
	g.workers = make([]shardWorker, len(g.shards))
	for i := range g.rings {
		g.rings[i] = newRing(slots, batch)
	}
	for i := range g.workers {
		sh := i
		ws := &g.workers[sh]
		// The trace-hop hook is built once per worker and closes over the
		// worker state, so the per-message path allocates nothing.
		ws.pre = func(s *core.Session, m rf.Message) {
			if rec := s.Tracer(); rec != nil {
				rec.Record(tracing.HopNetIngest, m.Seq, ws.at, m.AtMillis, tracing.PackNetIngest(sh, true))
			}
		}
		g.wg.Add(1)
		go g.shardWorkerLoop(sh)
	}
}

// Pipelined reports whether the gateway runs the ring hand-off pipeline.
func (g *Gateway) Pipelined() bool { return g.pipeline }

// shardWorkerLoop is one shard's dedicated consumer: dequeue a batch,
// consume it into the shard hub, release the slot. On shutdown it drains
// whatever the producers left in the ring before exiting, so a Close
// after the feeders stop loses nothing.
func (g *Gateway) shardWorkerLoop(sh int) {
	defer g.wg.Done()
	r := g.rings[sh]
	for {
		if slot := r.tryDequeue(); slot != nil {
			g.consumeSlot(sh, slot)
			r.release(slot)
			continue
		}
		select {
		case <-r.notify:
		case <-g.done:
			for {
				slot := r.tryDequeue()
				if slot == nil {
					return
				}
				g.consumeSlot(sh, slot)
				r.release(slot)
			}
		}
	}
}

// consumeSlot drains one batch into the shard hub. The whole batch
// shares one arrival stamp (its frames were decoded from one read
// chunk), the routing table is loaded once per batch, and the shard
// frame tally advances once per batch from the worker's local counter.
func (g *Gateway) consumeSlot(sh int, slot *ringSlot) {
	ws := &g.workers[sh]
	ws.at = slot.at
	g.shards[sh].ConsumeBatch(slot.msgs[:slot.n], slot.at, ws.pre)
	g.shardFrames[sh].Add(uint64(slot.n))
}

// Drain blocks until every batch handed to the rings has been consumed.
// Call it after the feeders have gone quiet (benchmark end, server
// shutdown) to make the shard stats settle; with feeders still running
// it only proves the rings were momentarily empty. No-op on a direct
// (non-pipelined) gateway, where consume is synchronous anyway.
func (g *Gateway) Drain() {
	for _, r := range g.rings {
		for spin := 0; r.depth() > 0; spin++ {
			// Yield first: on a loaded box the workers are runnable and a
			// Gosched hands them the core immediately; fall back to real
			// sleeps only if the backlog persists (timer granularity would
			// otherwise dominate short drains).
			if spin < 4096 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
}

// Close stops the pipeline: the workers drain their rings and exit.
// Producers must have stopped feeding first (the server closes its
// connections before calling this). Safe to call twice; a no-op on a
// direct gateway.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		if !g.pipeline {
			return
		}
		close(g.done)
		g.wg.Wait()
	})
}
