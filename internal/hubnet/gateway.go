// Package hubnet promotes the in-process host Hub into a networked
// service: a frame-ingest gateway that accepts the existing RF wire
// format (sync + length + payload + CRC16, payload = v1 telemetry
// message) over byte streams and demultiplexes decoded messages across N
// hub shards partitioned by device id. The paper's host is a single PC
// behind one receiver (Section 3.2); hubnet is that host grown into a
// deployable ingest tier — same frames, same sessions, same telemetry —
// reachable over loopback TCP or wired in-process for deterministic
// tests.
//
// Three entry points share one Gateway core:
//
//   - Serve listens on TCP and feeds each connection's byte stream
//     through a per-connection Decoder (server.go).
//   - Dial returns the client side: a Conn carrying framed payloads from
//     any number of simulated devices over one socket (client.go).
//   - NewLoopback wires device sinks straight into the gateway through
//     the full encode→decode→shard path with no socket and no extra
//     goroutines, so a seeded fleet run through it is byte-identical to
//     one against a plain in-process hub (loopback.go).
package hubnet

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

// Config parameterises a gateway.
type Config struct {
	// Shards is the number of hub shards; messages route by
	// deviceID % Shards. <= 0 means 1 (a single shard is exactly the
	// in-process hub behind a network edge).
	Shards int
	// KeepLogs makes every shard session retain its event log, like
	// core.NewHub(true). Fleet runs need it for handler replay.
	KeepLogs bool
	// Registry, when non-nil, instruments the gateway: shard sessions
	// record per-device counters and latency histograms, and the gateway
	// registers ONE collector that folds every shard into the canonical
	// hub_* series, adds per-shard breakdowns, and contributes the net_*
	// ingest counters. Shards never register their own collectors — the
	// hub_devices gauge must be the fleet total, not the last shard's.
	Registry *telemetry.Registry
	// Now supplies ingest timestamps for frames arriving over TCP, where
	// no virtual clock rides along with the bytes (default: wall time
	// since the server started). Loopback ingest ignores it — the
	// device's own virtual arrival time is passed through instead, which
	// is what keeps loopback runs deterministic.
	Now func() time.Duration
	// Pipeline enables the decode-route-consume ingest pipeline:
	// connection goroutines still do batched reads and zero-alloc frame
	// decode, but decoded messages are handed off in batches to per-shard
	// bounded MPSC rings, each drained by one dedicated worker goroutine
	// that owns its hub shard outright — session consume and the ingest
	// trace hop become single-writer, and the edge counters advance once
	// per batch instead of once per frame. Off by default: the direct
	// path consumes synchronously on the connection goroutine, exactly as
	// before. Loopback ingest always runs direct regardless of this flag;
	// its determinism contract requires synchronous consume.
	Pipeline bool
	// RingSlots sets each shard ring's capacity in batches (rounded up to
	// a power of two; <= 0 means 256). Capacity × BatchFrames bounds the
	// messages a shard can have in flight.
	RingSlots int
	// BatchFrames caps the messages per hand-off batch (<= 0 means 64).
	// Larger batches amortise ring and counter traffic further at the
	// cost of per-frame latency under trickle loads; partial batches
	// flush at the end of every read chunk, so latency is bounded by the
	// read cadence either way.
	BatchFrames int
	// OnFull picks the backpressure policy when a shard ring fills:
	// BlockOnFull (default) parks the connection goroutine until the
	// worker catches up — no loss, TCP backpressure propagates to
	// senders; DropOnFull sheds the batch and advances the ring drop
	// counter — bounded ingest latency for best-effort telemetry.
	OnFull FullPolicy
}

// FullPolicy selects what an ingest pipeline does when a shard ring is
// full.
type FullPolicy int

const (
	// BlockOnFull blocks the producing connection goroutine until ring
	// space frees up (lossless backpressure).
	BlockOnFull FullPolicy = iota
	// DropOnFull sheds the whole batch and counts it in RingDropped
	// (bounded latency, best-effort delivery).
	DropOnFull
)

// Gateway is the shared ingest core: N hub shards plus the wire-edge
// decode accounting. It is safe for concurrent use by any number of
// connections and device goroutines; frames from any single device must
// arrive in order (the same contract core.Hub has always had).
type Gateway struct {
	shards   []*core.Hub
	keepLogs bool
	reg      *telemetry.Registry

	// Wire-edge accounting. badFrames mirrors the in-process hub's
	// counter (payloads that failed Message decode); the rest describe
	// the network edge itself.
	badFrames     atomic.Uint64
	connsTotal    atomic.Uint64
	connsOpen     atomic.Int64
	bytesRead     atomic.Uint64
	frames        atomic.Uint64
	shortReads    atomic.Uint64
	resyncs       atomic.Uint64
	acceptRetries atomic.Uint64
	shardFrames   []atomic.Uint64

	// Pipeline state (nil/zero when Config.Pipeline is off): one ring and
	// one worker per shard, plus shutdown plumbing.
	pipeline    bool
	batchFrames int
	blockOnFull bool
	rings       []*ring
	workers     []shardWorker
	done        chan struct{}
	closeOnce   sync.Once
	wg          sync.WaitGroup
}

// shardWorker is the single-writer drain state for one shard: the worker
// goroutine is the only toucher, so the fields need no synchronisation.
type shardWorker struct {
	at  time.Duration                   // current batch's arrival stamp
	pre func(*core.Session, rf.Message) // trace-hop hook, built once
}

// NetStats is the gateway's network-edge accounting.
type NetStats struct {
	// ConnsTotal counts connections ever accepted; ConnsOpen the ones
	// currently open.
	ConnsTotal uint64
	ConnsOpen  int64
	// BytesRead is the raw ingest byte count (framing included).
	BytesRead uint64
	// Frames counts CRC-valid frames decoded off the wire; BadFrames the
	// payloads that then failed message decode, plus CRC failures.
	Frames    uint64
	BadFrames uint64
	// ShortReads counts reads that ended mid-frame (the decoder was left
	// holding a partial frame); Resyncs the bytes skipped hunting for
	// sync after corruption.
	ShortReads uint64
	Resyncs    uint64
	// AcceptRetries counts transient Accept errors the server retried
	// (e.g. EMFILE under descriptor pressure) instead of shutting down.
	AcceptRetries uint64
	// Ring counters (zero unless the ingest pipeline is on): batches
	// handed off to shard rings, enqueue calls that blocked on a full
	// ring, batches shed by the drop policy, and the occupied slots
	// summed across rings at the instant of the stats read.
	RingBatches uint64
	RingStalls  uint64
	RingDropped uint64
	RingDepth   uint64
}

// NewGateway builds the shard array. With cfg.Registry set it registers
// the aggregating collector. With cfg.Pipeline set it also builds the
// per-shard rings and starts one worker goroutine per shard; a pipelined
// gateway must be Closed to stop them.
func NewGateway(cfg Config) *Gateway {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	g := &Gateway{keepLogs: cfg.KeepLogs, reg: cfg.Registry}
	g.shards = make([]*core.Hub, cfg.Shards)
	for i := range g.shards {
		g.shards[i] = core.NewHubDetached(cfg.KeepLogs, cfg.Registry)
	}
	g.shardFrames = make([]atomic.Uint64, cfg.Shards)
	if cfg.Registry != nil {
		cfg.Registry.RegisterCollector(g.collect)
	}
	if cfg.Pipeline {
		g.startPipeline(cfg)
	}
	return g
}

// Shards returns the shard count.
func (g *Gateway) Shards() int { return len(g.shards) }

// Shard returns the i-th hub shard (tests and scrapers only; ingest
// paths go through Consume so routing stays in one place).
func (g *Gateway) Shard(i int) *core.Hub { return g.shards[i] }

// ShardFor returns the shard index a device id routes to.
func (g *Gateway) ShardFor(id uint32) int { return int(id % uint32(len(g.shards))) }

// Consume routes one already-decoded message into its shard — the
// decode-once core every ingest path (TCP, loopback) converges on. When
// the destination session carries a trace recorder the ingest hop is
// recorded before the session consumes the message, so a traced frame's
// causal chain shows the network edge between the link delivery and the
// session decision.
func (g *Gateway) Consume(m rf.Message, at time.Duration) {
	sh := g.ShardFor(m.Device)
	g.shardFrames[sh].Add(1)
	s := g.shards[sh].Session(m.Device)
	if rec := s.Tracer(); rec != nil {
		rec.Record(tracing.HopNetIngest, m.Seq, at, m.AtMillis, tracing.PackNetIngest(sh, false))
	}
	s.Consume(m, at)
}

// Session returns the session a device id routes to, creating it if the
// device is new (pre-registration, handler wiring).
func (g *Gateway) Session(id uint32) *core.Session {
	return g.shards[g.ShardFor(id)].Session(id)
}

// DeviceStats returns one device's receive counters from its shard.
func (g *Gateway) DeviceStats(id uint32) (core.HostStats, bool) {
	return g.shards[g.ShardFor(id)].DeviceStats(id)
}

// Stats aggregates the per-shard hub stats plus the gateway's own
// bad-frame count (payloads that failed decode at the wire edge and so
// never reached a shard).
func (g *Gateway) Stats() core.HubStats {
	var agg core.HubStats
	for _, st := range g.ShardStats() {
		agg.Devices += st.Devices
		agg.Decoded += st.Decoded
		agg.Events += st.Events
		agg.MissedSeq += st.MissedSeq
		agg.Duplicates += st.Duplicates
		agg.Reordered += st.Reordered
		agg.Stale += st.Stale
		agg.AheadDrops += st.AheadDrops
		agg.Resyncs += st.Resyncs
		agg.BadFrames += st.BadFrames
	}
	agg.BadFrames += g.badFrames.Load()
	return agg
}

// ShardStats returns each shard's hub stats in shard order.
func (g *Gateway) ShardStats() []core.HubStats {
	out := make([]core.HubStats, len(g.shards))
	for i, h := range g.shards {
		out[i] = h.Stats()
	}
	return out
}

// NetStats returns the network-edge accounting.
func (g *Gateway) NetStats() NetStats {
	ns := NetStats{
		ConnsTotal:    g.connsTotal.Load(),
		ConnsOpen:     g.connsOpen.Load(),
		BytesRead:     g.bytesRead.Load(),
		Frames:        g.frames.Load(),
		BadFrames:     g.badFrames.Load(),
		ShortReads:    g.shortReads.Load(),
		Resyncs:       g.resyncs.Load(),
		AcceptRetries: g.acceptRetries.Load(),
	}
	for _, r := range g.rings {
		ns.RingBatches += r.batches.Load()
		ns.RingStalls += r.stalls.Load()
		ns.RingDropped += r.drops.Load()
		ns.RingDepth += r.depth()
	}
	return ns
}

// collect is the gateway's single registered collector: every shard
// folds additively into the canonical hub_* series (sessions, latency
// histograms, bad frames), per-shard breakdown series expose the
// partition balance, and the net_* counters describe the wire edge.
func (g *Gateway) collect(snap *telemetry.Snapshot) {
	devices := 0
	for i, h := range g.shards {
		devices += h.Collect(snap)
		st := h.Stats()
		snap.SetGauge(telemetry.ShardName(telemetry.MetricHubDevices, i), float64(st.Devices))
		snap.AddCounter(telemetry.ShardName(telemetry.MetricHubDecoded, i), st.Decoded)
		snap.AddCounter(telemetry.ShardName(telemetry.MetricHubEvents, i), st.Events)
		snap.AddCounter(telemetry.ShardName(telemetry.MetricNetFrames, i), g.shardFrames[i].Load())
	}
	snap.SetGauge(telemetry.MetricHubDevices, float64(devices))
	snap.AddCounter(telemetry.MetricHubBadFrames, g.badFrames.Load())
	snap.SetGauge(telemetry.MetricNetShards, float64(len(g.shards)))
	snap.AddCounter(telemetry.MetricNetConnsTotal, g.connsTotal.Load())
	snap.SetGauge(telemetry.MetricNetConnsOpen, float64(g.connsOpen.Load()))
	snap.AddCounter(telemetry.MetricNetBytesRead, g.bytesRead.Load())
	snap.AddCounter(telemetry.MetricNetFrames, g.frames.Load())
	snap.AddCounter(telemetry.MetricNetBadFrames, g.badFrames.Load())
	snap.AddCounter(telemetry.MetricNetShortReads, g.shortReads.Load())
	snap.AddCounter(telemetry.MetricNetResyncs, g.resyncs.Load())
	snap.AddCounter(telemetry.MetricNetAcceptRetries, g.acceptRetries.Load())
	if g.pipeline {
		snap.SetGauge(telemetry.MetricNetPipeline, 1)
		var depth, batches, stalls, drops uint64
		for i, r := range g.rings {
			depth += r.depth()
			batches += r.batches.Load()
			stalls += r.stalls.Load()
			drops += r.drops.Load()
			snap.SetGauge(telemetry.ShardName(telemetry.MetricNetRingDepth, i), float64(r.depth()))
			snap.AddCounter(telemetry.ShardName(telemetry.MetricNetRingBatches, i), r.batches.Load())
		}
		snap.SetGauge(telemetry.MetricNetRingDepth, float64(depth))
		snap.AddCounter(telemetry.MetricNetRingBatches, batches)
		snap.AddCounter(telemetry.MetricNetRingStalls, stalls)
		snap.AddCounter(telemetry.MetricNetRingDropped, drops)
	} else {
		snap.SetGauge(telemetry.MetricNetPipeline, 0)
	}
}

// Ingest is one byte stream's decode state: a frame decoder plus resync
// bookkeeping, feeding every decoded frame into the gateway's shards.
// Each TCP connection owns one; benchmarks drive one directly. Not safe
// for concurrent use — one stream, one feeder.
type Ingest struct {
	gw  *Gateway
	dec *rf.Decoder
	now func() time.Duration

	at        time.Duration
	onPayload func([]byte)

	lastResyncs uint64
	lastCRC     uint64

	// Pipeline staging (nil on a direct gateway): one pending batch per
	// shard, enqueued when full and flushed at the end of every Feed, so
	// a partial batch never outlives its read chunk. goodN/badN tally
	// frame outcomes locally during a Feed and fold into the gateway
	// counters once per chunk instead of once per frame.
	pend  [][]rf.Message
	goodN uint64
	badN  uint64
}

// NewIngest returns a fresh per-stream ingest. now supplies arrival
// timestamps per Feed call; nil stamps every frame at 0 (benchmarks).
func (g *Gateway) NewIngest(now func() time.Duration) *Ingest {
	in := &Ingest{gw: g, dec: rf.NewDecoder(), now: now}
	if g.pipeline {
		in.pend = make([][]rf.Message, len(g.shards))
		for i := range in.pend {
			in.pend[i] = make([]rf.Message, 0, g.batchFrames)
		}
		in.onPayload = func(p []byte) {
			in.goodN++
			var m rf.Message
			if !m.Decode(p) {
				in.badN++
				return
			}
			sh := g.ShardFor(m.Device)
			in.pend[sh] = append(in.pend[sh], m)
			if len(in.pend[sh]) == cap(in.pend[sh]) {
				g.rings[sh].enqueue(in.pend[sh], in.at, g.blockOnFull)
				in.pend[sh] = in.pend[sh][:0]
			}
		}
		return in
	}
	in.onPayload = func(p []byte) {
		g.frames.Add(1)
		var m rf.Message
		if !m.Decode(p) {
			g.badFrames.Add(1)
			return
		}
		g.Consume(m, in.at)
	}
	return in
}

// Feed consumes one chunk of raw stream bytes: frames are CRC-checked
// and decoded in place (zero-copy — payloads alias the decoder scratch
// and are fully consumed before return), and the edge counters advance.
// A chunk that ends mid-frame counts one short read; the partial frame
// completes on the next Feed.
func (in *Ingest) Feed(data []byte) {
	in.gw.bytesRead.Add(uint64(len(data)))
	if in.now != nil {
		in.at = in.now()
	}
	in.dec.FeedFunc(data, in.onPayload)
	if in.pend != nil {
		for sh := range in.pend {
			if len(in.pend[sh]) > 0 {
				in.gw.rings[sh].enqueue(in.pend[sh], in.at, in.gw.blockOnFull)
				in.pend[sh] = in.pend[sh][:0]
			}
		}
		if in.goodN > 0 {
			in.gw.frames.Add(in.goodN)
			in.goodN = 0
		}
		if in.badN > 0 {
			in.gw.badFrames.Add(in.badN)
			in.badN = 0
		}
	}
	st := in.dec.Stats()
	if d := st.Resyncs - in.lastResyncs; d > 0 {
		in.gw.resyncs.Add(d)
		in.lastResyncs = st.Resyncs
	}
	if d := st.CRCErrors - in.lastCRC; d > 0 {
		in.gw.badFrames.Add(d)
		in.lastCRC = st.CRCErrors
	}
	if in.dec.Buffered() > 0 {
		in.gw.shortReads.Add(1)
	}
}
