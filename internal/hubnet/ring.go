package hubnet

import (
	"runtime"
	"sync/atomic"
	"time"

	"github.com/hcilab/distscroll/internal/rf"
)

// ring is a bounded multi-producer single-consumer queue of message
// batches — the hand-off between connection decoders and a shard worker.
// It is a Vyukov-style sequence ring: every slot carries an atomic
// sequence number that encodes whose turn the slot is (producer when
// seq == position, consumer when seq == position+1), so producers
// coordinate only on the head counter CAS and the single consumer runs
// with a plain, uncontended tail. Slots own preallocated message buffers
// sized to the gateway's batch limit; an enqueue copies messages into the
// slot, so producers can reuse their staging buffers immediately and the
// steady state allocates nothing.
type ring struct {
	mask  uint64
	slots []ringSlot

	head atomic.Uint64 // next slot producers will claim
	tail uint64        // next slot the consumer will read; consumer-only

	// notify wakes the consumer after a publish. Capacity 1: a token in
	// flight already guarantees the consumer will rescan, so producers
	// never block here.
	notify chan struct{}

	batches  atomic.Uint64 // batches ever enqueued
	consumed atomic.Uint64 // batches fully consumed and released
	stalls   atomic.Uint64 // enqueue calls that blocked on a full ring
	drops    atomic.Uint64 // batches shed by the drop policy
}

// ringSlot is one batch in flight: the arrival timestamp shared by the
// whole batch (frames decoded from one read chunk arrive together) plus
// the copied messages.
type ringSlot struct {
	seq  atomic.Uint64
	at   time.Duration
	n    int
	msgs []rf.Message
}

// newRing builds a ring of `slots` entries (rounded up to a power of
// two, minimum 2), each able to carry up to `batch` messages. Capacity 1
// is unrepresentable in a sequence ring: a slot published at position p
// carries seq p+1, which is exactly the "free" seq for position p+1 —
// with a single slot those are the same slot, so a producer would
// overwrite the unconsumed batch and strand the consumer.
func newRing(slots, batch int) *ring {
	n := 2
	for n < slots {
		n <<= 1
	}
	r := &ring{
		mask:   uint64(n - 1),
		slots:  make([]ringSlot, n),
		notify: make(chan struct{}, 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
		r.slots[i].msgs = make([]rf.Message, batch)
	}
	return r
}

// depth returns the number of batches enqueued but not yet consumed.
func (r *ring) depth() uint64 { return r.batches.Load() - r.consumed.Load() }

// enqueue copies a batch into the ring and wakes the consumer. With
// block set a full ring is backpressure: the producer spins (yielding)
// until the consumer frees a slot, counting one stall per blocked call.
// Without it a full ring sheds the batch: enqueue returns false and the
// drop counter advances — the caller already decoded the frames, so the
// shed is visible as ring drops, not CRC errors.
func (r *ring) enqueue(msgs []rf.Message, at time.Duration, block bool) bool {
	stalled := false
	for {
		pos := r.head.Load()
		slot := &r.slots[pos&r.mask]
		switch seq := slot.seq.Load(); {
		case seq == pos:
			if !r.head.CompareAndSwap(pos, pos+1) {
				continue // lost the claim race; retry at the new head
			}
			slot.at = at
			slot.n = copy(slot.msgs, msgs)
			slot.seq.Store(pos + 1)
			r.batches.Add(1)
			select {
			case r.notify <- struct{}{}:
			default:
			}
			return true
		case seq < pos: // the slot one lap back is still unconsumed: full
			if !block {
				r.drops.Add(1)
				return false
			}
			if !stalled {
				stalled = true
				r.stalls.Add(1)
			}
			runtime.Gosched()
		default:
			// Another producer claimed this slot and has not published
			// yet; the head has moved, retry against it.
		}
	}
}

// tryDequeue returns the next published slot, or nil when the ring is
// empty. Consumer-only. The caller must release the slot when done.
func (r *ring) tryDequeue() *ringSlot {
	slot := &r.slots[r.tail&r.mask]
	if slot.seq.Load() != r.tail+1 {
		return nil
	}
	return slot
}

// release returns a dequeued slot to the producers: the sequence jumps a
// full lap ahead so the slot becomes claimable at head == tail+capacity.
// Consumed advances only here, after the batch was fully processed, so
// depth()==0 means every enqueued message has been consumed.
func (r *ring) release(slot *ringSlot) {
	slot.seq.Store(r.tail + r.mask + 1)
	r.tail++
	r.consumed.Add(1)
}
