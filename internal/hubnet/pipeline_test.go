package hubnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/rf"
)

// TestConcurrentIngestOneShardAccounting is the hot-shard audit: 16
// connections all carrying devices that route to the same shard, driven
// concurrently over real TCP, with and without the pipeline. Every
// counter layer — NetStats at the wire edge, ShardStats at the hub
// partition, per-device HostStats — must add up exactly; the pipeline
// must neither lose nor double-count a frame when 16 producers contend
// for one ring and one worker. Run under -race this also proves the
// hand-off's memory safety.
func TestConcurrentIngestOneShardAccounting(t *testing.T) {
	const (
		shards   = 4
		conns    = 16
		frames   = 500
		hotShard = 1
	)
	for _, pipelined := range []bool{false, true} {
		t.Run(fmt.Sprintf("pipeline=%v", pipelined), func(t *testing.T) {
			srv, err := Serve("127.0.0.1:0", Config{
				Shards:   shards,
				Pipeline: pipelined,
				// A small ring with blocking backpressure so the 16
				// producers actually contend and stall against the single
				// worker rather than gliding through an oversized buffer.
				RingSlots:   8,
				BatchFrames: 16,
				OnFull:      BlockOnFull,
			})
			if err != nil {
				t.Fatal(err)
			}
			gw := srv.Gateway()
			if gw.Pipelined() != pipelined {
				t.Fatalf("Pipelined() = %v", gw.Pipelined())
			}

			// Device ids ≡ hotShard (mod shards) all land on one shard.
			devs := make([]uint32, conns)
			for i := range devs {
				devs[i] = uint32(hotShard + shards*(i+1))
			}
			var wg sync.WaitGroup
			errs := make(chan error, conns)
			for _, dev := range devs {
				wg.Add(1)
				go func(dev uint32) {
					defer wg.Done()
					c, err := Dial(srv.Addr().String())
					if err != nil {
						errs <- err
						return
					}
					defer c.Close()
					wire := stream(t, []uint32{dev}, frames)
					// Chunked sends so server reads end mid-frame and the
					// decoder's carry-over path runs under contention too.
					for off := 0; off < len(wire); off += 1000 {
						end := off + 1000
						if end > len(wire) {
							end = len(wire)
						}
						if err := c.SendEncoded(wire[off:end], 0); err != nil {
							errs <- err
							return
						}
					}
					errs <- c.Flush()
				}(dev)
			}
			wg.Wait()
			for i := 0; i < conns; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}

			// The senders have flushed but the server drains async: wait
			// for the full frame count, then Close (which drains any
			// pipelined remainder) before auditing.
			deadline := time.Now().Add(10 * time.Second)
			for gw.NetStats().Frames < conns*frames && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}

			ns := gw.NetStats()
			if ns.Frames != conns*frames || ns.BadFrames != 0 {
				t.Fatalf("net: %d frames (%d bad), want %d (0)", ns.Frames, ns.BadFrames, conns*frames)
			}
			if ns.ConnsTotal != conns {
				t.Fatalf("net: %d conns, want %d", ns.ConnsTotal, conns)
			}
			if ns.RingDropped != 0 || ns.RingDepth != 0 {
				t.Fatalf("ring: %d dropped, depth %d after close", ns.RingDropped, ns.RingDepth)
			}
			if pipelined && ns.RingBatches == 0 {
				t.Fatal("pipelined run recorded no ring batches")
			}
			if !pipelined && ns.RingBatches != 0 {
				t.Fatalf("direct run recorded %d ring batches", ns.RingBatches)
			}

			for i, st := range gw.ShardStats() {
				switch i {
				case hotShard:
					if st.Devices != conns || st.Decoded != conns*frames || st.MissedSeq != 0 {
						t.Fatalf("hot shard: %+v", st)
					}
				default:
					if st.Devices != 0 || st.Decoded != 0 {
						t.Fatalf("cold shard %d: %+v", i, st)
					}
				}
			}
			for _, dev := range devs {
				st, ok := gw.DeviceStats(dev)
				if !ok || st.Decoded != frames || st.MissedSeq != 0 || st.Duplicates != 0 {
					t.Fatalf("device %d: %+v ok=%v", dev, st, ok)
				}
			}
		})
	}
}

// TestPipelineDropPolicySheds pins the drop policy end to end: a gateway
// whose single-slot ring cannot absorb a burst must shed whole batches,
// count them in RingDropped, and stay consistent — frames either reach
// their session or are accounted as dropped, never half-consumed.
func TestPipelineDropPolicySheds(t *testing.T) {
	gw := NewGateway(Config{
		Shards:      1,
		Pipeline:    true,
		RingSlots:   1,
		BatchFrames: 8,
		OnFull:      DropOnFull,
	})
	defer gw.Close()

	in := gw.NewIngest(nil)
	wire := stream(t, []uint32{3}, 4096)
	in.Feed(wire)
	gw.Drain()

	ns := gw.NetStats()
	consumed := gw.Stats().Decoded
	if ns.Frames != 4096 {
		t.Fatalf("net frames = %d, want 4096", ns.Frames)
	}
	// With one slot against 512 batches some must shed; every batch is
	// exactly BatchFrames (4096 divides evenly), so consumed plus dropped
	// must reconstruct the wire total.
	if ns.RingDropped == 0 {
		t.Fatal("no batches dropped through a 1-slot ring")
	}
	if got := consumed + ns.RingDropped*8; got != 4096 {
		t.Fatalf("consumed %d + dropped %d batches × 8 = %d, want 4096", consumed, ns.RingDropped, got)
	}
	if ns.RingStalls != 0 {
		t.Fatalf("drop policy stalled %d times", ns.RingStalls)
	}
}

// TestGatewayCloseDrainsRings pins the shutdown contract: batches handed
// off before Close are consumed, not abandoned — a server summary printed
// after Close sees every frame the wire delivered.
func TestGatewayCloseDrainsRings(t *testing.T) {
	gw := NewGateway(Config{Shards: 2, Pipeline: true})
	in := gw.NewIngest(nil)
	in.Feed(stream(t, []uint32{1}, 300))
	in.Feed(stream(t, []uint32{2}, 300))
	gw.Close() // no Drain: Close itself must finish the work
	if st := gw.Stats(); st.Decoded != 600 || st.Devices != 2 {
		t.Fatalf("after close: %+v", st)
	}
	gw.Close() // idempotent
}

// TestPipelineIngestZeroAlloc enforces the tentpole's steady-state
// allocation contract across the WHOLE pipelined path: decode, batch
// staging, ring hand-off, worker consume. AllocsPerRun counts mallocs
// process-wide, so the shard workers' consumption is inside the
// measurement — a single per-batch or per-frame allocation anywhere in
// the pipeline fails the pin.
func TestPipelineIngestZeroAlloc(t *testing.T) {
	gw := NewGateway(Config{Shards: 4, Pipeline: true})
	defer gw.Close()
	in := gw.NewIngest(nil)
	wire := make([]byte, 0, 64*30)
	var pbuf []byte
	for dev := uint32(1); dev <= 64; dev++ {
		m := rf.Message{Kind: rf.MsgScroll, Device: dev, Seq: 0, AtMillis: 16}
		pbuf = m.AppendBinary(pbuf[:0])
		var err error
		wire, err = rf.AppendEncode(wire, pbuf)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: sessions register, rings and timers touch their first
	// allocations, decoder scratch grows to steady state.
	for i := 0; i < 8; i++ {
		in.Feed(wire)
	}
	gw.Drain()
	if n := testing.AllocsPerRun(500, func() {
		in.Feed(wire)
		gw.Drain()
	}); n != 0 {
		t.Fatalf("pipelined ingest: %v allocs/op, want 0", n)
	}
	if st := gw.Stats(); st.BadFrames != 0 || st.Decoded == 0 {
		t.Fatalf("stats after run: %+v", st)
	}
}
