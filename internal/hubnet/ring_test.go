package hubnet

import (
	"sync"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/rf"
)

func msgs(dev uint32, seqs ...uint16) []rf.Message {
	out := make([]rf.Message, len(seqs))
	for i, s := range seqs {
		out[i] = rf.Message{Kind: rf.MsgScroll, Device: dev, Seq: s}
	}
	return out
}

// drainOne pops one batch or fails.
func drainOne(t *testing.T, r *ring) []rf.Message {
	t.Helper()
	slot := r.tryDequeue()
	if slot == nil {
		t.Fatal("ring empty")
	}
	out := append([]rf.Message(nil), slot.msgs[:slot.n]...)
	r.release(slot)
	return out
}

// TestRingFIFO pins single-producer order: batches come out in the order
// they went in, message-complete, across several laps of the ring so the
// wraparound sequencing is exercised.
func TestRingFIFO(t *testing.T) {
	r := newRing(4, 8) // tiny ring: 3 laps in 12 batches
	for seq := uint16(0); seq < 12; seq++ {
		if !r.enqueue(msgs(7, seq, seq+100), 0, true) {
			t.Fatalf("enqueue %d failed", seq)
		}
		got := drainOne(t, r)
		if len(got) != 2 || got[0].Seq != seq || got[1].Seq != seq+100 {
			t.Fatalf("batch %d: %+v", seq, got)
		}
	}
	if d := r.depth(); d != 0 {
		t.Fatalf("depth %d after drain", d)
	}
}

// TestRingDropPolicy pins the full-ring behaviour without backpressure:
// enqueue returns false, the batch is shed, and the drop counter
// advances — while the batches already in the ring survive intact.
func TestRingDropPolicy(t *testing.T) {
	r := newRing(2, 4)
	if !r.enqueue(msgs(1, 0), 0, false) || !r.enqueue(msgs(1, 1), 0, false) {
		t.Fatal("fill failed")
	}
	if r.enqueue(msgs(1, 2), 0, false) {
		t.Fatal("enqueue into a full ring succeeded")
	}
	if r.drops.Load() != 1 {
		t.Fatalf("drops = %d, want 1", r.drops.Load())
	}
	if got := drainOne(t, r); got[0].Seq != 0 {
		t.Fatalf("first batch after drop: %+v", got)
	}
	if got := drainOne(t, r); got[0].Seq != 1 {
		t.Fatalf("second batch after drop: %+v", got)
	}
	if !r.enqueue(msgs(1, 3), 0, false) {
		t.Fatal("enqueue after drain failed")
	}
}

// TestRingBlockPolicy pins backpressure: a producer against a full ring
// parks (counting one stall) and completes once the consumer frees a
// slot; nothing is lost.
func TestRingBlockPolicy(t *testing.T) {
	r := newRing(2, 4)
	r.enqueue(msgs(1, 0), 0, true)
	r.enqueue(msgs(1, 1), 0, true)

	unblocked := make(chan struct{})
	go func() {
		r.enqueue(msgs(1, 2), 0, true) // blocks until a slot frees
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("enqueue did not block on a full ring")
	case <-time.After(20 * time.Millisecond):
	}
	if got := drainOne(t, r); got[0].Seq != 0 {
		t.Fatalf("drained %+v", got)
	}
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("producer never unblocked")
	}
	if r.stalls.Load() == 0 {
		t.Fatal("blocked enqueue did not count a stall")
	}
	if r.drops.Load() != 0 {
		t.Fatalf("block policy dropped %d batches", r.drops.Load())
	}
	if got := drainOne(t, r); got[0].Seq != 1 {
		t.Fatalf("drained %+v", got)
	}
	if got := drainOne(t, r); got[0].Seq != 2 {
		t.Fatalf("drained %+v", got)
	}
}

// TestRingConcurrentProducers hammers one ring from many producers under
// the race detector: every message enqueued is consumed exactly once,
// and each producer's own messages arrive in its send order (the MPSC
// contract the per-device FIFO rides on).
func TestRingConcurrentProducers(t *testing.T) {
	const producers = 8
	const batches = 200
	r := newRing(8, 4) // small ring so producers constantly block

	got := make(map[uint32][]uint16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		total := 0
		for total < producers*batches {
			slot := r.tryDequeue()
			if slot == nil {
				select {
				case <-r.notify:
				case <-time.After(2 * time.Second):
					panic("consumer starved")
				}
				continue
			}
			for _, m := range slot.msgs[:slot.n] {
				got[m.Device] = append(got[m.Device], m.Seq)
			}
			r.release(slot)
			total++
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(dev uint32) {
			defer wg.Done()
			for b := uint16(0); b < batches; b++ {
				r.enqueue(msgs(dev, 2*b, 2*b+1), 0, true)
			}
		}(uint32(p))
	}
	wg.Wait()
	<-done

	if r.batches.Load() != producers*batches || r.consumed.Load() != producers*batches {
		t.Fatalf("batches %d consumed %d", r.batches.Load(), r.consumed.Load())
	}
	for dev := uint32(0); dev < producers; dev++ {
		seqs := got[dev]
		if len(seqs) != 2*batches {
			t.Fatalf("producer %d: %d messages", dev, len(seqs))
		}
		for i, s := range seqs {
			if s != uint16(i) {
				t.Fatalf("producer %d message %d out of order: seq %d", dev, i, s)
			}
		}
	}
}
