package hubnet

import (
	"sync"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/rf"
)

// Loopback is the deterministic in-process ingest mode: device sinks
// call Handle directly, and the payload still traverses the full wire
// path — framed with AppendEncode, fed through an incremental Decoder,
// message-decoded, then routed to its shard — synchronously on the
// calling device's goroutine at the device's own virtual arrival time.
// No socket, no extra goroutines, no wall clock: a seeded fleet run
// through a Loopback is byte-identical to one against a plain in-process
// hub, which is what lets tests pin the network path's transparency.
//
// Loopback implements the fleet hub-backend contract (Handle, Session,
// DeviceStats).
type Loopback struct {
	gw   *Gateway
	devs sync.Map // uint32 → *loopIngest
}

// loopIngest is one device's private encode/decode scratch. Frames from
// a single device arrive in order on that device's goroutine, so the
// state needs no lock.
type loopIngest struct {
	enc       []byte
	dec       *rf.Decoder
	at        time.Duration
	onPayload func([]byte)
}

// NewLoopback builds a gateway and wires the loopback ingest onto it.
// The ingest pipeline is forced off regardless of cfg.Pipeline: loopback's
// whole point is that a frame is consumed synchronously at the device's
// own virtual arrival time, and a ring hand-off to a worker goroutine
// would trade that byte-identity for nothing (there is no socket and no
// cross-connection contention to hide).
func NewLoopback(cfg Config) *Loopback {
	cfg.Pipeline = false
	return &Loopback{gw: NewGateway(cfg)}
}

// Gateway returns the underlying gateway (stats, shard access).
func (l *Loopback) Gateway() *Gateway { return l.gw }

// ingest returns the calling device's stream state, creating it on the
// device's first frame.
func (l *Loopback) ingest(id uint32) *loopIngest {
	if v, ok := l.devs.Load(id); ok {
		return v.(*loopIngest)
	}
	in := &loopIngest{dec: rf.NewDecoder()}
	in.onPayload = func(p []byte) {
		l.gw.frames.Add(1)
		var m rf.Message
		if !m.Decode(p) {
			l.gw.badFrames.Add(1)
			return
		}
		l.gw.Consume(m, in.at)
	}
	if v, loaded := l.devs.LoadOrStore(id, in); loaded {
		return v.(*loopIngest)
	}
	return in
}

// Handle is the rf link sink: it frames the payload, runs it through the
// device's stream decoder, and routes the decoded message to its shard —
// all synchronously, so the hub sees the frame at exactly the virtual
// time the link delivered it. Routing state is keyed by the payload's
// best-effort device id; a payload too mangled to classify shares the
// conventional id-0 stream, where its decode failure is counted exactly
// as the in-process hub would have.
func (l *Loopback) Handle(payload []byte, at time.Duration) {
	in := l.ingest(rf.PayloadDevice(payload))
	frame, err := rf.AppendEncode(in.enc[:0], payload)
	if err != nil {
		// Oversized payloads cannot cross the wire at all; account the
		// loss the same way an undecodable payload is accounted.
		l.gw.badFrames.Add(1)
		return
	}
	in.enc = frame[:0]
	l.gw.bytesRead.Add(uint64(len(frame)))
	in.at = at
	in.dec.FeedFunc(frame, in.onPayload)
}

// Session returns the session a device id routes to (pre-registration).
func (l *Loopback) Session(id uint32) *core.Session { return l.gw.Session(id) }

// DeviceStats returns one device's receive counters.
func (l *Loopback) DeviceStats(id uint32) (core.HostStats, bool) { return l.gw.DeviceStats(id) }
