package hubnet

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// tempError mimics the transient accept failures a listener under
// pressure produces (EMFILE, ECONNABORTED): net.Error with Temporary
// true, not net.ErrClosed.
type tempError struct{}

func (tempError) Error() string   { return "accept: too many open files" }
func (tempError) Timeout() bool   { return false }
func (tempError) Temporary() bool { return true }

// flakyListener wraps a real listener and fails the first `failures`
// Accept calls with a transient error.
type flakyListener struct {
	net.Listener
	failures atomic.Int64
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.failures.Add(-1) >= 0 {
		return nil, tempError{}
	}
	return l.Listener.Accept()
}

// TestAcceptRetriesTransientErrors is the regression test for the
// accept loop treating every error as shutdown: a burst of transient
// accept failures (descriptor exhaustion) must be retried with backoff —
// counted in NetStats.AcceptRetries — and the listener must then accept
// and serve connections as if nothing happened.
func TestAcceptRetriesTransientErrors(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &flakyListener{Listener: inner}
	ln.failures.Store(3)
	srv := ServeListener(ln, Config{Shards: 2})
	defer srv.Close()

	// Before the fix the loop exited on the first error; a Dial would
	// connect (the kernel still completes the handshake) but no frame
	// would ever be decoded. Drive a frame through to prove the loop
	// survived the burst.
	conn, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SendEncoded(frame(t, 7, 0), 1); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	gw := srv.Gateway()
	deadline := time.Now().Add(5 * time.Second)
	for gw.NetStats().Frames == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	ns := gw.NetStats()
	if ns.Frames != 1 || ns.ConnsTotal != 1 {
		t.Fatalf("after transient accept errors: %+v", ns)
	}
	if ns.AcceptRetries != 3 {
		t.Fatalf("accept retries = %d, want 3", ns.AcceptRetries)
	}
}

// TestAcceptLoopStopsOnClose pins the other half of the contract: a
// closed listener is shutdown, not a transient error — the loop must
// exit promptly rather than spin on net.ErrClosed.
func TestAcceptLoopStopsOnClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return; accept loop spinning on closed listener?")
	}
	if n := srv.Gateway().NetStats().AcceptRetries; n != 0 {
		t.Fatalf("close counted %d accept retries", n)
	}
}

var _ net.Error = tempError{} // the wrapper must model a real net.Error

// TestTempErrorIsNotClosed guards the retry classifier itself: the
// transient error the test injects must not satisfy the shutdown check,
// or the regression test would pass vacuously.
func TestTempErrorIsNotClosed(t *testing.T) {
	if errors.Is(tempError{}, net.ErrClosed) {
		t.Fatal("tempError matches net.ErrClosed")
	}
}
