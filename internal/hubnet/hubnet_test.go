package hubnet

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// frame marshals a v1 scroll message and wraps it in the RF wire framing.
func frame(t *testing.T, device uint32, seq uint16) []byte {
	t.Helper()
	m := rf.Message{Kind: rf.MsgScroll, Device: device, Seq: seq, AtMillis: uint32(seq) * 40}
	p, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	f, err := rf.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// stream concatenates frames for the given devices, one frame per device
// per round, seq counting up per device.
func stream(t *testing.T, devices []uint32, rounds int) []byte {
	t.Helper()
	var out []byte
	for seq := 0; seq < rounds; seq++ {
		for _, id := range devices {
			out = append(out, frame(t, id, uint16(seq))...)
		}
	}
	return out
}

func TestGatewayShardRouting(t *testing.T) {
	gw := NewGateway(Config{Shards: 4})
	if gw.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", gw.Shards())
	}
	for id := uint32(1); id <= 8; id++ {
		gw.Consume(rf.Message{Kind: rf.MsgScroll, Device: id, Seq: 0}, 0)
		if got, want := gw.ShardFor(id), int(id%4); got != want {
			t.Fatalf("device %d routed to shard %d, want %d", id, got, want)
		}
	}
	agg := gw.Stats()
	if agg.Devices != 8 || agg.Decoded != 8 {
		t.Fatalf("aggregate stats: %+v, want 8 devices / 8 decoded", agg)
	}
	// 8 devices round-robin over 4 shards: exactly 2 per shard.
	for i, st := range gw.ShardStats() {
		if st.Devices != 2 || st.Decoded != 2 {
			t.Fatalf("shard %d: %+v, want 2 devices / 2 decoded", i, st)
		}
	}
	if _, ok := gw.DeviceStats(3); !ok {
		t.Fatal("device 3 invisible through the gateway")
	}
}

func TestGatewayShardCountFloor(t *testing.T) {
	if got := NewGateway(Config{}).Shards(); got != 1 {
		t.Fatalf("zero-shard config built %d shards, want 1", got)
	}
}

func TestIngestStreamWholeAndFragmented(t *testing.T) {
	devices := []uint32{1, 2, 3, 4}
	const rounds = 10
	data := stream(t, devices, rounds)

	// One whole feed: every frame decodes, no short reads.
	whole := NewGateway(Config{Shards: 2})
	whole.NewIngest(nil).Feed(data)
	ns := whole.NetStats()
	if ns.Frames != 40 || ns.BadFrames != 0 || ns.ShortReads != 0 {
		t.Fatalf("whole-feed stats: %+v, want 40 clean frames", ns)
	}
	if ns.BytesRead != uint64(len(data)) {
		t.Fatalf("bytes read %d, want %d", ns.BytesRead, len(data))
	}

	// The same stream one byte at a time: identical decode results, with
	// the partial-frame reads counted.
	frag := NewGateway(Config{Shards: 2})
	in := frag.NewIngest(nil)
	for i := range data {
		in.Feed(data[i : i+1])
	}
	fs := frag.NetStats()
	if fs.Frames != 40 || fs.BadFrames != 0 {
		t.Fatalf("fragmented-feed stats: %+v, want 40 clean frames", fs)
	}
	if fs.ShortReads == 0 {
		t.Fatal("byte-at-a-time feed counted no short reads")
	}
	wa, fa := whole.Stats(), frag.Stats()
	if wa != fa {
		t.Fatalf("fragmentation changed hub accounting:\nwhole %+v\nfrag  %+v", wa, fa)
	}
	for _, id := range devices {
		ws, _ := whole.DeviceStats(id)
		fsd, _ := frag.DeviceStats(id)
		if ws.Decoded != rounds || fsd.Decoded != rounds {
			t.Fatalf("device %d decoded %d/%d, want %d/%d", id, ws.Decoded, fsd.Decoded, rounds, rounds)
		}
	}
}

func TestIngestCorruptionResyncs(t *testing.T) {
	gw := NewGateway(Config{Shards: 1})
	in := gw.NewIngest(nil)
	good := frame(t, 1, 0)
	bad := frame(t, 1, 1)
	bad[len(bad)-1] ^= 0xFF // break the CRC
	in.Feed(good)
	in.Feed(bad)
	in.Feed(frame(t, 1, 2))
	ns := gw.NetStats()
	if ns.Frames != 2 {
		t.Fatalf("frames %d, want 2 (the corrupt one must not count)", ns.Frames)
	}
	if ns.BadFrames == 0 {
		t.Fatal("CRC failure not accounted as a bad frame")
	}
	hs := gw.Stats()
	if hs.Decoded != 2 {
		t.Fatalf("decoded %d, want 2 — the stream did not survive the corruption", hs.Decoded)
	}
	if hs.MissedSeq != 1 {
		t.Fatalf("missed %d, want 1 (the corrupted seq 1)", hs.MissedSeq)
	}
}

func TestIngestUndecodablePayload(t *testing.T) {
	gw := NewGateway(Config{Shards: 1})
	in := gw.NewIngest(nil)
	// CRC-valid frame around a payload Message.Decode rejects: a v0-length
	// payload leading with the v1 magic.
	p := make([]byte, 15)
	p[0] = 0xD5
	f, err := rf.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	in.Feed(f)
	ns := gw.NetStats()
	if ns.Frames != 1 || ns.BadFrames != 1 {
		t.Fatalf("stats %+v, want 1 frame / 1 bad", ns)
	}
	if gw.Stats().Decoded != 0 {
		t.Fatal("undecodable payload reached a shard")
	}
}

func TestIngestTimestampsFrames(t *testing.T) {
	gw := NewGateway(Config{Shards: 1, KeepLogs: true})
	now := 5 * time.Second
	in := gw.NewIngest(func() time.Duration { return now })
	in.Feed(frame(t, 1, 0))
	now = 6 * time.Second
	in.Feed(frame(t, 1, 1))
	events := gw.Session(1).Events()
	if len(events) != 2 {
		t.Fatalf("events %d, want 2", len(events))
	}
	if events[0].HostTime != 5*time.Second || events[1].HostTime != 6*time.Second {
		t.Fatalf("ingest times %v / %v, want the injected 5s / 6s",
			events[0].HostTime, events[1].HostTime)
	}
}

func TestLoopbackRoutesAndAccounts(t *testing.T) {
	lb := NewLoopback(Config{Shards: 3, KeepLogs: true})
	mk := func(device uint32, seq uint16) []byte {
		m := rf.Message{Kind: rf.MsgScroll, Device: device, Seq: seq}
		p, _ := m.MarshalBinary()
		return p
	}
	for seq := uint16(0); seq < 5; seq++ {
		for id := uint32(1); id <= 6; id++ {
			lb.Handle(mk(id, seq), time.Duration(seq)*time.Millisecond)
		}
	}
	gw := lb.Gateway()
	if hs := gw.Stats(); hs.Devices != 6 || hs.Decoded != 30 || hs.MissedSeq != 0 {
		t.Fatalf("loopback hub stats: %+v, want 6 devices / 30 decoded / 0 missed", hs)
	}
	// The payload crossed the real framing: bytes were "read", frames
	// decoded off a stream.
	ns := gw.NetStats()
	if ns.Frames != 30 || ns.BytesRead == 0 {
		t.Fatalf("loopback net stats: %+v", ns)
	}
	// Virtual arrival times pass through untouched.
	events := gw.Session(2).Events()
	if len(events) != 5 || events[4].HostTime != 4*time.Millisecond {
		t.Fatalf("loopback ingest: %d events, last at %v — want 5 events at the device's virtual times",
			len(events), events[len(events)-1].HostTime)
	}
	// A mangled payload is accounted, not crashed on.
	lb.Handle([]byte{0x01, 0x02}, 0)
	if gw.NetStats().BadFrames == 0 {
		t.Fatal("mangled loopback payload not counted")
	}
}

func TestGatewayTelemetryCollector(t *testing.T) {
	reg := telemetry.New()
	gw := NewGateway(Config{Shards: 2, Registry: reg})
	in := gw.NewIngest(nil)
	in.Feed(stream(t, []uint32{1, 2, 3}, 4))
	snap := reg.Snapshot()
	if got := snap.Gauges[telemetry.MetricHubDevices]; got != 3 {
		t.Fatalf("hub_devices = %v, want the fleet total 3 (not one shard's)", got)
	}
	if got := snap.Counters[telemetry.MetricNetFrames]; got != 12 {
		t.Fatalf("net frames counter = %d, want 12", got)
	}
	if got := snap.Gauges[telemetry.MetricNetShards]; got != 2 {
		t.Fatalf("net shards gauge = %v, want 2", got)
	}
	// Per-shard series: device 2 is alone on shard 0; devices 1 and 3
	// share shard 1.
	if got := snap.Gauges[telemetry.ShardName(telemetry.MetricHubDevices, 0)]; got != 1 {
		t.Fatalf("shard 0 devices = %v, want 1", got)
	}
	if got := snap.Gauges[telemetry.ShardName(telemetry.MetricHubDevices, 1)]; got != 2 {
		t.Fatalf("shard 1 devices = %v, want 2", got)
	}
	shardFrames := snap.Counters[telemetry.ShardName(telemetry.MetricNetFrames, 0)] +
		snap.Counters[telemetry.ShardName(telemetry.MetricNetFrames, 1)]
	if shardFrames != 12 {
		t.Fatalf("per-shard frame counters sum to %d, want 12", shardFrames)
	}
}

// waitFor polls until cond or the deadline; real-network tests need it
// because server-side ingest lags the client's flush.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerClientRoundTrip(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const devices, rounds = 8, 25
	for seq := 0; seq < rounds; seq++ {
		for id := uint32(1); id <= devices; id++ {
			m := rf.Message{Kind: rf.MsgScroll, Device: id, Seq: uint16(seq)}
			p, _ := m.MarshalBinary()
			if err := conn.Send(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	gw := srv.Gateway()
	waitFor(t, 5*time.Second, func() bool {
		return gw.NetStats().Frames == devices*rounds
	}, "all frames to ingest")

	if st := conn.Stats(); st.Sent != devices*rounds || st.Delivered != st.Sent {
		t.Fatalf("client accounting: %+v", st)
	}
	hs := gw.Stats()
	if hs.Devices != devices || hs.Decoded != devices*rounds || hs.MissedSeq != 0 || hs.BadFrames != 0 {
		t.Fatalf("server hub stats: %+v", hs)
	}
	ns := gw.NetStats()
	if ns.ConnsTotal != 1 || ns.ConnsOpen != 1 {
		t.Fatalf("conn accounting: %+v", ns)
	}
	// Shard spread: 8 devices over 4 shards, 2 each.
	for i, st := range gw.ShardStats() {
		if st.Devices != 2 {
			t.Fatalf("shard %d has %d devices, want 2", i, st.Devices)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return gw.NetStats().ConnsOpen == 0
	}, "connection close to drain")
}

func TestFrameSenderMapsSlabSlots(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	fs := NewFrameSender(conn, 1)
	for slot := 0; slot < 5; slot++ {
		fs.Emit(slot, 0, int16(slot), uint32(slot)*40)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	gw := srv.Gateway()
	waitFor(t, 5*time.Second, func() bool {
		return gw.NetStats().Frames == 5
	}, "emitted frames to ingest")
	// Slab slot s landed as wire device s+1; the reserved id 0 stays empty.
	for id := uint32(1); id <= 5; id++ {
		if st, ok := gw.DeviceStats(id); !ok || st.Decoded != 1 {
			t.Fatalf("device %d: ok=%v %+v, want one decoded frame", id, ok, st)
		}
	}
	if _, ok := gw.DeviceStats(0); ok {
		t.Fatal("reserved device id 0 has a session")
	}
}

func TestConnLatchesWriteErrors(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// An oversized payload is a framing error: rejected, not latched.
	if err := conn.Forward(make([]byte, rf.MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if conn.Err() != nil {
		t.Fatal("framing error latched as a stream error")
	}
	p, _ := (rf.Message{Kind: rf.MsgScroll, Device: 1}).MarshalBinary()
	if err := conn.Forward(p); err != nil {
		t.Fatal(err)
	}
	// Kill the server, then write until the failure surfaces (TCP buffers
	// absorb the first writes after the peer vanishes).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		return conn.Forward(p) != nil
	}, "write error after server shutdown")
	if conn.Err() == nil {
		t.Fatal("stream error not latched")
	}
	if err := conn.Forward(p); err == nil {
		t.Fatal("latched connection accepted a frame")
	}
}
