package hubnet

import (
	"bufio"
	"net"
	"sync"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/rf"
)

// Conn is the client side of a hubnet link: one TCP socket carrying
// framed telemetry payloads from any number of simulated devices. Writes
// are mutex-serialised, so device goroutines share a connection safely;
// frames from a single device stay in order because each device's sends
// are already ordered on its own goroutine and TCP preserves stream
// order.
type Conn struct {
	c net.Conn

	mu   sync.Mutex
	w    *bufio.Writer
	enc  []byte // framing scratch, reused across sends
	sent uint64
	err  error // first write error; latched, the stream is dead after one
}

// Dial connects to a hubnet server.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{c: c, w: bufio.NewWriterSize(c, readBuf)}, nil
}

// write frames one payload into the connection's scratch and hands it to
// the buffered writer, optionally flushing. A framing error (oversized
// payload) is the caller's fault and leaves the stream usable; a write
// error is latched — a byte stream that dropped bytes mid-frame cannot
// carry further frames coherently.
func (c *Conn) write(payload []byte, flush bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	frame, err := rf.AppendEncode(c.enc[:0], payload)
	if err != nil {
		return err
	}
	c.enc = frame[:0]
	if _, err := c.w.Write(frame); err != nil {
		c.err = err
		return err
	}
	c.sent++
	if flush {
		if err := c.w.Flush(); err != nil {
			c.err = err
			return err
		}
	}
	return nil
}

// Forward frames one payload and flushes it to the socket — the uplink
// for interactive fleet devices, where each frame should reach the hub
// as it is emitted.
func (c *Conn) Forward(payload []byte) error { return c.write(payload, true) }

// Send frames one payload into the write buffer without flushing — the
// bulk uplink for scale runs, paired with Flush once per sweep.
func (c *Conn) Send(payload []byte) error { return c.write(payload, false) }

// SendEncoded hands n already-framed payloads (encoded with
// rf.AppendEncode into one contiguous buffer) to the write buffer
// without flushing. It is the amortised bulk uplink: the caller frames
// outside the lock, so the critical section is one memcpy into the
// bufio.Writer instead of n CRC passes — senders sharing a connection
// stop serialising on each other's encode work.
func (c *Conn) SendEncoded(frames []byte, n int) error {
	if len(frames) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if _, err := c.w.Write(frames); err != nil {
		c.err = err
		return err
	}
	c.sent += uint64(n)
	return nil
}

// Flush drains the write buffer to the socket.
func (c *Conn) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if err := c.w.Flush(); err != nil {
		c.err = err
		return err
	}
	return nil
}

// Err returns the latched stream error, if any.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stats reports the connection's channel accounting in link terms: TCP
// neither loses nor corrupts, so every framed payload that entered the
// stream counts as sent and delivered.
func (c *Conn) Stats() rf.LinkStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return rf.LinkStats{Sent: c.sent, Delivered: c.sent, SentV1: c.sent}
}

// Close flushes and closes the socket.
func (c *Conn) Close() error {
	c.mu.Lock()
	flushErr := c.w.Flush()
	c.mu.Unlock()
	if err := c.c.Close(); err != nil {
		return err
	}
	return flushErr
}

// Remote is a fleet hub backend that forwards every delivered frame over
// a client connection to an out-of-process gateway. Host-side accounting
// (sessions, events, sequence audit) lives in the server; Session hands
// out local shadow sessions so fleet wiring that registers handlers or
// tracers has a target, and DeviceStats reports not-found — per-device
// host stats must be read from the server's gateway.
type Remote struct {
	conn   *Conn
	shadow *core.Hub
}

// NewRemote wraps a dialled connection as a fleet hub backend.
func NewRemote(conn *Conn) *Remote {
	return &Remote{conn: conn, shadow: core.NewHub(false)}
}

// Handle forwards one payload to the server. The virtual arrival time
// cannot cross the wire (the frame format predates the network path), so
// the server stamps frames on its own ingest clock.
func (r *Remote) Handle(payload []byte, at time.Duration) { _ = r.conn.Forward(payload) }

// Session returns the local shadow session for a device id.
func (r *Remote) Session(id uint32) *core.Session { return r.shadow.Session(id) }

// DeviceStats always reports not-found: receive accounting lives in the
// server process.
func (r *Remote) DeviceStats(id uint32) (core.HostStats, bool) { return core.HostStats{}, false }

// Err surfaces the connection's latched stream error.
func (r *Remote) Err() error { return r.conn.Err() }

// FrameSender adapts a connection to the scale path's frame emission
// hook (core.FrameEmitter): each emitted slab frame is marshalled as a
// v1 scroll message and framed into the sender's own accumulation
// buffer — entirely outside the connection mutex — then handed to the
// connection in multi-frame runs via SendEncoded, so the lock is held
// for a memcpy, not per-frame encode work. One FrameSender per worker,
// on the worker's own connection — emission is single-goroutine, so the
// scratch buffers need no lock.
type FrameSender struct {
	conn *Conn
	base uint32
	pbuf []byte // one message's marshal scratch
	wbuf []byte // framed bytes accumulated since the last push
	wn   int    // frames accumulated in wbuf
	err  error
}

// senderFlushBytes is the accumulation threshold: push framed bytes to
// the connection once ~32 KiB (about 1300 frames) have built up, keeping
// the buffer L1/L2-resident while amortising the lock to ~nothing.
const senderFlushBytes = 32 << 10

// NewFrameSender returns a sender mapping slab slot s to wire device id
// idBase + s.
func NewFrameSender(conn *Conn, idBase uint32) *FrameSender {
	return &FrameSender{conn: conn, base: idBase}
}

// Emit marshals and frames one message into the accumulation buffer,
// pushing to the connection when the threshold is reached. After the
// first stream error emission goes dark rather than panicking the tick
// loop; the error surfaces from Flush.
func (fs *FrameSender) Emit(slot int, seq uint16, island int16, atMillis uint32) {
	if fs.err != nil {
		return
	}
	m := rf.Message{
		Kind:     rf.MsgScroll,
		Device:   fs.base + uint32(slot),
		Seq:      seq,
		AtMillis: atMillis,
		Index:    island,
		Island:   island,
	}
	fs.pbuf = m.AppendBinary(fs.pbuf[:0])
	wbuf, err := rf.AppendEncode(fs.wbuf, fs.pbuf)
	if err != nil {
		fs.err = err
		return
	}
	fs.wbuf = wbuf
	fs.wn++
	if len(fs.wbuf) >= senderFlushBytes {
		fs.push()
	}
}

// push hands the accumulated framed bytes to the connection.
func (fs *FrameSender) push() {
	if fs.err != nil || fs.wn == 0 {
		return
	}
	fs.err = fs.conn.SendEncoded(fs.wbuf, fs.wn)
	fs.wbuf = fs.wbuf[:0]
	fs.wn = 0
}

// Flush pushes any accumulated frames, drains the connection's write
// buffer to the socket, and returns the first stream error, if any.
func (fs *FrameSender) Flush() error {
	fs.push()
	if fs.err != nil {
		return fs.err
	}
	fs.err = fs.conn.Flush()
	return fs.err
}

// Err returns the sender's first error.
func (fs *FrameSender) Err() error { return fs.err }
