package hubnet

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/fleet"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// These tests pin the networked hub's transparency contract: the gateway
// path (frame → stream decode → shard route) must be invisible to the
// simulation. A seeded fleet run through the loopback gateway is
// byte-identical to one against the plain in-process hub, and a run over
// real localhost TCP delivers every CRC-clean frame into the server's
// shards.

// sig flattens one device's hub event log into a comparable signature.
func sig(events []core.Event) string {
	s := ""
	for _, e := range events {
		s += fmt.Sprintf("%d:%d:%d:%d;", e.Kind, e.Index, e.DeviceTime/time.Microsecond, e.HostTime/time.Microsecond)
	}
	return s
}

// runPair runs the same seeded fleet twice — once against the in-process
// hub, once through a loopback gateway with the given shard count — and
// returns both runners and result sets.
func runPair(t *testing.T, cfg fleet.Config, shards int, reg *telemetry.Registry) (direct, looped *fleet.Runner, dres, lres []fleet.Result) {
	t.Helper()
	run := func(c fleet.Config) (*fleet.Runner, []fleet.Result) {
		r, err := fleet.New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		return r, res
	}
	direct, dres = run(cfg)
	lcfg := cfg
	lcfg.Metrics = reg
	lcfg.Core.Metrics = reg
	lcfg.Hub = NewLoopback(Config{Shards: shards, KeepLogs: true, Registry: reg})
	looped, lres = run(lcfg)
	return direct, looped, dres, lres
}

func assertIdentical(t *testing.T, direct, looped *fleet.Runner, dres, lres []fleet.Result) {
	t.Helper()
	if !reflect.DeepEqual(dres, lres) {
		for i := range dres {
			if !reflect.DeepEqual(dres[i], lres[i]) {
				t.Fatalf("device %d diverged through the gateway:\ndirect   %+v\nloopback %+v", i+1, dres[i], lres[i])
			}
		}
		t.Fatalf("results diverged")
	}
	for i := 0; i < direct.Len(); i++ {
		ds, ls := sig(direct.Session(i).Events()), sig(looped.Session(i).Events())
		if ds != ls {
			t.Fatalf("device %d event stream diverged through the gateway:\ndirect   %s\nloopback %s", i+1, ds, ls)
		}
		if ds == "" {
			t.Fatalf("device %d produced no events", i+1)
		}
	}
}

func TestFleetLoopbackIdentical(t *testing.T) {
	cfg := fleet.Config{Devices: 12, Seed: 42, Workers: 4}
	direct, looped, dres, lres := runPair(t, cfg, 4, nil)
	assertIdentical(t, direct, looped, dres, lres)
}

func TestFleetLoopbackIdenticalReliableLossy(t *testing.T) {
	cfg := fleet.Config{Devices: 8, Seed: 7, Workers: 3, Reliable: true}
	cfg.Core = core.DefaultConfig()
	cfg.Core.Link.LossProb = 0.15
	cfg.Core.Link.CorruptProb = 0.05
	cfg.Core.Link.BurstLossProb = 0.02
	cfg.Core.Link.AckLossProb = 0.1
	direct, looped, dres, lres := runPair(t, cfg, 3, nil)
	assertIdentical(t, direct, looped, dres, lres)
	var retx uint64
	for _, r := range lres {
		retx += r.ARQ.Retransmits
	}
	if retx == 0 {
		t.Fatal("lossy reliable run retransmitted nothing; the test exercised nothing")
	}
}

func TestFleetLoopbackTelemetryMatchesResults(t *testing.T) {
	reg := telemetry.New()
	cfg := fleet.Config{Devices: 6, Seed: 11, Workers: 2}
	cfg.Core = core.DefaultConfig()
	cfg.Core.Link.LossProb = 0.1
	_, looped, _, lres := runPair(t, cfg, 2, reg)
	tot := looped.Total(lres)
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricHubDecoded]; got != tot.Decoded {
		t.Fatalf("hub decoded counter %d != result total %d", got, tot.Decoded)
	}
	if got := snap.Gauges[telemetry.MetricHubDevices]; got != float64(cfg.Devices) {
		t.Fatalf("hub_devices %v, want %d — the shard collectors double- or under-counted", got, cfg.Devices)
	}
	// The wire edge saw exactly the decoded + undecodable frames.
	if got := snap.Counters[telemetry.MetricNetFrames]; got != tot.Decoded+tot.BadFrames {
		t.Fatalf("net frames %d != decoded %d + bad %d", got, tot.Decoded, tot.BadFrames)
	}
	if got := snap.Gauges[telemetry.MetricNetShards]; got != 2 {
		t.Fatalf("net shards %v, want 2", got)
	}
}

// runTCPFleet runs a fleet whose hub is a hubnet server across a real
// localhost socket and returns the totals plus the server's gateway after
// every forwarded frame has been ingested.
func runTCPFleet(t *testing.T, cfg fleet.Config, shards int) (fleet.Totals, *Gateway) {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	remote := NewRemote(conn)
	cfg.Hub = remote
	r, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	tot := r.Total(results)
	gw := srv.Gateway()
	waitFor(t, 10*time.Second, func() bool {
		return gw.NetStats().Frames >= tot.Delivered
	}, "forwarded frames to ingest")
	return tot, gw
}

// TestFleetOverTCPSoak is the race soak: 32 concurrently simulated devices
// share one socket to a sharded server under link faults. Every CRC-clean
// frame the links delivered must come out of the server's shards, and the
// server's sequence audit must see at most the frames the channel ate.
func TestFleetOverTCPSoak(t *testing.T) {
	cfg := fleet.Config{Devices: 32, Seed: 99, Workers: 8}
	cfg.Core = core.DefaultConfig()
	cfg.Core.Link.LossProb = 0.1
	cfg.Core.Link.CorruptProb = 0.02
	cfg.Core.Link.BurstLossProb = 0.02
	tot, gw := runTCPFleet(t, cfg, 4)

	if tot.Lost == 0 || tot.Corrupted == 0 {
		t.Fatalf("fault model idle (lost %d, corrupted %d); the soak exercised nothing", tot.Lost, tot.Corrupted)
	}
	ns, hs := gw.NetStats(), gw.Stats()
	if ns.Frames != tot.Delivered {
		t.Fatalf("server ingested %d frames, links delivered %d", ns.Frames, tot.Delivered)
	}
	if hs.Decoded != tot.Delivered || hs.BadFrames != 0 {
		t.Fatalf("server decoded %d (bad %d), want every delivered frame (%d)", hs.Decoded, hs.BadFrames, tot.Delivered)
	}
	if hs.Devices != cfg.Devices {
		t.Fatalf("server saw %d devices, want %d", hs.Devices, cfg.Devices)
	}
	// Frames the channel ate are the only legal holes: trailing losses are
	// invisible (nothing after them reveals the gap), so missed is bounded
	// by, not equal to, the channel's kill count.
	if kills := tot.Lost + tot.Corrupted; hs.MissedSeq > kills {
		t.Fatalf("server missed %d seqs, channel only killed %d — frames vanished in the network path", hs.MissedSeq, kills)
	}
	// The shard partition covered the fleet: every shard owns 32/4 devices.
	for i, st := range gw.ShardStats() {
		if st.Devices != 8 {
			t.Fatalf("shard %d has %d devices, want 8", i, st.Devices)
		}
	}
}

// TestFleetOverTCPLossless is the exactness half: with an ideal channel the
// server must account for every single frame with zero sequence gaps.
func TestFleetOverTCPLossless(t *testing.T) {
	cfg := fleet.Config{Devices: 8, Seed: 3, Workers: 4}
	cfg.Core = core.DefaultConfig()
	cfg.Core.Link.LossProb = 0
	cfg.Core.Link.CorruptProb = 0
	cfg.Core.Link.BurstLossProb = 0
	tot, gw := runTCPFleet(t, cfg, 2)
	hs := gw.Stats()
	if hs.Decoded != tot.Sent || hs.MissedSeq != 0 {
		t.Fatalf("lossless run: server decoded %d of %d sent, missed %d — want exact, gapless delivery",
			hs.Decoded, tot.Sent, hs.MissedSeq)
	}
}
