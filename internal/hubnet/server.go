package hubnet

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// Server accepts hubnet connections and feeds each one's byte stream
// through its own Ingest into a shared Gateway. Connections carry the RF
// frame format verbatim — the TCP stream is the "wire", the frame CRC
// still guards integrity, and a corrupted or truncated stream resyncs
// exactly as the radio decoder does. One goroutine per connection;
// batched reads through bufio amortise syscalls so a 100k-device scale
// run can funnel its frames through a handful of sockets.
type Server struct {
	gw    *Gateway
	ln    net.Listener
	now   func() time.Duration
	start time.Time

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// readBuf sizes the per-connection read buffer: large enough to carry
// thousands of 25-byte frames per syscall, small enough that a thousand
// idle connections cost megabytes, not gigabytes.
const readBuf = 64 << 10

// Serve listens on addr (e.g. "127.0.0.1:0") and serves a fresh gateway
// built from cfg until Close.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		gw:    NewGateway(cfg),
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		start: time.Now(),
	}
	s.now = cfg.Now
	if s.now == nil {
		s.now = func() time.Duration { return time.Since(s.start) }
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" ports).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Gateway returns the server's gateway (stats, sessions, telemetry).
func (s *Server) Gateway() *Gateway { return s.gw }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			// Accept fails permanently once the listener closes; any
			// transient error here would spin, so treat all errors as
			// shutdown — the only caller of Serve's lifecycle is Close.
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.gw.connsTotal.Add(1)
		s.gw.connsOpen.Add(1)
		go s.serveConn(c)
	}
}

// serveConn pumps one connection: batched reads, incremental decode,
// shard routing. The stream needs no length-prefix protocol of its own —
// the frame format is self-delimiting and self-healing.
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.gw.connsOpen.Add(-1)
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	in := s.gw.NewIngest(s.now)
	br := bufio.NewReaderSize(c, readBuf)
	buf := make([]byte, 32<<10)
	for {
		n, err := br.Read(buf)
		if n > 0 {
			in.Feed(buf[:n])
		}
		if err != nil {
			return
		}
	}
}

// Close stops accepting, closes every open connection, and waits for the
// per-connection goroutines to drain. Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
