package hubnet

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"
)

// Server accepts hubnet connections and feeds each one's byte stream
// through its own Ingest into a shared Gateway. Connections carry the RF
// frame format verbatim — the TCP stream is the "wire", the frame CRC
// still guards integrity, and a corrupted or truncated stream resyncs
// exactly as the radio decoder does. One goroutine per connection;
// batched reads through bufio amortise syscalls so a 100k-device scale
// run can funnel its frames through a handful of sockets.
type Server struct {
	gw    *Gateway
	ln    net.Listener
	now   func() time.Duration
	start time.Time

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// readBuf sizes the per-connection read buffer: large enough to carry
// thousands of 25-byte frames per syscall, small enough that a thousand
// idle connections cost megabytes, not gigabytes.
const readBuf = 64 << 10

// Accept-retry backoff bounds: transient errors (EMFILE, ECONNABORTED)
// back off from 5ms doubling to 1s, resetting after any successful
// accept. A listener under descriptor pressure rides out the spike
// instead of silently killing ingest for every future connection.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// Read-path pools, shared by all connections across all servers in the
// process: a disconnect/reconnect churn of thousands of devices reuses
// the 64 KiB bufio readers and 32 KiB chunk buffers instead of
// re-allocating ~100 KB per connection.
var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, readBuf) }}
	chunkPool  = sync.Pool{New: func() any { b := make([]byte, 32<<10); return &b }}
)

// Serve listens on addr (e.g. "127.0.0.1:0") and serves a fresh gateway
// built from cfg until Close.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListener(ln, cfg), nil
}

// ServeListener serves a fresh gateway on an already-bound listener —
// the injection point for tests that wrap a listener in fault models
// (transient Accept errors) the kernel won't produce on demand.
func ServeListener(ln net.Listener, cfg Config) *Server {
	s := &Server{
		gw:    NewGateway(cfg),
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		start: time.Now(),
	}
	s.now = cfg.Now
	if s.now == nil {
		s.now = func() time.Duration { return time.Since(s.start) }
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound listen address (resolves ":0" ports).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Gateway returns the server's gateway (stats, sessions, telemetry).
func (s *Server) Gateway() *Gateway { return s.gw }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := acceptBackoffMin
	for {
		c, err := s.ln.Accept()
		if err != nil {
			// Closed listener means shutdown. Anything else is treated as
			// transient — an fd-exhausted or connection-aborted accept must
			// not kill the listener for every future device — and retried
			// with capped exponential backoff.
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.gw.acceptRetries.Add(1)
			time.Sleep(backoff)
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.gw.connsTotal.Add(1)
		s.gw.connsOpen.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// serveConn pumps one connection: batched reads, incremental decode,
// shard routing (direct or via the shard rings per the gateway config).
// The stream needs no length-prefix protocol of its own — the frame
// format is self-delimiting and self-healing.
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.gw.connsOpen.Add(-1)
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	in := s.gw.NewIngest(s.now)
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(c)
	defer readerPool.Put(br)
	bufp := chunkPool.Get().(*[]byte)
	buf := *bufp
	defer chunkPool.Put(bufp)
	for {
		n, err := br.Read(buf)
		if n > 0 {
			in.Feed(buf[:n])
		}
		if err != nil {
			return
		}
	}
}

// Close stops accepting, closes every open connection, waits for the
// per-connection goroutines to drain, and then stops the gateway's
// ingest pipeline (the shard workers drain their rings before exiting,
// so stats read after Close are complete). Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	s.gw.Close()
	return err
}
