package tracing

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeExport parses a Perfetto export back into generic structures.
func decodeExport(t *testing.T, data []byte) (events []map[string]any, other map[string]any) {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		OtherData       map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents, doc.OtherData
}

func TestPerfettoExportFlowLinkedChain(t *testing.T) {
	tr := New(Config{Capacity: 64})
	r := tr.NewRecorder("mouse-5", 5)

	// One frame's full life: sampled at 10ms, enqueued, transmitted,
	// delivered at 14ms, admitted by the session at 14ms.
	r.Record(HopFirmwareSample, 42, 10*time.Millisecond, 1, 0)
	r.Record(HopArqEnqueue, 42, 10*time.Millisecond, 0, 0)
	r.Record(HopArqTx, 42, 10*time.Millisecond, 1, 0)
	r.Record(HopLinkDeliver, 42, 14*time.Millisecond, 0, 0)
	r.Record(HopHubDemux, 42, 14*time.Millisecond, 10, PackDemux(OutcomeAdmit, 1))

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf, map[string]any{"deliveredFrames": 1}); err != nil {
		t.Fatal(err)
	}
	events, other := decodeExport(t, buf.Bytes())

	if got, ok := other["deliveredFrames"].(float64); !ok || got != 1 {
		t.Fatalf("otherData deliveredFrames = %v", other["deliveredFrames"])
	}

	var flowStart, flowEnd, slice, sample map[string]any
	names := map[string]int{}
	for _, e := range events {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		names[name]++
		switch {
		case ph == "s" && name == "frame":
			flowStart = e
		case ph == "f" && name == "frame":
			flowEnd = e
		case ph == "X":
			slice = e
		case ph == "i" && name == "firmware.sample":
			sample = e
		}
	}
	if sample == nil || flowStart == nil || flowEnd == nil || slice == nil {
		t.Fatalf("missing chain pieces: sample=%v s=%v f=%v X=%v", sample, flowStart, flowEnd, slice)
	}
	// The flow id must bind birth to admission.
	if flowStart["id"] != flowEnd["id"] {
		t.Fatalf("flow ids differ: s=%v f=%v", flowStart["id"], flowEnd["id"])
	}
	// Flow starts on the device firmware track, ends on the host session
	// track for that device.
	if pid, _ := flowStart["pid"].(float64); pid != 5 {
		t.Fatalf("flow start pid = %v, want device 5", flowStart["pid"])
	}
	if pid, _ := flowEnd["pid"].(float64); pid != hostPID {
		t.Fatalf("flow end pid = %v, want host %d", flowEnd["pid"], hostPID)
	}
	if tid, _ := flowEnd["tid"].(float64); tid != 5 {
		t.Fatalf("flow end tid = %v, want session track 5", flowEnd["tid"])
	}
	// The slice spans origin→admission: ts = 10ms in µs, dur = 4ms in µs.
	if name, _ := slice["name"].(string); name != "session.admit" {
		t.Fatalf("slice name = %q", name)
	}
	if ts, _ := slice["ts"].(float64); ts != 10000 {
		t.Fatalf("slice ts = %v µs, want 10000", slice["ts"])
	}
	if dur, _ := slice["dur"].(float64); dur != 4000 {
		t.Fatalf("slice dur = %v µs, want 4000", slice["dur"])
	}
	// Track naming metadata must be present for the device and the host.
	if names["process_name"] < 2 || names["thread_name"] < 4 {
		t.Fatalf("metadata events missing: %v", names)
	}
}

func TestPerfettoSliceCountMatchesDemuxEvents(t *testing.T) {
	tr := New(Config{Capacity: 256})
	ra := tr.NewRecorder("a", 1)
	rb := tr.NewRecorder("b", 2)
	const perDevice = 20
	for i := 0; i < perDevice; i++ {
		at := time.Duration(i+1) * time.Millisecond
		ra.Record(HopHubDemux, uint16(i), at, uint32(i), PackDemux(OutcomeAdmit, 1))
		rb.Record(HopHubDemux, uint16(i), at, uint32(i), PackDemux(OutcomeStale, 1))
	}
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf, nil); err != nil {
		t.Fatal(err)
	}
	events, _ := decodeExport(t, buf.Bytes())
	slices := 0
	for _, e := range events {
		if ph, _ := e["ph"].(string); ph == "X" {
			slices++
		}
	}
	if slices != 2*perDevice {
		t.Fatalf("X slices = %d, want %d (one per demuxed frame)", slices, 2*perDevice)
	}
}

func TestPerfettoZeroDurationClampsToOne(t *testing.T) {
	tr := New(Config{Capacity: 8})
	r := tr.NewRecorder("d", 1)
	// Admission at the same tick as origin: dur would be 0, clamp to 1µs so
	// Perfetto still renders the slice.
	r.Record(HopHubDemux, 1, 5*time.Millisecond, 5, PackDemux(OutcomeAdmit, 1))
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf, nil); err != nil {
		t.Fatal(err)
	}
	events, _ := decodeExport(t, buf.Bytes())
	for _, e := range events {
		if ph, _ := e["ph"].(string); ph == "X" {
			if dur, _ := e["dur"].(float64); dur != 1 {
				t.Fatalf("dur = %v, want clamp to 1", e["dur"])
			}
			return
		}
	}
	t.Fatal("no X slice exported")
}

func TestFlowIDStable(t *testing.T) {
	if flowID(1, 1) == flowID(1, 2) || flowID(1, 1) == flowID(2, 1) {
		t.Fatal("flow ids collide across seq/device")
	}
	if flowID(3, 7) != flowID(3, 7) {
		t.Fatal("flow id not deterministic")
	}
}
