package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome Trace Event / Perfetto JSON export. The layout maps the fleet onto
// Perfetto's process/thread grid:
//
//   - each device is a process (pid = device id) with one thread per
//     pipeline stage — firmware, arq, link — carrying instant events and
//     the per-frame radio lifetime slices;
//   - the host is process 0 with one thread per device session (tid =
//     device id) where every delivered frame is a complete "X" slice whose
//     ts is the device-side origin tick and whose dur is the end-to-end
//     latency, so latency is directly visible as slice width;
//   - a flow ("s" at firmware.sample, "f" at the host slice) stitches one
//     frame's birth to its admission, making a single scroll gesture
//     traceable end to end across tracks in ui.perfetto.dev.
//
// All timestamps are virtual time in microseconds (the Trace Event unit).

const hostPID = 0

// traceEvent is one Chrome Trace Event object. Fields follow the format
// spec; optional ones are omitted when zero.
type traceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	PID  uint32 `json:"pid"`
	TID  uint32 `json:"tid"`
	ID   uint64 `json:"id,omitempty"`
	BP   string `json:"bp,omitempty"`
	S    string `json:"s,omitempty"` // instant scope
	Args any    `json:"args,omitempty"`
}

// Track tids inside a device process.
const (
	tidFirmware uint32 = 1
	tidARQ      uint32 = 2
	tidLink     uint32 = 3
)

func micros(d time.Duration) int64 { return int64(d / time.Microsecond) }

// flowID derives a stable per-frame flow id from the trace context. Device
// ids are wire ids (< 2^32-16); seq wraps at 2^16, far beyond any window a
// frame could be confused across.
func flowID(dev uint32, seq uint16) uint64 { return uint64(dev)<<16 | uint64(seq) }

// WritePerfetto merges every recorder into one Chrome Trace Event JSON
// document ready for ui.perfetto.dev. otherData (optional) is embedded
// verbatim in the document's otherData map — the CLI uses it to carry run
// parameters and the delivered-frame count the CI gate checks against.
func (t *Tracer) WritePerfetto(w io.Writer, otherData map[string]any) error {
	if t == nil {
		return nil
	}
	events := make([]traceEvent, 0, 256)

	// Metadata: name the host process once, each device process, and the
	// per-stage threads.
	events = append(events,
		metaEvent("process_name", hostPID, 0, "host hub"),
		metaEvent("process_sort_index", hostPID, 0, -1),
	)
	for _, r := range t.Recorders() {
		events = appendRecorderMeta(events, r)
		events = appendRecorderEvents(events, r)
	}

	doc := struct {
		TraceEvents     []traceEvent   `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData,omitempty"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       otherData,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func metaEvent(name string, pid, tid uint32, value any) traceEvent {
	key := "name"
	if name == "process_sort_index" || name == "thread_sort_index" {
		key = "sort_index"
	}
	return traceEvent{
		Name: name, Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{key: value},
	}
}

func appendRecorderMeta(events []traceEvent, r *Recorder) []traceEvent {
	dev := r.Device()
	label := r.Label()
	if label == "" {
		label = fmt.Sprintf("device %d", dev)
	}
	return append(events,
		metaEvent("process_name", dev, 0, label),
		metaEvent("thread_name", dev, tidFirmware, "firmware"),
		metaEvent("thread_name", dev, tidARQ, "arq"),
		metaEvent("thread_name", dev, tidLink, "link"),
		metaEvent("thread_name", hostPID, dev, fmt.Sprintf("session dev %d", dev)),
	)
}

// appendRecorderEvents translates one recorder's retained events. Device-
// side hops become instants (plus a flow start at firmware.sample);
// hub.demux becomes the host-side complete slice that closes the flow.
func appendRecorderEvents(events []traceEvent, r *Recorder) []traceEvent {
	dev := r.Device()
	for _, e := range r.Events() {
		ts := micros(e.At)
		switch e.Hop() {
		case HopFirmwareSample:
			events = append(events,
				traceEvent{
					Name: e.Hop().String(), Cat: "firmware", Ph: "i", S: "t",
					TS: ts, PID: dev, TID: tidFirmware,
					Args: map[string]any{"seq": e.Seq(), "kind": e.Arg()},
				},
				traceEvent{
					Name: "frame", Cat: "frame", Ph: "s",
					TS: ts, PID: dev, TID: tidFirmware,
					ID: flowID(dev, e.Seq()),
				},
			)
		case HopArqEnqueue, HopArqTx, HopArqRetx, HopArqAck,
			HopArqOverflow, HopArqExhausted:
			events = append(events, traceEvent{
				Name: e.Hop().String(), Cat: "arq", Ph: "i", S: "t",
				TS: ts, PID: dev, TID: tidARQ,
				Args: map[string]any{"seq": e.Seq(), "arg": e.Arg()},
			})
		case HopLinkDeliver, HopLinkDrop:
			events = append(events, traceEvent{
				Name: e.Hop().String(), Cat: "link", Ph: "i", S: "t",
				TS: ts, PID: dev, TID: tidLink,
				Args: map[string]any{"seq": e.Seq()},
			})
		case HopHubDemux:
			// The host-side span: origin tick → admission. Arg is the
			// device-stamped origin in virtual milliseconds; the slice
			// width is the end-to-end latency. The flow terminates here,
			// binding the slice to its firmware.sample.
			outcome, kind := UnpackDemux(e.Arg2())
			origin := int64(e.Arg()) * 1000 // ms → µs
			dur := ts - origin
			if dur < 1 {
				dur = 1
			}
			events = append(events,
				traceEvent{
					Name: outcome.String(), Cat: "session", Ph: "X",
					TS: origin, Dur: dur, PID: hostPID, TID: dev,
					Args: map[string]any{
						"seq": e.Seq(), "kind": kind,
						"latency_ms": float64(dur) / 1000,
					},
				},
				traceEvent{
					Name: "frame", Cat: "frame", Ph: "f", BP: "e",
					TS: ts, PID: hostPID, TID: dev,
					ID: flowID(dev, e.Seq()),
				},
			)
		case HopSessionGap, HopSessionSLO:
			events = append(events, traceEvent{
				Name: e.Hop().String(), Cat: "anomaly", Ph: "i", S: "g",
				TS: ts, PID: hostPID, TID: dev,
				Args: map[string]any{"seq": e.Seq(), "arg": e.Arg()},
			})
		}
	}
	return events
}
