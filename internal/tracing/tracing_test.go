package tracing

import (
	"strings"
	"testing"
	"time"
)

func TestHopAndOutcomeNames(t *testing.T) {
	wantHops := map[Hop]string{
		HopFirmwareSample: "firmware.sample",
		HopArqEnqueue:     "arq.enqueue",
		HopArqTx:          "arq.tx",
		HopArqRetx:        "arq.retx",
		HopArqAck:         "arq.ack",
		HopArqOverflow:    "arq.overflow",
		HopArqExhausted:   "arq.retry_exhausted",
		HopLinkDeliver:    "link.deliver",
		HopLinkDrop:       "link.drop",
		HopHubDemux:       "hub.demux",
		HopSessionGap:     "session.gap",
		HopSessionSLO:     "session.slo_breach",
	}
	for hop, want := range wantHops {
		if got := hop.String(); got != want {
			t.Errorf("Hop(%d).String() = %q, want %q", hop, got, want)
		}
	}
	wantOutcomes := map[Outcome]string{
		OutcomeAdmit:     "session.admit",
		OutcomeStale:     "session.stale",
		OutcomeAhead:     "session.ahead",
		OutcomeResync:    "session.resync",
		OutcomeDuplicate: "session.duplicate",
		OutcomeReordered: "session.reordered",
	}
	for o, want := range wantOutcomes {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, got, want)
		}
	}
}

func TestPackDemuxRoundTrip(t *testing.T) {
	for _, o := range []Outcome{OutcomeAdmit, OutcomeStale, OutcomeAhead, OutcomeResync, OutcomeDuplicate, OutcomeReordered} {
		for _, kind := range []uint8{0, 1, 7, 255} {
			gotO, gotK := UnpackDemux(PackDemux(o, kind))
			if gotO != o || gotK != kind {
				t.Fatalf("PackDemux(%v,%d) round-trip = (%v,%d)", o, kind, gotO, gotK)
			}
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if r := tr.NewRecorder("x", 1); r != nil {
		t.Fatalf("nil tracer returned non-nil recorder")
	}
	var r *Recorder
	r.Record(HopFirmwareSample, 1, time.Millisecond, 0, 0) // must not panic
	r.Anomaly(HopSessionGap, 0, 0, 3, 0, "gap")
	if r.Len() != 0 || r.Total() != 0 || r.Events() != nil || r.SLO() != 0 {
		t.Fatalf("nil recorder accessors not zero")
	}
	if tr.Recorders() != nil || tr.SLO() != 0 || tr.Bounded() || tr.Dumps() != 0 {
		t.Fatalf("nil tracer accessors not zero")
	}
	if err := tr.WriteText(nil); err != nil {
		t.Fatalf("nil tracer WriteText: %v", err)
	}
	if err := tr.WritePerfetto(nil, nil); err != nil {
		t.Fatalf("nil tracer WritePerfetto: %v", err)
	}
}

func TestUnboundedRetainsAll(t *testing.T) {
	tr := New(Config{Capacity: 4})
	r := tr.NewRecorder("dev", 7)
	for i := 0; i < 100; i++ {
		r.Record(HopArqTx, uint16(i), time.Duration(i)*time.Millisecond, 1, 0)
	}
	if r.Len() != 100 || r.Total() != 100 {
		t.Fatalf("Len=%d Total=%d, want 100/100", r.Len(), r.Total())
	}
	ev := r.Events()
	for i, e := range ev {
		if e.Seq() != uint16(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq())
		}
	}
}

func TestBoundedRingOverwritesOldest(t *testing.T) {
	tr := New(Config{Capacity: 7, Bounded: true}) // rounds up to 8
	if !tr.Bounded() {
		t.Fatal("Bounded() = false")
	}
	r := tr.NewRecorder("dev", 3)
	for i := 0; i < 20; i++ {
		r.Record(HopLinkDeliver, uint16(i), time.Duration(i)*time.Millisecond, 0, 0)
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8 (rounded-up ring)", r.Len())
	}
	if r.Total() != 20 {
		t.Fatalf("Total = %d, want 20", r.Total())
	}
	ev := r.Events()
	if len(ev) != 8 {
		t.Fatalf("Events len = %d", len(ev))
	}
	for i, e := range ev {
		if want := uint16(12 + i); e.Seq() != want {
			t.Fatalf("retained event %d has seq %d, want %d (oldest-first)", i, e.Seq(), want)
		}
	}
}

func TestAnomalyDumpContainsTrailingEvents(t *testing.T) {
	var buf strings.Builder
	tr := New(Config{Capacity: 16, Bounded: true, DumpTo: &buf, DumpEvents: 4})
	r := tr.NewRecorder("mouse-3", 3)
	for i := 10; i < 14; i++ {
		r.Record(HopArqRetx, uint16(i), time.Duration(i)*time.Millisecond, uint32(i-9), 0)
	}
	r.Anomaly(HopArqExhausted, 13, 14*time.Millisecond, 5, 0,
		"retry budget exhausted: seqs 12..13 abandoned")

	out := buf.String()
	for _, want := range []string{
		"FLIGHT RECORDER dump #1",
		"mouse-3 (device 3)",
		"retry budget exhausted: seqs 12..13 abandoned",
		"arq.retx",
		"arq.retry_exhausted",
		"seq=13",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if tr.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", tr.Dumps())
	}
}

func TestDumpRateLimit(t *testing.T) {
	var buf strings.Builder
	tr := New(Config{Capacity: 8, Bounded: true, DumpTo: &buf, MaxDumps: 2})
	r := tr.NewRecorder("d", 1)
	for i := 0; i < 5; i++ {
		r.Anomaly(HopSessionSLO, uint16(i), time.Duration(i)*time.Millisecond, 99, 0, "slow")
	}
	out := buf.String()
	if got := strings.Count(out, "FLIGHT RECORDER dump"); got != 2 {
		t.Fatalf("dump count = %d, want 2 (MaxDumps)", got)
	}
	if r.Total() != 5 {
		t.Fatalf("anomaly events after the dump cap must still record: Total = %d", r.Total())
	}
}

func TestWriteText(t *testing.T) {
	var buf strings.Builder
	tr := New(Config{Capacity: 8})
	r := tr.NewRecorder("dev-1", 1)
	r.Record(HopFirmwareSample, 42, 5*time.Millisecond, 1, 0)
	r.Record(HopHubDemux, 42, 9*time.Millisecond, 5, PackDemux(OutcomeAdmit, 1))
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dev-1 (device 1)", "firmware.sample", "hub.demux", "session.admit", "origin=5ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}
