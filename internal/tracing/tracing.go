// Package tracing is the frame-level causal-tracing subsystem: every RF
// frame carries an implicit trace context (device id + wrapping sequence
// number + origin tick) and accrues per-hop span events as it moves through
// the firmware → ARQ → link → hub → session pipeline. Where the sibling
// telemetry package answers "how many and how fast in aggregate", this
// package answers "WHICH frame, WHERE did it stall, and WHAT happened just
// before" — the per-interaction timing record scrolling evaluation needs
// (ScrollTest-style) and the post-mortem layer a production serving stack
// carries.
//
// Two cost regimes share one recording primitive:
//
//   - A Recorder is a per-goroutine event buffer. In the simulator one
//     device's whole pipeline — firmware cycle, ARQ window, link delivery,
//     hub demux, session admission — runs on that device's scheduler
//     goroutine, so a per-device recorder is single-writer by construction:
//     recording is a plain struct store into a preallocated slot, no lock,
//     no atomic, no allocation.
//   - Bounded recorders are flight recorders: a power-of-two ring keeps the
//     last N events and an anomaly (retry-budget exhaustion, backlog
//     overflow, post-drain sequence gap, latency-SLO breach) dumps them as
//     plain text — always-on post-mortem capture at ring-buffer cost.
//
// Export is offline: after a run completes (a happens-before edge — the
// fleet joins its workers before exporting) the Tracer merges every
// recorder into a Chrome Trace Event / Perfetto JSON document, one process
// per device and one host-session track per device, with per-frame flow
// links so a single scroll gesture is visible end to end in ui.perfetto.dev.
//
// The package is dependency-free (standard library only) and distinct from
// internal/trace, which records and replays whole sessions as
// distance-signal documents.
package tracing

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Hop identifies one pipeline stage a frame passed through. The values are
// stable export names (see String); outcome variants of the session stage
// are encoded in the event's Arg2 field, not as separate hops, so the demux
// hot path records exactly one event per frame.
type Hop uint8

// Pipeline hops in causal order.
const (
	// HopFirmwareSample is the frame's birth: the firmware cycle that
	// sampled the sensor and emitted the message. Arg carries the message
	// kind.
	HopFirmwareSample Hop = iota + 1
	// HopArqEnqueue is the reliable sender accepting a payload. Arg carries
	// the queue depth at admission.
	HopArqEnqueue
	// HopArqTx and HopArqRetx are transmissions into the inner channel; Arg
	// carries the attempt number (1 for HopArqTx, >= 2 for HopArqRetx).
	HopArqTx
	HopArqRetx
	// HopArqAck is a cumulative acknowledgement arriving back at the
	// sender; Arg carries how many frames it confirmed.
	HopArqAck
	// HopArqOverflow is the drop-oldest backlog policy abandoning a
	// payload; Arg carries the skip-filler width after the merge.
	HopArqOverflow
	// HopArqExhausted is the retry budget abandoning an in-flight frame;
	// Arg carries the attempt count it died at.
	HopArqExhausted
	// HopLinkDeliver is a frame surviving the channel (CRC-clean at the
	// decoder); HopLinkDrop is the channel losing one (Arg 1 when a burst
	// swallowed it, 0 for independent loss).
	HopLinkDeliver
	HopLinkDrop
	// HopHubDemux is the host routing a decoded frame to its session. It is
	// the single event the demux hot path records: Arg carries the
	// device-side origin tick in milliseconds (so the exporter can
	// reconstruct the end-to-end span without re-decoding), Arg2 packs
	// outcome<<8 | message kind (see Outcome).
	HopHubDemux
	// HopSessionGap is the post-drain audit: the run finished with
	// sequence numbers missing. Arg carries how many.
	HopSessionGap
	// HopSessionSLO is a frame whose end-to-end latency exceeded the
	// configured SLO. Arg carries the latency in milliseconds.
	HopSessionSLO
	// HopNetIngest is the networked-hub gateway decoding a frame off the
	// wire (TCP or loopback) before demuxing it into a shard. Arg carries
	// the device-side origin tick in milliseconds, Arg2 the shard index.
	HopNetIngest
)

// String returns the stable export name of the hop.
func (h Hop) String() string {
	switch h {
	case HopFirmwareSample:
		return "firmware.sample"
	case HopArqEnqueue:
		return "arq.enqueue"
	case HopArqTx:
		return "arq.tx"
	case HopArqRetx:
		return "arq.retx"
	case HopArqAck:
		return "arq.ack"
	case HopArqOverflow:
		return "arq.overflow"
	case HopArqExhausted:
		return "arq.retry_exhausted"
	case HopLinkDeliver:
		return "link.deliver"
	case HopLinkDrop:
		return "link.drop"
	case HopHubDemux:
		return "hub.demux"
	case HopSessionGap:
		return "session.gap"
	case HopSessionSLO:
		return "session.slo_breach"
	case HopNetIngest:
		return "net.ingest"
	default:
		return fmt.Sprintf("hop(%d)", uint8(h))
	}
}

// Outcome is the session's verdict on one demuxed frame, packed into the
// high bits of a HopHubDemux event's Arg2.
type Outcome uint8

// Session admission outcomes.
const (
	// OutcomeAdmit is the common case: the frame became (or could become)
	// an event.
	OutcomeAdmit Outcome = iota
	// OutcomeStale is a reliable-mode retransmit duplicate of an already
	// consumed frame.
	OutcomeStale
	// OutcomeAhead is a reliable-mode frame deferred because a predecessor
	// is still in flight.
	OutcomeAhead
	// OutcomeResync is an admitted MsgSkip abandonment notice: the session
	// advanced past a hole the sender gave up on.
	OutcomeResync
	// OutcomeDuplicate and OutcomeReordered are the unreliable-mode
	// sequence accounting verdicts.
	OutcomeDuplicate
	OutcomeReordered
)

// String returns the export name of the outcome, as a session-stage span
// name ("session.admit", "session.stale", ...).
func (o Outcome) String() string {
	switch o {
	case OutcomeAdmit:
		return "session.admit"
	case OutcomeStale:
		return "session.stale"
	case OutcomeAhead:
		return "session.ahead"
	case OutcomeResync:
		return "session.resync"
	case OutcomeDuplicate:
		return "session.duplicate"
	case OutcomeReordered:
		return "session.reordered"
	default:
		return fmt.Sprintf("session.outcome(%d)", uint8(o))
	}
}

// PackDemux packs a session outcome and message kind into a HopHubDemux
// Arg2; UnpackDemux reverses it.
func PackDemux(o Outcome, kind uint8) uint32 { return uint32(o)<<8 | uint32(kind) }

// UnpackDemux splits a HopHubDemux Arg2 into outcome and message kind.
func UnpackDemux(arg2 uint32) (Outcome, uint8) { return Outcome(arg2 >> 8), uint8(arg2) }

// netIngestPipelined flags a HopNetIngest Arg2 whose frame crossed the
// gateway's per-shard single-writer pipeline (ring hand-off + shard worker)
// rather than the direct synchronous consume path.
const netIngestPipelined = 1 << 31

// PackNetIngest packs a HopNetIngest Arg2: the hub shard the frame routed
// to, plus whether it travelled the pipelined (ring hand-off) or the direct
// ingest path. UnpackNetIngest reverses it.
func PackNetIngest(shard int, pipelined bool) uint32 {
	arg := uint32(shard)
	if pipelined {
		arg |= netIngestPipelined
	}
	return arg
}

// UnpackNetIngest splits a HopNetIngest Arg2 into shard index and the
// pipelined flag.
func UnpackNetIngest(arg2 uint32) (shard int, pipelined bool) {
	return int(arg2 &^ netIngestPipelined), arg2&netIngestPipelined != 0
}

// Event is one recorded hop. It is a plain value of three word-aligned
// fields so the hot-path ring write is three simple stores; the meaning of
// Arg and Arg2 depends on the hop (see the Hop constants).
type Event struct {
	// At is the virtual time the hop happened.
	At time.Duration
	// args packs Arg (low 32 bits) and Arg2 (high 32) — the hop-specific
	// payload (attempt counts, origin ticks, packed outcomes) lands with
	// one aligned 64-bit store instead of two. Use Arg and Arg2 to read.
	args uint64
	// Meta packs the frame's wrapping sequence number (low 16 bits) with
	// the pipeline hop (next 8) — one aligned store instead of two partial
	// ones, and the hop half folds to a constant at every Record call
	// site. Use Seq and Hop to read.
	Meta uint32
}

// packMeta builds an Event.Meta word.
func packMeta(hop Hop, seq uint16) uint32 { return uint32(seq) | uint32(hop)<<16 }

// Seq returns the frame's wrapping sequence number — together with the
// recorder's device id it is the trace context identifying the frame.
func (e Event) Seq() uint16 { return uint16(e.Meta) }

// Hop returns the pipeline stage.
func (e Event) Hop() Hop { return Hop(e.Meta >> 16) }

// Arg returns the first hop-specific payload word.
func (e Event) Arg() uint32 { return uint32(e.args) }

// Arg2 returns the second hop-specific payload word.
func (e Event) Arg2() uint32 { return uint32(e.args >> 32) }

// Config parameterises a Tracer. The zero value is a retain-everything
// tracer with no flight recorder and no SLO.
type Config struct {
	// Capacity is the per-recorder event capacity. For bounded (flight
	// recorder) tracers it is rounded up to a power of two and the ring
	// keeps the most recent Capacity events; for unbounded tracers it is
	// the initial allocation, grown as needed. <= 0 takes 4096.
	Capacity int
	// Bounded selects flight-recorder mode: the buffer is a ring that
	// overwrites the oldest events, recording never allocates, and
	// anomalies dump the ring. Unbounded tracers retain every event for a
	// complete export.
	Bounded bool
	// SLO is the end-to-end latency objective (device origin tick → host
	// admission). A frame exceeding it is an anomaly. Zero disables the
	// check.
	SLO time.Duration
	// DumpTo receives plain-text post-mortem dumps when an anomaly fires.
	// Nil disables automatic dumps (anomaly events are still recorded).
	DumpTo io.Writer
	// DumpEvents bounds how many trailing events one dump prints. <= 0
	// takes 32.
	DumpEvents int
	// MaxDumps bounds automatic dumps per tracer so a pathological run
	// (every frame breaching the SLO) cannot flood the writer. <= 0 takes
	// 8.
	MaxDumps int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.Bounded {
		// Power-of-two ring so the hot-path index is one AND.
		n := 1
		for n < c.Capacity {
			n <<= 1
		}
		c.Capacity = n
	}
	if c.DumpEvents <= 0 {
		c.DumpEvents = 32
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 8
	}
	return c
}

// Tracer owns the per-device recorders of one run and the shared anomaly
// dump sink. NewRecorder may be called concurrently; everything else on the
// hot path is per-recorder and lock-free.
type Tracer struct {
	cfg Config

	mu   sync.Mutex // guards recs and serialises dumps
	recs []*Recorder

	dumps atomic.Uint64
}

// New returns a tracer with the given configuration.
func New(cfg Config) *Tracer {
	return &Tracer{cfg: cfg.withDefaults()}
}

// SLO returns the configured end-to-end latency objective (zero when
// disabled). Nil-safe.
func (t *Tracer) SLO() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.SLO
}

// Bounded reports whether the tracer runs in flight-recorder (bounded ring)
// mode.
func (t *Tracer) Bounded() bool { return t != nil && t.cfg.Bounded }

// Dumps returns how many automatic post-mortem dumps have fired.
func (t *Tracer) Dumps() uint64 {
	if t == nil {
		return 0
	}
	return t.dumps.Load()
}

// NewRecorder registers and returns a recorder for one device's pipeline.
// The label names the recorder in dumps; device is the wire id stamped on
// every event at export. Nil-safe: a nil tracer hands out a nil recorder,
// whose Record is a no-op, so call sites need no conditionals.
func (t *Tracer) NewRecorder(label string, device uint32) *Recorder {
	if t == nil {
		return nil
	}
	r := &Recorder{t: t, label: label, dev: device}
	if t.cfg.Bounded {
		r.buf = make([]Event, t.cfg.Capacity)
		r.mask = uint64(t.cfg.Capacity - 1)
	} else {
		r.buf = make([]Event, 0, t.cfg.Capacity)
	}
	t.mu.Lock()
	t.recs = append(t.recs, r)
	t.mu.Unlock()
	return r
}

// Recorders returns the registered recorders in creation order.
func (t *Tracer) Recorders() []*Recorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Recorder, len(t.recs))
	copy(out, t.recs)
	return out
}

// Recorder is one goroutine's event buffer. It is single-writer: only the
// goroutine driving the owning device's scheduler may Record, which is
// exactly how the simulator runs a device's pipeline. Readers (export,
// dumps) either run on that same goroutine (anomaly dumps) or after the run
// joined its workers (export), so no synchronisation is needed and the hot
// path stays a plain store.
type Recorder struct {
	t     *Tracer
	label string
	dev   uint32

	// mask != 0 selects ring mode: buf is fully allocated and the write
	// index is n & mask. mask == 0 grows buf by append.
	mask uint64
	buf  []Event
	n    uint64
}

// Device returns the wire id this recorder traces.
func (r *Recorder) Device() uint32 {
	if r == nil {
		return 0
	}
	return r.dev
}

// Label returns the recorder's dump label.
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// SLO returns the owning tracer's latency objective, zero for a nil
// recorder — so a session can gate its per-frame check on one branch.
func (r *Recorder) SLO() time.Duration {
	if r == nil {
		return 0
	}
	return r.t.cfg.SLO
}

// Record appends one hop event. It is the hot-path primitive: nil-safe, and
// in ring mode a masked index plus four aligned stores — no lock, no
// atomic, no allocation. hop is a constant at every call site, so the Meta
// packing folds to one OR with an immediate.
func (r *Recorder) Record(hop Hop, seq uint16, at time.Duration, arg, arg2 uint32) {
	if r == nil {
		return
	}
	a, meta := uint64(arg)|uint64(arg2)<<32, packMeta(hop, seq)
	if r.mask != 0 {
		e := &r.buf[r.n&r.mask]
		e.At, e.args, e.Meta = at, a, meta
	} else {
		r.buf = append(r.buf, Event{At: at, args: a, Meta: meta})
	}
	r.n++
}

// Len returns how many events the recorder retains (ring mode caps at the
// ring size); Total how many were ever recorded.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.mask != 0 {
		if r.n < uint64(len(r.buf)) {
			return int(r.n)
		}
		return len(r.buf)
	}
	return len(r.buf)
}

// Total returns how many events were ever recorded (including ones a ring
// has overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Events returns the retained events in recording order. In ring mode the
// oldest retained event comes first. The slice is a copy; call only from
// the owning goroutine or after the run quiesced.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if r.mask == 0 {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	n := r.Len()
	out := make([]Event, 0, n)
	start := uint64(0)
	if r.n > uint64(len(r.buf)) {
		start = r.n - uint64(len(r.buf))
	}
	for i := start; i < r.n; i++ {
		out = append(out, r.buf[i&r.mask])
	}
	return out
}

// Anomaly records the event and, when the owning tracer has a dump sink,
// fires a plain-text post-mortem dump of the recorder's trailing events.
// The reason string should name the failure precisely (it is the dump
// headline); this path is rare, so it may allocate.
func (r *Recorder) Anomaly(hop Hop, seq uint16, at time.Duration, arg, arg2 uint32, reason string) {
	if r == nil {
		return
	}
	r.Record(hop, seq, at, arg, arg2)
	r.t.dump(r, at, reason, nil)
}

// AnomalyNote is Anomaly with an attachment: after the trailing events,
// note is invoked (under the dump serialisation lock) to append extra
// post-mortem context — e.g. the telemetry history table around an SLO
// breach. A nil note behaves exactly like Anomaly.
func (r *Recorder) AnomalyNote(hop Hop, seq uint16, at time.Duration, arg, arg2 uint32, reason string, note func(io.Writer)) {
	if r == nil {
		return
	}
	r.Record(hop, seq, at, arg, arg2)
	r.t.dump(r, at, reason, note)
}

// dump writes one post-mortem of the triggering recorder, bounded by
// MaxDumps. Serialised by the tracer mutex so interleaved devices cannot
// shred each other's output.
func (t *Tracer) dump(r *Recorder, at time.Duration, reason string, note func(io.Writer)) {
	if t.cfg.DumpTo == nil {
		return
	}
	if t.dumps.Add(1) > uint64(t.cfg.MaxDumps) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.cfg.DumpTo
	fmt.Fprintf(w, "FLIGHT RECORDER dump #%d · %s (device %d) at %v\n",
		t.dumps.Load(), r.label, r.dev, at)
	fmt.Fprintf(w, "  anomaly: %s\n", reason)
	events := r.Events()
	if n := t.cfg.DumpEvents; len(events) > n {
		events = events[len(events)-n:]
	}
	fmt.Fprintf(w, "  last %d events:\n", len(events))
	for _, e := range events {
		writeEventLine(w, r.dev, e)
	}
	if note != nil {
		note(w)
	}
}

// WriteText writes a complete plain-text dump of every recorder — the
// manual post-mortem (the automatic one fires per anomaly).
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, r := range t.Recorders() {
		if _, err := fmt.Fprintf(w, "%s (device %d): %d events recorded, %d retained\n",
			r.label, r.dev, r.Total(), r.Len()); err != nil {
			return err
		}
		for _, e := range r.Events() {
			if err := writeEventLine(w, r.dev, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeEventLine prints one event in the dump format.
func writeEventLine(w io.Writer, dev uint32, e Event) error {
	var err error
	switch e.Hop() {
	case HopHubDemux:
		outcome, kind := UnpackDemux(e.Arg2())
		_, err = fmt.Fprintf(w, "    %12v  %-20s dev=%d seq=%d kind=%d origin=%dms → %s\n",
			e.At, e.Hop(), dev, e.Seq(), kind, e.Arg(), outcome)
	default:
		_, err = fmt.Fprintf(w, "    %12v  %-20s dev=%d seq=%d arg=%d\n",
			e.At, e.Hop(), dev, e.Seq(), e.Arg())
	}
	return err
}
