package tracing

import (
	"testing"
	"time"
)

// The recording hot path must never allocate: in ring (flight recorder)
// mode the buffer is fully preallocated, and in retain-all mode a pre-sized
// capacity covers the run. These contracts keep tracing admissible inside
// the zero-allocation frame pipeline (see internal/rf and internal/core
// zeroalloc tests, which cover the traced pipeline end to end).

func TestRecordRingZeroAlloc(t *testing.T) {
	tr := New(Config{Capacity: 1024, Bounded: true})
	r := tr.NewRecorder("dev", 1)
	var seq uint16
	avg := testing.AllocsPerRun(10000, func() {
		seq++
		r.Record(HopHubDemux, seq, time.Duration(seq)*time.Millisecond,
			uint32(seq), PackDemux(OutcomeAdmit, 1))
	})
	if avg != 0 {
		t.Fatalf("ring Record allocates %.2f allocs/op, want 0", avg)
	}
}

func TestRecordPreSizedZeroAlloc(t *testing.T) {
	const n = 10000
	tr := New(Config{Capacity: n + 16})
	r := tr.NewRecorder("dev", 1)
	var seq uint16
	avg := testing.AllocsPerRun(n, func() {
		seq++
		r.Record(HopLinkDeliver, seq, time.Duration(seq)*time.Millisecond, 0, 0)
	})
	if avg != 0 {
		t.Fatalf("pre-sized Record allocates %.2f allocs/op, want 0", avg)
	}
}

func TestNilRecordZeroAlloc(t *testing.T) {
	var r *Recorder
	avg := testing.AllocsPerRun(10000, func() {
		r.Record(HopArqTx, 1, time.Millisecond, 1, 0)
	})
	if avg != 0 {
		t.Fatalf("nil Record allocates %.2f allocs/op, want 0", avg)
	}
}
