package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := NewRand(9)
	child := a.Split()
	// Child stream must not simply mirror the parent.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream mirrors parent (%d/100 matches)", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRand(4)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 8)
		if v < -3 || v >= 8 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(5)
	if r.Intn(0) != 0 || r.Intn(-4) != 0 {
		t.Fatal("Intn of non-positive n should be 0")
	}
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) did not cover all values: %v", seen)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRand(6)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) rate = %.3f", rate)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRand(8)
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(2, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("mean = %.3f, want 2", mean)
	}
	if math.Abs(sd-3) > 0.06 {
		t.Fatalf("sd = %.3f, want 3", sd)
	}
}

func TestNormZeroSD(t *testing.T) {
	r := NewRand(1)
	if v := r.Norm(5, 0); v != 5 {
		t.Fatalf("Norm with sd=0 returned %v", v)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("Exp mean = %.3f, want 2", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(12)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
