package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. The callback receives the time at which it
// fires.
type Event struct {
	At time.Duration
	Do func(at time.Duration)

	seq int // tie-break so equal-time events fire in schedule order
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic(fmt.Sprintf("sim: pushed %T onto event queue", x))
	}
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// HeapScheduler executes events in virtual-time order on a shared Clock
// using a comparison heap of individually allocated events. It is the
// original scheduler implementation, kept as the executable reference
// semantics for the timing-wheel Scheduler: the differential tests drive
// both with identical schedules and require identical event order.
//
// It is single-threaded by design: callbacks run on the caller's goroutine.
type HeapScheduler struct {
	clock   *Clock
	queue   eventQueue
	nextSeq int
	stopped bool
}

// NewHeapScheduler returns a heap-based scheduler driving the given clock.
func NewHeapScheduler(clock *Clock) *HeapScheduler {
	return &HeapScheduler{clock: clock}
}

// Clock returns the scheduler's clock.
func (s *HeapScheduler) Clock() *Clock { return s.clock }

// At schedules fn to run at absolute virtual time t. Events scheduled in the
// past run at the current time.
func (s *HeapScheduler) At(t time.Duration, fn func(at time.Duration)) {
	if t < s.clock.Now() {
		t = s.clock.Now()
	}
	ev := &Event{At: t, Do: fn, seq: s.nextSeq}
	s.nextSeq++
	heap.Push(&s.queue, ev)
}

// After schedules fn to run d after the current virtual time.
func (s *HeapScheduler) After(d time.Duration, fn func(at time.Duration)) {
	s.At(s.clock.Now()+d, fn)
}

// Every schedules fn to run periodically with the given period, starting one
// period from now, until the returned cancel function is called. A
// non-positive period schedules nothing and returns a no-op cancel: at fleet
// horizons a silently clamped period would be an event storm, so the
// degenerate case is an explicit no-op instead (see EventScheduler).
func (s *HeapScheduler) Every(period time.Duration, fn func(at time.Duration)) (cancel func()) {
	if period <= 0 {
		return func() {}
	}
	active := true
	var tick func(at time.Duration)
	tick = func(at time.Duration) {
		if !active {
			return
		}
		fn(at)
		if active {
			s.At(at+period, tick)
		}
	}
	s.At(s.clock.Now()+period, tick)
	return func() { active = false }
}

// Pending reports the number of queued events.
func (s *HeapScheduler) Pending() int { return len(s.queue) }

// Stop aborts a Run in progress (from inside a callback).
func (s *HeapScheduler) Stop() { s.stopped = true }

// Step executes the next queued event, advancing the clock to its time.
// It reports whether an event was executed.
func (s *HeapScheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev, ok := heap.Pop(&s.queue).(*Event)
	if !ok {
		return false
	}
	s.clock.Set(ev.At)
	ev.Do(ev.At)
	return true
}

// Run executes events until the queue is empty or the horizon is passed.
// When it returns nil the clock is at the horizon — on a clean drain the
// clock advances the rest of the way so elapsed time is the same whether or
// not a device had late events. Run returns ErrStopped if Stop was called,
// leaving the clock at the stopping event's time.
func (s *HeapScheduler) Run(horizon time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		if s.queue[0].At > horizon {
			s.clock.Set(horizon)
			return nil
		}
		s.Step()
	}
	if s.stopped {
		return ErrStopped
	}
	s.clock.Set(horizon)
	return nil
}
