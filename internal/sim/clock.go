// Package sim provides the deterministic simulation substrate used by every
// other package in this repository: a virtual clock, an event scheduler and
// a seeded random source.
//
// Nothing in the simulation reads wall-clock time. All models advance on a
// *Clock owned by the caller, which makes every experiment reproducible from
// its seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Scheduler.Run when the scheduler was stopped
// before the horizon was reached.
var ErrStopped = errors.New("scheduler stopped")

// Clock is a virtual clock. The zero value starts at t=0.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock starting at the given offset.
func NewClock(start time.Duration) *Clock {
	return &Clock{now: start}
}

// Now reports the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative values are ignored: virtual
// time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Set moves the clock to an absolute time. It is a no-op if t is in the
// past relative to the clock.
func (c *Clock) Set(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Event is a scheduled callback. The callback receives the time at which it
// fires.
type Event struct {
	At time.Duration
	Do func(at time.Duration)

	seq int // tie-break so equal-time events fire in schedule order
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic(fmt.Sprintf("sim: pushed %T onto event queue", x))
	}
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Scheduler executes events in virtual-time order on a shared Clock.
// It is single-threaded by design: callbacks run on the caller's goroutine.
type Scheduler struct {
	clock   *Clock
	queue   eventQueue
	nextSeq int
	stopped bool
}

// NewScheduler returns a scheduler driving the given clock.
func NewScheduler(clock *Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// At schedules fn to run at absolute virtual time t. Events scheduled in the
// past run at the current time.
func (s *Scheduler) At(t time.Duration, fn func(at time.Duration)) {
	if t < s.clock.Now() {
		t = s.clock.Now()
	}
	ev := &Event{At: t, Do: fn, seq: s.nextSeq}
	s.nextSeq++
	heap.Push(&s.queue, ev)
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func(at time.Duration)) {
	s.At(s.clock.Now()+d, fn)
}

// Every schedules fn to run periodically with the given period, starting one
// period from now, until the returned cancel function is called.
func (s *Scheduler) Every(period time.Duration, fn func(at time.Duration)) (cancel func()) {
	if period <= 0 {
		period = time.Nanosecond
	}
	active := true
	var tick func(at time.Duration)
	tick = func(at time.Duration) {
		if !active {
			return
		}
		fn(at)
		if active {
			s.At(at+period, tick)
		}
	}
	s.At(s.clock.Now()+period, tick)
	return func() { active = false }
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Stop aborts a Run in progress (from inside a callback).
func (s *Scheduler) Stop() { s.stopped = true }

// Step executes the next queued event, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev, ok := heap.Pop(&s.queue).(*Event)
	if !ok {
		return false
	}
	s.clock.Set(ev.At)
	ev.Do(ev.At)
	return true
}

// Run executes events until the queue is empty or the horizon is passed.
// The clock is left at the time of the last executed event (or at horizon if
// no event reached it). Run returns ErrStopped if Stop was called.
func (s *Scheduler) Run(horizon time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		if s.queue[0].At > horizon {
			s.clock.Set(horizon)
			return nil
		}
		s.Step()
	}
	return nil
}
