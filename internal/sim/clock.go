// Package sim provides the deterministic simulation substrate used by every
// other package in this repository: a virtual clock, an event scheduler and
// a seeded random source.
//
// Nothing in the simulation reads wall-clock time. All models advance on a
// *Clock owned by the caller, which makes every experiment reproducible from
// its seed.
//
// Two scheduler implementations share one contract (EventScheduler): the
// default Scheduler is a hierarchical timing wheel with slab-allocated event
// storage (no per-event allocation, no comparison heap on the hot path), and
// HeapScheduler is the original container/heap implementation kept as the
// executable reference semantics. A differential test drives both with the
// same schedules and requires identical event order, so per-seed determinism
// is provable rather than assumed.
package sim

import (
	"errors"
	"time"
)

// ErrStopped is returned by Run when the scheduler was stopped before the
// horizon was reached.
var ErrStopped = errors.New("scheduler stopped")

// Clock is a virtual clock. The zero value starts at t=0.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock starting at the given offset.
func NewClock(start time.Duration) *Clock {
	return &Clock{now: start}
}

// Now reports the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative values are ignored: virtual
// time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Set moves the clock to an absolute time. It is a no-op if t is in the
// past relative to the clock.
func (c *Clock) Set(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// EventScheduler is the contract both scheduler implementations satisfy.
// Every caller in the repository (firmware tick, ARQ retransmit timers, link
// delivery, fleet scripts) programs against this interface, so the wheel and
// the heap are interchangeable — and differentially testable.
//
// Semantics all implementations must share:
//
//   - Events run in (time, schedule order): equal-time events fire FIFO.
//   - Events scheduled in the past clamp to the current time and still run.
//   - Events scheduled from inside a callback at the current time run within
//     the same Run, after the already-queued equal-time events.
//   - Every with a non-positive period schedules nothing and returns a
//     callable no-op cancel (see Scheduler.Every).
//   - Run leaves the clock exactly at the horizon when it returns nil —
//     whether the queue drained early or the next event lies beyond it — and
//     at the stopping event's time when it returns ErrStopped.
type EventScheduler interface {
	// Clock returns the scheduler's clock.
	Clock() *Clock
	// At schedules fn to run at absolute virtual time t. Events scheduled
	// in the past run at the current time.
	At(t time.Duration, fn func(at time.Duration))
	// After schedules fn to run d after the current virtual time.
	After(d time.Duration, fn func(at time.Duration))
	// Every schedules fn to run periodically with the given period, starting
	// one period from now, until the returned cancel function is called.
	// A non-positive period schedules nothing and returns a no-op cancel.
	Every(period time.Duration, fn func(at time.Duration)) (cancel func())
	// Step executes the next queued event, advancing the clock to its time.
	// It reports whether an event was executed.
	Step() bool
	// Run executes events until the queue is empty or the horizon is passed,
	// leaving the clock at the horizon. It returns ErrStopped if Stop was
	// called from a callback.
	Run(horizon time.Duration) error
	// Pending reports the number of queued events.
	Pending() int
	// Stop aborts a Run in progress (from inside a callback).
	Stop()
}

var (
	_ EventScheduler = (*Scheduler)(nil)
	_ EventScheduler = (*HeapScheduler)(nil)
)
