package sim

import (
	"errors"
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(time.Second)
	if c.Now() != time.Second {
		t.Fatalf("after advance: %v", c.Now())
	}
	c.Advance(-time.Hour)
	if c.Now() != time.Second {
		t.Fatal("clock ran backwards on negative advance")
	}
	c.Set(500 * time.Millisecond)
	if c.Now() != time.Second {
		t.Fatal("Set moved the clock into the past")
	}
	c.Set(2 * time.Second)
	if c.Now() != 2*time.Second {
		t.Fatalf("Set: %v", c.Now())
	}
}

// schedulers enumerates both implementations so every semantic test runs
// against the wheel and the heap reference: the contract in EventScheduler
// is what the differential tests prove they share.
func schedulers() map[string]func(*Clock) EventScheduler {
	return map[string]func(*Clock) EventScheduler{
		"wheel": func(c *Clock) EventScheduler { return NewScheduler(c) },
		"heap":  func(c *Clock) EventScheduler { return NewHeapScheduler(c) },
	}
}

func TestSchedulerOrdersEvents(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk(NewClock(0))
			var order []int
			s.At(30*time.Millisecond, func(time.Duration) { order = append(order, 3) })
			s.At(10*time.Millisecond, func(time.Duration) { order = append(order, 1) })
			s.At(20*time.Millisecond, func(time.Duration) { order = append(order, 2) })
			if err := s.Run(time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			want := []int{1, 2, 3}
			for i := range want {
				if order[i] != want[i] {
					t.Fatalf("order = %v, want %v", order, want)
				}
			}
		})
	}
}

func TestSchedulerEqualTimesFIFO(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk(NewClock(0))
			var order []int
			for i := 0; i < 10; i++ {
				i := i
				s.At(time.Millisecond, func(time.Duration) { order = append(order, i) })
			}
			if err := s.Run(time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			for i := range order {
				if order[i] != i {
					t.Fatalf("equal-time events not FIFO: %v", order)
				}
			}
		})
	}
}

// Equal-time FIFO must hold even when the events enter from different wheel
// levels: one scheduled far ahead (level 3 at insert time), one scheduled at
// the same instant from close range (level 0 at insert time).
func TestSchedulerEqualTimesFIFOAcrossLevels(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk(NewClock(0))
			target := 100 * time.Millisecond
			var order []int
			s.At(target, func(time.Duration) { order = append(order, 1) }) // far: coarse level
			s.At(target-time.Nanosecond, func(at time.Duration) {
				// Scheduled 1 ns before the target, from where the target is
				// a level-0 insert.
				s.At(target, func(time.Duration) { order = append(order, 2) })
			})
			if err := s.Run(time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(order) != 2 || order[0] != 1 || order[1] != 2 {
				t.Fatalf("cross-level equal-time order = %v, want [1 2]", order)
			}
		})
	}
}

// Events scheduled from inside a callback at the callback's own time run in
// the same tick (same Run, same virtual instant), after already-queued
// equal-time events.
func TestSchedulerCallbackSchedulesSameTick(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk(NewClock(0))
			var order []int
			s.At(time.Millisecond, func(at time.Duration) {
				order = append(order, 1)
				s.At(at, func(inner time.Duration) {
					if inner != at {
						t.Fatalf("nested event at %v, want %v", inner, at)
					}
					order = append(order, 3)
				})
			})
			s.At(time.Millisecond, func(time.Duration) { order = append(order, 2) })
			if err := s.Run(time.Millisecond); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
				t.Fatalf("order = %v, want [1 2 3]", order)
			}
		})
	}
}

func TestSchedulerPastEventsRunNow(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			c := NewClock(time.Second)
			s := mk(c)
			var at time.Duration
			s.At(100*time.Millisecond, func(now time.Duration) { at = now })
			if !s.Step() {
				t.Fatal("Step found no event")
			}
			if at != time.Second {
				t.Fatalf("past event ran at %v, want clamped to now (1s)", at)
			}
		})
	}
}

func TestSchedulerHorizonStopsBeforeLaterEvents(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk(NewClock(0))
			ran := false
			s.At(2*time.Second, func(time.Duration) { ran = true })
			if err := s.Run(time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if ran {
				t.Fatal("event beyond the horizon ran")
			}
			if s.Clock().Now() != time.Second {
				t.Fatalf("clock at %v, want horizon 1s", s.Clock().Now())
			}
			if s.Pending() != 1 {
				t.Fatalf("pending = %d, want 1", s.Pending())
			}
			// A later Run executes it.
			if err := s.Run(3 * time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !ran {
				t.Fatal("event did not run after horizon extension")
			}
		})
	}
}

// Run must leave the clock at the horizon when the queue drains early, so
// Elapsed is consistent across devices regardless of when their last event
// fired (regression test for the doc/behaviour mismatch fixed in PR 6).
func TestSchedulerRunDrainsToHorizon(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk(NewClock(0))
			s.At(100*time.Millisecond, func(time.Duration) {})
			if err := s.Run(time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if s.Clock().Now() != time.Second {
				t.Fatalf("clock at %v after clean drain, want horizon 1s", s.Clock().Now())
			}
			// An empty queue still advances to the horizon.
			if err := s.Run(5 * time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if s.Clock().Now() != 5*time.Second {
				t.Fatalf("clock at %v after empty Run, want 5s", s.Clock().Now())
			}
		})
	}
}

func TestSchedulerEveryAndCancel(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk(NewClock(0))
			count := 0
			cancel := s.Every(100*time.Millisecond, func(time.Duration) { count++ })
			if err := s.Run(time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if count != 10 {
				t.Fatalf("ticks = %d, want 10", count)
			}
			cancel()
			if err := s.Run(2 * time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if count != 10 {
				t.Fatalf("ticks after cancel = %d, want 10", count)
			}
		})
	}
}

// Every with a non-positive period must be a no-op, not a 1 ns event storm
// (regression test for the clamp fixed in PR 6): at a fleet horizon of one
// virtual second the old clamp meant a billion events.
func TestSchedulerEveryNonPositivePeriod(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			for _, period := range []time.Duration{0, -time.Millisecond} {
				s := mk(NewClock(0))
				count := 0
				cancel := s.Every(period, func(time.Duration) { count++ })
				if s.Pending() != 0 {
					t.Fatalf("Every(%v) queued %d events, want 0", period, s.Pending())
				}
				if err := s.Run(time.Second); err != nil {
					t.Fatalf("Run: %v", err)
				}
				if count != 0 {
					t.Fatalf("Every(%v) ticked %d times, want 0", period, count)
				}
				cancel() // must be callable
			}
		})
	}
}

func TestSchedulerStopFromCallback(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk(NewClock(0))
			count := 0
			s.Every(10*time.Millisecond, func(time.Duration) {
				count++
				if count == 3 {
					s.Stop()
				}
			})
			err := s.Run(time.Second)
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("Run error = %v, want ErrStopped", err)
			}
			if count != 3 {
				t.Fatalf("count = %d, want 3", count)
			}
			// The clock stays at the stopping event's time, not the horizon.
			if s.Clock().Now() != 30*time.Millisecond {
				t.Fatalf("clock at %v after Stop, want 30ms", s.Clock().Now())
			}
		})
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			c := NewClock(5 * time.Second)
			s := mk(c)
			var at time.Duration
			s.After(time.Second, func(now time.Duration) { at = now })
			if err := s.Run(10 * time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if at != 6*time.Second {
				t.Fatalf("After event at %v, want 6s", at)
			}
		})
	}
}

// Far-future events cross the wheel's overflow list; they must still fire at
// their exact times and in order with near events.
func TestSchedulerFarFutureEvents(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			s := mk(NewClock(0))
			var order []time.Duration
			note := func(at time.Duration) { order = append(order, at) }
			s.At(time.Hour, note)       // far beyond the level-3 block
			s.At(10*time.Second, note)  // beyond level 3 too
			s.At(time.Millisecond, note)
			s.At(30*time.Minute, note)
			if err := s.Run(2 * time.Hour); err != nil {
				t.Fatalf("Run: %v", err)
			}
			want := []time.Duration{time.Millisecond, 10 * time.Second, 30 * time.Minute, time.Hour}
			if len(order) != len(want) {
				t.Fatalf("fired %v, want %v", order, want)
			}
			for i := range want {
				if order[i] != want[i] {
					t.Fatalf("fired %v, want %v", order, want)
				}
			}
		})
	}
}
