package sim

import (
	"errors"
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(time.Second)
	if c.Now() != time.Second {
		t.Fatalf("after advance: %v", c.Now())
	}
	c.Advance(-time.Hour)
	if c.Now() != time.Second {
		t.Fatal("clock ran backwards on negative advance")
	}
	c.Set(500 * time.Millisecond)
	if c.Now() != time.Second {
		t.Fatal("Set moved the clock into the past")
	}
	c.Set(2 * time.Second)
	if c.Now() != 2*time.Second {
		t.Fatalf("Set: %v", c.Now())
	}
}

func TestSchedulerOrdersEvents(t *testing.T) {
	s := NewScheduler(NewClock(0))
	var order []int
	s.At(30*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	s.At(10*time.Millisecond, func(time.Duration) { order = append(order, 1) })
	s.At(20*time.Millisecond, func(time.Duration) { order = append(order, 2) })
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerEqualTimesFIFO(t *testing.T) {
	s := NewScheduler(NewClock(0))
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func(time.Duration) { order = append(order, i) })
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulerPastEventsRunNow(t *testing.T) {
	c := NewClock(time.Second)
	s := NewScheduler(c)
	var at time.Duration
	s.At(100*time.Millisecond, func(now time.Duration) { at = now })
	if !s.Step() {
		t.Fatal("Step found no event")
	}
	if at != time.Second {
		t.Fatalf("past event ran at %v, want clamped to now (1s)", at)
	}
}

func TestSchedulerHorizonStopsBeforeLaterEvents(t *testing.T) {
	s := NewScheduler(NewClock(0))
	ran := false
	s.At(2*time.Second, func(time.Duration) { ran = true })
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("event beyond the horizon ran")
	}
	if s.Clock().Now() != time.Second {
		t.Fatalf("clock at %v, want horizon 1s", s.Clock().Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	// A later Run executes it.
	if err := s.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("event did not run after horizon extension")
	}
}

func TestSchedulerEveryAndCancel(t *testing.T) {
	s := NewScheduler(NewClock(0))
	count := 0
	cancel := s.Every(100*time.Millisecond, func(time.Duration) { count++ })
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	cancel()
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 10 {
		t.Fatalf("ticks after cancel = %d, want 10", count)
	}
}

func TestSchedulerStopFromCallback(t *testing.T) {
	s := NewScheduler(NewClock(0))
	count := 0
	s.Every(10*time.Millisecond, func(time.Duration) {
		count++
		if count == 3 {
			s.Stop()
		}
	})
	err := s.Run(time.Second)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run error = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	c := NewClock(5 * time.Second)
	s := NewScheduler(c)
	var at time.Duration
	s.After(time.Second, func(now time.Duration) { at = now })
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 6*time.Second {
		t.Fatalf("After event at %v, want 6s", at)
	}
}
