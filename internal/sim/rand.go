package sim

import "math"

// Rand is a small, fast, deterministic random source (splitmix64 core with a
// xoshiro256** state walk). It is intentionally independent of math/rand so
// that experiment streams are stable across Go releases.
type Rand struct {
	s [4]uint64

	// cached spare normal deviate for the Box-Muller transform
	hasSpare bool
	spare    float64
}

// NewRand returns a source seeded from the given value. Two sources built
// from the same seed yield identical streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent stream from this one. Use it to hand each
// model its own source so adding draws to one model does not perturb others.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo,hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0,n). It returns 0 for n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Bool reports true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, via the Box-Muller transform.
func (r *Rand) Norm(mean, sd float64) float64 {
	if sd <= 0 {
		return mean
	}
	if r.hasSpare {
		r.hasSpare = false
		return mean + sd*r.spare
	}
	var u, v, s float64
	for {
		u = r.Uniform(-1, 1)
		v = r.Uniform(-1, 1)
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + sd*u*m
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
