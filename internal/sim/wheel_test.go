package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestSchedulerDifferential drives the wheel and the heap reference with
// identical randomized schedules — bursts of equal times, nested scheduling
// from callbacks, periodic timers with cancellation, far-future overflow
// events, and staged Run horizons — and requires the exact same event
// sequence (time and identity) from both. This is the proof that swapping the
// heap for the wheel preserves per-seed determinism.
func TestSchedulerDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			wheelTrace := differentialTrace(NewScheduler(NewClock(0)), seed)
			heapTrace := differentialTrace(NewHeapScheduler(NewClock(0)), seed)
			if len(wheelTrace) != len(heapTrace) {
				t.Fatalf("trace lengths differ: wheel %d, heap %d", len(wheelTrace), len(heapTrace))
			}
			for i := range wheelTrace {
				if wheelTrace[i] != heapTrace[i] {
					t.Fatalf("traces diverge at %d: wheel %q, heap %q", i, wheelTrace[i], heapTrace[i])
				}
			}
			if len(wheelTrace) == 0 {
				t.Fatal("empty trace: the differential test exercised nothing")
			}
		})
	}
}

// differentialTrace runs one randomized schedule against s and returns the
// ordered (id, time) trace of every event execution. The schedule depends
// only on the seed, never on the scheduler, so both implementations see the
// same program.
func differentialTrace(s EventScheduler, seed uint64) []string {
	rng := NewRand(seed)
	var trace []string
	note := func(id int) func(time.Duration) {
		return func(at time.Duration) {
			trace = append(trace, fmt.Sprintf("%d@%d", id, at))
		}
	}
	nextID := 0
	id := func() int { nextID++; return nextID }

	// randomAt picks times clustered enough to force equal-time collisions
	// and spread enough to cross wheel levels and the overflow list.
	randomAt := func(now time.Duration) time.Duration {
		switch rng.Intn(4) {
		case 0: // same-slot cluster: collisions at the current millisecond
			return now + time.Duration(rng.Intn(4))*time.Millisecond
		case 1: // near future, level 0-2 territory
			return now + time.Duration(rng.Intn(2_000_000))
		case 2: // mid future, level 3 territory
			return now + time.Duration(rng.Intn(4_000_000_000))
		default: // far future: overflow list
			return now + time.Duration(4_000_000_000+rng.Intn(30_000_000_000))
		}
	}

	var cancels []func()
	for i := 0; i < 40; i++ {
		switch rng.Intn(6) {
		case 0, 1, 2:
			eid := id()
			at := randomAt(s.Clock().Now())
			nest := rng.Intn(3) == 0
			s.At(at, func(now time.Duration) {
				note(eid)(now)
				if nest {
					// Nested scheduling, sometimes at the callback's own time
					// to exercise same-tick ordering.
					inner := id()
					innerAt := now
					if rng2 := (eid+int(now))%2 == 0; rng2 {
						innerAt += time.Duration(eid%5) * time.Millisecond
					}
					s.At(innerAt, note(inner))
				}
			})
		case 3:
			s.After(time.Duration(rng.Intn(50_000_000)), note(id()))
		case 4:
			period := time.Duration(rng.Intn(20_000_000))
			if rng.Intn(5) == 0 {
				period = 0 // exercise the non-positive no-op contract
			}
			cancels = append(cancels, s.Every(period, note(id())))
		case 5:
			if len(cancels) > 0 {
				k := rng.Intn(len(cancels))
				cancels[k]()
			}
		}
		// Occasionally advance through a partial horizon mid-construction so
		// schedules interleave with execution.
		if rng.Intn(4) == 0 {
			horizon := s.Clock().Now() + time.Duration(rng.Intn(3_000_000_000))
			if err := s.Run(horizon); err != nil {
				trace = append(trace, fmt.Sprintf("err=%v", err))
			}
			trace = append(trace, fmt.Sprintf("clock@%d", s.Clock().Now()))
		}
	}
	for _, c := range cancels {
		c()
	}
	if err := s.Run(s.Clock().Now() + 10*time.Second); err != nil {
		trace = append(trace, fmt.Sprintf("err=%v", err))
	}
	trace = append(trace, fmt.Sprintf("final@%d pending=%d", s.Clock().Now(), s.Pending()))
	return trace
}

// TestSchedulerZeroAlloc pins the allocation-free contract of the wheel hot
// path: once the slab has grown to the schedule's working set, At + Step
// recycle event records through the free list and allocate nothing.
func TestSchedulerZeroAlloc(t *testing.T) {
	clock := NewClock(0)
	s := NewScheduler(clock)
	fn := func(time.Duration) {}
	// Warm the slab beyond the steady-state working set.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	for s.Step() {
	}

	allocs := testing.AllocsPerRun(1000, func() {
		s.After(40*time.Millisecond, fn)
		s.After(40*time.Millisecond, fn)
		s.After(200*time.Millisecond, fn)
		s.Step()
		s.Step()
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("scheduler hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSchedulerSlabReuse checks the free list actually recycles records: a
// sustained periodic load must not grow the slab beyond its working set.
func TestSchedulerSlabReuse(t *testing.T) {
	s := NewScheduler(NewClock(0))
	s.Every(time.Millisecond, func(time.Duration) {})
	if err := s.Run(50 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	grown := len(s.slab)
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(s.slab) != grown {
		t.Fatalf("slab grew from %d to %d under steady periodic load", grown, len(s.slab))
	}
}

func benchScheduler(b *testing.B, s EventScheduler) {
	fn := func(time.Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(40*time.Millisecond, fn)
		s.After(41*time.Millisecond, fn)
		s.After(200*time.Millisecond, fn)
		s.Step()
		s.Step()
		s.Step()
	}
}

func BenchmarkSchedulerWheel(b *testing.B) {
	benchScheduler(b, NewScheduler(NewClock(0)))
}

func BenchmarkSchedulerHeap(b *testing.B) {
	benchScheduler(b, NewHeapScheduler(NewClock(0)))
}
