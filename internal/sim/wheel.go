package sim

import (
	"math"
	"math/bits"
	"time"
)

// The timing-wheel Scheduler replaces the comparison heap on the simulation
// hot path. Motivation: a fleet device fires an event every few virtual
// milliseconds for the whole run (firmware tick, link delivery, ARQ timers),
// and the heap costs one allocation plus O(log n) pointer-chasing
// comparisons per event. The wheel stores events as values in one reusable
// slab (free-list reuse, no per-event allocation) and finds the next event
// with bitmap scans, so scheduling and dispatch are allocation-free O(1)
// amortized.
//
// Layout: wheelLevels hierarchical levels of wheelSlots slots each, at 1 ns
// tick granularity. Level k spans 2^(8(k+1)) ns: level 0 resolves single
// nanoseconds across a 256 ns aligned block, level 3 slots span ~16.8 ms
// across a ~4.3 s aligned block. Events beyond the level-3 block go to an
// overflow list and are repatriated when the wheel crosses into their block.
//
// Exactness (the determinism argument, see DESIGN.md §11): slots are
// aligned blocks of the event time's bit pattern, not offsets from "now", so
// an event's slot never depends on when it was inserted. The wheel advances
// only to event times (or the Run horizon), cascading exactly the slots that
// become current; therefore every event is executed at its exact nanosecond,
// and equal-time events preserve insertion order because
//
//   - slot lists are appended in schedule order,
//   - a cascade rewrites a whole slot in list order, and
//   - a slot only receives direct inserts after any cascade into it (a
//     cascade happens when the wheel first enters a block; direct inserts
//     into that block are only possible afterwards).
//
// The heap scheduler remains as the executable reference semantics and the
// differential tests in this package require identical event order.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	wheelWords  = wheelSlots / 64 // occupancy bitmap words per level
)

// noEvent marks an empty slot list / free-list end.
const noEvent int32 = -1

// wheelEvent is one scheduled callback stored by value in the slab.
type wheelEvent struct {
	at   int64 // absolute virtual nanoseconds
	next int32 // slab index of the next event in the same list
	fn   func(at time.Duration)
}

// wheelLevel is one resolution level: slot lists with an occupancy bitmap
// and, per slot, the minimum event time (needed for exact peeks at coarse
// levels, where a slot spans more than one nanosecond).
type wheelLevel struct {
	head [wheelSlots]int32
	tail [wheelSlots]int32
	min  [wheelSlots]int64
	bits [wheelWords]uint64
}

// Scheduler executes events in virtual-time order on a shared Clock using a
// hierarchical timing wheel. It is the default scheduler implementation; see
// HeapScheduler for the reference semantics. It is single-threaded by
// design: callbacks run on the caller's goroutine.
type Scheduler struct {
	clock *Clock
	slab  []wheelEvent
	free  int32 // free-list head into slab

	levels [wheelLevels]wheelLevel
	pos    int64 // wheel position: last advanced-to virtual nanosecond

	// overflow holds events beyond the level-3 block as a FIFO list in the
	// slab; ovMin is the exact minimum time in the list and ovCount its
	// length (maintained incrementally so Stats never walks the list).
	ovHead, ovTail int32
	ovMin          int64
	ovCount        int

	pending int
	stopped bool
}

// WheelStats is a point-in-time occupancy view of a timing-wheel scheduler —
// the live gauge source for the ops plane (sim_wheel_* metrics).
type WheelStats struct {
	// Pending is the number of queued events (all levels plus overflow).
	Pending int
	// SlotsOccupied counts non-empty slots across every level.
	SlotsOccupied int
	// Overflow is the number of events parked beyond the level-3 block.
	Overflow int
	// SlabCap is the event slab capacity (high-water mark of simultaneously
	// scheduled events since construction).
	SlabCap int
}

// Stats reports the wheel's occupancy. Cost is a popcount over the level
// bitmaps (16 words); safe only from the goroutine driving the scheduler,
// like every other method.
func (s *Scheduler) Stats() WheelStats {
	st := WheelStats{Pending: s.pending, Overflow: s.ovCount, SlabCap: len(s.slab)}
	for l := range s.levels {
		for _, w := range s.levels[l].bits {
			st.SlotsOccupied += bits.OnesCount64(w)
		}
	}
	return st
}

// NewScheduler returns a timing-wheel scheduler driving the given clock.
func NewScheduler(clock *Clock) *Scheduler {
	s := &Scheduler{
		clock:  clock,
		free:   noEvent,
		ovHead: noEvent,
		ovTail: noEvent,
		ovMin:  math.MaxInt64,
		pos:    int64(clock.Now()),
	}
	for l := range s.levels {
		for i := range s.levels[l].head {
			s.levels[l].head[i] = noEvent
			s.levels[l].tail[i] = noEvent
		}
	}
	return s
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// alloc takes an event record from the free list, growing the slab only
// when the free list is empty (steady state reuses records: 0 allocs/op).
func (s *Scheduler) alloc(at int64, fn func(at time.Duration)) int32 {
	idx := s.free
	if idx != noEvent {
		s.free = s.slab[idx].next
	} else {
		s.slab = append(s.slab, wheelEvent{})
		idx = int32(len(s.slab) - 1)
	}
	e := &s.slab[idx]
	e.at = at
	e.fn = fn
	e.next = noEvent
	return idx
}

// release returns a record to the free list, dropping the callback
// reference so the closure can be collected.
func (s *Scheduler) release(idx int32) {
	e := &s.slab[idx]
	e.fn = nil
	e.next = s.free
	s.free = idx
}

// insert places a slab event into the level whose current aligned block
// contains its time, or into the overflow list. Appending keeps schedule
// order within every list.
func (s *Scheduler) insert(idx int32) {
	t := s.slab[idx].at
	diff := uint64(t) ^ uint64(s.pos)
	var level uint
	switch {
	case diff>>wheelBits == 0:
		level = 0
	case diff>>(2*wheelBits) == 0:
		level = 1
	case diff>>(3*wheelBits) == 0:
		level = 2
	case diff>>(4*wheelBits) == 0:
		level = 3
	default:
		// Beyond the level-3 block: overflow, repatriated when the wheel
		// crosses into the event's block.
		if s.ovTail == noEvent {
			s.ovHead = idx
		} else {
			s.slab[s.ovTail].next = idx
		}
		s.ovTail = idx
		s.ovCount++
		if t < s.ovMin {
			s.ovMin = t
		}
		return
	}
	slot := (uint64(t) >> (level * wheelBits)) & wheelMask
	lv := &s.levels[level]
	if lv.tail[slot] == noEvent {
		lv.head[slot] = idx
		lv.min[slot] = t
		lv.bits[slot>>6] |= 1 << (slot & 63)
	} else {
		s.slab[lv.tail[slot]].next = idx
		if t < lv.min[slot] {
			lv.min[slot] = t
		}
	}
	lv.tail[slot] = idx
}

// At schedules fn to run at absolute virtual time t. Events scheduled in the
// past run at the current time.
func (s *Scheduler) At(t time.Duration, fn func(at time.Duration)) {
	if t < s.clock.Now() {
		t = s.clock.Now()
	}
	s.insert(s.alloc(int64(t), fn))
	s.pending++
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func(at time.Duration)) {
	s.At(s.clock.Now()+d, fn)
}

// Every schedules fn to run periodically with the given period, starting one
// period from now, until the returned cancel function is called. A
// non-positive period schedules nothing and returns a no-op cancel: at fleet
// horizons a silently clamped period would be an event storm, so the
// degenerate case is an explicit no-op instead (see EventScheduler).
func (s *Scheduler) Every(period time.Duration, fn func(at time.Duration)) (cancel func()) {
	if period <= 0 {
		return func() {}
	}
	active := true
	var tick func(at time.Duration)
	tick = func(at time.Duration) {
		if !active {
			return
		}
		fn(at)
		if active {
			s.At(at+period, tick)
		}
	}
	s.At(s.clock.Now()+period, tick)
	return func() { active = false }
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return s.pending }

// Stop aborts a Run in progress (from inside a callback).
func (s *Scheduler) Stop() { s.stopped = true }

// peek returns the exact time of the earliest pending event. Levels are
// strictly time-layered (level k holds only events outside the current
// level-(k-1) block but inside the current level-k block; overflow holds
// only events beyond level 3), so the first non-empty level owns the
// minimum, and within a level slots never wrap: the lowest set bit is the
// earliest slot.
func (s *Scheduler) peek() (int64, bool) {
	if s.pending == 0 {
		return 0, false
	}
	for level := 0; level < wheelLevels; level++ {
		lv := &s.levels[level]
		for w := 0; w < wheelWords; w++ {
			if lv.bits[w] == 0 {
				continue
			}
			slot := w<<6 + bits.TrailingZeros64(lv.bits[w])
			if level == 0 {
				// A level-0 slot resolves a single nanosecond inside the
				// current 256 ns block.
				return s.pos&^int64(wheelMask) | int64(slot), true
			}
			return lv.min[slot], true
		}
	}
	return s.ovMin, true
}

// cascadeSlot re-distributes one slot into finer levels after the wheel
// entered its block. Re-insertion preserves list order, which preserves
// schedule order among equal-time events.
func (s *Scheduler) cascadeSlot(level uint, slot uint64) {
	lv := &s.levels[level]
	idx := lv.head[slot]
	if idx == noEvent {
		return
	}
	lv.head[slot] = noEvent
	lv.tail[slot] = noEvent
	lv.bits[slot>>6] &^= 1 << (slot & 63)
	for idx != noEvent {
		next := s.slab[idx].next
		s.slab[idx].next = noEvent
		s.insert(idx)
		idx = next
	}
}

// repatriate re-inserts overflow events after the wheel crossed into a new
// level-3 block; events still beyond it re-enter the overflow in order.
func (s *Scheduler) repatriate() {
	idx := s.ovHead
	s.ovHead = noEvent
	s.ovTail = noEvent
	s.ovMin = math.MaxInt64
	s.ovCount = 0
	for idx != noEvent {
		next := s.slab[idx].next
		s.slab[idx].next = noEvent
		s.insert(idx)
		idx = next
	}
}

// advance moves the wheel position to time t (which must not be beyond the
// next pending event), cascading exactly the slots that become current so
// the level layering invariant holds for subsequent inserts and peeks.
func (s *Scheduler) advance(t int64) {
	old := s.pos
	if t <= old {
		return
	}
	s.pos = t
	if old>>(4*wheelBits) != t>>(4*wheelBits) {
		// Crossing a level-3 block: the levels are necessarily empty (they
		// only ever hold events inside the old block, which all lie before
		// t), so only the overflow needs to move.
		s.repatriate()
		return
	}
	if old>>(3*wheelBits) != t>>(3*wheelBits) {
		s.cascadeSlot(3, (uint64(t)>>(3*wheelBits))&wheelMask)
	}
	if old>>(2*wheelBits) != t>>(2*wheelBits) {
		s.cascadeSlot(2, (uint64(t)>>(2*wheelBits))&wheelMask)
	}
	if old>>wheelBits != t>>wheelBits {
		s.cascadeSlot(1, (uint64(t)>>wheelBits)&wheelMask)
	}
}

// Step executes the next queued event, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	t, ok := s.peek()
	if !ok {
		return false
	}
	s.advance(t)
	// After advancing to t, the earliest event sits in the level-0 slot for
	// t's nanosecond; equal-time events queue behind it in schedule order.
	slot := uint64(t) & wheelMask
	lv := &s.levels[0]
	idx := lv.head[slot]
	if next := s.slab[idx].next; next != noEvent {
		lv.head[slot] = next
	} else {
		lv.head[slot] = noEvent
		lv.tail[slot] = noEvent
		lv.bits[slot>>6] &^= 1 << (slot & 63)
	}
	fn := s.slab[idx].fn
	s.release(idx)
	s.pending--
	s.clock.Set(time.Duration(t))
	fn(time.Duration(t))
	return true
}

// Run executes events until the queue is empty or the horizon is passed.
// When it returns nil the clock is at the horizon — on a clean drain the
// clock advances the rest of the way so elapsed time is the same whether or
// not a device had late events. Run returns ErrStopped if Stop was called,
// leaving the clock at the stopping event's time.
func (s *Scheduler) Run(horizon time.Duration) error {
	s.stopped = false
	for s.pending > 0 {
		if s.stopped {
			return ErrStopped
		}
		t, _ := s.peek()
		if t > int64(horizon) {
			s.advance(int64(horizon))
			s.clock.Set(horizon)
			return nil
		}
		s.Step()
	}
	if s.stopped {
		return ErrStopped
	}
	s.advance(int64(horizon))
	s.clock.Set(horizon)
	return nil
}
