package hand

import (
	"fmt"
	"math"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
)

// Glove describes the handwear condition. The paper's first application
// domain is "using mobile devices when wearing gloves of any kind for
// security or protection reasons"; gloves reduce tactile sensation and
// precision but barely affect gross arm movement.
type Glove struct {
	Name string
	// ThicknessMM is the material thickness.
	ThicknessMM float64
	// PrecisionPenalty multiplies endpoint noise (1 = bare hand).
	PrecisionPenalty float64
	// SpeedPenalty multiplies movement time (1 = bare hand).
	SpeedPenalty float64
	// TouchPenalty multiplies the effective width of touch/stylus targets
	// downward (1 = bare hand, 0.4 = thick winter glove) — this is what
	// breaks stylus interfaces, not arm motion.
	TouchPenalty float64
}

// Standard glove conditions used in the experiments.
func BareHand() Glove {
	return Glove{Name: "bare", PrecisionPenalty: 1, SpeedPenalty: 1, TouchPenalty: 1}
}

// LatexGlove is the thin laboratory glove of the glovelab scenario.
func LatexGlove() Glove {
	return Glove{Name: "latex", ThicknessMM: 0.2, PrecisionPenalty: 1.1, SpeedPenalty: 1.02, TouchPenalty: 0.85}
}

// WinterGlove is the thick arctic/alpine glove of the snowmobile scenario.
func WinterGlove() Glove {
	// PrecisionPenalty is modest: the sensor reads the torso, so a thick
	// glove mainly softens the grip, not the arm's aim.
	return Glove{Name: "winter", ThicknessMM: 4, PrecisionPenalty: 1.4, SpeedPenalty: 1.12, TouchPenalty: 0.35}
}

// ChemGlove is the heavy chemical-protection glove.
func ChemGlove() Glove {
	return Glove{Name: "chem", ThicknessMM: 2, PrecisionPenalty: 1.35, SpeedPenalty: 1.06, TouchPenalty: 0.5}
}

// Profile is a motor-skill profile for Fitts's-law movement times
// MT = A + B·log2(D/W + 1).
type Profile struct {
	// FittsA is the non-movement constant in seconds.
	FittsA float64
	// FittsB is the slope in seconds per bit.
	FittsB float64
	// EndpointSD is the bare-hand endpoint standard deviation in cm.
	EndpointSD float64
	// TremorRMS is the bare-hand tremor amplitude in cm.
	TremorRMS float64
}

// DefaultProfile is an average adult.
func DefaultProfile() Profile {
	return Profile{FittsA: 0.15, FittsB: 0.18, EndpointSD: 0.45, TremorRMS: 0.06}
}

// Hand is an arm holding the device at some distance from the body. It
// produces the distance signal the board's sensor sees.
type Hand struct {
	profile Profile
	glove   Glove
	tremor  *Tremor
	rng     *sim.Rand

	pos  float64 // commanded position (cm)
	traj *MinJerk
	// endpointScale modulates endpoint noise; the participant's learning
	// model lowers it as trials accumulate.
	endpointScale float64
}

// New returns a hand at the given starting distance.
func New(profile Profile, glove Glove, startCm float64, rng *sim.Rand) *Hand {
	var tremorRng *sim.Rand
	if rng != nil {
		tremorRng = rng.Split()
	}
	if glove.PrecisionPenalty <= 0 {
		glove.PrecisionPenalty = 1
	}
	if glove.SpeedPenalty <= 0 {
		glove.SpeedPenalty = 1
	}
	if glove.TouchPenalty <= 0 {
		glove.TouchPenalty = 1
	}
	return &Hand{
		profile:       profile,
		glove:         glove,
		tremor:        NewTremor(profile.TremorRMS, tremorRng),
		rng:           rng,
		pos:           startCm,
		endpointScale: 1,
	}
}

// Glove returns the handwear condition.
func (h *Hand) Glove() Glove { return h.glove }

// Profile returns the motor profile.
func (h *Hand) Profile() Profile { return h.profile }

// MovementTime returns the Fitts's-law movement time for an amplitude D
// and target width W (both cm), including the glove speed penalty.
func (h *Hand) MovementTime(d, w float64) time.Duration {
	if w <= 0 {
		w = 0.1
	}
	d = math.Abs(d)
	id := math.Log2(d/w + 1)
	sec := (h.profile.FittsA + h.profile.FittsB*id) * h.glove.SpeedPenalty
	if sec < 0.05 {
		sec = 0.05
	}
	return time.Duration(sec * float64(time.Second))
}

// MoveTo starts a minimum-jerk movement from the current position to a
// noisy endpoint around target, beginning at 'now'. The realised endpoint
// includes glove-scaled endpoint noise; the return value is the planned
// completion time and the realised endpoint.
func (h *Hand) MoveTo(target float64, w float64, now time.Duration) (done time.Duration, endpoint float64) {
	endpoint = target
	if h.rng != nil {
		endpoint += h.rng.Norm(0, h.endpointScale*h.profile.EndpointSD*h.glove.PrecisionPenalty)
	}
	d := math.Abs(endpoint - h.pos)
	mt := h.MovementTime(d, w)
	t := NewMinJerk(h.pos, endpoint, now, mt)
	h.traj = &t
	return t.End(), endpoint
}

// SetEndpointScale modulates endpoint noise (learning model hook). Values
// below a small floor are clamped.
func (h *Hand) SetEndpointScale(f float64) {
	if f < 0.05 {
		f = 0.05
	}
	h.endpointScale = f
}

// Nudge starts a short corrective movement to the target with reduced
// endpoint noise (secondary submovements are more accurate).
func (h *Hand) Nudge(target float64, w float64, now time.Duration) (done time.Duration, endpoint float64) {
	endpoint = target
	if h.rng != nil {
		endpoint += h.rng.Norm(0, 0.4*h.endpointScale*h.profile.EndpointSD*h.glove.PrecisionPenalty)
	}
	d := math.Abs(endpoint - h.pos)
	mt := h.MovementTime(d, w)
	// Corrections are ballistic and short; cap the constant part.
	if mt > 400*time.Millisecond {
		mt = 400 * time.Millisecond
	}
	t := NewMinJerk(h.pos, endpoint, now, mt)
	h.traj = &t
	return t.End(), endpoint
}

// Position returns the hand position (device distance, cm) at the given
// time, advancing the commanded position when a trajectory is active, and
// always adding tremor.
func (h *Hand) Position(at time.Duration) float64 {
	if h.traj != nil {
		h.pos = h.traj.Position(at)
		if h.traj.Done(at) {
			h.traj = nil
		}
	}
	p := h.pos + h.tremor.At(at)
	if p < 0 {
		p = 0
	}
	return p
}

// Moving reports whether a voluntary movement is in progress.
func (h *Hand) Moving() bool { return h.traj != nil }

// Velocity returns the voluntary movement speed in cm/s at the given time.
func (h *Hand) Velocity(at time.Duration) float64 {
	if h.traj == nil {
		return 0
	}
	return h.traj.Velocity(at)
}

// Teleport force-sets the commanded position (scenario setup only).
func (h *Hand) Teleport(cm float64) {
	h.traj = nil
	h.pos = cm
}

// String formats the hand state.
func (h *Hand) String() string {
	return fmt.Sprintf("hand(%s) at %.1f cm", h.glove.Name, h.pos)
}
