package hand

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
)

func TestMinJerkBoundaryConditions(t *testing.T) {
	tr := NewMinJerk(5, 20, time.Second, 2*time.Second)
	if got := tr.Position(0); got != 5 {
		t.Fatalf("before start: %v", got)
	}
	if got := tr.Position(time.Second); got != 5 {
		t.Fatalf("at start: %v", got)
	}
	if got := tr.Position(3 * time.Second); got != 20 {
		t.Fatalf("at end: %v", got)
	}
	if got := tr.Position(time.Hour); got != 20 {
		t.Fatalf("after end: %v", got)
	}
	if v := tr.Velocity(time.Second); v != 0 {
		t.Fatalf("start velocity %v", v)
	}
	if v := tr.Velocity(3 * time.Second); v != 0 {
		t.Fatalf("end velocity %v", v)
	}
	if v := tr.Velocity(2 * time.Second); v <= 0 {
		t.Fatalf("midpoint velocity %v", v)
	}
}

func TestMinJerkMonotoneAndBounded(t *testing.T) {
	f := func(fromRaw, toRaw int16, durMs uint16) bool {
		from := float64(fromRaw) / 100
		to := float64(toRaw) / 100
		dur := time.Duration(int(durMs)%3000+100) * time.Millisecond
		tr := NewMinJerk(from, to, 0, dur)
		lo, hi := math.Min(from, to), math.Max(from, to)
		last := from
		for i := 0; i <= 100; i++ {
			at := time.Duration(float64(dur) * float64(i) / 100)
			p := tr.Position(at)
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
			if to >= from && p < last-1e-9 {
				return false
			}
			if to < from && p > last+1e-9 {
				return false
			}
			last = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinJerkPeakVelocity(t *testing.T) {
	tr := NewMinJerk(0, 10, 0, time.Second)
	// Analytic peak is 1.875 * D / T.
	if got := tr.PeakVelocity(); math.Abs(got-18.75) > 1e-9 {
		t.Fatalf("peak velocity %v", got)
	}
	mid := tr.Velocity(500 * time.Millisecond)
	if math.Abs(mid-18.75) > 0.01 {
		t.Fatalf("midpoint velocity %v", mid)
	}
}

func TestMinJerkZeroDurationClamped(t *testing.T) {
	tr := NewMinJerk(0, 5, 0, 0)
	if tr.Duration <= 0 {
		t.Fatal("duration not clamped")
	}
	if !tr.Done(time.Second) {
		t.Fatal("should be done")
	}
}

func TestTremorStatistics(t *testing.T) {
	tr := NewTremor(0.06, sim.NewRand(1))
	var sum, sumsq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := tr.At(time.Duration(i) * time.Millisecond)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	rms := math.Sqrt(sumsq / n)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("tremor mean %v", mean)
	}
	if rms < 0.02 || rms > 0.12 {
		t.Fatalf("tremor rms %v, configured 0.06", rms)
	}
}

func TestTremorNilSafe(t *testing.T) {
	var tr *Tremor
	if tr.At(time.Second) != 0 {
		t.Fatal("nil tremor should be silent")
	}
	if NewTremor(-1, nil).At(time.Second) != 0 {
		t.Fatal("negative amplitude should be silent")
	}
}

func TestMovementTimeFittsMonotone(t *testing.T) {
	h := New(DefaultProfile(), BareHand(), 15, nil)
	if h.MovementTime(4, 2) >= h.MovementTime(16, 2) {
		t.Fatal("MT should grow with amplitude")
	}
	if h.MovementTime(8, 4) >= h.MovementTime(8, 1) {
		t.Fatal("MT should grow with smaller targets")
	}
	if h.MovementTime(0.0001, 10) < 50*time.Millisecond {
		t.Fatal("MT should have a floor")
	}
}

func TestGloveSlowsMovement(t *testing.T) {
	bare := New(DefaultProfile(), BareHand(), 15, nil)
	winter := New(DefaultProfile(), WinterGlove(), 15, nil)
	if winter.MovementTime(10, 2) <= bare.MovementTime(10, 2) {
		t.Fatal("winter glove should slow movement")
	}
}

func TestMoveToReachesNoiselessTarget(t *testing.T) {
	h := New(DefaultProfile(), BareHand(), 20, nil) // nil rng: no noise, no tremor... tremor is deterministic sinusoid
	done, endpoint := h.MoveTo(8, 2, 0)
	if endpoint != 8 {
		t.Fatalf("noiseless endpoint %v", endpoint)
	}
	// Commanded position lands on the endpoint (tremor adds a bounded
	// wiggle on top).
	p := h.Position(done + time.Second)
	if math.Abs(p-8) > 0.2 {
		t.Fatalf("position %v after move", p)
	}
	if h.Moving() {
		t.Fatal("still moving after completion")
	}
}

func TestEndpointNoiseScalesWithGlove(t *testing.T) {
	spread := func(g Glove) float64 {
		rng := sim.NewRand(7)
		h := New(DefaultProfile(), g, 20, rng)
		var sumsq float64
		const n = 500
		for i := 0; i < n; i++ {
			h.Teleport(20)
			_, ep := h.MoveTo(10, 2, 0)
			sumsq += (ep - 10) * (ep - 10)
		}
		return math.Sqrt(sumsq / n)
	}
	bare, winter := spread(BareHand()), spread(WinterGlove())
	if winter <= bare*1.2 {
		t.Fatalf("winter endpoint sd %.3f should clearly exceed bare %.3f", winter, bare)
	}
}

func TestNudgeMoreAccurateThanMove(t *testing.T) {
	spread := func(nudge bool) float64 {
		rng := sim.NewRand(9)
		h := New(DefaultProfile(), BareHand(), 20, rng)
		var sumsq float64
		const n = 500
		for i := 0; i < n; i++ {
			h.Teleport(12)
			var ep float64
			if nudge {
				_, ep = h.Nudge(10, 2, 0)
			} else {
				_, ep = h.MoveTo(10, 2, 0)
			}
			sumsq += (ep - 10) * (ep - 10)
		}
		return math.Sqrt(sumsq / n)
	}
	if n, m := spread(true), spread(false); n >= m {
		t.Fatalf("nudge sd %.3f should be below move sd %.3f", n, m)
	}
}

func TestEndpointScaleLearning(t *testing.T) {
	spread := func(scale float64) float64 {
		rng := sim.NewRand(11)
		h := New(DefaultProfile(), BareHand(), 20, rng)
		h.SetEndpointScale(scale)
		var sumsq float64
		const n = 500
		for i := 0; i < n; i++ {
			h.Teleport(20)
			_, ep := h.MoveTo(10, 2, 0)
			sumsq += (ep - 10) * (ep - 10)
		}
		return math.Sqrt(sumsq / n)
	}
	if expert, novice := spread(0.3), spread(1.0); expert >= novice {
		t.Fatalf("practised sd %.3f should be below novice %.3f", expert, novice)
	}
}

func TestPositionNeverNegative(t *testing.T) {
	h := New(DefaultProfile(), BareHand(), 0.01, sim.NewRand(3))
	for i := 0; i < 1000; i++ {
		if p := h.Position(time.Duration(i) * 7 * time.Millisecond); p < 0 {
			t.Fatalf("negative position %v", p)
		}
	}
}

func TestVelocityDuringMove(t *testing.T) {
	h := New(DefaultProfile(), BareHand(), 20, nil)
	done, _ := h.MoveTo(5, 2, 0)
	mid := done / 2
	h.Position(mid)
	if v := h.Velocity(mid); v >= 0 {
		t.Fatalf("moving towards body should have negative velocity, got %v", v)
	}
	h.Position(done + time.Second)
	if v := h.Velocity(done + time.Second); v != 0 {
		t.Fatalf("velocity after completion %v", v)
	}
}

func TestGloveDefaults(t *testing.T) {
	// A zero-valued glove must be normalised by New.
	h := New(DefaultProfile(), Glove{Name: "custom"}, 15, nil)
	g := h.Glove()
	if g.PrecisionPenalty != 1 || g.SpeedPenalty != 1 || g.TouchPenalty != 1 {
		t.Fatalf("zero glove not normalised: %+v", g)
	}
}

func TestGloveFixtures(t *testing.T) {
	for _, g := range []Glove{BareHand(), LatexGlove(), WinterGlove(), ChemGlove()} {
		if g.Name == "" || g.PrecisionPenalty < 1 || g.TouchPenalty <= 0 || g.TouchPenalty > 1 {
			t.Errorf("glove fixture malformed: %+v", g)
		}
	}
	if WinterGlove().TouchPenalty >= LatexGlove().TouchPenalty {
		t.Error("winter glove should hurt touch more than latex")
	}
}
