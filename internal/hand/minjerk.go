// Package hand models the human arm moving the DistScroll towards and away
// from the body: minimum-jerk point-to-point trajectories (Flash & Hogan),
// physiological tremor, Fitts's-law movement times, and the effect of the
// gloves that motivate the paper ("it is especially designed for situations
// in which the user wears gloves").
package hand

import (
	"fmt"
	"math"
	"time"
)

// MinJerk is a minimum-jerk point-to-point trajectory: the standard model
// of voluntary reaching movements, with zero velocity and acceleration at
// both endpoints.
type MinJerk struct {
	From, To float64
	Start    time.Duration
	Duration time.Duration
}

// NewMinJerk returns a trajectory from 'from' to 'to' starting at start and
// lasting d. A non-positive duration is clamped to one millisecond.
func NewMinJerk(from, to float64, start, d time.Duration) MinJerk {
	if d <= 0 {
		d = time.Millisecond
	}
	return MinJerk{From: from, To: to, Start: start, Duration: d}
}

// tau returns normalised time in [0,1].
func (t MinJerk) tau(at time.Duration) float64 {
	if at <= t.Start {
		return 0
	}
	if at >= t.Start+t.Duration {
		return 1
	}
	return float64(at-t.Start) / float64(t.Duration)
}

// Position returns the trajectory position at the given time.
func (t MinJerk) Position(at time.Duration) float64 {
	x := t.tau(at)
	s := x * x * x * (10 + x*(-15+6*x))
	return t.From + (t.To-t.From)*s
}

// Velocity returns the trajectory velocity (units/second) at the given
// time.
func (t MinJerk) Velocity(at time.Duration) float64 {
	x := t.tau(at)
	if x <= 0 || x >= 1 {
		return 0
	}
	ds := 30*x*x - 60*x*x*x + 30*x*x*x*x
	return (t.To - t.From) * ds / t.Duration.Seconds()
}

// Done reports whether the trajectory has completed at the given time.
func (t MinJerk) Done(at time.Duration) bool { return at >= t.Start+t.Duration }

// End returns the completion time.
func (t MinJerk) End() time.Duration { return t.Start + t.Duration }

// PeakVelocity returns the peak speed of the trajectory (at its midpoint).
func (t MinJerk) PeakVelocity() float64 {
	return 1.875 * math.Abs(t.To-t.From) / t.Duration.Seconds()
}

// String formats the trajectory for traces.
func (t MinJerk) String() string {
	return fmt.Sprintf("minjerk %.1f→%.1f over %v", t.From, t.To, t.Duration)
}
