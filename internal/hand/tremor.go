package hand

import (
	"math"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
)

// Tremor models physiological hand tremor as a sum of sinusoids in the
// 8–12 Hz band with random phases plus a slow postural drift component.
// Amplitude is in the position units of the hand (cm).
type Tremor struct {
	components []tremorComponent
	drift      tremorComponent
}

type tremorComponent struct {
	ampl  float64
	hz    float64
	phase float64
}

// NewTremor returns a tremor generator with the given RMS amplitude in cm.
// rng may be nil, producing a deterministic (fixed-phase) tremor.
func NewTremor(rmsCm float64, rng *sim.Rand) *Tremor {
	if rmsCm < 0 {
		rmsCm = 0
	}
	freqs := []float64{8.3, 9.7, 11.2}
	t := &Tremor{components: make([]tremorComponent, 0, len(freqs))}
	// Split the RMS budget across the components (and keep a share for
	// drift). For n equal sinusoids with amplitude a, RMS = a*sqrt(n/2).
	per := rmsCm * 0.8 / math.Sqrt(float64(len(freqs))/2)
	for i, hz := range freqs {
		phase := float64(i) * 2.1
		f := hz
		if rng != nil {
			phase = rng.Uniform(0, 2*math.Pi)
			f = hz * rng.Uniform(0.95, 1.05)
		}
		t.components = append(t.components, tremorComponent{ampl: per, hz: f, phase: phase})
	}
	driftPhase := 0.7
	if rng != nil {
		driftPhase = rng.Uniform(0, 2*math.Pi)
	}
	t.drift = tremorComponent{ampl: rmsCm * 0.6, hz: 0.35, phase: driftPhase}
	return t
}

// At returns the tremor displacement in cm at the given time.
func (t *Tremor) At(at time.Duration) float64 {
	if t == nil {
		return 0
	}
	sec := at.Seconds()
	sum := 0.0
	for _, c := range t.components {
		sum += c.ampl * math.Sin(2*math.Pi*c.hz*sec+c.phase)
	}
	sum += t.drift.ampl * math.Sin(2*math.Pi*t.drift.hz*sec+t.drift.phase)
	return sum
}
