// Package fitts provides the Fitts's-law analysis used by the technique
// comparison (paper Section 7: "Is distance-based scrolling faster, equal
// or slower than other scrolling techniques. So far, we only know that
// Fitt's Law holds for scrolling", citing Hinckley et al., CHI 2002).
package fitts

import (
	"fmt"
	"math"
	"time"

	"github.com/hcilab/distscroll/internal/stats"
)

// ID returns the Shannon-formulation index of difficulty, in bits, for an
// amplitude d and target width w (same units).
func ID(d, w float64) float64 {
	if w <= 0 {
		w = 1e-9
	}
	return math.Log2(math.Abs(d)/w + 1)
}

// Observation is one movement observation.
type Observation struct {
	D  float64 // amplitude
	W  float64 // target width
	MT time.Duration
	// Err marks the trial as an error trial (excluded from the fit, as is
	// conventional, but counted for the error rate).
	Err bool
}

// Analysis is the outcome of a Fitts regression over observations.
type Analysis struct {
	Fit        stats.LinearFit // MT(s) = a + b·ID
	Throughput float64         // mean-of-means ID/MT, bits/s
	ErrorRate  float64
	N          int
}

// String formats the analysis for reports.
func (a Analysis) String() string {
	return fmt.Sprintf("MT=%.3f+%.3f·ID s (R²=%.3f), TP=%.2f bit/s, err=%.1f%%, n=%d",
		a.Fit.Intercept, a.Fit.Slope, a.Fit.R2, a.Throughput, 100*a.ErrorRate, a.N)
}

// Analyze regresses movement time against index of difficulty and computes
// throughput and error rate. Error trials count toward ErrorRate only.
func Analyze(obs []Observation) (Analysis, error) {
	var ids, mts []float64
	var tpSum float64
	errs := 0
	for _, o := range obs {
		if o.Err {
			errs++
			continue
		}
		id := ID(o.D, o.W)
		sec := o.MT.Seconds()
		if sec <= 0 {
			continue
		}
		ids = append(ids, id)
		mts = append(mts, sec)
		tpSum += id / sec
	}
	if len(ids) < 2 {
		return Analysis{}, fmt.Errorf("fitts: need at least 2 non-error observations, have %d", len(ids))
	}
	fit, err := stats.LinearRegression(ids, mts)
	if err != nil {
		return Analysis{}, fmt.Errorf("fitts: %w", err)
	}
	return Analysis{
		Fit:        fit,
		Throughput: tpSum / float64(len(ids)),
		ErrorRate:  float64(errs) / float64(len(obs)),
		N:          len(obs),
	}, nil
}

// PredictMT evaluates a fitted model at an index of difficulty.
func (a Analysis) PredictMT(id float64) time.Duration {
	return time.Duration(a.Fit.Predict(id) * float64(time.Second))
}
