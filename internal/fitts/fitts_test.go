package fitts

import (
	"math"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/sim"
)

func TestIDValues(t *testing.T) {
	if got := ID(1, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ID(1,1) = %v, want 1", got)
	}
	if got := ID(3, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("ID(3,1) = %v, want 2", got)
	}
	if got := ID(-3, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("ID(-3,1) = %v (amplitude sign must not matter)", got)
	}
	if got := ID(1, 0); math.IsInf(got, 1) || math.IsNaN(got) {
		t.Logf("ID with zero width = %v (finite by clamping)", got)
	} else if got < 20 {
		t.Fatalf("ID(1,0) = %v, want very large", got)
	}
}

func TestAnalyzeRecoversModel(t *testing.T) {
	// Synthetic observations from MT = 0.2 + 0.15*ID.
	rng := sim.NewRand(1)
	var obs []Observation
	for _, d := range []float64{1, 2, 4, 8, 16} {
		for rep := 0; rep < 30; rep++ {
			id := ID(d, 1)
			mt := 0.2 + 0.15*id + rng.Norm(0, 0.01)
			obs = append(obs, Observation{D: d, W: 1, MT: time.Duration(mt * float64(time.Second))})
		}
	}
	an, err := Analyze(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.Fit.Intercept-0.2) > 0.02 {
		t.Fatalf("intercept %v", an.Fit.Intercept)
	}
	if math.Abs(an.Fit.Slope-0.15) > 0.02 {
		t.Fatalf("slope %v", an.Fit.Slope)
	}
	if an.Fit.R2 < 0.95 {
		t.Fatalf("R2 %v", an.Fit.R2)
	}
	if an.Throughput <= 0 {
		t.Fatalf("throughput %v", an.Throughput)
	}
	if an.ErrorRate != 0 {
		t.Fatalf("error rate %v", an.ErrorRate)
	}
	// Prediction at ID=2: 0.5 s.
	if got := an.PredictMT(2); got < 450*time.Millisecond || got > 550*time.Millisecond {
		t.Fatalf("PredictMT(2) = %v", got)
	}
}

func TestAnalyzeErrorTrialsExcludedFromFit(t *testing.T) {
	obs := []Observation{
		{D: 1, W: 1, MT: 300 * time.Millisecond},
		{D: 3, W: 1, MT: 500 * time.Millisecond},
		{D: 7, W: 1, MT: 700 * time.Millisecond},
		{D: 7, W: 1, MT: 9 * time.Second, Err: true}, // would wreck the fit
	}
	an, err := Analyze(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.ErrorRate-0.25) > 1e-9 {
		t.Fatalf("error rate %v", an.ErrorRate)
	}
	if an.Fit.Slope > 0.3 {
		t.Fatalf("error trial leaked into fit: slope %v", an.Fit.Slope)
	}
	if an.N != 4 {
		t.Fatalf("N = %d", an.N)
	}
}

func TestAnalyzeNeedsData(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("empty analyze accepted")
	}
	only := []Observation{{D: 1, W: 1, MT: time.Second}}
	if _, err := Analyze(only); err == nil {
		t.Fatal("single observation accepted")
	}
	allErr := []Observation{
		{D: 1, W: 1, MT: time.Second, Err: true},
		{D: 2, W: 1, MT: time.Second, Err: true},
	}
	if _, err := Analyze(allErr); err == nil {
		t.Fatal("all-error set accepted")
	}
}

func TestAnalysisString(t *testing.T) {
	an := Analysis{Throughput: 3.2}
	if an.String() == "" {
		t.Fatal("empty string")
	}
}
