package menu

import (
	"fmt"
	"math"
)

// This file implements the two long-menu strategies of paper Section 7:
// chunked access ("large menus could only be accessed in chunks of e.g. 10
// entries") and speed-dependent automatic zooming after Igarashi &
// Hinckley, the solution the paper points to in [6].

// Chunked presents a long flat level in fixed-size pages. The distance
// islands map onto one page plus two paging pseudo-entries, so a 100-entry
// menu only ever needs 12 islands.
type Chunked struct {
	menu  *Menu
	size  int
	page  int
	inner int // cursor within the page
}

// Paging pseudo-entry indices within a chunk view: 0 is "previous chunk",
// 1..size are entries, size+1 is "next chunk".
const (
	ChunkPrev = 0
	chunkBase = 1
)

// NewChunked wraps a menu's current level in pages of the given size.
func NewChunked(m *Menu, size int) (*Chunked, error) {
	if size < 1 {
		return nil, fmt.Errorf("menu: chunk size %d must be positive", size)
	}
	if m.Len() == 0 {
		return nil, ErrEmpty
	}
	return &Chunked{menu: m, size: size}, nil
}

// Slots returns the number of islands a chunk view needs (entries + two
// paging slots).
func (c *Chunked) Slots() int { return c.size + 2 }

// Pages returns the number of pages.
func (c *Chunked) Pages() int {
	return (c.menu.Len() + c.size - 1) / c.size
}

// Page returns the current page index.
func (c *Chunked) Page() int { return c.page }

// ChunkNext returns the "next chunk" pseudo-entry index.
func (c *Chunked) ChunkNext() int { return c.size + 1 }

// pageLen returns the number of real entries on the current page.
func (c *Chunked) pageLen() int {
	n := c.menu.Len() - c.page*c.size
	if n > c.size {
		n = c.size
	}
	return n
}

// Select positions the view on slot index (a paging slot turns the page;
// an entry slot moves the underlying menu cursor). It returns the absolute
// entry index now under the cursor.
func (c *Chunked) Select(slot int) int {
	switch {
	case slot <= ChunkPrev:
		if c.page > 0 {
			c.page--
			c.inner = c.size - 1
		} else {
			c.inner = 0
		}
	case slot >= c.ChunkNext():
		if c.page < c.Pages()-1 {
			c.page++
			c.inner = 0
		} else {
			c.inner = c.pageLen() - 1
		}
	default:
		c.inner = slot - chunkBase
		if c.inner >= c.pageLen() {
			c.inner = c.pageLen() - 1
		}
	}
	abs := c.page*c.size + c.inner
	c.menu.MoveTo(abs)
	return abs
}

// Absolute returns the absolute entry index under the cursor.
func (c *Chunked) Absolute() int { return c.page*c.size + c.inner }

// SlotForAbsolute returns the page and slot that reach an absolute index
// (useful for planning: how many page turns plus which slot).
func (c *Chunked) SlotForAbsolute(abs int) (page, slot int) {
	if abs < 0 {
		abs = 0
	}
	if abs >= c.menu.Len() {
		abs = c.menu.Len() - 1
	}
	return abs / c.size, abs%c.size + chunkBase
}

// SDAZ implements speed-dependent automatic zooming for scrolling: the
// faster the control signal moves, the coarser the granularity, so distant
// targets are reached quickly yet fine positioning stays precise.
type SDAZ struct {
	// GainLow is entries per cm at near-zero speed.
	GainLow float64
	// GainHigh is entries per cm at and beyond SpeedHigh.
	GainHigh float64
	// SpeedHigh is the control speed (cm/s) at which the gain saturates.
	SpeedHigh float64
}

// DefaultSDAZ returns gains tuned for a 26 cm scroll range.
func DefaultSDAZ() SDAZ {
	return SDAZ{GainLow: 0.5, GainHigh: 8, SpeedHigh: 40}
}

// Gain returns the entries-per-cm mapping gain at the given control speed
// (cm/s), interpolating smoothly between the low- and high-speed gains.
func (z SDAZ) Gain(speed float64) float64 {
	speed = math.Abs(speed)
	if z.SpeedHigh <= 0 || speed >= z.SpeedHigh {
		return z.GainHigh
	}
	t := speed / z.SpeedHigh
	// Smoothstep keeps the transition free of gain jumps.
	t = t * t * (3 - 2*t)
	return z.GainLow + (z.GainHigh-z.GainLow)*t
}

// Step converts a movement of dCm at the given speed into an entry delta.
func (z SDAZ) Step(dCm, speed float64) int {
	return int(math.Round(dCm * z.Gain(speed)))
}
