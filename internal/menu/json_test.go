package menu

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFromJSON(t *testing.T) {
	src := `{
		"title": "Root",
		"children": [
			{"title": "A", "children": [{"title": "A1"}, {"title": "A2"}]},
			{"title": "B"}
		]
	}`
	root, err := FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if root.Title != "Root" || len(root.Children) != 2 {
		t.Fatalf("root: %+v", root)
	}
	if root.Children[0].Children[1].Title != "A2" {
		t.Fatal("nested child lost")
	}
	if got := root.Children[0].Children[1].Path(); got != "Root > A > A2" {
		t.Fatalf("path %q (parent wiring broken)", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := PhoneMenu()
	var buf bytes.Buffer
	if err := ToJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.CountLeaves() != orig.CountLeaves() {
		t.Fatalf("leaves %d vs %d", back.CountLeaves(), orig.CountLeaves())
	}
	var cmp func(a, b *Node) bool
	cmp = func(a, b *Node) bool {
		if a.Title != b.Title || len(a.Children) != len(b.Children) {
			return false
		}
		for i := range a.Children {
			if !cmp(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	if !cmp(orig, back) {
		t.Fatal("trees differ after round trip")
	}
}

func TestFromJSONValidation(t *testing.T) {
	if _, err := FromJSON(strings.NewReader(`{"children":[]}`)); !errors.Is(err, ErrNoTitle) {
		t.Fatalf("missing title: %v", err)
	}
	if _, err := FromJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := FromJSON(strings.NewReader(`{"title":"x","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Depth bomb.
	deep := strings.Repeat(`{"title":"d","children":[`, 20) + `{"title":"leaf"}` + strings.Repeat(`]}`, 20)
	if _, err := FromJSON(strings.NewReader(deep)); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("depth bomb: %v", err)
	}
}

func TestToJSONNil(t *testing.T) {
	if err := ToJSON(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil root accepted")
	}
}
