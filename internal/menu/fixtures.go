package menu

import "fmt"

// PhoneMenu returns the "fictive mobile phone menu" used in the paper's
// initial user study (Section 6), modelled on a 2005-era feature phone.
func PhoneMenu() *Node {
	return NewNode("Phone",
		NewNode("Messages",
			Leaf("Write message"),
			Leaf("Inbox"),
			Leaf("Outbox"),
			Leaf("Drafts"),
			Leaf("Templates"),
		),
		NewNode("Contacts",
			Leaf("Search"),
			Leaf("Add contact"),
			Leaf("Speed dials"),
			Leaf("Groups"),
		),
		NewNode("Call register",
			Leaf("Missed calls"),
			Leaf("Received calls"),
			Leaf("Dialled numbers"),
			Leaf("Call duration"),
		),
		NewNode("Settings",
			NewNode("Tones",
				Leaf("Ringing tone"),
				Leaf("Ringing volume"),
				Leaf("Vibrating alert"),
				Leaf("Keypad tones"),
			),
			NewNode("Display",
				Leaf("Wallpaper"),
				Leaf("Contrast"),
				Leaf("Backlight time"),
			),
			Leaf("Profiles"),
			Leaf("Time and date"),
			Leaf("Security"),
		),
		NewNode("Games",
			Leaf("Snake"),
			Leaf("Space Impact"),
			Leaf("Bantumi"),
		),
		NewNode("Extras",
			Leaf("Calculator"),
			Leaf("Stopwatch"),
			Leaf("Calendar"),
		),
	)
}

// FlatMenu returns a single-level menu with n numbered entries — the
// workload for the range sweep and long-menu experiments.
func FlatMenu(n int) *Node {
	root := NewNode("List")
	for i := 0; i < n; i++ {
		root.AddChild(Leaf(fmt.Sprintf("Entry %02d", i+1)))
	}
	return root
}

// LabProtocolMenu returns the hazardous-laboratory scenario menu of the
// glovelab example: protocol steps a gloved chemist browses one-handed
// (paper Section 5.2: "hazardous environments as can often be found in bio-
// or chemical laboratories").
func LabProtocolMenu() *Node {
	return NewNode("Lab",
		NewNode("Protocols",
			Leaf("PCR setup"),
			Leaf("Gel electrophoresis"),
			Leaf("Titration BA-7"),
			Leaf("Buffer prep"),
			Leaf("Centrifuge run"),
		),
		NewNode("Safety",
			Leaf("MSDS lookup"),
			Leaf("Spill procedure"),
			Leaf("Waste disposal"),
			Leaf("Emergency contacts"),
		),
		NewNode("Log",
			Leaf("Record step"),
			Leaf("Flag anomaly"),
			Leaf("Sign off"),
		),
	)
}

// StocktakingMenu returns the warehouse scenario menu: "one hand counts or
// scans the items and the second hand operates the mobile device to input
// data on these items" (paper Section 5.2).
func StocktakingMenu() *Node {
	return NewNode("Stock",
		NewNode("Count",
			Leaf("Set quantity"),
			Leaf("Add 1"),
			Leaf("Add 10"),
			Leaf("Clear"),
		),
		NewNode("Item info",
			Leaf("Location"),
			Leaf("Supplier"),
			Leaf("Reorder level"),
			Leaf("Last counted"),
		),
		NewNode("Discrepancy",
			Leaf("Mark missing"),
			Leaf("Mark damaged"),
			Leaf("Mark surplus"),
		),
		Leaf("Next item"),
	)
}
