package menu

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// jsonNode is the on-disk menu schema:
//
//	{"title": "Phone", "children": [{"title": "Messages", "children": [...]}]}
type jsonNode struct {
	Title    string     `json:"title"`
	Children []jsonNode `json:"children,omitempty"`
}

// JSON schema errors.
var (
	// ErrNoTitle is returned when a node has an empty title.
	ErrNoTitle = errors.New("menu: node without title")
	// ErrTooDeep is returned beyond the supported nesting depth.
	ErrTooDeep = errors.New("menu: tree too deep")
)

// maxJSONDepth bounds recursion on untrusted input.
const maxJSONDepth = 16

// FromJSON parses a menu tree from its JSON representation.
func FromJSON(r io.Reader) (*Node, error) {
	var root jsonNode
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&root); err != nil {
		return nil, fmt.Errorf("menu: parse json: %w", err)
	}
	return buildNode(root, 0)
}

func buildNode(j jsonNode, depth int) (*Node, error) {
	if depth > maxJSONDepth {
		return nil, fmt.Errorf("%w: > %d levels", ErrTooDeep, maxJSONDepth)
	}
	if j.Title == "" {
		return nil, ErrNoTitle
	}
	n := NewNode(j.Title)
	for _, c := range j.Children {
		child, err := buildNode(c, depth+1)
		if err != nil {
			return nil, err
		}
		n.AddChild(child)
	}
	return n, nil
}

// ToJSON writes the menu tree as indented JSON.
func ToJSON(w io.Writer, root *Node) error {
	if root == nil {
		return errors.New("menu: nil root")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(toJSONNode(root)); err != nil {
		return fmt.Errorf("menu: encode json: %w", err)
	}
	return nil
}

func toJSONNode(n *Node) jsonNode {
	j := jsonNode{Title: n.Title}
	for _, c := range n.Children {
		j.Children = append(j.Children, toJSONNode(c))
	}
	return j
}
