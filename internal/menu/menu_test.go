package menu

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hcilab/distscroll/internal/sim"
)

func phone(t *testing.T) *Menu {
	t.Helper()
	m, err := New(PhoneMenu())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil root accepted")
	}
	if _, err := New(Leaf("empty")); !errors.Is(err, ErrEmpty) {
		t.Fatal("leaf root accepted")
	}
}

func TestCursorMovement(t *testing.T) {
	m := phone(t)
	if m.Cursor() != 0 {
		t.Fatalf("initial cursor %d", m.Cursor())
	}
	if !m.MoveTo(3) || m.Cursor() != 3 {
		t.Fatalf("MoveTo(3): cursor %d", m.Cursor())
	}
	if m.MoveTo(3) {
		t.Fatal("MoveTo to same index reported movement")
	}
	m.MoveTo(99)
	if m.Cursor() != m.Len()-1 {
		t.Fatalf("clamp high: %d", m.Cursor())
	}
	m.MoveTo(-5)
	if m.Cursor() != 0 {
		t.Fatalf("clamp low: %d", m.Cursor())
	}
	m.Step(2)
	if m.Cursor() != 2 {
		t.Fatalf("Step: %d", m.Cursor())
	}
}

func TestEnterAndBack(t *testing.T) {
	m := phone(t)
	m.MoveTo(3) // Settings
	if err := m.Enter(); err != nil {
		t.Fatalf("enter Settings: %v", err)
	}
	if m.Depth() != 1 || m.Level().Title != "Settings" {
		t.Fatalf("depth %d level %q", m.Depth(), m.Level().Title)
	}
	if m.Cursor() != 0 {
		t.Fatal("cursor should reset on enter")
	}
	if err := m.Back(); err != nil {
		t.Fatalf("back: %v", err)
	}
	if m.Depth() != 0 {
		t.Fatalf("depth after back: %d", m.Depth())
	}
	// Back places the cursor on the entry just left.
	if m.Cursor() != 3 {
		t.Fatalf("cursor after back = %d, want 3", m.Cursor())
	}
}

func TestBackAtRoot(t *testing.T) {
	m := phone(t)
	if err := m.Back(); !errors.Is(err, ErrAtRoot) {
		t.Fatalf("back at root: %v", err)
	}
}

func TestEnterLeafRunsActionAndCounts(t *testing.T) {
	ran := false
	root := NewNode("r", Leaf("a"), NewNode("b"))
	root.Children[0].Action = func() { ran = true }
	m, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Enter()
	if !errors.Is(err, ErrLeaf) {
		t.Fatalf("enter leaf: %v", err)
	}
	if !ran {
		t.Fatal("leaf action did not run")
	}
	if m.Selections() != 1 {
		t.Fatalf("selections = %d", m.Selections())
	}
	if m.Depth() != 0 {
		t.Fatal("leaf enter changed level")
	}
}

func TestPathAndDepth(t *testing.T) {
	m := phone(t)
	m.MoveTo(3)
	if err := m.Enter(); err != nil {
		t.Fatal(err)
	}
	if err := m.Enter(); err != nil { // Tones
		t.Fatal(err)
	}
	e := m.CurrentEntry()
	if got := e.Path(); got != "Phone > Settings > Tones > Ringing tone" {
		t.Fatalf("path = %q", got)
	}
	if e.Depth() != 3 {
		t.Fatalf("depth = %d", e.Depth())
	}
}

func TestCountLeaves(t *testing.T) {
	root := PhoneMenu()
	if got := root.CountLeaves(); got != 29 {
		t.Fatalf("phone menu has %d leaves", got)
	}
	if Leaf("x").CountLeaves() != 1 {
		t.Fatal("leaf count")
	}
}

func TestResetToRoot(t *testing.T) {
	m := phone(t)
	m.MoveTo(3)
	if err := m.Enter(); err != nil {
		t.Fatal(err)
	}
	m.ResetToRoot()
	if m.Depth() != 0 || m.Cursor() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWindowCentersCursor(t *testing.T) {
	m, err := New(FlatMenu(20))
	if err != nil {
		t.Fatal(err)
	}
	m.MoveTo(10)
	win := m.Window(5)
	if len(win) != 5 {
		t.Fatalf("window size %d", len(win))
	}
	found := false
	for _, line := range win {
		if strings.HasPrefix(line, "> ") && strings.Contains(line, "Entry 11") {
			found = true
		}
	}
	if !found {
		t.Fatalf("cursor row missing: %v", win)
	}
}

func TestWindowAtEdges(t *testing.T) {
	m, err := New(FlatMenu(20))
	if err != nil {
		t.Fatal(err)
	}
	win := m.Window(5)
	if !strings.Contains(win[0], "Entry 01") {
		t.Fatalf("top edge window: %v", win)
	}
	m.MoveTo(19)
	win = m.Window(5)
	if !strings.Contains(win[len(win)-1], "Entry 20") {
		t.Fatalf("bottom edge window: %v", win)
	}
	// Short level: window no longer than the level.
	small, err := New(FlatMenu(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(small.Window(5)); got != 3 {
		t.Fatalf("short window size %d", got)
	}
}

func TestRandomWalkInvariants(t *testing.T) {
	// Property: any sequence of navigation operations keeps the cursor
	// within bounds and depth consistent with the level's Depth().
	rng := sim.NewRand(5)
	f := func(_ uint8) bool {
		m, err := New(PhoneMenu())
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			switch rng.Intn(4) {
			case 0:
				m.MoveTo(rng.Intn(10) - 2)
			case 1:
				m.Step(rng.Intn(5) - 2)
			case 2:
				_ = m.Enter()
			case 3:
				_ = m.Back()
			}
			if m.Cursor() < 0 || m.Cursor() >= m.Len() {
				return false
			}
			if m.Depth() != m.Level().Depth() {
				return false
			}
			if m.Len() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFixtures(t *testing.T) {
	for _, tc := range []struct {
		name string
		root *Node
		min  int
	}{
		{"phone", PhoneMenu(), 6},
		{"lab", LabProtocolMenu(), 3},
		{"stock", StocktakingMenu(), 4},
	} {
		if got := len(tc.root.Children); got < tc.min {
			t.Errorf("%s fixture has %d top-level entries, want >= %d", tc.name, got, tc.min)
		}
	}
	if got := len(FlatMenu(37).Children); got != 37 {
		t.Errorf("flat menu size %d", got)
	}
}
