package menu

import (
	"testing"
)

func chunked(t *testing.T, entries, size int) (*Menu, *Chunked) {
	t.Helper()
	m, err := New(FlatMenu(entries))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChunked(m, size)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

func TestChunkedGeometry(t *testing.T) {
	_, c := chunked(t, 100, 10)
	if c.Pages() != 10 {
		t.Fatalf("pages = %d", c.Pages())
	}
	if c.Slots() != 12 {
		t.Fatalf("slots = %d", c.Slots())
	}
	// 95 entries: last page is short.
	_, c2 := chunked(t, 95, 10)
	if c2.Pages() != 10 {
		t.Fatalf("pages(95) = %d", c2.Pages())
	}
}

func TestChunkedSelectEntrySlot(t *testing.T) {
	m, c := chunked(t, 100, 10)
	abs := c.Select(4) // slot 4 = entry index 3 of page 0
	if abs != 3 || m.Cursor() != 3 {
		t.Fatalf("abs=%d cursor=%d", abs, m.Cursor())
	}
}

func TestChunkedPaging(t *testing.T) {
	m, c := chunked(t, 100, 10)
	abs := c.Select(c.ChunkNext())
	if c.Page() != 1 || abs != 10 {
		t.Fatalf("page=%d abs=%d", c.Page(), abs)
	}
	abs = c.Select(ChunkPrev)
	if c.Page() != 0 {
		t.Fatalf("page after prev = %d", c.Page())
	}
	// Coming back up places the cursor at the end of the previous page.
	if abs != 9 || m.Cursor() != 9 {
		t.Fatalf("abs=%d cursor=%d after prev", abs, m.Cursor())
	}
}

func TestChunkedPagingClamps(t *testing.T) {
	_, c := chunked(t, 30, 10)
	c.Select(ChunkPrev) // at page 0: stays
	if c.Page() != 0 {
		t.Fatalf("page = %d", c.Page())
	}
	c.Select(c.ChunkNext())
	c.Select(c.ChunkNext())
	c.Select(c.ChunkNext()) // beyond last page: clamps to last entry
	if c.Page() != 2 {
		t.Fatalf("page = %d", c.Page())
	}
	if c.Absolute() != 29 {
		t.Fatalf("absolute = %d", c.Absolute())
	}
}

func TestChunkedShortLastPage(t *testing.T) {
	m, c := chunked(t, 25, 10)
	c.Select(c.ChunkNext())
	c.Select(c.ChunkNext()) // page 2 holds entries 20..24
	abs := c.Select(9)      // slot 9 → inner 8, beyond the 5 entries: clamps
	if abs != 24 || m.Cursor() != 24 {
		t.Fatalf("abs=%d cursor=%d", abs, m.Cursor())
	}
}

func TestSlotForAbsolute(t *testing.T) {
	_, c := chunked(t, 100, 10)
	page, slot := c.SlotForAbsolute(37)
	if page != 3 || slot != 8 {
		t.Fatalf("page=%d slot=%d", page, slot)
	}
	page, slot = c.SlotForAbsolute(-4)
	if page != 0 || slot != 1 {
		t.Fatalf("clamped low: page=%d slot=%d", page, slot)
	}
	page, _ = c.SlotForAbsolute(1000)
	if page != 9 {
		t.Fatalf("clamped high: page=%d", page)
	}
}

func TestChunkedValidation(t *testing.T) {
	m, err := New(FlatMenu(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChunked(m, 0); err == nil {
		t.Fatal("chunk size 0 accepted")
	}
}

func TestSDAZGainMonotone(t *testing.T) {
	z := DefaultSDAZ()
	if z.Gain(0) != z.GainLow {
		t.Fatalf("gain at rest = %f", z.Gain(0))
	}
	if z.Gain(1000) != z.GainHigh {
		t.Fatalf("gain saturated = %f", z.Gain(1000))
	}
	last := 0.0
	for v := 0.0; v <= z.SpeedHigh; v += 1 {
		g := z.Gain(v)
		if g < last-1e-9 {
			t.Fatalf("gain not monotone at %f: %f < %f", v, g, last)
		}
		last = g
	}
}

func TestSDAZStep(t *testing.T) {
	z := DefaultSDAZ()
	slow := z.Step(2, 1)
	fast := z.Step(2, 100)
	if fast <= slow {
		t.Fatalf("fast step %d should exceed slow step %d", fast, slow)
	}
	if z.Step(0, 50) != 0 {
		t.Fatal("zero movement should step 0")
	}
	if z.Step(-2, 100) >= 0 {
		t.Fatal("negative movement should step negative")
	}
}
