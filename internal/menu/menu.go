// Package menu provides the hierarchical data structures the DistScroll
// navigates: menu trees with a cursor, windowed rendering onto the 5-line
// display, chunked access for long menus (paper Section 7: "How to scroll
// long menus? A possible solution could be similar to the one suggested in
// [6]", i.e. speed-dependent automatic zooming) and the fictive mobile
// phone menu used in the initial user study.
package menu

import (
	"errors"
	"fmt"
	"strings"
)

// Node is one entry of a hierarchical menu.
type Node struct {
	Title    string
	Children []*Node
	parent   *Node
	// Action is an optional payload invoked on selection of a leaf.
	Action func()
}

// NewNode returns a node with the given title and children, wiring parent
// pointers.
func NewNode(title string, children ...*Node) *Node {
	n := &Node{Title: title, Children: children}
	for _, c := range children {
		c.parent = n
	}
	return n
}

// Leaf returns a childless node.
func Leaf(title string) *Node { return NewNode(title) }

// AddChild appends a child node.
func (n *Node) AddChild(c *Node) {
	c.parent = n
	n.Children = append(n.Children, c)
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Parent returns the parent node, nil at the root.
func (n *Node) Parent() *Node { return n.parent }

// Depth returns the node's depth below the root (root = 0).
func (n *Node) Depth() int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Path returns the titles from the root to the node, separated by " > ".
func (n *Node) Path() string {
	var parts []string
	for cur := n; cur != nil; cur = cur.parent {
		parts = append(parts, cur.Title)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " > ")
}

// CountLeaves returns the number of leaf nodes beneath (and including) n.
func (n *Node) CountLeaves() int {
	if n.IsLeaf() {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += c.CountLeaves()
	}
	return total
}

// Navigation errors.
var (
	// ErrAtRoot is returned by Back at the root level.
	ErrAtRoot = errors.New("menu: already at root")
	// ErrLeaf is returned by Enter on a leaf without children.
	ErrLeaf = errors.New("menu: entry is a leaf")
	// ErrEmpty is returned when a level has no entries.
	ErrEmpty = errors.New("menu: empty level")
)

// Menu is a cursor over a node tree, always positioned at one entry of the
// current level. The DistScroll maps the distance islands onto the entries
// of the current level.
type Menu struct {
	root    *Node
	level   *Node // node whose children are the current entries
	cursor  int
	selects int // completed selections, for study metrics
}

// New returns a menu rooted at root with the cursor on the first entry.
func New(root *Node) (*Menu, error) {
	if root == nil {
		return nil, errors.New("menu: nil root")
	}
	if root.IsLeaf() {
		return nil, fmt.Errorf("menu: root %q has no entries: %w", root.Title, ErrEmpty)
	}
	return &Menu{root: root, level: root}, nil
}

// Root returns the root node.
func (m *Menu) Root() *Node { return m.root }

// Level returns the node whose children form the current entries.
func (m *Menu) Level() *Node { return m.level }

// Entries returns the entries of the current level.
func (m *Menu) Entries() []*Node { return m.level.Children }

// Len returns the number of entries at the current level.
func (m *Menu) Len() int { return len(m.level.Children) }

// Cursor returns the current entry index.
func (m *Menu) Cursor() int { return m.cursor }

// CurrentEntry returns the node under the cursor.
func (m *Menu) CurrentEntry() *Node { return m.level.Children[m.cursor] }

// Depth returns the current level depth (root level = 0).
func (m *Menu) Depth() int { return m.level.Depth() }

// Selections returns the number of completed Enter operations on leaves.
func (m *Menu) Selections() int { return m.selects }

// MoveTo places the cursor on an absolute index, clamped to the level.
// It reports whether the cursor actually moved.
func (m *Menu) MoveTo(index int) bool {
	if index < 0 {
		index = 0
	}
	if index >= m.Len() {
		index = m.Len() - 1
	}
	if index == m.cursor {
		return false
	}
	m.cursor = index
	return true
}

// Step moves the cursor by delta, clamped. It reports whether it moved.
func (m *Menu) Step(delta int) bool { return m.MoveTo(m.cursor + delta) }

// Enter descends into the entry under the cursor. On an inner node the
// cursor resets to its first child; on a leaf the Action (if any) runs and
// the selection counter increments.
func (m *Menu) Enter() error {
	cur := m.CurrentEntry()
	if cur.IsLeaf() {
		m.selects++
		if cur.Action != nil {
			cur.Action()
		}
		return fmt.Errorf("%w: %q", ErrLeaf, cur.Title)
	}
	m.level = cur
	m.cursor = 0
	return nil
}

// Back ascends one level, placing the cursor on the entry just left.
func (m *Menu) Back() error {
	if m.level == m.root {
		return ErrAtRoot
	}
	child := m.level
	m.level = child.parent
	m.cursor = 0
	for i, c := range m.level.Children {
		if c == child {
			m.cursor = i
			break
		}
	}
	return nil
}

// ResetToRoot returns to the root level, cursor on the first entry.
func (m *Menu) ResetToRoot() {
	m.level = m.root
	m.cursor = 0
}

// Window returns lines rows of the current level centred on the cursor,
// with the selected row prefixed by "> " and others by "  ". This is what
// the firmware writes to the top display.
func (m *Menu) Window(lines int) []string {
	if lines <= 0 {
		lines = 1
	}
	n := m.Len()
	start := m.cursor - lines/2
	if start > n-lines {
		start = n - lines
	}
	if start < 0 {
		start = 0
	}
	out := make([]string, 0, lines)
	for i := start; i < start+lines && i < n; i++ {
		prefix := "  "
		if i == m.cursor {
			prefix = "> "
		}
		out = append(out, prefix+m.level.Children[i].Title)
	}
	return out
}
