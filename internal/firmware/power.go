package firmware

import "time"

// Power management: the GP2D120 draws 33 mA — a third of the whole
// device's budget — so a deployed DistScroll cannot sample at 25 Hz
// around the clock. With PowerSave enabled the firmware drops to a slow
// idle cadence after a period without interaction and snaps back to the
// active rate on any scroll or button activity.

// Power-save defaults.
const (
	// DefaultIdleAfter is the inactivity span before entering idle.
	DefaultIdleAfter = 2 * time.Second
	// DefaultIdlePeriod is the idle sampling cadence (5 Hz).
	DefaultIdlePeriod = 200 * time.Millisecond
)

// powerState tracks the idle machinery.
type powerState struct {
	lastActivity time.Duration
	idle         bool
	idleCycles   uint64
	transitions  uint64
}

// TickPeriod returns the period until the next firmware cycle — the
// device scheduler asks after every Step. Without PowerSave it is the
// configured sample period.
func (fw *Firmware) TickPeriod() time.Duration {
	period := fw.cfg.SamplePeriod
	if period <= 0 {
		period = DefaultConfig().SamplePeriod
	}
	if !fw.cfg.PowerSave || !fw.power.idle {
		return period
	}
	idle := fw.cfg.IdleSamplePeriod
	if idle <= 0 {
		idle = DefaultIdlePeriod
	}
	if idle < period {
		idle = period
	}
	return idle
}

// Idle reports whether the firmware is in the slow idle cadence.
func (fw *Firmware) Idle() bool { return fw.power.idle }

// IdleCycles reports how many cycles ran at the idle cadence.
func (fw *Firmware) IdleCycles() uint64 { return fw.power.idleCycles }

// IdleTransitions reports how many times the firmware entered or left
// idle.
func (fw *Firmware) IdleTransitions() uint64 { return fw.power.transitions }

// noteActivity marks user interaction, leaving idle immediately.
func (fw *Firmware) noteActivity(now time.Duration) {
	fw.power.lastActivity = now
	if fw.power.idle {
		fw.power.idle = false
		fw.power.transitions++
	}
}

// updatePower advances the idle state machine at the end of a cycle.
func (fw *Firmware) updatePower(now time.Duration) {
	if !fw.cfg.PowerSave {
		return
	}
	if fw.power.idle {
		fw.power.idleCycles++
		return
	}
	idleAfter := fw.cfg.IdleAfter
	if idleAfter <= 0 {
		idleAfter = DefaultIdleAfter
	}
	if now-fw.power.lastActivity >= idleAfter {
		fw.power.idle = true
		fw.power.transitions++
	}
}

// DutyFactor estimates the sensing duty relative to always-active
// operation, from the cycle counters — the power-budget input.
func (fw *Firmware) DutyFactor() float64 {
	total := fw.stats.cycles.Load()
	if total == 0 {
		return 1
	}
	active := float64(total - fw.power.idleCycles)
	idlePeriod := fw.cfg.IdleSamplePeriod
	if idlePeriod <= 0 {
		idlePeriod = DefaultIdlePeriod
	}
	period := fw.cfg.SamplePeriod
	if period <= 0 {
		period = DefaultConfig().SamplePeriod
	}
	// Idle cycles cover idlePeriod/period as much wall time per sample.
	wallActive := active * float64(period)
	wallIdle := float64(fw.power.idleCycles) * float64(idlePeriod)
	if wallActive+wallIdle == 0 {
		return 1
	}
	// Sensing happens once per cycle regardless of cadence; duty is
	// samples per wall time, normalised to the active rate.
	samplesPerNs := float64(total) / (wallActive + wallIdle)
	return samplesPerNs * float64(period)
}
