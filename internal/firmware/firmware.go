package firmware

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/hcilab/distscroll/internal/buttons"
	devctx "github.com/hcilab/distscroll/internal/context"
	"github.com/hcilab/distscroll/internal/display"
	"github.com/hcilab/distscroll/internal/mapping"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/smartits"
	"github.com/hcilab/distscroll/internal/telemetry"
	"github.com/hcilab/distscroll/internal/tracing"
)

// Config parameterises the firmware build.
type Config struct {
	// DeviceID is stamped into every telemetry message (frame v1) so a
	// host hub can attribute frames when many devices share a receiver.
	DeviceID uint32
	// SamplePeriod is the sensor polling period (prototype: 25 Hz).
	SamplePeriod time.Duration
	// Filter selects the smoothing strategy; FilterAlpha its EMA gain.
	Filter      FilterKind
	FilterAlpha float64
	// Mapping is the island mapping template; Entries is overwritten per
	// menu level.
	Mapping mapping.Config
	// DebugPeriod is how often the bottom (debug) display refreshes.
	DebugPeriod time.Duration
	// HeartbeatPeriod is the keep-alive interval on the RF link.
	HeartbeatPeriod time.Duration
	// SelectButton confirms the current entry; BackButton ascends.
	SelectButton buttons.ID
	BackButton   buttons.ID
	// LowBatteryVolts is the warning threshold; <= 0 uses the default.
	LowBatteryVolts float64
	// DualSensor averages both distance sensors (the prototype fits two;
	// "only one is used in our experiments so far") for √2 lower noise.
	DualSensor bool
	// PowerSave drops to a slow sampling cadence after IdleAfter without
	// interaction; IdleSamplePeriod is that cadence (defaults apply when
	// zero). The GP2D120 is the largest power draw on the board.
	PowerSave        bool
	IdleAfter        time.Duration
	IdleSamplePeriod time.Duration
	// Mode selects absolute island mapping (the paper's technique) or
	// speed-dependent relative scrolling.
	Mode InputMode
	// SDAZ tunes the relative mode's gain curve; zero value uses the
	// defaults.
	SDAZ menu.SDAZ
	// ContextSensing enables the Section 4.3 extension: the ADXL311 is
	// sampled and a posture/hand context is classified and telemetered.
	ContextSensing bool
	// AutoHandedness (with ContextSensing and a slidable layout) mirrors
	// the select/back roles when a left-handed grip is detected.
	AutoHandedness bool
	// Trace is the device's flight recorder; every emitted frame records a
	// firmware.sample span event (the birth of its trace) on it. Nil
	// disables tracing.
	Trace *tracing.Recorder
}

// DefaultConfig is the prototype firmware build.
func DefaultConfig() Config {
	return Config{
		SamplePeriod:    40 * time.Millisecond, // 25 Hz
		Filter:          MedianEMA,
		FilterAlpha:     0.35,
		Mapping:         mapping.DefaultConfig(1),
		DebugPeriod:     200 * time.Millisecond,
		HeartbeatPeriod: time.Second,
		SelectButton:    buttons.TopRight, // "most conveniently operated with the thumb"
		BackButton:      buttons.LeftUpper,
	}
}

// Sender transmits a telemetry payload; in the assembled device this is the
// RF link, in unit tests a recording stub.
type Sender interface {
	Send(payload []byte) (time.Duration, error)
}

// Stats counts firmware activity.
type Stats struct {
	Cycles        uint64
	ScrollEvents  uint64
	SelectEvents  uint64
	LevelChanges  uint64
	IslandFlicker uint64 // cursor changes that immediately reverted
	TxErrors      uint64
	DisplayWrites uint64
	// ADCReads counts analog conversions (distance channels + battery).
	ADCReads uint64
	// IslandSwitches counts active-island changes at the mapper;
	// HysteresisHolds counts selections the hysteresis band retained after
	// the voltage left the strict island bounds (rejected flickers).
	IslandSwitches  uint64
	HysteresisHolds uint64
	// FramesSent counts telemetry payloads handed to the transmitter.
	FramesSent uint64
}

// counters are the firmware's internal counters. They are atomic so a
// telemetry reporter may snapshot a running fleet from another goroutine;
// the firmware itself is single-goroutine, so every add is uncontended.
type counters struct {
	cycles, scrollEvents, selectEvents, levelChanges atomic.Uint64
	islandFlicker, txErrors, displayWrites           atomic.Uint64
	adcReads, islandSwitches, hystHolds, framesSent  atomic.Uint64
}

func (c *counters) stats() Stats {
	return Stats{
		Cycles:          c.cycles.Load(),
		ScrollEvents:    c.scrollEvents.Load(),
		SelectEvents:    c.selectEvents.Load(),
		LevelChanges:    c.levelChanges.Load(),
		IslandFlicker:   c.islandFlicker.Load(),
		TxErrors:        c.txErrors.Load(),
		DisplayWrites:   c.displayWrites.Load(),
		ADCReads:        c.adcReads.Load(),
		IslandSwitches:  c.islandSwitches.Load(),
		HysteresisHolds: c.hystHolds.Load(),
		FramesSent:      c.framesSent.Load(),
	}
}

// Firmware is the device control loop.
type Firmware struct {
	cfg    Config
	board  *smartits.Board
	menu   *menu.Menu
	mapper *mapping.Mapper
	filter Filter
	tx     Sender

	stats      counters
	lastMap    mapping.MapStats // last mirrored mapper counters
	ctx        contextState
	health     health
	power      powerState
	rel        relativeState
	seq        uint16
	lastDebug  time.Duration
	lastBeat   time.Duration
	lastIndex  int
	prevIndex  int
	lastTopWin []string
	started    bool
	// txBuf is the reusable marshal scratch for send: the firmware emits a
	// frame every few virtual milliseconds for the whole run, so marshalling
	// into a fresh slice each time would dominate the device-side allocation
	// profile. Transports must not retain the payload past Send/SendTagged
	// (see rf.Transport); the ARQ layer copies what it queues.
	txBuf []byte
}

// New builds firmware bound to a board, a menu and a transmitter. tx may be
// nil for a device without a radio.
func New(cfg Config, board *smartits.Board, m *menu.Menu, tx Sender) (*Firmware, error) {
	if board == nil {
		return nil, errors.New("firmware: board is required")
	}
	if m == nil {
		return nil, errors.New("firmware: menu is required")
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = DefaultConfig().SamplePeriod
	}
	if cfg.DebugPeriod <= 0 {
		cfg.DebugPeriod = DefaultConfig().DebugPeriod
	}
	if cfg.HeartbeatPeriod <= 0 {
		cfg.HeartbeatPeriod = DefaultConfig().HeartbeatPeriod
	}
	if cfg.SelectButton == 0 {
		cfg.SelectButton = buttons.TopRight
	}
	if cfg.BackButton == 0 {
		cfg.BackButton = buttons.LeftUpper
	}
	f, err := NewFilter(cfg.Filter, cfg.FilterAlpha)
	if err != nil {
		if cfg.Filter != 0 {
			return nil, err
		}
		f, _ = NewFilter(MedianEMA, cfg.FilterAlpha)
	}
	fw := &Firmware{
		cfg:       cfg,
		board:     board,
		menu:      m,
		filter:    f,
		tx:        tx,
		lastIndex: -1,
		prevIndex: -1,
	}
	if cfg.ContextSensing {
		fw.ctx.detector = devctx.NewDetector(devctx.DefaultConfig())
	}
	fw.rel.sdaz = cfg.SDAZ
	if fw.rel.sdaz.GainHigh == 0 {
		fw.rel.sdaz = menu.DefaultSDAZ()
	}
	if err := fw.rebuildMapper(); err != nil {
		return nil, err
	}
	return fw, nil
}

// Stats returns a snapshot of the firmware counters.
func (fw *Firmware) Stats() Stats { return fw.stats.stats() }

// Collect contributes the firmware counters to a telemetry snapshot. In a
// fleet every device collects into the same fleet-wide names, so the
// snapshot carries aggregates.
func (fw *Firmware) Collect(s *telemetry.Snapshot) {
	st := fw.Stats()
	s.AddCounter(telemetry.MetricFwCycles, st.Cycles)
	s.AddCounter(telemetry.MetricFwADCReads, st.ADCReads)
	s.AddCounter(telemetry.MetricFwScrollEvents, st.ScrollEvents)
	s.AddCounter(telemetry.MetricFwSelectEvents, st.SelectEvents)
	s.AddCounter(telemetry.MetricFwLevelChanges, st.LevelChanges)
	s.AddCounter(telemetry.MetricFwIslandSwitches, st.IslandSwitches)
	s.AddCounter(telemetry.MetricFwHysteresisHolds, st.HysteresisHolds)
	s.AddCounter(telemetry.MetricFwIslandFlicker, st.IslandFlicker)
	s.AddCounter(telemetry.MetricFwFramesSent, st.FramesSent)
	s.AddCounter(telemetry.MetricFwTxErrors, st.TxErrors)
	s.AddCounter(telemetry.MetricFwDisplayWrites, st.DisplayWrites)
}

// Mapper returns the active island mapper (rebuilt on level changes).
func (fw *Firmware) Mapper() *mapping.Mapper { return fw.mapper }

// Menu returns the navigated menu.
func (fw *Firmware) Menu() *menu.Menu { return fw.menu }

// rebuildMapper constructs an island mapping sized to the current menu
// level, exactly as the paper describes: "We first chose how many entities
// lie in a given data structure and then distributed these entities as
// described over the sensor range."
func (fw *Firmware) rebuildMapper() error {
	cfg := fw.cfg.Mapping
	if cfg.NearCm == 0 && cfg.FarCm == 0 {
		cfg = mapping.DefaultConfig(fw.menu.Len())
	}
	cfg.Entries = fw.menu.Len()
	m, err := mapping.New(cfg, fw.board.Sensor.Ideal)
	if err != nil {
		return fmt.Errorf("firmware: rebuild mapper: %w", err)
	}
	fw.mapper = m
	fw.lastMap = mapping.MapStats{}
	fw.filter.Reset()
	fw.resetRelative()
	fw.lastIndex = -1
	fw.prevIndex = -1
	return nil
}

// mirrorMapStats folds the mapper's counter deltas since the last cycle
// into the firmware counters (the mapper itself is reset on level changes,
// the firmware counters are not).
func (fw *Firmware) mirrorMapStats() {
	st := fw.mapper.Stats()
	if d := st.Switches - fw.lastMap.Switches; d != 0 {
		fw.stats.islandSwitches.Add(d)
	}
	if d := st.Holds - fw.lastMap.Holds; d != 0 {
		fw.stats.hystHolds.Add(d)
	}
	fw.lastMap = st
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Step runs one firmware cycle at virtual time now. The cadence is owned by
// the caller (the scheduler in the assembled device, a plain loop in
// tests and benchmarks).
func (fw *Firmware) Step(now time.Duration) error {
	fw.stats.cycles.Add(1)

	// 1. Sample the distance channel (averaging the second sensor in
	// dual mode).
	code, err := fw.board.ADC.Read(smartits.ChanDistance)
	if err != nil {
		return fmt.Errorf("firmware: sample: %w", err)
	}
	fw.stats.adcReads.Add(1)
	raw := fw.board.ADC.Voltage(code)
	if fw.cfg.DualSensor && fw.board.Sensor2 != nil {
		code2, err := fw.board.ADC.Read(smartits.ChanDistance2)
		if err != nil {
			return fmt.Errorf("firmware: sample 2: %w", err)
		}
		fw.stats.adcReads.Add(1)
		raw = (raw + fw.board.ADC.Voltage(code2)) / 2
	}
	v := fw.filter.Apply(raw)

	// 1b. Classify the signal: beyond the range the sensor makes "no
	// measurement" and the cursor holds; near-zero means a dark or
	// disconnected sensor (hardware fault indicator).
	signal := fw.classifySignal(v)

	// 2. Map to an entry. Absolute mode uses the island mapping (between
	// islands nothing changes); relative mode steps the cursor by the
	// speed-scaled distance change.
	index, active := -1, false
	if signal == SignalOK {
		switch fw.cfg.Mode {
		case Relative:
			if dist, err := fw.board.Sensor.Distance(v); err == nil {
				if step := fw.relativeStep(dist, now); step != 0 {
					index = clampIndex(fw.menu.Cursor()+step, fw.menu.Len())
					active = true
				}
			}
		default:
			index, active = fw.mapper.Map(v)
			fw.mirrorMapStats()
		}
	} else {
		fw.resetRelative()
	}
	if active && index != fw.menu.Cursor() {
		if index == fw.prevIndex {
			fw.stats.islandFlicker.Add(1)
		}
		fw.prevIndex = fw.menu.Cursor()
		fw.menu.MoveTo(index)
		fw.stats.scrollEvents.Add(1)
		fw.noteActivity(now)
		fw.send(rf.Message{Kind: rf.MsgScroll, Index: int16(index)}, now)
	}
	fw.lastIndex = index

	// 2b. Context sensing (Section 4.3 extension): classify posture and
	// hand, adapting the button roles on a slidable layout.
	if err := fw.senseContext(now); err != nil {
		return err
	}

	// 3. Redraw the top display when the window changed.
	if err := fw.drawTop(); err != nil {
		return err
	}

	// 4. Buttons.
	for _, ev := range fw.board.Pad.Scan(now) {
		if ev.Kind != buttons.Press {
			continue
		}
		fw.noteActivity(now)
		switch ev.Button {
		case fw.cfg.SelectButton:
			if err := fw.handleSelect(now, ev.Button); err != nil {
				return err
			}
		case fw.cfg.BackButton:
			if err := fw.handleBack(now); err != nil {
				return err
			}
		}
	}

	// 5. Debug display and heartbeat on their own cadences.
	if now-fw.lastDebug >= fw.cfg.DebugPeriod || !fw.started {
		fw.lastDebug = now
		if err := fw.drawDebug(v, index, now); err != nil {
			return err
		}
	}
	if now-fw.lastBeat >= fw.cfg.HeartbeatPeriod {
		fw.lastBeat = now
		fw.send(rf.Message{Kind: rf.MsgHeartbeat}, now)
	}
	fw.updatePower(now)
	fw.started = true
	return nil
}

func (fw *Firmware) handleSelect(now time.Duration, b buttons.ID) error {
	entry := fw.menu.CurrentEntry()
	err := fw.menu.Enter()
	switch {
	case err == nil:
		// Descended into a submenu: the level size changed, so the island
		// mapping is rebuilt for the new entry count.
		fw.stats.levelChanges.Add(1)
		fw.send(rf.Message{Kind: rf.MsgLevel, Index: int16(fw.menu.Depth())}, now)
		if err := fw.rebuildMapper(); err != nil {
			return err
		}
		fw.lastTopWin = nil
		return fw.drawTop()
	case errors.Is(err, menu.ErrLeaf):
		fw.stats.selectEvents.Add(1)
		fw.send(rf.Message{
			Kind:   rf.MsgSelect,
			Index:  int16(fw.menu.Cursor()),
			Button: byte(b),
		}, now)
		_ = entry
		return nil
	default:
		return fmt.Errorf("firmware: select: %w", err)
	}
}

func (fw *Firmware) handleBack(now time.Duration) error {
	err := fw.menu.Back()
	if errors.Is(err, menu.ErrAtRoot) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("firmware: back: %w", err)
	}
	fw.stats.levelChanges.Add(1)
	fw.send(rf.Message{Kind: rf.MsgLevel, Index: int16(fw.menu.Depth())}, now)
	if err := fw.rebuildMapper(); err != nil {
		return err
	}
	fw.lastTopWin = nil
	return fw.drawTop()
}

// drawTop writes the menu window to the top display, skipping I2C traffic
// when nothing changed (the 100 kHz bus is the slowest path in the loop).
// A bus error degrades the UI (stale display) instead of halting the
// firmware; the write is retried on the next cycle.
func (fw *Firmware) drawTop() error {
	win := fw.menu.Window(display.TextLines)
	if equalLines(win, fw.lastTopWin) {
		return nil
	}
	fw.stats.displayWrites.Add(1)
	if err := fw.board.Bus.Write(smartits.AddrTopDisplay, []byte{display.CmdClear}); err != nil {
		fw.health.displayErrs++
		fw.lastTopWin = nil
		return nil
	}
	for i, line := range win {
		cmd := append([]byte{display.CmdSetLine, byte(i)}, line...)
		if err := fw.board.Bus.Write(smartits.AddrTopDisplay, cmd); err != nil {
			fw.health.displayErrs++
			fw.lastTopWin = nil
			return nil
		}
	}
	fw.lastTopWin = win
	return nil
}

// drawDebug writes "additional state information" to the bottom display
// (paper Figure 1), as the study used it: filtered voltage, island index,
// menu depth/cursor and battery level.
func (fw *Firmware) drawDebug(v float64, island int, now time.Duration) error {
	battCode, err := fw.board.ADC.Read(smartits.ChanBattery)
	if err != nil {
		return fmt.Errorf("firmware: battery: %w", err)
	}
	fw.stats.adcReads.Add(1)
	batt := fw.board.ADC.Voltage(battCode) * 2 // undo divider
	fw.updateBattery(batt)
	statusLine := "bat=" + strconv.FormatFloat(batt, 'f', 1, 64) + "V"
	switch {
	case fw.health.signal == SignalFault:
		statusLine = SignalFault.String()
	case fw.health.lowBattery:
		statusLine = "LOW BAT " + strconv.FormatFloat(batt, 'f', 1, 64) + "V"
	case fw.ctx.detector != nil:
		statusLine = fw.Context().String()
	}
	isleLine := "isle=" + strconv.Itoa(island)
	if fw.health.signal == SignalOutOfRange {
		// "no measurement can be made" — keep it within the 16-column
		// panel width.
		isleLine = "isle=no-meas"
	}
	lines := []string{
		"DistScroll dbg",
		"V=" + strconv.FormatFloat(v, 'f', 3, 64),
		isleLine,
		"lvl=" + strconv.Itoa(fw.menu.Depth()) + " cur=" + strconv.Itoa(fw.menu.Cursor()),
		statusLine,
	}
	fw.stats.displayWrites.Add(1)
	for i, line := range lines {
		cmd := append([]byte{display.CmdSetLine, byte(i)}, line...)
		if err := fw.board.Bus.Write(smartits.AddrBottomDisplay, cmd); err != nil {
			fw.health.displayErrs++
			break
		}
	}
	// The state frame carries the real cycle tick like every other message
	// so the host can measure end-to-end pipeline latency from it.
	fw.send(rf.Message{
		Kind:      rf.MsgState,
		VoltageMV: uint16(v * 1000),
		Island:    int16(island),
		Index:     int16(fw.menu.Cursor()),
		Context:   fw.contextByte(),
	}, now)
	return nil
}

func (fw *Firmware) send(m rf.Message, now time.Duration) {
	if fw.tx == nil {
		return
	}
	m.Device = fw.cfg.DeviceID
	m.Seq = fw.seq
	fw.seq++
	m.AtMillis = uint32(now / time.Millisecond)
	// The frame's trace is born here: device id + seq + origin tick is the
	// context every later hop keys on.
	fw.cfg.Trace.Record(tracing.HopFirmwareSample, m.Seq, now, uint32(m.Kind), 0)
	fw.txBuf = m.AppendBinary(fw.txBuf[:0])
	payload := fw.txBuf
	var err error
	// AppendBinary always emits the v1 layout; tell the transport so its
	// sent-by-version accounting never has to sniff payload bytes.
	if vs, ok := fw.tx.(rf.VersionedSender); ok {
		_, err = vs.SendTagged(payload, rf.PayloadV1)
	} else {
		_, err = fw.tx.Send(payload)
	}
	if err != nil {
		fw.stats.txErrors.Add(1)
		return
	}
	fw.stats.framesSent.Add(1)
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
