package firmware

import (
	"time"

	"github.com/hcilab/distscroll/internal/menu"
)

// InputMode selects how distance drives the cursor.
type InputMode int

// Input modes.
const (
	// Absolute is the paper's island mapping: each entry owns a fixed
	// voltage island over the 4–30 cm range.
	Absolute InputMode = iota
	// Relative is speed-dependent relative scrolling: *changes* in
	// distance step the cursor, with the gain rising at higher movement
	// speed (Igarashi & Hinckley's automatic zooming, which the paper
	// cites for long menus). The structure size no longer matters — only
	// movement does.
	Relative
)

// String returns the mode name.
func (m InputMode) String() string {
	if m == Relative {
		return "relative"
	}
	return "absolute"
}

// relativeState carries the rate-control machinery.
type relativeState struct {
	sdaz     menu.SDAZ
	lastDist float64
	lastAt   time.Duration
	primed   bool
	// accum holds fractional entry movement between cycles.
	accum float64
}

// relativeStep converts the distance change since the last cycle into an
// entry delta using the speed-dependent gain. v must already be a valid
// in-range voltage; dist is the implied distance in cm.
func (fw *Firmware) relativeStep(dist float64, now time.Duration) int {
	rs := &fw.rel
	if !rs.primed {
		rs.lastDist = dist
		rs.lastAt = now
		rs.primed = true
		return 0
	}
	dt := (now - rs.lastAt).Seconds()
	if dt <= 0 {
		return 0
	}
	delta := dist - rs.lastDist
	speed := delta / dt
	rs.lastDist = dist
	rs.lastAt = now

	// Dead zone: tremor-scale movement does not scroll.
	if delta > -0.05 && delta < 0.05 {
		return 0
	}
	rs.accum += delta * fw.rel.sdaz.Gain(speed)
	step := int(rs.accum)
	rs.accum -= float64(step)
	// Towards the body = down, as in the absolute default.
	return -step
}

// resetRelative clears the rate-control state (level changes, signal
// loss).
func (fw *Firmware) resetRelative() {
	fw.rel.primed = false
	fw.rel.accum = 0
}
