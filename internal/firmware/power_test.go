package firmware

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/smartits"
)

func newPowerRig(t *testing.T) *rig {
	t.Helper()
	boardCfg := smartits.DefaultConfig()
	boardCfg.Sensor.NoiseSD = 0
	board, err := smartits.Assemble(boardCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := menu.New(menu.FlatMenu(10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PowerSave = true
	fw, err := New(cfg, board, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{board: board, fw: fw, menu: m, rec: &recorder{}}
}

// stepsAt runs n firmware cycles honouring the firmware's own tick hint.
func (r *rig) stepsAt(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r.now += r.fw.TickPeriod()
		if err := r.fw.Step(r.now); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
}

func TestIdleEntersAfterInactivity(t *testing.T) {
	r := newPowerRig(t)
	if r.fw.Idle() {
		t.Fatal("idle before anything ran")
	}
	// Hold still for > 2 s: the firmware idles.
	r.stepsAt(t, 60) // 60 * 40 ms = 2.4 s
	if !r.fw.Idle() {
		t.Fatal("did not enter idle")
	}
	if r.fw.TickPeriod() != DefaultIdlePeriod {
		t.Fatalf("idle period %v", r.fw.TickPeriod())
	}
	r.stepsAt(t, 10)
	if r.fw.IdleCycles() == 0 {
		t.Fatal("idle cycles not counted")
	}
}

func TestActivityWakesImmediately(t *testing.T) {
	r := newPowerRig(t)
	r.stepsAt(t, 60)
	if !r.fw.Idle() {
		t.Fatal("setup: not idle")
	}
	// Move the device: the next cycle detects the scroll and wakes.
	d, err := r.fw.Mapper().DistanceFor(7)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.stepsAt(t, 5)
	if r.fw.Idle() {
		t.Fatal("still idle after movement")
	}
	if r.fw.TickPeriod() != DefaultConfig().SamplePeriod {
		t.Fatalf("period after wake %v", r.fw.TickPeriod())
	}
	if r.fw.IdleTransitions() < 2 {
		t.Fatalf("transitions = %d", r.fw.IdleTransitions())
	}
	if r.menu.Cursor() != 7 {
		t.Fatalf("cursor = %d (wake missed the scroll)", r.menu.Cursor())
	}
}

func TestButtonWakes(t *testing.T) {
	r := newPowerRig(t)
	r.stepsAt(t, 60)
	if !r.fw.Idle() {
		t.Fatal("setup: not idle")
	}
	r.board.Pad.Set(r.fw.SelectButton(), true, r.now)
	r.now += 30 * time.Millisecond
	if err := r.fw.Step(r.now); err != nil {
		t.Fatal(err)
	}
	if r.fw.Idle() {
		t.Fatal("button did not wake the firmware")
	}
}

func TestDutyFactorDropsWhenIdle(t *testing.T) {
	r := newPowerRig(t)
	r.stepsAt(t, 300) // mostly idle after the first 2 s
	duty := r.fw.DutyFactor()
	if duty >= 0.7 {
		t.Fatalf("duty factor %.2f, want well below 1 after a long idle", duty)
	}
	if duty <= 0 {
		t.Fatalf("duty factor %.2f invalid", duty)
	}
}

func TestPowerSaveOffKeepsFullRate(t *testing.T) {
	r := newRig(t, menu.FlatMenu(5), DefaultConfig())
	r.steps(t, 100)
	if r.fw.Idle() {
		t.Fatal("idle without PowerSave")
	}
	if r.fw.TickPeriod() != DefaultConfig().SamplePeriod {
		t.Fatalf("period %v", r.fw.TickPeriod())
	}
	if got := r.fw.DutyFactor(); got != 1 {
		t.Fatalf("duty %v", got)
	}
}
