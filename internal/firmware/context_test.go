package firmware

import (
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/adxl311"
	"github.com/hcilab/distscroll/internal/buttons"
	devctx "github.com/hcilab/distscroll/internal/context"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/smartits"
)

func newContextRig(t *testing.T, layout buttons.Layout, auto bool) *rig {
	t.Helper()
	boardCfg := smartits.DefaultConfig()
	boardCfg.Sensor.NoiseSD = 0
	boardCfg.Layout = layout
	board, err := smartits.Assemble(boardCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := menu.New(menu.FlatMenu(6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ContextSensing = true
	cfg.AutoHandedness = auto
	if len(layout.Buttons) >= 2 {
		cfg.SelectButton = layout.Buttons[0]
		cfg.BackButton = layout.Buttons[1]
	}
	rec := &recorder{}
	fw, err := New(cfg, board, m, rec)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{board: board, fw: fw, menu: m, rec: rec}
}

func TestContextClassifiedFromOrientation(t *testing.T) {
	r := newContextRig(t, buttons.SlidableTwoButtonLayout(), false)
	// Right-hand reading grip: pitched up, rolled slightly left.
	r.board.Accel.SetOrientation(adxl311.Orientation{Pitch: 0.6, Roll: -0.25})
	r.steps(t, 10)
	c := r.fw.Context()
	if c.Posture != devctx.PostureHeld {
		t.Fatalf("posture = %v", c.Posture)
	}
	if c.Hand != devctx.HandRight {
		t.Fatalf("hand = %v", c.Hand)
	}
}

func TestContextShownOnDebugDisplay(t *testing.T) {
	r := newContextRig(t, buttons.SlidableTwoButtonLayout(), false)
	r.board.Accel.SetOrientation(adxl311.Orientation{Pitch: 0.6, Roll: -0.25})
	r.steps(t, 10)
	out := r.board.Bottom.Render()
	if !strings.Contains(out, "held/right") {
		t.Fatalf("debug display missing context:\n%s", out)
	}
}

func TestContextTelemetered(t *testing.T) {
	r := newContextRig(t, buttons.SlidableTwoButtonLayout(), false)
	r.board.Accel.SetOrientation(adxl311.Orientation{Pitch: 0.6, Roll: 0.3}) // left hand
	r.steps(t, 20)
	states := r.rec.kinds(rf.MsgState)
	if len(states) == 0 {
		t.Fatal("no state telemetry")
	}
	c := devctx.DecodeContext(states[len(states)-1].Context)
	if c.Hand != devctx.HandLeft {
		t.Fatalf("telemetered hand = %v", c.Hand)
	}
}

func TestAutoHandednessSwapsButtons(t *testing.T) {
	r := newContextRig(t, buttons.SlidableTwoButtonLayout(), true)
	originalSelect := r.fw.SelectButton()

	// Left-handed grip: roles mirror.
	r.board.Accel.SetOrientation(adxl311.Orientation{Pitch: 0.6, Roll: 0.3})
	r.steps(t, 10)
	if r.fw.SelectButton() == originalSelect {
		t.Fatal("select button did not move for a left-handed grip")
	}
	if r.fw.HandednessFlips() != 1 {
		t.Fatalf("flips = %d", r.fw.HandednessFlips())
	}

	// The mirrored select button actually selects.
	d, err := r.fw.Mapper().DistanceFor(2)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 10)
	r.board.Pad.Set(r.fw.SelectButton(), true, r.now)
	r.now += 30 * time.Millisecond
	if err := r.fw.Step(r.now); err != nil {
		t.Fatal(err)
	}
	if r.fw.Stats().SelectEvents != 1 {
		t.Fatalf("select events = %d", r.fw.Stats().SelectEvents)
	}

	// Back to a right-handed grip: roles restore.
	r.board.Pad.Set(r.fw.SelectButton(), false, r.now)
	r.board.Accel.SetOrientation(adxl311.Orientation{Pitch: 0.6, Roll: -0.25})
	r.steps(t, 10)
	if r.fw.SelectButton() != originalSelect {
		t.Fatal("select button did not restore for a right-handed grip")
	}
	if r.fw.HandednessFlips() != 2 {
		t.Fatalf("flips = %d", r.fw.HandednessFlips())
	}
}

func TestAutoHandednessRequiresSlidableLayout(t *testing.T) {
	// The fixed prototype layout must never swap, whatever the grip.
	r := newContextRig(t, buttons.PrototypeLayout(), true)
	original := r.fw.SelectButton()
	r.board.Accel.SetOrientation(adxl311.Orientation{Pitch: 0.6, Roll: 0.3})
	r.steps(t, 10)
	if r.fw.SelectButton() != original {
		t.Fatal("fixed layout swapped buttons")
	}
	if r.fw.HandednessFlips() != 0 {
		t.Fatalf("flips = %d", r.fw.HandednessFlips())
	}
}

func TestContextDisabledByDefault(t *testing.T) {
	r := newRig(t, menu.FlatMenu(5), DefaultConfig())
	r.steps(t, 5)
	c := r.fw.Context()
	if c.Posture != devctx.PostureUnknown {
		t.Fatalf("context sensing active by default: %+v", c)
	}
}
