package firmware

// This file adds the field-robustness behaviours a deployed device needs
// (and a lab prototype reveals the moment a ribbon cable works loose):
//
//   - display bus errors degrade the UI instead of halting the firmware;
//   - a low battery raises a persistent warning on the debug display;
//   - the sensor signal is classified: beyond ~30 cm the GP2D120 makes
//     "no measurement" (paper Section 4.2) and the cursor simply holds;
//     a near-zero voltage means the sensor is dark or disconnected and is
//     flagged as a hardware fault.

// Sensor-signal classification thresholds in volts.
const (
	// faultVolts: below this the sensor is disconnected or unpowered
	// (even an empty room returns the ~0.25 V floor).
	faultVolts = 0.10
	// outOfRangeVolts: below this no object is inside the usable range.
	outOfRangeVolts = 0.32
)

// DefaultLowBatteryVolts is the 9 V block level at which the regulator
// starts to sag.
const DefaultLowBatteryVolts = 6.5

// SignalState classifies the sensor input.
type SignalState int

// Signal states.
const (
	// SignalOK: an object is inside the measurable range.
	SignalOK SignalState = iota
	// SignalOutOfRange: nothing within ~30 cm; the cursor holds.
	SignalOutOfRange
	// SignalFault: the sensor reads (near) zero — disconnected.
	SignalFault
)

// String returns the state name.
func (s SignalState) String() string {
	switch s {
	case SignalOutOfRange:
		return "out-of-range"
	case SignalFault:
		return "SENSOR FAULT"
	default:
		return "ok"
	}
}

// health carries the robustness state.
type health struct {
	signal      SignalState
	signalRuns  int // consecutive cycles in the candidate state
	candidate   SignalState
	lowBattery  bool
	battVolts   float64
	displayErrs uint64
	sensorFault uint64
}

// classifySignal debounces the sensor-signal state over three cycles so a
// single noisy sample cannot flap the indicator.
func (fw *Firmware) classifySignal(v float64) SignalState {
	var next SignalState
	switch {
	case v < faultVolts:
		next = SignalFault
	case v < outOfRangeVolts:
		next = SignalOutOfRange
	default:
		next = SignalOK
	}
	if next == fw.health.candidate {
		fw.health.signalRuns++
	} else {
		fw.health.candidate = next
		fw.health.signalRuns = 1
	}
	if fw.health.signalRuns >= 3 && fw.health.signal != fw.health.candidate {
		fw.health.signal = fw.health.candidate
		if fw.health.signal == SignalFault {
			fw.health.sensorFault++
		}
	}
	return fw.health.signal
}

// Signal returns the debounced sensor-signal state.
func (fw *Firmware) Signal() SignalState { return fw.health.signal }

// LowBattery reports whether the battery warning is active.
func (fw *Firmware) LowBattery() bool { return fw.health.lowBattery }

// BatteryVolts returns the last battery measurement.
func (fw *Firmware) BatteryVolts() float64 { return fw.health.battVolts }

// DisplayErrors reports how many display transactions failed (the
// firmware keeps running; the UI is merely stale).
func (fw *Firmware) DisplayErrors() uint64 { return fw.health.displayErrs }

// SensorFaults reports how many times the sensor entered the fault state.
func (fw *Firmware) SensorFaults() uint64 { return fw.health.sensorFault }

// updateBattery refreshes the low-battery latch from a measured voltage.
func (fw *Firmware) updateBattery(volts float64) {
	fw.health.battVolts = volts
	threshold := fw.cfg.LowBatteryVolts
	if threshold <= 0 {
		threshold = DefaultLowBatteryVolts
	}
	// Latch with 0.2 V of release hysteresis so the warning does not
	// flicker as the battery recovers under varying load.
	if volts < threshold {
		fw.health.lowBattery = true
	} else if volts > threshold+0.2 {
		fw.health.lowBattery = false
	}
}
