package firmware

import (
	"math"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/smartits"
)

// measureNoise runs a firmware build with noisy sensors at a fixed
// distance and returns the standard deviation of the raw (unfiltered)
// channel readings the loop consumed, approximated by sampling the same
// chain.
func measureNoise(t *testing.T, dual bool, seed uint64) float64 {
	t.Helper()
	boardCfg := smartits.DefaultConfig() // noisy sensors, both fitted
	board, err := smartits.Assemble(boardCfg, sim.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	board.SetDistance(15)
	var vals []float64
	for i := 0; i < 3000; i++ {
		c1, err := board.ADC.Read(smartits.ChanDistance)
		if err != nil {
			t.Fatal(err)
		}
		v := board.ADC.Voltage(c1)
		if dual {
			c2, err := board.ADC.Read(smartits.ChanDistance2)
			if err != nil {
				t.Fatal(err)
			}
			v = (v + board.ADC.Voltage(c2)) / 2
		}
		vals = append(vals, v)
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	sum := 0.0
	for _, v := range vals {
		sum += (v - mean) * (v - mean)
	}
	return math.Sqrt(sum / float64(len(vals)-1))
}

func TestDualSensorHalvesNoisePower(t *testing.T) {
	single := measureNoise(t, false, 1)
	dual := measureNoise(t, true, 1)
	ratio := dual / single
	// Two independent sensors averaged: sd drops by ~1/√2 ≈ 0.71.
	if ratio > 0.85 {
		t.Fatalf("dual/single noise ratio %.3f, want ~0.71", ratio)
	}
	if ratio < 0.5 {
		t.Fatalf("dual/single noise ratio %.3f implausibly low", ratio)
	}
}

func TestDualSensorFirmwareScrolls(t *testing.T) {
	boardCfg := smartits.DefaultConfig()
	boardCfg.Sensor.NoiseSD = 0
	board, err := smartits.Assemble(boardCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := menu.New(menu.FlatMenu(10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DualSensor = true
	fw, err := New(cfg, board, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := fw.Mapper().DistanceFor(7)
	if err != nil {
		t.Fatal(err)
	}
	board.SetDistance(d)
	for i := 1; i <= 20; i++ {
		if err := fw.Step(time.Duration(i) * 40 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if m.Cursor() != 7 {
		t.Fatalf("cursor = %d", m.Cursor())
	}
}

func TestDualSensorGracefulWithoutSecondSensor(t *testing.T) {
	boardCfg := smartits.DefaultConfig()
	boardCfg.SecondSensor = false
	board, err := smartits.Assemble(boardCfg, sim.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := menu.New(menu.FlatMenu(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DualSensor = true // requested but not fitted: falls back
	fw, err := New(cfg, board, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := fw.Step(time.Duration(i) * 40 * time.Millisecond); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
}
