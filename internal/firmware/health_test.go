package firmware

import (
	"strings"
	"testing"

	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/smartits"
)

func TestOutOfRangeHoldsCursor(t *testing.T) {
	r := newRig(t, menu.FlatMenu(8), DefaultConfig())
	d, err := r.fw.Mapper().DistanceFor(4)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 10)
	if r.menu.Cursor() != 4 {
		t.Fatalf("setup cursor %d", r.menu.Cursor())
	}
	// Walk away: beyond ~40 cm the sensor floors out ("no measurement").
	// The filtered signal sweeps through the far entries on the way out —
	// exactly what a user moving the device away experiences — and then
	// the cursor must HOLD wherever it was when the signal vanished.
	r.board.SetDistance(60)
	r.steps(t, 20)
	if r.fw.Signal() != SignalOutOfRange {
		t.Fatalf("signal = %v", r.fw.Signal())
	}
	held := r.menu.Cursor()
	r.steps(t, 30)
	if r.menu.Cursor() != held {
		t.Fatalf("cursor moved while out of range: %d -> %d", held, r.menu.Cursor())
	}
	out := r.board.Bottom.Render()
	if !strings.Contains(out, "no-meas") {
		t.Fatalf("debug display:\n%s", out)
	}
	// Coming back recovers.
	r.board.SetDistance(d)
	r.steps(t, 10)
	if r.fw.Signal() != SignalOK {
		t.Fatalf("signal after recovery = %v", r.fw.Signal())
	}
}

func TestSensorFaultDetected(t *testing.T) {
	cfg := smartits.DefaultConfig()
	cfg.Sensor.NoiseSD = 0
	board, err := smartits.Assemble(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := menu.New(menu.FlatMenu(5))
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(DefaultConfig(), board, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{board: board, fw: fw, menu: m, rec: &recorder{}}
	// A dead sensor reads 0 V: simulate by unplugging the channel.
	if err := board.ADC.Connect(smartits.ChanDistance, nil); err != nil {
		t.Fatal(err)
	}
	r.steps(t, 10)
	if fw.Signal() != SignalFault {
		t.Fatalf("signal = %v", fw.Signal())
	}
	if fw.SensorFaults() != 1 {
		t.Fatalf("faults = %d", fw.SensorFaults())
	}
	out := board.Bottom.Render()
	if !strings.Contains(out, "SENSOR FAULT") {
		t.Fatalf("debug display:\n%s", out)
	}
}

func TestLowBatteryWarningLatches(t *testing.T) {
	r := newRig(t, menu.FlatMenu(5), DefaultConfig())
	r.board.DrainBattery(3) // 9 -> 6 V
	r.steps(t, 10)
	if !r.fw.LowBattery() {
		t.Fatalf("no low-battery latch at %.1f V", r.fw.BatteryVolts())
	}
	out := r.board.Bottom.Render()
	if !strings.Contains(out, "LOW BAT") {
		t.Fatalf("debug display:\n%s", out)
	}
}

func TestDisplayBusErrorDegradesInsteadOfHalting(t *testing.T) {
	r := newRig(t, menu.FlatMenu(8), DefaultConfig())
	r.steps(t, 5)
	// The ribbon cable works loose: the top display drops off the bus.
	r.board.Bus.Detach(smartits.AddrTopDisplay)
	d, err := r.fw.Mapper().DistanceFor(6)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 20) // must not error
	if r.fw.DisplayErrors() == 0 {
		t.Fatal("display errors not counted")
	}
	// Scrolling still works: the cursor followed the distance.
	if r.menu.Cursor() != 6 {
		t.Fatalf("cursor = %d", r.menu.Cursor())
	}
}

func TestDisplayRecoversAfterReattach(t *testing.T) {
	r := newRig(t, menu.FlatMenu(8), DefaultConfig())
	r.steps(t, 5)
	r.board.Bus.Detach(smartits.AddrTopDisplay)
	d, err := r.fw.Mapper().DistanceFor(6)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 5)
	// Reattach: the next cycle repaints because lastTopWin was cleared.
	if err := r.board.Bus.Attach(smartits.AddrTopDisplay, r.board.Top); err != nil {
		t.Fatal(err)
	}
	r.steps(t, 5)
	out := r.board.Top.Render()
	if !strings.Contains(out, "> Entry 07") {
		t.Fatalf("display after recovery:\n%s", out)
	}
}

func TestSignalStateStrings(t *testing.T) {
	for _, s := range []SignalState{SignalOK, SignalOutOfRange, SignalFault} {
		if s.String() == "" {
			t.Fatalf("state %d has empty name", s)
		}
	}
}
