package firmware

import (
	"fmt"
	"time"

	"github.com/hcilab/distscroll/internal/buttons"
	devctx "github.com/hcilab/distscroll/internal/context"
	"github.com/hcilab/distscroll/internal/smartits"
)

// This file implements the paper's Section 4.3 extension in the firmware:
// the ADXL311 is sampled alongside the distance sensor, a context detector
// classifies posture and holding hand, and — on the slidable two-button
// layout of Section 6 — the select/back roles follow the detected hand so
// the thumb button is always under the thumb.

// contextState carries the optional context-sensing machinery.
type contextState struct {
	detector *devctx.Detector
	// swapped is true while the select/back roles are mirrored for a
	// left-handed grip.
	swapped bool
	// flips counts handedness adaptations, for tests and telemetry.
	flips uint64
}

// senseContext samples the accelerometer channels and updates the
// detector; on a sustained hand change with adaptation enabled it swaps
// the button roles.
func (fw *Firmware) senseContext(now time.Duration) error {
	if fw.ctx.detector == nil {
		return nil
	}
	vxCode, err := fw.board.ADC.Read(smartits.ChanAccelX)
	if err != nil {
		return fmt.Errorf("firmware: accel x: %w", err)
	}
	vyCode, err := fw.board.ADC.Read(smartits.ChanAccelY)
	if err != nil {
		return fmt.Errorf("firmware: accel y: %w", err)
	}
	c := fw.ctx.detector.FeedVoltages(
		fw.board.ADC.Voltage(vxCode),
		fw.board.ADC.Voltage(vyCode),
	)

	if fw.cfg.AutoHandedness && fw.board.Pad.Layout().Slidable {
		wantSwap := c.Hand == devctx.HandLeft
		if wantSwap != fw.ctx.swapped {
			fw.ctx.swapped = wantSwap
			fw.ctx.flips++
			fw.cfg.SelectButton, fw.cfg.BackButton = fw.cfg.BackButton, fw.cfg.SelectButton
		}
	}
	_ = now
	return nil
}

// Context returns the current device context (zero value when context
// sensing is disabled).
func (fw *Firmware) Context() devctx.Context {
	if fw.ctx.detector == nil {
		return devctx.Context{}
	}
	return fw.ctx.detector.Current()
}

// HandednessFlips reports how many times the button roles adapted.
func (fw *Firmware) HandednessFlips() uint64 { return fw.ctx.flips }

// SelectButton returns the current select-button assignment (it moves
// under automatic handedness).
func (fw *Firmware) SelectButton() buttons.ID { return fw.cfg.SelectButton }

// BackButton returns the current back-button assignment.
func (fw *Firmware) BackButton() buttons.ID { return fw.cfg.BackButton }

// contextByte encodes the current context for telemetry.
func (fw *Firmware) contextByte() byte {
	if fw.ctx.detector == nil {
		return 0
	}
	return fw.ctx.detector.Current().Encode()
}
