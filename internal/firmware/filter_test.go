package firmware

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hcilab/distscroll/internal/sim"
)

func TestNewFilterKinds(t *testing.T) {
	for _, k := range []FilterKind{Raw, Median3, EMA, MedianEMA} {
		f, err := NewFilter(k, 0.3)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if f == nil {
			t.Fatalf("%v: nil filter", k)
		}
		if k.String() == "" {
			t.Fatalf("%v: empty name", k)
		}
	}
	if _, err := NewFilter(FilterKind(99), 0.3); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRawPassthrough(t *testing.T) {
	f, err := NewFilter(Raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1.5, -3, 2.7} {
		if got := f.Apply(v); got != v {
			t.Fatalf("Apply(%v) = %v", v, got)
		}
	}
}

func TestMedianKillsSingleOutlier(t *testing.T) {
	f, err := NewFilter(Median3, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Apply(1.0)
	f.Apply(1.0)
	// A single spurious spike (structured-surface outlier) must not pass.
	if got := f.Apply(3.0); got != 1.0 {
		t.Fatalf("median let outlier through: %v", got)
	}
	if got := f.Apply(1.02); got > 1.5 {
		t.Fatalf("median output after spike: %v", got)
	}
}

func TestMedianOutputIsOneOfInputs(t *testing.T) {
	f, err := NewFilter(Median3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(1)
	window := make([]float64, 0, 3)
	prop := func(_ uint8) bool {
		v := rng.Uniform(0, 3)
		window = append(window, v)
		if len(window) > 3 {
			window = window[1:]
		}
		got := f.Apply(v)
		for _, w := range window {
			if got == w {
				return true
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEMAConverges(t *testing.T) {
	f, err := NewFilter(EMA, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Apply(2.0); got != 2.0 {
		t.Fatalf("first sample should initialise: %v", got)
	}
	var got float64
	for i := 0; i < 50; i++ {
		got = f.Apply(1.0)
	}
	if math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("EMA did not converge: %v", got)
	}
}

func TestEMASmoothsNoise(t *testing.T) {
	f, err := NewFilter(EMA, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(2)
	var rawVar, filtVar float64
	const n = 5000
	mean := 1.5
	for i := 0; i < n; i++ {
		v := rng.Norm(mean, 0.05)
		fv := f.Apply(v)
		rawVar += (v - mean) * (v - mean)
		filtVar += (fv - mean) * (fv - mean)
	}
	if filtVar >= rawVar/2 {
		t.Fatalf("EMA variance reduction too weak: raw=%v filt=%v", rawVar/n, filtVar/n)
	}
}

func TestChainFilterCombines(t *testing.T) {
	f, err := NewFilter(MedianEMA, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	f.Apply(1.0)
	f.Apply(1.0)
	got := f.Apply(3.0) // spike
	if got > 1.1 {
		t.Fatalf("chain passed spike: %v", got)
	}
}

func TestFilterReset(t *testing.T) {
	for _, k := range []FilterKind{Median3, EMA, MedianEMA} {
		f, err := NewFilter(k, 0.35)
		if err != nil {
			t.Fatal(err)
		}
		f.Apply(2.0)
		f.Apply(2.0)
		f.Apply(2.0)
		f.Reset()
		// After reset the first sample re-initialises.
		if got := f.Apply(0.5); math.Abs(got-0.5) > 1e-9 {
			t.Fatalf("%v: after reset Apply(0.5) = %v", k, got)
		}
	}
}

func TestBadAlphaFallsBack(t *testing.T) {
	f, err := NewFilter(EMA, -3)
	if err != nil {
		t.Fatal(err)
	}
	f.Apply(1)
	got := f.Apply(2)
	if got <= 1 || got >= 2 {
		t.Fatalf("fallback alpha produced %v", got)
	}
}
