package firmware

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/smartits"
)

func newRelativeRig(t *testing.T, entries int) *rig {
	t.Helper()
	boardCfg := smartits.DefaultConfig()
	boardCfg.Sensor.NoiseSD = 0
	board, err := smartits.Assemble(boardCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := menu.New(menu.FlatMenu(entries))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = Relative
	fw, err := New(cfg, board, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{board: board, fw: fw, menu: m, rec: &recorder{}}
}

// glide moves the board smoothly from its current distance to target over
// n firmware cycles.
func (r *rig) glide(t *testing.T, target float64, n int) {
	t.Helper()
	start := r.board.Distance()
	for i := 1; i <= n; i++ {
		r.board.SetDistance(start + (target-start)*float64(i)/float64(n))
		r.now += 40 * time.Millisecond
		if err := r.fw.Step(r.now); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
}

func TestRelativeModeScrollsWithMovement(t *testing.T) {
	r := newRelativeRig(t, 100)
	r.board.SetDistance(20)
	r.steps(t, 5) // prime
	before := r.menu.Cursor()
	// Pull the device 8 cm towards the body: cursor moves down (higher
	// indices), with the distance travelled deciding how far.
	r.glide(t, 12, 20)
	after := r.menu.Cursor()
	if after <= before {
		t.Fatalf("cursor did not advance: %d -> %d", before, after)
	}
}

func TestRelativeModeDirection(t *testing.T) {
	r := newRelativeRig(t, 100)
	r.board.SetDistance(15)
	r.steps(t, 5)
	r.glide(t, 10, 15) // towards the body
	down := r.menu.Cursor()
	r.glide(t, 20, 15) // away
	up := r.menu.Cursor()
	if !(down > 0 && up < down) {
		t.Fatalf("direction mapping broken: down=%d up=%d", down, up)
	}
}

func TestRelativeModeFastMovementCoversMoreEntries(t *testing.T) {
	slow := newRelativeRig(t, 200)
	slow.board.SetDistance(24)
	slow.steps(t, 5)
	slow.glide(t, 16, 60) // 8 cm over 2.4 s: slow

	fast := newRelativeRig(t, 200)
	fast.board.SetDistance(24)
	fast.steps(t, 5)
	fast.glide(t, 16, 8) // 8 cm over 0.32 s: fast

	if fast.menu.Cursor() <= slow.menu.Cursor() {
		t.Fatalf("speed-dependent gain missing: fast=%d slow=%d",
			fast.menu.Cursor(), slow.menu.Cursor())
	}
}

func TestRelativeModeHoldIsStable(t *testing.T) {
	r := newRelativeRig(t, 50)
	r.board.SetDistance(15)
	r.steps(t, 5)
	r.glide(t, 12, 10)
	cur := r.menu.Cursor()
	// Holding still (dead zone) must not creep.
	r.steps(t, 50)
	if r.menu.Cursor() != cur {
		t.Fatalf("cursor crept while holding: %d -> %d", cur, r.menu.Cursor())
	}
}

func TestRelativeModeClampsAtEnds(t *testing.T) {
	r := newRelativeRig(t, 10)
	r.board.SetDistance(28)
	r.steps(t, 5)
	// A huge pull cannot run off the end.
	r.glide(t, 5, 10)
	r.glide(t, 28, 2) // violent push back: also clamped
	if c := r.menu.Cursor(); c < 0 || c >= 10 {
		t.Fatalf("cursor out of bounds: %d", c)
	}
}

func TestRelativeModeUnlimitedByIslandCount(t *testing.T) {
	// 500 entries would be hopeless for absolute islands (0.05 cm pitch)
	// but relative mode reaches deep entries with repeated strokes.
	r := newRelativeRig(t, 500)
	r.board.SetDistance(28)
	r.steps(t, 5)
	for stroke := 0; stroke < 6; stroke++ {
		r.glide(t, 6, 8) // fast pull
		// Clutch: move back slowly (low gain) to re-grip.
		r.glide(t, 28, 120)
	}
	if r.menu.Cursor() < 50 {
		t.Fatalf("six strokes only reached entry %d", r.menu.Cursor())
	}
}

func TestInputModeString(t *testing.T) {
	if Absolute.String() != "absolute" || Relative.String() != "relative" {
		t.Fatal("mode names")
	}
}
