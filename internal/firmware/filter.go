// Package firmware is the Go port of the C firmware running on the PIC
// 18F452 inside the DistScroll (paper Section 4: "The code for the
// microcontroller in the DistScroll device is programmed in C").
//
// The loop is: sample the distance sensor through the ADC, filter the
// value, map it to an entry island, move the menu cursor, redraw the two
// displays over I2C, scan the buttons, and report events over the RF link.
package firmware

import (
	"fmt"
	"sort"
)

// FilterKind selects the sensor smoothing strategy (ablation A1).
type FilterKind int

// Filter kinds.
const (
	// Raw passes samples through unfiltered.
	Raw FilterKind = iota + 1
	// Median3 applies a 3-tap median, killing single-sample outliers (the
	// spurious readings of structured reflective surfaces).
	Median3
	// EMA applies an exponential moving average, smoothing tremor.
	EMA
	// MedianEMA chains a 3-tap median into an EMA — the prototype default.
	MedianEMA
)

// String returns the filter name.
func (k FilterKind) String() string {
	switch k {
	case Raw:
		return "raw"
	case Median3:
		return "median3"
	case EMA:
		return "ema"
	case MedianEMA:
		return "median3+ema"
	default:
		return fmt.Sprintf("filter(%d)", int(k))
	}
}

// Filter smooths a stream of voltages.
type Filter interface {
	// Apply consumes one sample and returns the filtered value.
	Apply(v float64) float64
	// Reset clears the filter state.
	Reset()
}

// DefaultEMAAlpha is the prototype's EMA coefficient; the struct-of-arrays
// scale path (core.StateSlab) bakes the same gain into its packed filter.
const DefaultEMAAlpha = 0.35

// NewFilter constructs a filter of the given kind. alpha is the EMA
// coefficient (ignored by Raw/Median3); values outside (0,1] fall back to
// the prototype's DefaultEMAAlpha.
func NewFilter(kind FilterKind, alpha float64) (Filter, error) {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEMAAlpha
	}
	switch kind {
	case Raw:
		return rawFilter{}, nil
	case Median3:
		return &medianFilter{}, nil
	case EMA:
		return &emaFilter{alpha: alpha}, nil
	case MedianEMA:
		return &chainFilter{first: &medianFilter{}, second: &emaFilter{alpha: alpha}}, nil
	default:
		return nil, fmt.Errorf("firmware: unknown filter kind %d", kind)
	}
}

type rawFilter struct{}

func (rawFilter) Apply(v float64) float64 { return v }
func (rawFilter) Reset()                  {}

type medianFilter struct {
	window [3]float64
	n      int
}

func (f *medianFilter) Apply(v float64) float64 {
	if f.n < 3 {
		f.window[f.n] = v
		f.n++
		// Warm-up: return the input until the window fills.
		if f.n < 3 {
			return v
		}
	} else {
		f.window[0], f.window[1], f.window[2] = f.window[1], f.window[2], v
	}
	w := f.window
	s := w[:]
	sort.Float64s(s)
	return s[1]
}

func (f *medianFilter) Reset() { f.n = 0 }

type emaFilter struct {
	alpha float64
	value float64
	init  bool
}

func (f *emaFilter) Apply(v float64) float64 {
	if !f.init {
		f.value = v
		f.init = true
		return v
	}
	f.value += f.alpha * (v - f.value)
	return f.value
}

func (f *emaFilter) Reset() { f.init = false }

type chainFilter struct {
	first, second Filter
}

func (f *chainFilter) Apply(v float64) float64 { return f.second.Apply(f.first.Apply(v)) }

func (f *chainFilter) Reset() {
	f.first.Reset()
	f.second.Reset()
}
