package firmware

import (
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/buttons"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/smartits"
)

// recorder captures firmware telemetry without a radio channel.
type recorder struct {
	msgs []rf.Message
}

func (r *recorder) Send(payload []byte) (time.Duration, error) {
	var m rf.Message
	if err := m.UnmarshalBinary(payload); err != nil {
		return 0, err
	}
	r.msgs = append(r.msgs, m)
	return 0, nil
}

func (r *recorder) kinds(k rf.MsgKind) []rf.Message {
	var out []rf.Message
	for _, m := range r.msgs {
		if m.Kind == k {
			out = append(out, m)
		}
	}
	return out
}

type rig struct {
	board *smartits.Board
	fw    *Firmware
	menu  *menu.Menu
	rec   *recorder
	now   time.Duration
}

func newRig(t *testing.T, root *menu.Node, cfg Config) *rig {
	t.Helper()
	boardCfg := smartits.DefaultConfig()
	boardCfg.Sensor.NoiseSD = 0 // deterministic unless a test wants noise
	board, err := smartits.Assemble(boardCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := menu.New(root)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	fw, err := New(cfg, board, m, rec)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{board: board, fw: fw, menu: m, rec: rec}
}

// steps runs n firmware cycles at the sample period.
func (r *rig) steps(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r.now += 40 * time.Millisecond
		if err := r.fw.Step(r.now); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
}

func TestScrollFollowsDistance(t *testing.T) {
	r := newRig(t, menu.FlatMenu(10), DefaultConfig())
	target := 7
	d, err := r.fw.Mapper().DistanceFor(target)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 20)
	if r.menu.Cursor() != target {
		t.Fatalf("cursor = %d, want %d", r.menu.Cursor(), target)
	}
	scrolls := r.rec.kinds(rf.MsgScroll)
	if len(scrolls) == 0 {
		t.Fatal("no scroll telemetry")
	}
	if got := int(scrolls[len(scrolls)-1].Index); got != target {
		t.Fatalf("last scroll index = %d", got)
	}
}

func TestBetweenIslandsCursorHolds(t *testing.T) {
	r := newRig(t, menu.FlatMenu(5), DefaultConfig())
	d, err := r.fw.Mapper().DistanceFor(2)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 10)
	if r.menu.Cursor() != 2 {
		t.Fatalf("setup: cursor %d", r.menu.Cursor())
	}
	// Move into the gap between islands 2 and 3: cursor must hold.
	d3, err := r.fw.Mapper().DistanceFor(3)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance((d + d3) / 2)
	r.steps(t, 10)
	if r.menu.Cursor() != 2 {
		t.Fatalf("cursor drifted in gap: %d", r.menu.Cursor())
	}
}

func TestSelectDescendsAndRebuildsMapper(t *testing.T) {
	r := newRig(t, menu.PhoneMenu(), DefaultConfig())
	// Root has 6 entries.
	if got := r.fw.Mapper().Config().Entries; got != 6 {
		t.Fatalf("root mapper entries = %d", got)
	}
	// Cursor to Settings (index 3) and press select.
	d, err := r.fw.Mapper().DistanceFor(3)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 10)
	r.board.Pad.Set(buttons.TopRight, true, r.now)
	r.now += 30 * time.Millisecond
	if err := r.fw.Step(r.now); err != nil {
		t.Fatal(err)
	}
	r.board.Pad.Set(buttons.TopRight, false, r.now)
	r.steps(t, 3)

	if r.menu.Depth() != 1 {
		t.Fatalf("depth = %d", r.menu.Depth())
	}
	// Settings has 5 entries: the mapper must be rebuilt.
	if got := r.fw.Mapper().Config().Entries; got != 5 {
		t.Fatalf("submenu mapper entries = %d", got)
	}
	if len(r.rec.kinds(rf.MsgLevel)) == 0 {
		t.Fatal("no level telemetry")
	}
	if r.fw.Stats().LevelChanges != 1 {
		t.Fatalf("level changes = %d", r.fw.Stats().LevelChanges)
	}
}

func TestSelectLeafEmitsTelemetry(t *testing.T) {
	r := newRig(t, menu.FlatMenu(5), DefaultConfig())
	d, err := r.fw.Mapper().DistanceFor(1)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 10)
	r.board.Pad.Set(buttons.TopRight, true, r.now)
	r.now += 30 * time.Millisecond
	if err := r.fw.Step(r.now); err != nil {
		t.Fatal(err)
	}
	sel := r.rec.kinds(rf.MsgSelect)
	if len(sel) != 1 || sel[0].Index != 1 {
		t.Fatalf("select telemetry: %+v", sel)
	}
	if r.fw.Stats().SelectEvents != 1 {
		t.Fatalf("select events = %d", r.fw.Stats().SelectEvents)
	}
	if r.menu.Selections() != 1 {
		t.Fatalf("menu selections = %d", r.menu.Selections())
	}
}

func TestBackButton(t *testing.T) {
	r := newRig(t, menu.PhoneMenu(), DefaultConfig())
	// Enter Messages (cursor starts elsewhere: move to index 0 first).
	d, err := r.fw.Mapper().DistanceFor(0)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 10)
	r.board.Pad.Set(buttons.TopRight, true, r.now)
	r.now += 30 * time.Millisecond
	if err := r.fw.Step(r.now); err != nil {
		t.Fatal(err)
	}
	r.board.Pad.Set(buttons.TopRight, false, r.now)
	r.steps(t, 3)
	if r.menu.Depth() != 1 {
		t.Fatalf("depth = %d", r.menu.Depth())
	}
	// Back at the root must be a no-op error-wise.
	r.board.Pad.Set(buttons.LeftUpper, true, r.now)
	r.now += 30 * time.Millisecond
	if err := r.fw.Step(r.now); err != nil {
		t.Fatal(err)
	}
	r.board.Pad.Set(buttons.LeftUpper, false, r.now)
	r.steps(t, 3)
	if r.menu.Depth() != 0 {
		t.Fatalf("depth after back = %d", r.menu.Depth())
	}
	// Press back again at root: must not error.
	r.board.Pad.Set(buttons.LeftUpper, true, r.now)
	r.now += 30 * time.Millisecond
	if err := r.fw.Step(r.now); err != nil {
		t.Fatalf("back at root errored: %v", err)
	}
}

func TestTopDisplayShowsWindow(t *testing.T) {
	r := newRig(t, menu.PhoneMenu(), DefaultConfig())
	d, err := r.fw.Mapper().DistanceFor(0)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 10)
	out := r.board.Top.Render()
	if !strings.Contains(out, "> Messages") {
		t.Fatalf("top display:\n%s", out)
	}
}

func TestDebugDisplayContents(t *testing.T) {
	r := newRig(t, menu.FlatMenu(5), DefaultConfig())
	r.steps(t, 10)
	out := r.board.Bottom.Render()
	for _, want := range []string{"V=", "isle=", "lvl=", "bat="} {
		if !strings.Contains(out, want) {
			t.Fatalf("debug display missing %q:\n%s", want, out)
		}
	}
}

func TestDisplayWritesSkippedWhenUnchanged(t *testing.T) {
	r := newRig(t, menu.FlatMenu(5), DefaultConfig())
	d, err := r.fw.Mapper().DistanceFor(2)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 5)
	frames := r.board.Top.Frames()
	// Holding still: no further top-display traffic.
	r.steps(t, 20)
	if got := r.board.Top.Frames(); got != frames {
		t.Fatalf("display rewritten while idle: %d -> %d", frames, got)
	}
}

func TestHeartbeatCadence(t *testing.T) {
	r := newRig(t, menu.FlatMenu(5), DefaultConfig())
	r.steps(t, 100) // 4 s at 25 Hz
	beats := r.rec.kinds(rf.MsgHeartbeat)
	if len(beats) < 3 || len(beats) > 5 {
		t.Fatalf("heartbeats = %d over 4 s", len(beats))
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	r := newRig(t, menu.FlatMenu(10), DefaultConfig())
	d, err := r.fw.Mapper().DistanceFor(9)
	if err != nil {
		t.Fatal(err)
	}
	r.board.SetDistance(d)
	r.steps(t, 50)
	for i := 1; i < len(r.rec.msgs); i++ {
		if r.rec.msgs[i].Seq != r.rec.msgs[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d -> %d", i, r.rec.msgs[i-1].Seq, r.rec.msgs[i].Seq)
		}
	}
}

func TestNoRadioIsFine(t *testing.T) {
	boardCfg := smartits.DefaultConfig()
	board, err := smartits.Assemble(boardCfg, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := menu.New(menu.FlatMenu(5))
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(DefaultConfig(), board, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := fw.Step(time.Duration(i) * 40 * time.Millisecond); err != nil {
			t.Fatalf("radio-less step: %v", err)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	m, err := menu.New(menu.FlatMenu(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(DefaultConfig(), nil, m, nil); err == nil {
		t.Fatal("nil board accepted")
	}
	board, err := smartits.Assemble(smartits.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(DefaultConfig(), board, nil, nil); err == nil {
		t.Fatal("nil menu accepted")
	}
}

func TestCycleCounter(t *testing.T) {
	r := newRig(t, menu.FlatMenu(3), DefaultConfig())
	r.steps(t, 17)
	if got := r.fw.Stats().Cycles; got != 17 {
		t.Fatalf("cycles = %d", got)
	}
}
