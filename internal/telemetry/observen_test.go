package telemetry

import (
	"math"
	"reflect"
	"testing"
)

// TestLocalHistogramObserveN pins ObserveN against the equivalent Observe
// loop: identical buckets, count and sum, plus the non-finite guards.
func TestLocalHistogramObserveN(t *testing.T) {
	bounds := []float64{1, 10, 100}
	batched := NewLocalHistogram(bounds)
	looped := NewLocalHistogram(bounds)
	for _, c := range []struct {
		v float64
		n uint64
	}{{0.5, 3}, {8.5, 1000}, {58.0, 7}, {1e6, 2}} {
		batched.ObserveN(c.v, c.n)
		for i := uint64(0); i < c.n; i++ {
			looped.Observe(c.v)
		}
	}
	a, b := batched.Snapshot(), looped.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("batched %+v != looped %+v", a, b)
	}
	if a.Count != 1012 {
		t.Fatalf("count = %d", a.Count)
	}

	before := batched.Snapshot()
	batched.ObserveN(5, 0)          // n=0 is a no-op
	batched.ObserveN(math.NaN(), 4) // NaN dropped
	var nilHist *LocalHistogram
	nilHist.ObserveN(5, 1) // nil-safe
	if got := batched.Snapshot(); !reflect.DeepEqual(got, before) {
		t.Fatalf("guarded ObserveN mutated: %+v != %+v", got, before)
	}
	batched.ObserveN(math.Inf(1), 2) // Inf counted, no sum contribution
	after := batched.Snapshot()
	if after.Count != before.Count+2 || after.Sum != before.Sum {
		t.Fatalf("Inf handling: %+v vs %+v", after, before)
	}
}
