// Package telemetry is the dependency-free measurement substrate of the
// DistScroll reproduction. The paper evaluates DistScroll by measuring it
// — sensor characteristic fits, selection times, error rates — and this
// package extends that discipline to the software pipeline itself: every
// layer (ADC sampling, island mapping, RF framing, hub demultiplexing,
// handler dispatch) can account where time and frames go.
//
// Two instrument families cover two cost regimes:
//
//   - Atomic Counter, Gauge and Histogram are safe for unsynchronised
//     concurrent writers (many fleet devices incrementing one name).
//   - LocalHistogram keeps plain fields for hot paths that already hold a
//     lock: the hub demux consumes ~40 ns/frame, so its per-frame latency
//     observation must cost single nanoseconds, which plain increments
//     under the session mutex deliver and atomics do not.
//
// Un-instrumented use costs ~0: every method is a no-op on a nil receiver
// and a nil *Registry hands out nil instruments, so call sites need no
// conditionals.
//
// State that is already counted elsewhere (session stats under their
// mutex, link counters) is not double-counted on the hot path; instead the
// owning component registers a Collector that folds those counters into
// each Snapshot on demand.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram safe for concurrent writers.
// Bounds are inclusive upper bucket bounds in ascending order; one
// implicit overflow bucket catches everything above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Uint64   // float64 bits, updated by CAS
}

// newHistogram builds an atomic histogram over the given ascending bounds.
func newHistogram(bounds []float64) *Histogram {
	bounds = checkBounds(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped and ±Inf counts
// in its extreme bucket without touching the sum: one poisoned observation
// must not make every later JSON export unserialisable.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.counts[bucketFor(h.bounds, v)].Add(1)
	if math.IsInf(v, 0) {
		return
	}
	for {
		old := h.sum.Load()
		next := floatBits(floatFromBits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    floatFromBits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// LocalHistogram is a fixed-bucket histogram with plain (non-atomic)
// fields. The owner provides synchronisation — typically a mutex it
// already holds on the instrumented path — making Observe cost a bounds
// scan and two plain adds, cheap enough for a ~40 ns hot loop.
type LocalHistogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	sum    float64
}

// NewLocalHistogram builds a histogram over the given ascending inclusive
// upper bounds.
func NewLocalHistogram(bounds []float64) *LocalHistogram {
	bounds = checkBounds(bounds)
	return &LocalHistogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value. Caller synchronises. Non-finite values get
// the same guard as Histogram.Observe: NaN dropped, ±Inf counted without a
// sum contribution.
func (h *LocalHistogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.counts[bucketFor(h.bounds, v)]++
	if math.IsInf(v, 0) {
		return
	}
	h.sum += v
}

// ObserveN records n observations of the same value in one bucket walk —
// the flush path for callers that pre-bin a hot loop's observations (the
// scale path's tick sweep bins its 16 distinct modeled latencies into a
// stack array and flushes once per sweep). Caller synchronises. Same
// non-finite guard as Observe.
func (h *LocalHistogram) ObserveN(v float64, n uint64) {
	if h == nil || n == 0 || math.IsNaN(v) {
		return
	}
	h.counts[bucketFor(h.bounds, v)] += n
	if math.IsInf(v, 0) {
		return
	}
	h.sum += v * float64(n)
}

// SnapshotInto copies the histogram state into dst, reusing dst's slices
// when their shape matches — the publish path of a periodically snapshotted
// shard stays allocation-free after the first copy. Caller synchronises.
func (h *LocalHistogram) SnapshotInto(dst *HistogramSnapshot) {
	if h == nil {
		*dst = HistogramSnapshot{}
		return
	}
	dst.Bounds = append(dst.Bounds[:0], h.bounds...)
	dst.Counts = append(dst.Counts[:0], h.counts...)
	dst.Sum = h.sum
	dst.Count = 0
	for _, c := range h.counts {
		dst.Count += c
	}
	dst.P50, dst.P90, dst.P99 = 0, 0, 0
}

// Snapshot copies the histogram state. Caller synchronises.
func (h *LocalHistogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
	}
	for _, c := range h.counts {
		s.Count += c
	}
	return s
}

// bucketFor returns the index of the first bound >= v (inclusive upper
// bounds), or len(bounds) for the overflow bucket. Overflow resolves in
// one comparison; everything else binary-searches, keeping the hot-path
// cost flat no matter which bucket an observation lands in.
func bucketFor(bounds []float64, v float64) int {
	n := len(bounds)
	if v > bounds[n-1] {
		return n
	}
	lo, hi := 0, n-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// checkBounds validates and defensively copies a bounds slice.
func checkBounds(bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	out := append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(out) {
		panic(fmt.Sprintf("telemetry: histogram bounds not ascending: %v", bounds))
	}
	return out
}

// Collector contributes externally owned counters to a snapshot. Components
// that already count under their own synchronisation (sessions, links,
// firmware) register one instead of paying for registry instruments on
// their hot paths.
type Collector func(*Snapshot)

// Registry names and owns a process's instruments. A nil *Registry is the
// no-op default: it hands out nil instruments whose methods do nothing,
// so un-instrumented assemblies pay only a nil check per call site.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []Collector
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. An existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterCollector adds a pull-based metrics source invoked on every
// Snapshot. Collectors must be safe to call from any goroutine.
func (r *Registry) RegisterCollector(c Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Snapshot captures every instrument and collector into one consistent-ish
// view (counters are read without a global pause, so a snapshot taken
// mid-run is a moment in flight, not a barrier). Safe on a nil registry,
// which yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := NewSnapshot()
	if r == nil {
		return s
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	for _, c := range collectors {
		c(s)
	}
	s.finalize()
	return s
}
