package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Canonical metric names. Units are encoded in the name suffix; histogram
// bucket bounds are documented next to their default bucket sets below.
const (
	// Firmware stage counters (aggregated across every device sharing a
	// registry).
	MetricFwCycles          = "fw_cycles_total"
	MetricFwADCReads        = "fw_adc_reads_total"
	MetricFwScrollEvents    = "fw_scroll_events_total"
	MetricFwSelectEvents    = "fw_select_events_total"
	MetricFwLevelChanges    = "fw_level_changes_total"
	MetricFwIslandSwitches  = "fw_island_switches_total"
	MetricFwHysteresisHolds = "fw_hysteresis_holds_total"
	MetricFwIslandFlicker   = "fw_island_flicker_total"
	MetricFwFramesSent      = "fw_frames_sent_total"
	MetricFwTxErrors        = "fw_tx_errors_total"
	MetricFwDisplayWrites   = "fw_display_writes_total"

	// RF channel counters. The *_v0/_v1 variants split sent frames by wire
	// format version.
	MetricRFSent      = "rf_frames_sent_total"
	MetricRFSentV0    = "rf_frames_sent_v0_total"
	MetricRFSentV1    = "rf_frames_sent_v1_total"
	MetricRFLost      = "rf_frames_lost_total"
	MetricRFBurstLost = "rf_frames_burst_lost_total"
	MetricRFCorrupted = "rf_frames_corrupted_total"
	MetricRFDelivered = "rf_frames_delivered_total"

	// Ack back-channel (ReverseLink) counters for reliable assemblies.
	MetricRFAcksSent      = "rf_acks_sent_total"
	MetricRFAcksLost      = "rf_acks_lost_total"
	MetricRFAcksDelivered = "rf_acks_delivered_total"

	// Reliable-delivery (ARQ) sender counters.
	MetricARQEnqueued     = "arq_enqueued_frames_total"
	MetricARQAcked        = "arq_acked_frames_total"
	MetricARQRetransmits  = "arq_retransmits_total"
	MetricARQTimeouts     = "arq_timeouts_total"
	MetricARQAcksReceived = "arq_acks_received_total"
	MetricARQDupAcks      = "arq_duplicate_acks_total"
	MetricARQQueueDrops   = "arq_queue_drops_total"
	MetricARQRetryDrops   = "arq_retry_drops_total"

	// Host hub / session counters.
	MetricHubDecoded    = "hub_frames_decoded_total"
	MetricHubEvents     = "hub_events_total"
	MetricHubBadFrames  = "hub_bad_frames_total"
	MetricHubSeqGaps    = "hub_seq_gap_frames_total"
	MetricHubDuplicates = "hub_seq_duplicates_total"
	MetricHubReordered  = "hub_seq_reordered_total"
	MetricHubDevices    = "hub_devices"

	// Reliable-receive admission counters: retransmit duplicates dropped,
	// ahead-of-sequence frames deferred, and forced resyncs past holes the
	// sender abandoned.
	MetricHubStale      = "hub_arq_stale_frames_total"
	MetricHubAheadDrops = "hub_arq_ahead_drops_total"
	MetricHubResyncs    = "hub_arq_resyncs_total"

	// MetricHubE2ELatency is the end-to-end pipeline latency histogram
	// (firmware sample tick → hub handler dispatch) in milliseconds.
	// Per-device series carry a {device="N"} label suffix.
	MetricHubE2ELatency = "hub_e2e_latency_ms"
	// MetricHubDispatch is the wall-clock handler dispatch time in seconds
	// (only observed when handlers or taps are registered).
	MetricHubDispatch = "hub_dispatch_seconds"

	// Simulation-engine gauges for the struct-of-arrays scale path
	// (fleet.RunScale): the live view of a run in flight. Counters above are
	// deterministic per seed; these gauges involve wall-clock rates and
	// scheduler occupancy, so they describe the machine, not the model.
	MetricSimDevices        = "sim_devices"
	MetricSimWorkers        = "sim_workers"
	MetricSimVirtualSeconds = "sim_virtual_seconds"
	MetricSimTicksPerSec    = "sim_ticks_per_second"
	MetricSimDevSecPerSec   = "sim_device_seconds_per_second"
	MetricSimFramesInFlight = "sim_frames_in_flight"
	MetricSimWheelPending   = "sim_wheel_pending_events"
	MetricSimWheelOccupied  = "sim_wheel_slots_occupied"
	MetricSimWheelOverflow  = "sim_wheel_overflow_events"

	// Networked hub gateway counters (internal/hubnet): the TCP/loopback
	// ingest edge in front of the sharded hubs. Bytes/frames/resyncs count
	// raw wire activity before demux; short reads are ingest reads that
	// ended mid-frame (the decoder is holding a partial frame).
	MetricNetConnsTotal = "net_conns_total"
	MetricNetConnsOpen  = "net_conns_open"
	MetricNetBytesRead  = "net_bytes_read_total"
	MetricNetFrames     = "net_frames_total"
	MetricNetBadFrames  = "net_bad_frames_total"
	MetricNetShortReads = "net_short_reads_total"
	MetricNetResyncs    = "net_decode_resyncs_total"
	MetricNetShards     = "net_hub_shards"

	// Ingest pipeline ring counters (internal/hubnet): the per-shard MPSC
	// hand-off rings between connection decoders and the single-writer shard
	// workers. Depth is occupied slots summed over rings at scrape time;
	// stalls count block-on-full episodes, dropped counts batches shed under
	// the drop policy. The pipeline gauge is 1 when the ring hand-off is
	// active, 0 on the direct synchronous consume path.
	MetricNetPipeline      = "net_ingest_pipeline"
	MetricNetRingDepth     = "net_ring_depth"
	MetricNetRingBatches   = "net_ring_batches_total"
	MetricNetRingStalls    = "net_ring_stalls_total"
	MetricNetRingDropped   = "net_ring_dropped_total"
	MetricNetAcceptRetries = "net_accept_retries_total"
)

// LatencyBucketsMs are the default end-to-end latency bucket bounds in
// milliseconds, spanning the RF model's base latency (4 ms) plus jitter
// and 19.2 kbit/s serialisation through retransmission-scale tails.
var LatencyBucketsMs = []float64{
	1, 2, 3, 4, 5, 6, 8, 10, 13, 16, 20, 25, 32, 40, 50, 65, 80, 100, 150, 250, 500, 1000,
}

// DispatchBucketsSec are the default handler dispatch bucket bounds in
// wall-clock seconds.
var DispatchBucketsSec = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 1e-2,
}

// DeviceLatencyName returns the per-device end-to-end latency series name,
// e.g. `hub_e2e_latency_ms{device="7"}`.
func DeviceLatencyName(device uint32) string {
	return fmt.Sprintf("%s{device=%q}", MetricHubE2ELatency, fmt.Sprint(device))
}

// ShardName returns the per-shard variant of a gateway series name, e.g.
// `hub_frames_decoded_total{shard="3"}`. The gateway publishes both the
// canonical aggregate and one labelled series per hub shard.
func ShardName(name string, shard int) string {
	return fmt.Sprintf("%s{shard=%q}", name, fmt.Sprint(shard))
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket bounds; Counts has one extra
	// trailing overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// Mean returns the mean observed value, 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the containing bucket, Prometheus-style: the first bucket
// interpolates from 0, the overflow bucket clamps to the last bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum uint64
	for i, c := range h.Counts {
		prev := float64(cum)
		cum += c
		if c == 0 || float64(cum) < rank {
			continue
		}
		if i == len(h.Bounds) {
			// Overflow bucket: no upper bound to interpolate towards.
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		frac := 0.0
		if c > 0 {
			frac = (rank - prev) / float64(c)
		}
		return lo + (h.Bounds[i]-lo)*frac
	}
	return h.Bounds[len(h.Bounds)-1]
}

// merge folds another snapshot of the same shape into this one.
func (h *HistogramSnapshot) merge(o HistogramSnapshot) error {
	if len(h.Bounds) == 0 {
		*h = o
		h.Bounds = append([]float64(nil), o.Bounds...)
		h.Counts = append([]uint64(nil), o.Counts...)
		return nil
	}
	if len(o.Bounds) != len(h.Bounds) || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("telemetry: merging histograms with different bucket shapes (%d vs %d bounds)",
			len(h.Bounds), len(o.Bounds))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Count += o.Count
	h.Sum += o.Sum
	return nil
}

// Snapshot is a point-in-time, JSON-serialisable view of every instrument
// in a registry plus everything its collectors contributed.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// NewSnapshot returns an empty snapshot ready for collector contributions.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
}

// AddCounter accumulates v onto the named counter (collector API: many
// devices contribute to one fleet-wide name).
func (s *Snapshot) AddCounter(name string, v uint64) {
	s.Counters[name] += v
}

// SetGauge stores v as the named gauge.
func (s *Snapshot) SetGauge(name string, v float64) {
	if s.Gauges == nil {
		s.Gauges = make(map[string]float64)
	}
	s.Gauges[name] = v
}

// MergeHistogram folds a histogram snapshot into the named series, summing
// bucket counts when the series already exists. Shape mismatches are
// ignored rather than corrupting the series (they indicate a programming
// error caught by tests, not a runtime condition worth a panic).
func (s *Snapshot) MergeHistogram(name string, h HistogramSnapshot) {
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	cur := s.Histograms[name]
	if err := cur.merge(h); err != nil {
		return
	}
	s.Histograms[name] = cur
}

// Histogram returns the named histogram series.
func (s *Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	h, ok := s.Histograms[name]
	return h, ok
}

// finalize computes the derived quantiles of every histogram. Called once
// after all collectors ran, so merged bucket counts are final.
func (s *Snapshot) finalize() {
	for name, h := range s.Histograms {
		h.P50 = h.Quantile(0.50)
		h.P90 = h.Quantile(0.90)
		h.P99 = h.Quantile(0.99)
		s.Histograms[name] = h
	}
}

// sanitized returns the snapshot with every non-finite float replaced by 0,
// so serialisation cannot fail: encoding/json rejects NaN and ±Inf outright,
// and a single poisoned gauge or merged sum must not take down the whole
// export. Returns the receiver unchanged (no copy) when already clean.
func (s *Snapshot) sanitized() *Snapshot {
	clean := true
	for _, v := range s.Gauges {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			clean = false
		}
	}
	for _, h := range s.Histograms {
		for _, v := range [...]float64{h.Sum, h.P50, h.P90, h.P99} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				clean = false
			}
		}
	}
	if clean {
		return s
	}
	fix := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	out := &Snapshot{Counters: s.Counters}
	if s.Gauges != nil {
		out.Gauges = make(map[string]float64, len(s.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] = fix(v)
		}
	}
	if s.Histograms != nil {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for k, h := range s.Histograms {
			h.Sum, h.P50, h.P90, h.P99 = fix(h.Sum), fix(h.P50), fix(h.P90), fix(h.P99)
			out.Histograms[k] = h
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON. Non-finite floats are
// written as 0 (encoding/json cannot represent them).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.sanitized()); err != nil {
		return fmt.Errorf("telemetry: write json: %w", err)
	}
	return nil
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format, with names sorted for stable output. Series names may embed a
// label set (`name{device="7"}`); histogram suffixes splice their `le`
// label into it.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	s = s.sanitized()
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitLabels(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s%s %d\n", base, base, wrapLabels(labels), s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitLabels(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s%s %g\n", base, base, wrapLabels(labels), s.Gauges[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		base, labels := splitLabels(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = trimFloat(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, wrapLabels(joinLabels(labels, `le="`+le+`"`)), cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %g\n", base, wrapLabels(labels), h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", base, wrapLabels(labels), h.Count)
	}

	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("telemetry: write prometheus: %w", err)
	}
	return nil
}

// splitLabels splits `name{a="b"}` into base name and inner label list.
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "," + b
}

func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
