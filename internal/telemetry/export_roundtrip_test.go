package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// roundTripJSON serialises a snapshot with WriteJSON and parses it back,
// failing the test on either direction — the exporter contract is that
// every snapshot, however degenerate, produces valid parseable JSON.
func roundTripJSON(t *testing.T, s *Snapshot) *Snapshot {
	t.Helper()
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("JSON export does not parse back: %v\n%s", err, b.String())
	}
	return &back
}

// TestExportEmptyHistogramRoundTrip: a registered-but-never-observed
// histogram must survive JSON and Prometheus export with zero count, zero
// sum, zero quantiles and the full bucket shape intact.
func TestExportEmptyHistogramRoundTrip(t *testing.T) {
	reg := New()
	reg.Histogram("empty_ms", []float64{1, 2, 5})
	snap := reg.Snapshot()

	back := roundTripJSON(t, snap)
	h, ok := back.Histogram("empty_ms")
	if !ok {
		t.Fatal("empty histogram missing from JSON round trip")
	}
	if h.Count != 0 || h.Sum != 0 || h.P50 != 0 || h.P99 != 0 {
		t.Fatalf("empty histogram round-tripped dirty: %+v", h)
	}
	if len(h.Bounds) != 3 || len(h.Counts) != 4 {
		t.Fatalf("bucket shape lost in round trip: %d bounds, %d counts", len(h.Bounds), len(h.Counts))
	}

	var p strings.Builder
	if err := snap.WritePrometheus(&p); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	for _, want := range []string{
		`empty_ms_bucket{le="1"} 0`,
		`empty_ms_bucket{le="+Inf"} 0`,
		"empty_ms_sum 0",
		"empty_ms_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus export missing %q:\n%s", want, out)
		}
	}
}

// TestExportOverflowOnlySampleRoundTrip: a single observation above the
// last bound lands in the implicit overflow bucket; the export must show
// it under le="+Inf" only, and the quantiles clamp to the last bound.
func TestExportOverflowOnlySampleRoundTrip(t *testing.T) {
	reg := New()
	reg.Histogram("over_ms", []float64{1, 2, 5}).Observe(1e9)
	snap := reg.Snapshot()

	back := roundTripJSON(t, snap)
	h, ok := back.Histogram("over_ms")
	if !ok {
		t.Fatal("histogram missing from round trip")
	}
	if h.Count != 1 || h.Counts[3] != 1 || h.Counts[0]+h.Counts[1]+h.Counts[2] != 0 {
		t.Fatalf("overflow sample not isolated in the overflow bucket: %+v", h)
	}
	if h.Sum != 1e9 {
		t.Fatalf("sum = %g, want 1e9", h.Sum)
	}
	if h.P50 != 5 || h.P99 != 5 {
		t.Fatalf("overflow quantiles must clamp to the last bound: p50=%g p99=%g", h.P50, h.P99)
	}

	var p strings.Builder
	if err := snap.WritePrometheus(&p); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	if !strings.Contains(out, `over_ms_bucket{le="5"} 0`) ||
		!strings.Contains(out, `over_ms_bucket{le="+Inf"} 1`) {
		t.Fatalf("cumulative buckets wrong:\n%s", out)
	}
}

// TestExportNaNInfGuard: NaN observations are dropped, ±Inf observations
// count without poisoning the sum, and even a snapshot poisoned after the
// fact (gauge or merged sum) still exports valid JSON and finite
// Prometheus text.
func TestExportNaNInfGuard(t *testing.T) {
	reg := New()
	h := reg.Histogram("guard_ms", []float64{1, 2})
	h.Observe(1)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	snap := reg.Snapshot()

	got, _ := snap.Histogram("guard_ms")
	if got.Count != 3 {
		t.Fatalf("count = %d, want 3 (NaN dropped, ±Inf counted)", got.Count)
	}
	if got.Counts[2] != 1 || got.Counts[0] != 2 {
		t.Fatalf("±Inf not routed to extreme buckets: %v", got.Counts)
	}
	if got.Sum != 1 {
		t.Fatalf("sum = %g, want 1 (±Inf must not contribute)", got.Sum)
	}
	roundTripJSON(t, snap)

	// Poison a snapshot directly — the write-side guard must still hold.
	snap.SetGauge("bad_gauge", math.NaN())
	snap.MergeHistogram("bad_ms", HistogramSnapshot{
		Bounds: []float64{1}, Counts: []uint64{0, 1}, Count: 1, Sum: math.Inf(1),
	})
	back := roundTripJSON(t, snap)
	if v := back.Gauges["bad_gauge"]; v != 0 {
		t.Fatalf("NaN gauge exported as %g, want sanitised 0", v)
	}
	if bh := back.Histograms["bad_ms"]; bh.Sum != 0 || bh.Count != 1 {
		t.Fatalf("Inf sum not sanitised: %+v", bh)
	}

	var p strings.Builder
	if err := snap.WritePrometheus(&p); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "bad_gauge NaN") {
		t.Fatalf("Prometheus export leaked NaN:\n%s", out)
	}
	// +Inf is legitimate only as a bucket le label, never as a value.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasSuffix(line, " +Inf") || strings.HasSuffix(line, " -Inf") {
			t.Fatalf("Prometheus export leaked an Inf value: %q", line)
		}
	}
	// The untouched original histogram still exports its real sum.
	if !strings.Contains(out, "guard_ms_sum 1") {
		t.Fatalf("clean histogram sum lost:\n%s", out)
	}
}
