package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", LatencyBucketsMs)
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var lh *LocalHistogram
	lh.Observe(2)
	if s := lh.Snapshot(); s.Count != 0 {
		t.Fatalf("nil local histogram count %d", s.Count)
	}
	r.RegisterCollector(func(*Snapshot) { t.Fatal("collector on nil registry ran") })
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("frames")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter %d, want 10", c.Value())
	}
	if again := r.Counter("frames"); again != c {
		t.Fatal("counter not interned by name")
	}
	g := r.Gauge("devices")
	g.Set(64)
	g.Set(32.5)
	if g.Value() != 32.5 {
		t.Fatalf("gauge %g", g.Value())
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound semantics:
// a value exactly on a bound lands in that bound's bucket, just above it
// in the next, and above the last bound in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 5}
	for _, h := range []interface {
		Observe(float64)
		Snapshot() HistogramSnapshot
	}{
		newHistogram(bounds),
		NewLocalHistogram(bounds),
	} {
		h.Observe(0)               // bucket 0 (<= 1)
		h.Observe(1)               // bucket 0, exactly on the bound
		h.Observe(math.Nextafter(1, 2)) // bucket 1
		h.Observe(2)               // bucket 1
		h.Observe(5)               // bucket 2
		h.Observe(5.0001)          // overflow
		h.Observe(1e9)             // overflow
		s := h.Snapshot()
		want := []uint64{2, 2, 1, 2}
		for i, w := range want {
			if s.Counts[i] != w {
				t.Fatalf("%T bucket %d = %d, want %d (counts %v)", h, i, s.Counts[i], w, s.Counts)
			}
		}
		if s.Count != 7 {
			t.Fatalf("count %d, want 7", s.Count)
		}
	}
}

func TestHistogramSum(t *testing.T) {
	h := newHistogram([]float64{10})
	h.Observe(1.5)
	h.Observe(2.25)
	if s := h.Snapshot(); s.Sum != 3.75 {
		t.Fatalf("sum %g, want 3.75", s.Sum)
	}
}

// TestQuantileEstimate checks linear interpolation inside a bucket against
// hand-computed values.
func TestQuantileEstimate(t *testing.T) {
	h := NewLocalHistogram([]float64{10, 20, 30})
	// 10 observations uniform in (10,20]: all land in bucket 1.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	s := h.Snapshot()
	// rank(0.5) = 5 of 10; bucket spans 10..20 → 10 + 10*(5/10) = 15.
	if got := s.Quantile(0.5); got != 15 {
		t.Fatalf("p50 %g, want 15", got)
	}
	// rank(1.0) = 10 → upper edge of the bucket.
	if got := s.Quantile(1); got != 20 {
		t.Fatalf("p100 %g, want 20", got)
	}

	// Split 5 low / 5 high: median sits at the low bucket's upper edge.
	h2 := NewLocalHistogram([]float64{10, 20})
	for i := 0; i < 5; i++ {
		h2.Observe(5)  // bucket 0: 0..10
		h2.Observe(15) // bucket 1: 10..20
	}
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.5); got != 10 {
		t.Fatalf("p50 %g, want 10", got)
	}
	// p90: rank 9 → 4th of 5 in bucket 1 → 10 + 10*(4/5) = 18.
	if got := s2.Quantile(0.9); got != 18 {
		t.Fatalf("p90 %g, want 18", got)
	}
}

func TestQuantileOverflowClampsToLastBound(t *testing.T) {
	h := NewLocalHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	if got := h.Snapshot().Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile %g, want clamp to 2", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile %g, want 0", got)
	}
}

func TestSnapshotMergesCollectorHistograms(t *testing.T) {
	r := New()
	a := NewLocalHistogram([]float64{10, 20})
	b := NewLocalHistogram([]float64{10, 20})
	for i := 0; i < 3; i++ {
		a.Observe(5)
		b.Observe(15)
	}
	r.RegisterCollector(func(s *Snapshot) {
		s.AddCounter("c_total", 3)
		s.MergeHistogram("lat", a.Snapshot())
	})
	r.RegisterCollector(func(s *Snapshot) {
		s.AddCounter("c_total", 4)
		s.MergeHistogram("lat", b.Snapshot())
	})
	s := r.Snapshot()
	if s.Counters["c_total"] != 7 {
		t.Fatalf("merged counter %d, want 7", s.Counters["c_total"])
	}
	h, ok := s.Histogram("lat")
	if !ok || h.Count != 6 {
		t.Fatalf("merged histogram: %+v", h)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 3 {
		t.Fatalf("merged buckets %v", h.Counts)
	}
	if h.P50 == 0 {
		t.Fatal("finalize did not compute quantiles")
	}
	// Mismatched shapes must not corrupt the series.
	s.MergeHistogram("lat", NewLocalHistogram([]float64{1}).Snapshot())
	if h2, _ := s.Histogram("lat"); h2.Count != 6 {
		t.Fatalf("shape-mismatched merge altered the series: %+v", h2)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("frames_total").Add(42)
	r.Gauge("devices").Set(8)
	r.Histogram("lat_ms", []float64{1, 10}).Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["frames_total"] != 42 || back.Gauges["devices"] != 8 {
		t.Fatalf("round trip: %+v", back)
	}
	if h := back.Histograms["lat_ms"]; h.Count != 1 || h.Counts[1] != 1 {
		t.Fatalf("round trip histogram: %+v", h)
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("rf_frames_sent_total").Add(5)
	r.Gauge("hub_devices").Set(2)
	h := r.Histogram(DeviceLatencyName(7), []float64{1, 10})
	h.Observe(0.5)
	h.Observe(4)
	h.Observe(99)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rf_frames_sent_total counter",
		"rf_frames_sent_total 5",
		"# TYPE hub_devices gauge",
		"hub_devices 2",
		"# TYPE hub_e2e_latency_ms histogram",
		`hub_e2e_latency_ms_bucket{device="7",le="1"} 1`,
		`hub_e2e_latency_ms_bucket{device="7",le="10"} 2`,
		`hub_e2e_latency_ms_bucket{device="7",le="+Inf"} 3`,
		`hub_e2e_latency_ms_count{device="7"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestReporterEmitsPeriodicallyAndOnStop(t *testing.T) {
	r := New()
	r.Counter("ticks_total").Inc()
	got := make(chan *Snapshot, 64)
	rep := StartReporter(r, time.Millisecond, func(s *Snapshot) { got <- s })
	deadline := time.After(2 * time.Second)
	select {
	case <-got:
	case <-deadline:
		t.Fatal("no periodic snapshot within 2s")
	}
	rep.Stop()
	rep.Stop() // idempotent
	// The final emission on Stop is guaranteed even without ticks.
	rep2 := StartReporter(r, time.Hour, func(s *Snapshot) { got <- s })
	rep2.Stop()
	select {
	case s := <-got:
		if s.Counters["ticks_total"] != 1 {
			t.Fatalf("final snapshot: %+v", s.Counters)
		}
	default:
		t.Fatal("Stop did not emit a final snapshot")
	}
	if StartReporter(nil, time.Second, func(*Snapshot) {}) != nil {
		t.Fatal("nil registry must yield nil reporter")
	}
	var nilRep *Reporter
	nilRep.Stop()
}
