package telemetry

import (
	"sync"
	"time"
)

// Reporter periodically snapshots a registry and hands the snapshot to an
// emit callback — the always-on fleet telemetry feed. It runs on wall
// clock (the fleet's virtual clocks are per-device and unordered across
// the fleet), so it reports real observation moments of a concurrent run.
type Reporter struct {
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartReporter begins emitting a snapshot every interval until Stop. A
// final snapshot is always emitted on Stop, so even runs shorter than one
// interval produce a report. Returns nil (a no-op reporter) when the
// registry or emit is nil or the interval is not positive.
func StartReporter(r *Registry, every time.Duration, emit func(*Snapshot)) *Reporter {
	if r == nil || emit == nil || every <= 0 {
		return nil
	}
	rep := &Reporter{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(rep.done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				emit(r.Snapshot())
			case <-rep.stop:
				emit(r.Snapshot())
				return
			}
		}
	}()
	return rep
}

// Stop halts the reporter after emitting one final snapshot, and waits for
// the emit goroutine to finish so callers can safely read whatever emit
// wrote. Safe to call multiple times and on a nil reporter.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}
