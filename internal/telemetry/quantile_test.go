package telemetry

import (
	"math/rand"
	"testing"
)

// These pin HistogramSnapshot.Quantile's edge behavior — the watchdog's
// latency-p99 rule and the history store's window digests both lean on
// it, so the edges are contract, not incidental.

func quantHist(bounds []float64, counts []uint64) HistogramSnapshot {
	var total uint64
	for _, c := range counts {
		total += c
	}
	return HistogramSnapshot{Bounds: bounds, Counts: counts, Count: total}
}

func TestQuantileEmpty(t *testing.T) {
	var h HistogramSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	// Bounds without observations is still empty.
	h = quantHist([]float64{1, 2}, []uint64{0, 0, 0})
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("zero-count Quantile = %g, want 0", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	// One observation in the (2, 5] bucket.
	h := quantHist([]float64{1, 2, 5, 10}, []uint64{0, 0, 1, 0, 0})
	if got := h.Quantile(0); got != 2 {
		t.Fatalf("q=0 = %g, want the bucket's lower bound 2", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Fatalf("q=1 = %g, want the bucket's upper bound 5", got)
	}
	if got := h.Quantile(0.5); got != 3.5 {
		t.Fatalf("q=0.5 = %g, want the bucket midpoint 3.5", got)
	}
}

func TestQuantileAllMassInOverflow(t *testing.T) {
	// Every observation beyond the last bound: all quantiles clamp to the
	// last bound — there is no upper edge to interpolate towards.
	h := quantHist([]float64{1, 2, 5}, []uint64{0, 0, 0, 42})
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 5 {
			t.Fatalf("overflow-only Quantile(%g) = %g, want 5", q, got)
		}
	}
}

func TestQuantileClampsQ(t *testing.T) {
	h := quantHist([]float64{10, 20}, []uint64{4, 4, 0})
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Fatalf("q<0 = %g, want clamp to q=0 (%g)", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Fatalf("q>1 = %g, want clamp to q=1 (%g)", got, want)
	}
}

func TestQuantileLinearInterpolation(t *testing.T) {
	// Uniform 10/10/10 across (0,10], (10,20], (20,30]: the median ranks
	// halfway into the middle bucket.
	h := quantHist([]float64{10, 20, 30}, []uint64{10, 10, 10, 0})
	if got := h.Quantile(0.5); got != 15 {
		t.Fatalf("uniform median = %g, want 15", got)
	}
	if got := h.Quantile(1.0/3.0); got != 10 {
		t.Fatalf("q=1/3 = %g, want the first bound 10", got)
	}
	if got := h.Quantile(1); got != 30 {
		t.Fatalf("q=1 = %g, want 30", got)
	}
}

// TestQuantileMonotoneProperty is the property satellite: over randomized
// histograms, quantiles never decrease as q increases, and every value
// stays within [0, last bound].
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nb := 1 + rng.Intn(12)
		bounds := make([]float64, nb)
		v := 0.0
		for i := range bounds {
			v += 0.5 + rng.Float64()*20
			bounds[i] = v
		}
		counts := make([]uint64, nb+1)
		for i := range counts {
			if rng.Intn(3) > 0 {
				counts[i] = uint64(rng.Intn(50))
			}
		}
		h := quantHist(bounds, counts)
		if h.Count == 0 {
			continue
		}
		prev := -1.0
		for qi := 0; qi <= 100; qi++ {
			q := float64(qi) / 100
			got := h.Quantile(q)
			if got < prev {
				t.Fatalf("trial %d: Quantile(%g) = %g < Quantile(%g) = %g\nbounds=%v counts=%v",
					trial, q, got, float64(qi-1)/100, prev, bounds, counts)
			}
			if got < 0 || got > bounds[nb-1] {
				t.Fatalf("trial %d: Quantile(%g) = %g out of [0, %g]\nbounds=%v counts=%v",
					trial, q, got, bounds[nb-1], bounds, counts)
			}
			prev = got
		}
	}
}
