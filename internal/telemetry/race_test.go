package telemetry

import (
	"sync"
	"testing"
)

// TestRegistryConcurrentWriters hammers one registry from 64 goroutines —
// the fleet's device count — mixing instrument creation, counter/gauge/
// histogram writes, collector registration and snapshots. Run under -race
// in CI; the count assertions also catch lost updates.
func TestRegistryConcurrentWriters(t *testing.T) {
	const (
		devices = 64
		perDev  = 1000
	)
	r := New()
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			c := r.Counter("frames_total")
			h := r.Histogram("lat_ms", LatencyBucketsMs)
			g := r.Gauge("last_device")
			for i := 0; i < perDev; i++ {
				c.Inc()
				h.Observe(float64(i % 40))
				g.Set(float64(d))
				if i%100 == 0 {
					// Interleave snapshots with writes.
					_ = r.Snapshot()
				}
			}
			r.RegisterCollector(func(s *Snapshot) { s.AddCounter("collected_total", 1) })
		}(d)
	}
	wg.Wait()

	s := r.Snapshot()
	if got := s.Counters["frames_total"]; got != devices*perDev {
		t.Fatalf("lost counter updates: %d, want %d", got, devices*perDev)
	}
	h := s.Histograms["lat_ms"]
	if h.Count != devices*perDev {
		t.Fatalf("lost histogram updates: %d, want %d", h.Count, devices*perDev)
	}
	// Sum of 0..39 repeated: 64 devices * 25 reps * 780.
	if want := float64(devices * perDev / 40 * 780); h.Sum != want {
		t.Fatalf("histogram sum %g, want %g (CAS races)", h.Sum, want)
	}
	if got := s.Counters["collected_total"]; got != devices {
		t.Fatalf("collectors ran %d times, want %d", got, devices)
	}
}
