// Package stats provides the statistical tooling the experiments need:
// descriptive summaries, ordinary least squares, non-linear least squares
// (Gauss-Newton, used to fit the GP2D120 sensor characteristic of paper
// Figures 4 and 5) and histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by operations that need at least one sample.
var ErrNoData = errors.New("stats: no data")

// Summary holds descriptive statistics over a sample.
type Summary struct {
	N      int
	Mean   float64
	SD     float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
	CI95   float64 // half-width of the 95% confidence interval of the mean
}

// String formats the summary for reports.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g [%.4g,%.4g] median=%.4g ±%.4g",
		s.N, s.Mean, s.SD, s.Min, s.Max, s.Median, s.CI95)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the sample variance (n-1 denominator) of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Summarize computes a full descriptive summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		SD:     StdDev(xs),
		Min:    xs[0],
		Max:    xs[0],
		Median: Median(xs),
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	if s.N > 1 {
		// Normal approximation; fine for the trial counts used here.
		s.CI95 = 1.96 * s.SD / math.Sqrt(float64(s.N))
	}
	return s
}
