package stats

import (
	"fmt"
	"strings"
)

// Histogram accumulates samples into fixed-width bins over [Lo, Hi).
// Samples outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	Under  int
	Over   int
	n      int
}

// NewHistogram returns a histogram with the given number of bins over
// [lo, hi). It returns an error for a degenerate range or bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: invalid range [%g,%g)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, bins)}, nil
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) {
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// N reports the total number of samples added.
func (h *Histogram) N() int { return h.n }

// BinCenter returns the centre value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + w*(float64(i)+0.5)
}

// Render draws a horizontal ASCII bar chart, one row per bin, scaled so the
// fullest bin spans width characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 1
	for _, c := range h.Bins {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Bins {
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "%8.3g | %-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	return b.String()
}
