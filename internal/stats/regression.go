package stats

import (
	"fmt"
	"math"
)

// LinearFit is the result of an ordinary-least-squares line fit y = a + b*x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
	N         int
}

// String formats the fit for reports.
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.4g + %.4g*x (R²=%.4f, n=%d)", f.Intercept, f.Slope, f.R2, f.N)
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// LinearRegression fits y = a + b*x by ordinary least squares.
func LinearRegression(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrNoData
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate x values")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := a + b*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Intercept: a, Slope: b, R2: r2, N: len(xs)}, nil
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples, or 0 when either sample is constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// RMSE returns the root-mean-square error between predictions and targets.
func RMSE(pred, got []float64) float64 {
	if len(pred) != len(got) || len(pred) == 0 {
		return 0
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - got[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}
