package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations of a fit are singular.
var ErrSingular = errors.New("stats: singular normal equations")

// Model is a parametric model y = f(x; params) for non-linear least squares.
type Model func(x float64, params []float64) float64

// NonLinearFit is the result of a Gauss-Newton fit.
type NonLinearFit struct {
	Params     []float64
	RMSE       float64
	R2         float64
	Iterations int
	Converged  bool
}

// String formats the fit for reports.
func (f NonLinearFit) String() string {
	return fmt.Sprintf("params=%v rmse=%.4g R²=%.4f iters=%d converged=%t",
		f.Params, f.RMSE, f.R2, f.Iterations, f.Converged)
}

// GaussNewton fits model parameters to (xs, ys) by damped Gauss-Newton with
// a numerically differentiated Jacobian. init is the starting guess; it is
// not modified. The fit stops when the step is below tol or after maxIter
// iterations.
func GaussNewton(model Model, xs, ys, init []float64, maxIter int, tol float64) (NonLinearFit, error) {
	if len(xs) != len(ys) {
		return NonLinearFit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	p := len(init)
	if p == 0 {
		return NonLinearFit{}, errors.New("stats: no parameters")
	}
	if len(xs) < p {
		return NonLinearFit{}, fmt.Errorf("stats: %d points cannot determine %d parameters", len(xs), p)
	}
	params := append([]float64(nil), init...)

	residuals := func(ps []float64) []float64 {
		r := make([]float64, len(xs))
		for i := range xs {
			r[i] = ys[i] - model(xs[i], ps)
		}
		return r
	}
	sumsq := func(r []float64) float64 {
		s := 0.0
		for _, v := range r {
			s += v * v
		}
		return s
	}

	fit := NonLinearFit{}
	cost := sumsq(residuals(params))
	for iter := 0; iter < maxIter; iter++ {
		fit.Iterations = iter + 1
		r := residuals(params)

		// Numerical Jacobian of the residuals w.r.t. the parameters.
		jac := make([][]float64, len(xs))
		for i := range jac {
			jac[i] = make([]float64, p)
		}
		for j := 0; j < p; j++ {
			h := 1e-6 * math.Max(math.Abs(params[j]), 1)
			bumped := append([]float64(nil), params...)
			bumped[j] += h
			for i := range xs {
				// d(residual)/d(param) = -d(model)/d(param)
				jac[i][j] = -(model(xs[i], bumped) - model(xs[i], params)) / h
			}
		}

		// Normal equations: (JᵀJ) delta = -Jᵀ r
		jtj := make([][]float64, p)
		jtr := make([]float64, p)
		for a := 0; a < p; a++ {
			jtj[a] = make([]float64, p)
			for b := 0; b < p; b++ {
				s := 0.0
				for i := range xs {
					s += jac[i][a] * jac[i][b]
				}
				jtj[a][b] = s
			}
			s := 0.0
			for i := range xs {
				s += jac[i][a] * r[i]
			}
			jtr[a] = -s
		}

		delta, err := SolveLinear(jtj, jtr)
		if err != nil {
			return fit, err
		}

		// Damped step: halve until the cost does not increase.
		step := 1.0
		var next []float64
		var nextCost float64
		for k := 0; k < 20; k++ {
			next = make([]float64, p)
			for j := range next {
				next[j] = params[j] + step*delta[j]
			}
			nextCost = sumsq(residuals(next))
			if nextCost <= cost {
				break
			}
			step /= 2
		}
		norm := 0.0
		for j := range delta {
			norm += step * delta[j] * step * delta[j]
		}
		params = next
		cost = nextCost
		if math.Sqrt(norm) < tol {
			fit.Converged = true
			break
		}
	}

	fit.Params = params
	fit.RMSE = math.Sqrt(cost / float64(len(xs)))
	meanY := Mean(ys)
	ssTot := 0.0
	for _, y := range ys {
		ssTot += (y - meanY) * (y - meanY)
	}
	if ssTot > 0 {
		fit.R2 = 1 - cost/ssTot
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// SolveLinear solves the square system A x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n {
		return nil, fmt.Errorf("stats: matrix is %dx? but vector is %d", len(a), n)
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for row := col + 1; row < n; row++ {
			if math.Abs(m[row][col]) > math.Abs(m[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(m[pivot][col]) < 1e-14 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]

		inv := 1 / m[col][col]
		for row := col + 1; row < n; row++ {
			f := m[row][col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				m[row][k] -= f * m[col][k]
			}
			x[row] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for k := col + 1; k < n; k++ {
			s -= m[col][k] * x[k]
		}
		x[col] = s / m[col][col]
	}
	return x, nil
}
