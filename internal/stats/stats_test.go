package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hcilab/distscroll/internal/sim"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Mean(xs), 5, 1e-12, "mean")
	almost(t, Variance(xs), 32.0/7, 1e-12, "variance")
	almost(t, StdDev(xs), math.Sqrt(32.0/7), 1e-12, "sd")
	almost(t, Median(xs), 4.5, 1e-12, "median")
}

func TestDescriptiveEmptyAndSingle(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should yield zeros")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single sample variance should be 0")
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.CI95 != 0 {
		t.Fatalf("single-sample summary: %+v", s)
	}
}

func TestMedianOdd(t *testing.T) {
	almost(t, Median([]float64{9, 1, 5}), 5, 1e-12, "median")
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	almost(t, Percentile(xs, 0), 1, 1e-12, "p0")
	almost(t, Percentile(xs, 100), 5, 1e-12, "p100")
	almost(t, Percentile(xs, 50), 3, 1e-12, "p50")
	almost(t, Percentile(xs, 25), 2, 1e-12, "p25")
}

func TestSummarizeBounds(t *testing.T) {
	xs := []float64{5, -2, 9, 3}
	s := Summarize(xs)
	if s.Min != -2 || s.Max != 9 || s.N != 4 {
		t.Fatalf("summary: %+v", s)
	}
	if s.CI95 <= 0 {
		t.Fatal("CI95 should be positive for n>1")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1.5 + 2*x
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, fit.Intercept, 1.5, 1e-9, "intercept")
	almost(t, fit.Slope, 2, 1e-9, "slope")
	almost(t, fit.R2, 1, 1e-9, "r2")
	almost(t, fit.Predict(10), 21.5, 1e-9, "predict")
}

func TestLinearRegressionNoisy(t *testing.T) {
	rng := sim.NewRand(1)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := rng.Uniform(0, 10)
		xs = append(xs, x)
		ys = append(ys, 3-0.5*x+rng.Norm(0, 0.1))
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, fit.Intercept, 3, 0.05, "intercept")
	almost(t, fit.Slope, -0.5, 0.02, "slope")
	if fit.R2 < 0.98 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error for n<2")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error for length mismatch")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("want error for constant x")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	almost(t, Correlation(xs, []float64{2, 4, 6, 8}), 1, 1e-12, "corr+")
	almost(t, Correlation(xs, []float64{8, 6, 4, 2}), -1, 1e-12, "corr-")
	if Correlation(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant series should have 0 correlation")
	}
}

func TestRMSE(t *testing.T) {
	almost(t, RMSE([]float64{1, 2}, []float64{1, 4}), math.Sqrt(2), 1e-12, "rmse")
	if RMSE(nil, nil) != 0 {
		t.Fatal("empty RMSE should be 0")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, x[0], 1, 1e-9, "x0")
	almost(t, x[1], 3, 1e-9, "x1")
	// Inputs untouched.
	if a[0][0] != 2 || b[0] != 5 {
		t.Fatal("SolveLinear mutated inputs")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("want singular error")
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Zero on the diagonal forces a pivot swap.
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := SolveLinear(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, x[0], 3, 1e-9, "x0")
	almost(t, x[1], 2, 1e-9, "x1")
}

func TestSolveLinearRandomProperty(t *testing.T) {
	rng := sim.NewRand(2)
	f := func(_ uint8) bool {
		n := 1 + rng.Intn(5)
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Uniform(-5, 5)
			}
			a[i][i] += 10 // diagonally dominant: well conditioned
			x[i] = rng.Uniform(-3, 3)
		}
		b := make([]float64, n)
		for i := range b {
			for j := range x {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussNewtonRecoversSensorModel(t *testing.T) {
	// The exact model fitted to paper Figure 4: V = a/(d+b) + c.
	model := func(x float64, p []float64) float64 { return p[0]/(x+p[1]) + p[2] }
	truth := []float64{13, 0.42, 0.04}
	rng := sim.NewRand(3)
	var xs, ys []float64
	for d := 4.0; d <= 30; d += 0.5 {
		xs = append(xs, d)
		ys = append(ys, model(d, truth)+rng.Norm(0, 0.005))
	}
	fit, err := GaussNewton(model, xs, ys, []float64{5, 1, 0}, 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, fit.Params[0], 13, 0.3, "a")
	almost(t, fit.Params[1], 0.42, 0.15, "b")
	almost(t, fit.Params[2], 0.04, 0.02, "c")
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
	if !fit.Converged {
		t.Fatal("fit did not converge")
	}
}

func TestGaussNewtonErrors(t *testing.T) {
	model := func(x float64, p []float64) float64 { return p[0] * x }
	if _, err := GaussNewton(model, []float64{1}, []float64{1, 2}, []float64{1}, 10, 1e-6); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if _, err := GaussNewton(model, []float64{1, 2}, []float64{1, 2}, nil, 10, 1e-6); err == nil {
		t.Fatal("want no-parameters error")
	}
	if _, err := GaussNewton(model, []float64{1}, []float64{1}, []float64{1, 2}, 10, 1e-6); err == nil {
		t.Fatal("want underdetermined error")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 42} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d", h.Bins[0])
	}
	if h.N() != 8 {
		t.Fatalf("n = %d", h.N())
	}
	almost(t, h.BinCenter(0), 1, 1e-12, "bin center")
	if h.Render(20) == "" {
		t.Fatal("empty render")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("want bins error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("want range error")
	}
}
