package stats

import (
	"math"
	"testing"

	"github.com/hcilab/distscroll/internal/sim"
)

func TestWelchTTestDetectsDifference(t *testing.T) {
	rng := sim.NewRand(1)
	var a, b []float64
	for i := 0; i < 60; i++ {
		a = append(a, rng.Norm(10, 1))
		b = append(b, rng.Norm(11, 1)) // one sd apart: clearly significant
	}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.01) {
		t.Fatalf("1-sd separation not significant: %s", res)
	}
	if res.MeanDiff >= 0 {
		t.Fatalf("mean diff sign: %v", res.MeanDiff)
	}
	if res.String() == "" {
		t.Fatal("empty string")
	}
}

func TestWelchTTestNullNoFalsePositives(t *testing.T) {
	// Under the null hypothesis, p should rarely be tiny.
	rng := sim.NewRand(2)
	small := 0
	const runs = 200
	for r := 0; r < runs; r++ {
		var a, b []float64
		for i := 0; i < 30; i++ {
			a = append(a, rng.Norm(5, 2))
			b = append(b, rng.Norm(5, 2))
		}
		res, err := WelchTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.01 {
			small++
		}
	}
	// Expect ~1% of runs below 0.01; allow generous slack.
	if small > 10 {
		t.Fatalf("%d/%d null runs significant at 0.01", small, runs)
	}
}

func TestWelchTTestKnownValue(t *testing.T) {
	// Hand-computable case: a = {1..5} (mean 3, var 2.5), b = {2..6}
	// (mean 4, var 2.5): t = -1/sqrt(0.5+0.5) = -1, Welch df = 8,
	// two-sided p = 2·P(T₈ > 1) ≈ 0.3466.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 3, 4, 5, 6}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.T+1) > 1e-9 {
		t.Fatalf("t = %.6f, want -1", res.T)
	}
	if math.Abs(res.DF-8) > 1e-9 {
		t.Fatalf("df = %.6f, want 8", res.DF)
	}
	if math.Abs(res.P-0.3466) > 0.002 {
		t.Fatalf("p = %.4f, want ≈ 0.3466", res.P)
	}
}

func TestWelchTTestIdenticalConstant(t *testing.T) {
	a := []float64{3, 3, 3}
	res, err := WelchTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.T != 0 {
		t.Fatalf("constant samples: %s", res)
	}
}

func TestWelchTTestValidation(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestStudentTailSymmetry(t *testing.T) {
	if got := studentTailCDF(0, 10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tail at 0 = %v", got)
	}
	// Large t → tiny tail.
	if got := studentTailCDF(10, 30); got > 1e-8 {
		t.Fatalf("tail at t=10 = %v", got)
	}
	// Monotone decreasing in t.
	last := 0.5
	for x := 0.5; x < 5; x += 0.5 {
		cur := studentTailCDF(x, 12)
		if cur >= last {
			t.Fatalf("tail not decreasing at %v", x)
		}
		last = cur
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("bounds")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.4, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
}
