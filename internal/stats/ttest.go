package stats

import (
	"fmt"
	"math"
)

// TTestResult is the outcome of a two-sample Welch t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
	// MeanDiff is mean(a) - mean(b).
	MeanDiff float64
}

// Significant reports whether the difference is significant at the given
// alpha (e.g. 0.05).
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// String formats the result in report style.
func (r TTestResult) String() string {
	return fmt.Sprintf("t(%.1f)=%.3f, p=%.4f, Δ=%.4g", r.DF, r.T, r.P, r.MeanDiff)
}

// WelchTTest performs a two-sided two-sample t-test without assuming
// equal variances. Each sample needs at least two observations.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("stats: t-test needs >= 2 samples per group (%d, %d)", len(a), len(b))
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))

	se2 := va/na + vb/nb
	if se2 == 0 {
		// Identical constant samples: no evidence of a difference.
		return TTestResult{T: 0, DF: na + nb - 2, P: 1, MeanDiff: ma - mb}, nil
	}
	t := (ma - mb) / math.Sqrt(se2)
	// Welch–Satterthwaite degrees of freedom.
	df := se2 * se2 / ((va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1)))
	p := 2 * studentTailCDF(math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p, MeanDiff: ma - mb}, nil
}

// studentTailCDF returns P(T > t) for Student's t with df degrees of
// freedom, via the regularised incomplete beta function.
func studentTailCDF(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularised incomplete beta function I_x(a,b)
// by the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lnFront := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lnFront)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF is the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
