package pda

import (
	"errors"
	"fmt"
	"strings"
)

// Screen geometry of the simulated 2005-era PDA (quarter-VGA class,
// rendered as a text grid).
const (
	ScreenCols  = 28
	ScreenLines = 10
)

// PDA is the host device: it owns a scrollable application list, renders
// its screen, and consumes add-on records through the connector.
type PDA struct {
	port  portReader
	items []string
	sel   int
	// OnActivate runs when the add-on button activates the selection.
	OnActivate func(index int, item string)

	// Stats.
	records   uint64
	unknown   uint64
	noSignal  bool
	activated int
}

// portReader is the slice of the serial port the PDA needs (test seam).
type portReader interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
}

// NewPDA returns a PDA showing the given list, driving the add-on on the
// other end of the port. It immediately announces the list size.
func NewPDA(items []string, port portReader) (*PDA, error) {
	if port == nil {
		return nil, errors.New("pda: port is required")
	}
	if len(items) == 0 {
		return nil, errors.New("pda: empty list")
	}
	if len(items) > 255 {
		return nil, fmt.Errorf("pda: %d items exceed the protocol's 255", len(items))
	}
	p := &PDA{port: port, items: append([]string(nil), items...)}
	if err := p.announce(); err != nil {
		return nil, err
	}
	return p, nil
}

// announce tells the add-on how many entries the current list has.
func (p *PDA) announce() error {
	if _, err := p.port.Write([]byte{RecConfig, byte(len(p.items))}); err != nil {
		return fmt.Errorf("pda: announce: %w", err)
	}
	return nil
}

// SetList replaces the list (e.g. the user opened a different application)
// and re-announces its size so the add-on rebuilds its islands.
func (p *PDA) SetList(items []string) error {
	if len(items) == 0 || len(items) > 255 {
		return fmt.Errorf("pda: bad list size %d", len(items))
	}
	p.items = append([]string(nil), items...)
	p.sel = 0
	return p.announce()
}

// Selection returns the selected index.
func (p *PDA) Selection() int { return p.sel }

// SelectedItem returns the selected item text.
func (p *PDA) SelectedItem() string { return p.items[p.sel] }

// Activated reports how many activations occurred.
func (p *PDA) Activated() int { return p.activated }

// Records reports consumed protocol records.
func (p *PDA) Records() uint64 { return p.records }

// NoSignal reports whether the add-on currently sees no target.
func (p *PDA) NoSignal() bool { return p.noSignal }

// Service drains the connector and applies the add-on's records.
func (p *PDA) Service() error {
	buf := make([]byte, 64)
	for {
		n, err := p.port.Read(buf)
		if err != nil {
			return fmt.Errorf("pda: service: %w", err)
		}
		if n == 0 {
			return nil
		}
		for i := 0; i+1 < n; i += 2 {
			p.records++
			switch buf[i] {
			case RecIsland:
				idx := int(buf[i+1])
				if idx < len(p.items) {
					p.sel = idx
				}
				p.noSignal = false
			case RecButton:
				p.activated++
				if p.OnActivate != nil {
					p.OnActivate(p.sel, p.items[p.sel])
				}
			case RecNoSignal:
				p.noSignal = true
			default:
				p.unknown++
			}
		}
	}
}

// Screen renders the PDA display: a title bar, the list window centred on
// the selection, and a status line.
func (p *PDA) Screen() string {
	var b strings.Builder
	rule := "+" + strings.Repeat("-", ScreenCols) + "+"
	b.WriteString(rule + "\n")
	fmt.Fprintf(&b, "|%-*s|\n", ScreenCols, " Applications")
	b.WriteString(rule + "\n")

	window := ScreenLines - 4
	start := p.sel - window/2
	if start > len(p.items)-window {
		start = len(p.items) - window
	}
	if start < 0 {
		start = 0
	}
	for i := start; i < start+window; i++ {
		if i >= len(p.items) {
			fmt.Fprintf(&b, "|%-*s|\n", ScreenCols, "")
			continue
		}
		marker := "  "
		if i == p.sel {
			marker = "> "
		}
		fmt.Fprintf(&b, "|%-*s|\n", ScreenCols, marker+p.items[i])
	}
	status := fmt.Sprintf(" %d/%d", p.sel+1, len(p.items))
	if p.noSignal {
		status += "  [no signal]"
	}
	fmt.Fprintf(&b, "|%-*s|\n", ScreenCols, status)
	b.WriteString(rule)
	return b.String()
}
