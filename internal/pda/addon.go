// Package pda implements the paper's future-work item: "we also intend to
// construct a minimized version of the DistScroll as add-on for a PDA"
// (Section 7), attached through the device's connector as suggested in
// Section 5.2 ("a DistScroll add-on for mobile devices using the power
// connector ... thereby potentially extending its usage").
//
// The add-on is the DistScroll reduced to its essence: the GP2D120, the
// ADC, the filter, the island mapper and a single select button — no
// displays, no radio. It speaks a tiny bidirectional wire protocol over
// the connector: the PDA announces how many entries its current list has
// (the add-on rebuilds its islands), and the add-on streams island changes
// and button presses back.
package pda

import (
	"errors"
	"fmt"
	"time"

	"github.com/hcilab/distscroll/internal/adc"
	"github.com/hcilab/distscroll/internal/buttons"
	"github.com/hcilab/distscroll/internal/firmware"
	"github.com/hcilab/distscroll/internal/gp2d120"
	"github.com/hcilab/distscroll/internal/mapping"
	"github.com/hcilab/distscroll/internal/serial"
	"github.com/hcilab/distscroll/internal/sim"
)

// Wire protocol record types (addon→PDA unless noted).
const (
	// RecIsland: [RecIsland, index] — the selection moved.
	RecIsland byte = 0xA5
	// RecButton: [RecButton, 0] — the select button was pressed.
	RecButton byte = 0xB1
	// RecConfig (PDA→addon): [RecConfig, entries] — list size changed.
	RecConfig byte = 0xC0
	// RecNoSignal: [RecNoSignal, 0] — out of range / no measurement.
	RecNoSignal byte = 0xD2
)

// AddonConfig parameterises the add-on module.
type AddonConfig struct {
	Sensor       gp2d120.Config
	Surface      gp2d120.Surface
	Mapping      mapping.Config
	Filter       firmware.FilterKind
	SamplePeriod time.Duration
}

// DefaultAddonConfig matches the full prototype's sensing chain.
func DefaultAddonConfig() AddonConfig {
	return AddonConfig{
		Sensor:       gp2d120.DefaultConfig(),
		Surface:      gp2d120.DefaultSurface(),
		Mapping:      mapping.DefaultConfig(1),
		Filter:       firmware.MedianEMA,
		SamplePeriod: 40 * time.Millisecond,
	}
}

// Addon is the minimized DistScroll module.
type Addon struct {
	cfg    AddonConfig
	sensor *gp2d120.Sensor
	conv   *adc.Converter
	filter firmware.Filter
	mapper *mapping.Mapper
	pad    *buttons.Pad
	port   *serial.Port

	distanceCm float64
	lastIsland int
	noSignal   bool

	// Stats.
	cycles  uint64
	sentRec uint64
}

// NewAddon builds an add-on module talking over the given port end.
func NewAddon(cfg AddonConfig, port *serial.Port, rng *sim.Rand) (*Addon, error) {
	if port == nil {
		return nil, errors.New("pda: addon needs a port")
	}
	var sensorRng, adcRng *sim.Rand
	if rng != nil {
		sensorRng = rng.Split()
		adcRng = rng.Split()
	}
	sensor, err := gp2d120.New(cfg.Sensor, cfg.Surface, sensorRng)
	if err != nil {
		return nil, fmt.Errorf("pda: %w", err)
	}
	conv, err := adc.New(adc.DefaultVref, 1, adcRng)
	if err != nil {
		return nil, fmt.Errorf("pda: %w", err)
	}
	a := &Addon{
		cfg:        cfg,
		sensor:     sensor,
		conv:       conv,
		pad:        buttons.NewPad(buttons.SingleLargeButtonLayout()),
		port:       port,
		distanceCm: 15,
		lastIsland: -1,
	}
	if err := conv.Connect(0, func() float64 { return a.sensor.Sample(a.distanceCm) }); err != nil {
		return nil, fmt.Errorf("pda: %w", err)
	}
	f, err := firmware.NewFilter(cfg.Filter, 0.35)
	if err != nil {
		return nil, fmt.Errorf("pda: %w", err)
	}
	a.filter = f
	if err := a.rebuildMapper(cfg.Mapping.Entries); err != nil {
		return nil, err
	}
	return a, nil
}

// SetDistance drives the physical distance (environment hook).
func (a *Addon) SetDistance(cm float64) {
	if cm < 0 {
		cm = 0
	}
	a.distanceCm = cm
}

// PressButton drives the electrical button level.
func (a *Addon) PressButton(pressed bool, at time.Duration) {
	a.pad.Set(buttons.TopRight, pressed, at)
}

// Cycles reports executed loop cycles; Sent the emitted records.
func (a *Addon) Cycles() uint64 { return a.cycles }

// Sent reports emitted protocol records.
func (a *Addon) Sent() uint64 { return a.sentRec }

func (a *Addon) rebuildMapper(entries int) error {
	if entries < 1 {
		entries = 1
	}
	cfg := a.cfg.Mapping
	cfg.Entries = entries
	m, err := mapping.New(cfg, a.sensor.Ideal)
	if err != nil {
		return fmt.Errorf("pda: rebuild mapper: %w", err)
	}
	a.mapper = m
	a.filter.Reset()
	a.lastIsland = -1
	return nil
}

// Step runs one add-on cycle: handle configuration from the PDA, sample,
// map, and report changes.
func (a *Addon) Step(now time.Duration) error {
	a.cycles++

	// Configuration from the host.
	buf := make([]byte, 64)
	for {
		n, err := a.port.Read(buf)
		if err != nil {
			return fmt.Errorf("pda: addon read: %w", err)
		}
		if n == 0 {
			break
		}
		for i := 0; i+1 < n; i += 2 {
			if buf[i] == RecConfig {
				if err := a.rebuildMapper(int(buf[i+1])); err != nil {
					return err
				}
			}
		}
	}

	// Sense and map.
	code, err := a.conv.Read(0)
	if err != nil {
		return fmt.Errorf("pda: sample: %w", err)
	}
	v := a.filter.Apply(a.conv.Voltage(code))
	if v < 0.32 {
		if !a.noSignal {
			a.noSignal = true
			if err := a.emit(RecNoSignal, 0); err != nil {
				return err
			}
		}
	} else {
		a.noSignal = false
		if index, active := a.mapper.Map(v); active && index != a.lastIsland {
			a.lastIsland = index
			if err := a.emit(RecIsland, byte(index)); err != nil {
				return err
			}
		}
	}

	// Button.
	for _, ev := range a.pad.Scan(now) {
		if ev.Kind == buttons.Press {
			if err := a.emit(RecButton, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

func (a *Addon) emit(rec, arg byte) error {
	if _, err := a.port.Write([]byte{rec, arg}); err != nil {
		return fmt.Errorf("pda: addon write: %w", err)
	}
	a.sentRec++
	return nil
}

// DistanceForEntry exposes the island geometry so scenarios can steer.
func (a *Addon) DistanceForEntry(index int) (float64, error) {
	return a.mapper.DistanceFor(index)
}
