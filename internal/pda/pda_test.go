package pda

import (
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/serial"
	"github.com/hcilab/distscroll/internal/sim"
)

// rig wires a PDA and an add-on over a serial pair.
type rig struct {
	pda   *PDA
	addon *Addon
	now   time.Duration
}

func newRig(t *testing.T, items []string, seed uint64) *rig {
	t.Helper()
	pdaEnd, addonEnd := serial.Pair(0)
	cfg := DefaultAddonConfig()
	cfg.Sensor.NoiseSD = 0
	addon, err := NewAddon(cfg, addonEnd, sim.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPDA(items, pdaEnd)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{pda: p, addon: addon}
}

// step advances both sides n cycles.
func (r *rig) step(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r.now += 40 * time.Millisecond
		if err := r.addon.Step(r.now); err != nil {
			t.Fatal(err)
		}
		if err := r.pda.Service(); err != nil {
			t.Fatal(err)
		}
	}
}

func items(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "App " + string(rune('A'+i))
	}
	return out
}

func TestAddonScrollsPDASelection(t *testing.T) {
	r := newRig(t, items(8), 1)
	r.step(t, 3) // deliver the config record
	d, err := r.addon.DistanceForEntry(5)
	if err != nil {
		t.Fatal(err)
	}
	r.addon.SetDistance(d)
	r.step(t, 10)
	if r.pda.Selection() != 5 {
		t.Fatalf("selection = %d", r.pda.Selection())
	}
	if r.pda.SelectedItem() != "App F" {
		t.Fatalf("item = %q", r.pda.SelectedItem())
	}
}

func TestButtonActivates(t *testing.T) {
	r := newRig(t, items(5), 2)
	r.step(t, 3)
	d, err := r.addon.DistanceForEntry(2)
	if err != nil {
		t.Fatal(err)
	}
	r.addon.SetDistance(d)
	r.step(t, 10)

	var activated string
	r.pda.OnActivate = func(_ int, item string) { activated = item }
	r.addon.PressButton(true, r.now)
	r.step(t, 2)
	r.addon.PressButton(false, r.now)
	r.step(t, 2)
	if activated != "App C" {
		t.Fatalf("activated %q", activated)
	}
	if r.pda.Activated() != 1 {
		t.Fatalf("activations = %d", r.pda.Activated())
	}
}

func TestListChangeRebuildsIslands(t *testing.T) {
	r := newRig(t, items(4), 3)
	r.step(t, 3)
	// Switch to a 12-entry list: the same physical distance now selects a
	// different index because the islands were rebuilt.
	if err := r.pda.SetList(items(12)); err != nil {
		t.Fatal(err)
	}
	r.step(t, 3)
	d, err := r.addon.DistanceForEntry(10)
	if err != nil {
		t.Fatal(err)
	}
	r.addon.SetDistance(d)
	r.step(t, 10)
	if r.pda.Selection() != 10 {
		t.Fatalf("selection = %d", r.pda.Selection())
	}
}

func TestNoSignalIndicator(t *testing.T) {
	r := newRig(t, items(6), 4)
	r.step(t, 3)
	d, err := r.addon.DistanceForEntry(3)
	if err != nil {
		t.Fatal(err)
	}
	r.addon.SetDistance(d)
	r.step(t, 10)
	sel := r.pda.Selection()

	r.addon.SetDistance(80) // walked away
	r.step(t, 30)
	if !r.pda.NoSignal() {
		t.Fatal("no-signal not reported")
	}
	if got := r.pda.Selection(); got > sel {
		t.Fatalf("selection advanced while out of range: %d -> %d", sel, got)
	}
	if !strings.Contains(r.pda.Screen(), "[no signal]") {
		t.Fatalf("screen:\n%s", r.pda.Screen())
	}

	r.addon.SetDistance(d)
	r.step(t, 10)
	if r.pda.NoSignal() {
		t.Fatal("no-signal stuck after recovery")
	}
}

func TestScreenRendering(t *testing.T) {
	r := newRig(t, items(10), 5)
	r.step(t, 3)
	d, err := r.addon.DistanceForEntry(4)
	if err != nil {
		t.Fatal(err)
	}
	r.addon.SetDistance(d)
	r.step(t, 10)
	screen := r.pda.Screen()
	if !strings.Contains(screen, "> App E") {
		t.Fatalf("screen missing selection:\n%s", screen)
	}
	if !strings.Contains(screen, "5/10") {
		t.Fatalf("screen missing status:\n%s", screen)
	}
	if !strings.Contains(screen, "Applications") {
		t.Fatalf("screen missing title:\n%s", screen)
	}
}

func TestValidation(t *testing.T) {
	pdaEnd, addonEnd := serial.Pair(0)
	if _, err := NewAddon(DefaultAddonConfig(), nil, nil); err == nil {
		t.Fatal("nil port accepted")
	}
	if _, err := NewPDA(nil, pdaEnd); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := NewPDA(items(3), nil); err == nil {
		t.Fatal("nil port accepted")
	}
	p, err := NewPDA(items(3), pdaEnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetList(nil); err == nil {
		t.Fatal("empty relist accepted")
	}
	_ = addonEnd
}

func TestAddonDeterministic(t *testing.T) {
	run := func() uint64 {
		r := newRig(t, items(9), 7)
		r.step(t, 3)
		d, err := r.addon.DistanceForEntry(6)
		if err != nil {
			t.Fatal(err)
		}
		r.addon.SetDistance(d)
		r.step(t, 20)
		return r.addon.Sent()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("sent differs: %d vs %d", a, b)
	}
}
