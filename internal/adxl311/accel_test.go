package adxl311

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hcilab/distscroll/internal/sim"
)

func TestFlatOrientationReadsZeroG(t *testing.T) {
	a := New(nil)
	if g := a.GX(); g != 0 {
		t.Fatalf("GX flat = %v", g)
	}
	if v := a.VoltageX(); math.Abs(v-ZeroGVolts) > 1e-12 {
		t.Fatalf("VoltageX flat = %v, want %v", v, ZeroGVolts)
	}
}

func TestNinetyDegreePitchReadsOneG(t *testing.T) {
	a := New(nil)
	a.SetOrientation(Orientation{Pitch: math.Pi / 2})
	if g := a.GX(); math.Abs(g-1) > 1e-12 {
		t.Fatalf("GX at 90° = %v, want 1", g)
	}
	want := ZeroGVolts + SensitivityVPerG
	if v := a.VoltageX(); math.Abs(v-want) > 1e-12 {
		t.Fatalf("VoltageX at 90° = %v, want %v", v, want)
	}
}

func TestTiltRoundTrip(t *testing.T) {
	a := New(nil)
	f := func(p8, r8 int8) bool {
		// Angles in ±80° stay within the arcsine's usable band.
		pitch := float64(p8) / 127 * (80 * math.Pi / 180)
		roll := float64(r8) / 127 * (80 * math.Pi / 180)
		a.SetOrientation(Orientation{Pitch: pitch, Roll: roll})
		got := TiltFromVoltages(a.VoltageX(), a.VoltageY())
		return math.Abs(got.Pitch-pitch) < 1e-9 && math.Abs(got.Roll-roll) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicAccelerationAdds(t *testing.T) {
	a := New(nil)
	a.SetDynamic(0.5, -0.25)
	if g := a.GX(); math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("GX with dynamic = %v", g)
	}
	if g := a.GY(); math.Abs(g+0.25) > 1e-12 {
		t.Fatalf("GY with dynamic = %v", g)
	}
}

func TestVoltageClamped(t *testing.T) {
	a := New(nil)
	a.SetDynamic(100, -100)
	if v := a.VoltageX(); v > SupplyVolts {
		t.Fatalf("VoltageX unclamped: %v", v)
	}
	if v := a.VoltageY(); v < 0 {
		t.Fatalf("VoltageY unclamped: %v", v)
	}
}

func TestNoiseStatistics(t *testing.T) {
	a := New(sim.NewRand(1))
	const n = 20000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := a.VoltageX()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-ZeroGVolts) > 0.001 {
		t.Fatalf("noisy mean = %v", mean)
	}
	if math.Abs(sd-NoiseSD) > 0.0005 {
		t.Fatalf("noise sd = %v, want %v", sd, NoiseSD)
	}
}

func TestTiltFromVoltagesClamps(t *testing.T) {
	// Voltages implying |g|>1 must clamp instead of producing NaN.
	o := TiltFromVoltages(SupplyVolts, 0)
	if math.IsNaN(o.Pitch) || math.IsNaN(o.Roll) {
		t.Fatalf("NaN from extreme voltages: %+v", o)
	}
	if math.Abs(o.Pitch-math.Pi/2) > 1e-9 {
		t.Fatalf("pitch = %v, want clamped to +90°", o.Pitch)
	}
}

func TestOrientationString(t *testing.T) {
	s := Orientation{Pitch: math.Pi / 4}.String()
	if s == "" {
		t.Fatal("empty orientation string")
	}
}
