// Package adxl311 models the Analog Devices ADXL311JE two-axis
// accelerometer present on the DistScroll add-on board (paper Section 4.3).
// The prototype left it unused, but the paper plans to "include the
// acceleration sensor in the final version of the DistScroll to get
// information about the orientation of the device in 3D space"; this model
// powers both that extension and the tilt-scrolling baseline technique.
package adxl311

import (
	"fmt"
	"math"

	"github.com/hcilab/distscroll/internal/sim"
)

// Datasheet-style constants.
const (
	// SupplyVolts is the nominal supply; the zero-g output sits at half.
	SupplyVolts = 3.0
	// ZeroGVolts is the output at 0 g.
	ZeroGVolts = SupplyVolts / 2
	// SensitivityVPerG is the output change per g of acceleration.
	SensitivityVPerG = 0.174
	// NoiseSD is the RMS output noise in volts.
	NoiseSD = 0.002
	// GravityG is the static acceleration magnitude in g.
	GravityG = 1.0
)

// Orientation is the device attitude in radians. Pitch tilts the top of the
// device towards (+) or away from (−) the user; roll tilts it sideways.
type Orientation struct {
	Pitch float64
	Roll  float64
}

// Accel is a two-axis accelerometer sensing the static gravity projection
// on its X (pitch) and Y (roll) axes, plus dynamic acceleration supplied by
// the motion model.
type Accel struct {
	orientation Orientation
	dynX, dynY  float64 // dynamic acceleration in g
	rng         *sim.Rand
}

// New returns an accelerometer with the given random source; rng may be nil
// for a noiseless instance.
func New(rng *sim.Rand) *Accel {
	return &Accel{rng: rng}
}

// SetOrientation updates the device attitude.
func (a *Accel) SetOrientation(o Orientation) { a.orientation = o }

// Orientation returns the current attitude.
func (a *Accel) Orientation() Orientation { return a.orientation }

// SetDynamic sets the dynamic (motion-induced) acceleration in g applied on
// top of gravity.
func (a *Accel) SetDynamic(gx, gy float64) { a.dynX, a.dynY = gx, gy }

// GX returns the acceleration sensed on the X axis in g.
func (a *Accel) GX() float64 {
	return GravityG*math.Sin(a.orientation.Pitch) + a.dynX
}

// GY returns the acceleration sensed on the Y axis in g.
func (a *Accel) GY() float64 {
	return GravityG*math.Sin(a.orientation.Roll) + a.dynY
}

// VoltageX returns the analog X output.
func (a *Accel) VoltageX() float64 { return a.voltage(a.GX()) }

// VoltageY returns the analog Y output.
func (a *Accel) VoltageY() float64 { return a.voltage(a.GY()) }

func (a *Accel) voltage(g float64) float64 {
	v := ZeroGVolts + SensitivityVPerG*g
	if a.rng != nil {
		v += a.rng.Norm(0, NoiseSD)
	}
	if v < 0 {
		v = 0
	}
	if v > SupplyVolts {
		v = SupplyVolts
	}
	return v
}

// TiltFromVoltages recovers pitch and roll (radians) from a pair of analog
// outputs, clamping the implied g to [-1, 1] before the arcsine. It is the
// host-side decoding used by the tilt baseline.
func TiltFromVoltages(vx, vy float64) Orientation {
	toAngle := func(v float64) float64 {
		g := (v - ZeroGVolts) / SensitivityVPerG
		if g > 1 {
			g = 1
		}
		if g < -1 {
			g = -1
		}
		return math.Asin(g)
	}
	return Orientation{Pitch: toAngle(vx), Roll: toAngle(vy)}
}

// String formats an orientation in degrees for debug displays.
func (o Orientation) String() string {
	return fmt.Sprintf("pitch=%.1f° roll=%.1f°", o.Pitch*180/math.Pi, o.Roll*180/math.Pi)
}
