package technique

import (
	"time"

	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/sim"
)

// Tilt is rate-controlled scrolling by wrist rotation, after Rock'n'Scroll
// (Bartlett 2000) and the tilt techniques of TiltText/Unigesture. The
// paper's critique: "this puts a high load on the wrist" and "using this
// input method for a longer period of time is fatiguing"; tilting also
// changes the viewing angle.
type Tilt struct {
	// MaxRate is the saturated scroll rate in entries/second.
	MaxRate float64
	// RampTime is the time to reach the working rate.
	RampTime time.Duration
	// SettleTime is the stop-and-level-out cost at the target.
	SettleTime time.Duration
	// OvershootPerEntry is the overshoot probability growth per entry of
	// travel at full rate (rate control overshoots on long travels).
	OvershootPerEntry float64
	// FatiguePerTrial slows every subsequent trial (wrist load).
	FatiguePerTrial float64

	trials int
}

// NewTilt returns the tilt model with literature-typical parameters.
func NewTilt() *Tilt {
	return &Tilt{
		MaxRate:           7,
		RampTime:          250 * time.Millisecond,
		SettleTime:        350 * time.Millisecond,
		OvershootPerEntry: 0.012,
		FatiguePerTrial:   0.004,
	}
}

// Name implements Technique.
func (t *Tilt) Name() string { return "tilt" }

// Acquire implements Technique.
func (t *Tilt) Acquire(tr Trial, rng *sim.Rand) Result {
	t.trials++
	fatigue := 1 + t.FatiguePerTrial*float64(t.trials)
	sec := 0.30 + t.RampTime.Seconds() // reaction + ramp
	sec += float64(tr.DistanceEntries) / t.MaxRate
	sec += t.SettleTime.Seconds()
	sec *= fatigue

	res := Result{}
	pOver := t.OvershootPerEntry * float64(tr.DistanceEntries)
	if pOver > 0.6 {
		pOver = 0.6
	}
	for c := 0; c < 4; c++ {
		if rng == nil || !rng.Bool(pOver) {
			break
		}
		res.Corrections++
		// An overshoot costs a reverse micro-scroll.
		sec += 0.5
		pOver *= 0.4
	}
	if res.Corrections >= 4 {
		res.Err = true
	}
	// Selection still needs a (small) button press; viewing-angle changes
	// slow verification slightly under tilt.
	press := 0.22 * buttonPenalty(tr.Glove)
	sec += press + 0.08
	res.MT = time.Duration(sec * float64(time.Second))
	return res
}

// Reset clears the fatigue accumulator between conditions.
func (t *Tilt) Reset() { t.trials = 0 }

// ButtonRepeat is classic keypad scrolling: hold the down key, the cursor
// steps at the repeat rate. Gloves make the small keys hard to hit.
type ButtonRepeat struct {
	// FirstDelay is the press-to-first-repeat delay.
	FirstDelay time.Duration
	// RepeatRate is entries per second while held.
	RepeatRate float64
}

// NewButtonRepeat returns phone-keypad-typical parameters.
func NewButtonRepeat() *ButtonRepeat {
	return &ButtonRepeat{FirstDelay: 400 * time.Millisecond, RepeatRate: 6}
}

// Name implements Technique.
func (b *ButtonRepeat) Name() string { return "buttons" }

// Acquire implements Technique.
func (b *ButtonRepeat) Acquire(tr Trial, rng *sim.Rand) Result {
	penalty := buttonPenalty(tr.Glove)
	sec := 0.30 // reaction
	switch {
	case tr.DistanceEntries <= 0:
	case tr.DistanceEntries <= 3:
		// Discrete taps are faster than engaging auto-repeat.
		sec += float64(tr.DistanceEntries) * 0.22 * penalty
	default:
		sec += (0.22 + b.FirstDelay.Seconds()) * penalty
		sec += float64(tr.DistanceEntries-1) / b.RepeatRate
		// Releasing at the right moment has its own precision problem at
		// 6 entries/s; model a one-entry overshoot chance.
		sec += 0.1
	}

	res := Result{}
	// Missing the small key entirely (fat-finger / glove).
	pMiss := 0.01 + 0.25*(1-clamp01(tr.Glove.TouchPenalty))
	for c := 0; c < 4; c++ {
		if rng == nil || !rng.Bool(pMiss) {
			break
		}
		res.Corrections++
		sec += 0.45 * penalty
		pMiss *= 0.5
	}
	if tr.DistanceEntries > 3 && rng != nil && rng.Bool(0.15) {
		// Auto-repeat release overshoot: back up one entry.
		res.Corrections++
		sec += 0.35 * penalty
	}
	if res.Corrections >= 4 {
		res.Err = true
	}
	sec += 0.22 * penalty // final select press
	res.MT = time.Duration(sec * float64(time.Second))
	return res
}

// Wheel is detented rotary scrolling after the TUISTER and Rantanen's
// YoYo interface: one detent per entry, clutching on long travels. The
// paper notes the TUISTER needs both hands; the YoYo needs attachment to
// the garment and mechanical parts.
type Wheel struct {
	// DetentRate is detents per second of comfortable rotation.
	DetentRate float64
	// ClutchEvery is how many detents fit one wrist rotation before
	// re-gripping; ClutchTime is the re-grip cost.
	ClutchEvery int
	ClutchTime  time.Duration
	// TwoHanded adds an acquisition cost for the second hand (TUISTER).
	TwoHanded bool
}

// NewWheel returns TUISTER-like parameters.
func NewWheel() *Wheel {
	return &Wheel{
		DetentRate:  8,
		ClutchEvery: 12,
		ClutchTime:  300 * time.Millisecond,
		TwoHanded:   true,
	}
}

// Name implements Technique.
func (w *Wheel) Name() string { return "wheel" }

// Acquire implements Technique.
func (w *Wheel) Acquire(tr Trial, rng *sim.Rand) Result {
	sec := 0.30
	if w.TwoHanded {
		sec += 0.40 // bring the second hand to the device
	}
	d := tr.DistanceEntries
	sec += float64(d) / w.DetentRate
	if w.ClutchEvery > 0 && d > w.ClutchEvery {
		clutches := (d - 1) / w.ClutchEvery
		sec += float64(clutches) * w.ClutchTime.Seconds()
	}
	// Thick gloves slow the grip slightly.
	sec *= 1 + 0.3*(1-clamp01(tr.Glove.TouchPenalty))

	res := Result{}
	// Detents make overshoot rare and cheap.
	if rng != nil && rng.Bool(0.04) {
		res.Corrections++
		sec += 0.25
	}
	sec += 0.20 // select by pressing the device
	res.MT = time.Duration(sec * float64(time.Second))
	return res
}

// Stylus is direct pointing at the on-screen list with a stylus or finger:
// the fastest technique bare-handed and the one gloves break ("gloves
// reduce ... the tactile sensation of the hand and fingers and make touch
// and stylus interfaces harder to use").
type Stylus struct {
	// RowHeightMM is the on-screen row height.
	RowHeightMM float64
	// FittsA/FittsB are stylus-pointing constants.
	FittsA, FittsB float64
}

// NewStylus returns PDA-typical parameters.
func NewStylus() *Stylus {
	return &Stylus{RowHeightMM: 4.5, FittsA: 0.12, FittsB: 0.12}
}

// Name implements Technique.
func (s *Stylus) Name() string { return "stylus" }

// Acquire implements Technique.
func (s *Stylus) Acquire(tr Trial, rng *sim.Rand) Result {
	// On a 5-row screen a distant target first needs drag-scrolling into
	// view: ~0.35 s per screenful, then one pointing movement.
	sec := 0.30
	rows := 5
	if tr.DistanceEntries >= rows {
		screens := float64(tr.DistanceEntries) / float64(rows)
		sec += 0.35 * screens
	}
	wEff := s.RowHeightMM * clamp01p(tr.Glove.TouchPenalty)
	dMM := s.RowHeightMM * float64(min(tr.DistanceEntries, rows))
	if dMM < s.RowHeightMM {
		dMM = s.RowHeightMM
	}
	sec += fittsSeconds(s.FittsA, s.FittsB, dMM, wEff)

	res := Result{}
	// Tap scatter vs. effective row height. Re-taps barely improve with a
	// numb fat finger — the miss probability decays slowly, unlike the
	// visually-verified corrections of DistScroll.
	sd := 1.1 / clamp01p(tr.Glove.TouchPenalty) // mm
	p := missProb(sd, wEff/2)
	for c := 0; c < 5; c++ {
		if rng == nil || !rng.Bool(p) {
			break
		}
		res.Corrections++
		sec += 0.5 // re-aim, re-tap, re-verify
		p *= 0.9
	}
	if res.Corrections >= 5 {
		res.Err = true
	}
	res.MT = time.Duration(sec * float64(time.Second))
	return res
}

// buttonPenalty converts the glove touch penalty into a small-button time
// multiplier.
func buttonPenalty(g hand.Glove) float64 {
	return 1 + 0.9*(1-clamp01(g.TouchPenalty))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// clamp01p clamps into (0,1], avoiding division by zero.
func clamp01p(x float64) float64 {
	if x <= 0.05 {
		return 0.05
	}
	if x > 1 {
		return 1
	}
	return x
}
