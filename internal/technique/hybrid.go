package technique

import (
	"math"
	"time"

	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/sim"
)

// Hybrid answers the paper's Section 7 question "Is it meaningful to use
// distance scrolling in addition to normal scrolling or exclusively?" by
// modelling the combined mode: one ballistic distance movement gets the
// cursor near the target (no fine verification needed), then discrete
// button steps close the residual. Distance provides reach, buttons
// provide precision.
type Hybrid struct {
	// Distance geometry, as in DistScroll.
	Profile       hand.Profile
	NearCm, FarCm float64
	// Tolerance is the coarse-landing window in entries that the button
	// phase can comfortably absorb.
	Tolerance float64
	// StepTime is the cost of one fine button step.
	StepTime time.Duration
	// ReactionTime and VerifyTime as in the other models.
	ReactionTime time.Duration
	VerifyTime   time.Duration
}

// NewHybrid returns the combined-mode model with prototype geometry.
func NewHybrid() *Hybrid {
	return &Hybrid{
		Profile:      hand.DefaultProfile(),
		NearCm:       4,
		FarCm:        30,
		Tolerance:    3,
		StepTime:     220 * time.Millisecond,
		ReactionTime: 300 * time.Millisecond,
		VerifyTime:   250 * time.Millisecond,
	}
}

// Name implements Technique.
func (h *Hybrid) Name() string { return "hybrid" }

// Acquire implements Technique.
func (h *Hybrid) Acquire(t Trial, rng *sim.Rand) Result {
	entries := t.TotalEntries
	if entries < 2 {
		entries = 2
	}
	widthCm := (h.FarCm - h.NearCm) / float64(entries-1)
	amplitudeCm := float64(t.DistanceEntries) * widthCm

	glove := t.Glove
	if glove.PrecisionPenalty <= 0 {
		glove = hand.BareHand()
	}

	sec := h.ReactionTime.Seconds()
	var steps float64
	if float64(t.DistanceEntries) <= h.Tolerance {
		// Short hop: buttons alone, no arm movement at all.
		steps = float64(t.DistanceEntries)
	} else {
		// Coarse distance jump with a relaxed target (tolerance window):
		// ballistic, no correction loop, one verification.
		coarseW := h.Tolerance * widthCm
		sec += fittsSeconds(h.Profile.FittsA, h.Profile.FittsB, amplitudeCm, coarseW) * glove.SpeedPenalty
		sec += h.VerifyTime.Seconds()
		// The residual is the landing scatter, quantised to entries.
		sd := h.Profile.EndpointSD * glove.PrecisionPenalty / widthCm // in entries
		resid := sd
		if rng != nil {
			resid = math.Abs(rng.Norm(0, sd))
		}
		steps = math.Round(resid)
	}

	res := Result{}
	penalty := buttonPenalty(glove)
	sec += steps * h.StepTime.Seconds() * penalty
	// Fine steps are visually verified one by one: overshoot is rare and
	// cheap (one extra step back).
	if rng != nil && steps > 0 && rng.Bool(0.05) {
		res.Corrections++
		sec += h.StepTime.Seconds() * penalty
	}
	sec += 0.18 * penalty // select press
	res.MT = time.Duration(sec * float64(time.Second))
	return res
}
