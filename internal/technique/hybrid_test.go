package technique

import (
	"testing"

	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/sim"
)

func TestHybridShortHopsAreButtonsOnly(t *testing.T) {
	h := NewHybrid()
	// D=1 with nil rng: reaction + 1 step + press, no arm movement.
	r := h.Acquire(Trial{DistanceEntries: 1, TotalEntries: 40, Glove: hand.BareHand()}, nil)
	want := 0.3 + 0.22 + 0.18
	if got := r.MT.Seconds(); got < want-0.01 || got > want+0.01 {
		t.Fatalf("D=1 MT = %.3f, want ~%.3f", got, want)
	}
}

func TestHybridBeatsButtonsAtLongRange(t *testing.T) {
	hy := meanMT(t, NewHybrid(), 32, 40, hand.BareHand(), 1)
	bt := meanMT(t, NewButtonRepeat(), 32, 40, hand.BareHand(), 2)
	if hy >= bt {
		t.Fatalf("hybrid %v should beat buttons %v at D=32", hy, bt)
	}
}

func TestHybridBeatsDistanceOnDensesStructures(t *testing.T) {
	// On 40 entries the distance-only islands are narrow; hybrid avoids
	// the verify-correct loop entirely.
	hy := meanMT(t, NewHybrid(), 8, 40, hand.BareHand(), 3)
	ds := meanMT(t, NewDistScroll(), 8, 40, hand.BareHand(), 4)
	if hy >= ds {
		t.Fatalf("hybrid %v should beat distance-only %v on a 40-entry list", hy, ds)
	}
}

func TestHybridMTGrowsWithDistance(t *testing.T) {
	near := meanMT(t, NewHybrid(), 1, 40, hand.BareHand(), 5)
	far := meanMT(t, NewHybrid(), 32, 40, hand.BareHand(), 6)
	if far <= near {
		t.Fatalf("MT(32)=%v <= MT(1)=%v", far, near)
	}
}

func TestHybridGloveTolerant(t *testing.T) {
	bare := meanMT(t, NewHybrid(), 8, 40, hand.BareHand(), 7)
	winter := meanMT(t, NewHybrid(), 8, 40, hand.WinterGlove(), 8)
	if ratio := float64(winter) / float64(bare); ratio > 1.8 {
		t.Fatalf("hybrid glove ratio %.2f too large", ratio)
	}
}

func TestHybridName(t *testing.T) {
	if NewHybrid().Name() != "hybrid" {
		t.Fatal("name")
	}
}

func TestHybridErrorsRare(t *testing.T) {
	rng := sim.NewRand(9)
	h := NewHybrid()
	errs := 0
	const n = 500
	for i := 0; i < n; i++ {
		r := h.Acquire(Trial{DistanceEntries: 8, TotalEntries: 40, Glove: hand.BareHand()}, rng)
		if r.Err {
			errs++
		}
	}
	if rate := float64(errs) / n; rate > 0.05 {
		t.Fatalf("hybrid error rate %.3f", rate)
	}
}
