package technique

import (
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/sim"
)

func all() []Technique {
	return []Technique{
		NewDistScroll(),
		NewTilt(),
		NewButtonRepeat(),
		NewWheel(),
		NewStylus(),
	}
}

func meanMT(t *testing.T, tech Technique, dist, entries int, g hand.Glove, seed uint64) time.Duration {
	t.Helper()
	rng := sim.NewRand(seed)
	var total time.Duration
	const n = 200
	for i := 0; i < n; i++ {
		r := tech.Acquire(Trial{DistanceEntries: dist, TotalEntries: entries, Glove: g}, rng)
		if r.MT <= 0 {
			t.Fatalf("%s: non-positive MT %v", tech.Name(), r.MT)
		}
		total += r.MT
	}
	return total / n
}

func TestAllTechniquesMTGrowsWithDistance(t *testing.T) {
	for _, tech := range all() {
		near := meanMT(t, tech, 1, 30, hand.BareHand(), 1)
		far := meanMT(t, tech, 16, 30, hand.BareHand(), 2)
		if far <= near {
			t.Errorf("%s: MT(16)=%v <= MT(1)=%v", tech.Name(), far, near)
		}
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, tech := range all() {
		n := tech.Name()
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestStylusFastestBareHanded(t *testing.T) {
	// For short, on-screen distances direct pointing wins bare-handed —
	// the status quo the paper concedes.
	stylus := meanMT(t, NewStylus(), 2, 20, hand.BareHand(), 3)
	dist := meanMT(t, NewDistScroll(), 2, 20, hand.BareHand(), 4)
	if stylus >= dist {
		t.Fatalf("bare-handed short-range: stylus %v should beat distscroll %v", stylus, dist)
	}
}

func TestWinterGlovesInvertTheRanking(t *testing.T) {
	// The paper's motivating claim: with thick gloves, touch/stylus input
	// degrades badly while DistScroll barely changes.
	g := hand.WinterGlove()
	stylus := meanMT(t, NewStylus(), 4, 20, g, 5)
	dist := meanMT(t, NewDistScroll(), 4, 20, g, 6)
	if dist >= stylus {
		t.Fatalf("winter gloves: distscroll %v should beat stylus %v", dist, stylus)
	}
}

func TestGloveBarelyAffectsDistScroll(t *testing.T) {
	bare := meanMT(t, NewDistScroll(), 8, 20, hand.BareHand(), 7)
	winter := meanMT(t, NewDistScroll(), 8, 20, hand.WinterGlove(), 8)
	ratio := float64(winter) / float64(bare)
	if ratio > 1.4 {
		t.Fatalf("distscroll glove penalty ratio %.2f too large", ratio)
	}
}

func TestGloveHurtsStylusBadly(t *testing.T) {
	bare := meanMT(t, NewStylus(), 4, 20, hand.BareHand(), 9)
	winter := meanMT(t, NewStylus(), 4, 20, hand.WinterGlove(), 10)
	if float64(winter)/float64(bare) < 1.3 {
		t.Fatalf("stylus should suffer with winter gloves: %v vs %v", winter, bare)
	}
}

func TestGloveHurtsButtons(t *testing.T) {
	bare := meanMT(t, NewButtonRepeat(), 4, 20, hand.BareHand(), 11)
	winter := meanMT(t, NewButtonRepeat(), 4, 20, hand.WinterGlove(), 12)
	if winter <= bare {
		t.Fatalf("buttons should slow with gloves: %v vs %v", winter, bare)
	}
}

func TestTiltFatigueAccumulates(t *testing.T) {
	tilt := NewTilt()
	rng := sim.NewRand(13)
	trial := Trial{DistanceEntries: 4, TotalEntries: 20, Glove: hand.BareHand()}
	var first, last time.Duration
	const n = 200
	for i := 0; i < n; i++ {
		r := tilt.Acquire(trial, rng)
		if i < 10 {
			first += r.MT
		}
		if i >= n-10 {
			last += r.MT
		}
	}
	if last <= first {
		t.Fatalf("tilt fatigue missing: first10=%v last10=%v", first, last)
	}
	tilt.Reset()
	r := tilt.Acquire(trial, rng)
	if r.MT >= last/10 {
		t.Fatalf("Reset did not clear fatigue: %v", r.MT)
	}
}

func TestWheelClutchingCosts(t *testing.T) {
	w := NewWheel()
	short := meanMT(t, w, 10, 60, hand.BareHand(), 14)
	long := meanMT(t, w, 40, 60, hand.BareHand(), 15)
	// 40 detents = 3 clutches beyond the rotation rate cost.
	extra := long - short
	perEntry := float64(extra) / 30
	if perEntry <= float64(time.Second)/w.DetentRate/float64(time.Second)*1e9*0.9 {
		t.Logf("per-entry %v", time.Duration(perEntry))
	}
	if long <= short {
		t.Fatalf("wheel long travel %v should exceed short %v", long, short)
	}
}

func TestErrorRatesBounded(t *testing.T) {
	rng := sim.NewRand(16)
	for _, tech := range all() {
		errs := 0
		const n = 500
		for i := 0; i < n; i++ {
			r := tech.Acquire(Trial{DistanceEntries: 8, TotalEntries: 20, Glove: hand.BareHand()}, rng)
			if r.Err {
				errs++
			}
			if r.Corrections < 0 {
				t.Fatalf("%s: negative corrections", tech.Name())
			}
		}
		if rate := float64(errs) / n; rate > 0.2 {
			t.Errorf("%s: bare-handed error rate %.2f too high", tech.Name(), rate)
		}
	}
}

func TestNilRngIsDeterministic(t *testing.T) {
	for _, tech := range all() {
		tr := Trial{DistanceEntries: 5, TotalEntries: 20, Glove: hand.BareHand()}
		a := tech.Acquire(tr, nil)
		b := tech.Acquire(tr, nil)
		if tech.Name() == "tilt" {
			continue // fatigue makes successive trials differ by design
		}
		if a.MT != b.MT {
			t.Errorf("%s: nil-rng trials differ: %v vs %v", tech.Name(), a.MT, b.MT)
		}
	}
}

func TestDistScrollZeroGloveNormalised(t *testing.T) {
	d := NewDistScroll()
	r := d.Acquire(Trial{DistanceEntries: 3, TotalEntries: 10}, nil)
	if r.MT <= 0 {
		t.Fatalf("zero glove broke the model: %v", r.MT)
	}
	if d.String() == "" {
		t.Fatal("empty description")
	}
}
