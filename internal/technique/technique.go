// Package technique implements the scrolling-technique comparison the
// paper leaves as its first open issue (Section 7): "Is distance-based
// scrolling faster, equal or slower than other scrolling techniques."
//
// Each technique is a validated kinematic model of one input method from
// the paper's Related Work section, producing per-trial movement times and
// errors for a common task: move the cursor D entries through a list and
// select the target. The DistScroll model is parameterised from the same
// island geometry as the full device simulation and cross-validated
// against it in the tests.
package technique

import (
	"fmt"
	"math"
	"time"

	"github.com/hcilab/distscroll/internal/hand"
	"github.com/hcilab/distscroll/internal/sim"
)

// Trial is one cursor-acquisition task.
type Trial struct {
	// DistanceEntries is how many entries away the target is.
	DistanceEntries int
	// TotalEntries is the length of the list (affects mapping geometry).
	TotalEntries int
	// Glove is the handwear condition.
	Glove hand.Glove
}

// Result is one simulated acquisition.
type Result struct {
	MT time.Duration
	// Corrections counts corrective submovements / overshoot fixes.
	Corrections int
	// Err marks a wrong final selection.
	Err bool
}

// Technique simulates acquisitions of list targets.
type Technique interface {
	// Name identifies the technique in reports.
	Name() string
	// Acquire simulates one trial.
	Acquire(t Trial, rng *sim.Rand) Result
}

// erfcHalfWidth returns P(|N(0,sd)| > halfWidth), the chance a normally
// distributed endpoint misses a target of the given half-width.
func missProb(sd, halfWidth float64) float64 {
	if sd <= 0 {
		return 0
	}
	z := halfWidth / (sd * math.Sqrt2)
	return math.Erfc(z)
}

func fittsSeconds(a, b, d, w float64) float64 {
	if w <= 0 {
		w = 1e-9
	}
	return a + b*math.Log2(math.Abs(d)/w+1)
}

// DistScroll is the kinematic model of the paper's technique: one
// continuous arm movement over the 4–30 cm range, island verification, and
// a thumb press. Gloves barely matter — the sensor reads the body, not the
// fingers.
type DistScroll struct {
	// Profile supplies the Fitts constants and endpoint noise.
	Profile hand.Profile
	// NearCm/FarCm bound the physical range; GapFraction the island gaps.
	NearCm, FarCm float64
	GapFraction   float64
	// ReactionTime and VerifyTime match the participant model.
	ReactionTime time.Duration
	VerifyTime   time.Duration
	// CorrectionTime is the cost of one corrective submovement.
	CorrectionTime time.Duration
}

// NewDistScroll returns the model with prototype geometry.
func NewDistScroll() *DistScroll {
	return &DistScroll{
		Profile:        hand.DefaultProfile(),
		NearCm:         4,
		FarCm:          30,
		GapFraction:    0.4,
		ReactionTime:   300 * time.Millisecond,
		VerifyTime:     250 * time.Millisecond,
		CorrectionTime: 450 * time.Millisecond,
	}
}

// Name implements Technique.
func (d *DistScroll) Name() string { return "distscroll" }

// Acquire implements Technique.
func (d *DistScroll) Acquire(t Trial, rng *sim.Rand) Result {
	entries := t.TotalEntries
	if entries < 2 {
		entries = 2
	}
	widthCm := (d.FarCm - d.NearCm) / float64(entries-1)
	amplitudeCm := float64(t.DistanceEntries) * widthCm
	// The selectable half-width is the island cover, not the full pitch.
	halfW := widthCm * (1 - d.GapFraction) / 2

	glove := t.Glove
	if glove.PrecisionPenalty <= 0 {
		glove = hand.BareHand()
	}
	sd := d.Profile.EndpointSD * glove.PrecisionPenalty

	sec := d.ReactionTime.Seconds() +
		fittsSeconds(d.Profile.FittsA, d.Profile.FittsB, amplitudeCm, widthCm)*glove.SpeedPenalty +
		d.VerifyTime.Seconds()

	res := Result{}
	p := missProb(sd, halfW)
	for c := 0; c < 6; c++ {
		if rng != nil && !rng.Bool(p) {
			break
		}
		if rng == nil {
			break
		}
		res.Corrections++
		sec += d.CorrectionTime.Seconds()
		// Corrective submovements are more accurate.
		p = missProb(0.4*sd, halfW)
	}
	if res.Corrections >= 6 {
		res.Err = true
	}
	// Thumb press: cheap and glove-tolerant (one large button). During
	// the ~300 ms press the arm must *hold* the island against tremor;
	// when islands shrink below the tremor excursion (sub-0.1 cm pitches,
	// e.g. 100 entries over 26 cm) the selection slips to a neighbour.
	tremorPeak := 1.7 * d.Profile.TremorRMS
	if rng != nil && rng.Bool(missProb(tremorPeak, halfW)) {
		res.Err = true
	}
	sec += 0.18
	res.MT = time.Duration(sec * float64(time.Second))
	return res
}

// String describes the configured geometry.
func (d *DistScroll) String() string {
	return fmt.Sprintf("distscroll[%g-%gcm gap=%.2f]", d.NearCm, d.FarCm, d.GapFraction)
}
