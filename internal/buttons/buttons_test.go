package buttons

import (
	"testing"
	"time"
)

func TestPressAfterDebounce(t *testing.T) {
	p := NewPad(PrototypeLayout())
	p.Set(TopRight, true, 0)
	// Too early: no event.
	if evs := p.Scan(5 * time.Millisecond); len(evs) != 0 {
		t.Fatalf("premature events: %v", evs)
	}
	evs := p.Scan(25 * time.Millisecond)
	if len(evs) != 1 || evs[0].Kind != Press || evs[0].Button != TopRight {
		t.Fatalf("events: %v", evs)
	}
	if !p.Pressed(TopRight) {
		t.Fatal("debounced state not pressed")
	}
}

func TestBounceSuppressed(t *testing.T) {
	p := NewPad(PrototypeLayout())
	// Contact bounce: rapid edges within the debounce window.
	p.Set(TopRight, true, 0)
	p.Set(TopRight, false, 2*time.Millisecond)
	p.Set(TopRight, true, 4*time.Millisecond)
	p.Set(TopRight, false, 6*time.Millisecond)
	if evs := p.Scan(10 * time.Millisecond); len(evs) != 0 {
		t.Fatalf("bounce produced events: %v", evs)
	}
	// The line settled released: still no event (state never stably changed).
	if evs := p.Scan(50 * time.Millisecond); len(evs) != 0 {
		t.Fatalf("settled-low produced events: %v", evs)
	}
}

func TestReleaseEvent(t *testing.T) {
	p := NewPad(PrototypeLayout())
	p.Set(LeftUpper, true, 0)
	p.Scan(25 * time.Millisecond)
	p.Set(LeftUpper, false, 30*time.Millisecond)
	evs := p.Scan(60 * time.Millisecond)
	if len(evs) != 1 || evs[0].Kind != Release {
		t.Fatalf("events: %v", evs)
	}
}

func TestUnknownButtonIgnored(t *testing.T) {
	p := NewPad(SingleLargeButtonLayout())
	p.Set(LeftLower, true, 0) // not in this layout
	if evs := p.Scan(time.Second); len(evs) != 0 {
		t.Fatalf("unknown button produced events: %v", evs)
	}
	if p.Has(LeftLower) {
		t.Fatal("layout should not have LeftLower")
	}
}

func TestDrainQueue(t *testing.T) {
	p := NewPad(PrototypeLayout())
	p.Tap(TopRight, 0)
	evs := p.Drain()
	if len(evs) != 2 { // press + release
		t.Fatalf("drained %d events, want 2", len(evs))
	}
	if len(p.Drain()) != 0 {
		t.Fatal("drain did not clear the queue")
	}
}

func TestTapHelperTimes(t *testing.T) {
	p := NewPad(PrototypeLayout())
	end := p.Tap(TopRight, time.Second)
	if end <= time.Second {
		t.Fatalf("tap end %v not after start", end)
	}
	if p.Pressed(TopRight) {
		t.Fatal("button still pressed after tap")
	}
}

func TestSetDebounce(t *testing.T) {
	p := NewPad(PrototypeLayout())
	p.SetDebounce(100 * time.Millisecond)
	p.Set(TopRight, true, 0)
	if evs := p.Scan(50 * time.Millisecond); len(evs) != 0 {
		t.Fatal("custom debounce ignored")
	}
	if evs := p.Scan(100 * time.Millisecond); len(evs) != 1 {
		t.Fatal("press not reported after custom debounce")
	}
	p.SetDebounce(-time.Second) // ignored
	if evs := p.Scan(200 * time.Millisecond); len(evs) != 0 {
		t.Fatalf("negative debounce changed behaviour: %v", evs)
	}
}

func TestLayouts(t *testing.T) {
	proto := PrototypeLayout()
	if len(proto.Buttons) != 3 || proto.Hand != RightHanded {
		t.Fatalf("prototype layout: %+v", proto)
	}
	slide := SlidableTwoButtonLayout()
	if len(slide.Buttons) != 2 || !slide.Slidable || slide.Hand != Ambidextrous {
		t.Fatalf("slidable layout: %+v", slide)
	}
	single := SingleLargeButtonLayout()
	if len(single.Buttons) != 1 {
		t.Fatalf("single layout: %+v", single)
	}
}

func TestIDString(t *testing.T) {
	if TopRight.String() != "top-right" {
		t.Fatalf("TopRight = %q", TopRight.String())
	}
	if ID(99).String() == "" {
		t.Fatal("unknown id should still format")
	}
}

func TestEventTimestamps(t *testing.T) {
	p := NewPad(PrototypeLayout())
	p.Set(TopRight, true, time.Second)
	evs := p.Scan(time.Second + 25*time.Millisecond)
	if len(evs) != 1 {
		t.Fatalf("events: %v", evs)
	}
	if evs[0].At != time.Second+25*time.Millisecond {
		t.Fatalf("event time %v", evs[0].At)
	}
}
