// Package buttons models the push buttons of the DistScroll prototype:
// "two of them situated in the middle area of the device on the left side
// and one button situated near the top on the right side" (paper Section
// 4.5), debounced in firmware, used to select menu entries.
//
// Section 6 of the paper discusses alternative layouts — a two-button
// design with buttons slidable along the sides, and a single large button
// usable with either hand — which Layout captures.
package buttons

import (
	"fmt"
	"time"
)

// ID identifies a button position on the case.
type ID int

// Button positions of the three-button prototype.
const (
	TopRight ID = iota + 1 // thumb button: "most conveniently operated with the thumb"
	LeftUpper
	LeftLower
)

// String returns the position name.
func (id ID) String() string {
	switch id {
	case TopRight:
		return "top-right"
	case LeftUpper:
		return "left-upper"
	case LeftLower:
		return "left-lower"
	default:
		return fmt.Sprintf("button(%d)", int(id))
	}
}

// Handedness selects which hand the layout is optimised for.
type Handedness int

// Hand options.
const (
	RightHanded Handedness = iota + 1
	LeftHanded
	Ambidextrous
)

// Layout describes a button arrangement under study.
type Layout struct {
	Name     string
	Buttons  []ID
	Hand     Handedness
	Slidable bool // buttons can slide along the case sides (Section 6)
}

// PrototypeLayout is the three-button right-handed layout of the built
// prototype.
func PrototypeLayout() Layout {
	return Layout{
		Name:    "prototype-3button",
		Buttons: []ID{TopRight, LeftUpper, LeftLower},
		Hand:    RightHanded,
	}
}

// SlidableTwoButtonLayout is the favoured future design: "a two button
// design with the buttons slidable along the sides of the device".
func SlidableTwoButtonLayout() Layout {
	return Layout{
		Name:     "slidable-2button",
		Buttons:  []ID{TopRight, LeftUpper},
		Hand:     Ambidextrous,
		Slidable: true,
	}
}

// SingleLargeButtonLayout is the alternative "one large button that can
// easily be pressed independently of which hand is used".
func SingleLargeButtonLayout() Layout {
	return Layout{
		Name:    "single-large",
		Buttons: []ID{TopRight},
		Hand:    Ambidextrous,
	}
}

// EventKind distinguishes press and release edges.
type EventKind int

// Edge kinds.
const (
	Press EventKind = iota + 1
	Release
)

// Event is a debounced button edge.
type Event struct {
	Button ID
	Kind   EventKind
	At     time.Duration
}

// DefaultDebounce is the firmware debounce interval.
const DefaultDebounce = 20 * time.Millisecond

// Pad is a set of debounced buttons scanned by the firmware.
type Pad struct {
	layout   Layout
	debounce time.Duration

	raw      map[ID]bool          // electrical level set by the environment
	stable   map[ID]bool          // debounced level
	lastEdge map[ID]time.Duration // time of last raw edge
	queue    []Event
}

// NewPad returns a pad for the given layout with the default debounce.
func NewPad(layout Layout) *Pad {
	p := &Pad{
		layout:   layout,
		debounce: DefaultDebounce,
		raw:      make(map[ID]bool, len(layout.Buttons)),
		stable:   make(map[ID]bool, len(layout.Buttons)),
		lastEdge: make(map[ID]time.Duration, len(layout.Buttons)),
	}
	return p
}

// SetDebounce overrides the debounce interval.
func (p *Pad) SetDebounce(d time.Duration) {
	if d >= 0 {
		p.debounce = d
	}
}

// Layout returns the pad layout.
func (p *Pad) Layout() Layout { return p.layout }

// Has reports whether the layout contains the button.
func (p *Pad) Has(id ID) bool {
	for _, b := range p.layout.Buttons {
		if b == id {
			return true
		}
	}
	return false
}

// Set drives the electrical level of a button (true = pressed) at the given
// time. Unknown buttons are ignored, matching a wire to nowhere.
func (p *Pad) Set(id ID, pressed bool, at time.Duration) {
	if !p.Has(id) {
		return
	}
	if p.raw[id] != pressed {
		p.raw[id] = pressed
		p.lastEdge[id] = at
	}
}

// Scan performs a firmware scan at the given time: any raw level that has
// been stable for the debounce interval and differs from the debounced
// state produces an event.
func (p *Pad) Scan(at time.Duration) []Event {
	var events []Event
	for _, id := range p.layout.Buttons {
		raw := p.raw[id]
		if raw == p.stable[id] {
			continue
		}
		if at-p.lastEdge[id] < p.debounce {
			continue
		}
		p.stable[id] = raw
		kind := Release
		if raw {
			kind = Press
		}
		events = append(events, Event{Button: id, Kind: kind, At: at})
	}
	p.queue = append(p.queue, events...)
	return events
}

// Pressed reports the debounced state of a button.
func (p *Pad) Pressed(id ID) bool { return p.stable[id] }

// Drain returns and clears all queued events.
func (p *Pad) Drain() []Event {
	q := p.queue
	p.queue = nil
	return q
}

// Tap is a test/scenario helper: it presses and releases a button with
// edges spaced so both pass debouncing, returning the time after release
// settles.
func (p *Pad) Tap(id ID, at time.Duration) time.Duration {
	p.Set(id, true, at)
	p.Scan(at + p.debounce)
	release := at + p.debounce + 30*time.Millisecond
	p.Set(id, false, release)
	end := release + p.debounce
	p.Scan(end)
	return end
}
