package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/sim"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// ScaleConfig parameterises a struct-of-arrays scale run: the path that
// takes the fleet from tens of thousands of full *Device graphs to a
// million packed slab devices (see core.StateSlab and DESIGN.md §11).
type ScaleConfig struct {
	// Devices is the fleet size.
	Devices int
	// Seed derives every device stream; results are a pure function of
	// (Seed, Devices), independent of Workers.
	Seed uint64
	// Workers is the number of stripes the slab is split into, one worker
	// goroutine per stripe, each driving its own timing-wheel scheduler.
	// <= 0 takes GOMAXPROCS.
	Workers int
	// Duration is the virtual time each device simulates (default 10 s).
	Duration time.Duration
	// SamplePeriod is the firmware tick (default 40 ms, the prototype's
	// 25 Hz loop).
	SamplePeriod time.Duration
	// Entries sizes the mapped menu (default 12, the flat fleet menu).
	Entries int
	// LossProb is the modelled per-frame loss probability.
	LossProb float64

	// Metrics, when non-nil, turns on the live ops plane for this run:
	// each worker owns a per-stripe telemetry shard (plain counters and a
	// LocalHistogram — no atomics on the tick path, still 0 allocs/op)
	// and periodically publishes it; a Collector registered here merges
	// the shards on every Snapshot into the canonical fw_*/rf_*/arq_*/
	// hub_* names plus the sim_* engine gauges. The merged counters and
	// histograms are deterministic and worker-count independent; the
	// gauges describe the machine (wall-clock rates, wheel occupancy).
	// The collector stays registered after the run ends, so a post-run
	// scrape reads the final totals.
	Metrics *telemetry.Registry
	// ReportEvery, with OnReport, emits a merged snapshot at this
	// wall-clock interval during the run (plus one final snapshot).
	ReportEvery time.Duration
	// OnReport receives each periodic snapshot. Ignored without Metrics.
	OnReport func(*telemetry.Snapshot)

	// Emit, when set, is called once per worker before its stripe starts
	// and returns the stripe's frame sink: every frame the slab emits is
	// handed to the sink on the worker's own goroutine, the sink is
	// flushed once per sweep, and closed when the stripe completes. This
	// is how a scale run exports its frame stream off-box — the hubnet
	// client's FrameSender satisfies the contract over one TCP
	// connection per worker. Emission never consumes randomness, so a
	// run's results are bit-identical with or without it.
	Emit func(worker, lo, hi int) (*StripeSink, error)
}

// StripeSink receives one stripe's emitted frames. Emit must not be nil;
// Flush and Close may be.
type StripeSink struct {
	// Emit receives each frame the stripe's devices send.
	Emit core.FrameEmitter
	// Flush runs once per sweep (one firmware cycle across the stripe) —
	// the batching boundary for buffered network senders.
	Flush func() error
	// Close runs when the stripe has simulated its full duration.
	Close func() error
}

// ScaleResult is the outcome of one scale run.
type ScaleResult struct {
	Devices int
	Workers int
	// Ticks is the total number of firmware cycles executed.
	Ticks uint64
	// Frames/Delivered/Lost/Retransmits/Switches aggregate the slab's wire
	// accounting; MaxWindow is the widest ARQ window any device reached.
	Frames      uint64
	Delivered   uint64
	Lost        uint64
	Retransmits uint64
	Switches    uint64
	MaxWindow   uint16
	// VirtualSeconds is the aggregate simulated time (Devices × Duration);
	// WallSeconds the wall-clock cost; RealTimeFactor their ratio — above
	// 1.0 the box simulates the whole fleet faster than real time.
	VirtualSeconds float64
	WallSeconds    float64
	RealTimeFactor float64
	// TicksPerSecond is the firmware-cycle throughput against wall time.
	TicksPerSecond float64
}

// scaleShard is one worker's telemetry stripe. The owner-side fields are
// touched on the tick path by exactly one goroutine with no
// synchronisation; publish copies them under mu at a coarse cadence
// (~1 s of virtual time), and the registry collector reads only the
// published copies — so a mid-run scrape never races the hot loop and
// never waits on it.
type scaleShard struct {
	lo, hi int

	// Owner-only: written by the stripe's worker, never read elsewhere.
	lat    *telemetry.LocalHistogram
	ticks  uint64
	sweeps uint64

	mu         sync.Mutex
	pubTicks   uint64
	pubTotals  core.SlabTotals
	pubLat     telemetry.HistogramSnapshot
	pubVirtual time.Duration
	pubWheel   sim.WheelStats
	pubElapsed float64
}

// publish copies the shard's live state into its published fields. Runs on
// the worker goroutine between sweeps; cost is one stripe walk for totals
// plus a histogram copy, amortised to noise by the coarse cadence.
func (sh *scaleShard) publish(slab *core.StateSlab, sched *sim.Scheduler, at time.Duration, start time.Time) {
	totals := slab.Totals(sh.lo, sh.hi)
	wheel := sched.Stats()
	elapsed := time.Since(start).Seconds()
	sh.mu.Lock()
	sh.pubTicks = sh.ticks
	sh.pubTotals = totals
	sh.lat.SnapshotInto(&sh.pubLat)
	sh.pubVirtual = at
	sh.pubWheel = wheel
	sh.pubElapsed = elapsed
	sh.mu.Unlock()
}

// scaleCollector merges published shard state into a snapshot. Shards are
// visited in stripe order and every merged quantity is either an integer
// sum or a float64 sum of exactly-representable values (see
// core.StateSlab's latency model), so the merged counters and histograms
// do not depend on the worker count.
type scaleCollector struct {
	cfg     ScaleConfig
	workers int
	shards  []*scaleShard
}

func (sc *scaleCollector) collect(s *telemetry.Snapshot) {
	var ticks uint64
	var totals core.SlabTotals
	var wheel sim.WheelStats
	minVirtual := time.Duration(-1)
	var maxElapsed float64
	for _, sh := range sc.shards {
		sh.mu.Lock()
		ticks += sh.pubTicks
		totals.Sent += sh.pubTotals.Sent
		totals.Delivered += sh.pubTotals.Delivered
		totals.Lost += sh.pubTotals.Lost
		totals.Retransmits += sh.pubTotals.Retransmits
		totals.Switches += sh.pubTotals.Switches
		totals.Outstanding += sh.pubTotals.Outstanding
		if sh.pubTotals.MaxWindow > totals.MaxWindow {
			totals.MaxWindow = sh.pubTotals.MaxWindow
		}
		if len(sh.pubLat.Bounds) > 0 {
			s.MergeHistogram(telemetry.MetricHubE2ELatency, sh.pubLat)
		}
		if minVirtual < 0 || sh.pubVirtual < minVirtual {
			minVirtual = sh.pubVirtual
		}
		if sh.pubElapsed > maxElapsed {
			maxElapsed = sh.pubElapsed
		}
		wheel.Pending += sh.pubWheel.Pending
		wheel.SlotsOccupied += sh.pubWheel.SlotsOccupied
		wheel.Overflow += sh.pubWheel.Overflow
		sh.mu.Unlock()
	}
	if minVirtual < 0 {
		minVirtual = 0
	}

	s.AddCounter(telemetry.MetricFwCycles, ticks)
	totals.Contribute(s)

	s.SetGauge(telemetry.MetricSimDevices, float64(sc.cfg.Devices))
	s.SetGauge(telemetry.MetricSimWorkers, float64(sc.workers))
	// The slowest stripe's virtual clock: the fleet as a whole has
	// simulated at least this far.
	s.SetGauge(telemetry.MetricSimVirtualSeconds, minVirtual.Seconds())
	s.SetGauge(telemetry.MetricSimFramesInFlight, float64(totals.Outstanding))
	s.SetGauge(telemetry.MetricSimWheelPending, float64(wheel.Pending))
	s.SetGauge(telemetry.MetricSimWheelOccupied, float64(wheel.SlotsOccupied))
	s.SetGauge(telemetry.MetricSimWheelOverflow, float64(wheel.Overflow))
	if maxElapsed > 0 {
		tps := float64(ticks) / maxElapsed
		s.SetGauge(telemetry.MetricSimTicksPerSec, tps)
		s.SetGauge(telemetry.MetricSimDevSecPerSec, tps*sc.cfg.SamplePeriod.Seconds())
	}
}

// RunScale simulates a packed slab fleet: Workers stripes of contiguous
// devices, each stripe driven by its own virtual clock and timing-wheel
// scheduler whose single periodic event advances the whole stripe through
// one firmware cycle per wheel turn. Construction is batched (one slab,
// no per-device allocation) and the tick path allocates nothing, which is
// what lets one box push a million devices faster than real time.
//
// With cfg.Metrics set the run is live-observable: scraping the registry
// mid-run (see internal/ops) reads each stripe's most recently published
// telemetry without touching the hot loop.
func RunScale(cfg ScaleConfig) (ScaleResult, error) {
	if cfg.Devices < 1 {
		return ScaleResult{}, fmt.Errorf("fleet: need at least 1 device, got %d", cfg.Devices)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 40 * time.Millisecond
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Devices {
		workers = cfg.Devices
	}

	slab, err := core.NewStateSlab(core.SlabConfig{
		Devices:  cfg.Devices,
		Seed:     cfg.Seed,
		Entries:  cfg.Entries,
		LossProb: cfg.LossProb,
	})
	if err != nil {
		return ScaleResult{}, err
	}

	res := ScaleResult{Devices: cfg.Devices, Workers: workers}
	ticksPerDevice := uint64(cfg.Duration / cfg.SamplePeriod)
	stripe := (cfg.Devices + workers - 1) / workers

	// publishSweeps spaces shard publishes about one second of virtual
	// time apart: frequent enough for a 1 Hz scrape to see motion, coarse
	// enough that the copy cost disappears into the stripe walk.
	publishSweeps := uint64(time.Second / cfg.SamplePeriod)
	if publishSweeps < 1 {
		publishSweeps = 1
	}

	var shards []*scaleShard
	var reporter *telemetry.Reporter
	observed := cfg.Metrics != nil
	if observed {
		shards = make([]*scaleShard, workers)
		for w := range shards {
			lo := w * stripe
			hi := lo + stripe
			if hi > cfg.Devices {
				hi = cfg.Devices
			}
			shards[w] = &scaleShard{
				lo:  lo,
				hi:  hi,
				lat: telemetry.NewLocalHistogram(telemetry.LatencyBucketsMs),
			}
		}
		cfg.Metrics.RegisterCollector((&scaleCollector{cfg: cfg, workers: workers, shards: shards}).collect)
		if cfg.OnReport != nil {
			reporter = telemetry.StartReporter(cfg.Metrics, cfg.ReportEvery, cfg.OnReport)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := w * stripe
		hi := lo + stripe
		if hi > cfg.Devices {
			hi = cfg.Devices
		}
		go func(w, lo, hi int) {
			defer wg.Done()
			// One wheel turn = one stripe sweep: the scheduler carries a
			// single periodic event, so its hot path stays allocation-free
			// and the per-tick cost is the linear walk over the stripe.
			clock := sim.NewClock(0)
			sched := sim.NewScheduler(clock)
			var sink *StripeSink
			if cfg.Emit != nil {
				var err error
				if sink, err = cfg.Emit(w, lo, hi); err != nil {
					errs[w] = fmt.Errorf("emit sink for stripe %d: %w", w, err)
					return
				}
			}
			// flush batches the sweep's emitted frames out; the first
			// sink error is kept, emission after it is the sink's problem
			// (network senders go dark rather than wedging the tick loop).
			var sinkErr error
			flush := func() {
				if sink != nil && sink.Flush != nil {
					if err := sink.Flush(); err != nil && sinkErr == nil {
						sinkErr = err
					}
				}
			}
			if observed {
				sh := shards[w]
				sched.Every(cfg.SamplePeriod, func(at time.Duration) {
					if sink != nil {
						slab.TickStripeObservedEmit(lo, hi, at, sh.lat, sink.Emit)
						flush()
					} else {
						slab.TickStripeObserved(lo, hi, at, sh.lat)
					}
					sh.ticks += uint64(hi - lo)
					sh.sweeps++
					if sh.sweeps%publishSweeps == 0 {
						sh.publish(slab, sched, at, start)
					}
				})
				errs[w] = sched.Run(cfg.Duration)
				// Final publish so post-run scrapes read the complete
				// stripe, whatever the cadence remainder was.
				sh.publish(slab, sched, cfg.Duration, start)
			} else {
				sched.Every(cfg.SamplePeriod, func(at time.Duration) {
					if sink != nil {
						slab.TickStripeEmit(lo, hi, at, sink.Emit)
						flush()
					} else {
						slab.TickStripe(lo, hi, at)
					}
				})
				errs[w] = sched.Run(cfg.Duration)
			}
			if sink != nil && sink.Close != nil {
				if err := sink.Close(); err != nil && sinkErr == nil {
					sinkErr = err
				}
			}
			if errs[w] == nil && sinkErr != nil {
				errs[w] = fmt.Errorf("emit sink for stripe %d: %w", w, sinkErr)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	reporter.Stop()
	for _, err := range errs {
		if err != nil {
			return res, fmt.Errorf("fleet: scale stripe: %w", err)
		}
	}

	t := slab.Totals(0, slab.Len())
	res.Frames = t.Sent
	res.Delivered = t.Delivered
	res.Lost = t.Lost
	res.Retransmits = t.Retransmits
	res.Switches = t.Switches
	res.MaxWindow = t.MaxWindow
	res.Ticks = ticksPerDevice * uint64(cfg.Devices)
	res.VirtualSeconds = cfg.Duration.Seconds() * float64(cfg.Devices)
	if res.WallSeconds > 0 {
		res.RealTimeFactor = res.VirtualSeconds / res.WallSeconds
		res.TicksPerSecond = float64(res.Ticks) / res.WallSeconds
	}
	return res, nil
}
