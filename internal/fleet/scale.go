package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/sim"
)

// ScaleConfig parameterises a struct-of-arrays scale run: the path that
// takes the fleet from tens of thousands of full *Device graphs to a
// million packed slab devices (see core.StateSlab and DESIGN.md §11).
type ScaleConfig struct {
	// Devices is the fleet size.
	Devices int
	// Seed derives every device stream; results are a pure function of
	// (Seed, Devices), independent of Workers.
	Seed uint64
	// Workers is the number of stripes the slab is split into, one worker
	// goroutine per stripe, each driving its own timing-wheel scheduler.
	// <= 0 takes GOMAXPROCS.
	Workers int
	// Duration is the virtual time each device simulates (default 10 s).
	Duration time.Duration
	// SamplePeriod is the firmware tick (default 40 ms, the prototype's
	// 25 Hz loop).
	SamplePeriod time.Duration
	// Entries sizes the mapped menu (default 12, the flat fleet menu).
	Entries int
	// LossProb is the modelled per-frame loss probability.
	LossProb float64
}

// ScaleResult is the outcome of one scale run.
type ScaleResult struct {
	Devices int
	Workers int
	// Ticks is the total number of firmware cycles executed.
	Ticks uint64
	// Frames/Delivered/Lost/Retransmits/Switches aggregate the slab's wire
	// accounting; MaxWindow is the widest ARQ window any device reached.
	Frames      uint64
	Delivered   uint64
	Lost        uint64
	Retransmits uint64
	Switches    uint64
	MaxWindow   uint16
	// VirtualSeconds is the aggregate simulated time (Devices × Duration);
	// WallSeconds the wall-clock cost; RealTimeFactor their ratio — above
	// 1.0 the box simulates the whole fleet faster than real time.
	VirtualSeconds float64
	WallSeconds    float64
	RealTimeFactor float64
	// TicksPerSecond is the firmware-cycle throughput against wall time.
	TicksPerSecond float64
}

// RunScale simulates a packed slab fleet: Workers stripes of contiguous
// devices, each stripe driven by its own virtual clock and timing-wheel
// scheduler whose single periodic event advances the whole stripe through
// one firmware cycle per wheel turn. Construction is batched (one slab,
// no per-device allocation) and the tick path allocates nothing, which is
// what lets one box push a million devices faster than real time.
func RunScale(cfg ScaleConfig) (ScaleResult, error) {
	if cfg.Devices < 1 {
		return ScaleResult{}, fmt.Errorf("fleet: need at least 1 device, got %d", cfg.Devices)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 40 * time.Millisecond
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Devices {
		workers = cfg.Devices
	}

	slab, err := core.NewStateSlab(core.SlabConfig{
		Devices:  cfg.Devices,
		Seed:     cfg.Seed,
		Entries:  cfg.Entries,
		LossProb: cfg.LossProb,
	})
	if err != nil {
		return ScaleResult{}, err
	}

	res := ScaleResult{Devices: cfg.Devices, Workers: workers}
	ticksPerDevice := uint64(cfg.Duration / cfg.SamplePeriod)

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	stripe := (cfg.Devices + workers - 1) / workers
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := w * stripe
		hi := lo + stripe
		if hi > cfg.Devices {
			hi = cfg.Devices
		}
		go func(w, lo, hi int) {
			defer wg.Done()
			// One wheel turn = one stripe sweep: the scheduler carries a
			// single periodic event, so its hot path stays allocation-free
			// and the per-tick cost is the linear walk over the stripe.
			clock := sim.NewClock(0)
			sched := sim.NewScheduler(clock)
			sched.Every(cfg.SamplePeriod, func(at time.Duration) {
				slab.TickStripe(lo, hi, at)
			})
			errs[w] = sched.Run(cfg.Duration)
		}(w, lo, hi)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return res, fmt.Errorf("fleet: scale stripe: %w", err)
		}
	}

	t := slab.Totals(0, slab.Len())
	res.Frames = t.Sent
	res.Delivered = t.Delivered
	res.Lost = t.Lost
	res.Retransmits = t.Retransmits
	res.Switches = t.Switches
	res.MaxWindow = t.MaxWindow
	res.Ticks = ticksPerDevice * uint64(cfg.Devices)
	res.VirtualSeconds = cfg.Duration.Seconds() * float64(cfg.Devices)
	if res.WallSeconds > 0 {
		res.RealTimeFactor = res.VirtualSeconds / res.WallSeconds
		res.TicksPerSecond = float64(res.Ticks) / res.WallSeconds
	}
	return res, nil
}
