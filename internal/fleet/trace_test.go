package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/tracing"
)

// TestFleetTracingCompleteChains runs a lossy reliable fleet with tracing
// and checks the core causal-trace contracts:
//
//  1. every decoded frame left exactly one hub.demux span event,
//  2. every admitted frame's chain is complete — its firmware.sample birth
//     event exists in the same recorder,
//  3. the Perfetto export is valid JSON whose host-side slice count equals
//     the demuxed-frame count.
func TestFleetTracingCompleteChains(t *testing.T) {
	tracer := tracing.New(tracing.Config{Capacity: 1 << 15})
	cfg := Config{Devices: 8, Seed: 21, Reliable: true, Tracing: tracer,
		Core: core.DefaultConfig()}
	cfg.Core.Link.LossProb = 0.05
	cfg.Core.Link.BurstLossProb = 0.01
	cfg.Core.Link.BurstLossLen = 3
	r, results := runFleet(t, cfg)

	totalDecoded := uint64(0)
	for _, res := range results {
		totalDecoded += res.Host.Decoded
	}

	recs := tracer.Recorders()
	if len(recs) != 8 {
		t.Fatalf("recorders = %d, want 8 (one per device)", len(recs))
	}
	var demux uint64
	for i, rec := range recs {
		samples := map[uint16]bool{}
		var devDemux, admits int
		for _, e := range rec.Events() {
			switch e.Hop() {
			case tracing.HopFirmwareSample:
				samples[e.Seq()] = true
			case tracing.HopHubDemux:
				devDemux++
				out, _ := tracing.UnpackDemux(e.Arg2())
				if out == tracing.OutcomeAdmit {
					admits++
					if !samples[e.Seq()] {
						t.Errorf("device %d: admitted seq %d has no firmware.sample birth event",
							r.ID(i), e.Seq())
					}
				}
			}
		}
		if devDemux == 0 || admits == 0 {
			t.Fatalf("device %d: demux=%d admits=%d — tracing not threaded", r.ID(i), devDemux, admits)
		}
		demux += uint64(devDemux)
	}
	if demux != totalDecoded {
		t.Fatalf("hub.demux span events = %d, decoded frames = %d — every decoded frame must trace exactly once",
			demux, totalDecoded)
	}

	var buf bytes.Buffer
	if err := tracer.WritePerfetto(&buf, map[string]any{"decodedFrames": totalDecoded}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Perfetto export is not valid JSON: %v", err)
	}
	slices := uint64(0)
	for _, e := range doc.TraceEvents {
		if ph, _ := e["ph"].(string); ph == "X" {
			slices++
		}
	}
	if slices != demux {
		t.Fatalf("Perfetto X slices = %d, demux events = %d", slices, demux)
	}
}

// TestFleetTracingDeterministic checks tracing does not perturb the
// simulation: the same seed with and without a tracer produces identical
// fleet results.
func TestFleetTracingDeterministic(t *testing.T) {
	base := Config{Devices: 4, Seed: 5, Reliable: true, Core: core.DefaultConfig()}
	base.Core.Link.LossProb = 0.05
	_, plain := runFleet(t, base)

	traced := base
	traced.Tracing = tracing.New(tracing.Config{Capacity: 1 << 14})
	_, withTrace := runFleet(t, traced)

	for i := range plain {
		if plain[i].Host != withTrace[i].Host || plain[i].Link != withTrace[i].Link {
			t.Fatalf("device %d diverged under tracing:\nplain %+v\ntraced %+v",
				plain[i].Device, plain[i], withTrace[i])
		}
	}
}

// TestFleetRetryExhaustionDump forces retry-budget exhaustion on a near-
// dead channel and checks the flight recorder's automatic dump names the
// abandoned seq range — the end-to-end post-mortem acceptance path.
func TestFleetRetryExhaustionDump(t *testing.T) {
	var dump strings.Builder
	tracer := tracing.New(tracing.Config{Capacity: 512, Bounded: true, DumpTo: &dump})
	cfg := Config{Devices: 2, Seed: 3, Reliable: true, Tracing: tracer,
		ARQ: rf.ARQConfig{MaxRetries: 2, RTO: 20 * time.Millisecond, MaxRTO: 50 * time.Millisecond},
		Core: core.DefaultConfig()}
	cfg.Core.Link.LossProb = 0.9
	_, results := runFleet(t, cfg)

	drops := uint64(0)
	for _, res := range results {
		drops += res.ARQ.RetryDrops
	}
	if drops == 0 {
		t.Fatal("90% loss with MaxRetries=2 produced no retry drops")
	}
	out := dump.String()
	if !strings.Contains(out, "retry budget exhausted: seqs ") ||
		!strings.Contains(out, "abandoned") {
		t.Fatalf("flight-recorder dump does not name the abandoned seq range:\n%.2000s", out)
	}
}
