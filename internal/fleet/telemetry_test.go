package fleet

import (
	"sync"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/telemetry"
)

// TestFleetTelemetrySnapshot runs an instrumented fleet and checks the
// acceptance contract: per-device frame counters are present and the
// aggregate end-to-end latency histogram holds exactly one observation per
// delivered frame.
func TestFleetTelemetrySnapshot(t *testing.T) {
	reg := telemetry.New()
	var (
		mu      sync.Mutex
		reports int
	)
	r, results := runFleet(t, Config{
		Devices:     6,
		Seed:        99,
		Workers:     3,
		Metrics:     reg,
		ReportEvery: time.Millisecond,
		OnReport: func(*telemetry.Snapshot) {
			mu.Lock()
			reports++
			mu.Unlock()
		},
	})
	totals := r.Total(results)

	mu.Lock()
	if reports == 0 {
		t.Fatal("reporter never emitted")
	}
	mu.Unlock()

	s := reg.Snapshot()
	if got := s.Counters[telemetry.MetricRFSent]; got != totals.Sent {
		t.Fatalf("rf sent %d != totals %d", got, totals.Sent)
	}
	if got := s.Counters[telemetry.MetricRFDelivered]; got != totals.Delivered {
		t.Fatalf("rf delivered %d != totals %d", got, totals.Delivered)
	}
	if got := s.Counters[telemetry.MetricHubDecoded]; got != totals.Decoded {
		t.Fatalf("hub decoded %d != totals %d", got, totals.Decoded)
	}
	if got := s.Counters[telemetry.MetricFwCycles]; got == 0 {
		t.Fatal("firmware cycles not collected")
	}
	if got := s.Gauges[telemetry.MetricHubDevices]; got != 6 {
		t.Fatalf("devices gauge %g, want 6", got)
	}

	lat, ok := s.Histogram(telemetry.MetricHubE2ELatency)
	if !ok {
		t.Fatal("no aggregate latency histogram")
	}
	if lat.Count != totals.Delivered {
		t.Fatalf("latency observations %d != delivered frames %d", lat.Count, totals.Delivered)
	}
	// Every device contributed its own series, and they sum to the
	// aggregate.
	var perDevice uint64
	for i := 0; i < r.Len(); i++ {
		h, ok := s.Histogram(telemetry.DeviceLatencyName(r.ID(i)))
		if !ok {
			t.Fatalf("device %d has no latency series", r.ID(i))
		}
		perDevice += h.Count
	}
	if perDevice != lat.Count {
		t.Fatalf("per-device observations %d != aggregate %d", perDevice, lat.Count)
	}
}

// TestFleetLossAccountingPerDevice pins the drained-channel invariant on
// every device of a lossy fleet: sent == delivered + lost + corrupted.
func TestFleetLossAccountingPerDevice(t *testing.T) {
	_, results := runFleet(t, Config{Devices: 8, Seed: 3, Workers: 4})
	for _, res := range results {
		s := res.Link
		if s.Sent != s.Delivered+s.Lost+s.Corrupted {
			t.Fatalf("device %d: sent %d != delivered %d + lost %d + corrupted %d",
				res.Device, s.Sent, s.Delivered, s.Lost, s.Corrupted)
		}
		if s.Delivered != res.Host.Decoded {
			t.Fatalf("device %d: delivered %d != decoded %d", res.Device, s.Delivered, res.Host.Decoded)
		}
	}
}

// TestFleetMetricsPreserveDeterminism re-runs the same seed with and
// without a registry: the event streams must be identical.
func TestFleetMetricsPreserveDeterminism(t *testing.T) {
	cfg := Config{Devices: 4, Seed: 42, Workers: 2}
	run := func(reg *telemetry.Registry) []string {
		c := cfg
		c.Metrics = reg
		r, _ := runFleet(t, c)
		keys := make([]string, r.Len())
		for i := range keys {
			keys[i] = streamKey(r.Session(i).Events())
		}
		return keys
	}
	plain := run(nil)
	instrumented := run(telemetry.New())
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("device %d event stream differs with metrics on", i+1)
		}
	}
}
