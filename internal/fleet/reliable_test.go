package fleet

import (
	"testing"

	"github.com/hcilab/distscroll/internal/core"
)

// stressCore returns a device template with a hostile channel: 5%
// independent loss, shadowing bursts, and a lossy ack back-channel.
func stressCore() core.Config {
	c := core.DefaultConfig()
	c.Link.LossProb = 0.05
	c.Link.BurstLossProb = 0.01
	c.Link.BurstLossLen = 5
	c.Link.AckLossProb = 0.05
	return c
}

// TestFleetReliableSoak is the lossy soak: a 32-device fleet on the stress
// channel with ARQ enabled must drain with ZERO sequence gaps at every hub
// session — reliability turns a 5%-loss channel into a gapless stream — and
// must visibly have worked for it (losses occurred, retransmits repaired
// them). CI runs this with the race detector.
func TestFleetReliableSoak(t *testing.T) {
	r, err := New(Config{Devices: 32, Seed: 99, Core: stressCore(), Reliable: true})
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("device %d: %v", res.Device, res.Err)
		}
		if res.Host.MissedSeq != 0 {
			t.Errorf("device %d: %d sequence gaps under ARQ", res.Device, res.Host.MissedSeq)
		}
		if res.Host.Events == 0 {
			t.Errorf("device %d: no events", res.Device)
		}
	}
	tot := r.Total(results)
	if tot.MissedSeq != 0 {
		t.Fatalf("fleet lost %d sequence numbers under ARQ", tot.MissedSeq)
	}
	if tot.Lost == 0 {
		t.Fatal("stress channel lost nothing — the soak exercised no repair")
	}
	if tot.Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
	if tot.AcksSent == 0 || tot.AcksLost == 0 {
		t.Fatalf("ack channel not exercised: sent %d lost %d", tot.AcksSent, tot.AcksLost)
	}
	// Every transmission is still accounted exactly once at the link level.
	if tot.Sent != tot.Delivered+tot.Lost+tot.Corrupted {
		t.Fatalf("accounting: sent %d != delivered %d + lost %d + corrupted %d",
			tot.Sent, tot.Delivered, tot.Lost, tot.Corrupted)
	}
}

// TestFleetReliableDeterministic re-runs a small reliable fleet and demands
// bit-identical accounting: the ARQ timers, ack losses and retransmissions
// all draw from per-device seeded streams.
func TestFleetReliableDeterministic(t *testing.T) {
	run := func() []Result {
		r, err := New(Config{Devices: 4, Seed: 7, Core: stressCore(), Reliable: true})
		if err != nil {
			t.Fatal(err)
		}
		results, err := r.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Link != b[i].Link || a[i].ARQ != b[i].ARQ || a[i].Acks != b[i].Acks || a[i].Host != b[i].Host {
			t.Fatalf("device %d diverged:\n  a: link %+v arq %+v\n  b: link %+v arq %+v",
				a[i].Device, a[i].Link, a[i].ARQ, b[i].Link, b[i].ARQ)
		}
	}
}

// TestFleetUnreliableBaselineLoses pins the contrast: the same stress
// channel without ARQ must show sequence gaps — otherwise the soak above
// proves nothing.
func TestFleetUnreliableBaselineLoses(t *testing.T) {
	r, err := New(Config{Devices: 8, Seed: 99, Core: stressCore()})
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	tot := r.Total(results)
	if tot.MissedSeq == 0 {
		t.Fatal("unreliable fleet on a 5%-loss channel lost nothing — stress config ineffective")
	}
	if tot.Retransmits != 0 || tot.AcksSent != 0 {
		t.Fatalf("reliability counters moved without Reliable: %+v", tot)
	}
}

// TestFleetReliableDrainCompletes checks the drain loop actually empties
// every sender: by the time RunAll returns, no device may have frames still
// outstanding.
func TestFleetReliableDrainCompletes(t *testing.T) {
	r, err := New(Config{Devices: 6, Seed: 3, Core: stressCore(), Reliable: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		dev := r.Device(i)
		if dev.ARQ == nil {
			t.Fatalf("device %d assembled without ARQ", r.ID(i))
		}
		if n := dev.ARQ.Outstanding(); n != 0 {
			t.Errorf("device %d: %d frames still outstanding after drain", r.ID(i), n)
		}
	}
}
