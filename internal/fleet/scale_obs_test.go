package fleet

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/telemetry"
)

// TestScaleMergedMetricsWorkerCountIndependent pins the shard-merge
// contract of the live ops plane: the merged counters and histograms of a
// scale run are a pure function of (Seed, Devices), no matter how many
// stripes the slab was split into. Gauges are excluded — they describe
// wall-clock rates and scheduler occupancy, not the model.
func TestScaleMergedMetricsWorkerCountIndependent(t *testing.T) {
	base := ScaleConfig{Devices: 300, Seed: 7, Duration: 2 * time.Second, LossProb: 0.1}
	var refCounters map[string]uint64
	var refHists map[string]telemetry.HistogramSnapshot
	for i, workers := range []int{1, 4, 16} {
		cfg := base
		cfg.Workers = workers
		cfg.Metrics = telemetry.New()
		if _, err := RunScale(cfg); err != nil {
			t.Fatal(err)
		}
		snap := cfg.Metrics.Snapshot()
		if i == 0 {
			refCounters = snap.Counters
			refHists = snap.Histograms
			if snap.Counters[telemetry.MetricFwCycles] == 0 {
				t.Fatal("merged snapshot has no firmware cycles")
			}
			if h, ok := snap.Histogram(telemetry.MetricHubE2ELatency); !ok || h.Count == 0 {
				t.Fatal("merged snapshot has no e2e latency histogram")
			}
			continue
		}
		if !reflect.DeepEqual(snap.Counters, refCounters) {
			t.Fatalf("merged counters depend on worker count (%d workers):\n%v\nvs\n%v",
				workers, snap.Counters, refCounters)
		}
		if !reflect.DeepEqual(snap.Histograms, refHists) {
			t.Fatalf("merged histograms depend on worker count (%d workers):\n%v\nvs\n%v",
				workers, snap.Histograms, refHists)
		}
	}
}

// TestScaleMergedMetricsMatchResult cross-checks the collector against the
// run's own totals: the canonical counters must agree with ScaleResult and
// the latency histogram must hold one observation per sent frame.
func TestScaleMergedMetricsMatchResult(t *testing.T) {
	reg := telemetry.New()
	res, err := RunScale(ScaleConfig{
		Devices: 200, Seed: 3, Workers: 2, Duration: 2 * time.Second,
		LossProb: 0.2, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	want := map[string]uint64{
		telemetry.MetricFwCycles:         res.Ticks,
		telemetry.MetricFwScrollEvents:   res.Switches,
		telemetry.MetricFwFramesSent:     res.Frames,
		telemetry.MetricRFSent:           res.Frames + res.Retransmits,
		telemetry.MetricRFLost:           res.Lost,
		telemetry.MetricRFDelivered:      res.Delivered,
		telemetry.MetricARQEnqueued:      res.Frames,
		telemetry.MetricARQAcked:         res.Delivered,
		telemetry.MetricARQRetransmits:   res.Retransmits,
		telemetry.MetricHubDecoded:       res.Delivered,
		telemetry.MetricHubEvents:        res.Delivered,
		telemetry.MetricFwIslandSwitches: res.Switches,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	h, ok := snap.Histogram(telemetry.MetricHubE2ELatency)
	if !ok {
		t.Fatal("no e2e latency histogram in merged snapshot")
	}
	if h.Count != res.Frames {
		t.Fatalf("latency observations %d, want one per sent frame (%d)", h.Count, res.Frames)
	}
	if h.P99 <= 0 || h.Sum <= 0 {
		t.Fatalf("degenerate latency histogram: %+v", h)
	}
	for _, g := range []string{
		telemetry.MetricSimDevices, telemetry.MetricSimWorkers,
		telemetry.MetricSimVirtualSeconds, telemetry.MetricSimFramesInFlight,
	} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Errorf("gauge %s missing from merged snapshot", g)
		}
	}
	if got := snap.Gauges[telemetry.MetricSimDevices]; got != 200 {
		t.Errorf("sim_devices = %g, want 200", got)
	}
	if got := snap.Gauges[telemetry.MetricSimVirtualSeconds]; got != 2 {
		t.Errorf("sim_virtual_seconds = %g, want 2 after the run", got)
	}
}

// TestScaleInstrumentedMatchesPlain pins that attaching a registry does not
// perturb the simulation itself: the modelled latency draws come from a
// (slot, seq) hash, not the device RNG stream.
func TestScaleInstrumentedMatchesPlain(t *testing.T) {
	cfg := ScaleConfig{Devices: 250, Seed: 11, Workers: 3, Duration: 2 * time.Second, LossProb: 0.05}
	plain, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = telemetry.New()
	inst, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scaleCounters(plain) != scaleCounters(inst) {
		t.Fatalf("instrumentation changed the simulation:\nplain %+v\ninstrumented %+v",
			scaleCounters(plain), scaleCounters(inst))
	}
}

// TestScaleOnReport exercises the live feed: a mid-run wall-clock reporter
// must observe the canonical counters moving.
func TestScaleOnReport(t *testing.T) {
	reg := telemetry.New()
	var reports atomic.Uint64
	_, err := RunScale(ScaleConfig{
		Devices: 5_000, Seed: 1, Workers: 2, Duration: 20 * time.Second,
		Metrics: reg, ReportEvery: 10 * time.Millisecond,
		OnReport: func(s *telemetry.Snapshot) {
			if s.Counters[telemetry.MetricFwCycles] > 0 {
				reports.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reports.Load() == 0 {
		t.Fatal("no report saw a nonzero cycle counter (final snapshot alone should)")
	}
}

// TestSlabTickObservedZeroAlloc pins the instrumented tick path: advancing
// a stripe with a latency shard attached must still not allocate.
func TestSlabTickObservedZeroAlloc(t *testing.T) {
	slab, err := core.NewStateSlab(core.SlabConfig{Devices: 256, Seed: 9, LossProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	lat := telemetry.NewLocalHistogram(telemetry.LatencyBucketsMs)
	at := time.Duration(0)
	allocs := testing.AllocsPerRun(100, func() {
		at += 40 * time.Millisecond
		slab.TickStripeObserved(0, slab.Len(), at, lat)
	})
	if allocs != 0 {
		t.Fatalf("observed slab tick allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestScaleShardPublishZeroAlloc pins the publish path after warm-up: the
// periodic copy into the published snapshot must reuse its slices.
func TestScaleShardPublishZeroAlloc(t *testing.T) {
	lat := telemetry.NewLocalHistogram(telemetry.LatencyBucketsMs)
	for i := 0; i < 100; i++ {
		lat.Observe(float64(i))
	}
	var snap telemetry.HistogramSnapshot
	lat.SnapshotInto(&snap) // warm-up copy sizes the slices
	allocs := testing.AllocsPerRun(100, func() {
		lat.Observe(3)
		lat.SnapshotInto(&snap)
	})
	if allocs != 0 {
		t.Fatalf("shard publish allocates %.1f allocs/op after warm-up, want 0", allocs)
	}
}
