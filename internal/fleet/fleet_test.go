package fleet

import (
	"fmt"
	"testing"
	"time"

	"github.com/hcilab/distscroll/internal/core"
	"github.com/hcilab/distscroll/internal/menu"
	"github.com/hcilab/distscroll/internal/rf"
	"github.com/hcilab/distscroll/internal/sim"
)

func TestFleetValidation(t *testing.T) {
	if _, err := New(Config{Devices: 0}); err == nil {
		t.Fatal("zero-device fleet accepted")
	}
}

// streamKey flattens one device's event log into a comparable signature.
func streamKey(events []core.Event) string {
	s := ""
	for _, e := range events {
		s += fmt.Sprintf("%d:%d:%d;", e.Kind, e.Index, e.HostTime/time.Microsecond)
	}
	return s
}

func runFleet(t *testing.T, cfg Config) (*Runner, []Result) {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return r, results
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{Devices: 8, Seed: 42, Workers: 3}
	run := func() ([]string, []Result) {
		r, results := runFleet(t, cfg)
		keys := make([]string, r.Len())
		for i := range keys {
			keys[i] = streamKey(r.Session(i).Events())
		}
		return keys, results
	}
	keysA, resA := run()
	keysB, resB := run()
	for i := range keysA {
		if keysA[i] != keysB[i] {
			t.Fatalf("device %d event stream differs between runs:\n%s\nvs\n%s", i+1, keysA[i], keysB[i])
		}
		if resA[i].FinalCursor != resB[i].FinalCursor || resA[i].Host != resB[i].Host {
			t.Fatalf("device %d results differ: %+v vs %+v", i+1, resA[i], resB[i])
		}
		if keysA[i] == "" {
			t.Fatalf("device %d produced no events", i+1)
		}
	}
}

func TestFleetDevicesAreIndependentlySeeded(t *testing.T) {
	r, _ := runFleet(t, Config{Devices: 4, Seed: 7})
	// With a noisy sensor and a lossy link, two devices with different
	// seeds virtually never produce byte-identical event timelines.
	seen := map[string]int{}
	for i := 0; i < r.Len(); i++ {
		seen[streamKey(r.Session(i).Events())]++
	}
	if len(seen) != r.Len() {
		t.Fatalf("expected %d distinct streams, got %d", r.Len(), len(seen))
	}
}

func TestFleet64ConcurrentDevices(t *testing.T) {
	// The acceptance bar: 64 devices simulating concurrently (this test
	// runs under -race in CI) with every frame attributed at the hub.
	r, results := runFleet(t, Config{Devices: 64, Seed: 1})
	if len(results) != 64 {
		t.Fatalf("results: %d", len(results))
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("device %d: %v", res.Device, res.Err)
		}
		if res.Host.Events == 0 {
			t.Fatalf("device %d received no events", res.Device)
		}
		// The script ends with selecting the middle entry.
		if want := (r.Device(0).Menu.Len() - 1) / 2; res.FinalCursor != want {
			t.Fatalf("device %d final cursor %d, want %d", res.Device, res.FinalCursor, want)
		}
	}
	agg := r.Hub().Stats()
	if agg.Devices != 64 || agg.BadFrames != 0 {
		t.Fatalf("hub aggregate: %+v", agg)
	}
	tot := r.Total(results)
	if tot.Delivered != tot.Decoded {
		t.Fatalf("delivered %d != decoded %d", tot.Delivered, tot.Decoded)
	}
	if tot.FramesPerSecond <= 0 {
		t.Fatalf("throughput %v", tot.FramesPerSecond)
	}
}

func TestFleetAttributesLossPerDevice(t *testing.T) {
	cfg := Config{Devices: 6, Seed: 3, Core: core.DefaultConfig()}
	// A harsh channel: every fifth frame vanishes, nothing is corrupted,
	// so seq gaps at the hub must mirror the per-device link losses.
	cfg.Core.Link.LossProb = 0.2
	cfg.Core.Link.CorruptProb = 0
	r, results := runFleet(t, cfg)
	var totalMissed uint64
	for i, res := range results {
		if res.Link.Lost == 0 {
			t.Fatalf("device %d lost no frames at 20%% loss (sent %d)", res.Device, res.Link.Sent)
		}
		// Gaps are only observable on a delivered successor, so missed can
		// trail lost (tail losses), but never exceed it.
		if res.Host.MissedSeq > res.Link.Lost {
			t.Fatalf("device %d missed %d > lost %d", res.Device, res.Host.MissedSeq, res.Link.Lost)
		}
		if got, _ := r.Hub().DeviceStats(r.ID(i)); got.MissedSeq != res.Host.MissedSeq {
			t.Fatalf("device %d stats mismatch", res.Device)
		}
		totalMissed += res.Host.MissedSeq
	}
	if totalMissed == 0 {
		t.Fatal("no seq gaps observed across the fleet at 20% loss")
	}
}

func TestFleetWithPipeTransport(t *testing.T) {
	cfg := Config{Devices: 5, Seed: 9, Core: core.DefaultConfig()}
	cfg.Core.Transport = func(sched sim.EventScheduler, _ *sim.Rand, sink func([]byte, time.Duration)) (rf.Transport, error) {
		return rf.NewPipe(sched, 2*time.Millisecond, sink)
	}
	r, results := runFleet(t, cfg)
	for _, res := range results {
		if res.Link.Sent == 0 || res.Link.Sent != res.Link.Delivered {
			t.Fatalf("device %d pipe stats: %+v", res.Device, res.Link)
		}
		if res.Host.MissedSeq != 0 {
			t.Fatalf("device %d lost frames on an ideal pipe: %+v", res.Device, res.Host)
		}
	}
	if agg := r.Hub().Stats(); agg.MissedSeq != 0 || agg.Devices != 5 {
		t.Fatalf("hub aggregate: %+v", agg)
	}
}

// TestFleetWheelHeapIdentical is the fleet-level differential test: the same
// seeded fleet run on the timing-wheel scheduler and on the heap reference
// must produce byte-identical results — event streams, stats, cursors and
// elapsed times. Together with the scheduler-level differential fuzz in
// internal/sim this proves the wheel migration preserved per-seed
// determinism end to end.
func TestFleetWheelHeapIdentical(t *testing.T) {
	run := func(mk func(*sim.Clock) sim.EventScheduler) ([]string, string) {
		cfg := Config{Devices: 6, Seed: 23, Workers: 2, Reliable: true, Core: core.DefaultConfig()}
		cfg.Core.Link.LossProb = 0.1 // lossy + ARQ: the full timer surface
		cfg.Core.Scheduler = mk
		r, results := runFleet(t, cfg)
		keys := make([]string, r.Len())
		for i := range keys {
			keys[i] = streamKey(r.Session(i).Events())
		}
		return keys, fmt.Sprintf("%+v", results)
	}
	wheelKeys, wheelRes := run(nil) // nil = default wheel
	heapKeys, heapRes := run(func(c *sim.Clock) sim.EventScheduler { return sim.NewHeapScheduler(c) })
	for i := range wheelKeys {
		if wheelKeys[i] != heapKeys[i] {
			t.Fatalf("device %d event stream differs between wheel and heap:\n%s\nvs\n%s",
				i+1, wheelKeys[i], heapKeys[i])
		}
		if wheelKeys[i] == "" {
			t.Fatalf("device %d produced no events", i+1)
		}
	}
	if wheelRes != heapRes {
		t.Fatalf("fleet results differ between wheel and heap:\n%s\nvs\n%s", wheelRes, heapRes)
	}
}

func TestFleetCustomScriptAndMenu(t *testing.T) {
	cfg := Config{
		Devices: 3,
		Seed:    5,
		Menu:    func() *menu.Node { return menu.FlatMenu(8) },
		Script: Script{
			{Entry: 7, Glide: 300 * time.Millisecond, Dwell: 300 * time.Millisecond},
			{Entry: 1, Glide: 300 * time.Millisecond, Dwell: 400 * time.Millisecond},
		},
	}
	_, results := runFleet(t, cfg)
	for _, res := range results {
		if res.FinalCursor != 1 {
			t.Fatalf("device %d cursor %d, want 1", res.Device, res.FinalCursor)
		}
	}
}

func TestFleetScriptErrorSurfaces(t *testing.T) {
	cfg := Config{
		Devices: 2,
		Seed:    1,
		Script:  Script{{Entry: 99, Glide: 100 * time.Millisecond}},
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunAll()
	if err == nil {
		t.Fatal("out-of-range script entry did not error")
	}
	for _, res := range results {
		if res.Err == nil {
			t.Fatalf("device %d missing error", res.Device)
		}
	}
}

func TestFleetPerDeviceHandlers(t *testing.T) {
	r, err := New(Config{Devices: 3, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, r.Len())
	for i := 0; i < r.Len(); i++ {
		i := i
		r.Session(i).OnScroll(func(core.Event) { counts[i]++ })
	}
	if _, err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("device %d scroll handler never fired", i+1)
		}
	}
}
